// Quickstart: store a small XML document relationally, query it with
// XPath (compiled to SQL), and publish it back as XML.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

const bibliography = `<?xml version="1.0"?>
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix Environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
</bib>`

func main() {
	// Open a store backed by the interval (pre/size/level) mapping —
	// the layout where every XPath axis is a range predicate.
	st, err := core.Open(core.Interval)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.LoadXML([]byte(bibliography)); err != nil {
		log.Fatal(err)
	}

	// An XPath query becomes SQL over the shredded tables.
	query := `/bib/book[price < 50]/title`
	sql, err := st.Translate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("XPath:", query)
	fmt.Println("SQL:  ", sql)

	res, err := st.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("  node %d: %s\n", m.ID, m.Value)
	}

	// Value predicates, attributes, descendants — same pipeline.
	for _, q := range []string{
		`//book[author/last='Stevens']/title`,
		`/bib/book[@year > 1993]/@year`,
		`//author[2]/last`,
	} {
		n, err := st.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s -> %d match(es)\n", q, n)
	}

	// The stored document publishes back out as XML.
	fmt.Println("\nreconstructed document:")
	if err := st.WriteXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
