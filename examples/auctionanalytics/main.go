// Auction analytics: load an XMark-like auction site document and mix
// XPath retrieval with direct SQL analytics over the shredded tables —
// the "use the RDBMS for what it is good at" half of the paper's
// argument.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xmlgen"
)

func main() {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.1, Seed: 7})
	st, err := core.OpenWith(core.Interval, core.Options{WithValueIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.LoadDocument(doc); err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	fmt.Printf("loaded auction site: %d nodes -> %d rows, %.0f KB\n\n",
		doc.NodeCount(), stats.Rows, float64(stats.Bytes)/1024)

	// Navigational retrieval through the XPath-to-SQL compiler.
	fmt.Println("XPath retrieval:")
	for _, q := range []string{
		`/site/open_auctions/open_auction[initial > 250]/@id`,
		`//person[address/city='Berlin']/name`,
		`//open_auction[count(bidder) > 8]/@id`,
		`/site/regions/europe/item[contains(name,'violin')]/name`,
	} {
		res, err := st.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55s %4d match(es)", q, len(res.Matches))
		if len(res.Matches) > 0 && res.Matches[0].HasValue {
			fmt.Printf("  e.g. %q", res.Matches[0].Value)
		}
		fmt.Println()
	}

	// Analytics straight in SQL over the interval table: the shredded
	// layout is a regular relation, so aggregation is native.
	fmt.Println("\nSQL analytics over the shredded layout:")
	rows, err := st.DB().Query(`
		SELECT a.value AS city, COUNT(*) AS people
		FROM accel a
		WHERE a.name = 'city'
		GROUP BY a.value
		HAVING COUNT(*) >= 3
		ORDER BY people DESC, city
		LIMIT 8`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows.Data {
		fmt.Printf("  %-16s %3d people\n", r[0].Text(), r[1].Int())
	}

	avg, err := st.DB().QueryScalar(`
		SELECT AVG(CAST(a.value AS REAL))
		FROM accel a
		WHERE a.name = 'increase'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage bid increase: %.2f\n", avg.Float())

	// Join the document structure in SQL: bids per featured auction.
	top, err := st.DB().Query(`
		SELECT oa.pre AS auction, COUNT(*) AS bids
		FROM accel oa, accel b
		WHERE oa.name = 'open_auction' AND oa.kind = 'elem'
		  AND b.parent = oa.pre AND b.name = 'bidder'
		GROUP BY oa.pre
		ORDER BY bids DESC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most contested auctions (node id, bids):")
	for _, r := range top.Data {
		fmt.Printf("  auction node %-6d %2d bids\n", r[0].Int(), r[1].Int())
	}
}
