// Ordered updates: insert subtrees at chosen positions and watch what
// each order encoding pays — Dewey relabels only the new subtree while
// the interval encoding renumbers the document (the Tatarinov et al.
// contrast).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/xmlgen"
)

const newCategory = `<category id="categoryX%d"><name>Inserted Category %d</name><description>added after load</description></category>`

func main() {
	for _, kind := range []core.SchemeKind{core.Dewey, core.Interval, core.Edge} {
		doc := xmlgen.Auction(xmlgen.Config{Factor: 0.1, Seed: 3})
		st, err := core.Open(kind)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.LoadDocument(doc); err != nil {
			log.Fatal(err)
		}

		// The <categories> element is the insertion target; its node id
		// is its pre-order rank.
		res, err := st.Query(`/site/categories`)
		if err != nil || len(res.Matches) != 1 {
			log.Fatalf("locating categories: %v (%d matches)", err, len(res.Matches))
		}
		parent := res.Matches[0].ID

		before, err := st.Count(`/site/categories/category`)
		if err != nil {
			log.Fatal(err)
		}

		const n = 20
		start := time.Now()
		for i := 0; i < n; i++ {
			frag := []byte(fmt.Sprintf(newCategory, i, i))
			// Spread the insertion positions to keep Dewey label gaps
			// healthy (midpoint labels halve the gap at one spot).
			if err := st.InsertXML(parent, (i*7)%(before+i), frag); err != nil {
				log.Fatalf("%s insert %d: %v", kind, i, err)
			}
		}
		elapsed := time.Since(start)

		after, err := st.Count(`/site/categories/category`)
		if err != nil {
			log.Fatal(err)
		}
		inserted, err := st.Count(`/site/categories/category[starts-with(@id,'categoryX')]`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %2d ordered inserts in %8.2fms (%.2fms each); categories %d -> %d (%d new)\n",
			kind, n, float64(elapsed.Microseconds())/1000,
			float64(elapsed.Microseconds())/1000/n, before, after, inserted)
	}
	fmt.Println("\nexpected shape: dewey/edge pay local updates; interval renumbers the whole document")
}
