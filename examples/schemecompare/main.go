// Scheme comparison: load the same document under every mapping scheme
// and compare storage footprint, generated SQL shape, and query latency
// — a miniature of the paper's headline evaluation.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

func main() {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 11})
	// Probe with a city that actually occurs in this generated instance.
	city := xpath.Eval(doc, xpath.MustParse(`/site/people/person/address/city`))[0].Text()
	query := fmt.Sprintf(`/site/people/person[address/city='%s']/name`, city)

	kinds := []core.SchemeKind{
		core.Edge, core.Binary, core.Universal, core.Interval, core.Dewey, core.Inline,
	}
	fmt.Printf("document: %d nodes; query: %s\n\n", doc.NodeCount(), query)
	fmt.Printf("%-10s %8s %9s %12s %10s  %s\n", "scheme", "tables", "rows", "bytes", "query", "SQL shape")
	for _, kind := range kinds {
		opts := core.Options{}
		if kind == core.Inline {
			opts.DTD = xmlgen.AuctionDTD
			opts.Root = "site"
		}
		st, err := core.OpenWith(kind, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.LoadDocument(doc); err != nil {
			log.Fatal(err)
		}
		sql, err := st.Translate(query)
		if err != nil {
			log.Fatal(err)
		}
		// Warm, then time.
		if _, err := st.Query(query); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := st.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		s := st.Stats()
		fmt.Printf("%-10s %8d %9d %12d %9.2fms  %d table refs, %d chars\n",
			kind, s.Tables, s.Rows, s.Bytes,
			float64(elapsed.Microseconds())/1000, strings.Count(sql, "FROM"), len(sql))
		if len(res.Matches) > 0 {
			fmt.Printf("%10s   -> %d match(es), first: %q\n", "", len(res.Matches), res.Matches[0].Value)
		} else {
			fmt.Printf("%10s   -> no matches\n", "")
		}
	}

	fmt.Println("\nthe same XPath under two schemes:")
	for _, kind := range []core.SchemeKind{core.Edge, core.Interval} {
		st, _ := core.OpenWith(kind, core.Options{})
		_ = st.LoadDocument(doc)
		sql, _ := st.Translate(`//person[@id='person3']/name`)
		fmt.Printf("\n[%s]\n%s\n", kind, sql)
	}
}
