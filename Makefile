GO ?= go

## COVER_FLOOR: minimum statement coverage (percent) for the core
## packages gated by `make cover`.
COVER_FLOOR ?= 60

.PHONY: check vet build test race cover bench-smoke bench

## check: the full CI gate — vet, build, tests (race-enabled where it
## matters), per-package coverage floors, and a one-shot run of the
## query-cache benchmark.
check: vet build test race cover bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the data-race gate for the concurrent query/DDL paths (the
## full suite under -race is covered by `test` + these two packages,
## which hold all shared mutable state).
race:
	$(GO) test -race ./internal/sqldb ./internal/core ./internal/lru

## cover: per-package statement-coverage floors for the packages that
## hold the engine (sqldb), the mappings (shred) and the façade (core).
cover:
	@for pkg in ./internal/sqldb ./internal/shred ./internal/core; do \
		pct=$$($(GO) test -cover $$pkg | awk '{for (i=1;i<=NF;i++) if ($$i == "coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg" >&2; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
		if awk "BEGIN{exit !($$pct < $(COVER_FLOOR))}"; then \
			echo "cover: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor" >&2; exit 1; \
		fi; \
	done

## bench-smoke: executes BenchmarkQueryCache once to keep it compiling
## and running; use `make bench` for real numbers.
bench-smoke:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 1x

bench:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 2s
