GO ?= go

.PHONY: check vet build test race bench-smoke bench

## check: the full CI gate — vet, build, tests (race-enabled where it
## matters), and a one-shot run of the query-cache benchmark.
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the data-race gate for the concurrent query/DDL paths (the
## full suite under -race is covered by `test` + these two packages,
## which hold all shared mutable state).
race:
	$(GO) test -race ./internal/sqldb ./internal/core ./internal/lru

## bench-smoke: executes BenchmarkQueryCache once to keep it compiling
## and running; use `make bench` for real numbers.
bench-smoke:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 1x

bench:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 2s
