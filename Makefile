GO ?= go

## COVER_FLOOR: minimum statement coverage (percent) for the core
## packages gated by `make cover`. The engine package carries a higher
## floor (the vectorized/row differential batteries push it well past
## the default).
COVER_FLOOR ?= 60
COVER_FLOOR_SQLDB ?= 65

## FUZZ_TIME: per-target budget for `make fuzz` (short by design — the
## seed corpora already run as plain tests under `make test`).
FUZZ_TIME ?= 5s

.PHONY: check vet build test race cover bench-smoke bench fuzz crash chaos pmatrix vmatrix diskmatrix concurrency writers wbench server

## check: the full CI gate — vet, build, tests (race-enabled where it
## matters), the engine suite across a GOMAXPROCS matrix, the snapshot
## isolation battery, the spill-to-disk buffer-pool matrix, per-package
## coverage floors, the fault-injection and chaos batteries, short fuzz
## sessions, and a one-shot run of the query-cache benchmark.
check: vet build test race pmatrix vmatrix diskmatrix concurrency writers server cover crash chaos fuzz bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the data-race gate for the concurrent query/DDL paths (the
## full suite under -race is covered by `test` + these two packages,
## which hold all shared mutable state).
race:
	$(GO) test -race ./internal/sqldb ./internal/core ./internal/lru

## pmatrix: the engine suite (including the parallel-vs-serial
## differential battery) at GOMAXPROCS 1, 2 and 4 — morsel-parallel
## execution must return byte-identical results at every width.
pmatrix:
	@for p in 1 2 4; do \
		echo "pmatrix: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) test -count=1 ./internal/sqldb || exit 1; \
	done

## vmatrix: the engine and façade suites with vectorized execution
## forced on (XRDB_VECTORIZED flips the engine default) at GOMAXPROCS
## 1, 2 and 4 — every test that queries must return the row engine's
## byte-identical answer from the batch pipeline.
vmatrix:
	@for p in 1 2 4; do \
		echo "vmatrix: GOMAXPROCS=$$p XRDB_VECTORIZED=1"; \
		XRDB_VECTORIZED=1 GOMAXPROCS=$$p $(GO) test -count=1 ./internal/sqldb ./internal/core || exit 1; \
	done

## diskmatrix: the bounded-memory storage gate — the engine
## differential and crash batteries with a 64-page buffer pool
## (XRDB_BUFFER_POOL caps resident heap pages; everything else spills
## to disk and pages back in on demand) under -race at GOMAXPROCS
## 1, 2 and 4. Every query must return the unbounded engine's
## byte-identical answer with at most 64 pages resident, and crash
## recovery must replay over v3 paged checkpoints.
diskmatrix:
	@for p in 1 2 4; do \
		echo "diskmatrix: GOMAXPROCS=$$p XRDB_BUFFER_POOL=64"; \
		XRDB_BUFFER_POOL=64 GOMAXPROCS=$$p $(GO) test -race -count=1 \
			-run 'TestTinyPool|TestPageInFault|TestBufferPoolStats|TestVector|TestParallel|TestCrash|TestDurable|TestCommitFault|TestConcurrentCommits|TestGroupCommitBatches|TestCheckpoint|TestSnapshot' \
			./internal/sqldb ./internal/core || exit 1; \
	done

## concurrency: the snapshot-isolation gate — the reconstruction-
## during-updates differential (snapshot XML byte-identical to serial
## replay at every commit boundary, DOP 1/4/16), query cancellation,
## and the concurrent cached-query/DDL races, under -race across a
## GOMAXPROCS matrix.
concurrency:
	@for p in 1 2 4; do \
		echo "concurrency: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) test -race -count=1 \
			-run 'TestSnapshotReconstructDuringUpdates|TestQueryContextCancel|TestConcurrentCachedQueriesWithDDL|TestParallelQueriesUnderConcurrentMutations' \
			./internal/sqldb ./internal/core || exit 1; \
	done

## writers: the group-commit race battery — N writer goroutines with
## concurrent DDL, checkpoints and a durability group against one WAL,
## plus the batch-fault and mid-group crash regressions, under -race.
writers:
	@for p in 1 2 4; do \
		echo "writers: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) test -race -count=1 \
			-run 'TestConcurrentWritersDDLCheckpoint|TestConcurrentCommitFaultAckedSurvive|TestGroupConcurrentCommits|TestGroupCommitBatches|TestBatchFsyncFault|TestDurableStoreConcurrentExecDuringLoad' \
			./internal/sqldb ./internal/core || exit 1; \
	done

## server: the network front-door battery — 64 concurrent pinned
## sessions over HTTP running the F1 mix, the line protocol with
## drop-releases-pin, overload 429s, graceful-shutdown drain and the
## post-Close typed-error taxonomy, under -race across a GOMAXPROCS
## matrix. Proves zero leaked snapshot pins after shutdown.
server:
	@for p in 1 2 4; do \
		echo "server: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) test -race -count=1 ./internal/server || exit 1; \
	done

## cover: per-package statement-coverage floors for the packages that
## hold the engine (sqldb), the mappings (shred), the façade (core) and
## the XML data model with its streaming tokenizer (xmldom).
cover:
	@for entry in "./internal/sqldb $(COVER_FLOOR_SQLDB)" "./internal/shred $(COVER_FLOOR)" "./internal/core $(COVER_FLOOR)" "./internal/xmldom $(COVER_FLOOR)"; do \
		pkg=$${entry% *}; floor=$${entry#* }; \
		pct=$$($(GO) test -cover $$pkg | awk '{for (i=1;i<=NF;i++) if ($$i == "coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg" >&2; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		if awk "BEGIN{exit !($$pct < $$floor)}"; then \
			echo "cover: $$pkg coverage $$pct% is below the $$floor% floor" >&2; exit 1; \
		fi; \
	done

## crash: the durability gate — the crash-at-every-offset fault
## injection sweeps, the commit-failure rollback regressions, and the
## concurrent-commit recovery tests, under the race detector.
crash:
	$(GO) test -race -run 'TestCrash|TestCommitFault|TestConcurrentCommits|TestDurable|TestBatchFsyncFault|TestGroupConcurrentCommits|TestRotateFailure|TestCheckpointInsideGroup|TestNestedGroup|TestDegraded|TestGroupFaultDegradedRecover|TestClose|TestSnapshotReleaseIdempotent' ./internal/sqldb ./internal/core

## chaos: the resource-governor / fail-safe gate — concurrent writers
## and governed queries (memory budgets, admission control, injected
## worker panics, canceled contexts) against a mid-flight ENOSPC fault,
## through degraded read-only mode and Recover, under -race across a
## GOMAXPROCS matrix. Proves ack-implies-durable and that no abort or
## panic path wedges a lock or leaks a reservation.
chaos:
	@for p in 1 2 4; do \
		echo "chaos: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) test -race -count=1 \
			-run 'TestChaosGovernedConcurrency|TestMorselWorkerPanicFailsOnlyThatQuery|TestWriterPanicReleasesLocks|TestBudgetAbortLeavesConcurrentTrafficUnaffected|TestAdmissionControlEndToEnd' \
			./internal/sqldb || exit 1; \
	done

## fuzz: short fuzzing sessions for every fuzz target (parser, snapshot
## loader, WAL replay). Each -fuzz invocation accepts one target, so
## they run sequentially; raise FUZZ_TIME for a real session.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZ_TIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzLoadFrom$$' -fuzztime $(FUZZ_TIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZ_TIME) ./internal/sqldb
	$(GO) test -run '^$$' -fuzz '^FuzzVectorExec$$' -fuzztime $(FUZZ_TIME) ./internal/core

## bench-smoke: executes BenchmarkQueryCache once to keep it compiling
## and running; use `make bench` for real numbers.
bench-smoke:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 1x

bench:
	$(GO) test ./internal/bench -run '^$$' -bench QueryCache -benchtime 2s

## wbench: the W1 multi-writer group-commit experiment — fsyncs/commit
## and insert throughput at 1/4/16 writers against an on-disk WAL.
wbench:
	$(GO) run ./cmd/xbench -exp W1
