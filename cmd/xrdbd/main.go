// Command xrdbd serves a durable XML store over the network: an
// HTTP/JSON API and an optional length-prefixed line protocol over the
// same handler core, with per-session pinned snapshots, bounded
// prepared-statement caches, governor-backed overload responses (429)
// and graceful shutdown that drains in-flight requests, releases every
// snapshot pin and closes the store exactly once.
//
//	xrdbd -data ./data -scheme interval -listen :8080
//	curl -s localhost:8080/health
//	curl -s -d '{"xpath":"/site//item"}' localhost:8080/query
//	curl -s -d '{"sql":"INSERT INTO accel VALUES (...)"}' localhost:8080/exec
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		dataDir    = flag.String("data", "", "durable data directory (WAL + checkpoints, crash recovery) — required")
		scheme     = flag.String("scheme", "interval", "mapping scheme: interval|dewey (stateless schemes only)")
		in         = flag.String("in", "", "XML document to load when the data directory is fresh")
		listen     = flag.String("listen", ":8080", "HTTP/JSON listen address")
		listenLine = flag.String("listen-line", "", "line-protocol listen address (empty = disabled)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request timeout when the client names none (0 = unbounded)")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "clamp on client-supplied request timeouts (0 = no clamp)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
		authFile   = flag.String("auth-file", "", "bearer-token allow-list file, one token per line (empty = no auth)")
		maxSess    = flag.Int("max-sessions", 0, "concurrent session cap (0 = 1024)")
		stmtCache  = flag.Int("stmt-cache", 0, "per-session prepared-statement cache entries (0 = 32)")
		valueIdx   = flag.Bool("value-index", false, "create content-value indexes")
		parallel   = flag.Int("parallel", 0, "intra-query parallelism: 0=auto, 1=serial, n=worker cap")
		vector     = flag.Bool("vectorized", false, "batch-at-a-time query execution")
		memBudget  = flag.Int64("mem-budget", 0, "engine memory budget in bytes (0 = unlimited)")
		queryMem   = flag.Int64("query-mem-limit", 0, "per-query tracked-memory limit in bytes (0 = unlimited)")
		maxConc    = flag.Int("max-concurrent", 0, "admission control: max queries executing at once (0 = unlimited)")
		maxQueue   = flag.Int("max-queue", 0, "admission control: queries allowed to wait when saturated; beyond fail 429")
		gcWindow   = flag.Duration("group-commit-window", 0, "linger before each WAL fsync so concurrent commits share it")
		bufPool    = flag.Int("buffer-pool", 0, "cap resident 512-row heap pages; full pages beyond the cap spill to disk and page back in on demand (0 = unbounded)")
		stream     = flag.Bool("stream", false, "with -in: shred the initial document from a stream (bounded memory; per-batch durability instead of one crash-atomic load)")
	)
	flag.Parse()
	if err := run(serveConfig{
		dataDir: *dataDir, scheme: *scheme, in: *in,
		listen: *listen, listenLine: *listenLine,
		timeout: *timeout, maxTimeout: *maxTimeout, drain: *drain,
		authFile: *authFile, maxSess: *maxSess, stmtCache: *stmtCache,
		opts: core.Options{
			WithValueIndex:       *valueIdx,
			Parallelism:          *parallel,
			Vectorized:           *vector,
			MemoryBudget:         *memBudget,
			QueryMemoryLimit:     *queryMem,
			MaxConcurrentQueries: *maxConc,
			MaxQueuedQueries:     *maxQueue,
			BufferPoolPages:      *bufPool,
		},
		stream: *stream,
		dopts:  core.DurableOptions{GroupCommitWindow: *gcWindow},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "xrdbd:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	dataDir, scheme, in  string
	listen, listenLine   string
	timeout, maxTimeout  time.Duration
	drain                time.Duration
	authFile             string
	maxSess, stmtCache   int
	stream               bool
	opts                 core.Options
	dopts                core.DurableOptions
}

func run(cfg serveConfig) error {
	if cfg.dataDir == "" {
		return fmt.Errorf("-data is required (the WAL and checkpoints live there)")
	}
	kind := core.SchemeKind(cfg.scheme)

	var auth server.Authenticator
	var err error
	if cfg.authFile != "" {
		auth, err = server.LoadTokenFile(cfg.authFile)
		if err != nil {
			return err
		}
	}

	store, err := core.OpenDurableWith(kind, cfg.dataDir, cfg.opts, cfg.dopts)
	if err != nil {
		return err
	}
	if cfg.in != "" && !store.Loaded() {
		log.Printf("loading %s into fresh data directory %s", cfg.in, cfg.dataDir)
		if cfg.stream {
			f, err := os.Open(cfg.in)
			if err != nil {
				store.Close()
				return err
			}
			err = store.LoadXMLStream(context.Background(), f)
			f.Close()
			if err != nil {
				store.Close()
				return err
			}
		} else {
			src, err := os.ReadFile(cfg.in)
			if err != nil {
				store.Close()
				return err
			}
			if err := store.LoadXML(src); err != nil {
				store.Close()
				return err
			}
		}
	}

	srv := server.New(store, server.Config{
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		MaxSessions:    cfg.maxSess,
		StmtCacheSize:  cfg.stmtCache,
		Auth:           auth,
	})

	errc := make(chan error, 2)
	httpLn, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		srv.Close()
		return err
	}
	log.Printf("http/json on %s (scheme=%s data=%s)", httpLn.Addr(), kind, cfg.dataDir)
	go func() { errc <- srv.Serve(httpLn) }()

	if cfg.listenLine != "" {
		lineLn, err := net.Listen("tcp", cfg.listenLine)
		if err != nil {
			srv.Close()
			return err
		}
		log.Printf("line protocol on %s", lineLn.Addr())
		go func() { errc <- srv.ServeLine(lineLn) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (budget %s)", sig, cfg.drain)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		log.Printf("shutdown complete")
		return nil
	case err := <-errc:
		srv.Close()
		return err
	}
}
