// Command xbench regenerates the reproduced evaluation: every table and
// figure listed in DESIGN.md's experiment index.
//
// Usage:
//
//	xbench [-exp T1,F2,...] [-factor 0.25] [-seed 42] [-quick] [-repeat 3] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment ids (T1,T2,F1,... or 'all')")
		factor = flag.Float64("factor", 0.25, "base XMark scale factor")
		seed   = flag.Uint64("seed", 42, "generator seed")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		repeat = flag.Int("repeat", 3, "repetitions per measurement (minimum reported)")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.Config{Factor: *factor, Seed: *seed, Quick: *quick, Repeat: *repeat}
	ids := strings.Split(*exp, ",")
	if err := bench.Run(os.Stdout, ids, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}
