// Command xmlgen emits the synthetic XML workloads: the XMark-like
// auction document (with its DTD), plus parametric deep, wide and
// recursive shapes used by the axis and update experiments.
//
// Usage:
//
//	xmlgen -kind auction -factor 0.5 > auction.xml
//	xmlgen -kind auction -dtd > auction.dtd
//	xmlgen -kind deep -depth 12 -chains 300 > deep.xml
//	xmlgen -kind wide -n 50000 > wide.xml
//	xmlgen -kind recursive -depth 8 -fanout 3 > parts.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/xmldom"
	"repro/internal/xmlgen"
)

func main() {
	var (
		kind   = flag.String("kind", "auction", "auction|deep|wide|recursive")
		factor = flag.Float64("factor", 0.1, "auction scale factor")
		seed   = flag.Uint64("seed", 42, "generator seed")
		depth  = flag.Int("depth", 10, "deep/recursive nesting depth")
		chains = flag.Int("chains", 300, "deep: number of chains")
		fanout = flag.Int("fanout", 3, "recursive: max children per part")
		n      = flag.Int("n", 10000, "wide: number of rows")
		dtd    = flag.Bool("dtd", false, "print the document's DTD instead")
	)
	flag.Parse()

	if *dtd {
		switch *kind {
		case "auction":
			fmt.Print(xmlgen.AuctionDTD)
		case "recursive":
			fmt.Print(xmlgen.RecursiveDTD)
		default:
			fmt.Fprintf(os.Stderr, "xmlgen: no DTD for kind %q\n", *kind)
			os.Exit(1)
		}
		return
	}

	var doc *xmldom.Document
	switch *kind {
	case "auction":
		doc = xmlgen.Auction(xmlgen.Config{Factor: *factor, Seed: *seed})
	case "deep":
		doc = xmlgen.Deep(*depth, *chains, *seed)
	case "wide":
		doc = xmlgen.Wide(*n, *seed)
	case "recursive":
		doc = xmlgen.Recursive(*depth, *fanout, *seed)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := xmldom.Serialize(w, doc.Root); err != nil {
		fmt.Fprintf(os.Stderr, "xmlgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(w)
}
