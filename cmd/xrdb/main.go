// Command xrdb stores an XML document in the embedded relational
// database under a chosen mapping scheme and retrieves from it: run
// XPath queries (optionally showing the generated SQL and plan), publish
// the document or result sets back as XML, and inspect storage
// statistics.
//
// Usage:
//
//	xrdb -in doc.xml [-scheme interval] [-dtd doc.dtd] <action>
//	xrdb -data dir [-in doc.xml] [-scheme interval] <action>   durable mode:
//	    write-ahead logged, crash-recovering store in dir (-checkpoint
//	    forces a snapshot + log rotation before exit;
//	    -group-commit-window lets concurrent commits share one fsync)
//
// Actions (pick one):
//
//	-query '/site//item/name'   run an XPath query, print id/value rows
//	-timeout 500ms              with -query: cancel execution at the deadline
//	-sql                        with -query: also print the generated SQL
//	-explain                    with -query: also print the physical plan
//	-analyze                    with -query: execute under EXPLAIN ANALYZE and
//	                            print the plan annotated with actual rows/time
//	-publish                    reconstruct and print the whole document
//	-results                    with -query: publish matches as XML
//	-stats                      print storage, cache, snapshot, query-metrics
//	                            and phase-timing statistics (after any -query run)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/publish"
)

func main() {
	var (
		in        = flag.String("in", "", "input XML document")
		openDB    = flag.String("opendb", "", "reopen a saved database snapshot instead of -in (interval/dewey)")
		saveDB    = flag.String("savedb", "", "write a database snapshot after loading (atomic: temp file + rename)")
		dataDir   = flag.String("data", "", "durable data directory (WAL + checkpoints, crash recovery; interval/dewey)")
		ckpt      = flag.Bool("checkpoint", false, "with -data: force a checkpoint before exit")
		gcWindow  = flag.Duration("group-commit-window", 0, "with -data: linger this long before each WAL fsync so concurrent commits share it (0 = flush immediately)")
		scheme    = flag.String("scheme", "interval", "mapping scheme: edge|binary|universal|interval|dewey|inline")
		dtdFile   = flag.String("dtd", "", "DTD file (required for -scheme inline)")
		valueIdx  = flag.Bool("value-index", false, "create content-value indexes")
		parallel  = flag.Int("parallel", 0, "intra-query parallelism: 0=auto (GOMAXPROCS), 1=serial, n=worker cap")
		vector    = flag.Bool("vectorized", false, "batch-at-a-time query execution (selection-vector batches of 1024 rows)")
		memBudget = flag.Int64("mem-budget", 0, "engine memory budget in bytes for tracked query memory (joins, sorts, aggregates); queries that exceed it abort (0 = unlimited)")
		queryMem  = flag.Int64("query-mem-limit", 0, "per-query tracked-memory limit in bytes (0 = unlimited)")
		maxConc   = flag.Int("max-concurrent", 0, "admission control: max queries executing at once (0 = unlimited)")
		maxQueue  = flag.Int("max-queue", 0, "with -max-concurrent: max queries waiting for admission before rejection")
		bufPool   = flag.Int("buffer-pool", 0, "cap resident 512-row heap pages; full pages beyond the cap spill to disk and page back in on demand (0 = unbounded, all in memory)")
		stream    = flag.Bool("stream", false, "with -in: shred the document from a stream (bounded memory; edge/interval, durable loads lose document-level crash atomicity)")
		query     = flag.String("query", "", "XPath query to run")
		timeout   = flag.Duration("timeout", 0, "per-operation deadline (e.g. 500ms) for loads and queries; 0 = no limit")
		showSQL   = flag.Bool("sql", false, "print the generated SQL")
		explain   = flag.Bool("explain", false, "print the physical plan")
		analyze   = flag.Bool("analyze", false, "execute under EXPLAIN ANALYZE and print actual rows/time per operator")
		pub       = flag.Bool("publish", false, "reconstruct and print the document")
		results   = flag.Bool("results", false, "publish query matches as XML")
		stats     = flag.Bool("stats", false, "print storage statistics")
	)
	flag.Parse()

	// opCtx builds one operation's context: each load or query gets the
	// full -timeout budget.
	opCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	var st *core.Store
	var ds *core.DurableStore
	switch {
	case *dataDir != "":
		// Durable mode: open or crash-recover the data directory; if a
		// document is supplied and the store is still empty, load it
		// (durably, as one crash-atomic group commit).
		opts := core.Options{
			WithValueIndex: *valueIdx, Parallelism: *parallel, Vectorized: *vector,
			MemoryBudget: *memBudget, QueryMemoryLimit: *queryMem,
			MaxConcurrentQueries: *maxConc, MaxQueuedQueries: *maxQueue,
			BufferPoolPages: *bufPool,
		}
		dopts := core.DurableOptions{GroupCommitWindow: *gcWindow}
		var err error
		ds, err = core.OpenDurableWith(core.SchemeKind(*scheme), *dataDir, opts, dopts)
		if err != nil {
			fail("opening data directory %s: %v", *dataDir, err)
		}
		defer ds.Close()
		if *in != "" && !ds.Loaded() {
			ctx, cancel := opCtx()
			if *stream {
				f, ferr := os.Open(*in)
				if ferr != nil {
					fail("%v", ferr)
				}
				err = ds.LoadXMLStream(ctx, f)
				f.Close()
			} else {
				src, ferr := os.ReadFile(*in)
				if ferr != nil {
					fail("%v", ferr)
				}
				err = ds.LoadXMLContext(ctx, src)
			}
			cancel()
			if err != nil {
				fail("loading %s: %v", *in, err)
			}
			fmt.Fprintf(os.Stderr, "xrdb: %s loaded durably into %s (wal %d bytes)\n",
				*in, *dataDir, ds.Durable().WALSize())
		}
		if !ds.Loaded() {
			fail("data directory %s is empty: pass -in to load a document", *dataDir)
		}
		if *ckpt {
			if err := ds.Checkpoint(); err != nil {
				fail("checkpoint: %v", err)
			}
			fmt.Fprintf(os.Stderr, "xrdb: checkpointed %s (wal now %d bytes)\n", *dataDir, ds.Durable().WALSize())
		}
		st = ds.Store
	case *openDB != "":
		f, err := os.Open(*openDB)
		if err != nil {
			fail("%v", err)
		}
		st, err = core.OpenSaved(core.SchemeKind(*scheme), f)
		f.Close()
		if err != nil {
			fail("reopening %s: %v", *openDB, err)
		}
		if *parallel > 0 {
			st.DB().SetParallelism(*parallel)
		}
		if *vector {
			st.DB().SetVectorized(true)
		}
		if *memBudget > 0 {
			st.DB().SetMemoryBudget(*memBudget)
		}
		if *queryMem > 0 {
			st.DB().SetQueryMemoryLimit(*queryMem)
		}
		if *maxConc > 0 {
			st.DB().SetAdmissionControl(*maxConc, *maxQueue)
		}
		if *bufPool > 0 {
			st.DB().SetBufferPool(*bufPool)
		}
	case *in != "":
		opts := core.Options{
			WithValueIndex: *valueIdx, Parallelism: *parallel, Vectorized: *vector,
			MemoryBudget: *memBudget, QueryMemoryLimit: *queryMem,
			MaxConcurrentQueries: *maxConc, MaxQueuedQueries: *maxQueue,
			BufferPoolPages: *bufPool,
		}
		if *dtdFile != "" {
			dtdSrc, err := os.ReadFile(*dtdFile)
			if err != nil {
				fail("%v", err)
			}
			opts.DTD = string(dtdSrc)
		}
		var err error
		st, err = core.OpenWith(core.SchemeKind(*scheme), opts)
		if err != nil {
			fail("%v", err)
		}
		ctx, cancel := opCtx()
		if *stream {
			f, ferr := os.Open(*in)
			if ferr != nil {
				fail("%v", ferr)
			}
			err = st.LoadXMLStream(ctx, f)
			f.Close()
		} else {
			src, ferr := os.ReadFile(*in)
			if ferr != nil {
				fail("%v", ferr)
			}
			err = st.LoadXMLContext(ctx, src)
		}
		cancel()
		if err != nil {
			fail("loading %s: %v", *in, err)
		}
	default:
		fail("missing -in document (or -opendb snapshot, or -data directory)")
	}
	if *saveDB != "" {
		// Atomic: temp file in the target directory, fsync, rename,
		// fsync the directory — a crash mid-save never corrupts an
		// existing snapshot at this path.
		if err := st.SaveDBFile(*saveDB); err != nil {
			fail("saving snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "xrdb: snapshot written to %s\n", *saveDB)
	}

	did := false
	if *query != "" {
		did = true
		sql, err := st.Translate(*query)
		if err != nil {
			fail("translating: %v", err)
		}
		if *showSQL {
			fmt.Println("-- SQL:")
			fmt.Println(sql)
		}
		if *explain {
			plan, err := st.DB().Explain(sql)
			if err != nil {
				fail("explain: %v", err)
			}
			fmt.Println("-- plan:")
			fmt.Print(plan)
		}
		if *analyze {
			plan, err := st.ExplainAnalyze(*query)
			if err != nil {
				fail("explain analyze: %v", err)
			}
			fmt.Println("-- plan (analyzed):")
			fmt.Print(plan)
		}
		if *results {
			if err := publish.ResultSet(os.Stdout, st.DB(), st.Scheme(), *query); err != nil {
				fail("publishing results: %v", err)
			}
			fmt.Println()
		} else {
			ctx, cancel := opCtx()
			defer cancel()
			res, err := st.QueryContext(ctx, *query)
			if err != nil {
				fail("querying: %v", err)
			}
			for _, m := range res.Matches {
				if m.HasValue {
					fmt.Printf("%d\t%s\n", m.ID, m.Value)
				} else {
					fmt.Printf("%d\n", m.ID)
				}
			}
			fmt.Printf("-- %d match(es)\n", len(res.Matches))
		}
	}
	if *pub {
		did = true
		if err := st.WriteXML(os.Stdout); err != nil {
			fail("publishing: %v", err)
		}
		fmt.Println()
	}
	if *stats {
		did = true
		printStats(st, ds)
	}
	if !did {
		fail("nothing to do: pass -query, -publish or -stats")
	}
}

// printStats renders storage, cache, query-metrics and phase-timing
// statistics (plus durability health when the store is durable). It
// runs after any -query so the metrics reflect the run.
func printStats(st *core.Store, ds *core.DurableStore) {
	fmt.Printf("scheme=%s\n", st.Kind())
	dbStats := st.DB().Stats()
	for _, ts := range dbStats.Tables {
		fmt.Printf("  %-24s %8d rows  %10d bytes  %d indexes\n", ts.Name, ts.Rows, ts.Bytes, ts.Indexes)
	}
	s := st.Stats()
	fmt.Printf("  total: %d tables, %d rows, %d bytes\n", s.Tables, s.Rows, s.Bytes)
	trans, plans := st.CacheStats()
	fmt.Printf("  schema epoch: %d\n", dbStats.SchemaEpoch)
	fmt.Printf("  plan cache:        %d/%d entries  %d hits  %d misses  %d evictions  %d invalidations\n",
		plans.Entries, plans.Capacity, plans.Hits, plans.Misses, plans.Evictions, plans.Invalidations)
	fmt.Printf("  translation cache: %d/%d entries  %d hits  %d misses  %d evictions  %d invalidations\n",
		trans.Entries, trans.Capacity, trans.Hits, trans.Misses, trans.Evictions, trans.Invalidations)

	sn := dbStats.Snapshots
	fmt.Printf("snapshots:\n")
	fmt.Printf("  acquired: %d  pinned: %d (oldest %s)  publishes: %d\n",
		sn.Acquired, sn.Pinned, sn.OldestAge.Round(time.Microsecond), sn.Publishes)
	fmt.Printf("  writer waits: %d in %s  publish-order waits: %d  versions reclaimed: %d\n",
		sn.PublishWaits, sn.PublishWaitTime.Round(time.Microsecond), sn.PublishOrderWaits, sn.VersionsReclaimed)

	bp := dbStats.BufferPool
	if bp.Cap > 0 || bp.Spilled > 0 {
		fmt.Printf("buffer pool:\n")
		fmt.Printf("  cap: %d pages  resident: %d  spilled: %d (%d bytes on disk)\n",
			bp.Cap, bp.Resident, bp.Spilled, bp.SpillBytes)
		fmt.Printf("  hits: %d  misses: %d  evictions: %d  writebacks: %d  pinned: %d (high water %d)\n",
			bp.Hits, bp.Misses, bp.Evictions, bp.Writebacks, bp.Pinned, bp.PinnedHighWater)
		if bp.ReadErrors > 0 || bp.SpillErrors > 0 {
			fmt.Printf("  read errors: %d  spill errors: %d\n", bp.ReadErrors, bp.SpillErrors)
		}
	}

	g := dbStats.Governor
	if g.MemoryBudget > 0 || g.QueryMemLimit > 0 || g.MaxConcurrent > 0 {
		fmt.Printf("governor:\n")
		if g.MemoryBudget > 0 || g.QueryMemLimit > 0 {
			fmt.Printf("  memory: %d/%d bytes in use (per-query limit %d)\n", g.MemoryUsed, g.MemoryBudget, g.QueryMemLimit)
		}
		if g.MaxConcurrent > 0 {
			fmt.Printf("  admission: %d slots, queue %d  admitted: %d  queued: %d  rejected: %d\n",
				g.MaxConcurrent, g.MaxQueue, g.Admitted, g.Queued, g.Rejected)
		}
	}
	if ds != nil {
		h := ds.Health()
		fmt.Printf("durability health: %s", h.State)
		if h.Cause != "" {
			fmt.Printf(" (since %s: %s)", h.Since.Format(time.RFC3339), h.Cause)
		}
		fmt.Printf("  degradations: %d  recoveries: %d\n", h.Degradations, h.Recoveries)
	}

	m := dbStats.Metrics
	fmt.Printf("query metrics:\n")
	fmt.Printf("  queries: %d (%d errors)  rows: %d  exec time: %s  plan compiles: %d in %s\n",
		m.Queries, m.QueryErrors, m.Rows, m.QueryTime, m.PlanCompiles, m.PlanTime)
	if m.Queries > 0 {
		fmt.Printf("  latency histogram:")
		for _, b := range m.Latency {
			if b.Count == 0 {
				continue
			}
			if b.Le == 0 {
				fmt.Printf("  >%v:%d", m.Latency[len(m.Latency)-2].Le, b.Count)
			} else {
				fmt.Printf("  <=%v:%d", b.Le, b.Count)
			}
		}
		fmt.Println()
	}
	for i, t := range m.Templates {
		if i >= 5 {
			fmt.Printf("  ... %d more templates\n", len(m.Templates)-5)
			break
		}
		fmt.Printf("  template %dx mean=%s max=%s  %s\n", t.Count, t.Mean(), t.Max, truncate(t.Template, 72))
	}
	if len(m.Operators) > 0 {
		fmt.Printf("  operator totals:\n")
		for _, op := range m.Operators {
			fmt.Printf("    %-20s opens=%-6d rows=%-8d nexts=%-8d build=%d\n",
				op.Kind, op.Opens, op.Rows, op.Nexts, op.BuildRows)
		}
	}
	for _, sq := range m.SlowQueries {
		fmt.Printf("  slow (> %s): %s  %d row(s)  %s\n", m.SlowThreshold, sq.Duration, sq.Rows, truncate(sq.SQL, 64))
	}

	ph := st.PhaseStats()
	fmt.Printf("phase timings (cumulative):\n")
	for _, p := range []struct {
		name string
		stat core.PhaseStat
	}{
		{"shred", ph.Shred}, {"translate", ph.Translate}, {"exec", ph.Exec}, {"publish", ph.Publish},
	} {
		if p.stat.Count == 0 {
			continue
		}
		fmt.Printf("  %-10s %4d span(s)  %s\n", p.name, p.stat.Count, p.stat.Total)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xrdb: "+format+"\n", args...)
	os.Exit(1)
}
