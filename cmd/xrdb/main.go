// Command xrdb stores an XML document in the embedded relational
// database under a chosen mapping scheme and retrieves from it: run
// XPath queries (optionally showing the generated SQL and plan), publish
// the document or result sets back as XML, and inspect storage
// statistics.
//
// Usage:
//
//	xrdb -in doc.xml [-scheme interval] [-dtd doc.dtd] <action>
//
// Actions (pick one):
//
//	-query '/site//item/name'   run an XPath query, print id/value rows
//	-sql                        with -query: also print the generated SQL
//	-explain                    with -query: also print the physical plan
//	-publish                    reconstruct and print the whole document
//	-results                    with -query: publish matches as XML
//	-stats                      print table-level storage statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/publish"
)

func main() {
	var (
		in       = flag.String("in", "", "input XML document")
		openDB   = flag.String("opendb", "", "reopen a saved database snapshot instead of -in (interval/dewey)")
		saveDB   = flag.String("savedb", "", "write a database snapshot after loading")
		scheme   = flag.String("scheme", "interval", "mapping scheme: edge|binary|universal|interval|dewey|inline")
		dtdFile  = flag.String("dtd", "", "DTD file (required for -scheme inline)")
		valueIdx = flag.Bool("value-index", false, "create content-value indexes")
		query    = flag.String("query", "", "XPath query to run")
		showSQL  = flag.Bool("sql", false, "print the generated SQL")
		explain  = flag.Bool("explain", false, "print the physical plan")
		pub      = flag.Bool("publish", false, "reconstruct and print the document")
		results  = flag.Bool("results", false, "publish query matches as XML")
		stats    = flag.Bool("stats", false, "print storage statistics")
	)
	flag.Parse()

	var st *core.Store
	switch {
	case *openDB != "":
		f, err := os.Open(*openDB)
		if err != nil {
			fail("%v", err)
		}
		st, err = core.OpenSaved(core.SchemeKind(*scheme), f)
		f.Close()
		if err != nil {
			fail("reopening %s: %v", *openDB, err)
		}
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fail("%v", err)
		}
		opts := core.Options{WithValueIndex: *valueIdx}
		if *dtdFile != "" {
			dtdSrc, err := os.ReadFile(*dtdFile)
			if err != nil {
				fail("%v", err)
			}
			opts.DTD = string(dtdSrc)
		}
		st, err = core.OpenWith(core.SchemeKind(*scheme), opts)
		if err != nil {
			fail("%v", err)
		}
		if err := st.LoadXML(src); err != nil {
			fail("loading %s: %v", *in, err)
		}
	default:
		fail("missing -in document (or -opendb snapshot)")
	}
	if *saveDB != "" {
		f, err := os.Create(*saveDB)
		if err != nil {
			fail("%v", err)
		}
		if err := st.SaveDB(f); err != nil {
			fail("saving snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("saving snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "xrdb: snapshot written to %s\n", *saveDB)
	}

	did := false
	if *stats {
		did = true
		fmt.Printf("scheme=%s\n", st.Kind())
		dbStats := st.DB().Stats()
		for _, ts := range dbStats.Tables {
			fmt.Printf("  %-24s %8d rows  %10d bytes  %d indexes\n", ts.Name, ts.Rows, ts.Bytes, ts.Indexes)
		}
		s := st.Stats()
		fmt.Printf("  total: %d tables, %d rows, %d bytes\n", s.Tables, s.Rows, s.Bytes)
		trans, plans := st.CacheStats()
		fmt.Printf("  schema epoch: %d\n", dbStats.SchemaEpoch)
		fmt.Printf("  plan cache:        %d/%d entries  %d hits  %d misses  %d evictions  %d invalidations\n",
			plans.Entries, plans.Capacity, plans.Hits, plans.Misses, plans.Evictions, plans.Invalidations)
		fmt.Printf("  translation cache: %d/%d entries  %d hits  %d misses  %d evictions  %d invalidations\n",
			trans.Entries, trans.Capacity, trans.Hits, trans.Misses, trans.Evictions, trans.Invalidations)
	}
	if *query != "" {
		did = true
		sql, err := st.Translate(*query)
		if err != nil {
			fail("translating: %v", err)
		}
		if *showSQL {
			fmt.Println("-- SQL:")
			fmt.Println(sql)
		}
		if *explain {
			plan, err := st.DB().Explain(sql)
			if err != nil {
				fail("explain: %v", err)
			}
			fmt.Println("-- plan:")
			fmt.Print(plan)
		}
		if *results {
			if err := publish.ResultSet(os.Stdout, st.DB(), st.Scheme(), *query); err != nil {
				fail("publishing results: %v", err)
			}
			fmt.Println()
		} else {
			res, err := st.Query(*query)
			if err != nil {
				fail("querying: %v", err)
			}
			for _, m := range res.Matches {
				if m.HasValue {
					fmt.Printf("%d\t%s\n", m.ID, m.Value)
				} else {
					fmt.Printf("%d\n", m.ID)
				}
			}
			fmt.Printf("-- %d match(es)\n", len(res.Matches))
		}
	}
	if *pub {
		did = true
		if err := st.WriteXML(os.Stdout); err != nil {
			fail("publishing: %v", err)
		}
		fmt.Println()
	}
	if !did {
		fail("nothing to do: pass -query, -publish or -stats")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xrdb: "+format+"\n", args...)
	os.Exit(1)
}
