// Package repro's root benchmark suite: one testing.B benchmark per
// reproduced table/figure (see DESIGN.md's experiment index and
// EXPERIMENTS.md for the recorded shapes). `go test -bench=. -benchmem`
// regenerates every series; cmd/xbench prints the same experiments as
// formatted tables with derived columns.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/shred"
	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

const (
	benchFactor = 0.1
	benchSeed   = 42
)

// Shared fixtures, built once per process.
var (
	auctionOnce sync.Once
	auctionDoc  *xmldom.Document

	loadedOnce sync.Once
	loadedDBs  map[string]*sqldb.Database
	loadedSch  map[string]shred.Scheme
)

func benchDoc() *xmldom.Document {
	auctionOnce.Do(func() {
		auctionDoc = xmlgen.Auction(xmlgen.Config{Factor: benchFactor, Seed: benchSeed})
	})
	return auctionDoc
}

func benchSchemes(tb testing.TB) (map[string]*sqldb.Database, map[string]shred.Scheme) {
	loadedOnce.Do(func() {
		loadedDBs = map[string]*sqldb.Database{}
		loadedSch = map[string]shred.Scheme{}
		schemes := shred.All(false)
		inline, err := shred.NewInline(xmlgen.AuctionDTD, "site")
		if err != nil {
			panic(err)
		}
		schemes = append(schemes, inline)
		for _, s := range schemes {
			db, err := shred.LoadDocument(s, benchDoc())
			if err != nil {
				panic(fmt.Sprintf("loading %s: %v", s.Name(), err))
			}
			loadedDBs[s.Name()] = db
			loadedSch[s.Name()] = s
		}
	})
	return loadedDBs, loadedSch
}

func freshScheme(tb testing.TB, name string) shred.Scheme {
	tb.Helper()
	var s shred.Scheme
	var err error
	switch name {
	case "edge":
		s = shred.NewEdge(false)
	case "binary":
		s = shred.NewBinary(false)
	case "universal":
		s = shred.NewUniversal()
	case "interval":
		s = shred.NewInterval(false)
	case "dewey":
		s = shred.NewDewey(false)
	case "inline":
		s, err = shred.NewInline(xmlgen.AuctionDTD, "site")
	default:
		tb.Fatalf("unknown scheme %s", name)
	}
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

var schemeNames = []string{"edge", "binary", "universal", "interval", "dewey", "inline"}

// preparedQuery translates and prepares an XPath under a scheme,
// skipping the sub-benchmark when the scheme cannot express it.
func preparedQuery(b *testing.B, db *sqldb.Database, s shred.Scheme, query string) *sqldb.Prepared {
	b.Helper()
	p, err := xpath.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	sql, err := s.Translate(p)
	if err != nil {
		b.Skipf("%s cannot translate %s: %v", s.Name(), query, err)
	}
	prep, err := db.Prepare(sql)
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

// ---------------------------------------------------------------------------
// T1: database size (rows/bytes reported as metrics; the timed body is
// the shred itself, so -benchmem shows allocation footprints too).

func BenchmarkT1DatabaseSize(b *testing.B) {
	doc := benchDoc()
	for _, name := range schemeNames {
		b.Run(name, func(b *testing.B) {
			var rows int
			var bytes int64
			for i := 0; i < b.N; i++ {
				db, err := shred.LoadDocument(freshScheme(b, name), doc)
				if err != nil {
					b.Fatal(err)
				}
				rows = db.TotalRows()
				bytes = db.TotalBytes()
			}
			b.ReportMetric(float64(rows), "rows")
			b.ReportMetric(float64(bytes)/1024, "KB")
		})
	}
}

// ---------------------------------------------------------------------------
// T2: load time

func BenchmarkT2Load(b *testing.B) {
	doc := benchDoc()
	for _, name := range schemeNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shred.LoadDocument(freshScheme(b, name), doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// F1: query classes

var f1Queries = []struct{ id, query string }{
	{"Q1_short_path", "/site/categories/category/name"},
	{"Q2_descendant", "//item/name"},
	{"Q3_value_select", "/site/people/person[address/city='Berlin']/name"},
	{"Q4_twig", "//open_auction[initial > 200]/bidder/increase"},
	{"Q5_positional", "/site/open_auctions/open_auction/bidder[1]/increase"},
	{"Q6_attr_value", "//person[profile/@income > 60000]"},
}

func BenchmarkF1QueryClasses(b *testing.B) {
	dbs, schemes := benchSchemes(b)
	for _, qc := range f1Queries {
		for _, name := range schemeNames {
			b.Run(qc.id+"/"+name, func(b *testing.B) {
				prep := preparedQuery(b, dbs[name], schemes[name], qc.query)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.Query(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// F2: descendant cost vs depth

func BenchmarkF2DescendantDepth(b *testing.B) {
	for _, depth := range []int{4, 8, 12} {
		doc := xmlgen.Deep(depth, 300, benchSeed)
		for _, name := range []string{"edge", "interval", "dewey"} {
			b.Run(fmt.Sprintf("depth%d/%s", depth, name), func(b *testing.B) {
				s := freshScheme(b, name)
				db, err := shred.LoadDocument(s, doc)
				if err != nil {
					b.Fatal(err)
				}
				prep := preparedQuery(b, db, s, "//leaf")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rows, err := prep.Query()
					if err != nil {
						b.Fatal(err)
					}
					if rows.Len() != 300 {
						b.Fatalf("want 300 leaves, got %d", rows.Len())
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// T3: reconstruction

func BenchmarkT3Reconstruct(b *testing.B) {
	dbs, schemes := benchSchemes(b)
	for _, name := range schemeNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := schemes[name].Reconstruct(dbs[name]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// F3: ordered insertion (one insert per iteration; the database is
// reloaded outside the timer every 64 inserts to bound growth).

const f3Fragment = `<open_auction id="bench_oa_%d"><initial>10.00</initial><current>10.00</current><itemref item="item0"/><seller person="person0"/><annotation><author>Bench Author</author><happiness>5</happiness></annotation><quantity>1</quantity><type>Regular</type><interval><start>01/01/2000</start><end>02/01/2000</end></interval></open_auction>`

func BenchmarkF3OrderedInsert(b *testing.B) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: benchSeed})
	parentNodes := xpath.Eval(doc, xpath.MustParse("/site/open_auctions"))
	parentID := int64(parentNodes[0].Pre)
	nChildren := len(parentNodes[0].Children)
	for _, name := range []string{"edge", "binary", "interval", "dewey", "inline"} {
		b.Run(name, func(b *testing.B) {
			var s shred.Scheme
			var db *sqldb.Database
			reload := func() {
				var err error
				s = freshScheme(b, name)
				db, err = shred.LoadDocument(s, doc)
				if err != nil {
					b.Fatal(err)
				}
			}
			reload()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%64 == 0 && i > 0 {
					b.StopTimer()
					reload()
					b.StartTimer()
				}
				frag, err := xmldom.ParseString(fmt.Sprintf(f3Fragment, i))
				if err != nil {
					b.Fatal(err)
				}
				pos := (i * 13) % nChildren
				if err := s.InsertSubtree(db, parentID, pos, frag.RootElement()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// T4: inlining vs edge on DTD-conforming queries

var t4Queries = []struct{ id, query string }{
	{"direct_column", "/site/people/person/emailaddress"},
	{"inlined_filter", "/site/people/person[address/city='Berlin']/name"},
	{"attr_filter", "//person[profile/@income > 60000]/creditcard"},
	{"optional_child", "/site/open_auctions/open_auction[initial > 200]/reserve"},
}

func BenchmarkT4Inlining(b *testing.B) {
	dbs, schemes := benchSchemes(b)
	for _, qc := range t4Queries {
		for _, name := range []string{"inline", "edge"} {
			b.Run(qc.id+"/"+name, func(b *testing.B) {
				prep := preparedQuery(b, dbs[name], schemes[name], qc.query)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.Query(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// F4: scalability

func BenchmarkF4Scalability(b *testing.B) {
	for _, factor := range []float64{0.05, 0.1, 0.2} {
		doc := xmlgen.Auction(xmlgen.Config{Factor: factor, Seed: benchSeed})
		for _, name := range []string{"edge", "binary", "interval", "dewey"} {
			b.Run(fmt.Sprintf("f%.2f/%s", factor, name), func(b *testing.B) {
				s := freshScheme(b, name)
				db, err := shred.LoadDocument(s, doc)
				if err != nil {
					b.Fatal(err)
				}
				prep := preparedQuery(b, db, s, "//item/name")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.Query(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// F5: value index ablation

func BenchmarkF5ValueIndex(b *testing.B) {
	for _, n := range []int{2000, 20000} {
		doc := xmlgen.Wide(n, benchSeed)
		val := xpath.Eval(doc, xpath.MustParse("/table/row/val"))[0].Text()
		query := fmt.Sprintf("/table/row/val[. = '%s']", val)
		for _, withIdx := range []bool{false, true} {
			label := "noindex"
			if withIdx {
				label = "indexed"
			}
			b.Run(fmt.Sprintf("rows%d/%s", n, label), func(b *testing.B) {
				s := shred.NewEdge(withIdx)
				db, err := shred.LoadDocument(s, doc)
				if err != nil {
					b.Fatal(err)
				}
				prep := preparedQuery(b, db, s, query)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.Query(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// T5: native DOM evaluation vs relational translation

func BenchmarkT5NativeVsRelational(b *testing.B) {
	doc := benchDoc()
	dbs, schemes := benchSchemes(b)
	for _, qc := range f1Queries {
		b.Run(qc.id+"/dom", func(b *testing.B) {
			p := xpath.MustParse(qc.query)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xpath.Eval(doc, p)
			}
		})
		b.Run(qc.id+"/interval", func(b *testing.B) {
			prep := preparedQuery(b, dbs["interval"], schemes["interval"], qc.query)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Query(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// T6: order-sensitive queries

var t6Queries = []struct{ id, query string }{
	{"first_child", "/site/open_auctions/open_auction/bidder[1]/increase"},
	{"position_fn", "//bidder[position() = 2]"},
	{"following_sibling", "/site/open_auctions/open_auction/bidder[1]/following-sibling::bidder"},
}

func BenchmarkT6OrderQueries(b *testing.B) {
	dbs, schemes := benchSchemes(b)
	for _, qc := range t6Queries {
		for _, name := range []string{"edge", "binary", "interval", "dewey"} {
			b.Run(qc.id+"/"+name, func(b *testing.B) {
				prep := preparedQuery(b, dbs[name], schemes[name], qc.query)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.Query(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// A1: edge descendant expansion — blind vs path catalog

func BenchmarkA1EdgeCatalog(b *testing.B) {
	doc := benchDoc()
	for _, useCat := range []bool{false, true} {
		label := "blind"
		if useCat {
			label = "catalog"
		}
		b.Run(label, func(b *testing.B) {
			s := shred.NewEdge(false)
			s.UseCatalog(useCat)
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				b.Fatal(err)
			}
			prep := preparedQuery(b, db, s, "//open_auction//increase")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Query(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A2: interval child step — parent probe vs region predicate

func BenchmarkA2IntervalChildStep(b *testing.B) {
	doc := benchDoc()
	for _, viaRegion := range []bool{false, true} {
		label := "parent_probe"
		if viaRegion {
			label = "region"
		}
		b.Run(label, func(b *testing.B) {
			s := shred.NewInterval(false)
			s.ChildViaRegion(viaRegion)
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				b.Fatal(err)
			}
			prep := preparedQuery(b, db, s, "/site/open_auctions/open_auction/bidder/increase")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Query(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
