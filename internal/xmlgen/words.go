package xmlgen

// Word pools for the auction generator. XMark draws its text from
// Shakespeare; a fixed vocabulary with the same role (repeatable,
// skew-free filler words) preserves the size and selectivity properties
// the experiments depend on.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty",
	"Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
	"Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua",
	"Michelle", "Kenneth", "Dorothy", "Kevin", "Carol", "Brian",
	"Amanda", "George", "Melissa", "Edward", "Deborah",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
	"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
	"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
	"King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
	"Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
	"Mitchell", "Carter", "Roberts",
}

var cities = []string{
	"Berlin", "Paris", "London", "Madrid", "Rome", "Vienna", "Prague",
	"Amsterdam", "Brussels", "Lisbon", "Dublin", "Warsaw", "Budapest",
	"Athens", "Helsinki", "Oslo", "Stockholm", "Copenhagen", "Zurich",
	"Geneva", "Tokyo", "Osaka", "Seoul", "Beijing", "Shanghai", "Delhi",
	"Mumbai", "Sydney", "Melbourne", "Auckland", "Toronto", "Montreal",
	"Chicago", "Boston", "Seattle", "Denver", "Austin", "Portland",
	"Atlanta", "Miami", "Lima", "Bogota", "Santiago", "Buenos Aires",
	"Sao Paulo", "Cairo", "Lagos", "Nairobi", "Accra", "Casablanca",
}

var countries = []string{
	"Germany", "France", "United Kingdom", "Spain", "Italy", "Austria",
	"Czechia", "Netherlands", "Belgium", "Portugal", "Ireland", "Poland",
	"Hungary", "Greece", "Finland", "Norway", "Sweden", "Denmark",
	"Switzerland", "Japan", "Korea", "China", "India", "Australia",
	"New Zealand", "Canada", "United States", "Peru", "Colombia",
	"Chile", "Argentina", "Brazil", "Egypt", "Nigeria", "Kenya",
	"Ghana", "Morocco",
}

var nouns = []string{
	"lamp", "clock", "violin", "painting", "carpet", "mirror", "vase",
	"camera", "bicycle", "typewriter", "radio", "gramophone", "compass",
	"telescope", "globe", "atlas", "chess", "cabinet", "desk", "chair",
	"teapot", "kettle", "medal", "coin", "stamp", "poster", "banner",
	"guitar", "flute", "drum", "anvil", "lantern", "sextant", "barometer",
	"microscope", "engine", "propeller", "saddle", "helmet", "shield",
}

var adjectives = []string{
	"antique", "rare", "vintage", "pristine", "restored", "original",
	"ornate", "gilded", "enameled", "engraved", "handmade", "painted",
	"polished", "weathered", "miniature", "oversized", "ceremonial",
	"nautical", "military", "victorian", "baroque", "art-deco",
	"scientific", "musical", "mechanical", "electric", "wooden",
	"brass", "copper", "silver", "golden", "ivory", "marble", "crystal",
}

var fillerWords = []string{
	"the", "quick", "auction", "features", "a", "remarkable", "piece",
	"with", "provenance", "documented", "since", "its", "creation",
	"collectors", "will", "appreciate", "the", "fine", "condition",
	"and", "unusual", "history", "of", "this", "lot", "shipping",
	"worldwide", "is", "available", "upon", "request", "buyer",
	"assumes", "all", "responsibility", "for", "customs", "duties",
	"payment", "due", "within", "seven", "days", "of", "close",
	"inspection", "welcome", "by", "appointment", "only",
}

var categoryThemes = []string{
	"Instruments", "Maps", "Furniture", "Ceramics", "Books", "Toys",
	"Tools", "Jewelry", "Textiles", "Prints", "Clocks", "Cameras",
	"Coins", "Stamps", "Militaria", "Glassware", "Silverware",
	"Automobilia", "Scientifica", "Ephemera",
}

var regionNames = []string{
	"africa", "asia", "australia", "europe", "namerica", "samerica",
}

var interests = []string{
	"music", "travel", "history", "sports", "photography", "gardening",
	"sailing", "cooking", "chess", "astronomy", "painting", "hiking",
}

var educationLevels = []string{
	"High School", "College", "Graduate School", "Other",
}

var currencies = []string{"USD", "EUR", "GBP", "JPY", "CHF"}

var paymentKinds = []string{
	"Creditcard", "Money order", "Personal Check", "Cash",
}

var shippingKinds = []string{
	"Will ship internationally", "Will ship only within country",
	"Buyer pays fixed shipping charges", "See description for charges",
}
