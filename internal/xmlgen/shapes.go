package xmlgen

import (
	"fmt"

	"repro/internal/xmldom"
)

// Deep generates a document whose element chains have exactly the given
// depth: a root <d0> containing `chains` independent branches, each a
// chain <d1><d2>...<dN> ending in a <leaf> element with a numeric text
// payload. It drives experiment F2 (descendant-axis cost vs. depth):
// the Edge scheme must expand `//leaf` into a union of join chains whose
// length grows with depth, while the interval scheme answers it with one
// range scan regardless of depth.
func Deep(depth, chains int, seed uint64) *xmldom.Document {
	r := NewRNG(seed + 0xDEEB)
	root := elem("d0")
	for c := 0; c < chains; c++ {
		cur := root
		for lvl := 1; lvl < depth; lvl++ {
			next := elem(fmt.Sprintf("d%d", lvl))
			next.Parent = cur
			cur.Children = append(cur.Children, next)
			cur = next
		}
		leaf := textElem("leaf", fmt.Sprintf("%d", r.Intn(1000)))
		leaf.Parent = cur
		cur.Children = append(cur.Children, leaf)
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	root.Parent = doc.Root
	doc.Root.Children = []*xmldom.Node{root}
	doc.Number()
	return doc
}

// Wide generates a flat document: a root with n <row> children, each
// carrying a numeric <key> and a textual <val>. It isolates selection
// and index experiments from navigation costs (experiment F5).
func Wide(n int, seed uint64) *xmldom.Document {
	r := NewRNG(seed + 0x31DE)
	root := elem("table")
	for i := 0; i < n; i++ {
		row := elem("row",
			textElem("key", fmt.Sprintf("%d", i)),
			textElem("val", r.Pick(nouns)+" "+r.Pick(adjectives)),
		)
		withAttr(row, "id", fmt.Sprintf("r%d", i))
		row.Parent = root
		root.Children = append(root.Children, row)
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	root.Parent = doc.Root
	doc.Root.Children = []*xmldom.Node{root}
	doc.Number()
	return doc
}

// Recursive generates a document of nested <part> elements with random
// branching, exercising the recursive-DTD handling of the inlining
// scheme: each part has a <partname> and zero or more sub-parts.
func Recursive(levels, fanout int, seed uint64) *xmldom.Document {
	r := NewRNG(seed + 0x4EC5)
	var build func(level int) *xmldom.Node
	id := 0
	build = func(level int) *xmldom.Node {
		p := elem("part", textElem("partname", fmt.Sprintf("P-%d", id)))
		withAttr(p, "id", fmt.Sprintf("part%d", id))
		id++
		if level < levels {
			n := r.RangeInt(0, fanout)
			if level == 0 && n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				c := build(level + 1)
				c.Parent = p
				p.Children = append(p.Children, c)
			}
		}
		return p
	}
	root := elem("assembly", build(0))
	root.Children[0].Parent = root
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	root.Parent = doc.Root
	doc.Root.Children = []*xmldom.Node{root}
	doc.Number()
	return doc
}

// RecursiveDTD is the part/assembly DTD matching Recursive documents.
const RecursiveDTD = `
<!ELEMENT assembly (part)>
<!ELEMENT part (partname, part*)>
<!ATTLIST part id ID #REQUIRED>
<!ELEMENT partname (#PCDATA)>
`
