package xmlgen

import (
	"testing"

	"repro/internal/xmldom"
)

func TestAuctionDeterminism(t *testing.T) {
	a := xmldom.SerializeString(Auction(Config{Factor: 0.02, Seed: 5}).Root)
	b := xmldom.SerializeString(Auction(Config{Factor: 0.02, Seed: 5}).Root)
	if a != b {
		t.Fatal("same config must generate identical documents")
	}
	c := xmldom.SerializeString(Auction(Config{Factor: 0.02, Seed: 6}).Root)
	if a == c {
		t.Fatal("different seeds must differ")
	}
}

func TestAuctionStructure(t *testing.T) {
	doc := Auction(Config{Factor: 0.05, Seed: 1})
	site := doc.RootElement()
	if site.Name != "site" {
		t.Fatalf("root = %s", site.Name)
	}
	want := []string{"regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"}
	kids := site.ChildElements("")
	if len(kids) != len(want) {
		t.Fatalf("site children = %d", len(kids))
	}
	for i, k := range kids {
		if k.Name != want[i] {
			t.Errorf("child %d = %s, want %s", i, k.Name, want[i])
		}
	}
	regions := kids[0]
	if len(regions.ChildElements("")) != 6 {
		t.Errorf("regions = %d", len(regions.ChildElements("")))
	}
	// Every person has a name and emailaddress as first children.
	for _, p := range kids[3].ChildElements("person") {
		if p.FirstChildElement("name") == nil || p.FirstChildElement("emailaddress") == nil {
			t.Fatalf("person %v missing required children", p.Attrs)
		}
		if _, ok := p.Attr("id"); !ok {
			t.Fatal("person missing id")
		}
	}
}

func TestAuctionScaling(t *testing.T) {
	small := Auction(Config{Factor: 0.05, Seed: 1}).NodeCount()
	big := Auction(Config{Factor: 0.2, Seed: 1}).NodeCount()
	ratio := float64(big) / float64(small)
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("scaling 0.05 -> 0.2 changed nodes by %.1fx, want ~4x", ratio)
	}
}

func TestAuctionConformsToDTD(t *testing.T) {
	// Every element and attribute in a generated document must be
	// declared in AuctionDTD (the inline scheme depends on it; its
	// loader re-validates, but catch drift here early).
	doc := Auction(Config{Factor: 0.05, Seed: 9})
	declared := map[string]bool{}
	// Cheap scan of the DTD text for element names.
	dtdSrc := AuctionDTD
	for i := 0; i+9 < len(dtdSrc); i++ {
		if dtdSrc[i:i+9] == "<!ELEMENT" {
			j := i + 10
			k := j
			for k < len(dtdSrc) && dtdSrc[k] != ' ' {
				k++
			}
			declared[dtdSrc[j:k]] = true
		}
	}
	for _, n := range doc.Nodes() {
		if n.Kind == xmldom.ElementNode && !declared[n.Name] {
			t.Fatalf("element <%s> not declared in AuctionDTD", n.Name)
		}
	}
}

func TestDeepShape(t *testing.T) {
	doc := Deep(7, 40, 3)
	if doc.MaxDepth() != 9 { // d0..d6 + leaf + its text node
		t.Errorf("depth = %d", doc.MaxDepth())
	}
	leaves := 0
	for _, n := range doc.Nodes() {
		if n.Kind == xmldom.ElementNode && n.Name == "leaf" {
			leaves++
		}
	}
	if leaves != 40 {
		t.Errorf("leaves = %d", leaves)
	}
}

func TestWideShape(t *testing.T) {
	doc := Wide(123, 3)
	rows := doc.RootElement().ChildElements("row")
	if len(rows) != 123 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:5] {
		if r.FirstChildElement("key") == nil || r.FirstChildElement("val") == nil {
			t.Fatal("row missing key/val")
		}
	}
}

func TestRecursiveShape(t *testing.T) {
	doc := Recursive(5, 3, 3)
	deepest := 0
	for _, n := range doc.Nodes() {
		if n.Kind == xmldom.ElementNode && n.Name == "part" && n.Level > deepest {
			deepest = n.Level
		}
	}
	if deepest < 3 {
		t.Errorf("recursion depth = %d, want >= 3", deepest)
	}
}

func TestGeneratedXMLParses(t *testing.T) {
	for _, doc := range []*xmldom.Document{
		Auction(Config{Factor: 0.02, Seed: 4}),
		Deep(5, 10, 4),
		Wide(50, 4),
		Recursive(4, 2, 4),
	} {
		out := xmldom.SerializeString(doc.Root)
		re, err := xmldom.ParseString(out)
		if err != nil {
			t.Fatalf("generated XML does not re-parse: %v", err)
		}
		if re.NodeCount() != doc.NodeCount() {
			t.Fatalf("round trip node count %d != %d", re.NodeCount(), doc.NodeCount())
		}
	}
}
