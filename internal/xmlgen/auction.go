package xmlgen

import (
	"fmt"
	"strings"

	"repro/internal/xmldom"
)

// Config controls the auction document generator. Factor scales every
// entity count linearly, mirroring XMark's scaling factor; Factor 1.0
// yields roughly 300k nodes.
type Config struct {
	Factor float64
	Seed   uint64
}

// counts derived from Factor with XMark-like proportions.
type counts struct {
	categories int
	items      int
	persons    int
	open       int
	closed     int
}

func (c Config) counts() counts {
	f := c.Factor
	if f <= 0 {
		f = 0.01
	}
	atLeast := func(n int, min int) int {
		if n < min {
			return min
		}
		return n
	}
	return counts{
		categories: atLeast(int(100*f), 4),
		items:      atLeast(int(2000*f), 12),
		persons:    atLeast(int(1000*f), 6),
		open:       atLeast(int(1200*f), 6),
		closed:     atLeast(int(800*f), 4),
	}
}

// Auction generates the auction-site document. The same (Factor, Seed)
// always produces byte-identical output.
func Auction(cfg Config) *xmldom.Document {
	g := &auctionGen{r: NewRNG(cfg.Seed + 0xA0C710), n: cfg.counts()}
	return g.generate()
}

// AuctionXML renders the generated document as XML text.
func AuctionXML(cfg Config) string {
	return xmldom.SerializeString(Auction(cfg).Root)
}

type auctionGen struct {
	r *RNG
	n counts
}

// Small node-building helpers.

func elem(name string, children ...*xmldom.Node) *xmldom.Node {
	n := &xmldom.Node{Kind: xmldom.ElementNode, Name: name}
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

func textNode(s string) *xmldom.Node {
	return &xmldom.Node{Kind: xmldom.TextNode, Value: s}
}

func textElem(name, s string) *xmldom.Node {
	return elem(name, textNode(s))
}

func withAttr(n *xmldom.Node, name, value string) *xmldom.Node {
	a := &xmldom.Node{Kind: xmldom.AttributeNode, Name: name, Value: value, Parent: n}
	n.Attrs = append(n.Attrs, a)
	return n
}

func (g *auctionGen) generate() *xmldom.Document {
	site := elem("site",
		g.regions(),
		g.categories(),
		g.catgraph(),
		g.people(),
		g.openAuctions(),
		g.closedAuctions(),
	)
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	site.Parent = doc.Root
	doc.Root.Children = []*xmldom.Node{site}
	doc.Number()
	return doc
}

func (g *auctionGen) sentence(min, max int) string {
	n := g.r.RangeInt(min, max)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(g.r.Pick(fillerWords))
	}
	return b.String()
}

func (g *auctionGen) itemName() string {
	return g.r.Pick(adjectives) + " " + g.r.Pick(nouns)
}

func (g *auctionGen) description() *xmldom.Node {
	// 20% of descriptions use a parlist (nested structure), the rest a
	// single text paragraph; keeps mixed-content paths exercised.
	if g.r.Intn(5) == 0 {
		par := elem("parlist")
		for i := 0; i < g.r.RangeInt(2, 4); i++ {
			par.Children = append(par.Children, textElem("listitem", g.sentence(8, 20)))
			par.Children[len(par.Children)-1].Parent = par
		}
		return elem("description", par)
	}
	return textElem("description", g.sentence(10, 30))
}

func (g *auctionGen) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", g.r.RangeInt(1, 12), g.r.RangeInt(1, 28), g.r.RangeInt(1998, 2003))
}

func (g *auctionGen) time() string {
	return fmt.Sprintf("%02d:%02d:%02d", g.r.Intn(24), g.r.Intn(60), g.r.Intn(60))
}

func (g *auctionGen) regions() *xmldom.Node {
	regions := elem("regions")
	// Items are distributed over the six regions round-robin with noise.
	perRegion := make([][]int, len(regionNames))
	for i := 0; i < g.n.items; i++ {
		r := g.r.Intn(len(regionNames))
		perRegion[r] = append(perRegion[r], i)
	}
	for ri, name := range regionNames {
		region := elem(name)
		for _, id := range perRegion[ri] {
			region.Children = append(region.Children, g.item(id))
			region.Children[len(region.Children)-1].Parent = region
		}
		region.Parent = regions
		regions.Children = append(regions.Children, region)
	}
	return regions
}

func (g *auctionGen) item(id int) *xmldom.Node {
	it := elem("item",
		textElem("location", g.r.Pick(countries)),
		textElem("quantity", fmt.Sprintf("%d", g.r.RangeInt(1, 5))),
		textElem("name", g.itemName()),
		textElem("payment", g.r.Pick(paymentKinds)),
		g.description(),
		textElem("shipping", g.r.Pick(shippingKinds)),
	)
	withAttr(it, "id", fmt.Sprintf("item%d", id))
	for i := 0; i < g.r.RangeInt(1, 3); i++ {
		inc := elem("incategory")
		withAttr(inc, "category", fmt.Sprintf("category%d", g.r.Intn(g.n.categories)))
		inc.Parent = it
		it.Children = append(it.Children, inc)
	}
	if g.r.Intn(4) == 0 {
		mb := elem("mailbox")
		for i := 0; i < g.r.RangeInt(1, 3); i++ {
			mail := elem("mail",
				textElem("from", g.r.Pick(firstNames)+" "+g.r.Pick(lastNames)),
				textElem("to", g.r.Pick(firstNames)+" "+g.r.Pick(lastNames)),
				textElem("date", g.date()),
				textElem("text", g.sentence(6, 18)),
			)
			mail.Parent = mb
			mb.Children = append(mb.Children, mail)
		}
		mb.Parent = it
		it.Children = append(it.Children, mb)
	}
	return it
}

func (g *auctionGen) categories() *xmldom.Node {
	cats := elem("categories")
	for i := 0; i < g.n.categories; i++ {
		cat := elem("category",
			textElem("name", g.r.Pick(adjectives)+" "+g.r.Pick(categoryThemes)),
			textElem("description", g.sentence(6, 16)),
		)
		withAttr(cat, "id", fmt.Sprintf("category%d", i))
		cat.Parent = cats
		cats.Children = append(cats.Children, cat)
	}
	return cats
}

func (g *auctionGen) catgraph() *xmldom.Node {
	graph := elem("catgraph")
	edges := g.n.categories * 2
	for i := 0; i < edges; i++ {
		e := elem("edge")
		withAttr(e, "from", fmt.Sprintf("category%d", g.r.Intn(g.n.categories)))
		withAttr(e, "to", fmt.Sprintf("category%d", g.r.Intn(g.n.categories)))
		e.Parent = graph
		graph.Children = append(graph.Children, e)
	}
	return graph
}

func (g *auctionGen) people() *xmldom.Node {
	people := elem("people")
	for i := 0; i < g.n.persons; i++ {
		first := g.r.Pick(firstNames)
		last := g.r.Pick(lastNames)
		p := elem("person",
			textElem("name", first+" "+last),
			textElem("emailaddress", fmt.Sprintf("mailto:%s.%s%d@example.com", strings.ToLower(first), strings.ToLower(last), i)),
		)
		withAttr(p, "id", fmt.Sprintf("person%d", i))
		if g.r.Intn(2) == 0 {
			p.Children = append(p.Children, textElem("phone", fmt.Sprintf("+%d (%d) %d", g.r.RangeInt(1, 99), g.r.RangeInt(100, 999), g.r.RangeInt(1000000, 9999999))))
			p.Children[len(p.Children)-1].Parent = p
		}
		if g.r.Intn(2) == 0 {
			addr := elem("address",
				textElem("street", fmt.Sprintf("%d %s St", g.r.RangeInt(1, 99), g.r.Pick(lastNames))),
				textElem("city", g.r.Pick(cities)),
				textElem("country", g.r.Pick(countries)),
				textElem("zipcode", fmt.Sprintf("%d", g.r.RangeInt(10000, 99999))),
			)
			addr.Parent = p
			p.Children = append(p.Children, addr)
		}
		if g.r.Intn(3) == 0 {
			p.Children = append(p.Children, textElem("homepage", fmt.Sprintf("http://www.example.com/~%s%d", strings.ToLower(last), i)))
			p.Children[len(p.Children)-1].Parent = p
		}
		if g.r.Intn(3) == 0 {
			p.Children = append(p.Children, textElem("creditcard", fmt.Sprintf("%04d %04d %04d %04d", g.r.Intn(10000), g.r.Intn(10000), g.r.Intn(10000), g.r.Intn(10000))))
			p.Children[len(p.Children)-1].Parent = p
		}
		if g.r.Intn(2) == 0 {
			prof := elem("profile")
			withAttr(prof, "income", fmt.Sprintf("%d", g.r.RangeInt(9, 100)*1000))
			for k := 0; k < g.r.RangeInt(0, 3); k++ {
				in := elem("interest")
				withAttr(in, "category", fmt.Sprintf("category%d", g.r.Intn(g.n.categories)))
				in.Parent = prof
				prof.Children = append(prof.Children, in)
			}
			if g.r.Intn(2) == 0 {
				prof.Children = append(prof.Children, textElem("education", g.r.Pick(educationLevels)))
				prof.Children[len(prof.Children)-1].Parent = prof
			}
			if g.r.Intn(2) == 0 {
				gender := "male"
				if g.r.Intn(2) == 0 {
					gender = "female"
				}
				prof.Children = append(prof.Children, textElem("gender", gender))
				prof.Children[len(prof.Children)-1].Parent = prof
			}
			business := "No"
			if g.r.Intn(4) == 0 {
				business = "Yes"
			}
			prof.Children = append(prof.Children, textElem("business", business))
			prof.Children[len(prof.Children)-1].Parent = prof
			if g.r.Intn(2) == 0 {
				prof.Children = append(prof.Children, textElem("age", fmt.Sprintf("%d", g.r.RangeInt(18, 80))))
				prof.Children[len(prof.Children)-1].Parent = prof
			}
			prof.Parent = p
			p.Children = append(p.Children, prof)
		}
		if g.r.Intn(3) == 0 {
			w := elem("watches")
			for k := 0; k < g.r.RangeInt(1, 3); k++ {
				watch := elem("watch")
				withAttr(watch, "open_auction", fmt.Sprintf("open_auction%d", g.r.Intn(g.n.open)))
				watch.Parent = w
				w.Children = append(w.Children, watch)
			}
			w.Parent = p
			p.Children = append(p.Children, w)
		}
		p.Parent = people
		people.Children = append(people.Children, p)
	}
	return people
}

func (g *auctionGen) openAuctions() *xmldom.Node {
	oas := elem("open_auctions")
	for i := 0; i < g.n.open; i++ {
		initial := float64(g.r.RangeInt(1, 300)) + float64(g.r.Intn(100))/100
		oa := elem("open_auction",
			textElem("initial", fmt.Sprintf("%.2f", initial)),
		)
		withAttr(oa, "id", fmt.Sprintf("open_auction%d", i))
		if g.r.Intn(3) == 0 {
			oa.Children = append(oa.Children, textElem("reserve", fmt.Sprintf("%.2f", initial*1.5)))
			oa.Children[len(oa.Children)-1].Parent = oa
		}
		nBidders := g.r.Exp(4, 20)
		cur := initial
		for b := 0; b < nBidders; b++ {
			incr := float64(g.r.RangeInt(1, 20)) * 1.5
			cur += incr
			pr := elem("personref")
			withAttr(pr, "person", fmt.Sprintf("person%d", g.r.Intn(g.n.persons)))
			bidder := elem("bidder",
				textElem("date", g.date()),
				textElem("time", g.time()),
				pr,
				textElem("increase", fmt.Sprintf("%.2f", incr)),
			)
			pr.Parent = bidder
			bidder.Parent = oa
			oa.Children = append(oa.Children, bidder)
		}
		cRef := elem("current")
		cRef.Children = append(cRef.Children, textNode(fmt.Sprintf("%.2f", cur)))
		cRef.Children[0].Parent = cRef
		cRef.Parent = oa
		oa.Children = append(oa.Children, cRef)
		if g.r.Intn(2) == 0 {
			oa.Children = append(oa.Children, textElem("privacy", "Yes"))
			oa.Children[len(oa.Children)-1].Parent = oa
		}
		ir := elem("itemref")
		withAttr(ir, "item", fmt.Sprintf("item%d", g.r.Intn(g.n.items)))
		ir.Parent = oa
		oa.Children = append(oa.Children, ir)
		sr := elem("seller")
		withAttr(sr, "person", fmt.Sprintf("person%d", g.r.Intn(g.n.persons)))
		sr.Parent = oa
		oa.Children = append(oa.Children, sr)
		ann := elem("annotation",
			textElem("author", g.r.Pick(firstNames)+" "+g.r.Pick(lastNames)),
			textElem("happiness", fmt.Sprintf("%d", g.r.RangeInt(1, 10))),
		)
		ann.Parent = oa
		oa.Children = append(oa.Children, ann)
		oa.Children = append(oa.Children, textElem("quantity", fmt.Sprintf("%d", g.r.RangeInt(1, 5))))
		oa.Children[len(oa.Children)-1].Parent = oa
		typ := "Regular"
		if g.r.Intn(3) == 0 {
			typ = "Featured"
		}
		oa.Children = append(oa.Children, textElem("type", typ))
		oa.Children[len(oa.Children)-1].Parent = oa
		iv := elem("interval",
			textElem("start", g.date()),
			textElem("end", g.date()),
		)
		iv.Parent = oa
		oa.Children = append(oa.Children, iv)

		oa.Parent = oas
		oas.Children = append(oas.Children, oa)
	}
	return oas
}

func (g *auctionGen) closedAuctions() *xmldom.Node {
	cas := elem("closed_auctions")
	for i := 0; i < g.n.closed; i++ {
		seller := elem("seller")
		withAttr(seller, "person", fmt.Sprintf("person%d", g.r.Intn(g.n.persons)))
		buyer := elem("buyer")
		withAttr(buyer, "person", fmt.Sprintf("person%d", g.r.Intn(g.n.persons)))
		itemref := elem("itemref")
		withAttr(itemref, "item", fmt.Sprintf("item%d", g.r.Intn(g.n.items)))
		ca := elem("closed_auction",
			seller,
			buyer,
			itemref,
			textElem("price", fmt.Sprintf("%.2f", float64(g.r.RangeInt(1, 500))+float64(g.r.Intn(100))/100)),
			textElem("date", g.date()),
			textElem("quantity", fmt.Sprintf("%d", g.r.RangeInt(1, 5))),
		)
		typ := "Regular"
		if g.r.Intn(3) == 0 {
			typ = "Featured"
		}
		ca.Children = append(ca.Children, textElem("type", typ))
		ca.Children[len(ca.Children)-1].Parent = ca
		if g.r.Intn(2) == 0 {
			ann := elem("annotation",
				textElem("author", g.r.Pick(firstNames)+" "+g.r.Pick(lastNames)),
				textElem("description", g.sentence(6, 14)),
			)
			ann.Parent = ca
			ca.Children = append(ca.Children, ann)
		}
		ca.Parent = cas
		cas.Children = append(cas.Children, ca)
	}
	return cas
}

// AuctionDTD is the document type of the generated auction documents, in
// the role XMark's auction.dtd plays for the inlining experiments.
const AuctionDTD = `
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox?)>
<!ATTLIST item id ID #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA | parlist)*>
<!ELEMENT parlist (listitem*)>
<!ELEMENT listitem (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT categories (category*)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT annotation (author, (happiness | description)*)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
`
