// Package xmlgen generates synthetic XML workloads: a deterministic
// reimplementation of the XMark auction-site document (the benchmark
// used throughout the XML-shredding literature) plus parametric deep and
// wide document shapes for the axis-evaluation experiments.
package xmlgen

// rng is a small deterministic PRNG (splitmix64). The generator must be
// reproducible across runs and platforms, so math/rand's global state is
// avoided.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform int in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// pick returns a random element of words.
func (r *rng) pick(words []string) string {
	return words[r.intn(len(words))]
}

// exp returns an exponentially distributed int with the given mean,
// clamped to [0, max]. Used for skewed fan-outs (bidders per auction).
func (r *rng) exp(mean, max int) int {
	// Inverse CDF with the deterministic uniform source.
	u := r.float()
	if u >= 0.999999 {
		u = 0.999999
	}
	// -mean * ln(1-u), via a cheap series-free approximation: use
	// geometric trials to stay integer-only and deterministic.
	n := 0
	p := 1.0 / (1.0 + float64(mean))
	for n < max {
		if r.float() < p {
			break
		}
		n++
	}
	return n
}
