// Package xmlgen generates synthetic XML workloads: a deterministic
// reimplementation of the XMark auction-site document (the benchmark
// used throughout the XML-shredding literature) plus parametric deep and
// wide document shapes for the axis-evaluation experiments.
package xmlgen

// RNG is a small deterministic PRNG (splitmix64), shared by the
// generators and the test/bench harnesses. Everything driven by it must
// be reproducible across runs and platforms, so math/rand's global
// state is avoided.
type RNG struct{ state uint64 }

// NewRNG returns a generator for the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed + 0x9e3779b97f4a7c15} }

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// RangeInt returns a uniform int in [lo, hi].
func (r *RNG) RangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Float returns a uniform float64 in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Pick returns a random element of words.
func (r *RNG) Pick(words []string) string {
	return words[r.Intn(len(words))]
}

// Exp returns an exponentially distributed int with the given mean,
// clamped to [0, max]. Used for skewed fan-outs (bidders per auction).
func (r *RNG) Exp(mean, max int) int {
	// Inverse CDF with the deterministic uniform source.
	u := r.Float()
	if u >= 0.999999 {
		u = 0.999999
	}
	// -mean * ln(1-u), via a cheap series-free approximation: use
	// geometric trials to stay integer-only and deterministic.
	n := 0
	p := 1.0 / (1.0 + float64(mean))
	for n < max {
		if r.Float() < p {
			break
		}
		n++
	}
	return n
}
