package sqldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v       Value
		isNull  bool
		i       int64
		f       float64
		s       string
		boolish bool
	}{
		{Null, true, 0, 0, "", false},
		{NewInt(42), false, 42, 42, "42", true},
		{NewInt(0), false, 0, 0, "0", false},
		{NewFloat(2.5), false, 2, 2.5, "2.5", true},
		{NewText("7.5"), false, 7, 7.5, "7.5", true},
		{NewText(""), false, 0, 0, "", false},
		{NewText("abc"), false, 0, 0, "abc", true},
		{NewBool(true), false, 1, 1, "true", true},
		{NewBool(false), false, 0, 0, "false", false},
	}
	for _, c := range cases {
		if c.v.IsNull() != c.isNull {
			t.Errorf("%v IsNull = %v", c.v, c.v.IsNull())
		}
		if c.v.Int() != c.i {
			t.Errorf("%v Int = %d, want %d", c.v, c.v.Int(), c.i)
		}
		if c.v.Float() != c.f {
			t.Errorf("%v Float = %g, want %g", c.v, c.v.Float(), c.f)
		}
		if c.v.Text() != c.s {
			t.Errorf("%v Text = %q, want %q", c.v, c.v.Text(), c.s)
		}
		if c.v.Bool() != c.boolish {
			t.Errorf("%v Bool = %v, want %v", c.v, c.v.Bool(), c.boolish)
		}
	}
}

func TestCompareSemantics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(1), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(2.5), NewInt(3), -1},
		{NewBool(true), NewInt(1), 0},
		{NewText("a"), NewText("b"), -1},
		{NewText("b"), NewText("b"), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and transitive over random values.
func TestCompareProperties(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 4 {
		case 0:
			return Null
		case 1:
			return NewInt(seed % 100)
		case 2:
			return NewFloat(float64(seed%100) / 3)
		default:
			return NewText(string(rune('a' + seed%26)))
		}
	}
	anti := func(x, y int64) bool {
		a, b := gen(x), gen(y)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(x, y, z int64) bool {
		a, b, c := gen(x), gen(y), gen(z)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestCompareSQLNullAndCoercion(t *testing.T) {
	if _, ok := compareSQL(Null, NewInt(1)); ok {
		t.Error("NULL comparison must be unknown")
	}
	if _, ok := compareSQL(NewInt(1), Null); ok {
		t.Error("NULL comparison must be unknown")
	}
	// Text-vs-number coercion.
	if cmp, ok := compareSQL(NewText("250.00"), NewInt(250)); !ok || cmp != 0 {
		t.Errorf("'250.00' vs 250: cmp=%d ok=%v", cmp, ok)
	}
	if cmp, ok := compareSQL(NewText("99.5"), NewInt(250)); !ok || cmp >= 0 {
		t.Errorf("'99.5' vs 250: cmp=%d ok=%v", cmp, ok)
	}
}

func TestArithmetic(t *testing.T) {
	if v := addValues(NewInt(2), NewInt(3)); v.T != TypeInt || v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := addValues(NewInt(2), NewFloat(0.5)); v.T != TypeFloat || v.F != 2.5 {
		t.Errorf("2+0.5 = %v", v)
	}
	if v := addValues(Null, NewInt(1)); !v.IsNull() {
		t.Errorf("NULL+1 = %v", v)
	}
	if v := divValues(NewInt(7), NewInt(2)); v.Int() != 3 {
		t.Errorf("7/2 = %v (integer division)", v)
	}
	if v := divValues(NewInt(7), NewInt(0)); !v.IsNull() {
		t.Errorf("7/0 = %v, want NULL", v)
	}
	if v := modValues(NewInt(7), NewInt(4)); v.Int() != 3 {
		t.Errorf("7%%4 = %v", v)
	}
	if v := mulValues(NewFloat(1.5), NewInt(4)); v.Float() != 6 {
		t.Errorf("1.5*4 = %v", v)
	}
	if v := negValue(NewFloat(2.5)); v.F != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	if v := modValues(NewFloat(7.5), NewFloat(2)); math.Abs(v.Float()-1.5) > 1e-9 {
		t.Errorf("7.5 mod 2 = %v", v)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		esc  byte
		want bool
	}{
		{"hello", "hello", 0, true},
		{"hello", "h%", 0, true},
		{"hello", "%llo", 0, true},
		{"hello", "h_llo", 0, true},
		{"hello", "h___o", 0, true},
		{"hello", "h__l", 0, false},
		{"hello", "%", 0, true},
		{"", "%", 0, true},
		{"", "_", 0, false},
		{"a%b", `a\%b`, '\\', true},
		{"aXb", `a\%b`, '\\', false},
		{"a_b", `a\_b`, '\\', true},
		{"abcabc", "%abc", 0, true},
		{"abcabc", "abc%abc", 0, true},
		{"hello", "HELLO", 0, false}, // case sensitive
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p, c.esc); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikePrefix(t *testing.T) {
	cases := []struct {
		p          string
		prefix     string
		prefixOnly bool
	}{
		{"abc%", "abc", true},
		{"abc", "abc", false},
		{"abc%def", "abc", false},
		{"%abc", "", false},
		{"a_c%", "a", false},
		{`a\%b%`, "a%b", true},
	}
	for _, c := range cases {
		esc := byte(0)
		if c.p == `a\%b%` {
			esc = '\\'
		}
		prefix, only := likePrefix(c.p, esc)
		if prefix != c.prefix || only != c.prefixOnly {
			t.Errorf("likePrefix(%q) = (%q, %v), want (%q, %v)", c.p, prefix, only, c.prefix, c.prefixOnly)
		}
	}
}

func TestCoerceTo(t *testing.T) {
	if v := coerceTo(NewText("42"), TypeInt); v.T != TypeInt || v.I != 42 {
		t.Errorf("coerce '42' to int = %v", v)
	}
	if v := coerceTo(NewInt(42), TypeText); v.T != TypeText || v.S != "42" {
		t.Errorf("coerce 42 to text = %v", v)
	}
	if v := coerceTo(Null, TypeInt); !v.IsNull() {
		t.Errorf("coerce NULL = %v", v)
	}
	if v := coerceTo(NewFloat(2.9), TypeInt); v.I != 2 {
		t.Errorf("coerce 2.9 to int = %v", v)
	}
}

func TestSuccString(t *testing.T) {
	if s, ok := succString("abc"); !ok || s != "abd" {
		t.Errorf("succ(abc) = %q %v", s, ok)
	}
	if s, ok := succString("ab\xff"); !ok || s != "ac" {
		t.Errorf("succ(ab\\xff) = %q %v", s, ok)
	}
	if _, ok := succString("\xff\xff"); ok {
		t.Error("succ(all-0xff) must report no bound")
	}
	// Property: prefix <= s with that prefix < succ(prefix).
	prop := func(p, tail string) bool {
		if p == "" {
			return true
		}
		succ, ok := succString(p)
		if !ok {
			return true
		}
		s := p + tail
		return p <= s && s < succ
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("succ bound property: %v", err)
	}
}
