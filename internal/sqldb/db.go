package sqldb

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Database is an in-memory relational database. It is safe for
// concurrent use: readers share an RLock, writers serialize.
type Database struct {
	mu      sync.RWMutex
	tables  map[string]*table
	indexes map[string]*IndexDef // index name -> def (table lookup)
	// epoch is the schema version, bumped (under mu) by every DDL
	// statement. Compiled plans — cached or prepared — are valid only
	// for the epoch they were planned at (see plancache.go).
	epoch uint64
	plans *planCache
	// metrics is the runtime observability registry: query-latency
	// histograms by SQL template, per-operator totals, slow-query log.
	// It has its own mutex and is safe under any db.mu mode.
	metrics *metricsRegistry
	// logger, when set (by DurableDB), receives one logical record per
	// committed mutation, invoked while the write lock is still held so
	// log order equals commit order. A non-nil error means the commit
	// is not durable: the caller must roll the in-memory mutation back
	// before releasing the lock, so memory never diverges from the WAL.
	logger func(*walRecord) error
	// parallelism is the degree-of-parallelism knob for intra-query
	// execution (see parallel.go): 0 = auto (GOMAXPROCS), 1 = serial.
	// Guarded by mu; changing it bumps the epoch so cached plans
	// re-decide their parallel wrapping.
	parallelism int
}

// setCommitLogger attaches (or detaches, with nil) the durability
// layer's commit logger.
func (db *Database) setCommitLogger(fn func(*walRecord) error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.logger = fn
}

// logCommit hands a committed mutation to the durability layer.
// Caller holds the write lock.
func (db *Database) logCommit(rec *walRecord) error {
	if db.logger == nil {
		return nil
	}
	return db.logger(rec)
}

// New creates an empty database.
func New() *Database {
	return &Database{
		tables:  map[string]*table{},
		indexes: map[string]*IndexDef{},
		plans:   newPlanCache(defaultPlanCacheCap),
		metrics: newMetricsRegistry(),
	}
}

// bumpEpoch advances the schema version. Caller holds the write lock.
func (db *Database) bumpEpoch() { db.epoch++ }

func (db *Database) table(name string) *table {
	return db.tables[strings.ToLower(name)]
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// Exec runs a DDL or DML statement. It returns the number of affected
// rows (0 for DDL). Args bind ? placeholders in order.
func (db *Database) Exec(sql string, args ...Value) (int, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.ExecStmt(stmt, args...)
}

// ExecStmt runs a pre-parsed statement.
func (db *Database) ExecStmt(stmt Stmt, args ...Value) (int, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return 0, errorf("use Query for SELECT statements")
	case *CreateTableStmt:
		return 0, db.createTable(s)
	case *CreateIndexStmt:
		return 0, db.createIndex(s)
	case *DropTableStmt:
		return 0, db.dropTable(s.Name)
	case *DropIndexStmt:
		return 0, db.dropIndex(s.Name)
	case *InsertStmt:
		return db.execInsert(s, args)
	case *DeleteStmt:
		return db.execDelete(s, args)
	case *UpdateStmt:
		return db.execUpdate(s, args)
	}
	return 0, errorf("unsupported statement %T", stmt)
}

// MustExec is Exec that panics on error; intended for tests and setup.
func (db *Database) MustExec(sql string, args ...Value) {
	if _, err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

// Query runs a SELECT and returns the materialized result. Plans are
// served from the epoch-validated plan cache: repeated statements skip
// parsing and planning entirely. Every execution is instrumented: row
// counters per operator plus end-to-end latency feed the metrics
// registry (see Metrics). A statement may be prefixed with
// EXPLAIN or EXPLAIN ANALYZE, in which case the result is the plan text
// (one line per row in a single "plan" column), the latter after really
// executing the query.
func (db *Database) Query(sql string, args ...Value) (*Rows, error) {
	if mode, rest := stripExplainPrefix(sql); mode != explainNone {
		var text string
		var err error
		if mode == explainAnalyze {
			text, err = db.ExplainAnalyze(rest, args...)
		} else {
			text, err = db.Explain(rest, args...)
		}
		if err != nil {
			return nil, err
		}
		lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
		rows := &Rows{Columns: []string{"plan"}}
		for _, l := range lines {
			rows.Data = append(rows.Data, []Value{NewText(l)})
		}
		return rows, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, _, err := db.cachedPlanFor(sql, "Query")
	if err != nil {
		return nil, err
	}
	rs := newRunStats(e.p, false)
	ctx := &evalCtx{db: db, params: args, stats: rs}
	start := time.Now()
	data, err := materialize(ctx, e.p.root)
	if err != nil {
		db.metrics.recordQueryError()
		return nil, err
	}
	db.metrics.recordQuery(sql, e.p.template, time.Since(start), len(data), rs)
	return &Rows{Columns: e.cols, Data: data}, nil
}

// QueryScalar runs a SELECT expected to return a single value; it
// returns NULL for an empty result.
func (db *Database) QueryScalar(sql string, args ...Value) (Value, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return Null, err
	}
	if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
		return Null, nil
	}
	return rows.Data[0][0], nil
}

// Prepared is a compiled SELECT that can be executed repeatedly. The
// plan is pinned to the schema epoch it was compiled at: any DDL —
// dropping or recreating a referenced table, creating or dropping an
// index — makes the statement stale, and Query then returns an error
// instead of executing against orphaned storage. Re-Prepare after DDL.
type Prepared struct {
	db    *Database
	sql   string
	plan  *plan
	cols  []string
	epoch uint64
}

// Prepare compiles a SELECT statement once for repeated execution.
func (db *Database) Prepare(sql string) (*Prepared, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errorf("Prepare requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	start := time.Now()
	p, sch, err := planSelect(db, sel, nil)
	if err != nil {
		return nil, err
	}
	p.template = NormalizeSQL(sql)
	db.metrics.recordPlanCompile(time.Since(start))
	cols := make([]string, len(sch))
	for i, c := range sch {
		cols[i] = c.name
	}
	return &Prepared{db: db, sql: sql, plan: p, cols: cols, epoch: db.epoch}, nil
}

// Query executes the prepared statement. It fails with a "prepared
// statement is stale" error if any DDL ran since Prepare: the compiled
// plan references the exact tables and indexes that existed at prepare
// time, and executing it after a schema change would silently read
// orphaned storage.
func (p *Prepared) Query(args ...Value) (*Rows, error) {
	p.db.mu.RLock()
	defer p.db.mu.RUnlock()
	if p.epoch != p.db.epoch {
		return nil, errorf("prepared statement is stale: schema changed since Prepare (%s)", p.sql)
	}
	rs := newRunStats(p.plan, false)
	ctx := &evalCtx{db: p.db, params: args, stats: rs}
	start := time.Now()
	data, err := materialize(ctx, p.plan.root)
	if err != nil {
		p.db.metrics.recordQueryError()
		return nil, err
	}
	p.db.metrics.recordQuery(p.sql, p.plan.template, time.Since(start), len(data), rs)
	return &Rows{Columns: p.cols, Data: data}, nil
}

func (db *Database) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Def.Name)
	if _, ok := db.tables[key]; ok {
		return errorf("table %s already exists", s.Def.Name)
	}
	def := s.Def
	db.purgeStaleIndexDefs(def.Name)
	db.tables[key] = newTable(&def)
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opCreateTable, Def: &def}); err != nil {
		delete(db.tables, key)
		return err
	}
	return nil
}

// CreateTableDef registers a table programmatically (used by the
// shredding schemes for bulk setup without SQL round trips).
func (db *Database) CreateTableDef(def TableDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, ok := db.tables[key]; ok {
		return errorf("table %s already exists", def.Name)
	}
	db.purgeStaleIndexDefs(def.Name)
	db.tables[key] = newTable(&def)
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opCreateTable, Def: &def}); err != nil {
		delete(db.tables, key)
		return err
	}
	return nil
}

// purgeStaleIndexDefs drops catalog index definitions claiming a table
// that is about to be (re)created. The table does not exist at this
// point, so any such definition is a leftover from a dropped
// incarnation; keeping it would let a recreated table resurrect or
// collide with indexes it never defined. Caller holds the write lock.
func (db *Database) purgeStaleIndexDefs(tableName string) {
	for k, def := range db.indexes {
		if strings.EqualFold(def.Table, tableName) {
			delete(db.indexes, k)
		}
	}
}

func (db *Database) createIndex(s *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := db.indexes[key]; ok {
		return errorf("index %s already exists", s.Name)
	}
	tbl := db.table(s.Table)
	if tbl == nil {
		return errorf("no such table: %s", s.Table)
	}
	def := IndexDef{Name: s.Name, Table: tbl.def.Name, Unique: s.Unique}
	for _, c := range s.Columns {
		ci := tbl.def.ColumnIndex(c)
		if ci < 0 {
			return errorf("no such column %s in table %s", c, s.Table)
		}
		def.Columns = append(def.Columns, ci)
	}
	if _, err := tbl.addIndex(def); err != nil {
		return err
	}
	db.indexes[key] = &def
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opCreateIndex, Index: &def}); err != nil {
		tbl.indexes = tbl.indexes[:len(tbl.indexes)-1]
		delete(db.indexes, key)
		return err
	}
	return nil
}

// createIndexDef registers an index from a definition (snapshot
// restore and WAL replay; column ordinals are already resolved).
func (db *Database) createIndexDef(def IndexDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, ok := db.indexes[key]; ok {
		return errorf("index %s already exists", def.Name)
	}
	tbl := db.table(def.Table)
	if tbl == nil {
		return errorf("no such table: %s", def.Table)
	}
	for _, c := range def.Columns {
		if c < 0 || c >= len(tbl.def.Columns) {
			return errorf("index %s: column ordinal %d out of range", def.Name, c)
		}
	}
	d := def
	d.Columns = append([]int{}, def.Columns...)
	if _, err := tbl.addIndex(d); err != nil {
		return err
	}
	db.indexes[key] = &d
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opCreateIndex, Index: &d}); err != nil {
		tbl.indexes = tbl.indexes[:len(tbl.indexes)-1]
		delete(db.indexes, key)
		return err
	}
	return nil
}

func (db *Database) dropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	tbl, ok := db.tables[key]
	if !ok {
		return errorf("no such table: %s", name)
	}
	var droppedDefs []*IndexDef
	for _, idx := range tbl.indexes {
		ikey := strings.ToLower(idx.def.Name)
		if def, ok := db.indexes[ikey]; ok {
			droppedDefs = append(droppedDefs, def)
			delete(db.indexes, ikey)
		}
	}
	delete(db.tables, key)
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opDropTable, Table: tbl.def.Name}); err != nil {
		db.tables[key] = tbl
		for _, def := range droppedDefs {
			db.indexes[strings.ToLower(def.Name)] = def
		}
		return err
	}
	return nil
}

func (db *Database) dropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	def, ok := db.indexes[key]
	if !ok {
		return errorf("no such index: %s", name)
	}
	tbl := db.table(def.Table)
	var removed *tableIndex
	var removedAt int
	if tbl != nil {
		for i, idx := range tbl.indexes {
			if strings.EqualFold(idx.def.Name, name) {
				removed, removedAt = idx, i
				tbl.indexes = append(tbl.indexes[:i], tbl.indexes[i+1:]...)
				break
			}
		}
	}
	delete(db.indexes, key)
	db.bumpEpoch()
	if err := db.logCommit(&walRecord{Op: opDropIndex, Name: def.Name}); err != nil {
		if removed != nil {
			tbl.indexes = append(tbl.indexes, nil)
			copy(tbl.indexes[removedAt+1:], tbl.indexes[removedAt:])
			tbl.indexes[removedAt] = removed
		}
		db.indexes[key] = def
		return err
	}
	return nil
}

func (db *Database) execInsert(s *InsertStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.table(s.Table)
	if tbl == nil {
		return 0, errorf("no such table: %s", s.Table)
	}
	// Column mapping: target ordinal for each provided value position.
	var mapping []int
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			ci := tbl.def.ColumnIndex(c)
			if ci < 0 {
				return 0, errorf("no such column %s in table %s", c, s.Table)
			}
			mapping = append(mapping, ci)
		}
	} else {
		for i := range tbl.def.Columns {
			mapping = append(mapping, i)
		}
	}

	buildRow := func(vals []Value) ([]Value, error) {
		if len(vals) != len(mapping) {
			return nil, errorf("table %s: expected %d values, got %d", s.Table, len(mapping), len(vals))
		}
		row := make([]Value, len(tbl.def.Columns))
		for i := range row {
			row[i] = Null
		}
		for i, v := range vals {
			col := tbl.def.Columns[mapping[i]]
			row[mapping[i]] = coerceTo(v, col.Type)
		}
		for i, col := range tbl.def.Columns {
			if col.NotNull && row[i].IsNull() {
				return nil, errorf("table %s: column %s is NOT NULL", s.Table, col.Name)
			}
		}
		return row, nil
	}

	// applied collects the rows that actually landed (and their rowids);
	// they are logged as the statement's effect (including a partial
	// prefix when the statement errors mid-way, so durable state tracks
	// memory). If the commit itself cannot be logged, the applied rows
	// are rolled back: memory must never hold state the WAL does not.
	var applied [][]Value
	var appliedRids []int64
	finish := func(execErr error) (int, error) {
		if len(applied) > 0 {
			if logErr := db.logCommit(&walRecord{Op: opInsert, Table: tbl.def.Name, Rows: applied}); logErr != nil {
				for i := len(appliedRids) - 1; i >= 0; i-- {
					tbl.delete(appliedRids[i])
				}
				return 0, logErr
			}
		}
		return len(applied), execErr
	}

	ctx := &evalCtx{db: db, params: args}
	if s.Select != nil {
		p, _, err := planSelect(db, s.Select, nil)
		if err != nil {
			return 0, err
		}
		data, err := materialize(ctx, p.root)
		if err != nil {
			return 0, err
		}
		for _, vals := range data {
			row, err := buildRow(vals)
			if err != nil {
				return finish(err)
			}
			rid, err := tbl.insert(row)
			if err != nil {
				return finish(err)
			}
			applied = append(applied, row)
			appliedRids = append(appliedRids, rid)
		}
		return finish(nil)
	}

	comp := &compiler{db: db, sch: schema{}}
	for _, exprs := range s.Rows {
		vals := make([]Value, len(exprs))
		for i, e := range exprs {
			ce, err := comp.compile(e)
			if err != nil {
				return finish(err)
			}
			vals[i], err = ce(ctx, nil)
			if err != nil {
				return finish(err)
			}
		}
		row, err := buildRow(vals)
		if err != nil {
			return finish(err)
		}
		rid, err := tbl.insert(row)
		if err != nil {
			return finish(err)
		}
		applied = append(applied, row)
		appliedRids = append(appliedRids, rid)
	}
	return finish(nil)
}

// BulkInsert appends rows to a table without SQL parsing, for loaders.
// Values are coerced to the declared column types. The batch is atomic:
// every row is validated before any is stored, and a constraint failure
// mid-batch (duplicate key, unique index) rolls back the rows already
// inserted, leaving the table and its indexes unchanged.
func (db *Database) BulkInsert(tableName string, rows [][]Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.table(tableName)
	if tbl == nil {
		return 0, errorf("no such table: %s", tableName)
	}
	// Phase 1: coerce and validate every row before touching storage.
	coerced := make([][]Value, len(rows))
	for ri, vals := range rows {
		if len(vals) != len(tbl.def.Columns) {
			return 0, errorf("table %s: expected %d values, got %d", tableName, len(tbl.def.Columns), len(vals))
		}
		row := make([]Value, len(vals))
		for i, v := range vals {
			row[i] = coerceTo(v, tbl.def.Columns[i].Type)
			if tbl.def.Columns[i].NotNull && row[i].IsNull() {
				return 0, errorf("table %s: column %s is NOT NULL", tableName, tbl.def.Columns[i].Name)
			}
		}
		coerced[ri] = row
	}
	// Phase 2: insert; on a constraint violation undo what went in.
	inserted := make([]int64, 0, len(coerced))
	for _, row := range coerced {
		rid, err := tbl.insert(row)
		if err != nil {
			for _, undo := range inserted {
				tbl.delete(undo)
			}
			return 0, err
		}
		inserted = append(inserted, rid)
	}
	// Phase 3: log the commit. A logging failure means the batch is not
	// durable; undo it so memory equals what recovery will replay.
	if len(coerced) > 0 {
		if err := db.logCommit(&walRecord{Op: opInsert, Table: tbl.def.Name, Rows: coerced}); err != nil {
			for i := len(inserted) - 1; i >= 0; i-- {
				tbl.delete(inserted[i])
			}
			return 0, err
		}
	}
	return len(inserted), nil
}

func (db *Database) execDelete(s *DeleteStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.table(s.Table)
	if tbl == nil {
		return 0, errorf("no such table: %s", s.Table)
	}
	rids, err := db.matchRows(tbl, s.Where, args)
	if err != nil {
		return 0, err
	}
	images := make([][]Value, 0, len(rids))
	imageRids := make([]int64, 0, len(rids))
	for _, rid := range rids {
		if row := tbl.rows[rid]; row != nil {
			images = append(images, row)
			imageRids = append(imageRids, rid)
		}
		tbl.delete(rid)
	}
	if len(images) > 0 {
		if err := db.logCommit(&walRecord{Op: opDelete, Table: tbl.def.Name, Rows: images}); err != nil {
			// Not durable: restore the deleted rows in place (same
			// rowids, so heap order — document order — is preserved).
			for i := len(imageRids) - 1; i >= 0; i-- {
				tbl.undelete(imageRids[i], images[i])
			}
			return 0, err
		}
	}
	return len(rids), nil
}

func (db *Database) execUpdate(s *UpdateStmt, args []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.table(s.Table)
	if tbl == nil {
		return 0, errorf("no such table: %s", s.Table)
	}
	sch := make(schema, len(tbl.def.Columns))
	for i, c := range tbl.def.Columns {
		sch[i] = colInfo{alias: tbl.def.Name, name: c.Name}
	}
	comp := &compiler{db: db, sch: sch}
	type setOp struct {
		col int
		fn  compiledExpr
	}
	var sets []setOp
	for _, sc := range s.Sets {
		ci := tbl.def.ColumnIndex(sc.Column)
		if ci < 0 {
			return 0, errorf("no such column %s in table %s", sc.Column, s.Table)
		}
		fn, err := comp.compile(sc.Value)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setOp{col: ci, fn: fn})
	}
	rids, err := db.matchRows(tbl, s.Where, args)
	if err != nil {
		return 0, err
	}
	ctx := &evalCtx{db: db, params: args}
	// oldImages/newImages collect the (before, after) row pairs that
	// actually applied; they are logged as the statement's effect (a
	// partial prefix when the statement errors mid-way). If logging the
	// commit fails the updates are reverted in reverse order, so memory
	// matches what recovery will replay.
	var oldImages, newImages [][]Value
	var updatedRids []int64
	finish := func(execErr error) (int, error) {
		if len(newImages) > 0 {
			logErr := db.logCommit(&walRecord{
				Op: opUpdate, Table: tbl.def.Name,
				OldRows: oldImages, Rows: newImages,
			})
			if logErr != nil {
				for i := len(updatedRids) - 1; i >= 0; i-- {
					// Reverting to the prior image cannot violate
					// uniqueness: in reverse order each step restores a
					// state that held before.
					_ = tbl.update(updatedRids[i], oldImages[i])
				}
				return 0, logErr
			}
		}
		return len(newImages), execErr
	}
	for _, rid := range rids {
		old := tbl.rows[rid]
		if old == nil {
			continue
		}
		row := append([]Value{}, old...)
		for _, so := range sets {
			v, err := so.fn(ctx, old)
			if err != nil {
				return finish(err)
			}
			row[so.col] = coerceTo(v, tbl.def.Columns[so.col].Type)
			if tbl.def.Columns[so.col].NotNull && row[so.col].IsNull() {
				return finish(errorf("table %s: column %s is NOT NULL", s.Table, tbl.def.Columns[so.col].Name))
			}
		}
		if err := tbl.update(rid, row); err != nil {
			return finish(err)
		}
		oldImages = append(oldImages, old)
		newImages = append(newImages, row)
		updatedRids = append(updatedRids, rid)
	}
	return finish(nil)
}

// matchRows returns rowids matching a WHERE predicate (all live rows when
// where is nil). Caller holds the write lock.
func (db *Database) matchRows(tbl *table, where Expr, args []Value) ([]int64, error) {
	var pred compiledExpr
	if where != nil {
		sch := make(schema, len(tbl.def.Columns))
		for i, c := range tbl.def.Columns {
			sch[i] = colInfo{alias: tbl.def.Name, name: c.Name}
		}
		comp := &compiler{db: db, sch: sch}
		var err error
		pred, err = comp.compile(where)
		if err != nil {
			return nil, err
		}
	}
	ctx := &evalCtx{db: db, params: args}
	var rids []int64
	for rid, row := range tbl.rows {
		if row == nil {
			continue
		}
		if pred != nil {
			v, err := pred(ctx, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		rids = append(rids, int64(rid))
	}
	return rids, nil
}

// TableStats summarizes one table's storage.
type TableStats struct {
	Name    string
	Rows    int
	Bytes   int64
	Indexes int
}

// DatabaseStats bundles per-table storage statistics with the engine's
// cache activity, the runtime metrics registry and the current schema
// epoch.
type DatabaseStats struct {
	Tables      []TableStats
	PlanCache   CacheStats
	Metrics     MetricsSnapshot
	SchemaEpoch uint64
}

// Stats returns storage and cache statistics; tables are sorted by name.
func (db *Database) Stats() DatabaseStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tables := make([]TableStats, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, TableStats{
			Name:    t.def.Name,
			Rows:    t.live,
			Bytes:   t.bytes,
			Indexes: len(t.indexes),
		})
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	return DatabaseStats{
		Tables:      tables,
		PlanCache:   db.plans.stats(),
		Metrics:     db.metrics.snapshot(),
		SchemaEpoch: db.epoch,
	}
}

// TableNames lists the tables, sorted.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.def.Name)
	}
	sort.Strings(out)
	return out
}

// TableDef returns the schema of a table, or nil if absent.
func (db *Database) TableDef(name string) *TableDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.table(name)
	if t == nil {
		return nil
	}
	def := *t.def
	return &def
}

// TotalBytes sums the payload bytes across all tables.
func (db *Database) TotalBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, t := range db.tables {
		n += t.bytes
	}
	return n
}

// TotalRows sums live rows across all tables.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.live
	}
	return n
}
