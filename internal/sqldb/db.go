package sqldb

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// dbState is one immutable published version of the entire database:
// the catalog plus every table version, stamped with the schema epoch
// and the commit sequence that produced it. Readers load the current
// state with one atomic pointer read and run against it with no lock
// held; writers clone it, mutate the clone privately, and publish at
// commit. A state, once published, is never mutated.
type dbState struct {
	// seq is the commit sequence of the publish. It is unified with the
	// WAL: under a DurableDB every committed record's WAL sequence is
	// the state's seq, so "snapshot at seq S" names both an in-memory
	// version and a WAL position.
	seq uint64
	// epoch is the schema version, advanced by every DDL statement (and
	// by SetParallelism). Compiled plans — cached or prepared — are
	// valid only for the epoch they were planned at (see plancache.go).
	epoch       uint64
	tables      map[string]*table
	indexes     map[string]*IndexDef // index name -> def (table lookup)
	parallelism int
	// vectorized selects batch-at-a-time execution for new queries.
	// Unlike parallelism it does not bump the schema epoch: plan trees
	// are identical in both modes (the engines share one plan), so
	// cached and prepared plans stay valid and only the evalCtx built at
	// query start changes.
	vectorized bool
}

func (st *dbState) table(name string) *table {
	return st.tables[lowerName(name)]
}

func (st *dbState) shallowClone() *dbState {
	c := &dbState{
		seq:         st.seq,
		epoch:       st.epoch,
		parallelism: st.parallelism,
		vectorized:  st.vectorized,
		tables:      make(map[string]*table, len(st.tables)),
		indexes:     make(map[string]*IndexDef, len(st.indexes)),
	}
	for k, v := range st.tables {
		c.tables[k] = v
	}
	for k, v := range st.indexes {
		c.indexes[k] = v
	}
	return c
}

func lowerName(name string) string { return strings.ToLower(name) }

// Database is an in-memory relational database with snapshot-isolated
// reads: queries, EXPLAIN ANALYZE and reconstruction pin the latest
// published dbState and never block (or are blocked by) writers.
// Writers serialize among themselves on writeMu, mutate a private
// copy-on-write clone of the state, and publish it atomically at
// commit.
type Database struct {
	state   atomic.Pointer[dbState]
	writeMu sync.Mutex
	// head is the newest staged state — committed in memory, possibly
	// still awaiting its WAL fsync. Guarded by writeMu. Writers clone
	// head (not the published state) so the commit chain stays linear
	// while earlier commits are still in flight in the WAL pipeline;
	// readers keep seeing only the published (ack-complete) state.
	head *dbState
	// stageTicket numbers commits in stage order (guarded by writeMu);
	// publication happens strictly in ticket order so the published
	// state chain is byte-identical to serial execution.
	stageTicket uint64
	// pubMu/pubCond/pubTicket gate publication: a commit whose WAL fsync
	// finished out of order waits here for its predecessors.
	pubMu     sync.Mutex
	pubCond   *sync.Cond
	pubTicket uint64
	// gen numbers writer transactions; copy-on-write storage uses it to
	// distinguish nodes/pages a transaction owns (mutate in place) from
	// shared ones (copy first).
	gen atomic.Uint64
	// seq issues commit sequence numbers when no durability layer is
	// attached; with a commit hook, the WAL assigns them (see
	// stageCommit in durable.go).
	seq   atomic.Uint64
	plans *planCache
	// metrics is the runtime observability registry: query-latency
	// histograms by SQL template, per-operator totals, slow-query log.
	// It has its own mutex and is safe from any goroutine.
	metrics *metricsRegistry
	// snaps tracks snapshot activity: acquisitions, pinned snapshots and
	// their ages, writer publish waits, superseded-version counts.
	snaps *snapTracker
	// commitHook, when set (by DurableDB), stages one logical record per
	// committed mutation while writeMu is held, so log order equals
	// commit order. It returns a wait function the writer invokes after
	// releasing writeMu; wait blocks until the record's WAL frame is
	// fsynced (batched with concurrently arriving commits). A non-nil
	// error from either phase means the commit is not durable: the
	// writer then discards its pending state without publishing, so the
	// published state never diverges from the WAL. A nil wait means the
	// record needs no post-stage durability step (group-buffered
	// records, stub loggers).
	commitHook func(*walRecord) (wait func() error, err error)
	// memBudget is the engine-wide memory pool queries reserve their
	// working set from (total <= 0 = unlimited); queryMemLimit caps one
	// query's reservation. See governor.go.
	memBudget     memPool
	queryMemLimit atomic.Int64
	// gate, when non-nil, bounds concurrent query execution with a
	// finite wait queue (admission control).
	gate atomic.Pointer[admissionGate]
	// pool is the buffer pool: with a non-zero cap it bounds resident
	// sealed heap pages, spilling evicted ones to disk (bufferpool.go).
	// Always non-nil; cap 0 keeps every page in memory.
	pool *pageStore
}

// setCommitLogger attaches (or detaches, with nil) a synchronous commit
// logger: the record is durable (or rejected) by the time the logger
// returns. Kept for stub loggers in tests; DurableDB attaches the
// two-phase pipeline via setCommitHook.
func (db *Database) setCommitLogger(fn func(*walRecord) error) {
	if fn == nil {
		db.setCommitHook(nil)
		return
	}
	db.setCommitHook(func(rec *walRecord) (func() error, error) {
		return nil, fn(rec)
	})
}

// setCommitHook attaches (or detaches, with nil) the durability layer's
// two-phase commit pipeline.
func (db *Database) setCommitHook(fn func(*walRecord) (func() error, error)) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.commitHook = fn
}

// New creates an empty database.
func New() *Database {
	db := &Database{
		plans:   newPlanCache(defaultPlanCacheCap),
		metrics: newMetricsRegistry(),
		snaps:   newSnapTracker(),
	}
	db.pubCond = sync.NewCond(&db.pubMu)
	st := &dbState{
		tables:  map[string]*table{},
		indexes: map[string]*IndexDef{},
	}
	// XRDB_VECTORIZED flips the default execution mode for every new
	// database, so the entire test suite can run vectorized against the
	// row engine's expectations (see the Makefile vmatrix target).
	if v := os.Getenv("XRDB_VECTORIZED"); v != "" && v != "0" && !strings.EqualFold(v, "false") {
		st.vectorized = true
	}
	db.pool = newPageStore()
	db.pool.openFile = tempSpillFile
	// XRDB_BUFFER_POOL caps the buffer pool for every new database, so
	// the whole differential suite can run with heavy eviction (see the
	// Makefile diskmatrix target).
	if v := os.Getenv("XRDB_BUFFER_POOL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			db.pool.setCap(n)
		}
	}
	db.state.Store(st)
	db.head = st
	return db
}

// SetBufferPool caps how many sealed heap pages stay resident; beyond
// the cap, pages spill to disk and fault back in on demand. 0 restores
// unbounded in-memory storage (the default). Full pages of the current
// published state are sealed into the pool immediately; later commits
// seal their own full pages at publish.
func (db *Database) SetBufferPool(pages int) {
	db.pool.setCap(pages)
	if pages <= 0 {
		return
	}
	st := db.state.Load()
	for _, t := range st.tables {
		n := t.fullPages()
		if n > len(t.pages) {
			n = len(t.pages)
		}
		for pi := 0; pi < n; pi++ {
			db.pool.add(t.pages[pi], st.seq)
		}
	}
}

// BufferPool reports the pool's cap (0 = unbounded).
func (db *Database) BufferPool() int { return db.pool.capNow() }

// SetVectorized selects batch-at-a-time execution for subsequent
// queries. The toggle is purely an execution-mode switch: plans are
// shared between the engines, so unlike SetParallelism it does not
// invalidate cached or prepared plans.
func (db *Database) SetVectorized(on bool) {
	tx := db.beginWrite()
	if tx.st.vectorized == on {
		tx.abort()
		return
	}
	tx.st.vectorized = on
	tx.commit(nil)
}

// Vectorized reports whether batch-at-a-time execution is enabled.
func (db *Database) Vectorized() bool {
	return db.state.Load().vectorized
}

// readState pins the current published state for one read operation.
func (db *Database) readState() *dbState {
	db.snaps.recordAcquire()
	return db.state.Load()
}

// SetMemoryBudget caps the total working-set bytes of all concurrently
// executing queries (hash-join builds, sorts, aggregation tables,
// materialized results). n <= 0 disables the budget. A query whose
// charge overruns the pool aborts with ErrMemoryBudgetExceeded;
// concurrent queries and writers are unaffected.
func (db *Database) SetMemoryBudget(n int64) {
	if n < 0 {
		n = 0
	}
	db.memBudget.total.Store(n)
}

// SetQueryMemoryLimit caps one query's working-set bytes independently
// of the shared engine budget. n <= 0 disables the per-query limit.
func (db *Database) SetQueryMemoryLimit(n int64) {
	if n < 0 {
		n = 0
	}
	db.queryMemLimit.Store(n)
}

// SetAdmissionControl bounds concurrent query execution: up to
// maxConcurrent queries run at once, up to maxQueue more wait for a
// slot (honoring their context deadline), and beyond that new queries
// are rejected immediately with ErrOverloaded. maxConcurrent <= 0
// disables admission control.
func (db *Database) SetAdmissionControl(maxConcurrent, maxQueue int) {
	db.gate.Store(newAdmissionGate(maxConcurrent, maxQueue))
}

// newMemAccountant builds the accountant for one query, or nil when no
// budget is configured (the common case: zero overhead).
func (db *Database) newMemAccountant() *memAccountant {
	limit := db.queryMemLimit.Load()
	total := db.memBudget.total.Load()
	if limit <= 0 && total <= 0 {
		return nil
	}
	m := &memAccountant{limit: limit}
	if total > 0 {
		m.pool = &db.memBudget
	}
	return m
}

// runGuarded executes a compiled plan to completion behind the
// executor panic barrier: a panic anywhere below (operator code,
// expression evaluation, kernels) becomes a typed ErrInternal result
// for this query alone. Gather workers install their own barriers
// (parallel.go) so a worker panic drains the segment and surfaces
// here as an ordinary error.
func runGuarded(ctx *evalCtx, root planNode) (data [][]Value, err error) {
	defer recoverToError(&err)
	return materialize(ctx, root)
}

// setSeq forces the commit sequence (and the published state's seq) to
// n. The durability layer calls it after recovery so the in-memory
// sequence exactly matches the WAL high-water mark.
func (db *Database) setSeq(n uint64) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.seq.Store(n)
	base := db.state.Load()
	if base.seq != n {
		st := base.shallowClone()
		st.seq = n
		db.state.Store(st)
		db.head = st
	}
}

// writeTx is one writer transaction: a private clone of the published
// state at begin time. Tables are cloned copy-on-write on first touch
// (wtable); commit logs the statement's record and publishes the clone,
// while abort simply drops it — nothing the transaction did is ever
// visible.
type writeTx struct {
	db   *Database
	base *dbState
	st   *dbState
	gen  uint64
	// done flips when the transaction released writeMu (commit or
	// abort); guard uses it to unwind a panicking writer safely.
	done bool
	// ticket/finished track the publish turn commit staged: if a panic
	// fires after staging but before the turn is consumed, guard
	// consumes it so successors don't block forever.
	ticket   uint64
	finished bool
}

// guard is the writer-side panic barrier: install as
//
//	defer tx.guard(&err)
//
// right after beginWrite. A panic anywhere in the statement body
// becomes a typed ErrInternal, the pending state is discarded
// unpublished, writeMu is released, and any staged publish ticket is
// consumed — a panicking writer never wedges writeMu or the publish
// pipeline.
func (tx *writeTx) guard(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if !tx.done {
		tx.abort()
	} else if tx.ticket != 0 && !tx.finished {
		tx.db.finishTicket(tx.ticket, nil, 0)
	}
	*errp = internalError(r)
}

// beginWrite acquires the writer slot and clones the newest staged
// state. Cloning head (not the published state) keeps the commit chain
// linear while earlier commits are still waiting on their batched WAL
// fsync: this writer's statement observes every commit serialized
// before it, published or not. If any of those predecessors fails its
// fsync the engine goes fail-stop and this commit fails too, so a
// state built on a doomed predecessor is never published.
func (db *Database) beginWrite() *writeTx {
	waitStart := time.Now()
	db.writeMu.Lock()
	db.snaps.recordPublishWait(time.Since(waitStart))
	base := db.head
	return &writeTx{db: db, base: base, st: base.shallowClone(), gen: db.gen.Add(1)}
}

// wtable returns a writable version of the named table in the pending
// state, cloning the published version on first touch. Nil when the
// table does not exist.
func (tx *writeTx) wtable(name string) *table {
	key := lowerName(name)
	t := tx.st.tables[key]
	if t == nil {
		return nil
	}
	if t.gen != tx.gen {
		t = t.beginWrite(tx.gen)
		tx.st.tables[key] = t
	}
	return t
}

// commit stages rec (nil for a metadata-only change that has no WAL
// effect) and publishes the pending state. The ack-implies-durable
// contract is structural: with a durability hook attached, the record
// is staged into the WAL pipeline under writeMu (so log order equals
// commit order), writeMu is released so later writers can stage and
// share the next fsync batch, and only after the batch fsync covers
// this record is the state published — in stage order — and the call
// returns. If staging or the fsync fails the pending state is discarded
// — "rollback" is simply never publishing — and the error is returned.
func (tx *writeTx) commit(rec *walRecord) error {
	db := tx.db
	var wait func() error
	if rec != nil {
		if db.commitHook != nil {
			w, err := db.commitHook(rec)
			if err != nil {
				tx.done = true
				db.writeMu.Unlock()
				return err
			}
			wait = w
			tx.st.seq = rec.Seq
			db.seq.Store(rec.Seq)
		} else {
			tx.st.seq = db.seq.Add(1)
		}
	}
	reclaimed := 0
	for k, t := range tx.base.tables {
		if tx.st.tables[k] != t {
			reclaimed++
		}
	}
	// Collect pages this writer filled (or copy-on-wrote full) while
	// writeMu still guards the table versions; they are sealed into the
	// buffer pool only after the version publishes. A failed commit
	// skips registration: its pages refill under the re-anchored count.
	var sealed []*heapPage
	for _, t := range tx.st.tables {
		if t.gen == tx.gen && len(t.sealq) > 0 {
			sealed = append(sealed, t.sealq...)
			t.sealq = nil
		}
	}
	db.head = tx.st
	db.stageTicket++
	ticket := db.stageTicket
	tx.ticket = ticket
	tx.done = true
	db.writeMu.Unlock()

	if wait != nil {
		if err := wait(); err != nil {
			// Not durable: take the publish turn without publishing, so
			// successors (which are failing too) don't block forever.
			db.finishTicket(ticket, nil, 0)
			tx.finished = true
			return err
		}
	}
	db.finishTicket(ticket, tx.st, reclaimed)
	tx.finished = true
	for _, p := range sealed {
		db.pool.add(p, tx.st.seq)
	}
	return nil
}

// finishTicket publishes st (or, with nil, merely consumes the turn of
// a failed commit) strictly in stage-ticket order, so the published
// state sequence is exactly the serial commit chain.
func (db *Database) finishTicket(ticket uint64, st *dbState, reclaimed int) {
	db.pubMu.Lock()
	if db.pubTicket+1 != ticket {
		db.snaps.recordPublishOrderWait()
		for db.pubTicket+1 != ticket {
			db.pubCond.Wait()
		}
	}
	if st != nil {
		db.state.Store(st)
		db.snaps.recordPublish(reclaimed)
	}
	db.pubTicket = ticket
	db.pubCond.Broadcast()
	db.pubMu.Unlock()
}

// abort discards the pending state.
func (tx *writeTx) abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.writeMu.Unlock()
}

// resetStaged discards any staged-but-unpublished chain: it waits until
// every issued publish ticket has been consumed (failed commits consume
// theirs without publishing), then re-anchors head and the sequence
// counter at the published state. The durability layer calls it during
// Recover, after a storage fault doomed the tail of the staged chain.
func (db *Database) resetStaged() {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.pubMu.Lock()
	for db.pubTicket != db.stageTicket {
		db.pubCond.Wait()
	}
	db.pubMu.Unlock()
	st := db.state.Load()
	db.head = st
	db.seq.Store(st.seq)
}

// resetToRecovered replaces both the published and staged state with a
// state the durability layer rebuilt from the acknowledged WAL prefix.
// The live engine's execution knobs (parallelism, vectorized mode)
// carry over, and the schema epoch advances past everything this
// engine has handed out, so every cached plan and prepared statement
// goes stale — the schema may have rolled back to a shape an old epoch
// number described. Caller must have quiesced writers (resetStaged).
func (db *Database) resetToRecovered(st *dbState) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.state.Load()
	ns := st.shallowClone()
	ns.parallelism = cur.parallelism
	ns.vectorized = cur.vectorized
	if ns.epoch <= cur.epoch {
		ns.epoch = cur.epoch + 1
	}
	db.state.Store(ns)
	db.head = ns
	db.seq.Store(ns.seq)
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// Queryer is the read surface shared by Database and Snapshot: direct
// SQL queries against either the live database or one pinned version.
type Queryer interface {
	Query(sql string, args ...Value) (*Rows, error)
	QueryScalar(sql string, args ...Value) (Value, error)
}

// Exec runs a DDL or DML statement. It returns the number of affected
// rows (0 for DDL). Args bind ? placeholders in order.
func (db *Database) Exec(sql string, args ...Value) (int, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.ExecStmt(stmt, args...)
}

// ExecStmt runs a pre-parsed statement.
func (db *Database) ExecStmt(stmt Stmt, args ...Value) (int, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return 0, errorf("use Query for SELECT statements")
	case *CreateTableStmt:
		return 0, db.createTableDef(s.Def)
	case *CreateIndexStmt:
		return 0, db.createIndex(s)
	case *DropTableStmt:
		return 0, db.dropTable(s.Name)
	case *DropIndexStmt:
		return 0, db.dropIndex(s.Name)
	case *InsertStmt:
		return db.execInsert(s, args)
	case *DeleteStmt:
		return db.execDelete(s, args)
	case *UpdateStmt:
		return db.execUpdate(s, args)
	}
	return 0, errorf("unsupported statement %T", stmt)
}

// MustExec is Exec that panics on error; intended for tests and setup.
func (db *Database) MustExec(sql string, args ...Value) {
	if _, err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

// Query runs a SELECT and returns the materialized result. The query
// pins the latest published snapshot and runs lock-free against it.
// Plans are served from the epoch-validated plan cache: repeated
// statements skip parsing and planning entirely. Every execution is
// instrumented: row counters per operator plus end-to-end latency feed
// the metrics registry (see Metrics). A statement may be prefixed with
// EXPLAIN or EXPLAIN ANALYZE, in which case the result is the plan text
// (one line per row in a single "plan" column), the latter after really
// executing the query.
func (db *Database) Query(sql string, args ...Value) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, args...)
}

// QueryContext is Query honoring a context: cancellation or deadline
// expiry aborts execution at the next operator chokepoint and returns
// the context's error.
func (db *Database) QueryContext(qctx context.Context, sql string, args ...Value) (*Rows, error) {
	if mode, rest := stripExplainPrefix(sql); mode != explainNone {
		var text string
		var err error
		if mode == explainAnalyze {
			text, err = db.ExplainAnalyze(rest, args...)
		} else {
			text, err = db.Explain(rest, args...)
		}
		if err != nil {
			return nil, err
		}
		lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
		rows := &Rows{Columns: []string{"plan"}}
		for _, l := range lines {
			rows.Data = append(rows.Data, []Value{NewText(l)})
		}
		return rows, nil
	}
	return db.queryAt(qctx, db.readState(), sql, args)
}

// queryAt executes a SELECT against one pinned state.
func (db *Database) queryAt(qctx context.Context, st *dbState, sql string, args []Value) (*Rows, error) {
	e, _, err := db.cachedPlanFor(st, sql, "Query")
	if err != nil {
		return nil, err
	}
	release, err := db.gate.Load().admit(qctx)
	if err != nil {
		db.metrics.recordQueryError()
		return nil, err
	}
	defer release()
	mem := db.newMemAccountant()
	defer mem.close()
	rs := newRunStats(e.p, false)
	ctx := &evalCtx{snap: st, qctx: qctx, params: args, stats: rs, vec: st.vectorized, mem: mem}
	start := time.Now()
	data, err := runGuarded(ctx, e.p.root)
	if err != nil {
		db.metrics.recordQueryError()
		return nil, err
	}
	db.metrics.recordQuery(sql, e.p.template, time.Since(start), len(data), rs)
	return &Rows{Columns: e.cols, Data: data}, nil
}

// QueryScalar runs a SELECT expected to return a single value; it
// returns NULL for an empty result.
func (db *Database) QueryScalar(sql string, args ...Value) (Value, error) {
	return scalarOf(db.Query(sql, args...))
}

func scalarOf(rows *Rows, err error) (Value, error) {
	if err != nil {
		return Null, err
	}
	if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
		return Null, nil
	}
	return rows.Data[0][0], nil
}

// Prepared is a compiled SELECT that can be executed repeatedly. The
// plan is pinned to the schema epoch it was compiled at: any DDL —
// dropping or recreating a referenced table, creating or dropping an
// index — makes the statement stale, and Query then returns an error
// instead of executing against orphaned storage. Re-Prepare after DDL.
type Prepared struct {
	db    *Database
	sql   string
	plan  *plan
	cols  []string
	epoch uint64
}

// Prepare compiles a SELECT statement once for repeated execution.
func (db *Database) Prepare(sql string) (*Prepared, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errorf("Prepare requires a SELECT statement")
	}
	st := db.readState()
	start := time.Now()
	p, sch, err := planSelect(st, sel, nil)
	if err != nil {
		return nil, err
	}
	p.template = NormalizeSQL(sql)
	db.metrics.recordPlanCompile(time.Since(start))
	cols := make([]string, len(sch))
	for i, c := range sch {
		cols[i] = c.name
	}
	return &Prepared{db: db, sql: sql, plan: p, cols: cols, epoch: st.epoch}, nil
}

// Query executes the prepared statement against the latest published
// snapshot. It fails with a "prepared statement is stale" error if any
// DDL ran since Prepare: the compiled plan references the exact tables
// and indexes that existed at prepare time, and executing it after a
// schema change would silently read orphaned storage.
func (p *Prepared) Query(args ...Value) (*Rows, error) {
	return p.QueryContext(context.Background(), args...)
}

// QueryContext is Query honoring a context deadline/cancellation.
func (p *Prepared) QueryContext(qctx context.Context, args ...Value) (*Rows, error) {
	st := p.db.readState()
	if p.epoch != st.epoch {
		return nil, fmt.Errorf("sqldb: %w: schema changed since Prepare (%s)", ErrPreparedStale, p.sql)
	}
	release, err := p.db.gate.Load().admit(qctx)
	if err != nil {
		p.db.metrics.recordQueryError()
		return nil, err
	}
	defer release()
	mem := p.db.newMemAccountant()
	defer mem.close()
	rs := newRunStats(p.plan, false)
	ctx := &evalCtx{snap: st, qctx: qctx, params: args, stats: rs, vec: st.vectorized, mem: mem}
	start := time.Now()
	data, err := runGuarded(ctx, p.plan.root)
	if err != nil {
		p.db.metrics.recordQueryError()
		return nil, err
	}
	p.db.metrics.recordQuery(p.sql, p.plan.template, time.Since(start), len(data), rs)
	return &Rows{Columns: p.cols, Data: data}, nil
}

// CreateTableDef registers a table programmatically (used by the
// shredding schemes for bulk setup without SQL round trips, by SQL
// CREATE TABLE, and by snapshot restore/WAL replay).
func (db *Database) CreateTableDef(def TableDef) error {
	return db.createTableDef(def)
}

func (db *Database) createTableDef(def TableDef) (err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	key := lowerName(def.Name)
	if _, ok := tx.st.tables[key]; ok {
		tx.abort()
		return errorf("table %s already exists", def.Name)
	}
	tx.purgeStaleIndexDefs(def.Name)
	d := def
	tx.st.tables[key] = newTable(&d, tx.gen)
	tx.st.epoch++
	return tx.commit(&walRecord{Op: opCreateTable, Def: &d})
}

// purgeStaleIndexDefs drops catalog index definitions claiming a table
// that is about to be (re)created. The table does not exist at this
// point, so any such definition is a leftover from a dropped
// incarnation; keeping it would let a recreated table resurrect or
// collide with indexes it never defined.
func (tx *writeTx) purgeStaleIndexDefs(tableName string) {
	for k, def := range tx.st.indexes {
		if strings.EqualFold(def.Table, tableName) {
			delete(tx.st.indexes, k)
		}
	}
}

func (db *Database) createIndex(s *CreateIndexStmt) (err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	key := lowerName(s.Name)
	if _, ok := tx.st.indexes[key]; ok {
		tx.abort()
		return errorf("index %s already exists", s.Name)
	}
	tbl := tx.wtable(s.Table)
	if tbl == nil {
		tx.abort()
		return errorf("no such table: %s", s.Table)
	}
	def := IndexDef{Name: s.Name, Table: tbl.def.Name, Unique: s.Unique}
	for _, c := range s.Columns {
		ci := tbl.def.ColumnIndex(c)
		if ci < 0 {
			tx.abort()
			return errorf("no such column %s in table %s", c, s.Table)
		}
		def.Columns = append(def.Columns, ci)
	}
	if _, err := tbl.addIndex(def); err != nil {
		tx.abort()
		return err
	}
	tx.st.indexes[key] = &def
	tx.st.epoch++
	return tx.commit(&walRecord{Op: opCreateIndex, Index: &def})
}

// createIndexDef registers an index from a definition (snapshot
// restore and WAL replay; column ordinals are already resolved).
func (db *Database) createIndexDef(def IndexDef) (err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	key := lowerName(def.Name)
	if _, ok := tx.st.indexes[key]; ok {
		tx.abort()
		return errorf("index %s already exists", def.Name)
	}
	tbl := tx.wtable(def.Table)
	if tbl == nil {
		tx.abort()
		return errorf("no such table: %s", def.Table)
	}
	for _, c := range def.Columns {
		if c < 0 || c >= len(tbl.def.Columns) {
			tx.abort()
			return errorf("index %s: column ordinal %d out of range", def.Name, c)
		}
	}
	d := def
	d.Columns = append([]int{}, def.Columns...)
	if _, err := tbl.addIndex(d); err != nil {
		tx.abort()
		return err
	}
	tx.st.indexes[key] = &d
	tx.st.epoch++
	return tx.commit(&walRecord{Op: opCreateIndex, Index: &d})
}

func (db *Database) dropTable(name string) (err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	key := lowerName(name)
	tbl, ok := tx.st.tables[key]
	if !ok {
		tx.abort()
		return errorf("no such table: %s", name)
	}
	for _, idx := range tbl.indexes {
		delete(tx.st.indexes, lowerName(idx.def.Name))
	}
	delete(tx.st.tables, key)
	tx.st.epoch++
	return tx.commit(&walRecord{Op: opDropTable, Table: tbl.def.Name})
}

func (db *Database) dropIndex(name string) (err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	key := lowerName(name)
	def, ok := tx.st.indexes[key]
	if !ok {
		tx.abort()
		return errorf("no such index: %s", name)
	}
	if tbl := tx.wtable(def.Table); tbl != nil {
		for i, idx := range tbl.indexes {
			if strings.EqualFold(idx.def.Name, name) {
				tbl.indexes = append(tbl.indexes[:i], tbl.indexes[i+1:]...)
				break
			}
		}
	}
	delete(tx.st.indexes, key)
	tx.st.epoch++
	return tx.commit(&walRecord{Op: opDropIndex, Name: def.Name})
}

func (db *Database) execInsert(s *InsertStmt, args []Value) (n int, err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	tbl := tx.wtable(s.Table)
	if tbl == nil {
		tx.abort()
		return 0, errorf("no such table: %s", s.Table)
	}
	// Column mapping: target ordinal for each provided value position.
	var mapping []int
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			ci := tbl.def.ColumnIndex(c)
			if ci < 0 {
				tx.abort()
				return 0, errorf("no such column %s in table %s", c, s.Table)
			}
			mapping = append(mapping, ci)
		}
	} else {
		for i := range tbl.def.Columns {
			mapping = append(mapping, i)
		}
	}

	buildRow := func(vals []Value) ([]Value, error) {
		if len(vals) != len(mapping) {
			return nil, errorf("table %s: expected %d values, got %d", s.Table, len(mapping), len(vals))
		}
		row := make([]Value, len(tbl.def.Columns))
		for i := range row {
			row[i] = Null
		}
		for i, v := range vals {
			col := tbl.def.Columns[mapping[i]]
			row[mapping[i]] = coerceTo(v, col.Type)
		}
		for i, col := range tbl.def.Columns {
			if col.NotNull && row[i].IsNull() {
				return nil, errorf("table %s: column %s is NOT NULL", s.Table, col.Name)
			}
		}
		return row, nil
	}

	// applied collects the rows that actually landed; they are logged
	// and published as the statement's effect (including a partial
	// prefix when the statement errors mid-way, so durable state tracks
	// memory). If the commit itself cannot be logged, the pending state
	// is discarded unpublished: memory never holds state the WAL does
	// not.
	var applied [][]Value
	finish := func(execErr error) (int, error) {
		if len(applied) == 0 {
			tx.abort()
			return 0, execErr
		}
		if logErr := tx.commit(&walRecord{Op: opInsert, Table: tbl.def.Name, Rows: applied}); logErr != nil {
			return 0, logErr
		}
		return len(applied), execErr
	}

	ctx := &evalCtx{snap: tx.st, qctx: context.Background(), params: args}
	if s.Select != nil {
		p, _, err := planSelect(tx.st, s.Select, nil)
		if err != nil {
			tx.abort()
			return 0, err
		}
		data, err := materialize(ctx, p.root)
		if err != nil {
			tx.abort()
			return 0, err
		}
		for _, vals := range data {
			row, err := buildRow(vals)
			if err != nil {
				return finish(err)
			}
			if _, err := tbl.insert(row); err != nil {
				return finish(err)
			}
			applied = append(applied, row)
		}
		return finish(nil)
	}

	comp := &compiler{st: tx.st, sch: schema{}}
	for _, exprs := range s.Rows {
		vals := make([]Value, len(exprs))
		for i, e := range exprs {
			ce, err := comp.compile(e)
			if err != nil {
				return finish(err)
			}
			vals[i], err = ce(ctx, nil)
			if err != nil {
				return finish(err)
			}
		}
		row, err := buildRow(vals)
		if err != nil {
			return finish(err)
		}
		if _, err := tbl.insert(row); err != nil {
			return finish(err)
		}
		applied = append(applied, row)
	}
	return finish(nil)
}

// BulkInsert appends rows to a table without SQL parsing, for loaders.
// Values are coerced to the declared column types. The batch is atomic:
// every row is validated before any is stored, and a constraint failure
// mid-batch (duplicate key, unique index) discards the pending version,
// leaving the published table and its indexes unchanged.
func (db *Database) BulkInsert(tableName string, rows [][]Value) (n int, err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	tbl := tx.wtable(tableName)
	if tbl == nil {
		tx.abort()
		return 0, errorf("no such table: %s", tableName)
	}
	// Phase 1: coerce and validate every row before touching storage.
	coerced := make([][]Value, len(rows))
	for ri, vals := range rows {
		if len(vals) != len(tbl.def.Columns) {
			tx.abort()
			return 0, errorf("table %s: expected %d values, got %d", tableName, len(tbl.def.Columns), len(vals))
		}
		row := make([]Value, len(vals))
		for i, v := range vals {
			row[i] = coerceTo(v, tbl.def.Columns[i].Type)
			if tbl.def.Columns[i].NotNull && row[i].IsNull() {
				tx.abort()
				return 0, errorf("table %s: column %s is NOT NULL", tableName, tbl.def.Columns[i].Name)
			}
		}
		coerced[ri] = row
	}
	// Phase 2: insert into the pending version; a constraint violation
	// discards it whole, so the batch is all-or-nothing.
	for _, row := range coerced {
		if _, err := tbl.insert(row); err != nil {
			tx.abort()
			return 0, err
		}
	}
	if len(coerced) == 0 {
		tx.abort()
		return 0, nil
	}
	// Phase 3: log the commit and publish. A logging failure means the
	// batch is not durable; the pending version is dropped so memory
	// equals what recovery will replay.
	if err := tx.commit(&walRecord{Op: opInsert, Table: tbl.def.Name, Rows: coerced}); err != nil {
		return 0, err
	}
	return len(coerced), nil
}

func (db *Database) execDelete(s *DeleteStmt, args []Value) (n int, err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	tbl := tx.wtable(s.Table)
	if tbl == nil {
		tx.abort()
		return 0, errorf("no such table: %s", s.Table)
	}
	rids, err := matchRows(tx.st, tbl, s.Where, args)
	if err != nil {
		tx.abort()
		return 0, err
	}
	images := make([][]Value, 0, len(rids))
	for _, rid := range rids {
		if row := tbl.row(rid); row != nil {
			images = append(images, row)
		}
		tbl.delete(rid)
	}
	if len(images) == 0 {
		tx.abort()
		return len(rids), nil
	}
	if err := tx.commit(&walRecord{Op: opDelete, Table: tbl.def.Name, Rows: images}); err != nil {
		return 0, err
	}
	return len(rids), nil
}

func (db *Database) execUpdate(s *UpdateStmt, args []Value) (n int, err error) {
	tx := db.beginWrite()
	defer tx.guard(&err)
	tbl := tx.wtable(s.Table)
	if tbl == nil {
		tx.abort()
		return 0, errorf("no such table: %s", s.Table)
	}
	sch := make(schema, len(tbl.def.Columns))
	for i, c := range tbl.def.Columns {
		sch[i] = colInfo{alias: tbl.def.Name, name: c.Name}
	}
	comp := &compiler{st: tx.st, sch: sch}
	type setOp struct {
		col int
		fn  compiledExpr
	}
	var sets []setOp
	for _, sc := range s.Sets {
		ci := tbl.def.ColumnIndex(sc.Column)
		if ci < 0 {
			tx.abort()
			return 0, errorf("no such column %s in table %s", sc.Column, s.Table)
		}
		fn, err := comp.compile(sc.Value)
		if err != nil {
			tx.abort()
			return 0, err
		}
		sets = append(sets, setOp{col: ci, fn: fn})
	}
	rids, err := matchRows(tx.st, tbl, s.Where, args)
	if err != nil {
		tx.abort()
		return 0, err
	}
	ctx := &evalCtx{snap: tx.st, qctx: context.Background(), params: args}
	// oldImages/newImages collect the (before, after) row pairs that
	// actually applied; they are logged as the statement's effect (a
	// partial prefix when the statement errors mid-way). If logging the
	// commit fails the pending version is discarded unpublished, so
	// memory matches what recovery will replay.
	var oldImages, newImages [][]Value
	finish := func(execErr error) (int, error) {
		if len(newImages) == 0 {
			tx.abort()
			return 0, execErr
		}
		logErr := tx.commit(&walRecord{
			Op: opUpdate, Table: tbl.def.Name,
			OldRows: oldImages, Rows: newImages,
		})
		if logErr != nil {
			return 0, logErr
		}
		return len(newImages), execErr
	}
	for _, rid := range rids {
		old := tbl.row(rid)
		if old == nil {
			continue
		}
		row := append([]Value{}, old...)
		for _, so := range sets {
			v, err := so.fn(ctx, old)
			if err != nil {
				return finish(err)
			}
			row[so.col] = coerceTo(v, tbl.def.Columns[so.col].Type)
			if tbl.def.Columns[so.col].NotNull && row[so.col].IsNull() {
				return finish(errorf("table %s: column %s is NOT NULL", s.Table, tbl.def.Columns[so.col].Name))
			}
		}
		if err := tbl.update(rid, row); err != nil {
			return finish(err)
		}
		oldImages = append(oldImages, old)
		newImages = append(newImages, row)
	}
	return finish(nil)
}

// matchRows returns rowids matching a WHERE predicate (all live rows
// when where is nil), evaluated against st.
func matchRows(st *dbState, tbl *table, where Expr, args []Value) ([]int64, error) {
	var pred compiledExpr
	if where != nil {
		sch := make(schema, len(tbl.def.Columns))
		for i, c := range tbl.def.Columns {
			sch[i] = colInfo{alias: tbl.def.Name, name: c.Name}
		}
		comp := &compiler{st: st, sch: sch}
		var err error
		pred, err = comp.compile(where)
		if err != nil {
			return nil, err
		}
	}
	ctx := &evalCtx{snap: st, qctx: context.Background(), params: args}
	var rids []int64
	var ref pageRef
	defer ref.release()
	for rid := int64(0); rid < tbl.slotCount(); rid++ {
		row := tbl.rowRef(rid, &ref)
		if row == nil {
			continue
		}
		if pred != nil {
			v, err := pred(ctx, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		rids = append(rids, rid)
	}
	return rids, nil
}

// TableStats summarizes one table's storage.
type TableStats struct {
	Name    string
	Rows    int
	Bytes   int64
	Indexes int
}

// DatabaseStats bundles per-table storage statistics with the engine's
// cache activity, the runtime metrics registry, snapshot/concurrency
// counters, and the current schema epoch and commit sequence.
type DatabaseStats struct {
	Tables      []TableStats
	PlanCache   CacheStats
	Metrics     MetricsSnapshot
	Snapshots   SnapshotStats
	Governor    GovernorStats
	BufferPool  BufferPoolStats
	SchemaEpoch uint64
	CommitSeq   uint64
}

// Stats returns storage, cache and snapshot statistics; tables are
// sorted by name.
func (db *Database) Stats() DatabaseStats {
	st := db.state.Load()
	tables := make([]TableStats, 0, len(st.tables))
	for _, t := range st.tables {
		tables = append(tables, TableStats{
			Name:    t.def.Name,
			Rows:    t.live,
			Bytes:   t.bytes,
			Indexes: len(t.indexes),
		})
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	maxc, maxq, admitted, queued, rejected := db.gate.Load().stats()
	return DatabaseStats{
		Tables:    tables,
		PlanCache: db.plans.stats(),
		Metrics:   db.metrics.snapshot(),
		Snapshots: db.snaps.stats(),
		Governor: GovernorStats{
			MemoryBudget:  db.memBudget.total.Load(),
			MemoryUsed:    db.memBudget.used.Load(),
			QueryMemLimit: db.queryMemLimit.Load(),
			MaxConcurrent: maxc,
			MaxQueue:      maxq,
			Admitted:      admitted,
			Queued:        queued,
			Rejected:      rejected,
		},
		BufferPool:  db.pool.stats(),
		SchemaEpoch: st.epoch,
		CommitSeq:   st.seq,
	}
}

// TableNames lists the tables, sorted.
func (db *Database) TableNames() []string {
	st := db.state.Load()
	out := make([]string, 0, len(st.tables))
	for _, t := range st.tables {
		out = append(out, t.def.Name)
	}
	sort.Strings(out)
	return out
}

// TableDef returns the schema of a table, or nil if absent.
func (db *Database) TableDef(name string) *TableDef {
	t := db.state.Load().table(name)
	if t == nil {
		return nil
	}
	def := *t.def
	return &def
}

// TotalBytes sums the payload bytes across all tables.
func (db *Database) TotalBytes() int64 {
	var n int64
	for _, t := range db.state.Load().tables {
		n += t.bytes
	}
	return n
}

// TotalRows sums live rows across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.state.Load().tables {
		n += t.live
	}
	return n
}
