package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// Differential fuzz: generated queries run both through the full
// planner/executor and through a naive reference evaluation (pure Go
// over slices). Any disagreement is a planner or executor bug.

type refRow struct {
	a     int64 // may be null (aNull)
	b     string
	c     int64
	aNull bool
	cNull bool
}

// fuzzFixture builds the table both in the engine and as a slice.
func fuzzFixture(seed uint64, withIndexes bool) (*Database, []refRow) {
	state := seed + 7
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	db := New()
	db.MustExec(`CREATE TABLE f (a INTEGER, b TEXT, c INTEGER)`)
	if withIndexes {
		db.MustExec(`CREATE INDEX f_a ON f (a)`)
		db.MustExec(`CREATE INDEX f_bc ON f (b, c)`)
	}
	var ref []refRow
	words := []string{"red", "green", "blue", "teal"}
	for i := 0; i < 200; i++ {
		r := refRow{
			a: int64(next(20)),
			b: words[next(len(words))],
			c: int64(next(50)),
		}
		if next(10) == 0 {
			r.aNull = true
		}
		if next(10) == 0 {
			r.cNull = true
		}
		av, cv := NewInt(r.a), NewInt(r.c)
		if r.aNull {
			av = Null
		}
		if r.cNull {
			cv = Null
		}
		db.MustExec(`INSERT INTO f VALUES (?, ?, ?)`, av, NewText(r.b), cv)
		ref = append(ref, r)
	}
	return db, ref
}

// refCond is a reference predicate.
type refCond struct {
	sql  string
	eval func(refRow) bool // three-valued: false covers unknown
}

func fuzzConds() []refCond {
	conds := []refCond{
		{"a = 5", func(r refRow) bool { return !r.aNull && r.a == 5 }},
		{"a <> 5", func(r refRow) bool { return !r.aNull && r.a != 5 }},
		{"a < 7", func(r refRow) bool { return !r.aNull && r.a < 7 }},
		{"a >= 15", func(r refRow) bool { return !r.aNull && r.a >= 15 }},
		{"a BETWEEN 3 AND 9", func(r refRow) bool { return !r.aNull && r.a >= 3 && r.a <= 9 }},
		{"a IS NULL", func(r refRow) bool { return r.aNull }},
		{"a IS NOT NULL", func(r refRow) bool { return !r.aNull }},
		{"b = 'red'", func(r refRow) bool { return r.b == "red" }},
		{"b LIKE 'g%'", func(r refRow) bool { return strings.HasPrefix(r.b, "g") }},
		{"b LIKE '%ee%'", func(r refRow) bool { return strings.Contains(r.b, "ee") }},
		{"b IN ('red', 'blue')", func(r refRow) bool { return r.b == "red" || r.b == "blue" }},
		{"c > 25", func(r refRow) bool { return !r.cNull && r.c > 25 }},
		{"c % 2 = 0", func(r refRow) bool { return !r.cNull && r.c%2 == 0 }},
		{"a + c > 40", func(r refRow) bool { return !r.aNull && !r.cNull && r.a+r.c > 40 }},
	}
	return conds
}

func TestFuzzFiltersAgainstReference(t *testing.T) {
	conds := fuzzConds()
	for seed := uint64(1); seed <= 4; seed++ {
		for _, withIdx := range []bool{false, true} {
			db, ref := fuzzFixture(seed, withIdx)
			// Single conditions plus all AND/OR pairs.
			type cse struct {
				sql  string
				eval func(refRow) bool
			}
			var cases []cse
			for _, c := range conds {
				cases = append(cases, cse{c.sql, c.eval})
			}
			for i := range conds {
				for j := range conds {
					ci, cj := conds[i], conds[j]
					cases = append(cases, cse{
						sql:  "(" + ci.sql + ") AND (" + cj.sql + ")",
						eval: func(r refRow) bool { return ci.eval(r) && cj.eval(r) },
					})
					cases = append(cases, cse{
						sql:  "(" + ci.sql + ") OR (" + cj.sql + ")",
						eval: func(r refRow) bool { return ci.eval(r) || cj.eval(r) },
					})
				}
			}
			for _, c := range cases {
				want := 0
				for _, r := range ref {
					if c.eval(r) {
						want++
					}
				}
				got, err := db.QueryScalar("SELECT COUNT(*) FROM f WHERE " + c.sql)
				if err != nil {
					t.Fatalf("seed %d idx=%v %q: %v", seed, withIdx, c.sql, err)
				}
				if got.Int() != int64(want) {
					t.Errorf("seed %d idx=%v %q: engine %d, reference %d", seed, withIdx, c.sql, got.Int(), want)
				}
			}
		}
	}
}

func TestFuzzAggregatesAgainstReference(t *testing.T) {
	db, ref := fuzzFixture(3, true)
	// GROUP BY b with several aggregates.
	rows, err := db.Query(`SELECT b, COUNT(*), COUNT(a), SUM(c), MIN(a), MAX(c) FROM f GROUP BY b ORDER BY b`)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		n, nA, sumC int64
		minA, maxC  int64
		hasA, hasC  bool
	}
	refAgg := map[string]*agg{}
	for _, r := range ref {
		g := refAgg[r.b]
		if g == nil {
			g = &agg{}
			refAgg[r.b] = g
		}
		g.n++
		if !r.aNull {
			g.nA++
			if !g.hasA || r.a < g.minA {
				g.minA = r.a
			}
			g.hasA = true
		}
		if !r.cNull {
			g.sumC += r.c
			if !g.hasC || r.c > g.maxC {
				g.maxC = r.c
			}
			g.hasC = true
		}
	}
	var keys []string
	for k := range refAgg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if rows.Len() != len(keys) {
		t.Fatalf("groups: %d vs %d", rows.Len(), len(keys))
	}
	for i, k := range keys {
		g := refAgg[k]
		r := rows.Data[i]
		if r[0].Text() != k || r[1].Int() != g.n || r[2].Int() != g.nA ||
			r[3].Int() != g.sumC || r[4].Int() != g.minA || r[5].Int() != g.maxC {
			t.Errorf("group %s: engine %v, reference %+v", k, r, g)
		}
	}
}

func TestFuzzSelfJoinAgainstReference(t *testing.T) {
	db, ref := fuzzFixture(5, true)
	// Self equi-join on a with a residual condition.
	want := 0
	for _, x := range ref {
		for _, y := range ref {
			if !x.aNull && !y.aNull && x.a == y.a && x.b < y.b {
				want++
			}
		}
	}
	got, err := db.QueryScalar(`SELECT COUNT(*) FROM f x, f y WHERE x.a = y.a AND x.b < y.b`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != int64(want) {
		t.Errorf("self join: engine %d, reference %d", got.Int(), want)
	}
	// ORDER BY + LIMIT determinism against reference sort.
	rows, err := db.Query(`SELECT a, b, c FROM f WHERE a IS NOT NULL ORDER BY a DESC, b, c LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		a    int64
		b    string
		c    int64
		cNul bool
	}
	var sorted []key
	for _, r := range ref {
		if r.aNull {
			continue
		}
		sorted = append(sorted, key{r.a, r.b, r.c, r.cNull})
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].a != sorted[j].a {
			return sorted[i].a > sorted[j].a
		}
		if sorted[i].b != sorted[j].b {
			return sorted[i].b < sorted[j].b
		}
		// NULL c sorts first ascending.
		if sorted[i].cNul != sorted[j].cNul {
			return sorted[i].cNul
		}
		return sorted[i].c < sorted[j].c
	})
	for i := 0; i < 10 && i < rows.Len(); i++ {
		r := rows.Data[i]
		w := sorted[i]
		cMatches := (r[2].IsNull() && w.cNul) || (!r[2].IsNull() && !w.cNul && r[2].Int() == w.c)
		if r[0].Int() != w.a || r[1].Text() != w.b || !cMatches {
			t.Errorf("row %d: engine %v, reference %+v", i, r, w)
		}
	}
}

func TestFuzzDistinctAgainstReference(t *testing.T) {
	db, ref := fuzzFixture(9, false)
	seen := map[string]bool{}
	for _, r := range ref {
		a := "null"
		if !r.aNull {
			a = fmt.Sprint(r.a)
		}
		seen[a+"|"+r.b] = true
	}
	got, err := db.QueryScalar(`SELECT COUNT(*) FROM (SELECT DISTINCT a, b FROM f) d`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != int64(len(seen)) {
		t.Errorf("distinct: engine %d, reference %d", got.Int(), len(seen))
	}
}
