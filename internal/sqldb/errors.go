package sqldb

// Error taxonomy: the load-bearing failure modes of the engine are
// exported sentinel (or typed) errors so callers dispatch with
// errors.Is / errors.As instead of string matching. Message text is
// kept byte-identical to the historical fmt.Errorf strings.

import (
	"errors"
	"fmt"
	"runtime/debug"
)

var (
	// ErrMemoryBudgetExceeded aborts a query whose tracked allocations
	// exceed its memory budget (per-query limit or shared engine pool).
	ErrMemoryBudgetExceeded = errors.New("sqldb: query memory budget exceeded")

	// ErrOverloaded rejects a query when the admission gate's wait
	// queue is full: backpressure instead of collapse.
	ErrOverloaded = errors.New("sqldb: overloaded: admission queue full")

	// ErrInternal marks a query that died to a recovered panic inside
	// the executor. The query fails; the engine and every other query
	// keep running. Use errors.As with *InternalError for the panic
	// value and stack.
	ErrInternal = errors.New("sqldb: internal error")

	// ErrPreparedStale marks a prepared statement invalidated by DDL
	// since Prepare.
	ErrPreparedStale = errors.New("prepared statement is stale")

	// ErrCheckpointInsideGroup refuses a checkpoint requested from
	// inside an open durability group (it would self-deadlock).
	ErrCheckpointInsideGroup = errors.New("sqldb: checkpoint inside durability group")

	// ErrNestedGroup refuses opening a durability group from a
	// goroutine that already owns one.
	ErrNestedGroup = errors.New("sqldb: nested durability group")

	// ErrClosed is returned for any commit, checkpoint or recovery
	// attempted after DurableDB.Close: the store is a closed lifecycle
	// edge, not a silently writable in-memory database. Reads keep
	// serving the last published snapshot.
	ErrClosed = errors.New("sqldb: database is closed")

	// ErrCloseInsideGroup refuses DurableDB.Close called from the
	// goroutine that owns an open durability group (it would
	// self-deadlock on the checkpoint mutex the group holds).
	ErrCloseInsideGroup = errors.New("sqldb: close inside durability group")

	// ErrReadOnlyDegraded is returned by writes while the durability
	// layer is in degraded read-only mode after a storage fault.
	// It wraps ErrWALFailed so existing errors.Is checks keep passing;
	// reads continue to serve the last published snapshot and
	// DurableDB.Recover retries the log.
	ErrReadOnlyDegraded = fmt.Errorf("%w (degraded: reads still serve the published snapshot; Recover() retries the log)", ErrWALFailed)

	// ErrPageIO marks a failed buffer-pool page read: the spill file
	// could not deliver an evicted page an operation needed. Only that
	// operation fails — the pool, the published snapshot and every
	// other query keep working; a later access retries the read.
	ErrPageIO = errors.New("sqldb: page read failed")
)

// InternalError carries the recovered panic value and stack from an
// executor panic barrier. It unwraps to ErrInternal.
type InternalError struct {
	PanicValue any
	Stack      []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("sqldb: internal error: query panicked: %v", e.PanicValue)
}

func (e *InternalError) Unwrap() error { return ErrInternal }

// pageIOPanic carries a page-in failure through the executor panic
// barriers: row access has no error return, so the buffer pool panics
// with this value and internalError unwraps it to the typed ErrPageIO
// chain instead of reporting an engine bug.
type pageIOPanic struct{ err error }

// internalError converts a recovered panic value into an *InternalError.
func internalError(r any) error {
	if p, ok := r.(pageIOPanic); ok {
		return p.err
	}
	return &InternalError{PanicValue: r, Stack: debug.Stack()}
}

// recoverToError is the shared panic barrier: install as
//
//	defer recoverToError(&err)
//
// at an execution boundary and a panic below it becomes a typed
// ErrInternal result instead of taking the process down.
func recoverToError(errp *error) {
	if r := recover(); r != nil {
		*errp = internalError(r)
	}
}
