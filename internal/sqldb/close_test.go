package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClosePostCloseWritesErrClosed pins the headline lifecycle
// contract: after Close, every commit attempt fails with the typed
// ErrClosed — never an ack while memory-only — reads keep serving the
// published snapshot, double-Close is a no-op, and Health reports the
// closed state.
func TestClosePostCloseWritesErrClosed(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'acked')`)

	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !d.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}

	// Every write path is refused typed.
	if _, err := db.Exec(`INSERT INTO kv VALUES (2, 'lost')`); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close INSERT err = %v, want ErrClosed", err)
	}
	if _, err := db.Exec(`CREATE TABLE late (a INTEGER)`); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close DDL err = %v, want ErrClosed", err)
	}
	if _, err := db.BulkInsert("kv", [][]Value{{NewInt(3), NewText("x")}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close BulkInsert err = %v, want ErrClosed", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Checkpoint err = %v, want ErrClosed", err)
	}
	if err := d.Group(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Group err = %v, want ErrClosed", err)
	}
	if err := d.Recover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Recover err = %v, want ErrClosed", err)
	}

	// Reads still serve the published snapshot, and stats stay safe.
	rows, err := db.Query(`SELECT v FROM kv WHERE k = 1`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "acked" {
		t.Fatalf("post-close read = %v rows=%v", err, rows)
	}
	snap := db.AcquireSnapshot()
	if _, err := snap.Query(`SELECT count(*) FROM kv`); err != nil {
		t.Fatalf("post-close snapshot read: %v", err)
	}
	snap.Release()
	if h := d.Health(); h.State != "closed" {
		t.Fatalf("post-close Health.State = %q, want closed", h.State)
	}
	if st := d.Stats(); st.Health.State != "closed" {
		t.Fatalf("post-close Stats().Health.State = %q", st.Health.State)
	}
	_ = d.WALSize()
	_ = db.Stats()

	// The memory the failed writes never touched equals what recovery
	// replays: exactly the acked history.
	rd := mustOpenDurable(t, fs, DurableOptions{})
	defer rd.Close()
	if diff := dbStateDiff(db, rd.DB()); diff != "" {
		t.Fatalf("reopened state differs from acked state: %s", diff)
	}
}

// TestCloseRacingCheckpoint is the regression for the WAL-reopen hole:
// Checkpoint rotates the WAL (close + reopen the handle); racing it
// with Close must never leave the store with a live handle after Close
// returns. Run under -race.
func TestCloseRacingCheckpoint(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		fs := NewMemVFS()
		// A tiny auto-checkpoint threshold keeps needCkpt hot so
		// MaybeCheckpoint really rotates.
		d := mustOpenDurable(t, fs, DurableOptions{AutoCheckpointBytes: 64})
		db := d.DB()
		db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
		for i := 0; i < 8; i++ {
			db.MustExec(`INSERT INTO kv VALUES (?, 'row')`, NewInt(int64(i)))
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 4; j++ {
				if err := d.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("checkpoint during close race: %v", err)
					return
				}
				if _, err := d.MaybeCheckpoint(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("maybe-checkpoint during close race: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			if err := d.Close(); err != nil {
				t.Errorf("close during checkpoint race: %v", err)
			}
		}()
		close(start)
		wg.Wait()

		// Close has returned (and any checkpoint that won ckptMu before
		// it has finished): the handle must be gone for good.
		d.walMu.Lock()
		walNil := d.wal == nil
		d.walMu.Unlock()
		if !walNil {
			t.Fatalf("iter %d: wal handle re-opened after Close", iter)
		}
		if err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: checkpoint after close = %v, want ErrClosed", iter, err)
		}
		// Whatever interleaving happened, the directory must recover.
		rd := mustOpenDurable(t, fs, DurableOptions{})
		if diff := dbStateDiff(db, rd.DB()); diff != "" {
			t.Fatalf("iter %d: recovery differs: %s", iter, diff)
		}
		rd.Close()
	}
}

// TestCloseRacingWriters races N committers against Close: every Exec
// must either be acknowledged durably (it survives reopen) or fail with
// the typed ErrClosed — no third outcome where an ack is memory-only.
func TestCloseRacingWriters(t *testing.T) {
	const writers, rowsPer = 8, 24
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	var acked sync.Map
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rowsPer; i++ {
				k := int64(w*rowsPer + i)
				_, err := db.Exec(`INSERT INTO kv VALUES (?, 'v')`, NewInt(k))
				switch {
				case err == nil:
					acked.Store(k, true)
				case errors.Is(err, ErrClosed):
					// refused cleanly — nothing durable, nothing published
				default:
					t.Errorf("writer %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(500 * time.Microsecond)
		if err := d.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	rd := mustOpenDurable(t, fs, DurableOptions{})
	defer rd.Close()
	var missing []int64
	acked.Range(func(k, _ any) bool {
		rows, err := rd.DB().Query(`SELECT k FROM kv WHERE k = ?`, NewInt(k.(int64)))
		if err != nil {
			t.Fatalf("reopen query: %v", err)
		}
		if rows.Len() != 1 {
			missing = append(missing, k.(int64))
		}
		return true
	})
	if len(missing) > 0 {
		t.Fatalf("acked commits lost across Close+reopen: %v", missing)
	}
}

// TestCloseInsideGroupRefused pins the goid discipline: the goroutine
// that owns an open durability group cannot Close (it would
// self-deadlock on ckptMu), while a Close from another goroutine waits
// for the group to land and then succeeds — with the group's frame
// durable.
func TestCloseInsideGroupRefused(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	if err := d.Group(func() error {
		if _, err := db.Exec(`INSERT INTO kv VALUES (1, 'in-group')`); err != nil {
			return err
		}
		if err := d.Close(); !errors.Is(err, ErrCloseInsideGroup) {
			return fmt.Errorf("close inside group = %v, want ErrCloseInsideGroup", err)
		}
		return nil
	}); err != nil {
		t.Fatalf("group: %v", err)
	}
	if d.Closed() {
		t.Fatal("refused in-group Close still marked the store closed")
	}

	// Close racing an open group on another goroutine: it must wait for
	// the group, not tear the WAL out from under its atomic frame.
	entered := make(chan struct{})
	release := make(chan struct{})
	groupDone := make(chan error, 1)
	go func() {
		groupDone <- d.Group(func() error {
			_, err := db.Exec(`INSERT INTO kv VALUES (2, 'second-group')`)
			close(entered)
			<-release
			return err
		})
	}()
	<-entered
	closeDone := make(chan error, 1)
	go func() { closeDone <- d.Close() }()
	// The group is still open; Close must be parked on ckptMu.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a durability group was open", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-groupDone; err != nil {
		t.Fatalf("group racing close: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("close after group: %v", err)
	}

	rd := mustOpenDurable(t, fs, DurableOptions{})
	defer rd.Close()
	n, err := rd.DB().QueryScalar(`SELECT count(*) FROM kv`)
	if err != nil || n.Int() != 2 {
		t.Fatalf("reopen count = %v (%v), want 2 (both group frames durable)", n, err)
	}
}

// TestCloseConcurrentStatsReads audits the read-only surfaces /stats
// and /health lean on — Database.Stats, DurableDB.Stats, Health,
// WALSize, Checkpoints, snapshot reads — for use-after-Close: all must
// stay race-free and panic-free while Close lands. Run under -race.
func TestCloseConcurrentStatsReads(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'x')`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var panics atomic.Uint64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics.Add(1)
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = db.Stats()
				_ = d.Stats()
				_ = d.Health()
				_ = d.WALSize()
				_ = d.Checkpoints()
				s := db.AcquireSnapshot()
				_, _ = s.Query(`SELECT count(*) FROM kv`)
				s.Release()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := panics.Load(); n != 0 {
		t.Fatalf("%d stats/read goroutines panicked across Close", n)
	}
	if st := db.Stats(); st.Snapshots.Pinned != 0 {
		t.Fatalf("pinned snapshots leaked: %d", st.Snapshots.Pinned)
	}
}

// TestSnapshotReleaseIdempotent pins the session layer's pin hygiene:
// double-release must not corrupt the pin count or unpin another
// session's snapshot, and a storm of acquire/release pairs must return
// the pin count to exactly zero.
func TestSnapshotReleaseIdempotent(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)

	s1 := db.AcquireSnapshot()
	s2 := db.AcquireSnapshot()
	if p := db.Stats().Snapshots.Pinned; p != 2 {
		t.Fatalf("pinned = %d, want 2", p)
	}
	s1.Release()
	s1.Release() // double-release: must not touch s2's pin
	s1.Release()
	if p := db.Stats().Snapshots.Pinned; p != 1 {
		t.Fatalf("pinned after double-release = %d, want 1", p)
	}
	if _, err := s2.Query(`SELECT count(*) FROM t`); err != nil {
		t.Fatalf("query through still-pinned snapshot: %v", err)
	}
	s2.Release()
	if p := db.Stats().Snapshots.Pinned; p != 0 {
		t.Fatalf("pinned after final release = %d, want 0", p)
	}

	// Session storm: concurrent acquire/double-release cycles.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := db.AcquireSnapshot()
				if _, err := s.Query(`SELECT count(*) FROM t`); err != nil {
					t.Errorf("storm query: %v", err)
					return
				}
				s.Release()
				s.Release()
			}
		}()
	}
	wg.Wait()
	if p := db.Stats().Snapshots.Pinned; p != 0 {
		t.Fatalf("pinned after storm = %d, want 0", p)
	}
}
