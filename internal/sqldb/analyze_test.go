package sqldb

import (
	"strings"
	"testing"
)

// TestExplainAnalyzeOperators runs one query per operator kind under
// EXPLAIN ANALYZE and checks that the root's actual row count equals
// the real result cardinality, that the expected operator appears with
// sane counters, and that the annotations render.
func TestExplainAnalyzeOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		name string
		sql  string
		// op must appear both in the rendered text and the structured
		// op list.
		op string
	}{
		{"seq_scan", `SELECT * FROM tags`, "SeqScan"},
		{"index_scan", `SELECT * FROM nums WHERE n BETWEEN 10 AND 19`, "IndexScan"},
		{"index_join", `SELECT nums.n, tags.tag FROM nums JOIN tags ON nums.n = tags.n`, "IndexJoin"},
		{"hash_join", `SELECT t1.n, t2.tag FROM tags t1 JOIN tags t2 ON t1.tag = t2.tag`, "HashJoin"},
		{"nl_join", `SELECT t1.n FROM tags t1 JOIN tags t2 ON t1.n < t2.n`, "NestedLoopJoin"},
		{"aggregate", `SELECT grp, COUNT(*) FROM nums GROUP BY grp`, "Aggregate"},
		{"sort", `SELECT n FROM nums ORDER BY sq DESC`, "Sort"},
		{"distinct", `SELECT DISTINCT grp FROM nums`, "Distinct"},
		{"limit", `SELECT n FROM nums ORDER BY n LIMIT 5`, "Limit"},
		{"union_all", `SELECT n FROM nums WHERE n < 3 UNION ALL SELECT n FROM nums WHERE n > 98`, "UnionAll"},
		{"derived_filter", `SELECT * FROM (SELECT grp, COUNT(*) c FROM nums GROUP BY grp) d WHERE d.c > 10`, "Filter"},
		{"values", `SELECT 1`, "Values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, err := db.Query(tc.sql)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			ap, err := db.ExplainAnalyzePlan(tc.sql)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if ap.Rows != rows.Len() {
				t.Errorf("analyzed Rows = %d, executed cardinality = %d", ap.Rows, rows.Len())
			}
			if len(ap.Ops) == 0 {
				t.Fatal("no operator reports")
			}
			if ap.Ops[0].Rows != int64(rows.Len()) {
				t.Errorf("root actual rows = %d, want %d", ap.Ops[0].Rows, rows.Len())
			}
			if !strings.Contains(ap.Text, tc.op) {
				t.Errorf("plan text missing %q:\n%s", tc.op, ap.Text)
			}
			if !strings.Contains(ap.Text, "actual rows=") || !strings.Contains(ap.Text, "Execution:") {
				t.Errorf("plan text missing annotations:\n%s", ap.Text)
			}
			foundOp := false
			for _, op := range ap.Ops {
				if op.Kind == tc.op || (tc.op == "Filter" && op.Kind == "Filter") {
					foundOp = true
				}
				if op.Batches > 0 {
					// Vectorized operator: next() calls are batch-granular.
					if op.Nexts < op.Batches {
						t.Errorf("%s: nexts=%d < batches=%d", op.Kind, op.Nexts, op.Batches)
					}
				} else if op.Nexts < op.Rows {
					t.Errorf("%s: nexts=%d < rows=%d", op.Kind, op.Nexts, op.Rows)
				}
				if op.Opens < 1 {
					t.Errorf("%s: opens=%d, want >= 1", op.Kind, op.Opens)
				}
			}
			if !foundOp {
				t.Errorf("structured ops missing %q: %+v", tc.op, ap.Ops)
			}
		})
	}
}

// TestExplainAnalyzeJoinBuildSizes checks the build-side counters the
// join operators record.
func TestExplainAnalyzeJoinBuildSizes(t *testing.T) {
	db := testDB(t)
	// tags holds 20 + 15 = 35 rows; the hash join builds on its right
	// input, the nested-loop join materializes its inner side.
	for _, tc := range []struct {
		sql  string
		op   string
		want int64
	}{
		{`SELECT t1.n FROM tags t1 JOIN tags t2 ON t1.tag = t2.tag`, "HashJoin", 35},
		{`SELECT t1.n FROM tags t1 JOIN tags t2 ON t1.n < t2.n`, "NestedLoopJoin", 35},
	} {
		ap, err := db.ExplainAnalyzePlan(tc.sql)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		found := false
		for _, op := range ap.Ops {
			if op.Kind == tc.op {
				found = true
				if op.BuildRows != tc.want {
					t.Errorf("%s build rows = %d, want %d", tc.op, op.BuildRows, tc.want)
				}
			}
		}
		if !found {
			t.Errorf("%s not in plan for %s", tc.op, tc.sql)
		}
	}
}

// TestExplainAnalyzeWithParams runs a parameterized statement under
// EXPLAIN ANALYZE.
func TestExplainAnalyzeWithParams(t *testing.T) {
	db := testDB(t)
	ap, err := db.ExplainAnalyzePlan(`SELECT n FROM nums WHERE n <= ?`, NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if ap.Rows != 10 {
		t.Errorf("rows = %d, want 10", ap.Rows)
	}
}

// TestExplainPrefixThroughQuery drives the textual EXPLAIN [ANALYZE]
// prefix through the ordinary Query entry point.
func TestExplainPrefixThroughQuery(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM nums GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "plan" {
		t.Fatalf("columns = %v", rows.Columns)
	}
	var text strings.Builder
	for _, r := range rows.Data {
		text.WriteString(r[0].Text())
		text.WriteByte('\n')
	}
	if !strings.Contains(text.String(), "actual rows=") || !strings.Contains(text.String(), "Execution: 2 row(s)") {
		t.Errorf("EXPLAIN ANALYZE output missing annotations:\n%s", text.String())
	}

	// Lower case, plain EXPLAIN: plan only, no actuals.
	rows, err = db.Query(`explain select * from nums`)
	if err != nil {
		t.Fatal(err)
	}
	var plain strings.Builder
	for _, r := range rows.Data {
		plain.WriteString(r[0].Text())
		plain.WriteByte('\n')
	}
	if !strings.Contains(plain.String(), "SeqScan") || strings.Contains(plain.String(), "actual rows=") {
		t.Errorf("plain EXPLAIN output wrong:\n%s", plain.String())
	}

	// EXPLAIN must not swallow identifiers that merely start with it.
	if _, err := db.Exec(`CREATE TABLE explainer (x INTEGER)`); err != nil {
		t.Fatalf("identifier prefix: %v", err)
	}
}

// TestExplainAnalyzeMatchesRepeatedRuns checks that cached-plan
// executions keep reporting per-run (not cumulative) actuals.
func TestExplainAnalyzeMatchesRepeatedRuns(t *testing.T) {
	db := testDB(t)
	const sql = `SELECT n FROM nums WHERE grp = 'odd'`
	want := -1
	for i := 0; i < 3; i++ {
		ap, err := db.ExplainAnalyzePlan(sql)
		if err != nil {
			t.Fatal(err)
		}
		if want == -1 {
			want = ap.Rows
		}
		if ap.Rows != want || ap.Ops[0].Rows != int64(want) {
			t.Fatalf("run %d: rows = %d (root %d), want %d", i, ap.Rows, ap.Ops[0].Rows, want)
		}
	}
}
