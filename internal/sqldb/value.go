// Package sqldb implements an embedded relational database engine with a
// SQL subset, B-tree indexes, and a Volcano-style iterator executor.
//
// It is the storage substrate for the xmlrdb shredding schemes: XML
// documents are decomposed into tuples stored here, and XPath queries are
// compiled into the SQL dialect this package executes.
//
// The engine is deliberately self-contained (stdlib only) and in-memory;
// durability and recovery are out of scope for the reproduction. A
// Database is safe for concurrent readers; writers take a coarse lock.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the SQL value types supported by the engine.
type Type int

// Supported SQL types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
	TypeBlob
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	case TypeBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B []byte
}

// Null is the SQL NULL value.
var Null = Value{T: TypeNull}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{T: TypeInt, I: i} }

// NewFloat returns a REAL value.
func NewFloat(f float64) Value { return Value{T: TypeFloat, F: f} }

// NewText returns a TEXT value.
func NewText(s string) Value { return Value{T: TypeText, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{T: TypeBool, I: 1}
	}
	return Value{T: TypeBool}
}

// NewBlob returns a BLOB value. The slice is not copied.
func NewBlob(b []byte) Value { return Value{T: TypeBlob, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Bool reports the truth of v under SQL semantics: NULL and zero values
// are false, everything else true.
func (v Value) Bool() bool {
	switch v.T {
	case TypeNull:
		return false
	case TypeInt, TypeBool:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeText:
		return v.S != ""
	case TypeBlob:
		return len(v.B) != 0
	default:
		return false
	}
}

// Int returns the value coerced to int64 (0 for non-numeric).
func (v Value) Int() int64 {
	switch v.T {
	case TypeInt, TypeBool:
		return v.I
	case TypeFloat:
		return int64(v.F)
	case TypeText:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err == nil {
			return i
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err == nil {
			return int64(f)
		}
	}
	return 0
}

// Float returns the value coerced to float64 (0 for non-numeric).
func (v Value) Float() float64 {
	switch v.T {
	case TypeInt, TypeBool:
		return float64(v.I)
	case TypeFloat:
		return v.F
	case TypeText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err == nil {
			return f
		}
	}
	return 0
}

// Text returns the value rendered as a string (SQL CAST ... AS TEXT).
func (v Value) Text() string {
	switch v.T {
	case TypeNull:
		return ""
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TypeBlob:
		return string(v.B)
	default:
		return ""
	}
}

// String implements fmt.Stringer with SQL literal syntax.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case TypeBlob:
		return fmt.Sprintf("X'%x'", v.B)
	default:
		return v.Text()
	}
}

// isNumeric reports whether the type participates in numeric coercion.
func (t Type) isNumeric() bool {
	return t == TypeInt || t == TypeFloat || t == TypeBool
}

// Compare orders two values. NULL sorts before everything; numeric types
// compare numerically across Int/Float/Bool; Text compares bytewise;
// mixed non-numeric types order by type tag. The result is -1, 0 or +1.
func Compare(a, b Value) int {
	if a.T == TypeNull || b.T == TypeNull {
		switch {
		case a.T == TypeNull && b.T == TypeNull:
			return 0
		case a.T == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if a.T.isNumeric() && b.T.isNumeric() {
		if a.T == TypeFloat || b.T == TypeFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	if a.T == TypeText && b.T == TypeText {
		return strings.Compare(a.S, b.S)
	}
	if a.T == TypeBlob && b.T == TypeBlob {
		return strings.Compare(string(a.B), string(b.B))
	}
	// Mixed incomparable types: order by type tag so sorting is total.
	switch {
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal (non-NULL semantics;
// callers implement SQL NULL = NULL -> unknown separately).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// compareSQL implements SQL comparison: if either operand is NULL the
// result is unknown (ok=false).
func compareSQL(a, b Value) (cmp int, ok bool) {
	if a.T == TypeNull || b.T == TypeNull {
		return 0, false
	}
	// TEXT vs numeric: coerce text to number when it parses, mirroring
	// the loose typing XML-shredded value columns need.
	if a.T == TypeText && b.T.isNumeric() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.S), 64); err == nil {
			a = NewFloat(f)
		}
	}
	if b.T == TypeText && a.T.isNumeric() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(b.S), 64); err == nil {
			b = NewFloat(f)
		}
	}
	return Compare(a, b), true
}

// addValues implements SQL + with numeric promotion; NULL propagates.
func addValues(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		return NewFloat(a.Float() + b.Float())
	}
	return NewInt(a.Int() + b.Int())
}

func subValues(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		return NewFloat(a.Float() - b.Float())
	}
	return NewInt(a.Int() - b.Int())
}

func mulValues(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		return NewFloat(a.Float() * b.Float())
	}
	return NewInt(a.Int() * b.Int())
}

func divValues(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		bf := b.Float()
		if bf == 0 {
			return Null
		}
		return NewFloat(a.Float() / bf)
	}
	bi := b.Int()
	if bi == 0 {
		return Null
	}
	return NewInt(a.Int() / bi)
}

func modValues(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.T == TypeFloat || b.T == TypeFloat {
		bf := b.Float()
		if bf == 0 {
			return Null
		}
		return NewFloat(math.Mod(a.Float(), bf))
	}
	bi := b.Int()
	if bi == 0 {
		return Null
	}
	return NewInt(a.Int() % bi)
}

// negValue implements unary minus.
func negValue(a Value) Value {
	switch a.T {
	case TypeInt, TypeBool:
		return NewInt(-a.I)
	case TypeFloat:
		return NewFloat(-a.F)
	case TypeNull:
		return Null
	default:
		return NewFloat(-a.Float())
	}
}

// coerceTo converts v to the declared column type t for storage.
// NULL stays NULL; lossless where possible, best-effort otherwise.
func coerceTo(v Value, t Type) Value {
	if v.IsNull() {
		return Null
	}
	switch t {
	case TypeInt:
		if v.T == TypeInt {
			return v
		}
		return NewInt(v.Int())
	case TypeFloat:
		if v.T == TypeFloat {
			return v
		}
		return NewFloat(v.Float())
	case TypeText:
		if v.T == TypeText {
			return v
		}
		return NewText(v.Text())
	case TypeBool:
		return NewBool(v.Bool())
	case TypeBlob:
		if v.T == TypeBlob {
			return v
		}
		return NewBlob([]byte(v.Text()))
	default:
		return v
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards and an optional
// escape character (0 means none). Matching is case-sensitive, which is
// what the Dewey prefix translations rely on.
func likeMatch(s, pattern string, escape byte) bool {
	return likeRec(s, pattern, escape)
}

func likeRec(s, p string, esc byte) bool {
	for len(p) > 0 {
		c := p[0]
		if esc != 0 && c == esc && len(p) > 1 {
			if len(s) == 0 || s[0] != p[1] {
				return false
			}
			s, p = s[1:], p[2:]
			continue
		}
		switch c {
		case '%':
			// Collapse consecutive wildcards.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p, esc) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != c {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// likePrefix returns the literal prefix of a LIKE pattern (up to the
// first wildcard) and whether the pattern is prefix-shaped (literal
// followed by a single trailing %), which allows index range scans.
func likePrefix(pattern string, escape byte) (prefix string, prefixOnly bool) {
	var b strings.Builder
	i := 0
	for i < len(pattern) {
		c := pattern[i]
		if escape != 0 && c == escape && i+1 < len(pattern) {
			b.WriteByte(pattern[i+1])
			i += 2
			continue
		}
		if c == '%' || c == '_' {
			break
		}
		b.WriteByte(c)
		i++
	}
	prefix = b.String()
	prefixOnly = i < len(pattern) && pattern[i] == '%' && i == len(pattern)-1
	return prefix, prefixOnly
}
