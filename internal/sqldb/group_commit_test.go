package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Gated-fsync harness
//
// The group-commit pipeline batches whatever queues while an fsync is in
// flight, so to test batching deterministically the tests park the batch
// leader inside Sync, stage more commits, then choose the fsync verdict.

// syncGate intercepts the WAL file's Sync calls: while armed, each Sync
// parks until the test sends a verdict (nil lets the real fsync proceed,
// an error fails it without syncing).
type syncGate struct {
	mu    sync.Mutex
	armed bool
	calls chan chan error
}

func newSyncGate() *syncGate { return &syncGate{calls: make(chan chan error)} }

func (g *syncGate) arm(on bool) {
	g.mu.Lock()
	g.armed = on
	g.mu.Unlock()
}

// next waits for a gated Sync to arrive and returns its verdict channel.
func (g *syncGate) next(t *testing.T) chan error {
	t.Helper()
	select {
	case c := <-g.calls:
		return c
	case <-time.After(10 * time.Second):
		t.Fatal("no Sync reached the gate")
		return nil
	}
}

type gateVFS struct {
	VFS
	gate *syncGate
}

func (v *gateVFS) OpenRW(name string) (File, error) {
	f, err := v.VFS.OpenRW(name)
	if err != nil || name != walFile {
		return f, err
	}
	return &gateFile{File: f, gate: v.gate}, nil
}

type gateFile struct {
	File
	gate *syncGate
}

func (f *gateFile) Sync() error {
	f.gate.mu.Lock()
	armed := f.gate.armed
	f.gate.mu.Unlock()
	if armed {
		verdict := make(chan error)
		f.gate.calls <- verdict
		if err := <-verdict; err != nil {
			return err
		}
	}
	return f.File.Sync()
}

// waitQueueLen polls until at least want commits are staged in the
// pipeline queue behind the in-flight batch.
func waitQueueLen(t *testing.T, d *DurableDB, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.walMu.Lock()
		n := len(d.queue)
		d.walMu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue length %d, want >= %d", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Headline regression: commits concurrent with an open Group

// TestGroupConcurrentCommitsDurableBeforeGroupCloses is the regression
// test for the Group durability hole: an independent commit acknowledged
// while a Group is open used to sit in the group buffer, so a crash
// before the group closed silently lost it. Under the pipeline the
// independent commit is fsynced (in its own batch) before its Exec
// returns, and the group's rows stay invisible to recovery until the
// group frame lands.
func TestGroupConcurrentCommitsDurableBeforeGroupCloses(t *testing.T) {
	for _, mode := range []CrashMode{CrashLoseUnsynced, CrashKeepAll} {
		mem := NewMemVFS()
		d := mustOpenDurable(t, mem, DurableOptions{})
		db := d.DB()
		db.MustExec(`CREATE TABLE grp (k INTEGER PRIMARY KEY)`)
		db.MustExec(`CREATE TABLE ind (k INTEGER PRIMARY KEY)`)

		var midGroup *MemVFS
		gErr := d.Group(func() error {
			db.MustExec(`INSERT INTO grp VALUES (1)`)
			// Independent commits from another goroutine, acked while the
			// group is open.
			done := make(chan error, 1)
			go func() {
				for i := 0; i < 5; i++ {
					if _, err := db.Exec(`INSERT INTO ind VALUES (?)`, NewInt(int64(i))); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			if err := <-done; err != nil {
				return fmt.Errorf("independent commit: %w", err)
			}
			db.MustExec(`INSERT INTO grp VALUES (2)`)
			// Crash while the group is still open.
			midGroup = mem.Clone()
			midGroup.Crash(mode)
			return nil
		})
		if gErr != nil {
			t.Fatalf("mode %v: group: %v", mode, gErr)
		}

		rd := mustOpenDurable(t, midGroup, DurableOptions{})
		count := func(db *Database, table string) int64 {
			v, err := db.QueryScalar(`SELECT COUNT(*) FROM ` + table)
			if err != nil {
				t.Fatalf("count %s: %v", table, err)
			}
			return v.Int()
		}
		// Every acked independent commit survived the mid-group crash...
		if n := count(rd.DB(), "ind"); n != 5 {
			t.Fatalf("mode %v: %d independent rows recovered mid-group, want 5", mode, n)
		}
		// ...and the unclosed group contributed nothing (atomicity).
		if n := count(rd.DB(), "grp"); n != 0 {
			t.Fatalf("mode %v: %d group rows recovered mid-group, want 0", mode, n)
		}
		rd.Close()

		// After Group returns, its frame is durable: a crash now recovers
		// the whole group.
		afterGroup := mem.Clone()
		afterGroup.Crash(mode)
		rd2 := mustOpenDurable(t, afterGroup, DurableOptions{})
		if n := count(rd2.DB(), "grp"); n != 2 {
			t.Fatalf("mode %v: %d group rows recovered post-group, want 2", mode, n)
		}
		if n := count(rd2.DB(), "ind"); n != 5 {
			t.Fatalf("mode %v: %d independent rows recovered post-group, want 5", mode, n)
		}
		if diff := dbStateDiff(db, rd2.DB()); diff != "" {
			t.Fatalf("mode %v: post-group recovery differs: %s", mode, diff)
		}
		checkIndexes(t, rd2.DB())
		rd2.Close()
		d.Close()
	}
}

// ---------------------------------------------------------------------------
// Batching

// TestGroupCommitBatchesConcurrentWriters pins the batch leader inside
// its fsync, stages three more commits, and verifies they all ride one
// Sync: the pipeline's fsyncs/commit drops below one.
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	mem := NewMemVFS()
	gate := newSyncGate()
	d := mustOpenDurable(t, &gateVFS{VFS: mem, gate: gate}, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	gate.arm(true)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = db.Exec(`INSERT INTO kv VALUES (0, 'w')`)
	}()
	leader := gate.next(t) // writer 0 is parked inside its fsync
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'w')`, i))
		}(i)
	}
	waitQueueLen(t, d, 3) // all three staged behind the in-flight batch
	leader <- nil
	batch2 := gate.next(t) // one Sync covers all three queued commits
	batch2 <- nil
	wg.Wait()
	gate.arm(false)

	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	st := d.Stats()
	if st.MaxBatch < 3 {
		t.Fatalf("max batch %d, want >= 3", st.MaxBatch)
	}
	if st.Fsyncs >= st.Commits {
		t.Fatalf("fsyncs %d not < commits %d: batching broken", st.Fsyncs, st.Commits)
	}
	d.Close()

	// Everything acked is on disk.
	rd := mustOpenDurable(t, mem, DurableOptions{})
	if diff := dbStateDiff(db, rd.DB()); diff != "" {
		t.Fatalf("recovery differs: %s", diff)
	}
	rd.Close()
}

// TestBatchFsyncFaultFailsWholeBatch extends the commit-fault battery to
// the pipeline: when a batch's fsync fails, every commit in the batch
// must error, the engine goes fail-stop, published memory keeps only the
// acked prefix, and recovery equals it.
func TestBatchFsyncFaultFailsWholeBatch(t *testing.T) {
	mem := NewMemVFS()
	gate := newSyncGate()
	d := mustOpenDurable(t, &gateVFS{VFS: mem, gate: gate}, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)

	gate.arm(true)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = db.Exec(`INSERT INTO kv VALUES (0, 'w')`)
	}()
	leader := gate.next(t)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'w')`, i))
		}(i)
	}
	waitQueueLen(t, d, 3)
	leader <- nil // writer 0's batch fsyncs fine: it is the acked prefix
	batch2 := gate.next(t)
	batch2 <- errors.New("injected fsync failure") // the 3-commit batch dies
	wg.Wait()
	gate.arm(false)

	if errs[0] != nil {
		t.Fatalf("acked writer failed: %v", errs[0])
	}
	for i := 1; i <= 3; i++ {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "wal sync") {
			t.Fatalf("writer %d: error %v, want wal sync failure", i, errs[i])
		}
	}
	if !d.Failed() {
		t.Fatal("engine not fail-stop after batch fsync fault")
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (9, 'late')`); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("commit after fault: %v, want ErrWALFailed", err)
	}
	// Published memory is exactly the acked prefix: none of the failed
	// batch's rows ever became visible.
	if n := db.TotalRows(); n != 1 {
		t.Fatalf("live rows %d, want 1 (acked prefix only)", n)
	}

	// Power-loss recovery equals the acked prefix bit for bit.
	lost := mem.Clone()
	lost.Crash(CrashLoseUnsynced)
	rd := mustOpenDurable(t, lost, DurableOptions{})
	if diff := dbStateDiff(db, rd.DB()); diff != "" {
		t.Fatalf("recovery differs from acked prefix: %s", diff)
	}
	rd.Close()

	// Keep-all recovery (frames written but never synced survive a mere
	// process kill) must still contain every acked commit.
	kept := mem.Clone()
	kept.Crash(CrashKeepAll)
	rd2 := mustOpenDurable(t, kept, DurableOptions{})
	v, err := rd2.DB().QueryScalar(`SELECT COUNT(*) FROM kv WHERE k = 0`)
	if err != nil || v.Int() != 1 {
		t.Fatalf("acked row missing under keep-all recovery: %v %v", v, err)
	}
	rd2.Close()
}

// ---------------------------------------------------------------------------
// Group re-entrancy guards

func TestCheckpointInsideGroupErrors(t *testing.T) {
	// AutoCheckpointBytes=1 arms needCkpt on the first commit so
	// MaybeCheckpoint inside the group actually attempts a checkpoint.
	d := mustOpenDurable(t, NewMemVFS(), DurableOptions{AutoCheckpointBytes: 1})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)

	err := d.Group(func() error {
		db.MustExec(`INSERT INTO kv VALUES (1)`)
		if err := d.Checkpoint(); err == nil || !strings.Contains(err.Error(), "checkpoint inside durability group") {
			return fmt.Errorf("Checkpoint inside group returned %v, want refusal", err)
		}
		if _, err := d.MaybeCheckpoint(); err == nil || !strings.Contains(err.Error(), "checkpoint inside durability group") {
			return fmt.Errorf("MaybeCheckpoint inside group returned %v, want refusal", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The refusal is not sticky: checkpointing works once the group ends.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after group: %v", err)
	}
	if d.WALSize() != 0 {
		t.Fatalf("WAL not rotated after group: %d bytes", d.WALSize())
	}
	d.Close()
}

func TestNestedGroupErrors(t *testing.T) {
	mem := NewMemVFS()
	d := mustOpenDurable(t, mem, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)

	done := make(chan error, 1)
	err := d.Group(func() error {
		db.MustExec(`INSERT INTO kv VALUES (1)`)
		// Re-entrant Group from the owning goroutine is refused (it used
		// to deadlock on ckptMu before ever reaching the nesting check).
		if err := d.Group(func() error { return nil }); err == nil || !strings.Contains(err.Error(), "nested durability group") {
			return fmt.Errorf("nested group returned %v, want refusal", err)
		}
		// A group from another goroutine is not nested: it serializes
		// behind this one and proceeds once we close.
		go func() {
			done <- d.Group(func() error {
				db.MustExec(`INSERT INTO kv VALUES (2)`)
				return nil
			})
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serialized group: %v", err)
	}
	if n := db.TotalRows(); n != 2 {
		t.Fatalf("%d rows, want 2", n)
	}
	// Both groups' frames are durable.
	crashed := mem.Clone()
	crashed.Crash(CrashLoseUnsynced)
	rd := mustOpenDurable(t, crashed, DurableOptions{})
	if n := rd.DB().TotalRows(); n != 2 {
		t.Fatalf("%d rows recovered, want 2", n)
	}
	rd.Close()
	d.Close()
}

// ---------------------------------------------------------------------------
// Rotation failure hygiene

// TestRotateFailureNilsWAL sweeps a fault budget across Checkpoint and
// verifies the failure hygiene of rotation: whenever rotation fails
// after the old WAL handle was closed, d.wal must be nil (not a stale
// closed handle), Close must succeed, and recovery from the surviving
// files must equal the acked state.
func TestRotateFailureNilsWAL(t *testing.T) {
	sawPostCloseFailure := false
	for budget := int64(0); ; budget++ {
		mem := NewMemVFS()
		fvfs := NewFaultVFS(mem, -1)
		d := mustOpenDurable(t, fvfs, DurableOptions{})
		db := d.DB()
		db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
		for i := 0; i < 8; i++ {
			db.MustExec(`INSERT INTO kv VALUES (?, 'row')`, NewInt(int64(i)))
		}

		// Arm the budget for the checkpoint only.
		fvfs.mu.Lock()
		fvfs.failAfter = fvfs.written + budget
		fvfs.mu.Unlock()
		ckErr := d.Checkpoint()
		fvfs.mu.Lock()
		fvfs.failAfter = -1
		fvfs.failed = false
		fvfs.mu.Unlock()

		d.walMu.Lock()
		walNil := d.wal == nil
		d.walMu.Unlock()
		if ckErr == nil {
			if walNil {
				t.Fatalf("budget %d: checkpoint succeeded but wal handle is nil", budget)
			}
			if !sawPostCloseFailure {
				t.Fatal("budget sweep finished without exercising a post-close rotation failure")
			}
			d.Close()
			return
		}
		if strings.Contains(ckErr.Error(), "wal rotation") && walNil {
			sawPostCloseFailure = true
		}
		if !d.Failed() {
			t.Fatalf("budget %d: checkpoint error (%v) without fail-stop", budget, ckErr)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("budget %d: close after failed checkpoint: %v", budget, err)
		}
		// Whatever the crash point, the directory still recovers to the
		// acked state.
		rd := mustOpenDurable(t, mem, DurableOptions{})
		if diff := dbStateDiff(db, rd.DB()); diff != "" {
			t.Fatalf("budget %d: recovery differs: %s", budget, diff)
		}
		checkIndexes(t, rd.DB())
		rd.Close()
	}
}

// ---------------------------------------------------------------------------
// Concurrent-writers batteries

// TestConcurrentWritersDDLCheckpoint is the race battery: N writer
// goroutines, concurrent DDL, checkpoints and a Group all run against
// one DurableDB; afterwards recovery must equal live memory exactly.
func TestConcurrentWritersDDLCheckpoint(t *testing.T) {
	const writers = 8
	const perWriter = 30

	mem := NewMemVFS()
	d := mustOpenDurable(t, mem, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE shared (k INTEGER PRIMARY KEY, w INTEGER, v TEXT)`)
	for w := 0; w < writers; w++ {
		db.MustExec(fmt.Sprintf(`CREATE TABLE own%d (k INTEGER PRIMARY KEY, v TEXT)`, w))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO shared VALUES (%d, %d, 'x')`, w*perWriter+i, w))
				db.MustExec(fmt.Sprintf(`INSERT INTO own%d VALUES (%d, 'y')`, w, i))
			}
		}(w)
	}
	// DDL churn: indexes come and go while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			db.MustExec(`CREATE INDEX shared_w ON shared (w)`)
			db.MustExec(`DROP INDEX shared_w`)
		}
		db.MustExec(`CREATE INDEX shared_w ON shared (w)`)
	}()
	// Checkpoints interleave with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := d.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	// A durability group runs concurrently with independent writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.Group(func() error {
			for i := 0; i < 10; i++ {
				db.MustExec(`INSERT INTO shared VALUES (?, -1, 'g')`, NewInt(int64(1_000_000+i)))
			}
			return nil
		}); err != nil {
			t.Errorf("group: %v", err)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	want := writers*perWriter + writers*perWriter + 10
	if n := db.TotalRows(); n != want {
		t.Fatalf("live rows %d, want %d", n, want)
	}
	st := d.Stats()
	if st.Commits == 0 || st.Batches == 0 {
		t.Fatalf("pipeline counters empty: %+v", st)
	}
	d.Close()

	rd := mustOpenDurable(t, mem, DurableOptions{})
	if diff := dbStateDiff(db, rd.DB()); diff != "" {
		t.Fatalf("recovery differs from live memory: %s", diff)
	}
	checkIndexes(t, rd.DB())
	rd.Close()
}

// TestConcurrentCommitFaultAckedSurvive runs concurrent writers into a
// fault budget: whenever the WAL dies mid-flight, every commit that was
// acknowledged must survive recovery under both crash modes, and the
// engine must be fail-stop for the rest.
func TestConcurrentCommitFaultAckedSurvive(t *testing.T) {
	const writers = 4
	for _, budget := range []int64{80, 400, 1200, 3000} {
		mem := NewMemVFS()
		fvfs := NewFaultVFS(mem, -1)
		d := mustOpenDurable(t, fvfs, DurableOptions{})
		db := d.DB()
		db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, w INTEGER)`)

		fvfs.mu.Lock()
		fvfs.failAfter = fvfs.written + budget
		fvfs.mu.Unlock()

		var mu sync.Mutex
		acked := map[int64]bool{}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					k := int64(w*1000 + i)
					if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, NewInt(k), NewInt(int64(w))); err != nil {
						return // fault reached; acks stop here
					}
					mu.Lock()
					acked[k] = true
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()

		if !d.Failed() {
			t.Fatalf("budget %d: fault never fired (raise the write volume?)", budget)
		}
		if _, err := db.Exec(`INSERT INTO kv VALUES (99999, 0)`); !errors.Is(err, ErrWALFailed) {
			t.Fatalf("budget %d: post-fault commit: %v, want ErrWALFailed", budget, err)
		}
		d.Close()

		for _, mode := range []CrashMode{CrashLoseUnsynced, CrashKeepAll} {
			crashed := mem.Clone()
			crashed.Crash(mode)
			rd, err := OpenDurable(crashed, DurableOptions{})
			if err != nil {
				t.Fatalf("budget %d mode %v: recovery: %v", budget, mode, err)
			}
			for k := range acked {
				v, err := rd.DB().QueryScalar(`SELECT COUNT(*) FROM kv WHERE k = ?`, NewInt(k))
				if err != nil || v.Int() != 1 {
					t.Fatalf("budget %d mode %v: acked row %d missing after recovery (%v, %v)", budget, mode, k, v, err)
				}
			}
			checkIndexes(t, rd.DB())
			rd.Close()
		}
	}
}

// TestGroupFaultDegradedRecover fills the disk mid-way through a stream
// of group commits: the interrupted group must vanish atomically, the
// engine must degrade to read-only (serving every acked group) instead
// of fail-stopping, and once space returns Recover must restore
// read-write service on exactly the acked prefix.
func TestGroupFaultDegradedRecover(t *testing.T) {
	const rowsPerGroup = 5
	for _, budget := range []int64{40, 200, 800, 2000} {
		fvfs := NewFaultVFS(NewMemVFS(), -1)
		fvfs.SetFailError(syscall.ENOSPC)
		d := mustOpenDurable(t, fvfs, DurableOptions{})
		db := d.DB()
		db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, g INTEGER)`)

		fvfs.mu.Lock()
		fvfs.failAfter = fvfs.written + budget
		fvfs.mu.Unlock()

		ackedGroups := 0
		for g := 0; g < 60; g++ {
			err := d.Group(func() error {
				for i := 0; i < rowsPerGroup; i++ {
					k := int64(g*rowsPerGroup + i)
					if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, NewInt(k), NewInt(int64(g))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				// The commit that hits the fault carries the raw storage
				// error; anything after it gets the degraded sentinel.
				if !errors.Is(err, syscall.ENOSPC) && !errors.Is(err, ErrReadOnlyDegraded) {
					t.Fatalf("budget %d group %d: %v, want ENOSPC or degraded", budget, g, err)
				}
				break
			}
			ackedGroups++
		}

		// Degraded, not fail-stop: health reports the ENOSPC cause...
		if !d.Failed() {
			t.Fatalf("budget %d: fault never fired (raise the group count?)", budget)
		}
		h := d.Health()
		if h.State != "degraded" || !strings.Contains(h.Cause, "no space") {
			t.Fatalf("budget %d: health %+v, want degraded on ENOSPC", budget, h)
		}
		// ...writes (grouped or plain) are refused with the sentinel...
		if err := d.Group(func() error { return nil }); !errors.Is(err, ErrReadOnlyDegraded) {
			t.Fatalf("budget %d: degraded Group: %v", budget, err)
		}
		if _, err := db.Exec(`INSERT INTO kv VALUES (99999, 0)`); !errors.Is(err, ErrReadOnlyDegraded) {
			t.Fatalf("budget %d: degraded insert: %v", budget, err)
		}
		// ...and reads still work. The degraded snapshot may include the
		// doomed group's statements: its members published in memory
		// before the atomic frame hit the full disk.
		assertGroups := func(when string, groups int) {
			t.Helper()
			n, err := db.QueryScalar(`SELECT COUNT(*) FROM kv`)
			if err != nil || n.Int() != int64(groups*rowsPerGroup) {
				t.Fatalf("budget %d %s: count (%v, %v), want %d rows",
					budget, when, n, err, groups*rowsPerGroup)
			}
			g, err := db.QueryScalar(`SELECT COUNT(DISTINCT g) FROM kv`)
			if err != nil || g.Int() != int64(groups) {
				t.Fatalf("budget %d %s: groups (%v, %v), want %d", budget, when, g, err, groups)
			}
		}
		assertGroups("degraded", ackedGroups+1)

		// Space returns: Recover must land on the acked prefix — the
		// doomed group's published-but-unacked rows are rolled back.
		fvfs.Heal()
		if err := d.Recover(); err != nil {
			t.Fatalf("budget %d: recover: %v", budget, err)
		}
		assertGroups("post-recover", ackedGroups)
		if err := d.Group(func() error {
			_, err := db.Exec(`INSERT INTO kv VALUES (?, -1)`, NewInt(int64(100000)))
			return err
		}); err != nil {
			t.Fatalf("budget %d: group after recover: %v", budget, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("budget %d: close: %v", budget, err)
		}

		// The reopened directory holds the acked prefix plus the
		// post-recovery group.
		rd := mustOpenDurable(t, fvfs, DurableOptions{})
		if diff := dbStateDiff(db, rd.DB()); diff != "" {
			t.Fatalf("budget %d: reopened state != live state: %s", budget, diff)
		}
		checkIndexes(t, rd.DB())
		rd.Close()
	}
}
