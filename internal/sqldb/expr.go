package sqldb

import (
	"context"
	"fmt"
	"strings"
)

// colInfo describes one column of an intermediate result. typ is the
// declared type when known (TypeNull = unknown, e.g. derived columns);
// the planner uses it to reject index bounds whose ordering would
// disagree with SQL's coercing comparisons.
type colInfo struct {
	alias string // table alias ("" for derived columns)
	name  string // column name
	typ   Type
}

type schema []colInfo

// resolve finds the column (table, name) in s. An empty table matches any
// alias; ambiguity is an error.
func (s schema) resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if table != "" && !strings.EqualFold(c.alias, table) {
			continue
		}
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if found >= 0 {
			return 0, errorf("ambiguous column reference %s", refName(table, name))
		}
		found = i
	}
	if found < 0 {
		return 0, errorf("unknown column %s", refName(table, name))
	}
	return found, nil
}

func refName(table, name string) string {
	if table == "" {
		return name
	}
	return table + "." + name
}

// evalCtx carries per-execution state: the pinned database snapshot the
// query runs against, bound parameters, and the current outer row for
// correlated subqueries.
type evalCtx struct {
	// snap is the immutable dbState the execution reads. For ordinary
	// queries it is the published state pinned at query start; for reads
	// inside a writer statement (INSERT ... SELECT, UPDATE set
	// expressions) it is the writer's pending state.
	snap *dbState
	// qctx carries cancellation/deadline; executor chokepoints poll it
	// (see statIter.next and materialize).
	qctx   context.Context
	params []Value
	outer  []Value
	// stats collects per-operator counters when non-nil (see metrics.go).
	stats *runStats
	// morsel, when non-nil, restricts the scan of exactly one
	// seqScanNode (matched by pointer) to a rowid range; set by gather
	// workers so each worker processes its claimed morsel (parallel.go).
	morsel *morselRange
	// shared caches join build sides across the morsel re-opens of one
	// parallel segment; nil outside gather workers (parallel.go).
	shared *sharedBuilds
	// vec selects batch-at-a-time execution for the operators that
	// support it (see batch.go/vector_exec.go); copied from the snapshot
	// state's vectorized knob at query start and inherited by gather
	// workers and subquery executions.
	vec bool
	// mem is the query's memory accountant; nil when no budget is
	// configured. Inherited by gather workers and subquery executions
	// so every allocation anywhere in the query charges one ledger
	// (see governor.go).
	mem *memAccountant
}

// compiledExpr evaluates an expression against a row.
type compiledExpr func(ctx *evalCtx, row []Value) (Value, error)

// inputRef is an internal expression that reads a column by position.
// The planner's aggregate rewriting produces these.
type inputRef struct{ idx int }

func (*inputRef) expr() {}

// outerRef reads a column of the outer (correlated) row.
type outerRef struct{ idx int }

func (*outerRef) expr() {}

// compiler compiles expressions against a schema; outer is the enclosing
// query's schema when compiling a correlated subquery. st is the
// database state the compilation (and any subquery planning) sees.
type compiler struct {
	st    *dbState
	sch   schema
	outer schema
}

func (c *compiler) compile(e Expr) (compiledExpr, error) {
	switch e := e.(type) {
	case *Literal:
		v := e.Val
		return func(*evalCtx, []Value) (Value, error) { return v, nil }, nil
	case *Param:
		idx := e.Idx
		return func(ctx *evalCtx, _ []Value) (Value, error) {
			if idx >= len(ctx.params) {
				return Null, errorf("missing value for parameter %d", idx+1)
			}
			return ctx.params[idx], nil
		}, nil
	case *inputRef:
		idx := e.idx
		return func(_ *evalCtx, row []Value) (Value, error) { return row[idx], nil }, nil
	case *outerRef:
		idx := e.idx
		return func(ctx *evalCtx, _ []Value) (Value, error) {
			if idx >= len(ctx.outer) {
				return Null, errorf("correlated reference outside outer row")
			}
			return ctx.outer[idx], nil
		}, nil
	case *ColumnRef:
		idx, err := c.sch.resolve(e.Table, e.Name)
		if err == nil {
			return func(_ *evalCtx, row []Value) (Value, error) { return row[idx], nil }, nil
		}
		if c.outer != nil {
			if oidx, oerr := c.outer.resolve(e.Table, e.Name); oerr == nil {
				name := refName(e.Table, e.Name)
				return func(ctx *evalCtx, _ []Value) (Value, error) {
					if oidx >= len(ctx.outer) {
						return Null, errorf("correlated reference %s evaluated without an outer row", name)
					}
					return ctx.outer[oidx], nil
				}, nil
			}
		}
		return nil, err
	case *UnaryExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return func(ctx *evalCtx, row []Value) (Value, error) {
				v, err := x(ctx, row)
				if err != nil {
					return Null, err
				}
				return negValue(v), nil
			}, nil
		case "NOT":
			return func(ctx *evalCtx, row []Value) (Value, error) {
				v, err := x(ctx, row)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					return Null, nil
				}
				return NewBool(!v.Bool()), nil
			}, nil
		}
		return nil, errorf("unknown unary operator %s", e.Op)
	case *BinaryExpr:
		return c.compileBinary(e)
	case *LikeExpr:
		return c.compileLike(e)
	case *InExpr:
		return c.compileIn(e)
	case *ExistsExpr:
		return c.compileExists(e)
	case *BetweenExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		lo, err := c.compile(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compile(e.Hi)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *evalCtx, row []Value) (Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return Null, err
			}
			lov, err := lo(ctx, row)
			if err != nil {
				return Null, err
			}
			hiv, err := hi(ctx, row)
			if err != nil {
				return Null, err
			}
			c1, ok1 := compareSQL(xv, lov)
			c2, ok2 := compareSQL(xv, hiv)
			if !ok1 || !ok2 {
				return Null, nil
			}
			res := c1 >= 0 && c2 <= 0
			if not {
				res = !res
			}
			return NewBool(res), nil
		}, nil
	case *IsNullExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := x(ctx, row)
			if err != nil {
				return Null, err
			}
			return NewBool(v.IsNull() != not), nil
		}, nil
	case *CaseExpr:
		return c.compileCase(e)
	case *CastExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		to := e.To
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := x(ctx, row)
			if err != nil {
				return Null, err
			}
			return coerceTo(v, to), nil
		}, nil
	case *FuncExpr:
		return c.compileFunc(e)
	case *SubqueryExpr:
		return c.compileScalarSub(e.Sub)
	}
	return nil, errorf("unsupported expression %T", e)
}

func (c *compiler) compileBinary(e *BinaryExpr) (compiledExpr, error) {
	l, err := c.compile(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(e.R)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "AND":
		return func(ctx *evalCtx, row []Value) (Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return Null, err
			}
			// Short-circuit: false AND x = false even if x errors/NULL.
			if !lv.IsNull() && !lv.Bool() {
				return NewBool(false), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return Null, err
			}
			if !rv.IsNull() && !rv.Bool() {
				return NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewBool(true), nil
		}, nil
	case "OR":
		return func(ctx *evalCtx, row []Value) (Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return Null, err
			}
			if !lv.IsNull() && lv.Bool() {
				return NewBool(true), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return Null, err
			}
			if !rv.IsNull() && rv.Bool() {
				return NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := e.Op
		return func(ctx *evalCtx, row []Value) (Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return Null, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return Null, err
			}
			cmp, ok := compareSQL(lv, rv)
			if !ok {
				return Null, nil
			}
			var res bool
			switch op {
			case "=":
				res = cmp == 0
			case "<>":
				res = cmp != 0
			case "<":
				res = cmp < 0
			case "<=":
				res = cmp <= 0
			case ">":
				res = cmp > 0
			case ">=":
				res = cmp >= 0
			}
			return NewBool(res), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := e.Op
		return func(ctx *evalCtx, row []Value) (Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return Null, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return Null, err
			}
			switch op {
			case "+":
				return addValues(lv, rv), nil
			case "-":
				return subValues(lv, rv), nil
			case "*":
				return mulValues(lv, rv), nil
			case "/":
				return divValues(lv, rv), nil
			default:
				return modValues(lv, rv), nil
			}
		}, nil
	case "||":
		return func(ctx *evalCtx, row []Value) (Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return Null, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewText(lv.Text() + rv.Text()), nil
		}, nil
	}
	return nil, errorf("unknown binary operator %s", e.Op)
}

func (c *compiler) compileLike(e *LikeExpr) (compiledExpr, error) {
	x, err := c.compile(e.X)
	if err != nil {
		return nil, err
	}
	pat, err := c.compile(e.Pattern)
	if err != nil {
		return nil, err
	}
	var escFn compiledExpr
	if e.Escape != nil {
		escFn, err = c.compile(e.Escape)
		if err != nil {
			return nil, err
		}
	}
	not := e.Not
	return func(ctx *evalCtx, row []Value) (Value, error) {
		xv, err := x(ctx, row)
		if err != nil {
			return Null, err
		}
		pv, err := pat(ctx, row)
		if err != nil {
			return Null, err
		}
		if xv.IsNull() || pv.IsNull() {
			return Null, nil
		}
		var esc byte
		if escFn != nil {
			ev, err := escFn(ctx, row)
			if err != nil {
				return Null, err
			}
			s := ev.Text()
			if len(s) != 1 {
				return Null, errorf("ESCAPE must be a single character")
			}
			esc = s[0]
		}
		res := likeMatch(xv.Text(), pv.Text(), esc)
		if not {
			res = !res
		}
		return NewBool(res), nil
	}, nil
}

func (c *compiler) compileIn(e *InExpr) (compiledExpr, error) {
	x, err := c.compile(e.X)
	if err != nil {
		return nil, err
	}
	not := e.Not
	if e.Sub != nil {
		subPlan, subSch, err := planSelect(c.st, e.Sub, c.sch)
		if err != nil {
			return nil, err
		}
		if len(subSch) != 1 {
			return nil, errorf("IN subquery must return exactly one column")
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return Null, err
			}
			if xv.IsNull() {
				return Null, nil
			}
			rows, err := runSubquery(ctx, subPlan, row)
			if err != nil {
				return Null, err
			}
			sawNull := false
			for _, r := range rows {
				if r[0].IsNull() {
					sawNull = true
					continue
				}
				if cmp, ok := compareSQL(xv, r[0]); ok && cmp == 0 {
					return NewBool(!not), nil
				}
			}
			if sawNull {
				return Null, nil
			}
			return NewBool(not), nil
		}, nil
	}
	items := make([]compiledExpr, len(e.List))
	for i, le := range e.List {
		items[i], err = c.compile(le)
		if err != nil {
			return nil, err
		}
	}
	return func(ctx *evalCtx, row []Value) (Value, error) {
		xv, err := x(ctx, row)
		if err != nil {
			return Null, err
		}
		if xv.IsNull() {
			return Null, nil
		}
		sawNull := false
		for _, it := range items {
			iv, err := it(ctx, row)
			if err != nil {
				return Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if cmp, ok := compareSQL(xv, iv); ok && cmp == 0 {
				return NewBool(!not), nil
			}
		}
		if sawNull {
			return Null, nil
		}
		return NewBool(not), nil
	}, nil
}

func (c *compiler) compileExists(e *ExistsExpr) (compiledExpr, error) {
	subPlan, _, err := planSelect(c.st, e.Sub, c.sch)
	if err != nil {
		return nil, err
	}
	not := e.Not
	return func(ctx *evalCtx, row []Value) (Value, error) {
		found, err := subqueryHasRow(ctx, subPlan, row)
		if err != nil {
			return Null, err
		}
		return NewBool(found != not), nil
	}, nil
}

func (c *compiler) compileScalarSub(sub *SelectStmt) (compiledExpr, error) {
	subPlan, subSch, err := planSelect(c.st, sub, c.sch)
	if err != nil {
		return nil, err
	}
	if len(subSch) != 1 {
		return nil, errorf("scalar subquery must return exactly one column")
	}
	return func(ctx *evalCtx, row []Value) (Value, error) {
		rows, err := runSubquery(ctx, subPlan, row)
		if err != nil {
			return Null, err
		}
		switch len(rows) {
		case 0:
			return Null, nil
		case 1:
			return rows[0][0], nil
		default:
			return Null, errorf("scalar subquery returned %d rows", len(rows))
		}
	}, nil
}

func (c *compiler) compileCase(e *CaseExpr) (compiledExpr, error) {
	var operand compiledExpr
	var err error
	if e.Operand != nil {
		operand, err = c.compile(e.Operand)
		if err != nil {
			return nil, err
		}
	}
	type arm struct{ cond, result compiledExpr }
	arms := make([]arm, len(e.Whens))
	for i, w := range e.Whens {
		arms[i].cond, err = c.compile(w.Cond)
		if err != nil {
			return nil, err
		}
		arms[i].result, err = c.compile(w.Result)
		if err != nil {
			return nil, err
		}
	}
	var elseFn compiledExpr
	if e.Else != nil {
		elseFn, err = c.compile(e.Else)
		if err != nil {
			return nil, err
		}
	}
	return func(ctx *evalCtx, row []Value) (Value, error) {
		var opv Value
		if operand != nil {
			var err error
			opv, err = operand(ctx, row)
			if err != nil {
				return Null, err
			}
		}
		for _, a := range arms {
			cv, err := a.cond(ctx, row)
			if err != nil {
				return Null, err
			}
			matched := false
			if operand != nil {
				if cmp, ok := compareSQL(opv, cv); ok && cmp == 0 {
					matched = true
				}
			} else {
				matched = !cv.IsNull() && cv.Bool()
			}
			if matched {
				return a.result(ctx, row)
			}
		}
		if elseFn != nil {
			return elseFn(ctx, row)
		}
		return Null, nil
	}, nil
}

// aggregateFuncs are handled by the aggregation operator, never here.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (c *compiler) compileFunc(e *FuncExpr) (compiledExpr, error) {
	if aggregateFuncs[e.Name] {
		return nil, errorf("aggregate %s used outside of aggregation context", e.Name)
	}
	args := make([]compiledExpr, len(e.Args))
	var err error
	for i, a := range e.Args {
		args[i], err = c.compile(a)
		if err != nil {
			return nil, err
		}
	}
	evalArgs := func(ctx *evalCtx, row []Value) ([]Value, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			vals[i], err = a(ctx, row)
			if err != nil {
				return nil, err
			}
		}
		return vals, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return errorf("%s expects %d argument(s), got %d", e.Name, n, len(args))
		}
		return nil
	}
	switch e.Name {
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			return NewInt(int64(len(v[0].Text()))), nil
		}, nil
	case "UPPER", "LOWER":
		if err := need(1); err != nil {
			return nil, err
		}
		up := e.Name == "UPPER"
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			if up {
				return NewText(strings.ToUpper(v[0].Text())), nil
			}
			return NewText(strings.ToLower(v[0].Text())), nil
		}, nil
	case "TRIM":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			return NewText(strings.TrimSpace(v[0].Text())), nil
		}, nil
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			switch v[0].T {
			case TypeNull:
				return Null, nil
			case TypeFloat:
				f := v[0].F
				if f < 0 {
					f = -f
				}
				return NewFloat(f), nil
			default:
				i := v[0].Int()
				if i < 0 {
					i = -i
				}
				return NewInt(i), nil
			}
		}, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return nil, errorf("SUBSTR expects 2 or 3 arguments")
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			s := v[0].Text()
			start := int(v[1].Int()) // 1-based
			if start < 1 {
				start = 1
			}
			if start > len(s)+1 {
				return NewText(""), nil
			}
			rest := s[start-1:]
			if len(v) == 3 {
				n := int(v[2].Int())
				if n < 0 {
					n = 0
				}
				if n < len(rest) {
					rest = rest[:n]
				}
			}
			return NewText(rest), nil
		}, nil
	case "REPLACE":
		if err := need(3); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			return NewText(strings.ReplaceAll(v[0].Text(), v[1].Text(), v[2].Text())), nil
		}, nil
	case "INSTR":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() || v[1].IsNull() {
				return Null, nil
			}
			return NewInt(int64(strings.Index(v[0].Text(), v[1].Text()) + 1)), nil
		}, nil
	case "COALESCE":
		if len(args) == 0 {
			return nil, errorf("COALESCE expects at least one argument")
		}
		fns := args
		return func(ctx *evalCtx, row []Value) (Value, error) {
			for _, f := range fns {
				v, err := f(ctx, row)
				if err != nil {
					return Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null, nil
		}, nil
	case "IFNULL":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := args[0](ctx, row)
			if err != nil {
				return Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
			return args[1](ctx, row)
		}, nil
	case "NULLIF":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if cmp, ok := compareSQL(v[0], v[1]); ok && cmp == 0 {
				return Null, nil
			}
			return v[0], nil
		}, nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return nil, errorf("ROUND expects 1 or 2 arguments")
		}
		return func(ctx *evalCtx, row []Value) (Value, error) {
			v, err := evalArgs(ctx, row)
			if err != nil {
				return Null, err
			}
			if v[0].IsNull() {
				return Null, nil
			}
			digits := 0
			if len(v) == 2 {
				digits = int(v[1].Int())
			}
			return NewFloat(roundTo(v[0].Float(), digits)), nil
		}, nil
	}
	return nil, errorf("unknown function %s", e.Name)
}

func roundTo(f float64, digits int) float64 {
	scale := 1.0
	for i := 0; i < digits; i++ {
		scale *= 10
	}
	for i := 0; i > digits; i-- {
		scale /= 10
	}
	v := f * scale
	if v < 0 {
		return float64(int64(v-0.5)) / scale
	}
	return float64(int64(v+0.5)) / scale
}

// exprString renders an expression canonically so the planner can match
// GROUP BY keys against select-list expressions structurally.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *Literal:
		return e.Val.String()
	case *Param:
		return fmt.Sprintf("?%d", e.Idx)
	case *inputRef:
		return fmt.Sprintf("#%d", e.idx)
	case *outerRef:
		return fmt.Sprintf("^%d", e.idx)
	case *ColumnRef:
		return strings.ToLower(refName(e.Table, e.Name))
	case *UnaryExpr:
		return "(" + e.Op + " " + exprString(e.X) + ")"
	case *BinaryExpr:
		return "(" + exprString(e.L) + " " + e.Op + " " + exprString(e.R) + ")"
	case *LikeExpr:
		s := "(" + exprString(e.X) + " LIKE " + exprString(e.Pattern)
		if e.Escape != nil {
			s += " ESCAPE " + exprString(e.Escape)
		}
		if e.Not {
			s = "(NOT " + s + "))"
		} else {
			s += ")"
		}
		return s
	case *InExpr:
		var parts []string
		for _, x := range e.List {
			parts = append(parts, exprString(x))
		}
		return fmt.Sprintf("(%s IN [%s] not=%v sub=%p)", exprString(e.X), strings.Join(parts, ","), e.Not, e.Sub)
	case *ExistsExpr:
		return fmt.Sprintf("(EXISTS %p not=%v)", e.Sub, e.Not)
	case *BetweenExpr:
		return fmt.Sprintf("(%s BETWEEN %s AND %s not=%v)", exprString(e.X), exprString(e.Lo), exprString(e.Hi), e.Not)
	case *IsNullExpr:
		return fmt.Sprintf("(%s IS NULL not=%v)", exprString(e.X), e.Not)
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("(CASE ")
		if e.Operand != nil {
			b.WriteString(exprString(e.Operand))
		}
		for _, w := range e.Whens {
			b.WriteString(" WHEN " + exprString(w.Cond) + " THEN " + exprString(w.Result))
		}
		if e.Else != nil {
			b.WriteString(" ELSE " + exprString(e.Else))
		}
		b.WriteString(" END)")
		return b.String()
	case *FuncExpr:
		var parts []string
		for _, a := range e.Args {
			parts = append(parts, exprString(a))
		}
		star := ""
		if e.Star {
			star = "*"
		}
		distinct := ""
		if e.Distinct {
			distinct = "DISTINCT "
		}
		return e.Name + "(" + distinct + star + strings.Join(parts, ",") + ")"
	case *CastExpr:
		return "CAST(" + exprString(e.X) + " AS " + e.To.String() + ")"
	case *SubqueryExpr:
		return fmt.Sprintf("(SUB %p)", e.Sub)
	}
	return fmt.Sprintf("%T", e)
}
