package sqldb

import (
	"bytes"
	"testing"
)

// fuzzSnapshotSeed builds a small database and returns its v2 snapshot
// bytes.
func fuzzSnapshotSeed() []byte {
	db := New()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'one'), (2, NULL)`)
	db.MustExec(`CREATE INDEX kv_v ON kv (v)`)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoadFrom feeds arbitrary bytes to the snapshot loader: it must
// return a database or an error — never panic, and never hand back a
// silently partial database on corrupt input (the v2 envelope's length
// and CRC checks see to that).
func FuzzLoadFrom(f *testing.F) {
	valid := fuzzSnapshotSeed()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(snapshotMagicV2))
	f.Add([]byte(snapshotMagic)) // legacy prefix, not a gob stream
	f.Add(valid[:len(valid)/2])  // truncated
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	trailing := append(append([]byte(nil), valid...), 'x')
	f.Add(trailing)
	f.Add([]byte("xrdb-but-not-a-snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must be a coherent, usable database.
		checkIndexes(t, db)
		if _, err := db.Exec(`CREATE TABLE fuzz_probe (x INTEGER)`); err != nil {
			t.Fatalf("loaded database rejects DDL: %v", err)
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the WAL scanner and replays
// whatever decodes onto a fresh database: scanning must never read out
// of bounds or panic, and replay errors (unknown tables, arity
// mismatches) must surface as errors, not crashes.
func FuzzWALReplay(f *testing.F) {
	var valid []byte
	for _, rec := range sampleRecords() {
		valid = append(valid, appendFrame(nil, encodeRecordPayload(nil, rec))...)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x80
	f.Add(flipped)
	f.Add(make([]byte, 64)) // zeroed region
	// A frame with a huge claimed length.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, goodLen := scanWAL(data)
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		db := New()
		for _, rec := range records {
			if rec == nil {
				t.Fatal("scanWAL returned a nil record")
			}
			// Errors are fine (the log may reference tables that were
			// never created); panics are not.
			_ = db.applyRecord(rec)
		}
		checkIndexes(t, db)
	})
}
