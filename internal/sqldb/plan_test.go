package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// chainDB models the F5 shape: one tiny root, a skewed fan-out, and a
// selective leaf predicate. The sampled join ordering must start at the
// selective end.
func chainDB(t *testing.T, withValueIndex bool) *Database {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE e (source INTEGER, name TEXT, target INTEGER PRIMARY KEY, value TEXT)`)
	db.MustExec(`CREATE INDEX e_source ON e (source)`)
	db.MustExec(`CREATE INDEX e_name ON e (name)`)
	if withValueIndex {
		db.MustExec(`CREATE INDEX e_nv ON e (name, value)`)
	}
	// Node 1 = root "table" under source 0; 500 "row" children; each row
	// one "val" child with distinct value.
	db.MustExec(`INSERT INTO e VALUES (0, 'table', 1, NULL)`)
	id := int64(2)
	for i := 0; i < 500; i++ {
		rowID := id
		id++
		db.MustExec(`INSERT INTO e VALUES (1, 'row', ?, NULL)`, NewInt(rowID))
		db.MustExec(`INSERT INTO e VALUES (?, 'val', ?, ?)`,
			NewInt(rowID), NewInt(id), NewText(fmt.Sprintf("v%03d", i)))
		id++
	}
	return db
}

const chainQuery = `
	SELECT e3.target FROM e e1, e e2, e e3
	WHERE e1.source = 0 AND e1.name = 'table'
	  AND e2.source = e1.target AND e2.name = 'row'
	  AND e3.source = e2.target AND e3.name = 'val' AND e3.value = 'v007'`

func TestSampledOrderingUsesValueIndex(t *testing.T) {
	db := chainDB(t, true)
	plan, err := db.Explain(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "e_nv") {
		t.Errorf("plan does not drive from the value index:\n%s", plan)
	}
	rows, err := db.Query(chainQuery)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("result: %v %v", rows, err)
	}
}

func TestSampledOrderingCorrectWithoutIndex(t *testing.T) {
	db := chainDB(t, false)
	rows, err := db.Query(chainQuery)
	if err != nil || rows.Len() != 1 {
		t.Fatalf("result: %v %v", rows, err)
	}
}

func TestRangeIndexJoin(t *testing.T) {
	// The interval-style descendant join: c.pre BETWEEN p.pre+1 AND
	// p.pre+p.size must execute as a range index join, not O(n*m).
	db := New()
	db.MustExec(`CREATE TABLE a (pre INTEGER, size INTEGER, name TEXT)`)
	db.MustExec(`CREATE INDEX a_pre ON a (pre)`)
	db.MustExec(`CREATE INDEX a_name_pre ON a (name, pre)`)
	// Three parents each with a contiguous block of children.
	pre := int64(0)
	for p := 0; p < 3; p++ {
		parentPre := pre
		db.MustExec(`INSERT INTO a VALUES (?, 100, 'p')`, NewInt(parentPre))
		pre++
		for c := 0; c < 100; c++ {
			db.MustExec(`INSERT INTO a VALUES (?, 0, 'c')`, NewInt(pre))
			pre++
		}
	}
	q := `SELECT COUNT(*) FROM a p, a c
	      WHERE p.name = 'p' AND c.name = 'c'
	        AND c.pre > p.pre AND c.pre <= p.pre + p.size`
	v, err := db.QueryScalar(q)
	if err != nil || v.Int() != 300 {
		t.Fatalf("range join count = %v (%v)", v, err)
	}
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexJoin") || !strings.Contains(plan, "range lo=true hi=true") {
		t.Errorf("descendant join did not use a range index join:\n%s", plan)
	}
}

func TestIndexBoundTypeSafety(t *testing.T) {
	// A numeric comparison against a TEXT column must not use the
	// text-ordered index (it would scan in the wrong order), yet must
	// still return the coerced-comparison answer.
	db := New()
	db.MustExec(`CREATE TABLE t (v TEXT)`)
	db.MustExec(`CREATE INDEX t_v ON t (v)`)
	for _, s := range []string{"99.5", "100", "250.00", "30", "abc", "251"} {
		db.MustExec(`INSERT INTO t VALUES (?)`, NewText(s))
	}
	v, err := db.QueryScalar(`SELECT COUNT(*) FROM t WHERE v > 250`)
	if err != nil {
		t.Fatal(err)
	}
	// "251" compares numerically; non-numeric "abc" orders after all
	// numbers (SQLite-style type ordering).
	if v.Int() != 2 {
		t.Errorf("coerced > = %d, want 2", v.Int())
	}
	v, err = db.QueryScalar(`SELECT COUNT(*) FROM t WHERE v = 250`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 { // "250.00" == 250 under coercion
		t.Errorf("coerced = : %d, want 1", v.Int())
	}
	// Text bounds may and should use the index; same answer either way.
	v, _ = db.QueryScalar(`SELECT COUNT(*) FROM t WHERE v = '250.00'`)
	if v.Int() != 1 {
		t.Errorf("text eq: %d", v.Int())
	}
}

func TestCorrelatedSubqueryUsesIndex(t *testing.T) {
	// The positional-count pattern: the correlated scalar subquery's
	// outer reference acts as an index bound, turning an O(n^2) filter
	// into probes. Verify correctness; speed is covered by F1/Q5.
	db := New()
	db.MustExec(`CREATE TABLE s (parent INTEGER, ord INTEGER, val TEXT)`)
	db.MustExec(`CREATE INDEX s_parent ON s (parent, ord)`)
	for p := 0; p < 20; p++ {
		for o := 1; o <= 5; o++ {
			db.MustExec(`INSERT INTO s VALUES (?, ?, ?)`,
				NewInt(int64(p)), NewInt(int64(o)), NewText(fmt.Sprintf("p%do%d", p, o)))
		}
	}
	rows, err := db.Query(`
		SELECT val FROM s x
		WHERE (SELECT COUNT(*) FROM s y WHERE y.parent = x.parent AND y.ord < x.ord) + 1 = 2
		ORDER BY val`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 20 {
		t.Fatalf("second-position rows = %d, want 20", rows.Len())
	}
	for _, r := range rows.Data {
		if !strings.HasSuffix(r[0].Text(), "o2") {
			t.Fatalf("wrong row selected: %s", r[0].Text())
		}
	}
}

func TestCrossJoinAndMultiJoinOrders(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE x (a INTEGER)`)
	db.MustExec(`CREATE TABLE y (b INTEGER)`)
	db.MustExec(`CREATE TABLE z (c INTEGER)`)
	for i := 0; i < 4; i++ {
		db.MustExec(`INSERT INTO x VALUES (?)`, NewInt(int64(i)))
		db.MustExec(`INSERT INTO y VALUES (?)`, NewInt(int64(i)))
		db.MustExec(`INSERT INTO z VALUES (?)`, NewInt(int64(i)))
	}
	v, err := db.QueryScalar(`SELECT COUNT(*) FROM x, y, z`)
	if err != nil || v.Int() != 64 {
		t.Fatalf("cross join: %v %v", v, err)
	}
	// A join chain linking x-y and y-z: any order must give the same.
	v, err = db.QueryScalar(`SELECT COUNT(*) FROM x, y, z WHERE x.a = y.b AND y.b = z.c`)
	if err != nil || v.Int() != 4 {
		t.Fatalf("chain join: %v %v", v, err)
	}
	// Non-equi join condition.
	v, err = db.QueryScalar(`SELECT COUNT(*) FROM x, y WHERE x.a < y.b`)
	if err != nil || v.Int() != 6 {
		t.Fatalf("non-equi join: %v %v", v, err)
	}
}

func TestDerivedTableJoins(t *testing.T) {
	db := testDB(t)
	v, err := db.QueryScalar(`
		SELECT COUNT(*) FROM nums n, (SELECT n AS tn FROM tags WHERE tag = 'five') f
		WHERE n.n = f.tn`)
	if err != nil || v.Int() != 20 {
		t.Fatalf("derived join: %v %v", v, err)
	}
	// Aggregate over a derived aggregate.
	v, err = db.QueryScalar(`
		SELECT MAX(c) FROM (SELECT grp, COUNT(*) AS c FROM nums GROUP BY grp) g`)
	if err != nil || v.Int() != 50 {
		t.Fatalf("nested agg: %v %v", v, err)
	}
}

func TestInsertSelectAndBulk(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE TABLE copy (n INTEGER, label TEXT)`)
	n, err := db.Exec(`INSERT INTO copy SELECT n, label FROM nums WHERE grp = 'even'`)
	if err != nil || n != 50 {
		t.Fatalf("insert-select: %d %v", n, err)
	}
	// BulkInsert coerces to declared types.
	if _, err := db.BulkInsert("copy", [][]Value{{NewText("7"), NewInt(9)}}); err != nil {
		t.Fatal(err)
	}
	v, _ := db.QueryScalar(`SELECT COUNT(*) FROM copy WHERE n = 7 AND label = '9'`)
	if v.Int() != 1 {
		t.Error("bulk coercion failed")
	}
	// Wrong arity rejected.
	if _, err := db.BulkInsert("copy", [][]Value{{NewInt(1)}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.BulkInsert("nosuch", nil); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM nums WHERE grp = 'even'`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
