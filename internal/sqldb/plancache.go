package sqldb

import (
	"sync/atomic"
	"time"

	"repro/internal/lru"
)

// The plan cache maps SQL text to compiled plans so repeated queries
// skip parsing, semantic analysis and join ordering (the last of which
// executes sampled candidate chains and dominates compile cost). A
// compiled plan captures raw *table and *tableIndex pointers, so it is
// only valid for the exact schema it was planned against: every entry
// records the database's schema epoch at plan time and is discarded on
// lookup if the epoch has moved. The epoch is bumped by every DDL
// statement — CREATE/DROP TABLE and CREATE/DROP INDEX — which makes the
// stale-plan bug class (reading an orphaned table or a detached index
// after DDL) structurally impossible for cached plans and for Prepared
// statements alike.
//
// Plan nodes are immutable during execution (all per-run state lives in
// iterators), so one cached plan may be executed by any number of
// concurrent lock-free readers; each execution re-resolves table
// versions against its own pinned snapshot when operators open.

// defaultPlanCacheCap bounds the plan cache. Entries are full compiled
// plans, so the bound is deliberately modest; workloads with more than
// this many distinct hot statements should raise it via
// SetPlanCacheCapacity.
const defaultPlanCacheCap = 256

// cachedPlan is one plan cache entry.
type cachedPlan struct {
	p     *plan
	cols  []string
	epoch uint64
}

// planCache wraps the shared LRU with epoch validation and semantic
// hit/miss accounting.
type planCache struct {
	c             *lru.Cache[*cachedPlan]
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{c: lru.New[*cachedPlan](capacity)}
}

// get returns the cached plan for sql if one exists and was compiled at
// the given schema epoch. A stale entry is removed and counted as an
// invalidation (and a miss).
func (pc *planCache) get(sql string, epoch uint64) (*cachedPlan, bool) {
	e, ok := pc.c.Get(sql)
	if !ok {
		pc.misses.Add(1)
		return nil, false
	}
	if e.epoch != epoch {
		pc.c.Remove(sql)
		pc.invalidations.Add(1)
		pc.misses.Add(1)
		return nil, false
	}
	pc.hits.Add(1)
	return e, true
}

func (pc *planCache) put(sql string, e *cachedPlan) { pc.c.Put(sql, e) }

// CacheStats reports the activity of one cache.
type CacheStats struct {
	Capacity int
	Entries  int
	Hits     uint64
	Misses   uint64
	// Evictions counts entries displaced by capacity pressure.
	Evictions uint64
	// Invalidations counts entries discarded because the schema epoch
	// moved (plan cache) or the underlying state changed (translation
	// cache).
	Invalidations uint64
}

func (pc *planCache) stats() CacheStats {
	return CacheStats{
		Capacity:      pc.c.Cap(),
		Entries:       pc.c.Len(),
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Evictions:     pc.c.Evictions(),
		Invalidations: pc.invalidations.Load(),
	}
}

// SetPlanCacheCapacity resizes the plan cache; zero disables caching
// (every query compiles fresh). Existing entries beyond the new
// capacity are evicted.
func (db *Database) SetPlanCacheCapacity(n int) {
	db.plans.c.Resize(n)
}

// PlanCacheStats returns the plan cache counters.
func (db *Database) PlanCacheStats() CacheStats {
	return db.plans.stats()
}

// SchemaEpoch returns the current schema version. It advances on every
// DDL statement (CREATE/DROP TABLE, CREATE/DROP INDEX); compiled plans
// and Prepared statements are valid only for the epoch they were
// compiled at.
func (db *Database) SchemaEpoch() uint64 {
	return db.state.Load().epoch
}

// cachedPlanFor returns a plan for sql valid for the snapshot st,
// serving from the plan cache when the schema epoch still matches and
// compiling (and caching) on a miss. The bool reports whether the plan
// came from the cache. verb names the calling API for error messages.
func (db *Database) cachedPlanFor(st *dbState, sql, verb string) (*cachedPlan, bool, error) {
	if e, ok := db.plans.get(sql, st.epoch); ok {
		return e, true, nil
	}
	start := time.Now()
	stmt, err := Parse(sql)
	if err != nil {
		return nil, false, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, false, errorf("%s requires a SELECT statement", verb)
	}
	p, sch, err := planSelect(st, sel, nil)
	if err != nil {
		return nil, false, err
	}
	p.template = NormalizeSQL(sql)
	db.metrics.recordPlanCompile(time.Since(start))
	cols := make([]string, len(sch))
	for i, c := range sch {
		cols[i] = c.name
	}
	e := &cachedPlan{p: p, cols: cols, epoch: st.epoch}
	db.plans.put(sql, e)
	return e, false, nil
}
