package sqldb

import (
	"strings"
	"testing"
)

func TestPlanCacheHitMissCounters(t *testing.T) {
	db := testDB(t)
	base := db.PlanCacheStats()
	const q = `SELECT n FROM nums WHERE n < 10`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := db.PlanCacheStats()
	if got := s.Misses - base.Misses; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := s.Hits - base.Hits; got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if s.Entries == 0 {
		t.Error("no entries cached")
	}
}

func TestPlanCacheResultsStableAcrossHits(t *testing.T) {
	db := testDB(t)
	const q = `SELECT grp, COUNT(*) FROM nums GROUP BY grp ORDER BY 1`
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Data) != len(second.Data) {
		t.Fatalf("row counts differ: %d vs %d", len(first.Data), len(second.Data))
	}
	for i := range first.Data {
		for j := range first.Data[i] {
			if Compare(first.Data[i][j], second.Data[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, first.Data[i], second.Data[i])
			}
		}
	}
	// Cached plans still see new data (plans cache compilation, not
	// results).
	db.MustExec(`INSERT INTO nums VALUES (1000, 1000000, 'n1000', 'big')`)
	third, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range third.Data {
		total += r[1].Int()
	}
	if total != 101 {
		t.Errorf("total after insert = %d, want 101", total)
	}
}

func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2)`)
	const q = `SELECT COUNT(*) FROM t`
	if v, err := db.QueryScalar(q); err != nil || v.Int() != 2 {
		t.Fatalf("initial: %v %v", v, err)
	}
	epoch := db.SchemaEpoch()

	// Drop and recreate the table: the cached plan must not resurrect
	// the orphaned storage.
	db.MustExec(`DROP TABLE t`)
	if db.SchemaEpoch() == epoch {
		t.Fatal("DROP TABLE did not advance the schema epoch")
	}
	if _, err := db.Query(q); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("query after drop: %v", err)
	}
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (7)`)
	if v, err := db.QueryScalar(q); err != nil || v.Int() != 1 {
		t.Fatalf("after recreate: %v %v (stale plan read the orphaned table?)", v, err)
	}
	if inv := db.PlanCacheStats().Invalidations; inv == 0 {
		t.Error("no invalidations counted")
	}
}

func TestPlanCacheInvalidatedByIndexDDL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	for i := 0; i < 20; i++ {
		db.MustExec(`INSERT INTO t VALUES (?)`, NewInt(int64(i)))
	}
	const q = `SELECT n FROM t WHERE n = 5`
	run := func() {
		t.Helper()
		rows, err := db.Query(q)
		if err != nil || rows.Len() != 1 || rows.Data[0][0].Int() != 5 {
			t.Fatalf("rows = %v err = %v", rows, err)
		}
	}
	run() // plan without index
	epoch := db.SchemaEpoch()
	db.MustExec(`CREATE INDEX t_n ON t (n)`)
	if db.SchemaEpoch() == epoch {
		t.Fatal("CREATE INDEX did not advance the schema epoch")
	}
	run() // replanned; may now use the index
	// Dropping the index detaches its B-tree from maintenance. A stale
	// plan scanning it would miss subsequent inserts.
	db.MustExec(`DROP INDEX t_n`)
	db.MustExec(`INSERT INTO t VALUES (5)`)
	rows, err := db.Query(q)
	if err != nil || rows.Len() != 2 {
		t.Fatalf("after index drop + insert: rows = %d err = %v (stale index plan?)", rows.Len(), err)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.SetPlanCacheCapacity(4)
	for i := 0; i < 10; i++ {
		sql := `SELECT n FROM t WHERE n = ` + string(rune('0'+i))
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	s := db.PlanCacheStats()
	if s.Entries > 4 {
		t.Errorf("entries = %d exceeds capacity 4", s.Entries)
	}
	if s.Evictions == 0 {
		t.Error("no evictions under capacity pressure")
	}
	// Zero capacity disables caching.
	db.SetPlanCacheCapacity(0)
	before := db.PlanCacheStats().Hits
	db.Query(`SELECT n FROM t`)
	db.Query(`SELECT n FROM t`)
	if db.PlanCacheStats().Hits != before {
		t.Error("disabled cache served a hit")
	}
}

func TestExplainReportsCached(t *testing.T) {
	db := testDB(t)
	const q = `SELECT n FROM nums WHERE n < 5`
	first, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first, "(cached)") {
		t.Errorf("first explain claims cached:\n%s", first)
	}
	second, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "(cached)") {
		t.Errorf("second explain not marked cached:\n%s", second)
	}
	// DDL invalidates: the marker disappears again.
	db.MustExec(`CREATE TABLE unrelated (x INTEGER)`)
	third, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(third, "(cached)") {
		t.Errorf("explain after DDL still cached:\n%s", third)
	}
}

func TestStatsIncludePlanCache(t *testing.T) {
	db := testDB(t)
	db.Query(`SELECT n FROM nums`)
	db.Query(`SELECT n FROM nums`)
	s := db.Stats()
	if s.PlanCache.Hits == 0 || s.PlanCache.Misses == 0 {
		t.Errorf("cache counters missing from Stats: %+v", s.PlanCache)
	}
	if s.SchemaEpoch == 0 {
		t.Error("schema epoch missing from Stats")
	}
}
