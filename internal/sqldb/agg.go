package sqldb

// Hash aggregation operator and the aggregate-function state machines.

type aggSpec struct {
	name     string       // COUNT, SUM, AVG, MIN, MAX
	arg      compiledExpr // nil for COUNT(*)
	distinct bool
	// exact marks aggregates whose partial states merge without any
	// result drift, making them eligible for parallel partial
	// aggregation: COUNT/MIN/MAX always, SUM/AVG only when the argument
	// is statically integer-typed (float addition is not associative),
	// and never DISTINCT (the dedup set is per-partition).
	exact bool
}

type aggNode struct {
	in      planNode
	groupBy []compiledExpr
	aggs    []aggSpec
	schema  schema
}

func (n *aggNode) sch() schema { return n.schema }

func (n *aggNode) estRows() float64 {
	if len(n.groupBy) == 0 {
		return 1
	}
	return n.in.estRows()/4 + 1
}

type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	hasVal  bool
	min     Value
	max     Value
	seen    map[string]bool // for DISTINCT
}

func (s *aggState) add(v Value, distinct bool) {
	if v.IsNull() {
		return
	}
	if distinct {
		if s.seen == nil {
			s.seen = map[string]bool{}
		}
		k := distinctKey([]Value{v})
		if s.seen[k] {
			return
		}
		s.seen[k] = true
	}
	s.count++
	if v.T == TypeFloat {
		if !s.isFloat {
			s.sumF = float64(s.sumI) + s.sumF
			s.isFloat = true
		}
		s.sumF += v.F
	} else if s.isFloat {
		s.sumF += v.Float()
	} else {
		s.sumI += v.Int()
	}
	if !s.hasVal {
		s.min, s.max = v, v
		s.hasVal = true
	} else {
		if Compare(v, s.min) < 0 {
			s.min = v
		}
		if Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

// merge folds another partial state into s. Only reached for exact
// aggregates (see aggSpec.exact), so DISTINCT sets never need merging
// and any float sums came from explicit float inputs.
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	switch {
	case !s.isFloat && o.isFloat:
		s.sumF = float64(s.sumI) + o.sumF
		s.sumI = 0
		s.isFloat = true
	case s.isFloat && o.isFloat:
		s.sumF += o.sumF
	case s.isFloat:
		s.sumF += float64(o.sumI)
	default:
		s.sumI += o.sumI
	}
	if o.hasVal {
		if !s.hasVal {
			s.min, s.max = o.min, o.max
			s.hasVal = true
		} else {
			if Compare(o.min, s.min) < 0 {
				s.min = o.min
			}
			if Compare(o.max, s.max) > 0 {
				s.max = o.max
			}
		}
	}
}

func (s *aggState) result(name string) Value {
	switch name {
	case "COUNT":
		return NewInt(s.count)
	case "SUM":
		if s.count == 0 {
			return Null
		}
		if s.isFloat {
			return NewFloat(s.sumF)
		}
		return NewInt(s.sumI)
	case "AVG":
		if s.count == 0 {
			return Null
		}
		sum := s.sumF
		if !s.isFloat {
			sum = float64(s.sumI)
		}
		return NewFloat(sum / float64(s.count))
	case "MIN":
		if !s.hasVal {
			return Null
		}
		return s.min
	case "MAX":
		if !s.hasVal {
			return Null
		}
		return s.max
	}
	return Null
}

func (n *aggNode) open(ctx *evalCtx) (rowIter, error) {
	type group struct {
		keys   []Value
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output order (first occurrence)

	newStates := func() []*aggState {
		st := make([]*aggState, len(n.aggs))
		for i := range st {
			st[i] = &aggState{}
		}
		return st
	}

	foldRow := func(row []Value) error {
		keys := make([]Value, len(n.groupBy))
		var err error
		for i, g := range n.groupBy {
			keys[i], err = g(ctx, row)
			if err != nil {
				return err
			}
		}
		k := distinctKey(keys)
		grp := groups[k]
		if grp == nil {
			if err := ctx.mem.charge(valuesBytes(keys) + int64(len(k))*2 + int64(len(n.aggs))*64 + 48); err != nil {
				return err
			}
			grp = &group{keys: keys, states: newStates()}
			groups[k] = grp
			order = append(order, k)
		}
		for i, spec := range n.aggs {
			if spec.arg == nil { // COUNT(*)
				grp.states[i].count++
				continue
			}
			v, err := spec.arg(ctx, row)
			if err != nil {
				return err
			}
			grp.states[i].add(v, spec.distinct)
		}
		return nil
	}

	if ctx.vec && vecCapable(n.in) {
		// Batch fold: selected rows arrive in the same order the row
		// iterator would deliver them, so group order is unchanged.
		vi, err := openVec(ctx, n.in)
		if err != nil {
			return nil, err
		}
		defer vi.close()
		for {
			b, err := vi.nextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for k, cnt := 0, b.n(); k < cnt; k++ {
				if err := foldRow(b.row(k)); err != nil {
					return nil, err
				}
			}
		}
	} else {
		in, err := openNode(ctx, n.in)
		if err != nil {
			return nil, err
		}
		defer in.close()
		for {
			row, err := in.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			if err := foldRow(row); err != nil {
				return nil, err
			}
		}
	}

	// Global aggregation over an empty input produces one row.
	if len(n.groupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{states: newStates()}
		order = append(order, "")
	}

	out := make([][]Value, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		row := make([]Value, 0, len(n.groupBy)+len(n.aggs))
		row = append(row, grp.keys...)
		for i, spec := range n.aggs {
			row = append(row, grp.states[i].result(spec.name))
		}
		out = append(out, row)
	}
	return &sliceIter{rows: out}, nil
}
