package sqldb

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCachedQueriesWithDDL is the cache's race smoke test: N
// reader goroutines hammer cached queries while a writer interleaves
// DML and DDL (which bumps the schema epoch and invalidates plans).
// Queries against the stable table must always succeed; a prepared
// statement against the churned table must eventually report staleness.
// Run under `go test -race`.
func TestConcurrentCachedQueriesWithDDL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE stable (n INTEGER PRIMARY KEY, grp TEXT)`)
	for i := 0; i < 200; i++ {
		grp := "a"
		if i%3 == 0 {
			grp = "b"
		}
		db.MustExec(`INSERT INTO stable VALUES (?, ?)`, NewInt(int64(i)), NewText(grp))
	}
	db.MustExec(`CREATE TABLE churn (n INTEGER)`)
	db.MustExec(`INSERT INTO churn VALUES (1)`)

	prep, err := db.Prepare(`SELECT COUNT(*) FROM churn`)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT COUNT(*) FROM stable`,
		`SELECT grp, COUNT(*) FROM stable GROUP BY grp ORDER BY 1`,
		`SELECT n FROM stable WHERE n < 25 ORDER BY n DESC`,
		`SELECT COUNT(*) FROM stable WHERE grp = ?`,
	}

	const readers = 4
	const iters = 250
	var wg sync.WaitGroup
	errc := make(chan error, readers+2)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(r+i)%len(queries)]
				var err error
				if strings.Contains(q, "?") {
					_, err = db.Query(q, NewText("a"))
				} else {
					_, err = db.Query(q)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}

	// Writer 1: DML + index DDL churn on the stable table (the data
	// changes; the table never goes away, so readers must not fail).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Exec(`INSERT INTO stable VALUES (?, 'c')`, NewInt(int64(1000+i))); err != nil {
				errc <- err
				return
			}
			if _, err := db.Exec(`CREATE INDEX stable_grp ON stable (grp)`); err != nil {
				errc <- err
				return
			}
			if _, err := db.Exec(`DROP INDEX stable_grp`); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Writer 2: drop and recreate the churn table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Exec(`DROP TABLE churn`); err != nil {
				errc <- err
				return
			}
			if _, err := db.Exec(`CREATE TABLE churn (n INTEGER)`); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent worker failed: %v", err)
	}

	// The prepared statement was compiled before the DDL storm; it must
	// refuse to run, not read an orphaned table.
	if _, err := prep.Query(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("prepared statement after concurrent DDL: %v", err)
	}

	// Counter sanity: the readers produced far more lookups than plans.
	s := db.PlanCacheStats()
	if s.Hits == 0 {
		t.Error("no cache hits under concurrent load")
	}
	if s.Hits+s.Misses < readers*iters {
		t.Errorf("accounting lost lookups: hits=%d misses=%d", s.Hits, s.Misses)
	}
}
