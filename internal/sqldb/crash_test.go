package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// The fault-injection battery: run a fixed workload against a DurableDB
// on a fault-injecting in-memory VFS, kill the engine at every byte (and
// metadata-operation) boundary, reopen, and check the recovered state
// against a differential baseline built on a plain in-memory Database.
//
// Two crash modes bracket reality:
//
//   - CrashLoseUnsynced (power loss): the recovered state must equal the
//     baseline after exactly the acknowledged operations — an acked
//     commit may never be lost, an unacked one may never appear.
//   - CrashKeepAll (process kill, OS survives): the recovered state must
//     be the acked baseline or the acked baseline plus the single
//     in-flight operation (its frame may have reached the page cache
//     whole before the error surfaced).

// crashWorkload is the op sequence the sweep drives. An empty SQL
// string means "checkpoint here", exercising snapshot replacement and
// WAL rotation at every interior byte too.
var crashWorkload = []string{
	`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`,
	`INSERT INTO kv VALUES (1, 'one'), (2, 'two')`,
	`CREATE INDEX kv_v ON kv (v)`,
	`INSERT INTO kv VALUES (3, 'three')`,
	``, // checkpoint
	`UPDATE kv SET v = 'TWO' WHERE k = 2`,
	`DELETE FROM kv WHERE k = 1`,
	`CREATE TABLE tags (t TEXT, n INTEGER)`,
	`INSERT INTO tags VALUES ('a', 1), ('b', 2)`,
	``, // checkpoint
	`INSERT INTO kv VALUES (4, 'four')`,
	`DROP TABLE tags`,
	`UPDATE kv SET v = 'FOUR' WHERE k = 4`,
}

// crashBaselines returns baseline databases: baselines[k] is the state
// after the first k non-checkpoint operations succeeded.
func crashBaselines(t *testing.T) []*Database {
	t.Helper()
	var sqls []string
	for _, op := range crashWorkload {
		if op != "" {
			sqls = append(sqls, op)
		}
	}
	baselines := make([]*Database, len(sqls)+1)
	for k := 0; k <= len(sqls); k++ {
		db := New()
		for _, sql := range sqls[:k] {
			db.MustExec(sql)
		}
		baselines[k] = db
	}
	return baselines
}

// runCrashWorkload drives the workload against a DurableDB opened on
// fs, returning how many DML/DDL ops were acknowledged (err == nil).
// Fail-stop guarantees the acked ops are a prefix of the workload.
func runCrashWorkload(fs VFS) (acked int, openErr error) {
	d, err := OpenDurable(fs, DurableOptions{})
	if err != nil {
		return 0, err
	}
	sawErr := false
	for _, op := range crashWorkload {
		if op == "" {
			if err := d.Checkpoint(); err != nil {
				sawErr = true
			}
			continue
		}
		if _, err := d.DB().Exec(op); err != nil {
			sawErr = true
		} else if !sawErr {
			acked++
		}
	}
	// No Close: the process "dies" holding its handles.
	return acked, nil
}

// matchBaseline returns the index of the baseline the recovered
// database equals, or -1.
func matchBaseline(db *Database, baselines []*Database) int {
	for k, base := range baselines {
		if dbStateDiff(base, db) == "" {
			return k
		}
	}
	return -1
}

func TestCrashAtEveryOffset(t *testing.T) {
	baselines := crashBaselines(t)

	// First pass, no faults: measure the total operation budget.
	probe := NewFaultVFS(NewMemVFS(), -1)
	acked, err := runCrashWorkload(probe)
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	if want := len(baselines) - 1; acked != want {
		t.Fatalf("fault-free run acked %d ops, want %d", acked, want)
	}
	total := probe.Written()
	if total == 0 {
		t.Fatal("workload wrote nothing")
	}

	step := int64(1)
	if testing.Short() {
		step = total/97 + 1
	}
	for budget := int64(0); budget <= total; budget += step {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			inner := NewMemVFS()
			fvfs := NewFaultVFS(inner, budget)
			acked, openErr := runCrashWorkload(fvfs)
			if openErr != nil && !errors.Is(openErr, ErrInjected) {
				t.Fatalf("open failed with a non-injected error: %v", openErr)
			}

			// Power loss: exactly the acked ops survive.
			lost := inner.Clone()
			lost.Crash(CrashLoseUnsynced)
			d, err := OpenDurable(lost, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery (lose-unsynced): %v", err)
			}
			if diff := dbStateDiff(baselines[acked], d.DB()); diff != "" {
				t.Fatalf("lose-unsynced: recovered state is not the acked baseline (%d acked): %s", acked, diff)
			}
			checkIndexes(t, d.DB())
			// The recovered store must accept new writes.
			if _, err := d.DB().Exec(`CREATE TABLE post (x INTEGER)`); err != nil {
				t.Fatalf("recovered store rejects writes: %v", err)
			}
			d.Close()

			// Process kill: acked ops survive, plus at most the one
			// in-flight op whose frame reached the cache whole.
			kept := inner.Clone()
			kept.Crash(CrashKeepAll)
			d2, err := OpenDurable(kept, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery (keep-all): %v", err)
			}
			k := matchBaseline(d2.DB(), baselines)
			if k != acked && k != acked+1 {
				t.Fatalf("keep-all: recovered state matches baseline %d, want %d or %d", k, acked, acked+1)
			}
			checkIndexes(t, d2.DB())
			d2.Close()
		})
	}
}

// TestCrashSweepNoSync checks the weaker NoSync contract: acked commits
// may be lost on power loss, but recovery always lands on some op
// prefix — never a torn or corrupt state.
func TestCrashSweepNoSync(t *testing.T) {
	baselines := crashBaselines(t)
	probe := NewFaultVFS(NewMemVFS(), -1)
	runNoSync := func(fs VFS) {
		d, err := OpenDurable(fs, DurableOptions{NoSync: true})
		if err != nil {
			return
		}
		for _, op := range crashWorkload {
			if op == "" {
				d.Checkpoint()
				continue
			}
			d.DB().Exec(op)
		}
	}
	runNoSync(probe)
	total := probe.Written()

	step := total/53 + 1
	for budget := int64(0); budget <= total; budget += step {
		inner := NewMemVFS()
		runNoSync(NewFaultVFS(inner, budget))
		for _, mode := range []CrashMode{CrashLoseUnsynced, CrashKeepAll} {
			fs := inner.Clone()
			fs.Crash(mode)
			d, err := OpenDurable(fs, DurableOptions{})
			if err != nil {
				t.Fatalf("budget %d mode %d: recovery: %v", budget, mode, err)
			}
			if k := matchBaseline(d.DB(), baselines); k < 0 {
				t.Fatalf("budget %d mode %d: recovered state is not any op prefix", budget, mode)
			}
			checkIndexes(t, d.DB())
			d.Close()
		}
	}
}

// TestConcurrentCommitsWithCheckpoint is the -race durability test:
// several committers write disjoint keys while checkpoints run
// concurrently; after a simulated crash every acknowledged write is
// present, every unacknowledged one absent, and the B-tree indexes
// re-derive to match the heap.
func TestConcurrentCommitsWithCheckpoint(t *testing.T) {
	const writers, perWriter = 4, 40

	for _, inject := range []bool{false, true} {
		inject := inject
		name := "clean"
		if inject {
			name = "fault-midstream"
		}
		t.Run(name, func(t *testing.T) {
			inner := NewMemVFS()
			fvfs := NewFaultVFS(inner, -1)
			d, err := OpenDurable(fvfs, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			db := d.DB()
			db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
			db.MustExec(`CREATE INDEX kv_v ON kv (v)`)
			if inject {
				// Let the schema through, then pull the plug somewhere
				// inside the concurrent phase.
				fvfs.mu.Lock()
				fvfs.failAfter = fvfs.written + 2000
				fvfs.mu.Unlock()
			}

			var mu sync.Mutex
			ackedKeys := map[int64]bool{}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						k := int64(w*perWriter + i)
						_, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, NewInt(k), NewText(fmt.Sprintf("val-%d", k)))
						if err == nil {
							mu.Lock()
							ackedKeys[k] = true
							mu.Unlock()
						}
					}
				}()
			}
			// Checkpoint concurrently with the committers.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					d.Checkpoint()
				}
			}()
			wg.Wait()

			if !inject && len(ackedKeys) != writers*perWriter {
				t.Fatalf("clean run acked %d/%d writes", len(ackedKeys), writers*perWriter)
			}
			if inject && d.Failed() && len(ackedKeys) == writers*perWriter {
				t.Fatal("engine failed but every write was acknowledged")
			}

			// Power-loss crash, then recover on the bare inner VFS.
			crashed := inner.Clone()
			crashed.Crash(CrashLoseUnsynced)
			d2, err := OpenDurable(crashed, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			rdb := d2.DB()
			tbl := rdb.readState().table("kv")
			if tbl == nil {
				t.Fatal("kv table missing after recovery")
			}
			got := map[int64]bool{}
			for rid := int64(0); rid < tbl.slotCount(); rid++ {
				if row := tbl.row(rid); row != nil {
					got[row[0].I] = true
				}
			}
			for k := range ackedKeys {
				if !got[k] {
					t.Errorf("acknowledged key %d lost", k)
				}
			}
			for k := range got {
				if !ackedKeys[k] {
					t.Errorf("unacknowledged key %d resurrected", k)
				}
			}
			checkIndexes(t, rdb)
			// The secondary index answers queries consistently with the heap.
			rows, err := rdb.Query(`SELECT k FROM kv WHERE v = ?`, NewText("val-0"))
			if err != nil {
				t.Fatal(err)
			}
			if ackedKeys[0] != (rows.Len() == 1) {
				t.Fatalf("index lookup for key 0: acked=%v rows=%d", ackedKeys[0], rows.Len())
			}
			d2.Close()
		})
	}
}
