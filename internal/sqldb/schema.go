package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// TableDef is the schema of a table.
type TableDef struct {
	Name    string
	Columns []Column
	// PrimaryKey holds column ordinals forming the primary key, or nil.
	PrimaryKey []int
}

// ColumnIndex returns the ordinal of the named column (case-insensitive)
// or -1.
func (d *TableDef) ColumnIndex(name string) int {
	for i := range d.Columns {
		if strings.EqualFold(d.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// IndexDef describes a secondary index.
type IndexDef struct {
	Name    string
	Table   string
	Columns []int // column ordinals, in key order
	Unique  bool
}

// errorf builds engine errors with a uniform prefix so callers can
// distinguish them from I/O errors.
func errorf(format string, args ...any) error {
	return fmt.Errorf("sqldb: "+format, args...)
}
