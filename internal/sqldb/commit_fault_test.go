package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
)

// Commit-failure regressions: when logCommit cannot persist a mutation,
// the in-memory mutation must be rolled back before the write lock is
// released, so the live engine's memory never diverges from what crash
// recovery will reconstruct. Each write path gets a stub-logger unit
// test asserting "error reported, state untouched", and a FaultVFS
// sweep asserts memory == recovered state at every injected failure
// point of a workload that includes BulkInsert.

var errStubCommit = errors.New("stub commit failure")

// failingLogger rejects every commit after allowing the first n.
func failingLogger(n int) func(*walRecord) error {
	return func(*walRecord) error {
		if n > 0 {
			n--
			return nil
		}
		return errStubCommit
	}
}

// commitFaultFixture builds a populated database (no logger attached
// yet, so setup commits unconditionally).
func commitFaultFixture(t *testing.T) *Database {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`CREATE INDEX kv_v ON kv (v)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	db.MustExec(`CREATE TABLE other (a INTEGER)`)
	db.MustExec(`INSERT INTO other VALUES (7)`)
	return db
}

// TestCommitFaultRollsBackStatement drives every mutation path into a
// failing commit logger and asserts the statement reports the failure
// and leaves no trace in memory — heap, live counts, indexes, catalog.
func TestCommitFaultRollsBackStatement(t *testing.T) {
	cases := []struct {
		name string
		run  func(db *Database) (int, error)
	}{
		{"insert-values", func(db *Database) (int, error) {
			return db.Exec(`INSERT INTO kv VALUES (10, 'ten'), (11, 'eleven')`)
		}},
		{"insert-select", func(db *Database) (int, error) {
			return db.Exec(`INSERT INTO kv SELECT k + 100, v FROM kv`)
		}},
		{"bulk-insert", func(db *Database) (int, error) {
			return db.BulkInsert("kv", [][]Value{
				{NewInt(20), NewText("twenty")},
				{NewInt(21), NewText("twentyone")},
			})
		}},
		{"delete", func(db *Database) (int, error) {
			return db.Exec(`DELETE FROM kv WHERE k >= 2`)
		}},
		{"update", func(db *Database) (int, error) {
			return db.Exec(`UPDATE kv SET v = 'X' WHERE k <= 2`)
		}},
		{"create-table", func(db *Database) (int, error) {
			return db.Exec(`CREATE TABLE fresh (x INTEGER)`)
		}},
		{"drop-table", func(db *Database) (int, error) {
			return db.Exec(`DROP TABLE other`)
		}},
		{"create-index", func(db *Database) (int, error) {
			return db.Exec(`CREATE INDEX kv_v2 ON kv (v)`)
		}},
		{"drop-index", func(db *Database) (int, error) {
			return db.Exec(`DROP INDEX kv_v`)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			victim := commitFaultFixture(t)
			control := commitFaultFixture(t)
			victim.setCommitLogger(failingLogger(0))

			n, err := tc.run(victim)
			if !errors.Is(err, errStubCommit) {
				t.Fatalf("got (%d, %v), want the stub commit error", n, err)
			}
			if n != 0 {
				t.Fatalf("failed statement reported %d affected rows, want 0", n)
			}
			if diff := dbStateDiff(control, victim); diff != "" {
				t.Fatalf("state changed despite commit failure: %s", diff)
			}
			checkIndexes(t, victim)

			// The rollback must leave the engine consistent enough that the
			// same statement succeeds once commits go through again.
			victim.setCommitLogger(nil)
			if _, err := tc.run(victim); err != nil {
				t.Fatalf("statement fails after logger recovery: %v", err)
			}
			checkIndexes(t, victim)
		})
	}
}

// TestCommitFaultPartialBatchRollback fails the logger mid-sequence so
// earlier statements commit and a later multi-row statement does not:
// only the logged prefix may remain.
func TestCommitFaultPartialBatchRollback(t *testing.T) {
	victim := commitFaultFixture(t)
	control := commitFaultFixture(t)
	victim.setCommitLogger(failingLogger(1))

	if _, err := victim.Exec(`INSERT INTO kv VALUES (30, 'thirty')`); err != nil {
		t.Fatalf("first commit should pass: %v", err)
	}
	control.MustExec(`INSERT INTO kv VALUES (30, 'thirty')`)

	if n, err := victim.Exec(`UPDATE kv SET v = 'gone' WHERE k > 0`); !errors.Is(err, errStubCommit) || n != 0 {
		t.Fatalf("second commit: got (%d, %v), want stub failure", n, err)
	}
	if diff := dbStateDiff(control, victim); diff != "" {
		t.Fatalf("memory is not the logged prefix: %s", diff)
	}
	checkIndexes(t, victim)
}

// ---------------------------------------------------------------------------
// End-to-end sweep: memory equals recovery at every failure point.

// commitFaultOps is the sweep workload; every op is expressed as a
// function so the API write path (BulkInsert) is covered alongside SQL.
var commitFaultOps = []func(db *Database) error{
	func(db *Database) error {
		_, err := db.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)
		return err
	},
	func(db *Database) error {
		_, err := db.BulkInsert("kv", [][]Value{
			{NewInt(3), NewText("three")},
			{NewInt(4), NewText("four")},
		})
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`CREATE INDEX kv_v ON kv (v)`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`UPDATE kv SET v = 'TWO' WHERE k = 2`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`INSERT INTO kv SELECT k + 10, v FROM kv`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`DELETE FROM kv WHERE k = 1 OR k = 11`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`CREATE TABLE t2 (a INTEGER)`)
		return err
	},
	func(db *Database) error {
		_, err := db.BulkInsert("t2", [][]Value{{NewInt(1)}, {NewInt(2)}, {NewInt(3)}})
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`DROP TABLE t2`)
		return err
	},
	func(db *Database) error {
		_, err := db.Exec(`DROP INDEX kv_v`)
		return err
	},
}

func commitFaultBaselines(t *testing.T) []*Database {
	t.Helper()
	baselines := make([]*Database, len(commitFaultOps)+1)
	for k := 0; k <= len(commitFaultOps); k++ {
		db := New()
		for _, op := range commitFaultOps[:k] {
			if err := op(db); err != nil {
				t.Fatalf("baseline op %d: %v", k, err)
			}
		}
		baselines[k] = db
	}
	return baselines
}

// TestCommitFaultMemoryMatchesRecovery sweeps the WAL byte budget over
// the workload. At every failure point the live (failed, still-open)
// engine's memory must equal the acked baseline — i.e. exactly what
// power-loss recovery reconstructs. This is the regression for the
// write-path/WAL divergence bug: before the rollback fix, a failed
// commit left its mutation in memory while the WAL never recorded it.
func TestCommitFaultMemoryMatchesRecovery(t *testing.T) {
	baselines := commitFaultBaselines(t)

	run := func(fs VFS) (acked int, d *DurableDB, err error) {
		d, err = OpenDurable(fs, DurableOptions{})
		if err != nil {
			return 0, nil, err
		}
		sawErr := false
		for _, op := range commitFaultOps {
			if opErr := op(d.DB()); opErr != nil {
				sawErr = true
			} else if !sawErr {
				acked++
			}
		}
		return acked, d, nil
	}

	probe := NewFaultVFS(NewMemVFS(), -1)
	acked, _, err := run(probe)
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	if acked != len(commitFaultOps) {
		t.Fatalf("fault-free run acked %d/%d ops", acked, len(commitFaultOps))
	}
	total := probe.Written()

	step := int64(1)
	if testing.Short() {
		step = total/97 + 1
	}
	for budget := int64(0); budget <= total; budget += step {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			inner := NewMemVFS()
			acked, d, openErr := run(NewFaultVFS(inner, budget))
			if openErr != nil {
				if !errors.Is(openErr, ErrInjected) {
					t.Fatalf("open failed with a non-injected error: %v", openErr)
				}
				return
			}

			// The live engine's memory is exactly the acked prefix.
			if diff := dbStateDiff(baselines[acked], d.DB()); diff != "" {
				t.Fatalf("live memory diverged from the acked baseline (%d acked): %s", acked, diff)
			}
			checkIndexes(t, d.DB())

			// Power-loss recovery lands on the same state as memory.
			lost := inner.Clone()
			lost.Crash(CrashLoseUnsynced)
			d2, err := OpenDurable(lost, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if diff := dbStateDiff(d.DB(), d2.DB()); diff != "" {
				t.Fatalf("memory != recovered state (%d acked): %s", acked, diff)
			}
			checkIndexes(t, d2.DB())
			d2.Close()

			// Process kill keeps at most the single in-flight op.
			kept := inner.Clone()
			kept.Crash(CrashKeepAll)
			d3, err := OpenDurable(kept, DurableOptions{})
			if err != nil {
				t.Fatalf("recovery (keep-all): %v", err)
			}
			okAcked := dbStateDiff(baselines[acked], d3.DB()) == ""
			okNext := acked+1 < len(baselines) && dbStateDiff(baselines[acked+1], d3.DB()) == ""
			if !okAcked && !okNext {
				t.Fatalf("keep-all: recovered state is neither baseline %d nor %d", acked, acked+1)
			}
			checkIndexes(t, d3.DB())
			d3.Close()
		})
	}
}

// ---------------------------------------------------------------------------
// Degraded read-only mode: storage faults stop the WAL, not the engine.

// TestDegradedENOSPCSweep injects ENOSPC at every WAL byte offset of
// the workload. Wherever the disk fills, the engine must enter sticky
// degraded read-only mode (not fail-stop): reads keep serving the
// acked prefix, writes fail with ErrReadOnlyDegraded, and after the
// fault clears Recover() restores read-write service on exactly the
// acked state.
func TestDegradedENOSPCSweep(t *testing.T) {
	baselines := commitFaultBaselines(t)

	run := func(fs VFS) (acked int, d *DurableDB, err error) {
		d, err = OpenDurable(fs, DurableOptions{})
		if err != nil {
			return 0, nil, err
		}
		sawErr := false
		for _, op := range commitFaultOps {
			if opErr := op(d.DB()); opErr != nil {
				sawErr = true
			} else if !sawErr {
				acked++
			}
		}
		return acked, d, nil
	}

	probe := NewFaultVFS(NewMemVFS(), -1)
	if _, _, err := run(probe); err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	total := probe.Written()

	step := int64(1)
	if testing.Short() {
		step = total/97 + 1
	}
	for budget := int64(0); budget <= total; budget += step {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			fvfs := NewFaultVFS(NewMemVFS(), budget)
			fvfs.SetFailError(syscall.ENOSPC)
			acked, d, openErr := run(fvfs)
			if openErr != nil {
				// Faults during open/bootstrap are still fail-stop — there
				// is no published state to degrade onto yet.
				if !errors.Is(openErr, syscall.ENOSPC) {
					t.Fatalf("open failed with a non-ENOSPC error: %v", openErr)
				}
				return
			}
			defer d.Close()

			if acked == len(commitFaultOps) {
				// Budget outlived the workload; nothing degraded.
				if d.Failed() || d.Health().State != "ok" {
					t.Fatalf("fault-free run reports %+v", d.Health())
				}
				return
			}

			// The disk filled mid-workload: degraded, not fail-stop.
			if !d.Failed() {
				t.Fatalf("fault at %d acked ops did not degrade the engine", acked)
			}
			h := d.Health()
			if h.State != "degraded" || h.Degradations != 1 || h.Since.IsZero() {
				t.Fatalf("health after fault: %+v", h)
			}
			if !strings.Contains(h.Cause, "no space") {
				t.Fatalf("degrade cause does not surface ENOSPC: %q", h.Cause)
			}

			// Reads serve the acked prefix.
			if diff := dbStateDiff(baselines[acked], d.DB()); diff != "" {
				t.Fatalf("degraded reads diverge from the acked prefix (%d acked): %s", acked, diff)
			}
			checkIndexes(t, d.DB())

			// Writes are refused with the typed sentinel (which still
			// matches the historical WAL sentinel).
			_, werr := d.DB().Exec(`CREATE TABLE denied (x INTEGER)`)
			if !errors.Is(werr, ErrReadOnlyDegraded) || !errors.Is(werr, ErrWALFailed) {
				t.Fatalf("degraded write: %v, want ErrReadOnlyDegraded", werr)
			}

			// Space returns: Recover must re-enter read-write mode on the
			// acked state.
			fvfs.Heal()
			if err := d.Recover(); err != nil {
				t.Fatalf("recover after heal: %v", err)
			}
			if d.Failed() {
				t.Fatal("still degraded after successful Recover")
			}
			h = d.Health()
			if h.State != "ok" || h.Degradations != 1 || h.Recoveries != 1 {
				t.Fatalf("health after recover: %+v", h)
			}
			if diff := dbStateDiff(baselines[acked], d.DB()); diff != "" {
				t.Fatalf("recover changed visible state: %s", diff)
			}

			// Read-write service is genuinely back, and the whole history
			// (acked prefix + post-recovery writes) survives a reopen.
			if _, err := d.DB().Exec(`CREATE TABLE recovered_probe (x INTEGER)`); err != nil {
				t.Fatalf("write after recover: %v", err)
			}
			if _, err := d.DB().Exec(`INSERT INTO recovered_probe VALUES (42)`); err != nil {
				t.Fatalf("insert after recover: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			d2, err := OpenDurable(fvfs, DurableOptions{})
			if err != nil {
				t.Fatalf("reopen after recovery: %v", err)
			}
			defer d2.Close()
			if diff := dbStateDiff(d.DB(), d2.DB()); diff != "" {
				t.Fatalf("reopened state != live state: %s", diff)
			}
			checkIndexes(t, d2.DB())
		})
	}
}
