package sqldb

import "time"

// Vectorized execution paths for the hot operators: sequential and
// index scans, filter, projection, column cut, limit and the hash-join
// probe. Everything else (sort, distinct, nested-loop and index joins,
// union, gather) keeps its row iterator and participates through the
// batch/row adapters in batch.go. The row-at-a-time engine is the
// correctness oracle: a vectorized plan must produce byte-identical
// rows in the same order, so every operator here visits rows in exactly
// the order its row counterpart does.
//
// Instrumentation amortizes per batch: openVec mirrors openNode and
// wraps the iterator in a statVecIter that counts opens, batches,
// selected rows and examined rows (the selectivity denominator), and
// polls for cancellation once per batch instead of every 256 rows.

// openVec opens a plan node as a batch source, wrapping it with
// counters when the execution is instrumented. Operators without a
// native batch path are opened raw (their internal children still go
// through openNode) and adapted; the adapter, not a statIter, carries
// their counts so nothing is counted twice.
func openVec(ctx *evalCtx, n planNode) (vecIter, error) {
	open := func() (vecIter, error) {
		if vn, ok := n.(vecNode); ok {
			return vn.openVec(ctx)
		}
		it, err := n.open(ctx)
		if err != nil {
			return nil, err
		}
		return &rowSourceVec{in: it}, nil
	}
	st := ctx.stats
	if st == nil {
		return open()
	}
	id, ok := st.meta.index[n]
	if !ok {
		return open()
	}
	op := &st.ops[id]
	op.Opens++
	var t0 time.Time
	if st.timed {
		t0 = time.Now()
	}
	vi, err := open()
	if st.timed {
		op.Time += time.Since(t0)
	}
	if err != nil {
		return nil, err
	}
	return &statVecIter{in: vi, ctx: ctx, op: op, timed: st.timed}, nil
}

// statVecIter is the batch-level counterpart of statIter: it counts
// batches and rows flowing out of one operator and doubles as the
// cancellation chokepoint, polling the execution context once per
// nextBatch call (batch granularity).
type statVecIter struct {
	in    vecIter
	ctx   *evalCtx
	op    *OpStats
	timed bool
}

func (it *statVecIter) nextBatch() (*batch, error) {
	if err := it.ctx.canceled(); err != nil {
		return nil, err
	}
	var b *batch
	var err error
	if it.timed {
		t0 := time.Now()
		b, err = it.in.nextBatch()
		it.op.Time += time.Since(t0)
	} else {
		b, err = it.in.nextBatch()
	}
	it.op.Nexts++
	if b != nil {
		it.op.Batches++
		it.op.Rows += int64(b.n())
		it.op.InRows += b.in
	}
	return b, err
}

func (it *statVecIter) close() { it.in.close() }

// materializeVec drains a vectorized pipeline into a row slice. The
// batches are collected first and flattened into an exactly-sized
// result in a second pass — batch boundaries make the total row count
// known up front, so the result array is allocated once instead of
// doubling through append growth (the batches hold only row headers;
// the rows themselves are referenced either way).
func materializeVec(ctx *evalCtx, n planNode) ([][]Value, error) {
	vi, err := openVec(ctx, n)
	if err != nil {
		return nil, err
	}
	defer vi.close()
	var batches []*batch
	total := 0
	for {
		if err := ctx.canceled(); err != nil {
			return nil, err
		}
		b, err := vi.nextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if b.n() == 0 {
			continue
		}
		// Every collected batch is retained until the flatten pass, so
		// this is the batch path's memory-charging chokepoint: the
		// selected rows (project flats, join-arena chunks, heap row
		// references) all survive through the result.
		if ctx.mem != nil {
			var nb int64
			for k, cnt := 0, b.n(); k < cnt; k++ {
				nb += rowSliceBytes(b.row(k))
			}
			if err := ctx.mem.charge(nb); err != nil {
				return nil, err
			}
		}
		batches = append(batches, b)
		total += b.n()
	}
	if total == 0 {
		return nil, nil
	}
	out := make([][]Value, 0, total)
	for _, b := range batches {
		if b.sel == nil {
			out = append(out, b.rows...)
		} else {
			for _, i := range b.sel {
				out = append(out, b.rows[i])
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sequential scan

func (n *seqScanNode) openVec(ctx *evalCtx) (vecIter, error) {
	tbl := ctx.resolveTable(n.tbl)
	it := &seqScanVec{node: n, ctx: ctx, tbl: tbl, end: tbl.slotCount()}
	// Same morsel clipping as the row path: inside a gather worker the
	// driving scan reads only the claimed rowid range.
	if m := ctx.morsel; m != nil && m.node == n {
		it.pos, it.end = int64(m.lo), int64(m.hi)
	}
	return it, nil
}

type seqScanVec struct {
	node *seqScanNode
	ctx  *evalCtx
	tbl  *table
	pos  int64
	end  int64
	ref  pageRef
}

func (it *seqScanVec) nextBatch() (*batch, error) {
	if it.pos >= it.end {
		return nil, nil
	}
	b := &batch{rows: make([][]Value, 0, batchSize)}
	for it.pos < it.end && len(b.rows) < batchSize {
		row := it.tbl.rowRef(it.pos, &it.ref)
		it.pos++
		if row == nil { // tombstone
			continue
		}
		b.in++
		if it.node.filter != nil {
			keep, err := evalPred(it.ctx, it.node.kernel, it.node.filter, row)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		b.rows = append(b.rows, row)
	}
	return b, nil
}

func (it *seqScanVec) close() { it.ref.release() }

// ---------------------------------------------------------------------------
// Index scan

func (n *indexScanNode) openVec(ctx *evalCtx) (vecIter, error) {
	tbl := ctx.resolveTable(n.tbl)
	cur, stop, empty, err := n.startCursor(ctx, tbl)
	if err != nil {
		return nil, err
	}
	if empty {
		return &rowSourceVec{in: &sliceIter{}}, nil
	}
	return &indexScanVec{node: n, ctx: ctx, tbl: tbl, cur: cur, stop: stop}, nil
}

type indexScanVec struct {
	node *indexScanNode
	ctx  *evalCtx
	tbl  *table
	cur  btreeCursor
	stop func(key []Value) bool
	done bool
	ref  pageRef
}

func (it *indexScanVec) nextBatch() (*batch, error) {
	if it.done || !it.cur.valid() {
		return nil, nil
	}
	b := &batch{rows: make([][]Value, 0, batchSize)}
	for it.cur.valid() && len(b.rows) < batchSize {
		e := it.cur.entry()
		if it.stop != nil && it.stop(e.key) {
			it.done = true
			break
		}
		it.cur.advance()
		row := it.tbl.rowRef(e.rid, &it.ref)
		if row == nil {
			continue
		}
		b.in++
		if it.node.filter != nil {
			keep, err := evalPred(it.ctx, it.node.kernel, it.node.filter, row)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		b.rows = append(b.rows, row)
	}
	return b, nil
}

func (it *indexScanVec) close() { it.ref.release() }

// ---------------------------------------------------------------------------
// Filter

func (n *filterNode) openVec(ctx *evalCtx) (vecIter, error) {
	in, err := openVec(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &filterVec{in: in, pred: n.pred, kernel: n.kernel, ctx: ctx}, nil
}

type filterVec struct {
	in     vecIter
	pred   compiledExpr
	kernel rowPred
	ctx    *evalCtx
}

// nextBatch narrows the child batch's selection vector in place. A
// batch where every row fails comes back empty (n() == 0), never nil —
// nil is reserved for end of stream.
func (it *filterVec) nextBatch() (*batch, error) {
	b, err := it.in.nextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	in := b.n()
	sel := make([]int, 0, in)
	for k := 0; k < in; k++ {
		idx := k
		if b.sel != nil {
			idx = b.sel[k]
		}
		keep, err := evalPred(it.ctx, it.kernel, it.pred, b.rows[idx])
		if err != nil {
			return nil, err
		}
		if keep {
			sel = append(sel, idx)
		}
	}
	b.sel = sel
	b.in = int64(in)
	return b, nil
}

func (it *filterVec) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Projection

func (n *projectNode) openVec(ctx *evalCtx) (vecIter, error) {
	in, err := openVec(ctx, n.in)
	if err != nil {
		return nil, err
	}
	pv := &projectVec{in: in, node: n, ctx: ctx}
	if ci := n.colIdx; ci != nil {
		pv.prefix = true
		for j, c := range ci {
			if c != j {
				pv.prefix = false
				break
			}
		}
	}
	return pv, nil
}

type projectVec struct {
	in   vecIter
	node *projectNode
	ctx  *evalCtx
	// prefix marks a projection that keeps the leading input columns in
	// order — the output row is a reslice of the input row, so the
	// batch passes through with zero copying (the same trick cutVec
	// uses for hidden columns).
	prefix bool
}

func (it *projectVec) nextBatch() (*batch, error) {
	b, err := it.in.nextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	in := b.n()
	if it.prefix {
		// Reslice every row header in place (selected or not — the
		// extra truncations are harmless) and pass the batch through.
		w := len(it.node.colIdx)
		for i, r := range b.rows {
			b.rows[i] = r[:w]
		}
		b.in = int64(in)
		return b, nil
	}
	out := &batch{rows: make([][]Value, in), in: int64(in)}
	if in == 0 {
		return out, nil
	}
	if ci := it.node.colIdx; ci != nil {
		// Fast path: every projected expression is a plain column
		// reference, so the output row is a gather of input columns.
		// One flat backing array serves the whole batch — the dominant
		// cost of the row path here is the per-row make.
		w := len(ci)
		flat := make([]Value, in*w)
		for k := 0; k < in; k++ {
			r := b.row(k)
			or := flat[k*w : (k+1)*w : (k+1)*w]
			for j, c := range ci {
				or[j] = r[c]
			}
			out.rows[k] = or
		}
		return out, nil
	}
	w := len(it.node.exprs)
	flat := make([]Value, in*w)
	for k := 0; k < in; k++ {
		r := b.row(k)
		or := flat[k*w : (k+1)*w : (k+1)*w]
		for j, e := range it.node.exprs {
			or[j], err = e(it.ctx, r)
			if err != nil {
				return nil, err
			}
		}
		out.rows[k] = or
	}
	return out, nil
}

func (it *projectVec) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Column cut

func (n *cutNode) openVec(ctx *evalCtx) (vecIter, error) {
	in, err := openVec(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &cutVec{in: in, width: n.width}, nil
}

type cutVec struct {
	in    vecIter
	width int
}

func (it *cutVec) nextBatch() (*batch, error) {
	b, err := it.in.nextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	// Reslicing the row headers drops the hidden columns without
	// copying; unselected rows are truncated too, harmlessly.
	for i, r := range b.rows {
		b.rows[i] = r[:it.width]
	}
	b.in = int64(b.n())
	return b, nil
}

func (it *cutVec) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Limit / offset

func (n *limitNode) openVec(ctx *evalCtx) (vecIter, error) {
	in, err := openVec(ctx, n.in)
	if err != nil {
		return nil, err
	}
	it := &limitVec{in: in, limit: -1}
	if n.limit != nil {
		v, err := n.limit(ctx, nil)
		if err != nil {
			in.close()
			return nil, err
		}
		it.limit = v.Int()
	}
	if n.offset != nil {
		v, err := n.offset(ctx, nil)
		if err != nil {
			in.close()
			return nil, err
		}
		it.offset = v.Int()
	}
	return it, nil
}

type limitVec struct {
	in            vecIter
	limit, offset int64
	emitted       int64
}

// nextBatch trims the child batch's selection: the offset consumes rows
// from the front (possibly straddling batch boundaries) and the limit
// caps the total emitted. Unlike the row path the child is pulled in
// whole batches, so child row counters round up to batch granularity —
// the differential battery exempts Limit plans from per-operator row
// equality for exactly this reason.
func (it *limitVec) nextBatch() (*batch, error) {
	for {
		if it.limit >= 0 && it.emitted >= it.limit {
			return nil, nil
		}
		b, err := it.in.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := int64(b.n())
		examined := n
		if it.offset > 0 {
			if n <= it.offset {
				it.offset -= n
				continue
			}
			b.trimFront(int(it.offset))
			n -= it.offset
			it.offset = 0
		}
		if it.limit >= 0 {
			if rem := it.limit - it.emitted; n > rem {
				b.trimTo(int(rem))
				n = rem
			}
		}
		it.emitted += n
		b.in = examined
		return b, nil
	}
}

func (it *limitVec) close() { it.in.close() }

// trimFront drops the first k selected rows from the batch.
func (b *batch) trimFront(k int) {
	if b.sel != nil {
		b.sel = b.sel[k:]
		return
	}
	b.rows = b.rows[k:]
}

// trimTo keeps only the first k selected rows of the batch.
func (b *batch) trimTo(k int) {
	if b.sel != nil {
		b.sel = b.sel[:k]
		return
	}
	b.rows = b.rows[:k]
}

// ---------------------------------------------------------------------------
// Hash-join probe

func (n *hashJoinNode) openVec(ctx *evalCtx) (vecIter, error) {
	ht, built, err := n.build(ctx)
	if err != nil {
		return nil, err
	}
	if s := ctx.opStat(n); s != nil {
		s.BuildRows += built
	}
	left, err := openVec(ctx, n.left)
	if err != nil {
		return nil, err
	}
	return &hashJoinVec{node: n, ctx: ctx, left: left, ht: ht, rightWidth: len(n.right.sch())}, nil
}

// rowArena hands out row slices carved from chunked backing arrays, so
// operators that materialize output rows (join concatenation) pay one
// allocation per ~256 rows instead of one per row. Carved slices have
// their capacity clamped, so appends by a consumer cannot clobber a
// neighbour.
type rowArena struct {
	buf []Value
	off int
}

func (a *rowArena) alloc(n int) []Value {
	if a.off+n > len(a.buf) {
		sz := n * 256
		if sz < 1024 {
			sz = 1024
		}
		a.buf = make([]Value, sz)
		a.off = 0
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// undo returns the most recent allocation to the arena (used when a
// speculatively built row is rejected by a residual predicate).
func (a *rowArena) undo(s []Value) {
	if len(s) > 0 && a.off >= len(s) && &a.buf[a.off-len(s)] == &s[0] {
		a.off -= len(s)
	}
}

type hashJoinVec struct {
	node       *hashJoinNode
	ctx        *evalCtx
	left       vecIter
	ht         map[string][][]Value
	rightWidth int
	arena      rowArena

	// Probe state carried across output batches: the current left
	// batch, position within it, and the active bucket.
	b       *batch
	k       int
	lrow    []Value
	bucket  [][]Value
	bpos    int
	matched bool
	active  bool
	done    bool
}

// nextBatch probes left rows in input order, emitting joined rows in
// exactly the order the row-at-a-time hashJoinIter produces: for each
// left row all bucket matches in build order, then (for a left outer
// join) a NULL-padded row if none matched. A left row's matches can
// straddle output batches.
func (it *hashJoinVec) nextBatch() (*batch, error) {
	if it.done {
		return nil, nil
	}
	out := &batch{rows: make([][]Value, 0, batchSize)}
	for len(out.rows) < batchSize {
		if !it.active {
			// Advance to the next left row, pulling batches as needed.
			for it.b == nil || it.k >= it.b.n() {
				b, err := it.left.nextBatch()
				if err != nil {
					return nil, err
				}
				if b == nil {
					it.done = true
					if len(out.rows) == 0 {
						return nil, nil
					}
					return out, nil
				}
				it.b, it.k = b, 0
			}
			it.lrow = it.b.row(it.k)
			it.k++
			out.in++
			it.matched = false
			keyBuf := make([]Value, len(it.node.leftKeys))
			var err error
			for i, ke := range it.node.leftKeys {
				keyBuf[i], err = ke(it.ctx, it.lrow)
				if err != nil {
					return nil, err
				}
			}
			if key, ok := hashKey(keyBuf); ok {
				it.bucket = it.ht[key]
			} else {
				it.bucket = nil
			}
			it.bpos = 0
			it.active = true
		}
		for it.bpos < len(it.bucket) && len(out.rows) < batchSize {
			r := it.bucket[it.bpos]
			it.bpos++
			joined := it.arena.alloc(len(it.lrow) + len(r))
			copy(joined, it.lrow)
			copy(joined[len(it.lrow):], r)
			if it.node.extraCond != nil {
				v, err := it.node.extraCond(it.ctx, joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					it.arena.undo(joined)
					continue
				}
			}
			it.matched = true
			out.rows = append(out.rows, joined)
		}
		if it.bpos >= len(it.bucket) {
			if it.node.leftOuter && !it.matched {
				out.rows = append(out.rows, padRight(it.lrow, it.rightWidth))
			}
			it.active = false
		}
	}
	return out, nil
}

func (it *hashJoinVec) close() { it.left.close() }
