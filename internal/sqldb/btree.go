package sqldb

// B+tree index over composite Value keys. Entries are (key, rowid) pairs;
// rowid acts as a tiebreaker so duplicate keys are supported. Leaves are
// chained for range scans, which is what the interval-encoding (pre/post)
// and Dewey-prefix query translations depend on.

const btreeOrder = 64 // max entries per node

type btreeEntry struct {
	key []Value
	rid int64
}

type btreeNode struct {
	leaf     bool
	entries  []btreeEntry // in leaf: data; in inner: separator keys
	children []*btreeNode // inner only; len = len(entries)+1
	next     *btreeNode   // leaf chain
}

// btree is the index structure. Not safe for concurrent mutation; the
// Database serializes writers.
//
// The tree maintains approximate distinct-prefix counts per key column
// (distinct[L-1] = number of distinct L-column key prefixes). They are
// maintained by comparing each inserted/deleted entry with its in-leaf
// neighbors, which miscounts slightly at leaf boundaries — fine for the
// planner's cardinality estimates, their only consumer.
type btree struct {
	root     *btreeNode
	size     int
	width    int
	distinct []int
}

func newBtree() *btree {
	return &btree{root: &btreeNode{leaf: true}}
}

// DistinctPrefix estimates the number of distinct L-column key prefixes.
func (t *btree) DistinctPrefix(l int) int {
	if l < 1 || l > len(t.distinct) {
		return t.size
	}
	d := t.distinct[l-1]
	if d < 1 {
		d = 1
	}
	return d
}

// compareKeys orders composite keys elementwise; a shorter key that is a
// prefix of a longer one compares equal on the shared prefix, then the
// shorter sorts first. rid breaks full-key ties.
func compareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareEntry(a btreeEntry, key []Value, rid int64) int {
	if c := compareKeys(a.key, key); c != 0 {
		return c
	}
	switch {
	case a.rid < rid:
		return -1
	case a.rid > rid:
		return 1
	default:
		return 0
	}
}

// lowerBound returns the first index i in n.entries with
// compareEntry(entries[i], key, rid) >= 0.
func (n *btreeNode) lowerBound(key []Value, rid int64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(n.entries[mid], key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the inner-node child to descend to for an exact
// (key, rid). Separators are copies of their right subtree's first
// entry, so an entry equal to a separator lives in the RIGHT child:
// descend left of the first separator strictly greater than the key.
func (n *btreeNode) childIndex(key []Value, rid int64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(n.entries[mid], key, rid) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, rid). Duplicate (key, rid) pairs are ignored.
func (t *btree) Insert(key []Value, rid int64) {
	newRoot := t.insertRec(t.root, key, rid)
	if newRoot != nil {
		t.root = newRoot
	}
}

// insertRec inserts into the subtree at n and returns a new root if the
// node split and n was the root, else nil. Splits propagate by having
// the caller patch its child/entry slices via the returned promotion.
func (t *btree) insertRec(n *btreeNode, key []Value, rid int64) *btreeNode {
	promoted, right := t.insertInto(n, key, rid)
	if right == nil {
		return nil
	}
	root := &btreeNode{
		leaf:     false,
		entries:  []btreeEntry{promoted},
		children: []*btreeNode{n, right},
	}
	return root
}

// insertInto performs the recursive insert. On split it returns the
// promoted separator and the new right sibling.
func (t *btree) insertInto(n *btreeNode, key []Value, rid int64) (btreeEntry, *btreeNode) {
	if n.leaf {
		i := n.lowerBound(key, rid)
		if i < len(n.entries) && compareEntry(n.entries[i], key, rid) == 0 {
			return btreeEntry{}, nil // duplicate
		}
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btreeEntry{key: key, rid: rid}
		t.size++
		t.countInsert(n, i, key)
		if len(n.entries) <= btreeOrder {
			return btreeEntry{}, nil
		}
		return n.splitLeaf()
	}
	i := n.childIndex(key, rid)
	promoted, right := t.insertInto(n.children[i], key, rid)
	if right == nil {
		return btreeEntry{}, nil
	}
	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.entries) <= btreeOrder {
		return btreeEntry{}, nil
	}
	return n.splitInner()
}

func (n *btreeNode) splitLeaf() (btreeEntry, *btreeNode) {
	mid := len(n.entries) / 2
	right := &btreeNode{leaf: true}
	right.entries = append(right.entries, n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	right.next = n.next
	n.next = right
	// Leaf split promotes a copy of the right node's first entry.
	return right.entries[0], right
}

func (n *btreeNode) splitInner() (btreeEntry, *btreeNode) {
	mid := len(n.entries) / 2
	promoted := n.entries[mid]
	right := &btreeNode{leaf: false}
	right.entries = append(right.entries, n.entries[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.entries = n.entries[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, right
}

// Delete removes (key, rid). Underfull nodes are tolerated (no rebalance);
// the tree stays correct and scans skip empty leaves. Returns whether the
// entry existed.
func (t *btree) Delete(key []Value, rid int64) bool {
	n := t.root
	for !n.leaf {
		i := n.childIndex(key, rid)
		n = n.children[i]
	}
	i := n.lowerBound(key, rid)
	if i >= len(n.entries) || compareEntry(n.entries[i], key, rid) != 0 {
		return false
	}
	t.countDelete(n, i, key)
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.size--
	return true
}

// countInsert updates distinct-prefix counts after placing key at
// position i of leaf n.
func (t *btree) countInsert(n *btreeNode, i int, key []Value) {
	if t.width == 0 {
		t.width = len(key)
		t.distinct = make([]int, t.width)
	}
	for l := 1; l <= t.width && l <= len(key); l++ {
		prefix := key[:l]
		predSame := i > 0 && prefixCompare(n.entries[i-1].key, prefix) == 0
		succSame := i+1 < len(n.entries) && prefixCompare(n.entries[i+1].key, prefix) == 0
		if !predSame && !succSame {
			t.distinct[l-1]++
		}
	}
}

// countDelete updates distinct-prefix counts before removing position i
// of leaf n.
func (t *btree) countDelete(n *btreeNode, i int, key []Value) {
	for l := 1; l <= t.width && l <= len(key); l++ {
		prefix := key[:l]
		predSame := i > 0 && prefixCompare(n.entries[i-1].key, prefix) == 0
		succSame := i+1 < len(n.entries) && prefixCompare(n.entries[i+1].key, prefix) == 0
		if !predSame && !succSame && t.distinct[l-1] > 0 {
			t.distinct[l-1]--
		}
	}
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// btreeCursor walks leaf entries in key order.
type btreeCursor struct {
	node *btreeNode
	pos  int
}

// seek positions the cursor at the first entry with key >= bound,
// comparing only len(bound) key columns (prefix semantics). A nil bound
// seeks to the first entry.
func (t *btree) seek(bound []Value) btreeCursor {
	n := t.root
	if bound == nil {
		for !n.leaf {
			n = n.children[0]
		}
		return btreeCursor{node: n, pos: 0}
	}
	for !n.leaf {
		i := prefixLowerBound(n.entries, bound)
		n = n.children[i]
	}
	i := prefixLowerBound(n.entries, bound)
	c := btreeCursor{node: n, pos: i}
	c.skipEmpty()
	return c
}

// seekAfter positions at the first entry with key prefix > bound.
func (t *btree) seekAfter(bound []Value) btreeCursor {
	n := t.root
	for !n.leaf {
		i := prefixUpperBound(n.entries, bound)
		n = n.children[i]
	}
	i := prefixUpperBound(n.entries, bound)
	c := btreeCursor{node: n, pos: i}
	c.skipEmpty()
	return c
}

// prefixCompare compares the first len(bound) columns of key to bound.
func prefixCompare(key, bound []Value) int {
	n := len(bound)
	if len(key) < n {
		n = len(key)
	}
	for i := 0; i < n; i++ {
		if c := Compare(key[i], bound[i]); c != 0 {
			return c
		}
	}
	if len(key) < len(bound) {
		return -1
	}
	return 0
}

func prefixLowerBound(entries []btreeEntry, bound []Value) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if prefixCompare(entries[mid].key, bound) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func prefixUpperBound(entries []btreeEntry, bound []Value) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if prefixCompare(entries[mid].key, bound) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (c *btreeCursor) skipEmpty() {
	for c.node != nil && c.pos >= len(c.node.entries) {
		c.node = c.node.next
		c.pos = 0
	}
}

// valid reports whether the cursor points at an entry.
func (c *btreeCursor) valid() bool { return c.node != nil && c.pos < len(c.node.entries) }

// entry returns the current entry; caller must check valid first.
func (c *btreeCursor) entry() btreeEntry { return c.node.entries[c.pos] }

// advance moves to the next entry in key order.
func (c *btreeCursor) advance() {
	c.pos++
	c.skipEmpty()
}
