package sqldb

// B+tree index over composite Value keys. Entries are (key, rowid) pairs;
// rowid acts as a tiebreaker so duplicate keys are supported.
//
// The tree is copy-on-write: every node carries the generation that
// created it, and a writer first calls beginWrite to obtain a private
// tree handle stamped with a fresh generation. Mutations path-copy any
// node from an older generation before touching it, so all nodes
// reachable from a previously published root stay immutable and
// lock-free readers can walk them while the writer works. Nodes the
// writer itself created (same generation) are mutated in place.

const btreeOrder = 64 // max entries per node

type btreeEntry struct {
	key []Value
	rid int64
}

type btreeNode struct {
	gen      uint64
	leaf     bool
	entries  []btreeEntry // in leaf: data; in inner: separator keys
	children []*btreeNode // inner only; len = len(entries)+1
}

// btree is the index structure. A given handle is not safe for
// concurrent mutation; the Database serializes writers, and readers
// only ever see published (immutable) handles.
//
// The tree maintains approximate distinct-prefix counts per key column
// (distinct[L-1] = number of distinct L-column key prefixes). They are
// maintained by comparing each inserted/deleted entry with its in-leaf
// neighbors, which miscounts slightly at leaf boundaries — fine for the
// planner's cardinality estimates, their only consumer.
type btree struct {
	gen      uint64
	root     *btreeNode
	size     int
	width    int
	distinct []int
}

func newBtree(gen uint64) *btree {
	return &btree{gen: gen, root: &btreeNode{gen: gen, leaf: true}}
}

// beginWrite returns a private handle for a writer at generation gen.
// The handle shares all nodes with the receiver; mutations through it
// copy shared nodes on first touch and never disturb the original.
func (t *btree) beginWrite(gen uint64) *btree {
	return &btree{
		gen:      gen,
		root:     t.root,
		size:     t.size,
		width:    t.width,
		distinct: append([]int(nil), t.distinct...),
	}
}

// mutable returns n if it already belongs to this writer's generation,
// else a copy stamped with it. The caller must link the returned node
// in place of n (path copying).
func (t *btree) mutable(n *btreeNode) *btreeNode {
	if n.gen == t.gen {
		return n
	}
	c := &btreeNode{gen: t.gen, leaf: n.leaf}
	c.entries = append([]btreeEntry(nil), n.entries...)
	if len(n.children) > 0 {
		c.children = append([]*btreeNode(nil), n.children...)
	}
	return c
}

// DistinctPrefix estimates the number of distinct L-column key prefixes.
func (t *btree) DistinctPrefix(l int) int {
	if l < 1 || l > len(t.distinct) {
		return t.size
	}
	d := t.distinct[l-1]
	if d < 1 {
		d = 1
	}
	return d
}

// compareKeys orders composite keys elementwise; a shorter key that is a
// prefix of a longer one compares equal on the shared prefix, then the
// shorter sorts first. rid breaks full-key ties.
func compareKeys(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareEntry(a btreeEntry, key []Value, rid int64) int {
	if c := compareKeys(a.key, key); c != 0 {
		return c
	}
	switch {
	case a.rid < rid:
		return -1
	case a.rid > rid:
		return 1
	default:
		return 0
	}
}

// lowerBound returns the first index i in n.entries with
// compareEntry(entries[i], key, rid) >= 0.
func (n *btreeNode) lowerBound(key []Value, rid int64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(n.entries[mid], key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the inner-node child to descend to for an exact
// (key, rid). Separators are copies of their right subtree's first
// entry, so an entry equal to a separator lives in the RIGHT child:
// descend left of the first separator strictly greater than the key.
func (n *btreeNode) childIndex(key []Value, rid int64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(n.entries[mid], key, rid) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, rid). Duplicate (key, rid) pairs are ignored.
func (t *btree) Insert(key []Value, rid int64) {
	t.root = t.mutable(t.root)
	promoted, right := t.insertInto(t.root, key, rid)
	if right != nil {
		t.root = &btreeNode{
			gen:      t.gen,
			leaf:     false,
			entries:  []btreeEntry{promoted},
			children: []*btreeNode{t.root, right},
		}
	}
}

// insertInto performs the recursive insert into n, which the caller has
// already made mutable. On split it returns the promoted separator and
// the new right sibling.
func (t *btree) insertInto(n *btreeNode, key []Value, rid int64) (btreeEntry, *btreeNode) {
	if n.leaf {
		i := n.lowerBound(key, rid)
		if i < len(n.entries) && compareEntry(n.entries[i], key, rid) == 0 {
			return btreeEntry{}, nil // duplicate
		}
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btreeEntry{key: key, rid: rid}
		t.size++
		t.countInsert(n, i, key)
		if len(n.entries) <= btreeOrder {
			return btreeEntry{}, nil
		}
		return t.splitLeaf(n)
	}
	i := n.childIndex(key, rid)
	child := t.mutable(n.children[i])
	n.children[i] = child
	promoted, right := t.insertInto(child, key, rid)
	if right == nil {
		return btreeEntry{}, nil
	}
	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.entries) <= btreeOrder {
		return btreeEntry{}, nil
	}
	return t.splitInner(n)
}

func (t *btree) splitLeaf(n *btreeNode) (btreeEntry, *btreeNode) {
	mid := len(n.entries) / 2
	right := &btreeNode{gen: t.gen, leaf: true}
	right.entries = append(right.entries, n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	// Leaf split promotes a copy of the right node's first entry.
	return right.entries[0], right
}

func (t *btree) splitInner(n *btreeNode) (btreeEntry, *btreeNode) {
	mid := len(n.entries) / 2
	promoted := n.entries[mid]
	right := &btreeNode{gen: t.gen, leaf: false}
	right.entries = append(right.entries, n.entries[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.entries = n.entries[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, right
}

// Delete removes (key, rid). Underfull nodes are tolerated (no rebalance);
// the tree stays correct and scans skip empty leaves. Returns whether the
// entry existed.
func (t *btree) Delete(key []Value, rid int64) bool {
	// Probe first so a missing entry does not path-copy for nothing.
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, rid)]
	}
	i := n.lowerBound(key, rid)
	if i >= len(n.entries) || compareEntry(n.entries[i], key, rid) != 0 {
		return false
	}
	t.root = t.mutable(t.root)
	n = t.root
	for !n.leaf {
		ci := n.childIndex(key, rid)
		c := t.mutable(n.children[ci])
		n.children[ci] = c
		n = c
	}
	i = n.lowerBound(key, rid)
	t.countDelete(n, i, key)
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.size--
	return true
}

// countInsert updates distinct-prefix counts after placing key at
// position i of leaf n.
func (t *btree) countInsert(n *btreeNode, i int, key []Value) {
	if t.width == 0 {
		t.width = len(key)
		t.distinct = make([]int, t.width)
	}
	for l := 1; l <= t.width && l <= len(key); l++ {
		prefix := key[:l]
		predSame := i > 0 && prefixCompare(n.entries[i-1].key, prefix) == 0
		succSame := i+1 < len(n.entries) && prefixCompare(n.entries[i+1].key, prefix) == 0
		if !predSame && !succSame {
			t.distinct[l-1]++
		}
	}
}

// countDelete updates distinct-prefix counts before removing position i
// of leaf n.
func (t *btree) countDelete(n *btreeNode, i int, key []Value) {
	for l := 1; l <= t.width && l <= len(key); l++ {
		prefix := key[:l]
		predSame := i > 0 && prefixCompare(n.entries[i-1].key, prefix) == 0
		succSame := i+1 < len(n.entries) && prefixCompare(n.entries[i+1].key, prefix) == 0
		if !predSame && !succSame && t.distinct[l-1] > 0 {
			t.distinct[l-1]--
		}
	}
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// cursorFrame is one level of a cursor's root-to-leaf path. For an
// inner node, pos is the index of the child the cursor descended into;
// for the leaf it is the current entry index.
type cursorFrame struct {
	node *btreeNode
	pos  int
}

// btreeCursor walks leaf entries in key order. Leaves carry no sibling
// links (copy-on-write would dangle them), so the cursor keeps the full
// descent path and climbs it to step across leaf boundaries. The zero
// value is an exhausted (invalid) cursor.
type btreeCursor struct {
	frames []cursorFrame
}

// seek positions the cursor at the first entry with key >= bound,
// comparing only len(bound) key columns (prefix semantics). A nil bound
// seeks to the first entry.
func (t *btree) seek(bound []Value) btreeCursor {
	var c btreeCursor
	n := t.root
	for {
		i := 0
		if bound != nil {
			i = prefixLowerBound(n.entries, bound)
		}
		c.frames = append(c.frames, cursorFrame{node: n, pos: i})
		if n.leaf {
			break
		}
		n = n.children[i]
	}
	c.skipEmpty()
	return c
}

// seekAfter positions at the first entry with key prefix > bound.
func (t *btree) seekAfter(bound []Value) btreeCursor {
	var c btreeCursor
	n := t.root
	for {
		i := prefixUpperBound(n.entries, bound)
		c.frames = append(c.frames, cursorFrame{node: n, pos: i})
		if n.leaf {
			break
		}
		n = n.children[i]
	}
	c.skipEmpty()
	return c
}

// prefixCompare compares the first len(bound) columns of key to bound.
func prefixCompare(key, bound []Value) int {
	n := len(bound)
	if len(key) < n {
		n = len(key)
	}
	for i := 0; i < n; i++ {
		if c := Compare(key[i], bound[i]); c != 0 {
			return c
		}
	}
	if len(key) < len(bound) {
		return -1
	}
	return 0
}

func prefixLowerBound(entries []btreeEntry, bound []Value) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if prefixCompare(entries[mid].key, bound) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func prefixUpperBound(entries []btreeEntry, bound []Value) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if prefixCompare(entries[mid].key, bound) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// skipEmpty normalizes the cursor so its top frame is a leaf with a
// valid entry index, climbing and re-descending across leaf boundaries
// (and over empty leaves, which deletes tolerate) as needed. When the
// tree is exhausted the frame stack empties and the cursor is invalid.
func (c *btreeCursor) skipEmpty() {
	for len(c.frames) > 0 {
		top := &c.frames[len(c.frames)-1]
		if top.node.leaf {
			if top.pos < len(top.node.entries) {
				return
			}
			c.frames = c.frames[:len(c.frames)-1]
			continue
		}
		if top.pos+1 <= len(top.node.entries) {
			top.pos++
			n := top.node.children[top.pos]
			for !n.leaf {
				c.frames = append(c.frames, cursorFrame{node: n, pos: 0})
				n = n.children[0]
			}
			c.frames = append(c.frames, cursorFrame{node: n, pos: 0})
			continue
		}
		c.frames = c.frames[:len(c.frames)-1]
	}
}

// valid reports whether the cursor points at an entry.
func (c *btreeCursor) valid() bool {
	if len(c.frames) == 0 {
		return false
	}
	top := c.frames[len(c.frames)-1]
	return top.node.leaf && top.pos < len(top.node.entries)
}

// entry returns the current entry; caller must check valid first.
func (c *btreeCursor) entry() btreeEntry {
	top := c.frames[len(c.frames)-1]
	return top.node.entries[top.pos]
}

// advance moves to the next entry in key order.
func (c *btreeCursor) advance() {
	c.frames[len(c.frames)-1].pos++
	c.skipEmpty()
}
