package sqldb

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The VFS seam isolates every byte the durability layer writes so that
// tests can inject faults (torn writes, fsync failures, short reads)
// and simulate crashes at arbitrary byte offsets. Production code uses
// NewOSVFS; the fault-injection harness uses NewMemVFS wrapped in a
// FaultVFS.

// File is the handle abstraction the durability layer writes through.
// ReaderAt/WriterAt serve the page store: random-access slot IO that
// must not disturb the sequential position the WAL appender uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	// Sync makes everything written so far durable (survives a crash).
	Sync() error
	// Truncate cuts the file to size bytes. The write position is
	// unchanged; callers Seek afterwards.
	Truncate(size int64) error
}

// VFS is a flat directory of files. All names are relative to the
// directory the VFS was opened on.
type VFS interface {
	// Create opens a new file for writing, truncating any existing one.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// OpenRW opens a file for reading and writing, creating it if
	// absent. The position starts at 0.
	OpenRW(name string) (File, error)
	// Rename atomically replaces newName with oldName's file. Durable
	// only after SyncDir.
	Rename(oldName, newName string) error
	// Remove deletes a file (no error if absent is not guaranteed;
	// callers ignore errors for cleanup).
	Remove(name string) error
	// SyncDir makes the directory's name→file mapping durable
	// (creates, renames, removes).
	SyncDir() error
	// Size reports a file's current length; os.ErrNotExist if absent.
	Size(name string) (int64, error)
}

// ---------------------------------------------------------------------------
// OS-backed VFS

type osVFS struct{ dir string }

// NewOSVFS returns a VFS rooted at dir, creating the directory if
// needed.
func NewOSVFS(dir string) (VFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &osVFS{dir: dir}, nil
}

func (v *osVFS) path(name string) string { return filepath.Join(v.dir, name) }

func (v *osVFS) Create(name string) (File, error) { return os.Create(v.path(name)) }
func (v *osVFS) Open(name string) (File, error)   { return os.Open(v.path(name)) }
func (v *osVFS) Remove(name string) error         { return os.Remove(v.path(name)) }
func (v *osVFS) Rename(oldName, newName string) error {
	return os.Rename(v.path(oldName), v.path(newName))
}

func (v *osVFS) OpenRW(name string) (File, error) {
	return os.OpenFile(v.path(name), os.O_CREATE|os.O_RDWR, 0o644)
}

func (v *osVFS) SyncDir() error {
	d, err := os.Open(v.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories; treat that as a
	// no-op rather than failing the checkpoint.
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

func (v *osVFS) Size(name string) (int64, error) {
	fi, err := os.Stat(v.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ---------------------------------------------------------------------------
// In-memory crash-simulating VFS

// CrashMode selects how much unsynced state a simulated crash loses.
type CrashMode int

const (
	// CrashLoseUnsynced models power loss: every byte not covered by a
	// File.Sync, and every directory operation not covered by SyncDir,
	// is lost.
	CrashLoseUnsynced CrashMode = iota
	// CrashKeepAll models a process kill with the OS surviving: the
	// page cache is intact, so all writes persist, synced or not.
	CrashKeepAll
)

// memNode is one file's backing store (an "inode").
type memNode struct {
	content []byte // current logical content
	synced  []byte // content guaranteed to survive CrashLoseUnsynced
}

// MemVFS is an in-memory VFS with crash semantics: Sync/SyncDir define
// what survives a simulated crash. It is safe for concurrent use.
type MemVFS struct {
	mu        sync.Mutex
	files     map[string]*memNode // current namespace
	syncedDir map[string]*memNode // namespace that survives a crash
}

// NewMemVFS returns an empty in-memory VFS.
func NewMemVFS() *MemVFS {
	return &MemVFS{files: map[string]*memNode{}, syncedDir: map[string]*memNode{}}
}

// Crash simulates a crash: under CrashLoseUnsynced the namespace
// reverts to the last SyncDir and every file's content to its last
// Sync; under CrashKeepAll nothing is lost (only the process died).
// Open handles become stale (their writes keep going to orphaned
// nodes), mirroring a dead process's file descriptors.
func (v *MemVFS) Crash(mode CrashMode) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if mode == CrashKeepAll {
		return
	}
	files := make(map[string]*memNode, len(v.syncedDir))
	for name, n := range v.syncedDir {
		n.content = append([]byte(nil), n.synced...)
		files[name] = n
	}
	v.files = files
}

// Clone deep-copies the VFS state, so one pre-crash state can be
// crashed under several modes.
func (v *MemVFS) Clone() *MemVFS {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := NewMemVFS()
	nodes := map[*memNode]*memNode{}
	copyNode := func(n *memNode) *memNode {
		if cn, ok := nodes[n]; ok {
			return cn
		}
		cn := &memNode{
			content: append([]byte(nil), n.content...),
			synced:  append([]byte(nil), n.synced...),
		}
		nodes[n] = cn
		return cn
	}
	for name, n := range v.files {
		c.files[name] = copyNode(n)
	}
	for name, n := range v.syncedDir {
		c.syncedDir[name] = copyNode(n)
	}
	return c
}

func (v *MemVFS) Create(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := &memNode{}
	v.files[name] = n
	return &memFile{fs: v, node: n}, nil
}

func (v *MemVFS) Open(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return &memFile{fs: v, node: n}, nil
}

func (v *MemVFS) OpenRW(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.files[name]
	if !ok {
		n = &memNode{}
		v.files[name] = n
	}
	return &memFile{fs: v, node: n}, nil
}

func (v *MemVFS) Rename(oldName, newName string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.files[oldName]
	if !ok {
		return os.ErrNotExist
	}
	v.files[newName] = n
	delete(v.files, oldName)
	return nil
}

func (v *MemVFS) Remove(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[name]; !ok {
		return os.ErrNotExist
	}
	delete(v.files, name)
	return nil
}

func (v *MemVFS) SyncDir() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.syncedDir = make(map[string]*memNode, len(v.files))
	for name, n := range v.files {
		v.syncedDir[name] = n
	}
	return nil
}

func (v *MemVFS) Size(name string) (int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.files[name]
	if !ok {
		return 0, os.ErrNotExist
	}
	return int64(len(n.content)), nil
}

type memFile struct {
	fs   *MemVFS
	node *memNode
	pos  int64
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.pos >= int64(len(f.node.content)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.content[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := f.pos + int64(len(p))
	if grow := end - int64(len(f.node.content)); grow > 0 {
		f.node.content = append(f.node.content, make([]byte, grow)...)
	}
	copy(f.node.content[f.pos:end], p)
	f.pos = end
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.node.content)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.content[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := off + int64(len(p))
	if grow := end - int64(len(f.node.content)); grow > 0 {
		f.node.content = append(f.node.content, make([]byte, grow)...)
	}
	copy(f.node.content[off:end], p)
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.node.content)) + offset
	default:
		return 0, errors.New("memvfs: bad whence")
	}
	return f.pos, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.node.synced = append([]byte(nil), f.node.content...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < int64(len(f.node.content)) {
		f.node.content = f.node.content[:size]
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// ---------------------------------------------------------------------------
// Fault-injecting VFS wrapper

// ErrInjected is the error every failed injected operation returns.
var ErrInjected = errors.New("sqldb: injected fault")

// FaultVFS wraps a VFS with a write-budget fault injector: once the
// cumulative cost of write-side operations crosses FailAfter, the
// in-flight write lands torn (a prefix reaches the inner VFS) and every
// subsequent operation fails — the moral equivalent of the process
// dying at that byte. Metadata operations (create, rename, remove,
// sync, truncate, dir sync) each cost one unit, so a byte-offset sweep
// also crashes between "file synced" and "renamed into place".
type FaultVFS struct {
	inner VFS

	mu sync.Mutex
	// written is the cumulative cost so far.
	written int64
	// failAfter is the budget; <0 disables injection.
	failAfter int64
	failed    bool
	// shortReads, when set, caps every Read at one byte, flushing out
	// callers that assume full reads.
	shortReads bool
	// failErr, when set, replaces ErrInjected as the injected error —
	// e.g. syscall.ENOSPC to model a full disk.
	failErr error
	// readBytes/readFailAfter/readFailed are the read-side injector:
	// once cumulative ReadAt bytes cross the budget the in-flight read
	// lands short (a prefix is filled) with the injected error, and
	// every later ReadAt fails outright. Independent of the write-side
	// budget so recovery reads still work after a simulated crash.
	readBytes     int64
	readFailAfter int64
	readFailed    bool
}

// NewFaultVFS wraps inner, failing once the operation budget crosses
// failAfter (<0: never).
func NewFaultVFS(inner VFS, failAfter int64) *FaultVFS {
	return &FaultVFS{inner: inner, failAfter: failAfter, readFailAfter: -1}
}

// SetReadFailAfter arms the read-side injector: once n more ReadAt
// bytes have been served, the in-flight read returns a short prefix
// with the injected error and every later ReadAt fails. Negative n
// disarms. Any previously tripped read fault is cleared.
func (v *FaultVFS) SetReadFailAfter(n int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n >= 0 {
		n += v.readBytes
	}
	v.readFailAfter = n
	v.readFailed = false
}

// ReadBytes reports cumulative ReadAt bytes served, the unit a read
// fault sweep iterates over.
func (v *FaultVFS) ReadBytes() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.readBytes
}

// ReadFailed reports whether the injected read fault fired.
func (v *FaultVFS) ReadFailed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.readFailed
}

// chargeRead consumes n read-budget bytes, reporting how many may be
// served and whether the fault fired.
func (v *FaultVFS) chargeRead(n int64) (allowed int64, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.readFailed {
		return 0, false
	}
	if v.readFailAfter < 0 {
		v.readBytes += n
		return n, true
	}
	room := v.readFailAfter - v.readBytes
	if n <= room {
		v.readBytes += n
		return n, true
	}
	v.readBytes = v.readFailAfter
	v.readFailed = true
	if room < 0 {
		room = 0
	}
	return room, false
}

// SetShortReads makes every Read return at most one byte.
func (v *FaultVFS) SetShortReads(on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.shortReads = on
}

// SetFailError chooses the error injected operations return instead of
// ErrInjected — e.g. syscall.ENOSPC to model a full disk. nil restores
// the default.
func (v *FaultVFS) SetFailError(err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.failErr = err
}

// injectErr returns the configured injection error.
func (v *FaultVFS) injectErr() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.failErr != nil {
		return v.failErr
	}
	return ErrInjected
}

// SetFailAfter re-arms the injector: the fault fires once the
// cumulative Written counter crosses n, so SetFailAfter(v.Written())
// trips the very next write. A negative n disarms injection. Any
// previously tripped state is cleared.
func (v *FaultVFS) SetFailAfter(n int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.failAfter = n
	v.failed = false
}

// Heal models a transient fault clearing (space freed after ENOSPC,
// storage back online): the tripped state resets and further injection
// is disabled, so subsequent IO succeeds. The cumulative Written
// counter is preserved.
func (v *FaultVFS) Heal() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.failed = false
	v.failAfter = -1
	v.readFailed = false
	v.readFailAfter = -1
}

// Written reports the cumulative operation cost, the budget unit a
// crash sweep iterates over.
func (v *FaultVFS) Written() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.written
}

// Failed reports whether the injected crash point was reached.
func (v *FaultVFS) Failed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.failed
}

// charge consumes n units of budget; it reports how many units may
// proceed and whether the fault fired.
func (v *FaultVFS) charge(n int64) (allowed int64, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.failed {
		return 0, false
	}
	if v.failAfter < 0 {
		v.written += n
		return n, true
	}
	room := v.failAfter - v.written
	if n <= room {
		v.written += n
		return n, true
	}
	v.written = v.failAfter
	v.failed = true
	if room < 0 {
		room = 0
	}
	return room, false
}

func (v *FaultVFS) Create(name string) (File, error) {
	if _, ok := v.charge(1); !ok {
		return nil, v.injectErr()
	}
	f, err := v.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: v, inner: f}, nil
}

func (v *FaultVFS) Open(name string) (File, error) {
	f, err := v.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: v, inner: f}, nil
}

func (v *FaultVFS) OpenRW(name string) (File, error) {
	if _, ok := v.charge(1); !ok {
		return nil, v.injectErr()
	}
	f, err := v.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: v, inner: f}, nil
}

func (v *FaultVFS) Rename(oldName, newName string) error {
	if _, ok := v.charge(1); !ok {
		return v.injectErr()
	}
	return v.inner.Rename(oldName, newName)
}

func (v *FaultVFS) Remove(name string) error {
	if _, ok := v.charge(1); !ok {
		return v.injectErr()
	}
	return v.inner.Remove(name)
}

func (v *FaultVFS) SyncDir() error {
	if _, ok := v.charge(1); !ok {
		return v.injectErr()
	}
	return v.inner.SyncDir()
}

func (v *FaultVFS) Size(name string) (int64, error) { return v.inner.Size(name) }

type faultFile struct {
	fs    *FaultVFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	short := f.fs.shortReads
	f.fs.mu.Unlock()
	if short && len(p) > 1 {
		p = p[:1]
	}
	return f.inner.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	allowed, ok := f.fs.chargeRead(int64(len(p)))
	if ok {
		return f.inner.ReadAt(p, off)
	}
	// Short read: a prefix is served, then the fault.
	n := 0
	if allowed > 0 {
		n, _ = f.inner.ReadAt(p[:allowed], off)
	}
	return n, f.fs.injectErr()
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, ok := f.fs.charge(int64(len(p)))
	if ok {
		return f.inner.WriteAt(p, off)
	}
	// Torn write: a prefix reaches storage, then the crash.
	n := 0
	if allowed > 0 {
		n, _ = f.inner.WriteAt(p[:allowed], off)
	}
	return n, f.fs.injectErr()
}

func (f *faultFile) Write(p []byte) (int, error) {
	allowed, ok := f.fs.charge(int64(len(p)))
	if ok {
		return f.inner.Write(p)
	}
	// Torn write: a prefix reaches storage, then the crash.
	n := 0
	if allowed > 0 {
		n, _ = f.inner.Write(p[:allowed])
	}
	return n, f.fs.injectErr()
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Sync() error {
	if _, ok := f.fs.charge(1); !ok {
		return f.fs.injectErr()
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if _, ok := f.fs.charge(1); !ok {
		return f.fs.injectErr()
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }
