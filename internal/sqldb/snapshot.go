package sqldb

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is an explicitly pinned, immutable view of the database: a
// published dbState plus bookkeeping so its age shows up in the
// snapshot metrics. All reads through a Snapshot — across any number of
// statements — observe exactly the commits with seq <= Seq(), never
// blocking writers and never seeing later ones. Release it when done so
// the tracker stops counting it against oldest-live-snapshot age (the
// underlying versions are reclaimed by Go's GC once unreferenced; there
// is no other cleanup).
type Snapshot struct {
	db       *Database
	st       *dbState
	acquired time.Time
	released atomic.Bool
}

// AcquireSnapshot pins the latest published version set for consistent
// multi-statement reads.
func (db *Database) AcquireSnapshot() *Snapshot {
	db.snaps.recordAcquire()
	s := &Snapshot{db: db, st: db.state.Load(), acquired: time.Now()}
	db.snaps.pin(s)
	return s
}

// Seq returns the commit sequence the snapshot observes: every commit
// with seq <= Seq() is visible, nothing later is.
func (s *Snapshot) Seq() uint64 { return s.st.seq }

// Epoch returns the schema epoch of the pinned version set.
func (s *Snapshot) Epoch() uint64 { return s.st.epoch }

// Release unpins the snapshot. Reads through a released snapshot still
// work (the versions are immutable); releasing only ends the metrics
// tracking. Safe to call more than once.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.db.snaps.unpin(s)
	}
}

// Query runs a SELECT against the pinned version set.
func (s *Snapshot) Query(sql string, args ...Value) (*Rows, error) {
	return s.db.queryAt(context.Background(), s.st, sql, args)
}

// QueryContext is Query honoring a context deadline/cancellation.
func (s *Snapshot) QueryContext(qctx context.Context, sql string, args ...Value) (*Rows, error) {
	return s.db.queryAt(qctx, s.st, sql, args)
}

// QueryScalar runs a SELECT expected to return a single value; it
// returns NULL for an empty result.
func (s *Snapshot) QueryScalar(sql string, args ...Value) (Value, error) {
	return scalarOf(s.Query(sql, args...))
}

// SnapshotStats summarizes snapshot-isolation activity since the
// database was created.
type SnapshotStats struct {
	// Acquired counts snapshot acquisitions: one per read operation
	// (Query, EXPLAIN ANALYZE, Prepare/Prepared.Query) plus one per
	// explicit AcquireSnapshot.
	Acquired uint64
	// Pinned is the number of explicitly pinned snapshots not yet
	// released.
	Pinned int
	// OldestAge is the age of the oldest live pinned snapshot (zero when
	// none are pinned).
	OldestAge time.Duration
	// Publishes counts writer commits that published a new state.
	Publishes uint64
	// PublishWaits counts writer transactions, and PublishWaitTime is
	// the total time writers spent waiting to acquire the writer slot —
	// the writer-side contention figure (readers never wait).
	PublishWaits    uint64
	PublishWaitTime time.Duration
	// PublishOrderWaits counts commits that had finished their WAL fsync
	// but had to wait for an earlier-staged commit to publish first, so
	// the published state chain stays in commit order.
	PublishOrderWaits uint64
	// VersionsReclaimed counts table versions superseded by a publish
	// and thereby handed to the garbage collector (reclaimed once the
	// last snapshot referencing them is dropped).
	VersionsReclaimed uint64
}

// snapTracker collects snapshot metrics. It has its own mutex for the
// pinned-snapshot set; counters are atomics so the hot read path only
// pays one atomic add.
type snapTracker struct {
	acquired   atomic.Uint64
	publishes  atomic.Uint64
	reclaimed  atomic.Uint64
	waits      atomic.Uint64
	waitNs     atomic.Int64
	orderWaits atomic.Uint64

	mu     sync.Mutex
	pinned map[*Snapshot]time.Time
}

func newSnapTracker() *snapTracker {
	return &snapTracker{pinned: map[*Snapshot]time.Time{}}
}

func (t *snapTracker) recordAcquire() { t.acquired.Add(1) }

func (t *snapTracker) recordPublishWait(d time.Duration) {
	t.waits.Add(1)
	t.waitNs.Add(int64(d))
}

func (t *snapTracker) recordPublishOrderWait() { t.orderWaits.Add(1) }

func (t *snapTracker) recordPublish(reclaimed int) {
	t.publishes.Add(1)
	if reclaimed > 0 {
		t.reclaimed.Add(uint64(reclaimed))
	}
}

func (t *snapTracker) pin(s *Snapshot) {
	t.mu.Lock()
	t.pinned[s] = s.acquired
	t.mu.Unlock()
}

func (t *snapTracker) unpin(s *Snapshot) {
	t.mu.Lock()
	delete(t.pinned, s)
	t.mu.Unlock()
}

func (t *snapTracker) stats() SnapshotStats {
	st := SnapshotStats{
		Acquired:          t.acquired.Load(),
		Publishes:         t.publishes.Load(),
		PublishWaits:      t.waits.Load(),
		PublishWaitTime:   time.Duration(t.waitNs.Load()),
		PublishOrderWaits: t.orderWaits.Load(),
		VersionsReclaimed: t.reclaimed.Load(),
	}
	t.mu.Lock()
	st.Pinned = len(t.pinned)
	var oldest time.Time
	for _, at := range t.pinned {
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	t.mu.Unlock()
	if !oldest.IsZero() {
		st.OldestAge = time.Since(oldest)
	}
	return st
}
