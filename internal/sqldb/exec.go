package sqldb

import (
	"sort"
	"strings"
)

// rowIter is the Volcano-style iterator every physical operator
// implements. next returns (nil, nil) at end of stream.
type rowIter interface {
	next() ([]Value, error)
	close()
}

// planNode is a physical operator in a compiled plan. Opening a node
// yields a fresh iterator; a node can be opened multiple times (e.g. the
// inner side of a nested-loop join or a correlated subquery).
type planNode interface {
	sch() schema
	open(ctx *evalCtx) (rowIter, error)
	// estRows is the planner's cardinality estimate, used for join
	// ordering. It is heuristic, not statistical.
	estRows() float64
}

// resolveTable maps a plan-time table pointer to the version the
// running snapshot sees. Plans capture *table pointers at planning
// time; with versioned storage every DML publishes a fresh version, so
// scans re-resolve by catalog key when they open. The schema-epoch
// validation on cached and prepared plans guarantees the key still
// denotes the same relation (same definition), so the fallback to the
// plan-time version is only reachable when snap IS the planning state.
func (ctx *evalCtx) resolveTable(t *table) *table {
	if cur := ctx.snap.tables[t.key]; cur != nil {
		return cur
	}
	return t
}

// resolveIndex finds idx's counterpart inside the resolved table
// version t (index identity is the definition name).
func resolveIndex(t *table, idx *tableIndex) *tableIndex {
	if cur := t.index(idx.def.Name); cur != nil {
		return cur
	}
	return idx
}

// canceled polls the execution context for cancellation, deadline
// expiry, or a tripped memory budget. Chokepoints (statIter.next,
// statVecIter.nextBatch, materialize) call it on a coarse stride so the
// hot path stays cheap; a budget overrun anywhere in the query (any
// worker) is observed here by every other worker, so the whole query
// unwinds and releases its partially-built state.
func (ctx *evalCtx) canceled() error {
	if err := ctx.mem.err(); err != nil {
		return err
	}
	if ctx.qctx == nil {
		return nil
	}
	select {
	case <-ctx.qctx.Done():
		return ctx.qctx.Err()
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// Sequential scan

type seqScanNode struct {
	tbl    *table
	alias  string
	schema schema
	// filter is the residual predicate pushed into the scan (may be nil).
	filter compiledExpr
	// kernel is the specialized batch-path predicate derived from the
	// same conjuncts as filter (nil when the shape is not kernelizable;
	// see kernel.go). The row path never consults it.
	kernel rowPred
	// sel is the estimated selectivity of filter.
	sel float64
}

func newSeqScanNode(tbl *table, alias string) *seqScanNode {
	s := make(schema, len(tbl.def.Columns))
	for i, c := range tbl.def.Columns {
		s[i] = colInfo{alias: alias, name: c.Name, typ: c.Type}
	}
	return &seqScanNode{tbl: tbl, alias: alias, schema: s, sel: 1}
}

func (n *seqScanNode) sch() schema { return n.schema }

func (n *seqScanNode) estRows() float64 { return float64(n.tbl.live)*n.sel + 1 }

func (n *seqScanNode) open(ctx *evalCtx) (rowIter, error) {
	tbl := ctx.resolveTable(n.tbl)
	it := &seqScanIter{node: n, ctx: ctx, tbl: tbl, end: tbl.slotCount()}
	// Inside a gather worker, the scan that drives the parallel segment
	// is restricted to the worker's claimed morsel. Pointer identity
	// guarantees only the driver scan is clipped — any other table
	// scanned by the segment (join build sides, subqueries) reads fully.
	if m := ctx.morsel; m != nil && m.node == n {
		it.pos, it.end = int64(m.lo), int64(m.hi)
	}
	return it, nil
}

type seqScanIter struct {
	node *seqScanNode
	ctx  *evalCtx
	tbl  *table
	pos  int64
	end  int64
	ref  pageRef
}

func (it *seqScanIter) next() ([]Value, error) {
	for it.pos < it.end {
		row := it.tbl.rowRef(it.pos, &it.ref)
		it.pos++
		if row == nil {
			continue
		}
		if it.node.filter != nil {
			v, err := it.node.filter(it.ctx, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		return row, nil
	}
	return nil, nil
}

func (it *seqScanIter) close() { it.ref.release() }

// ---------------------------------------------------------------------------
// Index scan

// indexScanNode scans an index range. The bounds are expressions that
// must be row-independent (literals, params, outer refs); they are
// evaluated when the iterator opens.
type indexScanNode struct {
	tbl    *table
	idx    *tableIndex
	alias  string
	schema schema
	// eq holds equality bounds for the leading key columns.
	eq []compiledExpr
	// lo/hi optionally bound the next key column after the eq prefix.
	lo, hi         compiledExpr
	loIncl, hiIncl bool
	filter         compiledExpr
	// kernel is the batch-path specialization of filter (see kernel.go).
	kernel rowPred
	sel    float64
}

func (n *indexScanNode) sch() schema { return n.schema }

func (n *indexScanNode) estRows() float64 { return float64(n.tbl.live)*n.sel + 1 }

func (n *indexScanNode) open(ctx *evalCtx) (rowIter, error) {
	tbl := ctx.resolveTable(n.tbl)
	cur, stop, empty, err := n.startCursor(ctx, tbl)
	if err != nil {
		return nil, err
	}
	if empty {
		return &sliceIter{}, nil
	}
	return &indexScanIter{node: n, ctx: ctx, tbl: tbl, cur: cur, stop: stop}, nil
}

// startCursor evaluates the scan bounds and positions a cursor over the
// resolved table's index. empty reports that a bound evaluated to NULL,
// which matches nothing in SQL. Shared by the row and batch paths.
func (n *indexScanNode) startCursor(ctx *evalCtx, tbl *table) (btreeCursor, func(key []Value) bool, bool, error) {
	idx := resolveIndex(tbl, n.idx)
	prefix := make([]Value, 0, len(n.eq)+1)
	for _, e := range n.eq {
		v, err := e(ctx, nil)
		if err != nil {
			return btreeCursor{}, nil, false, err
		}
		if v.IsNull() {
			// Equality with NULL matches nothing in SQL.
			return btreeCursor{}, nil, true, nil
		}
		prefix = append(prefix, v)
	}
	var cur btreeCursor
	var stop func(key []Value) bool
	tree := idx.tree

	loBound := prefix
	switch {
	case n.lo != nil:
		v, err := n.lo(ctx, nil)
		if err != nil {
			return btreeCursor{}, nil, false, err
		}
		if v.IsNull() {
			return btreeCursor{}, nil, true, nil
		}
		loBound = append(append([]Value{}, prefix...), v)
		if n.loIncl {
			cur = tree.seek(loBound)
		} else {
			cur = tree.seekAfter(loBound)
		}
	case n.hi != nil:
		// Upper-bound-only range: NULL keys sort first in the index but
		// never satisfy a SQL comparison, so start after the NULL run.
		cur = tree.seekAfter(append(append([]Value{}, prefix...), Null))
	case len(prefix) > 0:
		cur = tree.seek(prefix)
	default:
		cur = tree.seek(nil)
	}

	if n.hi != nil {
		v, err := n.hi(ctx, nil)
		if err != nil {
			return btreeCursor{}, nil, false, err
		}
		if v.IsNull() {
			return btreeCursor{}, nil, true, nil
		}
		hiBound := append(append([]Value{}, prefix...), v)
		incl := n.hiIncl
		stop = func(key []Value) bool {
			c := prefixCompare(key, hiBound)
			if incl {
				return c > 0
			}
			return c >= 0
		}
	} else if len(prefix) > 0 {
		p := prefix
		stop = func(key []Value) bool { return prefixCompare(key, p) > 0 }
	}
	return cur, stop, false, nil
}

type indexScanIter struct {
	node *indexScanNode
	ctx  *evalCtx
	tbl  *table
	cur  btreeCursor
	stop func(key []Value) bool
	ref  pageRef
}

func (it *indexScanIter) next() ([]Value, error) {
	for it.cur.valid() {
		e := it.cur.entry()
		if it.stop != nil && it.stop(e.key) {
			return nil, nil
		}
		it.cur.advance()
		row := it.tbl.rowRef(e.rid, &it.ref)
		if row == nil {
			continue
		}
		if it.node.filter != nil {
			v, err := it.node.filter(it.ctx, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		return row, nil
	}
	return nil, nil
}

func (it *indexScanIter) close() { it.ref.release() }

// ---------------------------------------------------------------------------
// Filter

type filterNode struct {
	in   planNode
	pred compiledExpr
	// kernel is the batch-path specialization of pred (see kernel.go).
	kernel rowPred
	sel    float64
}

func (n *filterNode) sch() schema      { return n.in.sch() }
func (n *filterNode) estRows() float64 { return n.in.estRows()*n.sel + 1 }

func (n *filterNode) open(ctx *evalCtx) (rowIter, error) {
	in, err := openNode(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &filterIter{in: in, pred: n.pred, ctx: ctx}, nil
}

type filterIter struct {
	in   rowIter
	pred compiledExpr
	ctx  *evalCtx
}

func (it *filterIter) next() ([]Value, error) {
	for {
		row, err := it.in.next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := it.pred(it.ctx, row)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Bool() {
			return row, nil
		}
	}
}

func (it *filterIter) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Projection

type projectNode struct {
	in     planNode
	exprs  []compiledExpr
	schema schema
	// colIdx, when non-nil, marks a projection whose expressions are all
	// plain column references: colIdx[j] is the input column of output
	// column j. The batch path uses it to skip the expression closures;
	// the row path (the correctness oracle) always runs exprs.
	colIdx []int
}

func (n *projectNode) sch() schema      { return n.schema }
func (n *projectNode) estRows() float64 { return n.in.estRows() }

func (n *projectNode) open(ctx *evalCtx) (rowIter, error) {
	in, err := openNode(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &projectIter{in: in, node: n, ctx: ctx}, nil
}

type projectIter struct {
	in   rowIter
	node *projectNode
	ctx  *evalCtx
}

func (it *projectIter) next() ([]Value, error) {
	row, err := it.in.next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]Value, len(it.node.exprs))
	for i, e := range it.node.exprs {
		out[i], err = e(it.ctx, row)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (it *projectIter) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Nested-loop join (materializes the inner side once)

type nlJoinNode struct {
	left, right planNode
	cond        compiledExpr // may be nil (cross join)
	leftOuter   bool
	schema      schema
}

func (n *nlJoinNode) sch() schema { return n.schema }

func (n *nlJoinNode) estRows() float64 {
	f := 0.5
	if n.cond == nil {
		f = 1
	}
	return n.left.estRows() * n.right.estRows() * f
}

func (n *nlJoinNode) open(ctx *evalCtx) (rowIter, error) {
	left, err := openNode(ctx, n.left)
	if err != nil {
		return nil, err
	}
	inner, built, err := n.innerRows(ctx)
	if err != nil {
		left.close()
		return nil, err
	}
	if s := ctx.opStat(n); s != nil {
		s.BuildRows += built
	}
	return &nlJoinIter{node: n, ctx: ctx, left: left, inner: inner, ipos: -1}, nil
}

// innerRows materializes the inner side, sharing the result across a
// parallel segment's per-morsel re-opens (the inner is loop-invariant).
func (n *nlJoinNode) innerRows(ctx *evalCtx) ([][]Value, int64, error) {
	if sh := ctx.shared; sh != nil {
		e := sh.entry(n)
		builtNow := false
		e.once.Do(func() {
			// A panic inside the shared build must still publish an
			// error: sync.Once marks itself done even when f panics, so
			// without this every other waiter would see a nil e.err and
			// a nil build.
			defer func() {
				if r := recover(); r != nil {
					e.err = internalError(r)
				}
			}()
			e.rows, e.err = materialize(ctx, n.right)
			e.n = int64(len(e.rows))
			builtNow = true
		})
		if e.err != nil {
			return nil, 0, e.err
		}
		if builtNow {
			return e.rows, e.n, nil
		}
		return e.rows, 0, nil
	}
	rows, err := materialize(ctx, n.right)
	return rows, int64(len(rows)), err
}

type nlJoinIter struct {
	node    *nlJoinNode
	ctx     *evalCtx
	left    rowIter
	inner   [][]Value
	lrow    []Value
	ipos    int
	matched bool
}

func (it *nlJoinIter) next() ([]Value, error) {
	for {
		if it.lrow == nil || it.ipos >= len(it.inner) {
			if it.lrow != nil && it.node.leftOuter && !it.matched {
				out := padRight(it.lrow, len(it.node.right.sch()))
				it.lrow = nil
				return out, nil
			}
			var err error
			it.lrow, err = it.left.next()
			if err != nil || it.lrow == nil {
				return nil, err
			}
			it.ipos = 0
			it.matched = false
		}
		for it.ipos < len(it.inner) {
			r := it.inner[it.ipos]
			it.ipos++
			joined := concatRows(it.lrow, r)
			if it.node.cond != nil {
				v, err := it.node.cond(it.ctx, joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			it.matched = true
			return joined, nil
		}
	}
}

func (it *nlJoinIter) close() { it.left.close() }

// ---------------------------------------------------------------------------
// Hash join (equi-join; builds on the right side)

type hashJoinNode struct {
	left, right         planNode
	leftKeys, rightKeys []compiledExpr
	extraCond           compiledExpr
	leftOuter           bool
	schema              schema
	// buildPar is the degree of parallelism for the partitioned build
	// (set by the planner's parallelize pass; 0/1 = serial build).
	buildPar int
}

func (n *hashJoinNode) sch() schema { return n.schema }

func (n *hashJoinNode) estRows() float64 {
	l, r := n.left.estRows(), n.right.estRows()
	m := l
	if r > m {
		m = r
	}
	return m + 1
}

// hashKey builds a string key from values; numeric types are normalized
// so 1 and 1.0 collide, matching compareSQL semantics.
func hashKey(vals []Value) (string, bool) {
	var b strings.Builder
	for _, v := range vals {
		switch v.T {
		case TypeNull:
			return "", false // NULL never joins
		case TypeInt, TypeBool:
			b.WriteByte('n')
			b.WriteString(NewFloat(float64(v.I)).Text())
		case TypeFloat:
			b.WriteByte('n')
			b.WriteString(v.Text())
		case TypeText:
			b.WriteByte('s')
			b.WriteString(v.S)
		case TypeBlob:
			b.WriteByte('b')
			b.Write(v.B)
		}
		b.WriteByte(0)
	}
	return b.String(), true
}

func (n *hashJoinNode) open(ctx *evalCtx) (rowIter, error) {
	ht, built, err := n.build(ctx)
	if err != nil {
		return nil, err
	}
	if s := ctx.opStat(n); s != nil {
		s.BuildRows += built
	}
	left, err := openNode(ctx, n.left)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{node: n, ctx: ctx, left: left, ht: ht, rightWidth: len(n.right.sch())}, nil
}

// build produces the hash table for the right side. Inside a gather
// worker the result is shared across the segment's per-morsel re-opens
// (and across workers): the build side is loop-invariant, so it is
// computed once, by whichever worker gets there first. The returned
// count is non-zero only when this call actually built, keeping
// BuildRows comparable with serial execution.
func (n *hashJoinNode) build(ctx *evalCtx) (map[string][][]Value, int64, error) {
	if sh := ctx.shared; sh != nil {
		e := sh.entry(n)
		builtNow := false
		e.once.Do(func() {
			// See innerRows: a panicking build must set e.err for the
			// other waiters (once.Do completes even on panic).
			defer func() {
				if r := recover(); r != nil {
					e.err = internalError(r)
				}
			}()
			e.ht, e.n, e.err = n.buildHashTable(ctx)
			builtNow = true
		})
		if e.err != nil {
			return nil, 0, e.err
		}
		if builtNow {
			return e.ht, e.n, nil
		}
		return e.ht, 0, nil
	}
	return n.buildHashTable(ctx)
}

func (n *hashJoinNode) buildHashTable(ctx *evalCtx) (map[string][][]Value, int64, error) {
	rightRows, err := materialize(ctx, n.right)
	if err != nil {
		return nil, 0, err
	}
	ht, err := hashRows(ctx, rightRows, n.rightKeys, n.buildPar)
	if err != nil {
		return nil, 0, err
	}
	return ht, int64(len(rightRows)), nil
}

type hashJoinIter struct {
	node       *hashJoinNode
	ctx        *evalCtx
	left       rowIter
	ht         map[string][][]Value
	rightWidth int
	lrow       []Value
	bucket     [][]Value
	bpos       int
	matched    bool
}

func (it *hashJoinIter) next() ([]Value, error) {
	for {
		if it.lrow == nil || it.bpos >= len(it.bucket) {
			if it.lrow != nil && it.node.leftOuter && !it.matched {
				out := padRight(it.lrow, it.rightWidth)
				it.lrow = nil
				return out, nil
			}
			var err error
			it.lrow, err = it.left.next()
			if err != nil || it.lrow == nil {
				return nil, err
			}
			it.matched = false
			keyBuf := make([]Value, len(it.node.leftKeys))
			for i, ke := range it.node.leftKeys {
				keyBuf[i], err = ke(it.ctx, it.lrow)
				if err != nil {
					return nil, err
				}
			}
			if k, ok := hashKey(keyBuf); ok {
				it.bucket = it.ht[k]
			} else {
				it.bucket = nil
			}
			it.bpos = 0
		}
		for it.bpos < len(it.bucket) {
			r := it.bucket[it.bpos]
			it.bpos++
			joined := concatRows(it.lrow, r)
			if it.node.extraCond != nil {
				v, err := it.node.extraCond(it.ctx, joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			it.matched = true
			return joined, nil
		}
	}
}

func (it *hashJoinIter) close() { it.left.close() }

// ---------------------------------------------------------------------------
// Index nested-loop join: probes the right table's index per left row.

// The probe key is an equality prefix (keyExprs, evaluated against the
// left row; constant bounds simply ignore the row) optionally followed
// by a range on the next key column (rngLo/rngHi, also computed per left
// row). Range support is what makes the interval-encoding descendant
// join (`c.pre BETWEEN p.pre+1 AND p.pre+p.size`) and the Dewey prefix
// join run as index lookups instead of nested-loop scans.
type indexJoinNode struct {
	left                 planNode
	tbl                  *table
	idx                  *tableIndex
	keyExprs             []compiledExpr // equality prefix, evaluated on the left row
	rngLo, rngHi         compiledExpr   // optional bounds on the next key column
	rngLoIncl, rngHiIncl bool
	extraCond            compiledExpr // over the joined row
	leftOuter            bool
	schema               schema
	sel                  float64
}

func (n *indexJoinNode) sch() schema { return n.schema }

func (n *indexJoinNode) estRows() float64 {
	per := float64(n.tbl.live) * n.sel
	if per < 1 {
		per = 1
	}
	return n.left.estRows() * per
}

func (n *indexJoinNode) open(ctx *evalCtx) (rowIter, error) {
	left, err := openNode(ctx, n.left)
	if err != nil {
		return nil, err
	}
	tbl := ctx.resolveTable(n.tbl)
	return &indexJoinIter{node: n, ctx: ctx, left: left, tbl: tbl, idx: resolveIndex(tbl, n.idx)}, nil
}

type indexJoinIter struct {
	node    *indexJoinNode
	ctx     *evalCtx
	left    rowIter
	tbl     *table
	idx     *tableIndex
	lrow    []Value
	cur     btreeCursor
	stop    func(key []Value) bool
	active  bool
	matched bool
	ref     pageRef
}

func (it *indexJoinIter) next() ([]Value, error) {
	for {
		if !it.active {
			if it.lrow != nil && it.node.leftOuter && !it.matched {
				out := padRight(it.lrow, len(it.node.tbl.def.Columns))
				it.lrow = nil
				return out, nil
			}
			var err error
			it.lrow, err = it.left.next()
			if err != nil || it.lrow == nil {
				return nil, err
			}
			it.matched = false
			if err := it.seek(); err != nil {
				return nil, err
			}
			it.active = true
		}
		for it.cur.valid() {
			e := it.cur.entry()
			if it.stop != nil && it.stop(e.key) {
				break
			}
			it.cur.advance()
			row := it.tbl.rowRef(e.rid, &it.ref)
			if row == nil {
				continue
			}
			joined := concatRows(it.lrow, row)
			if it.node.extraCond != nil {
				v, err := it.node.extraCond(it.ctx, joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			it.matched = true
			return joined, nil
		}
		it.active = false
	}
}

// seek positions the cursor for the current left row, computing the
// equality prefix and optional range bounds.
func (it *indexJoinIter) seek() error {
	n := it.node
	prefix := make([]Value, len(n.keyExprs), len(n.keyExprs)+1)
	for i, ke := range n.keyExprs {
		v, err := ke(it.ctx, it.lrow)
		if err != nil {
			return err
		}
		if v.IsNull() { // NULL keys never join
			it.cur = btreeCursor{}
			it.stop = nil
			return nil
		}
		prefix[i] = v
	}
	tree := it.idx.tree
	switch {
	case n.rngLo != nil:
		v, err := n.rngLo(it.ctx, it.lrow)
		if err != nil {
			return err
		}
		if v.IsNull() { // comparison with NULL matches nothing
			it.cur = btreeCursor{}
			it.stop = nil
			return nil
		}
		lo := append(append([]Value{}, prefix...), v)
		if n.rngLoIncl {
			it.cur = tree.seek(lo)
		} else {
			it.cur = tree.seekAfter(lo)
		}
	case n.rngHi != nil:
		// Upper-bound-only range: skip the NULL run (NULLs never
		// satisfy a SQL comparison).
		it.cur = tree.seekAfter(append(append([]Value{}, prefix...), Null))
	case len(prefix) > 0:
		it.cur = tree.seek(prefix)
	default:
		it.cur = tree.seek(nil)
	}
	switch {
	case n.rngHi != nil:
		v, err := n.rngHi(it.ctx, it.lrow)
		if err != nil {
			return err
		}
		if v.IsNull() {
			it.cur = btreeCursor{}
			it.stop = nil
			return nil
		}
		hi := append(append([]Value{}, prefix...), v)
		incl := n.rngHiIncl
		it.stop = func(key []Value) bool {
			c := prefixCompare(key, hi)
			if incl {
				return c > 0
			}
			return c >= 0
		}
	case len(prefix) > 0:
		p := prefix
		it.stop = func(key []Value) bool { return prefixCompare(key, p) > 0 }
	default:
		it.stop = nil
	}
	return nil
}

func (it *indexJoinIter) close() {
	it.ref.release()
	it.left.close()
}

// ---------------------------------------------------------------------------
// Sort

type sortNode struct {
	in   planNode
	keys []compiledExpr
	desc []bool
}

func (n *sortNode) sch() schema      { return n.in.sch() }
func (n *sortNode) estRows() float64 { return n.in.estRows() }

func (n *sortNode) open(ctx *evalCtx) (rowIter, error) {
	rows, err := materialize(ctx, n.in)
	if err != nil {
		return nil, err
	}
	type keyed struct {
		row  []Value
		keys []Value
	}
	ks := make([]keyed, len(rows))
	var pending int64
	for i, r := range rows {
		kv := make([]Value, len(n.keys))
		for j, ke := range n.keys {
			kv[j], err = ke(ctx, r)
			if err != nil {
				return nil, err
			}
		}
		ks[i] = keyed{row: r, keys: kv}
		pending += valuesBytes(kv)
		if i&1023 == 1023 {
			if err := ctx.mem.charge(pending); err != nil {
				return nil, err
			}
			pending = 0
		}
	}
	if err := ctx.mem.charge(pending); err != nil {
		return nil, err
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range n.keys {
			c := Compare(ks[a].keys[j], ks[b].keys[j])
			if c == 0 {
				continue
			}
			if n.desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([][]Value, len(ks))
	for i := range ks {
		out[i] = ks[i].row
	}
	return &sliceIter{rows: out}, nil
}

// ---------------------------------------------------------------------------
// Limit / offset

type limitNode struct {
	in            planNode
	limit, offset compiledExpr // either may be nil
}

func (n *limitNode) sch() schema      { return n.in.sch() }
func (n *limitNode) estRows() float64 { return n.in.estRows() }

func (n *limitNode) open(ctx *evalCtx) (rowIter, error) {
	in, err := openNode(ctx, n.in)
	if err != nil {
		return nil, err
	}
	it := &limitIter{in: in, limit: -1}
	if n.limit != nil {
		v, err := n.limit(ctx, nil)
		if err != nil {
			in.close()
			return nil, err
		}
		it.limit = v.Int()
	}
	if n.offset != nil {
		v, err := n.offset(ctx, nil)
		if err != nil {
			in.close()
			return nil, err
		}
		it.offset = v.Int()
	}
	return it, nil
}

type limitIter struct {
	in            rowIter
	limit, offset int64
	emitted       int64
}

func (it *limitIter) next() ([]Value, error) {
	for it.offset > 0 {
		row, err := it.in.next()
		if err != nil || row == nil {
			return nil, err
		}
		it.offset--
	}
	if it.limit >= 0 && it.emitted >= it.limit {
		return nil, nil
	}
	row, err := it.in.next()
	if err != nil || row == nil {
		return nil, err
	}
	it.emitted++
	return row, nil
}

func (it *limitIter) close() { it.in.close() }

// ---------------------------------------------------------------------------
// Distinct

type distinctNode struct{ in planNode }

func (n *distinctNode) sch() schema      { return n.in.sch() }
func (n *distinctNode) estRows() float64 { return n.in.estRows() }

func (n *distinctNode) open(ctx *evalCtx) (rowIter, error) {
	in, err := openNode(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &distinctIter{in: in, seen: map[string]bool{}, mem: ctx.mem}, nil
}

type distinctIter struct {
	in   rowIter
	seen map[string]bool
	mem  *memAccountant
}

func (it *distinctIter) next() ([]Value, error) {
	for {
		row, err := it.in.next()
		if err != nil || row == nil {
			return nil, err
		}
		k := distinctKey(row)
		if it.seen[k] {
			continue
		}
		if err := it.mem.charge(int64(len(k)) + 48); err != nil {
			return nil, err
		}
		it.seen[k] = true
		return row, nil
	}
}

func (it *distinctIter) close() { it.in.close() }

// distinctKey encodes a row for duplicate elimination; unlike hashKey it
// keeps NULLs (two NULL rows are duplicates under DISTINCT).
func distinctKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		switch v.T {
		case TypeNull:
			b.WriteByte('0')
		case TypeInt, TypeBool:
			b.WriteByte('n')
			b.WriteString(NewFloat(float64(v.I)).Text())
		case TypeFloat:
			b.WriteByte('n')
			b.WriteString(v.Text())
		case TypeText:
			b.WriteByte('s')
			b.WriteString(v.S)
		case TypeBlob:
			b.WriteByte('b')
			b.Write(v.B)
		}
		b.WriteByte(0)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Union all

type unionAllNode struct {
	parts  []planNode
	schema schema
}

func (n *unionAllNode) sch() schema { return n.schema }

func (n *unionAllNode) estRows() float64 {
	var t float64
	for _, p := range n.parts {
		t += p.estRows()
	}
	return t
}

func (n *unionAllNode) open(ctx *evalCtx) (rowIter, error) {
	return &unionAllIter{node: n, ctx: ctx}, nil
}

type unionAllIter struct {
	node *unionAllNode
	ctx  *evalCtx
	idx  int
	cur  rowIter
}

func (it *unionAllIter) next() ([]Value, error) {
	for {
		if it.cur == nil {
			if it.idx >= len(it.node.parts) {
				return nil, nil
			}
			var err error
			it.cur, err = openNode(it.ctx, it.node.parts[it.idx])
			if err != nil {
				return nil, err
			}
			it.idx++
		}
		row, err := it.cur.next()
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		it.cur.close()
		it.cur = nil
	}
}

func (it *unionAllIter) close() {
	if it.cur != nil {
		it.cur.close()
	}
}

// ---------------------------------------------------------------------------
// Helpers

type sliceIter struct {
	rows [][]Value
	pos  int
}

func (it *sliceIter) next() ([]Value, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

func (it *sliceIter) close() {}

// materialize drains a node into a slice, polling for cancellation on a
// coarse stride. Under vectorized execution a batch-capable node is
// drained batch-at-a-time instead.
func materialize(ctx *evalCtx, n planNode) ([][]Value, error) {
	if ctx.vec && vecCapable(n) {
		return materializeVec(ctx, n)
	}
	it, err := openNode(ctx, n)
	if err != nil {
		return nil, err
	}
	defer it.close()
	var out [][]Value
	var pending int64
	for {
		if len(out)&1023 == 0 {
			if err := ctx.canceled(); err != nil {
				return nil, err
			}
			if err := ctx.mem.charge(pending); err != nil {
				return nil, err
			}
			pending = 0
		}
		row, err := it.next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			if err := ctx.mem.charge(pending); err != nil {
				return nil, err
			}
			return out, nil
		}
		out = append(out, row)
		pending += rowSliceBytes(row)
	}
}

func concatRows(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// padRight appends n NULLs to a copy of row (left outer join padding).
func padRight(row []Value, n int) []Value {
	out := make([]Value, 0, len(row)+n)
	out = append(out, row...)
	for i := 0; i < n; i++ {
		out = append(out, Null)
	}
	return out
}

// runSubquery executes a compiled subplan with the given outer row.
// Correlated subqueries deliberately stay row-at-a-time even inside a
// vectorized plan: they run once per outer row, usually touch a handful
// of rows, and often stop at the first one — batch setup costs would be
// paid per outer row with nothing to amortize them over.
func runSubquery(ctx *evalCtx, p *plan, outerRow []Value) ([][]Value, error) {
	sub := &evalCtx{snap: ctx.snap, qctx: ctx.qctx, params: ctx.params, outer: outerRow, mem: ctx.mem}
	return materialize(sub, p.root)
}

// subqueryHasRow reports whether the subplan yields at least one row.
func subqueryHasRow(ctx *evalCtx, p *plan, outerRow []Value) (bool, error) {
	sub := &evalCtx{snap: ctx.snap, qctx: ctx.qctx, params: ctx.params, outer: outerRow, mem: ctx.mem}
	it, err := p.root.open(sub)
	if err != nil {
		return false, err
	}
	defer it.close()
	row, err := it.next()
	if err != nil {
		return false, err
	}
	return row != nil, nil
}
