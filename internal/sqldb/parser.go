package sqldb

import (
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	nParams int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, errorf("unexpected trailing input at %s", p.peek())
	}
	return stmt, nil
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(n int) { p.pos = n }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return errorf("expected %q, found %s", s, p.peek())
	}
	return nil
}

// expectIdent consumes an identifier; non-reserved use of keywords as
// names is not supported (quote them instead).
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", errorf("expected identifier, found %s", t)
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, errorf("expected statement, found %s", t)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "DELETE":
		return p.parseDelete()
	case "UPDATE":
		return p.parseUpdate()
	}
	return nil, errorf("unsupported statement %s", t)
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, errorf("UNIQUE is not valid on CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	}
	return nil, errorf("expected TABLE or INDEX after CREATE, found %s", p.peek())
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	def := TableDef{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				idx := def.ColumnIndex(col)
				if idx < 0 {
					return nil, errorf("PRIMARY KEY references unknown column %s", col)
				}
				def.PrimaryKey = append(def.PrimaryKey, idx)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			if def.ColumnIndex(col.Name) >= 0 {
				return nil, errorf("duplicate column %s", col.Name)
			}
			def.Columns = append(def.Columns, col)
			// Inline PRIMARY KEY on a single column.
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				if len(def.PrimaryKey) > 0 {
					return nil, errorf("multiple primary keys")
				}
				def.PrimaryKey = []int{len(def.Columns) - 1}
			}
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Def: def}, nil
}

func (p *parser) parseColumnDef() (Column, error) {
	name, err := p.expectIdent()
	if err != nil {
		return Column{}, err
	}
	typ, err := p.parseTypeName()
	if err != nil {
		return Column{}, err
	}
	col := Column{Name: name, Type: typ}
	for {
		if p.acceptKeyword("NOT") {
			if err := p.expectKeyword("NULL"); err != nil {
				return Column{}, err
			}
			col.NotNull = true
			continue
		}
		break
	}
	return col, nil
}

func (p *parser) parseTypeName() (Type, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return TypeNull, errorf("expected type name, found %s", t)
	}
	p.pos++
	switch t.text {
	case "INTEGER", "INT":
		return TypeInt, nil
	case "REAL", "FLOAT":
		return TypeFloat, nil
	case "TEXT":
		return TypeText, nil
	case "VARCHAR":
		// Accept VARCHAR(n); the length is advisory.
		if p.acceptSymbol("(") {
			if p.peek().kind != tokInt {
				return TypeNull, errorf("expected length in VARCHAR(n)")
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return TypeNull, err
			}
		}
		return TypeText, nil
	case "BOOLEAN":
		return TypeBool, nil
	case "BLOB":
		return TypeBlob, nil
	}
	return TypeNull, errorf("unknown type %s", t)
}

func (p *parser) parseCreateIndex(unique bool) (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	}
	return nil, errorf("expected TABLE or INDEX after DROP, found %s", p.peek())
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
		return stmt, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, errorf("only UNION ALL is supported")
		}
		rest, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.UnionAll = rest
		return stmt, nil
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Offset = o
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.peek().kind == tokIdent {
		save := p.save()
		name := p.next().text
		if p.acceptSymbol(".") && p.acceptSymbol("*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.restore(save)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseFrom() ([]FromItem, error) {
	var items []FromItem
	first, err := p.parseFromSource()
	if err != nil {
		return nil, err
	}
	items = append(items, first)
	for {
		switch {
		case p.acceptSymbol(","):
			it, err := p.parseFromSource()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		case p.peekJoin():
			kind := "INNER"
			if p.acceptKeyword("LEFT") {
				p.acceptKeyword("OUTER")
				kind = "LEFT"
			} else if p.acceptKeyword("CROSS") {
				kind = "CROSS"
			} else {
				p.acceptKeyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			it, err := p.parseFromSource()
			if err != nil {
				return nil, err
			}
			it.JoinKind = kind
			if kind != "CROSS" {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				it.On = on
			}
			items = append(items, it)
		default:
			return items, nil
		}
	}
}

func (p *parser) peekJoin() bool {
	t := p.peek()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "JOIN", "INNER", "LEFT", "CROSS":
		return true
	}
	return false
}

func (p *parser) parseFromSource() (FromItem, error) {
	var item FromItem
	if p.acceptSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return item, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		item.Sub = sub
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Table = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	if item.Sub != nil && item.Alias == "" {
		return item, errorf("derived table requires an alias")
	}
	return item, nil
}

// Expression grammar, lowest precedence first.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

var compareOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && compareOps[t.text] {
			p.pos++
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, L: left, R: right}
			continue
		}
		if t.kind == tokKeyword {
			not := false
			save := p.save()
			if t.text == "NOT" {
				p.pos++
				not = true
				t = p.peek()
			}
			switch t.text {
			case "LIKE":
				p.pos++
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				like := &LikeExpr{X: left, Pattern: pat, Not: not}
				if p.acceptKeyword("ESCAPE") {
					esc, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					like.Escape = esc
				}
				left = like
				continue
			case "IN":
				p.pos++
				in, err := p.parseInTail(left, not)
				if err != nil {
					return nil, err
				}
				left = in
				continue
			case "BETWEEN":
				p.pos++
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}
				continue
			case "IS":
				if not {
					// "x NOT IS" is invalid; backtrack.
					p.restore(save)
					return left, nil
				}
				p.pos++
				isNot := p.acceptKeyword("NOT")
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				left = &IsNullExpr{X: left, Not: isNot}
				continue
			}
			if not {
				p.restore(save)
			}
		}
		return left, nil
	}
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InExpr{X: left, List: list, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.pos++
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errorf("bad integer literal %s: %v", t.text, err)
		}
		return &Literal{Val: NewInt(i)}, nil
	case tokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errorf("bad float literal %s: %v", t.text, err)
		}
		return &Literal{Val: NewFloat(f)}, nil
	case tokString:
		p.pos++
		return &Literal{Val: NewText(t.text)}, nil
	case tokParam:
		p.pos++
		e := &Param{Idx: p.nParams}
		p.nParams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Literal{Val: Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "EXISTS":
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "NOT":
			p.pos++
			x, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", X: x}, nil
		}
		return nil, errorf("unexpected keyword %s in expression", t)
	case tokIdent:
		return p.parseIdentExpr()
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errorf("unexpected token %s in expression", t)
}

func (p *parser) parseIdentExpr() (Expr, error) {
	name := p.next().text
	// Function call?
	if p.acceptSymbol("(") {
		fn := &FuncExpr{Name: strings.ToUpper(name)}
		if p.acceptSymbol("*") {
			fn.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		if p.acceptSymbol(")") {
			return fn, nil
		}
		if p.acceptKeyword("DISTINCT") {
			fn.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fn, nil
	}
	// Qualified column?
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if !(p.peek().kind == tokKeyword && p.peek().text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	p.next() // CAST
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{X: x, To: typ}, nil
}
