package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fillWide inserts n rows of (id, grp, val) into table t on db.
func fillWide(t *testing.T, db *Database, n int) {
	t.Helper()
	batch := make([][]Value, 0, 1024)
	for i := 0; i < n; i++ {
		batch = append(batch, []Value{
			NewInt(int64(i)),
			NewInt(int64(i % 97)),
			NewText(fmt.Sprintf("val-%06d", i)),
		})
		if len(batch) == cap(batch) {
			if _, err := db.BulkInsert("t", batch); err != nil {
				t.Fatalf("bulk insert: %v", err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := db.BulkInsert("t", batch); err != nil {
			t.Fatalf("bulk insert: %v", err)
		}
	}
}

func dumpRows(t *testing.T, db *Database, q string) string {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var sb strings.Builder
	for _, r := range rows.Data {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			if v.IsNull() {
				sb.WriteString("<null>")
			} else {
				sb.WriteString(v.Text())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestTinyPoolDifferential runs the same workload — bulk load well past
// the page cap, point and range queries, COW updates and deletes —
// against an unbounded engine and a 4-page pool, asserting identical
// results throughout and that the pool actually cycled (misses,
// evictions, spills all nonzero).
func TestTinyPoolDifferential(t *testing.T) {
	const rows = 20 * heapPageSize // 20 full pages plus change
	ddl := []string{
		`CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val TEXT)`,
		`CREATE INDEX t_grp ON t (grp)`,
	}
	legacy, pooled := New(), New()
	pooled.SetBufferPool(4)
	for _, db := range []*Database{legacy, pooled} {
		for _, s := range ddl {
			db.MustExec(s)
		}
		fillWide(t, db, rows+7)
	}
	mutate := []string{
		`UPDATE t SET val = 'touched' WHERE grp = 13`,
		`DELETE FROM t WHERE grp = 55`,
		`UPDATE t SET grp = 200 WHERE id < 600`,
		`INSERT INTO t VALUES (999999, 201, 'tail')`,
	}
	queries := []string{
		`SELECT COUNT(*), SUM(grp) FROM t`,
		`SELECT id, val FROM t WHERE grp = 13 ORDER BY id`,
		`SELECT id FROM t WHERE grp = 55`,
		`SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp`,
		`SELECT id, grp, val FROM t WHERE id >= 5000 AND id < 5100 ORDER BY id`,
	}
	check := func(stage string) {
		for _, q := range queries {
			want := dumpRows(t, legacy, q)
			got := dumpRows(t, pooled, q)
			if got != want {
				t.Fatalf("%s: %s diverges\n-- legacy --\n%.2000s\n-- pooled --\n%.2000s", stage, q, want, got)
			}
		}
	}
	check("after load")
	for _, m := range mutate {
		legacy.MustExec(m)
		pooled.MustExec(m)
	}
	check("after mutations")

	bp := pooled.Stats().BufferPool
	if bp.Cap != 4 {
		t.Fatalf("cap = %d, want 4", bp.Cap)
	}
	if bp.Misses == 0 || bp.Evictions == 0 || bp.Spilled == 0 {
		t.Fatalf("pool did not cycle: %+v", bp)
	}
	if bp.Hits == 0 {
		t.Fatalf("no pool hits recorded: %+v", bp)
	}
	if bp.ReadErrors != 0 || bp.SpillErrors != 0 {
		t.Fatalf("unexpected IO errors: %+v", bp)
	}
	lp := legacy.Stats().BufferPool
	if lp.Spilled != 0 || lp.Evictions != 0 {
		t.Fatalf("unbounded pool spilled: %+v", lp)
	}
}

// TestPageInFaultSweep drives read faults into the pages file of a
// durable database with a tiny pool: each injected fault must fail only
// the query that needed the page — with ErrPageIO in its chain — and
// leave the pool and snapshot intact, so after Heal the same query
// succeeds with correct results.
func TestPageInFaultSweep(t *testing.T) {
	const rows = 12 * heapPageSize
	fv := NewFaultVFS(NewMemVFS(), -1)
	dopts := DurableOptions{BufferPoolPages: 2}

	d, err := OpenDurable(fv, dopts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := d.DB()
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val TEXT)`)
	db.MustExec(`CREATE INDEX t_grp ON t (grp)`)
	fillWide(t, db, rows)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: the v3 checkpoint adopts pages lazily, so queries page in
	// from pages.db through the fault seam.
	d, err = OpenDurable(fv, dopts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	db = d.DB()

	const q = `SELECT COUNT(*), SUM(id) FROM t`
	want := dumpRows(t, db, q)

	faults := 0
	for step := int64(0); ; step += 96 << 10 {
		fv.SetReadFailAfter(step)
		_, qerr := db.Query(q)
		tripped := fv.ReadFailed()
		fv.Heal()
		if qerr != nil {
			if !errors.Is(qerr, ErrPageIO) {
				t.Fatalf("step %d: error lacks ErrPageIO: %v", step, qerr)
			}
			if !tripped {
				t.Fatalf("step %d: query failed without an injected fault: %v", step, qerr)
			}
			faults++
			// The failed page-in must poison nothing: the same query runs
			// clean immediately after the fault clears.
			got := dumpRows(t, db, q)
			if got != want {
				t.Fatalf("step %d: post-heal result diverges:\n%s\nvs\n%s", step, got, want)
			}
			continue
		}
		if !tripped {
			break // budget larger than the whole run: sweep complete
		}
		// Fault fired but the query survived (page was still resident) —
		// acceptable; results must still be right.
	}
	if faults == 0 {
		t.Fatalf("sweep injected no page-in faults (pool never paged?)")
	}
	bp := db.Stats().BufferPool
	if bp.ReadErrors == 0 {
		t.Fatalf("no read errors counted despite %d faults: %+v", faults, bp)
	}

	// Writes still work after healed read faults.
	db.MustExec(`INSERT INTO t VALUES (888888, 12, 'post-fault')`)
	after, err := db.Query(`SELECT val FROM t WHERE id = 888888`)
	if err != nil || after.Len() != 1 {
		t.Fatalf("post-fault insert unreadable: %v %d", err, after.Len())
	}
}

// TestBufferPoolStatsSurface asserts Database.Stats carries the pool
// block with a meaningful pinned high-water mark.
func TestBufferPoolStatsSurface(t *testing.T) {
	db := New()
	db.SetBufferPool(3)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val TEXT)`)
	fillWide(t, db, 8*heapPageSize)
	if _, err := db.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("scan: %v", err)
	}
	bp := db.Stats().BufferPool
	if bp.Cap != 3 {
		t.Fatalf("cap = %d", bp.Cap)
	}
	if bp.PinnedHighWater == 0 {
		t.Fatalf("pinned high water never moved: %+v", bp)
	}
	if bp.Pinned != 0 {
		t.Fatalf("pins leaked: %+v", bp)
	}
	if bp.Resident > bp.Cap+int(bp.Pinned)+1 {
		t.Fatalf("resident %d far above cap %d: %+v", bp.Resident, bp.Cap, bp)
	}
}
