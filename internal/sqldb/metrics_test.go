package sqldb

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNormalizeSQL(t *testing.T) {
	a := NormalizeSQL(`SELECT n FROM nums WHERE n = 42 AND label = 'x'`)
	b := NormalizeSQL("select\n\tn from nums where n=7 and label='yyyy'")
	if a != b {
		t.Errorf("literal variants normalize differently:\n%q\n%q", a, b)
	}
	c := NormalizeSQL(`SELECT n FROM nums WHERE n = ? AND label = ?`)
	if a != c {
		t.Errorf("param form normalizes differently:\n%q\n%q", a, c)
	}
	if strings.ContainsAny(a, "47") || strings.Contains(a, "'x'") {
		t.Errorf("literals survived normalization: %q", a)
	}
	// Input that does not lex comes back trimmed but otherwise unchanged.
	if got := NormalizeSQL("  SELECT 'unterminated  "); got != "SELECT 'unterminated" {
		t.Errorf("unlexable input: %q", got)
	}
}

func TestLatencyBucketBounds(t *testing.T) {
	for i, d := range []time.Duration{0, 4 * time.Microsecond} {
		if got := latencyBucket(d); got != 0 {
			t.Errorf("case %d: bucket(%v) = %d, want 0", i, d, got)
		}
	}
	if got := latencyBucket(5 * time.Microsecond); got != 1 {
		t.Errorf("bucket(5µs) = %d, want 1", got)
	}
	if got := latencyBucket(2 * time.Second); got != latencyBuckets-1 {
		t.Errorf("bucket(2s) = %d, want overflow %d", got, latencyBuckets-1)
	}
}

// TestMetricsAccumulate checks the counters Query folds into the
// registry: totals, histogram mass, template grouping and per-operator
// kind totals.
func TestMetricsAccumulate(t *testing.T) {
	db := testDB(t)
	base := db.Metrics()

	for i := 1; i <= 4; i++ {
		rows, err := db.Query(fmt.Sprintf(`SELECT n FROM nums WHERE n <= %d`, i))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != i {
			t.Fatalf("cardinality %d != %d", rows.Len(), i)
		}
	}
	if _, err := db.Query(`SELECT grp, COUNT(*) FROM nums GROUP BY grp`); err != nil {
		t.Fatal(err)
	}

	m := db.Metrics()
	if got := m.Queries - base.Queries; got != 5 {
		t.Errorf("queries delta = %d, want 5", got)
	}
	if got := m.Rows - base.Rows; got != 1+2+3+4+2 {
		t.Errorf("rows delta = %d, want 12", got)
	}
	if m.QueryTime <= base.QueryTime {
		t.Error("query time did not advance")
	}
	var hist uint64
	for _, b := range m.Latency {
		hist += b.Count
	}
	if hist != m.Queries {
		t.Errorf("histogram mass %d != queries %d", hist, m.Queries)
	}
	// The four literal variants share one normalized template.
	wantTpl := NormalizeSQL(`SELECT n FROM nums WHERE n <= 1`)
	found := false
	for _, ts := range m.Templates {
		if ts.Template == wantTpl {
			found = true
			if ts.Count != 4 {
				t.Errorf("template count = %d, want 4", ts.Count)
			}
			if ts.Mean() > ts.Max {
				t.Errorf("mean %v > max %v", ts.Mean(), ts.Max)
			}
		}
	}
	if !found {
		t.Errorf("template %q not in snapshot", wantTpl)
	}
	// Operator totals must include the kinds these plans use.
	kinds := map[string]OpTotalStats{}
	for _, op := range m.Operators {
		kinds[op.Kind] = op
	}
	for _, k := range []string{"IndexScan", "Aggregate", "SeqScan", "Project"} {
		if kinds[k].Opens == 0 {
			t.Errorf("operator %s has no recorded opens: %+v", k, m.Operators)
		}
	}
	if agg := kinds["Aggregate"]; agg.Rows < 2 {
		t.Errorf("aggregate rows = %d, want >= 2", agg.Rows)
	}
}

func TestMetricsPlanCompiles(t *testing.T) {
	db := testDB(t)
	base := db.Metrics()
	const sql = `SELECT n FROM nums WHERE grp = 'even'`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	// Three runs of one statement compile once; the cache serves the rest.
	if got := m.PlanCompiles - base.PlanCompiles; got != 1 {
		t.Errorf("plan compiles delta = %d, want 1", got)
	}
}

func TestMetricsQueryError(t *testing.T) {
	db := testDB(t)
	base := db.Metrics()
	if _, err := db.Query(`SELECT (SELECT n FROM nums)`); err == nil {
		t.Fatal("expected scalar-subquery error")
	}
	m := db.Metrics()
	if got := m.QueryErrors - base.QueryErrors; got != 1 {
		t.Errorf("query errors delta = %d, want 1", got)
	}
	if m.Queries != base.Queries {
		t.Errorf("failed query counted as success")
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := testDB(t)
	db.SetSlowQueryThreshold(time.Nanosecond)
	for i := 0; i < 40; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT %d FROM nums WHERE n = 1`, i)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if len(m.SlowQueries) != slowLogCap {
		t.Fatalf("slow log length = %d, want %d", len(m.SlowQueries), slowLogCap)
	}
	// Ring keeps the newest slowLogCap entries, oldest first.
	if want := fmt.Sprintf(`SELECT %d FROM nums WHERE n = 1`, 40-slowLogCap); m.SlowQueries[0].SQL != want {
		t.Errorf("oldest retained = %q, want %q", m.SlowQueries[0].SQL, want)
	}
	if last := m.SlowQueries[len(m.SlowQueries)-1]; last.SQL != `SELECT 39 FROM nums WHERE n = 1` || last.Rows != 1 {
		t.Errorf("newest retained = %+v", last)
	}

	// Zero threshold disables the log.
	db.SetSlowQueryThreshold(0)
	if _, err := db.Query(`SELECT 999 FROM nums WHERE n = 1`); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().SlowQueries; len(got) != slowLogCap || got[len(got)-1].SQL != `SELECT 39 FROM nums WHERE n = 1` {
		t.Errorf("disabled log still recorded: %+v", got[len(got)-1])
	}
}

// TestTemplateOverflow drives more distinct templates than the map
// holds; the excess must fold into the overflow bucket instead of
// growing without bound.
func TestTemplateOverflow(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER PRIMARY KEY)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	base := len(db.Metrics().Templates)
	const extra = maxTemplates + 20
	for i := 0; i < extra; i++ {
		// Each statement has a distinct conjunct count, hence a distinct
		// template even after literal normalization.
		sql := `SELECT a FROM t WHERE a = 1` + strings.Repeat(` AND a = 1`, i)
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if len(m.Templates) > maxTemplates+1 {
		t.Errorf("template map grew to %d, cap is %d", len(m.Templates), maxTemplates+1)
	}
	var overflow *TemplateStats
	for i := range m.Templates {
		if m.Templates[i].Template == overflowTemplate {
			overflow = &m.Templates[i]
		}
	}
	if overflow == nil {
		t.Fatalf("no %q bucket among %d templates", overflowTemplate, len(m.Templates))
	}
	if want := uint64(base + extra - maxTemplates); overflow.Count != want {
		t.Errorf("overflow count = %d, want %d", overflow.Count, want)
	}
}

// TestPreparedQueryRecorded checks the Prepared path feeds the same
// registry.
func TestPreparedQueryRecorded(t *testing.T) {
	db := testDB(t)
	p, err := db.Prepare(`SELECT n FROM nums WHERE n <= ?`)
	if err != nil {
		t.Fatal(err)
	}
	base := db.Metrics()
	for i := 1; i <= 3; i++ {
		rows, err := p.Query(NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != i {
			t.Fatalf("prepared cardinality %d != %d", rows.Len(), i)
		}
	}
	m := db.Metrics()
	if got := m.Queries - base.Queries; got != 3 {
		t.Errorf("prepared queries delta = %d, want 3", got)
	}
	if got := m.Rows - base.Rows; got != 6 {
		t.Errorf("prepared rows delta = %d, want 6", got)
	}
}
