package sqldb

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func collectAll(t *btree) []btreeEntry {
	var out []btreeEntry
	c := t.seek(nil)
	for c.valid() {
		out = append(out, c.entry())
		c.advance()
	}
	return out
}

func TestBtreeOrderedInsertScan(t *testing.T) {
	tr := newBtree(1)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert([]Value{NewInt(int64(i))}, int64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	got := collectAll(tr)
	if len(got) != n {
		t.Fatalf("scan yielded %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.key[0].I != int64(i) {
			t.Fatalf("entry %d has key %d", i, e.key[0].I)
		}
	}
	if d := tr.DistinctPrefix(1); d != n {
		t.Errorf("distinct = %d, want %d", d, n)
	}
}

// TestBtreeEqualKeyDeleteReinsert is the regression for the separator
// descent bug: with >64 equal keys (so leaves split), deleting and
// re-inserting every (key, rid) must not duplicate or lose entries.
// This is exactly what an UPDATE on a non-key column does to an index.
func TestBtreeEqualKeyDeleteReinsert(t *testing.T) {
	tr := newBtree(1)
	const n = 300
	key := []Value{NewText("same")}
	for i := 0; i < n; i++ {
		tr.Insert(key, int64(i))
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(key, int64(i)) {
			t.Fatalf("delete of rid %d failed", i)
		}
		tr.Insert(key, int64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d after delete/reinsert cycle, want %d", tr.Len(), n)
	}
	got := collectAll(tr)
	if len(got) != n {
		t.Fatalf("scan yielded %d entries, want %d", len(got), n)
	}
	seen := map[int64]bool{}
	for _, e := range got {
		if seen[e.rid] {
			t.Fatalf("duplicate rid %d in scan", e.rid)
		}
		seen[e.rid] = true
	}
	if d := tr.DistinctPrefix(1); d != 1 {
		t.Errorf("distinct = %d, want 1", d)
	}
}

func TestBtreeRangeScan(t *testing.T) {
	tr := newBtree(1)
	for i := 0; i < 500; i++ {
		tr.Insert([]Value{NewInt(int64(i % 50)), NewInt(int64(i))}, int64(i))
	}
	// Prefix scan: all entries with first column 7.
	c := tr.seek([]Value{NewInt(7)})
	count := 0
	for c.valid() {
		e := c.entry()
		if prefixCompare(e.key, []Value{NewInt(7)}) > 0 {
			break
		}
		if e.key[0].I != 7 {
			t.Fatalf("prefix scan hit key %v", e.key)
		}
		count++
		c.advance()
	}
	if count != 10 {
		t.Fatalf("prefix scan found %d entries, want 10", count)
	}
	// seekAfter: strictly greater than prefix 7.
	c = tr.seekAfter([]Value{NewInt(7)})
	if !c.valid() || c.entry().key[0].I != 8 {
		t.Fatalf("seekAfter(7) landed on %v", c.entry().key)
	}
}

// Property: the tree agrees with a reference sorted slice under random
// interleaved inserts and deletes.
func TestBtreeAgainstReferenceModel(t *testing.T) {
	type op struct {
		Key uint8
		Rid uint8
		Del bool
	}
	check := func(ops []op) bool {
		tr := newBtree(1)
		ref := map[string]bool{}
		for _, o := range ops {
			key := []Value{NewInt(int64(o.Key % 16))}
			rid := int64(o.Rid % 32)
			id := fmt.Sprintf("%d/%d", o.Key%16, rid)
			if o.Del {
				tr.Delete(key, rid)
				delete(ref, id)
			} else {
				tr.Insert(key, rid)
				ref[id] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		got := collectAll(tr)
		if len(got) != len(ref) {
			return false
		}
		var want []string
		for id := range ref {
			want = append(want, id)
		}
		gotIDs := make([]string, len(got))
		for i, e := range got {
			gotIDs[i] = fmt.Sprintf("%d/%d", e.key[0].I, e.rid)
		}
		sort.Strings(want)
		sorted := append([]string{}, gotIDs...)
		sort.Strings(sorted)
		for i := range want {
			if want[i] != sorted[i] {
				return false
			}
		}
		// Scan order must be non-decreasing.
		for i := 1; i < len(got); i++ {
			if compareEntry(got[i-1], got[i].key, got[i].rid) > 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBtreeDistinctPrefixTracking(t *testing.T) {
	tr := newBtree(1)
	// 20 names × 5 values each.
	for n := 0; n < 20; n++ {
		for v := 0; v < 5; v++ {
			tr.Insert([]Value{NewText(fmt.Sprintf("name%02d", n)), NewInt(int64(v))}, int64(n*5+v))
		}
	}
	if d := tr.DistinctPrefix(1); d < 18 || d > 20 {
		t.Errorf("distinct(1) = %d, want ~20", d)
	}
	if d := tr.DistinctPrefix(2); d < 95 || d > 100 {
		t.Errorf("distinct(2) = %d, want ~100", d)
	}
}
