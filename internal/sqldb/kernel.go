package sqldb

import "strings"

// Predicate kernels: specialized row predicates compiled from sargable
// comparison shapes (column vs constant, column vs column, and AND
// chains of those). The batch operators use them to bypass the generic
// expression-closure interpreter on the hot filter path — the closure
// tree costs several indirect calls and Value copies per row, the
// kernel is one call with an inlined comparison. A kernel only decides
// rows whose runtime types fall inside its specialization; anything
// else (TEXT columns coercing numerically against numeric constants,
// BLOB operands, mixed incomparable types) reports ok=false and the
// caller falls back to the compiled expression, so the loose coercion
// semantics stay defined by one implementation: the row engine's.
//
// Kernels exist only on the batch path. The row engine always runs the
// closures — it is the correctness oracle the differential battery and
// the fuzz target compare kernels against.

// rowPred is a specialized predicate. keep reports whether the row
// survives the filter (SQL NULL results filter like false); ok=false
// means the kernel cannot decide this row and the compiled expression
// must be consulted instead.
type rowPred func(row []Value) (keep, ok bool)

// cmpFlags precomputes which comparison outcomes satisfy an operator.
type cmpFlags struct{ lt, eq, gt bool }

func flagsFor(op string) (cmpFlags, bool) {
	switch op {
	case "=":
		return cmpFlags{eq: true}, true
	case "<>":
		return cmpFlags{lt: true, gt: true}, true
	case "<":
		return cmpFlags{lt: true}, true
	case "<=":
		return cmpFlags{lt: true, eq: true}, true
	case ">":
		return cmpFlags{gt: true}, true
	case ">=":
		return cmpFlags{gt: true, eq: true}, true
	}
	return cmpFlags{}, false
}

// swap mirrors the flags for a flipped operand order (c < col ≡ col > c).
func (f cmpFlags) swap() cmpFlags { return cmpFlags{lt: f.gt, eq: f.eq, gt: f.lt} }

func (f cmpFlags) holdsInt(a, b int64) bool {
	switch {
	case a < b:
		return f.lt
	case a > b:
		return f.gt
	default:
		return f.eq
	}
}

func (f cmpFlags) holdsFloat(a, b float64) bool {
	switch {
	case a < b:
		return f.lt
	case a > b:
		return f.gt
	default:
		return f.eq
	}
}

func (f cmpFlags) holdsCmp(c int) bool {
	switch {
	case c < 0:
		return f.lt
	case c > 0:
		return f.gt
	default:
		return f.eq
	}
}

// kernelCol resolves an expression to a column position in sch when it
// is a plain reference to the current row (outer references and params
// are per-execution, not per-row, and stay on the closure path).
func kernelCol(e Expr, sch schema) (int, bool) {
	switch e := e.(type) {
	case *ColumnRef:
		idx, err := sch.resolve(e.Table, e.Name)
		if err != nil {
			return 0, false
		}
		return idx, true
	case *inputRef:
		return e.idx, true
	}
	return 0, false
}

// compileRowPred builds a kernel for e against sch, or nil when e
// contains anything beyond AND-ed simple comparisons.
func compileRowPred(e Expr, sch schema) rowPred {
	be, isBin := e.(*BinaryExpr)
	if !isBin {
		return nil
	}
	if be.Op == "AND" {
		l := compileRowPred(be.L, sch)
		if l == nil {
			return nil
		}
		r := compileRowPred(be.R, sch)
		if r == nil {
			return nil
		}
		// Filter semantics let AND short-circuit on a definite false;
		// an undecidable side sends the whole row to the closure (which
		// re-evaluates both sides — expressions are pure).
		return func(row []Value) (bool, bool) {
			keep, ok := l(row)
			if !ok {
				return false, false
			}
			if !keep {
				return false, true
			}
			return r(row)
		}
	}
	f, ok := flagsFor(be.Op)
	if !ok {
		return nil
	}
	if ci, isCol := kernelCol(be.L, sch); isCol {
		if lit, isLit := be.R.(*Literal); isLit {
			return colConstPred(ci, f, lit.Val)
		}
		if cj, isCol2 := kernelCol(be.R, sch); isCol2 {
			return colColPred(ci, cj, f)
		}
		return nil
	}
	if lit, isLit := be.L.(*Literal); isLit {
		if cj, isCol2 := kernelCol(be.R, sch); isCol2 {
			return colConstPred(cj, f.swap(), lit.Val)
		}
	}
	return nil
}

// colConstPred specializes on the constant's type; the row side still
// switches on its runtime type because heap columns are loosely typed.
func colConstPred(idx int, f cmpFlags, lit Value) rowPred {
	switch lit.T {
	case TypeInt, TypeBool:
		c := lit.I
		return func(row []Value) (bool, bool) {
			v := &row[idx]
			switch v.T {
			case TypeInt, TypeBool:
				return f.holdsInt(v.I, c), true
			case TypeFloat:
				return f.holdsFloat(v.F, float64(c)), true
			case TypeNull:
				return false, true
			}
			return false, false // TEXT parses numerically etc. — closure decides
		}
	case TypeFloat:
		c := lit.F
		return func(row []Value) (bool, bool) {
			v := &row[idx]
			switch v.T {
			case TypeInt, TypeBool:
				return f.holdsFloat(float64(v.I), c), true
			case TypeFloat:
				return f.holdsFloat(v.F, c), true
			case TypeNull:
				return false, true
			}
			return false, false
		}
	case TypeText:
		c := lit.S
		return func(row []Value) (bool, bool) {
			v := &row[idx]
			switch v.T {
			case TypeText:
				return f.holdsCmp(strings.Compare(v.S, c)), true
			case TypeNull:
				return false, true
			}
			return false, false // numeric vs numeric-looking text — closure decides
		}
	case TypeNull:
		// Comparison against NULL is unknown for every row: never keep.
		return func([]Value) (bool, bool) { return false, true }
	}
	return nil
}

func colColPred(i, j int, f cmpFlags) rowPred {
	return func(row []Value) (bool, bool) {
		a, b := &row[i], &row[j]
		if a.T == TypeNull || b.T == TypeNull {
			return false, true
		}
		aInt := a.T == TypeInt || a.T == TypeBool
		bInt := b.T == TypeInt || b.T == TypeBool
		switch {
		case aInt && bInt:
			return f.holdsInt(a.I, b.I), true
		case a.T.isNumeric() && b.T.isNumeric():
			return f.holdsFloat(a.Float(), b.Float()), true
		case a.T == TypeText && b.T == TypeText:
			return f.holdsCmp(strings.Compare(a.S, b.S)), true
		}
		return false, false
	}
}

// evalPred evaluates a pushed filter with the kernel fast path and the
// compiled expression as fallback (and as the only path when no kernel
// was derived).
func evalPred(ctx *evalCtx, kernel rowPred, filter compiledExpr, row []Value) (bool, error) {
	if kernel != nil {
		if keep, ok := kernel(row); ok {
			return keep, nil
		}
	}
	v, err := filter(ctx, row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
