package sqldb

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL, c REAL, d BOOLEAN, e VARCHAR(20))`)
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Def.Name != "t" || len(ct.Def.Columns) != 5 {
		t.Fatalf("def = %+v", ct.Def)
	}
	if ct.Def.Columns[0].Type != TypeInt || ct.Def.Columns[1].Type != TypeText ||
		ct.Def.Columns[2].Type != TypeFloat || ct.Def.Columns[3].Type != TypeBool ||
		ct.Def.Columns[4].Type != TypeText {
		t.Fatalf("column types wrong: %+v", ct.Def.Columns)
	}
	if !ct.Def.Columns[1].NotNull {
		t.Error("b should be NOT NULL")
	}
	if len(ct.Def.PrimaryKey) != 1 || ct.Def.PrimaryKey[0] != 0 {
		t.Errorf("primary key = %v", ct.Def.PrimaryKey)
	}
}

func TestParseCompositePrimaryKey(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))`)
	ct := stmt.(*CreateTableStmt)
	if len(ct.Def.PrimaryKey) != 2 {
		t.Fatalf("pk = %v", ct.Def.PrimaryKey)
	}
}

func TestParseSelectShapes(t *testing.T) {
	cases := []string{
		`SELECT 1`,
		`SELECT * FROM t`,
		`SELECT t.* FROM t`,
		`SELECT a, b AS bee, a + b * 2 FROM t WHERE a > 1 AND NOT (b = 2 OR c < 3)`,
		`SELECT a FROM t1, t2 WHERE t1.x = t2.y`,
		`SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 ON t2.z = t3.w`,
		`SELECT a FROM t1 CROSS JOIN t2`,
		`SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d), COUNT(DISTINCT e) FROM t GROUP BY f HAVING COUNT(*) > 2`,
		`SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5`,
		`SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT c FROM u)`,
		`SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)`,
		`SELECT a FROM t WHERE b BETWEEN 1 AND 10 AND c NOT BETWEEN 2 AND 3`,
		`SELECT a FROM t WHERE b LIKE 'x%' ESCAPE '\'`,
		`SELECT a FROM t WHERE b IS NULL OR c IS NOT NULL`,
		`SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t`,
		`SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t`,
		`SELECT CAST(a AS TEXT) FROM t`,
		`SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1`,
		`SELECT a FROM (SELECT b AS a FROM u) sub WHERE a > 0`,
		`SELECT a FROM t WHERE x = ? AND y > ?`,
		`SELECT "quoted ident", 'string' FROM "weird table"`,
		`SELECT LENGTH(a) || '!' FROM t`,
		`SELECT -a, +b FROM t`,
		`SELECT (SELECT MAX(x) FROM u) FROM t`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`SELECT`, "expected"},
		{`SELECT a FROM`, "expected identifier"},
		{`SELECT a FROM t WHERE`, "unexpected token"},
		{`CREATE TABLE t (a BADTYPE)`, "type"},
		{`INSERT INTO t VALUES`, `expected "("`},
		{`SELECT a FROM t UNION SELECT b FROM u`, "UNION ALL"},
		{`SELECT a FROM t trailing garbage ON`, "trailing"},
		{`SELECT 'unterminated`, "unterminated"},
		{`SELECT "unterminated`, "unterminated"},
		{`SELECT a FROM (SELECT 1)`, "alias"},
		{`DELETE t`, "FROM"},
		{`SELECT CASE END FROM t`, "unexpected keyword"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("parse %q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("parse %q: error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestParseInsertForms(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	ins := stmt.(*InsertStmt)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	stmt = mustParse(t, `INSERT INTO t SELECT a, b FROM u WHERE a > 0`)
	ins = stmt.(*InsertStmt)
	if ins.Select == nil {
		t.Fatal("expected INSERT ... SELECT")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	stmt := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE c = 2`)
	up := stmt.(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	stmt = mustParse(t, `DELETE FROM t`)
	del := stmt.(*DeleteStmt)
	if del.Where != nil {
		t.Fatal("expected no WHERE")
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a -- comment here\nFROM t -- another\n")
	if _, ok := stmt.(*SelectStmt); !ok {
		t.Fatalf("got %T", stmt)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT 1 + 2 * 3`)
	sel := stmt.(*SelectStmt)
	b, ok := sel.Items[0].Expr.(*BinaryExpr)
	if !ok || b.Op != "+" {
		t.Fatalf("top op = %v", sel.Items[0].Expr)
	}
	r, ok := b.R.(*BinaryExpr)
	if !ok || r.Op != "*" {
		t.Fatalf("* must bind tighter: %v", b.R)
	}
	// AND binds tighter than OR.
	stmt = mustParse(t, `SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`)
	w := stmt.(*SelectStmt).Where.(*BinaryExpr)
	if w.Op != "OR" {
		t.Fatalf("top where op = %s", w.Op)
	}
}

func TestParamNumbering(t *testing.T) {
	stmt := mustParse(t, `SELECT ? FROM t WHERE a = ? AND b = ?`)
	sel := stmt.(*SelectStmt)
	p0 := sel.Items[0].Expr.(*Param)
	if p0.Idx != 0 {
		t.Fatalf("first param idx = %d", p0.Idx)
	}
	and := sel.Where.(*BinaryExpr)
	p1 := and.L.(*BinaryExpr).R.(*Param)
	p2 := and.R.(*BinaryExpr).R.(*Param)
	if p1.Idx != 1 || p2.Idx != 2 {
		t.Fatalf("param idxs = %d, %d", p1.Idx, p2.Idx)
	}
}
