package sqldb

// AST node definitions for the SQL subset. The parser produces these; the
// planner compiles them into iterator trees.

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Def TableDef
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct{ Name string }

// DropIndexStmt is DROP INDEX.
type DropIndexStmt struct{ Name string }

// InsertStmt is INSERT INTO table [(cols)] VALUES (...),(...) or
// INSERT INTO table [(cols)] SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// DeleteStmt is DELETE FROM table [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// SelectStmt is a (possibly UNION ALL-chained) SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	// UnionAll chains the next SELECT in a UNION ALL sequence.
	UnionAll *SelectStmt
}

// SelectItem is one projection: an expression with optional alias, or a
// star (optionally qualified: t.*).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// FromItem is one source in the FROM clause: a base table or a derived
// table (subquery), with an optional alias, plus how it joins to the
// preceding items.
type FromItem struct {
	Table string
	Sub   *SelectStmt
	Alias string
	// JoinKind is "" for the first item or comma-joins, "INNER" or
	// "LEFT" for explicit JOIN syntax. On holds the ON condition.
	JoinKind string
	On       Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is any scalar expression.
type Expr interface{ expr() }

// ColumnRef names a column, optionally qualified by table alias.
type ColumnRef struct {
	Table string
	Name  string
}

// Literal is a constant value.
type Literal struct{ Val Value }

// Param is a ? placeholder, numbered left to right from 0.
type Param struct{ Idx int }

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string // "-", "NOT"
	X  Expr
}

// BinaryExpr covers arithmetic, comparison, logical and string operators:
// + - * / % = <> < <= > >= AND OR ||.
type BinaryExpr struct {
	Op string
	L  Expr
	R  Expr
}

// LikeExpr is x [NOT] LIKE pattern [ESCAPE e].
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Escape  Expr
	Not     bool
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// FuncExpr is a function or aggregate call. Star marks COUNT(*).
type FuncExpr struct {
	Name     string // uppercased
	Args     []Expr
	Star     bool
	Distinct bool
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X  Expr
	To Type
}

// SubqueryExpr is a scalar subquery: (SELECT ...) used as a value.
type SubqueryExpr struct{ Sub *SelectStmt }

func (*ColumnRef) expr()    {}
func (*Literal) expr()      {}
func (*Param) expr()        {}
func (*UnaryExpr) expr()    {}
func (*BinaryExpr) expr()   {}
func (*LikeExpr) expr()     {}
func (*InExpr) expr()       {}
func (*ExistsExpr) expr()   {}
func (*BetweenExpr) expr()  {}
func (*IsNullExpr) expr()   {}
func (*CaseExpr) expr()     {}
func (*FuncExpr) expr()     {}
func (*CastExpr) expr()     {}
func (*SubqueryExpr) expr() {}
