package sqldb

// On-disk heap-page format. The spill file is an append-only array of
// fixed-size slots; a page occupies one or more consecutive slots (a
// chain) depending on its encoded size. Only the chain's first slot
// carries a header:
//
//	u32  CRC32 (IEEE) of the payload
//	u64  page id — the 1-based index of this first slot, cross-checked
//	     on read so a stale pointer can never deliver the wrong page
//	u32  payload length in bytes
//
// The payload is the page's 512 row slots in order, each encoded as a
// uvarint column count biased by one (0 = nil tombstone, n+1 = n
// columns) followed by the WAL value codec for every column. Sealed
// pages are immutable, so each page is written exactly once and slots
// are never reused; the file compacts only by checkpoint-rewrite
// (future work) or by deleting the whole store.

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	// pageSlotSize is the fixed on-disk slot granule. 32 KiB holds a
	// full 512-row page of typical shredded tuples in one slot; pages
	// with long text values chain across consecutive slots.
	pageSlotSize = 32 * 1024
	// pageSlotHeader is the first-slot header: CRC, page id, length.
	pageSlotHeader = 4 + 8 + 4
)

// pageSlotsFor returns how many consecutive slots a payload needs.
func pageSlotsFor(payloadLen int) int {
	return (payloadLen + pageSlotHeader + pageSlotSize - 1) / pageSlotSize
}

// encodePageFrame renders a frame's row slots as a page payload.
// count bounds the encoded slots to the table's allocated rowids so a
// straggler-sealed final page never persists junk beyond the heap.
func encodePageFrame(f *pageFrame, n int) []byte {
	e := &walEncoder{}
	for i := 0; i < n; i++ {
		row := f.rows[i]
		if row == nil {
			e.uvarint(0)
			continue
		}
		e.uvarint(uint64(len(row)) + 1)
		for _, v := range row {
			e.value(v)
		}
	}
	return e.b
}

// framePageImage wraps a payload in the slot chain image written at
// slot pid (1-based): header + payload, zero-padded to whole slots.
func framePageImage(pid int64, payload []byte) []byte {
	img := make([]byte, pageSlotsFor(len(payload))*pageSlotSize)
	binary.LittleEndian.PutUint32(img[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(img[4:], uint64(pid))
	binary.LittleEndian.PutUint32(img[12:], uint32(len(payload)))
	copy(img[pageSlotHeader:], payload)
	return img
}

// decodePageImage validates a slot chain image read from slot pid and
// decodes its payload into a fresh frame.
func decodePageImage(pid int64, img []byte) (*pageFrame, error) {
	if len(img) < pageSlotHeader {
		return nil, errorf("pagefile: short page %d: %d bytes", pid, len(img))
	}
	crc := binary.LittleEndian.Uint32(img[0:])
	gotPid := binary.LittleEndian.Uint64(img[4:])
	plen := binary.LittleEndian.Uint32(img[12:])
	if gotPid != uint64(pid) {
		return nil, errorf("pagefile: page id mismatch: slot %d holds page %d", pid, gotPid)
	}
	if int(plen) > len(img)-pageSlotHeader {
		return nil, errorf("pagefile: page %d length %d exceeds chain", pid, plen)
	}
	payload := img[pageSlotHeader : pageSlotHeader+int(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errorf("pagefile: page %d checksum mismatch", pid)
	}
	return decodePagePayload(pid, payload)
}

func decodePagePayload(pid int64, payload []byte) (*pageFrame, error) {
	d := &walDecoder{b: payload}
	f := &pageFrame{}
	for i := 0; i < heapPageSize && d.off < len(d.b); i++ {
		nc, err := d.uvarint()
		if err != nil {
			return nil, errorf("pagefile: page %d slot %d: corrupt", pid, i)
		}
		if nc == 0 {
			continue // tombstone
		}
		nc--
		if nc > uint64(len(d.b)-d.off)+1 {
			return nil, errorf("pagefile: page %d slot %d: corrupt arity", pid, i)
		}
		row := make([]Value, nc)
		for j := range row {
			v, err := d.value()
			if err != nil {
				return nil, errorf("pagefile: page %d slot %d: corrupt value", pid, i)
			}
			row[j] = v
		}
		f.rows[i] = row
	}
	if d.off != len(d.b) {
		return nil, errorf("pagefile: page %d: %d trailing bytes", pid, len(d.b)-d.off)
	}
	return f, nil
}
