package sqldb

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-operator runtime instrumentation and the per-Database metrics
// registry.
//
// Every executed plan is walked once (lazily, cached on the plan) to
// assign each operator node a stable pre-order id; executions then
// carry a runStats scratchpad in the evalCtx and every operator opened
// through openNode is wrapped in a counting iterator. Counting is
// always on (rows, next() calls, opens, join build sizes — a handful of
// increments per row); per-operator wall-clock timing costs two clock
// reads per next() call and is only enabled for EXPLAIN ANALYZE.
//
// At the end of a successful query the scratchpad is folded into the
// database's metricsRegistry: a query-latency histogram keyed by
// normalized SQL template, cumulative per-operator-kind totals, and a
// slow-query ring buffer. The registry is guarded by its own mutex, so
// any number of concurrent readers (cached plans execute under the
// database RLock) can record without losing increments.

// ---------------------------------------------------------------------------
// Per-plan operator metadata

// planOps assigns stable pre-order ids to a plan's operator nodes. It
// is built once per compiled plan and shared by all executions.
type planOps struct {
	index map[planNode]int
	kinds []string
}

// opsMeta returns the plan's operator metadata, building it on first use.
func (p *plan) opsMeta() *planOps {
	p.opsOnce.Do(func() {
		m := &planOps{index: map[planNode]int{}}
		var walk func(n planNode)
		walk = func(n planNode) {
			m.index[n] = len(m.kinds)
			m.kinds = append(m.kinds, opKind(n))
			for _, c := range planChildren(n) {
				walk(c)
			}
		}
		walk(p.root)
		p.ops = m
	})
	return p.ops
}

// planChildren returns an operator's input nodes in display order. It
// is the single tree-shape oracle shared by EXPLAIN rendering and the
// instrumentation walker. Subquery plans compiled inside expressions
// are separate plans and are intentionally not part of the tree.
func planChildren(n planNode) []planNode {
	switch n := n.(type) {
	case *filterNode:
		return []planNode{n.in}
	case *projectNode:
		return []planNode{n.in}
	case *nlJoinNode:
		return []planNode{n.left, n.right}
	case *hashJoinNode:
		return []planNode{n.left, n.right}
	case *indexJoinNode:
		return []planNode{n.left}
	case *sortNode:
		return []planNode{n.in}
	case *limitNode:
		return []planNode{n.in}
	case *distinctNode:
		return []planNode{n.in}
	case *aggNode:
		return []planNode{n.in}
	case *unionAllNode:
		return n.parts
	case *derivedNode:
		return []planNode{n.p.root}
	case *cutNode:
		return []planNode{n.in}
	case *gatherNode:
		return []planNode{n.seg}
	case *parallelAggNode:
		return []planNode{n.seg}
	}
	return nil
}

// opKind names an operator for metrics aggregation and EXPLAIN output.
func opKind(n planNode) string {
	switch n := n.(type) {
	case *seqScanNode:
		return "SeqScan"
	case *indexScanNode:
		return "IndexScan"
	case *filterNode:
		return "Filter"
	case *projectNode:
		return "Project"
	case *nlJoinNode:
		if n.leftOuter {
			return "NestedLoopLeftJoin"
		}
		return "NestedLoopJoin"
	case *hashJoinNode:
		if n.leftOuter {
			return "HashLeftJoin"
		}
		return "HashJoin"
	case *indexJoinNode:
		return "IndexJoin"
	case *sortNode:
		return "Sort"
	case *limitNode:
		return "Limit"
	case *distinctNode:
		return "Distinct"
	case *aggNode:
		return "Aggregate"
	case *unionAllNode:
		return "UnionAll"
	case *derivedNode:
		return "Derived"
	case *valuesNode:
		return "Values"
	case *cutNode:
		return "Cut"
	case *gatherNode:
		return "Gather"
	case *parallelAggNode:
		return "ParallelAggregate"
	}
	return "Unknown"
}

// ---------------------------------------------------------------------------
// Per-execution counters

// OpStats holds one operator's counters for one execution.
type OpStats struct {
	// Opens counts iterator openings (the "loops" of an inner side).
	Opens int64
	// Rows counts rows the operator produced.
	Rows int64
	// Nexts counts next() calls (Rows + end-of-stream probes).
	Nexts int64
	// BuildRows counts rows materialized on a join's build/inner side.
	BuildRows int64
	// Batches counts batches the operator produced under vectorized
	// execution; zero in row-at-a-time runs.
	Batches int64
	// InRows counts the candidate rows the operator examined to produce
	// its batches (the selectivity denominator); zero in row-at-a-time
	// runs.
	InRows int64
	// Time is cumulative wall clock inside open/next, inclusive of
	// children. Only populated when timing is enabled (EXPLAIN ANALYZE).
	// For operators below a Gather the per-worker clocks are summed, so
	// it reads as CPU time rather than wall time.
	Time time.Duration
	// Workers is the number of worker goroutines a parallel operator
	// (Gather, ParallelAggregate) actually ran with; zero elsewhere.
	Workers int
	// WorkerRows holds per-worker produced-row totals for a Gather.
	WorkerRows []int64
}

// runStats is the per-execution scratchpad. Each scratchpad is written
// by exactly one goroutine — parallel operators give every worker its
// own runStats (sharing the read-only meta) and fold them into the
// parent's after joining the workers — so plain increments suffice;
// cross-query aggregation happens in the registry under its mutex.
type runStats struct {
	meta  *planOps
	ops   []OpStats
	timed bool
}

func newRunStats(p *plan, timed bool) *runStats {
	meta := p.opsMeta()
	return &runStats{meta: meta, ops: make([]OpStats, len(meta.kinds)), timed: timed}
}

// opStat returns the mutable counters for a node, or nil when the
// execution is not instrumented or the node is outside the main tree.
func (ctx *evalCtx) opStat(n planNode) *OpStats {
	if ctx.stats == nil {
		return nil
	}
	if id, ok := ctx.stats.meta.index[n]; ok {
		return &ctx.stats.ops[id]
	}
	return nil
}

// openNode opens a plan node, wrapping the iterator with counters when
// the execution is instrumented. Every operator (and materialize) opens
// its inputs through this chokepoint. Under vectorized execution a
// batch-capable node runs its batch pipeline and is adapted back to
// rows here; its counters are maintained at batch level by openVec, so
// the adapter is returned unwrapped.
func openNode(ctx *evalCtx, n planNode) (rowIter, error) {
	if ctx.vec && vecCapable(n) {
		vi, err := openVec(ctx, n)
		if err != nil {
			return nil, err
		}
		return &vecRowIter{in: vi}, nil
	}
	st := ctx.stats
	if st == nil {
		return n.open(ctx)
	}
	id, ok := st.meta.index[n]
	if !ok {
		return n.open(ctx)
	}
	op := &st.ops[id]
	op.Opens++
	var t0 time.Time
	if st.timed {
		t0 = time.Now()
	}
	it, err := n.open(ctx)
	if st.timed {
		op.Time += time.Since(t0)
	}
	if err != nil {
		return nil, err
	}
	return &statIter{in: it, ctx: ctx, op: op, timed: st.timed}, nil
}

// statIter counts rows and next() calls flowing out of one operator.
// Because every execution is instrumented, it doubles as the
// cancellation chokepoint: on a coarse stride it polls the execution
// context and aborts with its error, which propagates through operators
// (and out of gather workers) exactly like any row error.
type statIter struct {
	in    rowIter
	ctx   *evalCtx
	op    *OpStats
	timed bool
	// seen strides the cancellation poll. It is per-iterator, not the
	// shared op.Nexts: an operator re-opened under a nested-loop driver
	// or a gather worker's per-morsel re-opens inherits its predecessors'
	// cumulative Nexts, which would make the poll cadence within one open
	// depend on every earlier open. The shared counter stays the
	// accounting truth; the stride is private.
	seen int64
}

func (it *statIter) next() ([]Value, error) {
	if it.seen&255 == 255 {
		if err := it.ctx.canceled(); err != nil {
			return nil, err
		}
	}
	it.seen++
	var row []Value
	var err error
	if it.timed {
		t0 := time.Now()
		row, err = it.in.next()
		it.op.Time += time.Since(t0)
	} else {
		row, err = it.in.next()
	}
	it.op.Nexts++
	if row != nil {
		it.op.Rows++
	}
	return row, err
}

func (it *statIter) close() { it.in.close() }

// ---------------------------------------------------------------------------
// SQL template normalization

// NormalizeSQL reduces a statement to its template: literals and
// parameters become '?', whitespace collapses, keywords uppercase.
// Queries differing only in constants share one histogram key. The
// input is returned unchanged when it does not lex.
func NormalizeSQL(sql string) string {
	toks, err := lexSQL(sql)
	if err != nil {
		return strings.TrimSpace(sql)
	}
	var b strings.Builder
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokInt, tokFloat, tokString, tokParam:
			b.WriteByte('?')
		case tokIdent:
			if identNeedsQuoting(t.text) {
				b.WriteByte('"')
				b.WriteString(t.text)
				b.WriteByte('"')
			} else {
				b.WriteString(t.text)
			}
		default:
			b.WriteString(t.text)
		}
	}
	return b.String()
}

// identNeedsQuoting reports whether an identifier token must be
// re-quoted for the template to lex back to the same token (the lexer
// strips quotes, so "select" or "a b" would otherwise change meaning).
func identNeedsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return true
			}
		default:
			return true
		}
	}
	return sqlKeywords[strings.ToUpper(s)]
}

// ---------------------------------------------------------------------------
// Registry

// latencyBounds are the upper edges of the query-latency histogram
// buckets (powers of four from 4µs); the final bucket is unbounded.
var latencyBounds = [...]time.Duration{
	4 * time.Microsecond,
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1024 * time.Microsecond,
	4096 * time.Microsecond,
	16384 * time.Microsecond,
	65536 * time.Microsecond,
	262144 * time.Microsecond,
	1048576 * time.Microsecond,
}

const latencyBuckets = len(latencyBounds) + 1

func latencyBucket(d time.Duration) int {
	for i, b := range latencyBounds {
		if d <= b {
			return i
		}
	}
	return latencyBuckets - 1
}

const (
	// maxTemplates caps the per-template map; excess templates fold
	// into the overflowTemplate bucket.
	maxTemplates     = 256
	overflowTemplate = "~other"
	// slowLogCap bounds the slow-query ring buffer.
	slowLogCap = 32
	// defaultSlowQueryThreshold flags queries slower than this.
	defaultSlowQueryThreshold = 100 * time.Millisecond
)

type templateEntry struct {
	count uint64
	total time.Duration
	max   time.Duration
	hist  [latencyBuckets]uint64
}

type opEntry struct {
	opens, rows, nexts, buildRows uint64
	batches, inRows               uint64
	time                          time.Duration
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	SQL      string
	Duration time.Duration
	Rows     int
	At       time.Time
}

// metricsRegistry accumulates query metrics for one Database. All
// fields are guarded by mu; recording takes the lock once per query.
type metricsRegistry struct {
	mu            sync.Mutex
	queries       uint64
	queryErrors   uint64
	rows          uint64
	queryTime     time.Duration
	planCompiles  uint64
	planTime      time.Duration
	hist          [latencyBuckets]uint64
	templates     map[string]*templateEntry
	ops           map[string]*opEntry
	slow          [slowLogCap]SlowQuery
	slowLen       int
	slowNext      int
	slowThreshold time.Duration
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		templates:     map[string]*templateEntry{},
		ops:           map[string]*opEntry{},
		slowThreshold: defaultSlowQueryThreshold,
	}
}

// recordQuery folds one successful execution into the registry.
func (m *metricsRegistry) recordQuery(sql, template string, d time.Duration, rows int, rs *runStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.rows += uint64(rows)
	m.queryTime += d
	m.hist[latencyBucket(d)]++

	te := m.templates[template]
	if te == nil {
		if len(m.templates) >= maxTemplates {
			template = overflowTemplate
			te = m.templates[template]
		}
		if te == nil {
			te = &templateEntry{}
			m.templates[template] = te
		}
	}
	te.count++
	te.total += d
	if d > te.max {
		te.max = d
	}
	te.hist[latencyBucket(d)]++

	if rs != nil {
		for i, op := range rs.ops {
			if op.Opens == 0 {
				continue
			}
			kind := rs.meta.kinds[i]
			oe := m.ops[kind]
			if oe == nil {
				oe = &opEntry{}
				m.ops[kind] = oe
			}
			oe.opens += uint64(op.Opens)
			oe.rows += uint64(op.Rows)
			oe.nexts += uint64(op.Nexts)
			oe.buildRows += uint64(op.BuildRows)
			oe.batches += uint64(op.Batches)
			oe.inRows += uint64(op.InRows)
			oe.time += op.Time
		}
	}

	if m.slowThreshold > 0 && d >= m.slowThreshold {
		m.slow[m.slowNext] = SlowQuery{SQL: sql, Duration: d, Rows: rows, At: time.Now()}
		m.slowNext = (m.slowNext + 1) % slowLogCap
		if m.slowLen < slowLogCap {
			m.slowLen++
		}
	}
}

func (m *metricsRegistry) recordQueryError() {
	m.mu.Lock()
	m.queryErrors++
	m.mu.Unlock()
}

// recordPlanCompile accounts one plan compilation (cache miss or
// Prepare) and its wall time.
func (m *metricsRegistry) recordPlanCompile(d time.Duration) {
	m.mu.Lock()
	m.planCompiles++
	m.planTime += d
	m.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Snapshot types

// LatencyBucket is one histogram bucket; Le is the inclusive upper
// bound (0 for the unbounded final bucket).
type LatencyBucket struct {
	Le    time.Duration
	Count uint64
}

// TemplateStats summarizes one normalized SQL template.
type TemplateStats struct {
	Template string
	Count    uint64
	Total    time.Duration
	Max      time.Duration
}

// Mean returns the average latency of the template.
func (t TemplateStats) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Count)
}

// OpTotalStats is the cumulative activity of one operator kind across
// all instrumented executions.
type OpTotalStats struct {
	Kind      string
	Opens     uint64
	Rows      uint64
	Nexts     uint64
	BuildRows uint64
	// Batches/InRows accumulate only over vectorized executions.
	Batches uint64
	InRows  uint64
	// Time is cumulative only over timed (EXPLAIN ANALYZE) executions.
	Time time.Duration
}

// MetricsSnapshot is a point-in-time copy of the registry.
type MetricsSnapshot struct {
	Queries     uint64
	QueryErrors uint64
	// Rows is the total result rows returned.
	Rows uint64
	// QueryTime is cumulative end-to-end query latency.
	QueryTime time.Duration
	// PlanCompiles / PlanTime account plan compilation (cache misses
	// and Prepare calls).
	PlanCompiles uint64
	PlanTime     time.Duration
	// Latency is the global query-latency histogram.
	Latency []LatencyBucket
	// Templates lists per-template stats, busiest (by total time) first.
	Templates []TemplateStats
	// Operators lists cumulative per-operator-kind totals, sorted by kind.
	Operators []OpTotalStats
	// SlowQueries lists the retained slow queries, oldest first.
	SlowQueries   []SlowQuery
	SlowThreshold time.Duration
}

func (m *metricsRegistry) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Queries:       m.queries,
		QueryErrors:   m.queryErrors,
		Rows:          m.rows,
		QueryTime:     m.queryTime,
		PlanCompiles:  m.planCompiles,
		PlanTime:      m.planTime,
		SlowThreshold: m.slowThreshold,
	}
	s.Latency = make([]LatencyBucket, latencyBuckets)
	for i := range m.hist {
		if i < len(latencyBounds) {
			s.Latency[i].Le = latencyBounds[i]
		}
		s.Latency[i].Count = m.hist[i]
	}
	for tpl, te := range m.templates {
		s.Templates = append(s.Templates, TemplateStats{
			Template: tpl, Count: te.count, Total: te.total, Max: te.max,
		})
	}
	sort.Slice(s.Templates, func(i, j int) bool {
		if s.Templates[i].Total != s.Templates[j].Total {
			return s.Templates[i].Total > s.Templates[j].Total
		}
		return s.Templates[i].Template < s.Templates[j].Template
	})
	for kind, oe := range m.ops {
		s.Operators = append(s.Operators, OpTotalStats{
			Kind: kind, Opens: oe.opens, Rows: oe.rows, Nexts: oe.nexts,
			BuildRows: oe.buildRows, Batches: oe.batches, InRows: oe.inRows, Time: oe.time,
		})
	}
	sort.Slice(s.Operators, func(i, j int) bool { return s.Operators[i].Kind < s.Operators[j].Kind })
	for i := 0; i < m.slowLen; i++ {
		idx := m.slowNext - m.slowLen + i
		if idx < 0 {
			idx += slowLogCap
		}
		s.SlowQueries = append(s.SlowQueries, m.slow[idx])
	}
	return s
}

// SetSlowQueryThreshold sets the latency above which queries are
// retained in the slow-query log; zero disables the log.
func (db *Database) SetSlowQueryThreshold(d time.Duration) {
	db.metrics.mu.Lock()
	db.metrics.slowThreshold = d
	db.metrics.mu.Unlock()
}

// Metrics returns a snapshot of the query metrics registry.
func (db *Database) Metrics() MetricsSnapshot {
	return db.metrics.snapshot()
}
