package sqldb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// Chaos battery: concurrent writers and governed queries (memory
// budgets, admission control, injected worker panics, canceled
// contexts) run into a mid-flight ENOSPC fault. The engine must
// degrade to read-only — reads keep answering — then Recover back to
// read-write, and after a final close + reopen every acknowledged
// write must be present. Run under -race (see the Makefile chaos
// target) this doubles as the lock-hygiene proof: no panic or abort
// path may wedge writeMu, pubMu, the WAL pipeline, or leak memory
// reservations or snapshot pins.
func TestChaosGovernedConcurrency(t *testing.T) {
	mem := NewMemVFS()
	fvfs := NewFaultVFS(mem, -1)
	fvfs.SetFailError(syscall.ENOSPC)
	d := mustOpenDurable(t, fvfs, DurableOptions{})
	db := d.DB()

	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	seed := make([][]Value, 0, 3000)
	for i := 0; i < 3000; i++ {
		seed = append(seed, []Value{
			NewInt(int64(i)),
			NewText(fmt.Sprintf("seed-%06d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")),
		})
	}
	if _, err := db.BulkInsert("kv", seed); err != nil {
		t.Fatalf("seeding: %v", err)
	}

	db.SetParallelism(4)
	db.SetMemoryBudget(1 << 20)
	db.SetQueryMemoryLimit(256 << 10)
	db.SetAdmissionControl(2, 4)

	// Every ~13th morsel panics somewhere in the worker pool.
	var panicTick atomic.Int64
	hook := func(int) {
		if panicTick.Add(1)%13 == 0 {
			panic("chaos morsel panic")
		}
	}
	testWorkerPanic.Store(&hook)
	defer testWorkerPanic.Store(nil)

	// tolerable reports whether an error is one of the governed or
	// injected failure modes this battery provokes on purpose. Anything
	// else is a real bug.
	tolerable := func(err error) bool {
		return err == nil ||
			errors.Is(err, ErrMemoryBudgetExceeded) ||
			errors.Is(err, ErrOverloaded) ||
			errors.Is(err, ErrInternal) ||
			errors.Is(err, ErrWALFailed) ||
			errors.Is(err, ErrInjected) ||
			errors.Is(err, syscall.ENOSPC) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	const writers, readers = 4, 4
	var acked sync.Map // key -> true, recorded only on a nil Exec error
	stop := make(chan struct{})
	var bad atomic.Pointer[error]
	fail := func(err error) {
		e := err
		bad.CompareAndSwap(nil, &e)
	}
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(10000 + w*100000 + i)
				_, err := db.Exec(`INSERT INTO kv VALUES (?, 'chaos')`, NewInt(k))
				if err == nil {
					acked.Store(k, true)
				} else if !tolerable(err) {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 3 {
				case 0: // heavy: big sort, may blow the query budget
					_, err = db.Query(`SELECT k, v FROM kv ORDER BY v`)
				case 1: // canceled mid-flight
					ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
					_, err = db.QueryContext(ctx, `SELECT COUNT(*), MAX(k) FROM kv WHERE v <> ''`)
					cancel()
				case 2: // light: must essentially always work
					_, err = db.Query(`SELECT v FROM kv WHERE k = ?`, NewInt(int64(i%3000)))
				}
				if !tolerable(err) {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
			}
		}(r)
	}

	// Let healthy traffic build, then yank the disk.
	time.Sleep(50 * time.Millisecond)
	fvfs.mu.Lock()
	fvfs.failAfter = fvfs.written
	fvfs.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for !d.Failed() {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatal("fault armed but the engine never degraded")
		}
		time.Sleep(time.Millisecond)
	}

	// A degraded stretch with traffic still flowing: writes bounce,
	// reads answer. The probe shares the admission gate and panic hook
	// with the storm, so retry past those governed rejections — what
	// must NOT happen is a degraded-mode read error.
	time.Sleep(30 * time.Millisecond)
	probeDeadline := time.Now().Add(5 * time.Second)
	for {
		n, err := db.QueryScalar(`SELECT COUNT(*) FROM kv`)
		if err == nil {
			if n.Int() < 3000 {
				t.Fatalf("degraded read lost rows: %d", n.Int())
			}
			break
		}
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrMemoryBudgetExceeded) && !errors.Is(err, ErrInternal) {
			t.Fatalf("degraded read: %v", err)
		}
		if time.Now().After(probeDeadline) {
			t.Fatalf("degraded read never got through the storm: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	// Space returns; recovery must restore read-write service while the
	// storm keeps blowing.
	fvfs.Heal()
	if err := d.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	time.Sleep(30 * time.Millisecond)

	close(stop)
	wg.Wait()
	if e := bad.Load(); e != nil {
		t.Fatalf("goroutine hit a non-tolerated error: %v", *e)
	}

	// The governor and snapshot trackers must be fully drained, and the
	// engine genuinely read-write again.
	testWorkerPanic.Store(nil)
	if d.Failed() {
		t.Fatal("still degraded after Recover")
	}
	if _, err := db.Exec(`INSERT INTO kv VALUES (999999, 'final')`); err != nil {
		t.Fatalf("write after storm: %v", err)
	}
	acked.Store(int64(999999), true)
	if used := db.Stats().Governor.MemoryUsed; used != 0 {
		t.Fatalf("%d bytes still reserved after the storm", used)
	}
	if p := db.Stats().Snapshots.Pinned; p != 0 {
		t.Fatalf("%d snapshot pins leaked", p)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Ack-implies-durable across the whole storm: every key whose
	// INSERT returned nil is present after reopening the directory.
	rd := mustOpenDurable(t, mem, DurableOptions{})
	defer rd.Close()
	count := 0
	var missing []int64
	acked.Range(func(key, _ any) bool {
		count++
		k := key.(int64)
		n, err := rd.DB().QueryScalar(`SELECT COUNT(*) FROM kv WHERE k = ?`, NewInt(k))
		if err != nil || n.Int() != 1 {
			missing = append(missing, k)
		}
		return len(missing) < 10
	})
	if len(missing) > 0 {
		t.Fatalf("%d acked keys missing after reopen (first: %v) of %d acked", len(missing), missing, count)
	}
	if count == 0 {
		t.Fatal("no writes were ever acked; the battery exercised nothing")
	}
	checkIndexes(t, rd.DB())
}
