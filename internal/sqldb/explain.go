package sqldb

import (
	"fmt"
	"strings"
)

// Explain compiles a SELECT and renders its physical plan tree, one
// operator per line with the planner's cardinality estimates. When the
// plan was served from the plan cache the output is prefixed with a
// "(cached)" marker. It is a debugging and teaching aid; the format is
// not stable.
func (db *Database) Explain(sql string, args ...Value) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, fromCache, err := db.cachedPlanFor(sql, "Explain")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if fromCache {
		fmt.Fprintf(&b, "(cached) plan epoch %d\n", db.epoch)
	}
	explainNode(&b, e.p.root, 0)
	return b.String(), nil
}

func explainNode(b *strings.Builder, n planNode, depth int) {
	indent := strings.Repeat("  ", depth)
	write := func(format string, args ...any) {
		fmt.Fprintf(b, "%s%s (est %.1f)\n", indent, fmt.Sprintf(format, args...), n.estRows())
	}
	switch n := n.(type) {
	case *seqScanNode:
		filter := ""
		if n.filter != nil {
			filter = " filtered"
		}
		write("SeqScan %s as %s%s", n.tbl.def.Name, n.alias, filter)
	case *indexScanNode:
		write("IndexScan %s via %s (eq %d, range lo=%v hi=%v)", n.tbl.def.Name, n.idx.def.Name, len(n.eq), n.lo != nil, n.hi != nil)
	case *filterNode:
		write("Filter")
		explainNode(b, n.in, depth+1)
	case *projectNode:
		write("Project %d cols", len(n.exprs))
		explainNode(b, n.in, depth+1)
	case *nlJoinNode:
		kind := "NestedLoopJoin"
		if n.leftOuter {
			kind = "NestedLoopLeftJoin"
		}
		if n.cond == nil {
			kind += " (cross)"
		}
		write("%s", kind)
		explainNode(b, n.left, depth+1)
		explainNode(b, n.right, depth+1)
	case *hashJoinNode:
		kind := "HashJoin"
		if n.leftOuter {
			kind = "HashLeftJoin"
		}
		write("%s on %d key(s)", kind, len(n.leftKeys))
		explainNode(b, n.left, depth+1)
		explainNode(b, n.right, depth+1)
	case *indexJoinNode:
		write("IndexJoin %s via %s (eq %d, range lo=%v hi=%v)", n.tbl.def.Name, n.idx.def.Name, len(n.keyExprs), n.rngLo != nil, n.rngHi != nil)
		explainNode(b, n.left, depth+1)
	case *sortNode:
		write("Sort on %d key(s)", len(n.keys))
		explainNode(b, n.in, depth+1)
	case *limitNode:
		write("Limit")
		explainNode(b, n.in, depth+1)
	case *distinctNode:
		write("Distinct")
		explainNode(b, n.in, depth+1)
	case *aggNode:
		write("Aggregate %d group key(s), %d aggregate(s)", len(n.groupBy), len(n.aggs))
		explainNode(b, n.in, depth+1)
	case *unionAllNode:
		write("UnionAll %d parts", len(n.parts))
		for _, p := range n.parts {
			explainNode(b, p, depth+1)
		}
	case *derivedNode:
		write("Derived")
		explainNode(b, n.p.root, depth+1)
	case *valuesNode:
		write("Values %d row(s)", len(n.rows))
	case *cutNode:
		write("Cut to %d cols", n.width)
		explainNode(b, n.in, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
}
