package sqldb

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Explain compiles a SELECT and renders its physical plan tree, one
// operator per line with the planner's cardinality estimates. When the
// plan was served from the plan cache the output is prefixed with a
// "(cached)" marker. It is a debugging and teaching aid; the format is
// not stable.
func (db *Database) Explain(sql string, args ...Value) (string, error) {
	st := db.readState()
	e, fromCache, err := db.cachedPlanFor(st, sql, "Explain")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if fromCache {
		fmt.Fprintf(&b, "(cached) plan epoch %d\n", st.epoch)
	}
	if st.vectorized {
		b.WriteString("vectorized\n")
	}
	explainTree(&b, e.p.root, 0, nil, nil)
	return b.String(), nil
}

// OpReport is one operator's line of an analyzed plan, in pre-order.
type OpReport struct {
	Kind  string
	Depth int
	Est   float64
	OpStats
}

// AnalyzedPlan is the structured result of ExplainAnalyzePlan: the
// rendered text plus per-operator actuals and the overall execution
// figures.
type AnalyzedPlan struct {
	Text string
	// Rows is the executed query's result cardinality.
	Rows int
	// Duration is the end-to-end execution wall time.
	Duration time.Duration
	// Ops lists the plan's operators in pre-order (Ops[0] is the root).
	Ops []OpReport
}

// ExplainAnalyze executes a SELECT and renders its plan tree annotated
// with actual per-operator row counts, next() calls, open counts, join
// build sizes and inclusive wall time. The execution is a real one: it
// runs against a pinned snapshot and through the plan cache exactly
// like Query, and is recorded in the metrics registry.
func (db *Database) ExplainAnalyze(sql string, args ...Value) (string, error) {
	ap, err := db.ExplainAnalyzePlan(sql, args...)
	if err != nil {
		return "", err
	}
	return ap.Text, nil
}

// ExplainAnalyzePlan is ExplainAnalyze returning the structured form.
func (db *Database) ExplainAnalyzePlan(sql string, args ...Value) (*AnalyzedPlan, error) {
	st := db.readState()
	e, fromCache, err := db.cachedPlanFor(st, sql, "ExplainAnalyze")
	if err != nil {
		return nil, err
	}
	release, err := db.gate.Load().admit(context.Background())
	if err != nil {
		db.metrics.recordQueryError()
		return nil, err
	}
	defer release()
	mem := db.newMemAccountant()
	defer mem.close()
	rs := newRunStats(e.p, true)
	ctx := &evalCtx{snap: st, qctx: context.Background(), params: args, stats: rs, vec: st.vectorized, mem: mem}
	start := time.Now()
	data, err := runGuarded(ctx, e.p.root)
	total := time.Since(start)
	if err != nil {
		db.metrics.recordQueryError()
		return nil, err
	}
	db.metrics.recordQuery(sql, e.p.template, total, len(data), rs)

	ap := &AnalyzedPlan{Rows: len(data), Duration: total}
	var b strings.Builder
	if fromCache {
		fmt.Fprintf(&b, "(cached) plan epoch %d\n", st.epoch)
	}
	if st.vectorized {
		b.WriteString("vectorized\n")
	}
	explainTree(&b, e.p.root, 0, rs, &ap.Ops)
	fmt.Fprintf(&b, "Execution: %d row(s) in %s\n", len(data), total.Round(time.Microsecond))
	ap.Text = b.String()
	return ap, nil
}

// explainTree renders the operator tree. With rs non-nil each line is
// annotated with the execution's actual counters, and when ops is also
// non-nil a structured OpReport is appended per operator in pre-order.
func explainTree(b *strings.Builder, n planNode, depth int, rs *runStats, ops *[]OpReport) {
	indent := strings.Repeat("  ", depth)
	var actual string
	if rs != nil {
		if id, ok := rs.meta.index[n]; ok {
			op := rs.ops[id]
			actual = fmt.Sprintf(" (actual rows=%d nexts=%d opens=%d", op.Rows, op.Nexts, op.Opens)
			if op.BuildRows > 0 {
				actual += fmt.Sprintf(" build=%d", op.BuildRows)
			}
			if op.Workers > 0 {
				actual += fmt.Sprintf(" workers=%d", op.Workers)
				if len(op.WorkerRows) > 0 {
					parts := make([]string, len(op.WorkerRows))
					for i, r := range op.WorkerRows {
						parts[i] = fmt.Sprintf("%d", r)
					}
					actual += " worker_rows=" + strings.Join(parts, "/")
				}
			}
			if op.Batches > 0 {
				actual += fmt.Sprintf(" batches=%d", op.Batches)
				if op.InRows > 0 {
					actual += fmt.Sprintf(" selectivity=%.2f", float64(op.Rows)/float64(op.InRows))
				}
			}
			actual += fmt.Sprintf(" time=%s)", op.Time.Round(time.Microsecond))
			if ops != nil {
				*ops = append(*ops, OpReport{Kind: opKind(n), Depth: depth, Est: n.estRows(), OpStats: op})
			}
		}
	}
	write := func(format string, args ...any) {
		fmt.Fprintf(b, "%s%s (est %.1f)%s\n", indent, fmt.Sprintf(format, args...), n.estRows(), actual)
	}
	switch n := n.(type) {
	case *seqScanNode:
		filter := ""
		if n.filter != nil {
			filter = " filtered"
		}
		write("SeqScan %s as %s%s", n.tbl.def.Name, n.alias, filter)
	case *indexScanNode:
		write("IndexScan %s via %s (eq %d, range lo=%v hi=%v)", n.tbl.def.Name, n.idx.def.Name, len(n.eq), n.lo != nil, n.hi != nil)
	case *filterNode:
		write("Filter")
	case *projectNode:
		write("Project %d cols", len(n.exprs))
	case *nlJoinNode:
		kind := "NestedLoopJoin"
		if n.leftOuter {
			kind = "NestedLoopLeftJoin"
		}
		if n.cond == nil {
			kind += " (cross)"
		}
		write("%s", kind)
	case *hashJoinNode:
		kind := "HashJoin"
		if n.leftOuter {
			kind = "HashLeftJoin"
		}
		write("%s on %d key(s)", kind, len(n.leftKeys))
	case *indexJoinNode:
		write("IndexJoin %s via %s (eq %d, range lo=%v hi=%v)", n.tbl.def.Name, n.idx.def.Name, len(n.keyExprs), n.rngLo != nil, n.rngHi != nil)
	case *sortNode:
		write("Sort on %d key(s)", len(n.keys))
	case *limitNode:
		write("Limit")
	case *distinctNode:
		write("Distinct")
	case *aggNode:
		write("Aggregate %d group key(s), %d aggregate(s)", len(n.groupBy), len(n.aggs))
	case *unionAllNode:
		write("UnionAll %d parts", len(n.parts))
	case *derivedNode:
		write("Derived")
	case *valuesNode:
		write("Values %d row(s)", len(n.rows))
	case *cutNode:
		write("Cut to %d cols", n.width)
	case *gatherNode:
		write("Gather over %s (dop %d, morsel %d)", n.driver.tbl.def.Name, n.dop, morselSize)
	case *parallelAggNode:
		write("ParallelAggregate %d group key(s), %d aggregate(s) over %s (dop %d)",
			len(n.groupBy), len(n.aggs), n.driver.tbl.def.Name, n.dop)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
	for _, c := range planChildren(n) {
		explainTree(b, c, depth+1, rs, ops)
	}
}

// explainMode classifies a textual EXPLAIN prefix.
type explainMode int

const (
	explainNone explainMode = iota
	explainPlain
	explainAnalyze
)

// stripExplainPrefix detects a leading EXPLAIN [ANALYZE] keyword pair
// and returns the statement that follows it. EXPLAIN is not a lexer
// keyword, so a simple case-insensitive prefix check suffices: no valid
// statement begins with that word otherwise.
func stripExplainPrefix(sql string) (explainMode, string) {
	rest, ok := cutWord(sql, "EXPLAIN")
	if !ok {
		return explainNone, sql
	}
	if inner, ok := cutWord(rest, "ANALYZE"); ok {
		return explainAnalyze, inner
	}
	return explainPlain, rest
}

// cutWord strips one leading case-insensitive word followed by
// whitespace.
func cutWord(s, word string) (string, bool) {
	s = strings.TrimLeft(s, " \t\r\n")
	if len(s) <= len(word) || !strings.EqualFold(s[:len(word)], word) {
		return s, false
	}
	switch s[len(word)] {
	case ' ', '\t', '\r', '\n':
		return s[len(word)+1:], true
	}
	return s, false
}
