package sqldb

// Resource governor: memory accounting against per-query and shared
// engine budgets, plus an admission gate that bounds concurrent query
// execution with a finite wait queue. Both are off by default and cost
// nothing when disabled (nil accountant, nil gate).

import (
	"context"
	"fmt"
	"sync/atomic"
)

// memPool is the engine-wide memory budget shared by all concurrently
// executing queries. total <= 0 means unlimited.
type memPool struct {
	total atomic.Int64
	used  atomic.Int64
}

// reserve claims n bytes from the pool; it reports false (claiming
// nothing) when the pool would overflow.
func (p *memPool) reserve(n int64) bool {
	t := p.total.Load()
	if t <= 0 {
		return true
	}
	if p.used.Add(n) > t {
		p.used.Add(-n)
		return false
	}
	return true
}

func (p *memPool) release(n int64) {
	if p.total.Load() > 0 {
		p.used.Add(-n)
	}
}

// memAccountant tracks one query's working-set bytes. Operators charge
// it at their allocation chokepoints (materialize output, hash-join
// builds and output arenas, sort keys, aggregation tables, per-worker
// scratchpads); a charge that overruns the query limit or the shared
// pool trips the exceeded flag, which the cancellation chokepoints
// observe so every worker unwinds promptly. A nil accountant is a
// no-op.
type memAccountant struct {
	used     atomic.Int64
	limit    int64 // per-query cap in bytes, 0 = unlimited
	pool     *memPool
	exceeded atomic.Bool
	reason   atomic.Pointer[error]
}

func (m *memAccountant) trip(err error) error {
	m.reason.CompareAndSwap(nil, &err)
	m.exceeded.Store(true)
	return err
}

// charge records n more bytes of working set. Charging is monotonic
// (peak accounting): operators never uncharge mid-query, the whole
// reservation returns to the pool at close.
func (m *memAccountant) charge(n int64) error {
	if m == nil || n <= 0 {
		return nil
	}
	if m.exceeded.Load() {
		return m.err()
	}
	if m.pool != nil && !m.pool.reserve(n) {
		return m.trip(fmt.Errorf("%w: engine budget %d bytes exhausted (query holds %d)",
			ErrMemoryBudgetExceeded, m.pool.total.Load(), m.used.Load()))
	}
	if u := m.used.Add(n); m.limit > 0 && u > m.limit {
		return m.trip(fmt.Errorf("%w: query needs %d bytes, limit %d",
			ErrMemoryBudgetExceeded, u, m.limit))
	}
	return nil
}

// chargeRows is charge for a slice of materialized rows.
func (m *memAccountant) chargeRows(rows [][]Value) error {
	if m == nil || len(rows) == 0 {
		return nil
	}
	var n int64
	for _, r := range rows {
		n += rowSliceBytes(r)
	}
	return m.charge(n)
}

// err returns the tripping error once exceeded.
func (m *memAccountant) err() error {
	if m == nil || !m.exceeded.Load() {
		return nil
	}
	if p := m.reason.Load(); p != nil {
		return *p
	}
	return ErrMemoryBudgetExceeded
}

// close returns the query's whole reservation to the shared pool.
func (m *memAccountant) close() {
	if m == nil {
		return
	}
	n := m.used.Swap(0)
	if m.pool != nil && n > 0 {
		m.pool.release(n)
	}
}

// rowSliceBytes sizes one materialized row.
func rowSliceBytes(r []Value) int64 {
	n := int64(24) // slice header
	for _, v := range r {
		n += valueBytes(v)
	}
	return n
}

// valuesBytes sizes a flat []Value arena.
func valuesBytes(vs []Value) int64 {
	n := int64(24)
	for _, v := range vs {
		n += valueBytes(v)
	}
	return n
}

// admissionGate bounds the number of concurrently executing queries.
// Up to cap(slots) queries run at once; up to queueCap more wait
// (context-deadline-aware); beyond that new arrivals are rejected
// immediately with ErrOverloaded.
type admissionGate struct {
	slots    chan struct{}
	queueCap int

	waiting  atomic.Int64
	admitted atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
}

func newAdmissionGate(maxConcurrent, maxQueue int) *admissionGate {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admissionGate{slots: make(chan struct{}, maxConcurrent), queueCap: maxQueue}
}

// admit blocks until a slot frees (or ctx is done). The returned
// release func must be called exactly once when the query finishes.
func (g *admissionGate) admit(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	// All slots busy: try to queue.
	if int(g.waiting.Add(1)) > g.queueCap {
		g.waiting.Add(-1)
		g.rejected.Add(1)
		return nil, fmt.Errorf("%w (%d running, %d waiting)",
			ErrOverloaded, cap(g.slots), g.queueCap)
	}
	g.queued.Add(1)
	defer g.waiting.Add(-1)
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	case <-ctx.Done():
		g.rejected.Add(1)
		return nil, ctx.Err()
	}
}

func (g *admissionGate) release() { <-g.slots }

// GovernorStats reports resource-governor activity.
type GovernorStats struct {
	MemoryBudget  int64 // engine-wide budget in bytes (0 = unlimited)
	MemoryUsed    int64 // bytes currently reserved by running queries
	QueryMemLimit int64 // per-query limit in bytes (0 = unlimited)
	MaxConcurrent int   // admission slots (0 = admission disabled)
	MaxQueue      int   // admission wait-queue capacity
	Admitted      int64 // queries admitted (including after queuing)
	Queued        int64 // queries that had to wait for a slot
	Rejected      int64 // queries rejected (queue full or ctx expired while queued)
}

func (g *admissionGate) stats() (maxc, maxq int, admitted, queued, rejected int64) {
	if g == nil {
		return 0, 0, 0, 0, 0
	}
	return cap(g.slots), g.queueCap, g.admitted.Load(), g.queued.Load(), g.rejected.Load()
}
