package sqldb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DurableDB binds a Database to a data directory (through a VFS) with
// write-ahead logging and atomic checkpointing:
//
//   - Every committed mutation is staged into the WAL group-commit
//     pipeline and fsynced before the commit call returns (see db.go's
//     commit-hook chokepoint): committers that arrive while an fsync is
//     in flight queue up, and the first waiter flushes the whole queue
//     with one Write + one Sync — many commits, one fsync.
//   - Checkpoint writes a CRC-sealed snapshot to a temp file, fsyncs
//     it, renames it over the previous snapshot, fsyncs the directory,
//     then rotates the WAL — so there is never a moment without a
//     loadable on-disk state.
//   - OpenDurable recovers by loading the last good snapshot and
//     replaying the WAL's valid prefix, truncating the torn tail.
//
// Failure model is degraded read-only: once a WAL append, sync or
// checkpoint write fails, the DurableDB refuses further commits
// (ErrReadOnlyDegraded, which wraps ErrWALFailed) — the in-memory
// state may be ahead of the durable state, and continuing to
// acknowledge writes would silently widen that gap. Reads keep
// serving the last published snapshot, Health reports the cause, and
// Recover re-establishes durability by checkpointing the published
// (acked) state and starting a fresh WAL.
type DurableDB struct {
	fs   VFS
	db   *Database
	opts DurableOptions

	// seq is the last assigned commit sequence number; records above
	// the snapshot's sequence are replayed, the rest skipped.
	seq atomic.Uint64

	// walMu guards the WAL handle, the commit queue, group buffering
	// and log rotation. The flusher releases it for the duration of the
	// Write+Sync (flushing=true marks the handle as borrowed) so new
	// committers can stage into the next batch while this one syncs.
	walMu   sync.Mutex
	wal     File
	walSize int64
	// ackedSize is the length of the WAL prefix covered by a successful
	// flush (append + fsync): every byte below it belongs to an
	// acknowledged commit, every byte above it to a failed or torn one.
	// Recover rebuilds the engine's state from exactly this prefix.
	ackedSize int64
	// ackedSeq is the highest commit sequence covered by a successful
	// fsync. The buffer pool's spill barrier reads it to keep a sealed
	// page resident until the WAL covering its commits is durable
	// (written under walMu, read lock-free).
	ackedSeq atomic.Uint64
	queue     []*commitWaiter
	flushing  bool
	flushCond *sync.Cond
	grouping  bool
	groupBuf  []*walRecord

	// Pipeline counters (guarded by walMu); Stats derives fsyncs/commit.
	commits  uint64
	fsyncs   uint64
	batches  uint64
	maxBatch int

	// groupOwner is the id of the goroutine inside Group (0 when none):
	// only its commits buffer into the group's atomicity unit, and it is
	// refused re-entrant Group/Checkpoint calls that would self-deadlock.
	groupOwner atomic.Int64

	// ckptMu serializes checkpoints (and Recover, which is one).
	ckptMu      sync.Mutex
	checkpoints atomic.Uint64
	needCkpt    atomic.Bool

	// closed is the sticky lifecycle flag: set once by Close (under
	// ckptMu + walMu), it turns every later commit, checkpoint, group
	// and recovery away with ErrClosed. Without it a post-Close commit
	// would be acknowledged while memory-only — ack-implies-durable
	// silently broken on a supposedly closed store.
	closed atomic.Bool

	// failed is the degraded-mode flag: set on any storage fault, it
	// turns every write path away with ErrReadOnlyDegraded while reads
	// keep serving the published snapshot. healthMu guards the cause
	// bookkeeping behind it; lock order is walMu → healthMu.
	failed       atomic.Bool
	healthMu     sync.Mutex
	degradeCause error
	degradeSince time.Time
	degradations uint64
	recoveries   uint64
}

// commitWaiter is one staged commit waiting for the batch fsync that
// covers it. All fields are guarded by walMu.
type commitWaiter struct {
	payload []byte
	// seq is the record's highest commit sequence (a group frame covers
	// its members' range); a successful flush advances ackedSeq to the
	// batch maximum.
	seq     uint64
	flushed bool
	err     error
}

// DurableOptions tune a DurableDB.
type DurableOptions struct {
	// AutoCheckpointBytes triggers MaybeCheckpoint once the WAL grows
	// past this size; 0 means the 4 MiB default, negative disables
	// auto-checkpointing.
	AutoCheckpointBytes int64
	// NoSync skips the per-commit fsync (bulk loads, benchmarks). A
	// crash may then lose acknowledged commits; recovery is still
	// never corrupt thanks to the CRC framing.
	NoSync bool
	// GroupCommitWindow makes the batch leader linger this long before
	// collecting the queue, trading commit latency for larger batches
	// (fewer fsyncs per commit) under concurrent writers. 0 — the
	// default — flushes as soon as the leader reaches the WAL, which
	// already batches whatever queued during the previous fsync.
	GroupCommitWindow time.Duration
	// BufferPoolPages caps how many sealed heap pages stay resident;
	// evicted pages spill to pages.db and fault back in on demand. 0
	// keeps everything in memory (the XRDB_BUFFER_POOL environment
	// variable, when set, still applies).
	BufferPoolPages int
}

const defaultAutoCheckpointBytes = 4 << 20

// On-disk layout inside the data directory.
const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
	// pagesFile holds spilled heap pages (append-only slot chains, see
	// pagefile.go); a v3 snapshot references pages inside it by slot.
	pagesFile = "pages.db"
	tmpSuffix = ".tmp"
)

// ErrWALFailed is the root sentinel for every commit refused after a
// WAL write or sync error. Callers receive ErrReadOnlyDegraded, which
// wraps it: the engine is degraded read-only, not dead — reads still
// serve the published snapshot and Recover can restore durability.
var ErrWALFailed = errors.New("sqldb: write-ahead log failed; database is read-only")

// degrade enters degraded read-only mode (idempotent; the first cause
// sticks until Recover). Safe to call with walMu held: lock order is
// walMu → healthMu.
func (d *DurableDB) degrade(cause error) {
	d.healthMu.Lock()
	defer d.healthMu.Unlock()
	if d.failed.Load() {
		return
	}
	d.degradeCause = cause
	d.degradeSince = time.Now()
	d.degradations++
	d.failed.Store(true)
}

// OpenDurable opens or recovers a durable database from the VFS's
// directory: the last good snapshot is loaded (an empty database if
// none) and the WAL's valid prefix replayed over it; a torn or corrupt
// WAL tail is truncated.
func OpenDurable(fs VFS, opts DurableOptions) (*DurableDB, error) {
	if opts.AutoCheckpointBytes == 0 {
		opts.AutoCheckpointBytes = defaultAutoCheckpointBytes
	}
	d := &DurableDB{fs: fs, opts: opts}

	// Leftover temp files from an interrupted checkpoint are garbage:
	// the rename never happened, so the real files are authoritative.
	_ = fs.Remove(snapshotFile + tmpSuffix)
	_ = fs.Remove(walFile + tmpSuffix)

	// Load the snapshot, if any. A v3 (paged) snapshot keeps its full
	// pages in pages.db and the tables fault them in lazily; any other
	// outcome means nothing references pages.db, so its leftover slots
	// are deleted rather than appended after forever.
	openPages := func() (File, error) { return fs.OpenRW(pagesFile) }
	var snapSeq uint64
	if _, err := fs.Size(snapshotFile); err == nil {
		f, err := fs.Open(snapshotFile)
		if err != nil {
			return nil, fmt.Errorf("sqldb: opening snapshot: %w", err)
		}
		data, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("sqldb: reading snapshot: %w", rerr)
		}
		var db *Database
		var seq uint64
		if bytes.HasPrefix(data, []byte(snapshotMagicV3)) {
			db, seq, err = loadStateV3(data, nil, openPages)
		} else {
			_ = fs.Remove(pagesFile)
			db, seq, err = LoadSnapshot(bytes.NewReader(data))
			if db != nil {
				db.pool.openFile = openPages
			}
		}
		if err != nil {
			return nil, fmt.Errorf("sqldb: recovering snapshot: %w", err)
		}
		d.db, snapSeq = db, seq
	} else if errors.Is(err, os.ErrNotExist) {
		_ = fs.Remove(pagesFile)
		d.db = New()
		d.db.pool.openFile = openPages
	} else {
		return nil, fmt.Errorf("sqldb: probing snapshot: %w", err)
	}

	// Replay the WAL's valid prefix and truncate the tail.
	wal, err := fs.OpenRW(walFile)
	if err != nil {
		return nil, fmt.Errorf("sqldb: opening wal: %w", err)
	}
	data, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: reading wal: %w", err)
	}
	records, goodLen := scanWAL(data)
	maxSeq := snapSeq
	for _, rec := range records {
		if rec.Seq <= snapSeq {
			continue // already captured by the snapshot
		}
		if err := d.db.applyRecord(rec); err != nil {
			wal.Close()
			return nil, fmt.Errorf("sqldb: wal replay (seq %d): %w", rec.Seq, err)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	if goodLen < int64(len(data)) {
		if err := wal.Truncate(goodLen); err != nil {
			wal.Close()
			return nil, fmt.Errorf("sqldb: truncating torn wal tail: %w", err)
		}
	}
	if _, err := wal.Seek(goodLen, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: seeking wal: %w", err)
	}
	d.wal = wal
	d.walSize = goodLen
	d.ackedSize = goodLen
	d.seq.Store(maxSeq)
	// Align the in-memory commit sequence (and the published state's
	// seq) with the WAL high-water mark, so the next commit's WAL
	// sequence and snapshot sequence continue as one numbering.
	d.db.setSeq(maxSeq)
	// The wal file may have just been created: persist its directory
	// entry now, or the first acked commits could vanish with an
	// unsynced name on power loss.
	if err := fs.SyncDir(); err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: syncing data directory: %w", err)
	}
	d.flushCond = sync.NewCond(&d.walMu)
	// Everything replayed so far is durable by definition; from here on
	// the spill barrier keeps a sealed page resident until the WAL fsync
	// covering its commits lands.
	d.ackedSeq.Store(maxSeq)
	d.db.pool.setSpillBarrier(func(seq uint64) bool { return seq <= d.ackedSeq.Load() })
	if opts.BufferPoolPages > 0 {
		d.db.SetBufferPool(opts.BufferPoolPages)
	}
	d.db.setCommitHook(d.stageCommit)
	return d, nil
}

// DB returns the underlying database. All reads and writes go through
// it; writes are logged and acknowledged durably.
func (d *DurableDB) DB() *Database { return d.db }

// stageCommit is the commit hook: it is invoked by the Database for
// every committed mutation, while the database write lock is still
// held, so WAL order equals commit order. It encodes and enqueues the
// record, then returns a wait function the committer calls *after*
// releasing the write lock; the wait blocks until a batch fsync covers
// the record, so the commit is acknowledged only once durable while
// later writers are already free to stage into the same batch.
//
// Commits made by the goroutine that owns an open Group don't enter
// the queue: they buffer into the group's single atomic frame, staged
// when the group closes. Commits from any other goroutine — even while
// a group is open — ride the normal pipeline and are durable before
// they are acknowledged.
func (d *DurableDB) stageCommit(rec *walRecord) (func() error, error) {
	rec.Seq = d.seq.Add(1)
	d.walMu.Lock()
	// The closed check lives under walMu so it is ordered against
	// Close's queue drain: a commit either stages in time to ride the
	// final flush, or observes the flag and is refused — never acked
	// memory-only against a closed WAL.
	if d.closed.Load() {
		d.walMu.Unlock()
		return nil, ErrClosed
	}
	// The degraded check lives under walMu so it is ordered against
	// Recover's queue drain: a commit either stages in time to receive
	// its verdict from the drain, or observes the flag and is refused.
	if d.failed.Load() {
		d.walMu.Unlock()
		return nil, ErrReadOnlyDegraded
	}
	if d.grouping && d.groupOwner.Load() == goid() {
		// Inside a group: buffer; the whole group lands as one frame
		// (one CRC unit) when it closes.
		d.groupBuf = append(d.groupBuf, rec)
		d.walMu.Unlock()
		return nil, nil
	}
	w := &commitWaiter{payload: encodeRecordPayload(nil, rec), seq: rec.Seq}
	d.queue = append(d.queue, w)
	d.commits++
	d.walMu.Unlock()
	return func() error { return d.awaitFlush(w) }, nil
}

// awaitFlush blocks until w's batch fsync completes and returns its
// outcome. The first waiter to find the WAL idle becomes the leader and
// flushes the whole queue; everyone else sleeps until woken.
func (d *DurableDB) awaitFlush(w *commitWaiter) error {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	for {
		if w.flushed {
			return w.err
		}
		if !d.flushing {
			d.flushLocked()
			continue
		}
		d.flushCond.Wait()
	}
}

// flushLocked drains the commit queue as one batch: every queued
// payload is framed into a single buffer, written with one Write and
// made durable with one Sync. Caller holds walMu with flushing false;
// the lock is released during the IO (flushing=true keeps the handle
// exclusive) so committers arriving mid-fsync stage into the next
// batch. Returns with walMu held. On error the engine enters degraded
// read-only mode and every commit in the batch fails — none were
// acknowledged.
func (d *DurableDB) flushLocked() {
	d.flushing = true
	if win := d.opts.GroupCommitWindow; win > 0 {
		// Linger with the lock released so more committers can queue up
		// behind this batch.
		d.walMu.Unlock()
		time.Sleep(win)
		d.walMu.Lock()
	}
	batch := d.queue
	d.queue = nil
	if len(batch) == 0 {
		d.flushing = false
		d.flushCond.Broadcast()
		return
	}
	var frame []byte
	for _, w := range batch {
		frame = appendFrame(frame, w.payload)
	}
	d.batches++
	if len(batch) > d.maxBatch {
		d.maxBatch = len(batch)
	}
	wal := d.wal
	d.walMu.Unlock()

	var n int
	var err error
	if wal == nil {
		err = ErrReadOnlyDegraded
	} else {
		n, err = wal.Write(frame)
		if err != nil {
			err = fmt.Errorf("sqldb: wal append: %w", err)
		} else if !d.opts.NoSync {
			if serr := wal.Sync(); serr != nil {
				err = fmt.Errorf("sqldb: wal sync: %w", serr)
			}
		}
	}

	d.walMu.Lock()
	d.walSize += int64(n)
	if !d.opts.NoSync && err == nil {
		d.fsyncs++
	}
	if err != nil {
		d.degrade(err)
	} else {
		d.ackedSize = d.walSize
		top := d.ackedSeq.Load()
		for _, w := range batch {
			if w.seq > top {
				top = w.seq
			}
		}
		d.ackedSeq.Store(top)
		if d.opts.AutoCheckpointBytes > 0 && d.walSize >= d.opts.AutoCheckpointBytes {
			d.needCkpt.Store(true)
		}
	}
	for _, w := range batch {
		w.flushed = true
		w.err = err
	}
	d.flushing = false
	d.flushCond.Broadcast()
}

// goid returns the current goroutine's id, parsed from the
// runtime.Stack header ("goroutine N [...]"). Used only to attribute
// commits to an open Group and to catch re-entrant Group/Checkpoint
// calls; never for synchronization.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), parse digits up to the next space.
	var id int64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// DurableStats reports group-commit pipeline counters.
type DurableStats struct {
	// Commits counts staged WAL commits (a Group's atomic frame counts
	// as one).
	Commits uint64
	// Fsyncs counts WAL fsyncs; Fsyncs/Commits < 1 means batching is
	// amortizing the sync cost across concurrent writers.
	Fsyncs uint64
	// Batches counts flushes, and MaxBatch is the largest number of
	// commits covered by a single flush.
	Batches  uint64
	MaxBatch int
	// Health reports the durability layer's current state.
	Health Health
}

// Health describes whether the durability layer is serving writes, has
// dropped to degraded read-only mode after a storage fault, or has been
// closed.
type Health struct {
	// State is "ok", "degraded" or "closed".
	State string
	// Cause is the first storage fault that degraded the engine (empty
	// when ok); Since is when it happened.
	Cause string
	Since time.Time
	// Degradations and Recoveries count mode transitions over the
	// engine's lifetime.
	Degradations uint64
	Recoveries   uint64
}

// Health reports the current durability state.
func (d *DurableDB) Health() Health {
	d.healthMu.Lock()
	defer d.healthMu.Unlock()
	h := Health{State: "ok", Degradations: d.degradations, Recoveries: d.recoveries}
	if d.failed.Load() {
		h.State = "degraded"
		h.Since = d.degradeSince
		if d.degradeCause != nil {
			h.Cause = d.degradeCause.Error()
		}
	}
	if d.closed.Load() {
		// Closed is the terminal lifecycle state; a degraded cause, if
		// any, stays visible for post-mortem inspection.
		h.State = "closed"
	}
	return h
}

// Stats returns a snapshot of the pipeline counters.
func (d *DurableDB) Stats() DurableStats {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return DurableStats{
		Commits:  d.commits,
		Fsyncs:   d.fsyncs,
		Batches:  d.batches,
		MaxBatch: d.maxBatch,
		Health:   d.Health(),
	}
}

// Group runs fn with commit buffering: every record fn commits (from
// fn's own goroutine) is written as a single WAL frame when fn
// returns, so the whole batch is crash-atomic — recovery sees all of
// it or none of it. If fn errors after committing some statements, the
// partial batch is still flushed (the in-memory state has those
// effects, and durable state must match). Groups serialize with each
// other. Commits from *other* goroutines during a group never join its
// atomicity unit: they ride the normal group-commit pipeline and are
// durable before they are acknowledged, exactly as without a group.
// Checkpoint/MaybeCheckpoint must not be called inside fn (they return
// an error rather than self-deadlock).
func (d *DurableDB) Group(fn func() error) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if d.failed.Load() {
		return ErrReadOnlyDegraded
	}
	gid := goid()
	if d.groupOwner.Load() == gid {
		return ErrNestedGroup
	}
	d.ckptMu.Lock() // keep snapshot/rotation out of the buffer-to-flush window
	if d.closed.Load() {
		// Close won ckptMu first: the WAL is gone, so the group's frame
		// could never become durable. Refuse before buffering anything.
		d.ckptMu.Unlock()
		return ErrClosed
	}
	d.walMu.Lock()
	d.grouping = true
	d.groupOwner.Store(gid)
	d.walMu.Unlock()

	fnErr := fn()

	d.walMu.Lock()
	d.grouping = false
	d.groupOwner.Store(0)
	buf := d.groupBuf
	d.groupBuf = nil
	var w *commitWaiter
	if len(buf) > 0 {
		// Stage the whole group as one frame in the pipeline; it shares
		// its batch fsync with any concurrently queued commits.
		group := &walRecord{Op: opGroup, Seq: buf[0].Seq, Group: buf}
		w = &commitWaiter{payload: encodeRecordPayload(nil, group), seq: group.maxSeq()}
		d.queue = append(d.queue, w)
		d.commits++
	}
	d.walMu.Unlock()
	d.ckptMu.Unlock()
	var flushErr error
	if w != nil {
		flushErr = d.awaitFlush(w)
	}
	if fnErr != nil {
		return fnErr
	}
	return flushErr
}

// Checkpoint writes an atomic snapshot of the current state and
// rotates the WAL. The protocol never leaves the directory without a
// loadable state:
//
//  1. Capture the snapshot (readers see a consistent cut; the commit
//     sequence captured with it marks what the snapshot contains).
//  2. Write it to snapshot.db.tmp, fsync, rename over snapshot.db,
//     fsync the directory.
//  3. Rewrite the WAL keeping only frames newer than the snapshot
//     (usually none), via the same write-fsync-rename-fsync dance.
//
// A crash at any byte of this sequence recovers to a consistent state:
// before the rename the old snapshot + full WAL win; after it, the new
// snapshot's sequence number makes the old WAL frames no-ops.
func (d *DurableDB) Checkpoint() error {
	if d.closed.Load() {
		return ErrClosed
	}
	if d.failed.Load() {
		return ErrReadOnlyDegraded
	}
	if d.groupOwner.Load() == goid() {
		// Group holds ckptMu across the user callback; taking it again
		// here would self-deadlock, so refuse loudly instead.
		return ErrCheckpointInsideGroup
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Close serializes on ckptMu and sets the flag while holding it, so
	// this check is definitive: past here the store cannot close under
	// us, and a checkpoint can never rotate — and re-open — the WAL
	// after Close has returned.
	if d.closed.Load() {
		return ErrClosed
	}

	// 1. Capture. The latest published state is pinned with one atomic
	// read — writers are not quiesced; the state's own commit sequence
	// names exactly which WAL records it contains. With a buffer pool
	// active this writes a paged (v3) snapshot: full pages are flushed
	// to pages.db (most already were, when evicted) and referenced by
	// slot, not re-serialized.
	var buf bytes.Buffer
	snapSeq, err := d.saveCheckpoint(&buf, d.db)
	if err != nil {
		return err
	}

	// 2. Atomic snapshot replacement.
	if err := WriteFileAtomic(d.fs, snapshotFile, buf.Bytes()); err != nil {
		d.degrade(err)
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}

	// 3. WAL rotation. Appends are blocked while the log is rewritten;
	// an in-flight batch fsync holds the handle with walMu released, so
	// wait for it to land before swapping files underneath it. Commits
	// still queued (staged but not yet flushing) are safe: their frames
	// move to the new WAL when their batch flushes, and their sequence
	// numbers are above the snapshot's, so recovery replays them.
	d.walMu.Lock()
	defer d.walMu.Unlock()
	for d.flushing {
		d.flushCond.Wait()
	}
	if d.failed.Load() {
		return ErrReadOnlyDegraded
	}
	if err := d.rotateLocked(snapSeq); err != nil {
		d.degrade(err)
		return fmt.Errorf("sqldb: wal rotation: %w", err)
	}
	d.checkpoints.Add(1)
	d.needCkpt.Store(false)
	return nil
}

// saveCheckpoint serializes db's published state for a checkpoint:
// paged (v3) when a buffer pool is active — every referenced page is
// made durable in pages.db (spill + fsync) *before* this returns, so
// the snapshot rename that follows never publishes a reference to an
// unwritten page — or a plain v2 snapshot when the pool is off. The
// pages file is always d.db's pool: it is the file's single appender,
// even when db is a recovery rebuild.
func (d *DurableDB) saveCheckpoint(w io.Writer, db *Database) (uint64, error) {
	ps := d.db.pool
	state := db.state.Load()
	if ps.capNow() > 0 {
		if err := writeStateV3(w, state, ps); err != nil {
			return 0, err
		}
		if err := ps.sync(); err != nil {
			return 0, fmt.Errorf("sqldb: syncing pages file: %w", err)
		}
		return state.seq, nil
	}
	return state.seq, writeState(w, state)
}

// rotateLocked rewrites the WAL keeping only frames whose records are
// newer than snapSeq. Caller holds walMu.
func (d *DurableDB) rotateLocked(snapSeq uint64) error {
	rf, err := d.fs.Open(walFile)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(rf)
	rf.Close()
	if err != nil {
		return err
	}
	frames, _ := scanWALFrames(data)
	var keep []byte
	for _, f := range frames {
		if f.rec.maxSeq() > snapSeq {
			keep = append(keep, f.raw...)
		}
	}
	if err := WriteFileAtomic(d.fs, walFile, keep); err != nil {
		return err
	}
	// The file now holds exactly the kept (all acknowledged) frames,
	// whatever happens to the handle below.
	d.ackedSize = int64(len(keep))
	// The old handle points at the replaced file; reopen the new one.
	// Nil the field across the gap: if reopening fails we must not
	// leave d.wal aimed at a closed file, or later Close/flush would
	// operate on a dead handle instead of failing cleanly. (The handle
	// may already be nil when Recover retries after a failed rotation.)
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	w, err := d.fs.OpenRW(walFile)
	if err != nil {
		return err
	}
	if _, err := w.Seek(int64(len(keep)), io.SeekStart); err != nil {
		w.Close()
		return err
	}
	d.wal = w
	d.walSize = int64(len(keep))
	return nil
}

// MaybeCheckpoint checkpoints if the WAL has outgrown the
// auto-checkpoint threshold. It reports whether a checkpoint ran.
func (d *DurableDB) MaybeCheckpoint() (bool, error) {
	if !d.needCkpt.Load() {
		return false, nil
	}
	if err := d.Checkpoint(); err != nil {
		return false, err
	}
	return true, nil
}

// WALSize reports the WAL's current length in bytes.
func (d *DurableDB) WALSize() int64 {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.walSize
}

// Checkpoints reports how many checkpoints have completed.
func (d *DurableDB) Checkpoints() uint64 { return d.checkpoints.Load() }

// Failed reports whether the engine is in degraded read-only mode
// after a storage fault. Reads keep serving the published snapshot;
// Recover attempts to restore read-write service.
func (d *DurableDB) Failed() bool { return d.failed.Load() }

// recoverAttempts bounds Recover's retry loop; attempts after the
// first back off starting at recoverBackoff, doubling each time.
const (
	recoverAttempts = 3
	recoverBackoff  = 2 * time.Millisecond
)

// Recover attempts to leave degraded read-only mode by rebuilding the
// engine on exactly the acknowledged history:
//
//  1. Quiesce the pipeline: wait out any in-flight flush and drain
//     queued commits (their waiters get their verdicts), then discard
//     the staged-but-unpublished chain so the write path restarts from
//     the published state.
//  2. Reconstruct the acked state from disk — the last good snapshot
//     plus the WAL prefix covered by a successful fsync. The live
//     published state is NOT a safe source: a failed group commit has
//     already published its member statements in memory while their
//     atomic frame never reached the WAL, and conversely a failed
//     batch can leave whole frames appended on disk that no caller was
//     ever acked for. The fsync-covered prefix is, by definition, the
//     acked history and nothing else.
//  3. Checkpoint that state atomically to snapshot.db, replace the WAL
//     with a fresh empty log, and install the rebuilt state as the
//     live one (published and staged), so reads and recovery agree
//     again.
//
// Each attempt that fails against still-faulty storage backs off and
// retries, up to recoverAttempts; the engine re-enters read-write mode
// only after the checkpoint sequence fully succeeds. Calling Recover
// when healthy is a no-op.
func (d *DurableDB) Recover() error {
	if d.closed.Load() {
		return ErrClosed
	}
	if !d.failed.Load() {
		return nil
	}
	if d.groupOwner.Load() == goid() {
		return errorf("recover inside durability group")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	if !d.failed.Load() {
		return nil
	}

	// 1. Quiesce. Draining the queue delivers each waiter's error (the
	// storage is still marked degraded, so none can be newly acked
	// unless their write genuinely lands); resetStaged then waits for
	// those commits to consume their publish tickets and rewinds the
	// staged chain to the published state. New commits can't race in:
	// stageCommit refuses while degraded.
	d.walMu.Lock()
	for d.flushing {
		d.flushCond.Wait()
	}
	for len(d.queue) > 0 {
		d.flushLocked()
	}
	d.walMu.Unlock()
	d.db.resetStaged()

	var lastErr error
	backoff := recoverBackoff
	for attempt := 0; attempt < recoverAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if lastErr = d.recoverOnce(); lastErr == nil {
			d.healthMu.Lock()
			d.degradeCause = nil
			d.degradeSince = time.Time{}
			d.recoveries++
			d.failed.Store(false)
			d.healthMu.Unlock()
			d.checkpoints.Add(1)
			d.needCkpt.Store(false)
			return nil
		}
	}
	return fmt.Errorf("sqldb: recover: %w", lastErr)
}

// recoverOnce runs one rebuild-checkpoint-restart attempt. Caller
// holds ckptMu with the pipeline quiesced.
func (d *DurableDB) recoverOnce() error {
	d.walMu.Lock()
	acked := d.ackedSize
	d.walMu.Unlock()
	rdb, maxSeq, err := d.loadAckedState(acked)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := d.saveCheckpoint(&buf, rdb); err != nil {
		return err
	}
	if err := WriteFileAtomic(d.fs, snapshotFile, buf.Bytes()); err != nil {
		return err
	}
	d.walMu.Lock()
	if err := WriteFileAtomic(d.fs, walFile, nil); err != nil {
		d.walMu.Unlock()
		return err
	}
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	w, err := d.fs.OpenRW(walFile)
	if err != nil {
		d.walMu.Unlock()
		return err
	}
	d.wal = w
	d.walSize = 0
	d.ackedSize = 0
	d.walMu.Unlock()
	// Install the rebuilt state as the live one — published and staged
	// — dropping any published-but-unacked group mutations, and restart
	// the commit numbering at the acked high-water mark. This must not
	// run under walMu: a writer holding the database write lock blocks
	// on walMu in stageCommit, and resetToRecovered needs that write
	// lock — taking it with walMu held deadlocks against such a writer.
	// Running outside walMu is safe: the degraded flag is still set, so
	// every commit that wins walMu is refused before touching state.
	d.db.resetToRecovered(rdb.state.Load())
	d.seq.Store(maxSeq)
	// Commit numbering restarts at maxSeq: rewind the spill barrier's
	// horizon with it, or pages sealed by post-recovery commits (seq
	// maxSeq+1…) could evict before their WAL fsync lands.
	d.ackedSeq.Store(maxSeq)
	return nil
}

// loadAckedState loads the last good snapshot and replays the first
// ackedLen bytes of the WAL — the prefix covered by a successful fsync
// — into a fresh database: the acknowledged history, nothing more.
func (d *DurableDB) loadAckedState(ackedLen int64) (*Database, uint64, error) {
	var rdb *Database
	var snapSeq uint64
	if _, err := d.fs.Size(snapshotFile); err == nil {
		f, err := d.fs.Open(snapshotFile)
		if err != nil {
			return nil, 0, fmt.Errorf("sqldb: opening snapshot: %w", err)
		}
		data, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return nil, 0, fmt.Errorf("sqldb: reading snapshot: %w", rerr)
		}
		if bytes.HasPrefix(data, []byte(snapshotMagicV3)) {
			// Adopt the snapshot's pages into the live engine's pool:
			// it stays the pages file's single appender, and the rebuilt
			// state keeps paging lazily after resetToRecovered installs
			// it. A rebuild database built by LoadSnapshot (v2 path)
			// deliberately gets no pages-file access — two independent
			// slot allocators appending one file would collide.
			rdb, snapSeq, err = loadStateV3(data, d.db.pool, nil)
		} else {
			rdb, snapSeq, err = LoadSnapshot(bytes.NewReader(data))
		}
		if err != nil {
			return nil, 0, fmt.Errorf("sqldb: recovering snapshot: %w", err)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		rdb = New()
	} else {
		return nil, 0, fmt.Errorf("sqldb: probing snapshot: %w", err)
	}
	f, err := d.fs.Open(walFile)
	if err != nil {
		return nil, 0, fmt.Errorf("sqldb: opening wal: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("sqldb: reading wal: %w", err)
	}
	if int64(len(data)) > ackedLen {
		data = data[:ackedLen]
	}
	records, _ := scanWAL(data)
	maxSeq := snapSeq
	for _, rec := range records {
		if rec.Seq <= snapSeq {
			continue
		}
		if err := rdb.applyRecord(rec); err != nil {
			return nil, 0, fmt.Errorf("sqldb: wal replay (seq %d): %w", rec.Seq, err)
		}
		if s := rec.maxSeq(); s > maxSeq {
			maxSeq = s
		}
	}
	rdb.setSeq(maxSeq)
	return rdb, maxSeq, nil
}

// Closed reports whether Close has completed (or is in progress): the
// store refuses commits, checkpoints, groups and recovery with
// ErrClosed. Reads keep serving the last published snapshot.
func (d *DurableDB) Closed() bool { return d.closed.Load() }

// Close is the store's lifecycle edge: it drains any in-flight or
// queued batches (commits staged before Close are still acknowledged
// durably), closes the WAL, and permanently refuses every later write
// path with ErrClosed. The commit hook stays attached so a post-Close
// commit fails typed instead of being acknowledged while memory-only.
// Close serializes with Checkpoint/MaybeCheckpoint/Recover on ckptMu,
// so a racing checkpoint can never rotate — and re-open — the WAL
// after Close returns. Double-Close is idempotent; Close from inside
// an open durability Group is refused with ErrCloseInsideGroup (the
// group holds ckptMu; a Close from another goroutine simply waits for
// the group to finish). It does not checkpoint; the WAL replays on the
// next open.
func (d *DurableDB) Close() error {
	if d.groupOwner.Load() == goid() {
		return ErrCloseInsideGroup
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.closed.Load() {
		return nil
	}
	// Sticky from here: commits that already staged drain below and are
	// acked after their fsync; anything arriving later sees the flag
	// under walMu and is refused with ErrClosed.
	d.closed.Store(true)
	for d.flushing {
		d.flushCond.Wait()
	}
	for len(d.queue) > 0 {
		d.flushLocked()
	}
	// Flush and fsync the pages file, but keep its handle: reads still
	// serve the published snapshot after Close, and an evicted page can
	// only come back from disk. Further spills are refused (the pool
	// grows past its cap instead).
	err := d.db.pool.close()
	if d.wal == nil {
		return err
	}
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	d.wal = nil
	return err
}

// WriteFileAtomic writes data to name so that a crash at any point
// leaves either the old file or the new one, never a torn mix: temp
// file in the same directory, fsync, rename, fsync the directory.
func WriteFileAtomic(fs VFS, name string, data []byte) error {
	tmp := name + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		return err
	}
	return fs.SyncDir()
}
