package sqldb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// DurableDB binds a Database to a data directory (through a VFS) with
// write-ahead logging and atomic checkpointing:
//
//   - Every committed mutation is appended to the WAL and fsynced
//     before the call returns (see db.go's commit-logger chokepoint).
//   - Checkpoint writes a CRC-sealed snapshot to a temp file, fsyncs
//     it, renames it over the previous snapshot, fsyncs the directory,
//     then rotates the WAL — so there is never a moment without a
//     loadable on-disk state.
//   - OpenDurable recovers by loading the last good snapshot and
//     replaying the WAL's valid prefix, truncating the torn tail.
//
// Failure model is fail-stop: once a WAL append or sync fails, the
// DurableDB refuses further commits (ErrWALFailed) — the in-memory
// state may be ahead of the durable state, and continuing to
// acknowledge writes would silently widen that gap.
type DurableDB struct {
	fs   VFS
	db   *Database
	opts DurableOptions

	// seq is the last assigned commit sequence number; records above
	// the snapshot's sequence are replayed, the rest skipped.
	seq atomic.Uint64

	// walMu serializes WAL appends, group buffering and log rotation.
	walMu    sync.Mutex
	wal      File
	walSize  int64
	grouping bool
	groupBuf []*walRecord

	// ckptMu serializes checkpoints.
	ckptMu      sync.Mutex
	checkpoints atomic.Uint64
	needCkpt    atomic.Bool
	failed      atomic.Bool
}

// DurableOptions tune a DurableDB.
type DurableOptions struct {
	// AutoCheckpointBytes triggers MaybeCheckpoint once the WAL grows
	// past this size; 0 means the 4 MiB default, negative disables
	// auto-checkpointing.
	AutoCheckpointBytes int64
	// NoSync skips the per-commit fsync (bulk loads, benchmarks). A
	// crash may then lose acknowledged commits; recovery is still
	// never corrupt thanks to the CRC framing.
	NoSync bool
}

const defaultAutoCheckpointBytes = 4 << 20

// On-disk layout inside the data directory.
const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
	tmpSuffix    = ".tmp"
)

// ErrWALFailed is returned for every commit after a WAL write or sync
// error: the engine is fail-stop.
var ErrWALFailed = errors.New("sqldb: write-ahead log failed; database is read-only")

// OpenDurable opens or recovers a durable database from the VFS's
// directory: the last good snapshot is loaded (an empty database if
// none) and the WAL's valid prefix replayed over it; a torn or corrupt
// WAL tail is truncated.
func OpenDurable(fs VFS, opts DurableOptions) (*DurableDB, error) {
	if opts.AutoCheckpointBytes == 0 {
		opts.AutoCheckpointBytes = defaultAutoCheckpointBytes
	}
	d := &DurableDB{fs: fs, opts: opts}

	// Leftover temp files from an interrupted checkpoint are garbage:
	// the rename never happened, so the real files are authoritative.
	_ = fs.Remove(snapshotFile + tmpSuffix)
	_ = fs.Remove(walFile + tmpSuffix)

	// Load the snapshot, if any.
	var snapSeq uint64
	if _, err := fs.Size(snapshotFile); err == nil {
		f, err := fs.Open(snapshotFile)
		if err != nil {
			return nil, fmt.Errorf("sqldb: opening snapshot: %w", err)
		}
		db, seq, err := LoadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("sqldb: recovering snapshot: %w", err)
		}
		d.db, snapSeq = db, seq
	} else if errors.Is(err, os.ErrNotExist) {
		d.db = New()
	} else {
		return nil, fmt.Errorf("sqldb: probing snapshot: %w", err)
	}

	// Replay the WAL's valid prefix and truncate the tail.
	wal, err := fs.OpenRW(walFile)
	if err != nil {
		return nil, fmt.Errorf("sqldb: opening wal: %w", err)
	}
	data, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: reading wal: %w", err)
	}
	records, goodLen := scanWAL(data)
	maxSeq := snapSeq
	for _, rec := range records {
		if rec.Seq <= snapSeq {
			continue // already captured by the snapshot
		}
		if err := d.db.applyRecord(rec); err != nil {
			wal.Close()
			return nil, fmt.Errorf("sqldb: wal replay (seq %d): %w", rec.Seq, err)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	if goodLen < int64(len(data)) {
		if err := wal.Truncate(goodLen); err != nil {
			wal.Close()
			return nil, fmt.Errorf("sqldb: truncating torn wal tail: %w", err)
		}
	}
	if _, err := wal.Seek(goodLen, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: seeking wal: %w", err)
	}
	d.wal = wal
	d.walSize = goodLen
	d.seq.Store(maxSeq)
	// Align the in-memory commit sequence (and the published state's
	// seq) with the WAL high-water mark, so the next commit's WAL
	// sequence and snapshot sequence continue as one numbering.
	d.db.setSeq(maxSeq)
	// The wal file may have just been created: persist its directory
	// entry now, or the first acked commits could vanish with an
	// unsynced name on power loss.
	if err := fs.SyncDir(); err != nil {
		wal.Close()
		return nil, fmt.Errorf("sqldb: syncing data directory: %w", err)
	}
	d.db.setCommitLogger(d.logCommit)
	return d, nil
}

// DB returns the underlying database. All reads and writes go through
// it; writes are logged and acknowledged durably.
func (d *DurableDB) DB() *Database { return d.db }

// logCommit is the commit logger: it is invoked by the Database for
// every committed mutation, while the database write lock is still
// held, so WAL order equals commit order.
func (d *DurableDB) logCommit(rec *walRecord) error {
	if d.failed.Load() {
		return ErrWALFailed
	}
	rec.Seq = d.seq.Add(1)
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.grouping {
		// Inside a group: buffer; the whole group lands as one frame
		// (one CRC unit) when it closes.
		d.groupBuf = append(d.groupBuf, rec)
		return nil
	}
	return d.appendFrameLocked(encodeRecordPayload(nil, rec))
}

// appendFrameLocked frames, writes and (unless NoSync) fsyncs one
// payload. Caller holds walMu.
func (d *DurableDB) appendFrameLocked(payload []byte) error {
	frame := appendFrame(nil, payload)
	n, err := d.wal.Write(frame)
	d.walSize += int64(n)
	if err != nil {
		d.failed.Store(true)
		return fmt.Errorf("sqldb: wal append: %w", err)
	}
	if !d.opts.NoSync {
		if err := d.wal.Sync(); err != nil {
			d.failed.Store(true)
			return fmt.Errorf("sqldb: wal sync: %w", err)
		}
	}
	if d.opts.AutoCheckpointBytes > 0 && d.walSize >= d.opts.AutoCheckpointBytes {
		d.needCkpt.Store(true)
	}
	return nil
}

// Group runs fn with commit buffering: every record fn commits is
// written as a single WAL frame when fn returns, so the whole batch is
// crash-atomic — recovery sees all of it or none of it. If fn errors
// after committing some statements, the partial batch is still flushed
// (the in-memory state has those effects, and durable state must
// match). Groups serialize with each other; independent commits from
// other goroutines during a group join its atomicity unit and are
// durable only once the group closes, so groups are meant for
// single-writer phases (document load, subtree insertion).
func (d *DurableDB) Group(fn func() error) error {
	if d.failed.Load() {
		return ErrWALFailed
	}
	d.ckptMu.Lock() // a checkpoint between buffer and flush is fine, but keep rotation out of the window
	d.walMu.Lock()
	if d.grouping {
		d.walMu.Unlock()
		d.ckptMu.Unlock()
		return errorf("nested durability group")
	}
	d.grouping = true
	d.walMu.Unlock()

	fnErr := fn()

	d.walMu.Lock()
	d.grouping = false
	buf := d.groupBuf
	d.groupBuf = nil
	var flushErr error
	if len(buf) > 0 {
		group := &walRecord{Op: opGroup, Seq: buf[0].Seq, Group: buf}
		flushErr = d.appendFrameLocked(encodeRecordPayload(nil, group))
	}
	d.walMu.Unlock()
	d.ckptMu.Unlock()
	if fnErr != nil {
		return fnErr
	}
	return flushErr
}

// Checkpoint writes an atomic snapshot of the current state and
// rotates the WAL. The protocol never leaves the directory without a
// loadable state:
//
//  1. Capture the snapshot (readers see a consistent cut; the commit
//     sequence captured with it marks what the snapshot contains).
//  2. Write it to snapshot.db.tmp, fsync, rename over snapshot.db,
//     fsync the directory.
//  3. Rewrite the WAL keeping only frames newer than the snapshot
//     (usually none), via the same write-fsync-rename-fsync dance.
//
// A crash at any byte of this sequence recovers to a consistent state:
// before the rename the old snapshot + full WAL win; after it, the new
// snapshot's sequence number makes the old WAL frames no-ops.
func (d *DurableDB) Checkpoint() error {
	if d.failed.Load() {
		return ErrWALFailed
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	// 1. Capture. SaveSnapshot pins the latest published state with one
	// atomic read — writers are not quiesced; the state's own commit
	// sequence names exactly which WAL records it contains.
	var buf bytes.Buffer
	snapSeq, err := d.db.SaveSnapshot(&buf)
	if err != nil {
		return err
	}

	// 2. Atomic snapshot replacement.
	if err := WriteFileAtomic(d.fs, snapshotFile, buf.Bytes()); err != nil {
		d.failed.Store(true)
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}

	// 3. WAL rotation. Appends are blocked while the log is rewritten.
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if err := d.rotateLocked(snapSeq); err != nil {
		d.failed.Store(true)
		return fmt.Errorf("sqldb: wal rotation: %w", err)
	}
	d.checkpoints.Add(1)
	d.needCkpt.Store(false)
	return nil
}

// rotateLocked rewrites the WAL keeping only frames whose records are
// newer than snapSeq. Caller holds walMu.
func (d *DurableDB) rotateLocked(snapSeq uint64) error {
	rf, err := d.fs.Open(walFile)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(rf)
	rf.Close()
	if err != nil {
		return err
	}
	frames, _ := scanWALFrames(data)
	var keep []byte
	for _, f := range frames {
		if f.rec.maxSeq() > snapSeq {
			keep = append(keep, f.raw...)
		}
	}
	if err := WriteFileAtomic(d.fs, walFile, keep); err != nil {
		return err
	}
	// The old handle points at the replaced file; reopen the new one.
	d.wal.Close()
	w, err := d.fs.OpenRW(walFile)
	if err != nil {
		return err
	}
	if _, err := w.Seek(int64(len(keep)), io.SeekStart); err != nil {
		w.Close()
		return err
	}
	d.wal = w
	d.walSize = int64(len(keep))
	return nil
}

// MaybeCheckpoint checkpoints if the WAL has outgrown the
// auto-checkpoint threshold. It reports whether a checkpoint ran.
func (d *DurableDB) MaybeCheckpoint() (bool, error) {
	if !d.needCkpt.Load() {
		return false, nil
	}
	if err := d.Checkpoint(); err != nil {
		return false, err
	}
	return true, nil
}

// WALSize reports the WAL's current length in bytes.
func (d *DurableDB) WALSize() int64 {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.walSize
}

// Checkpoints reports how many checkpoints have completed.
func (d *DurableDB) Checkpoints() uint64 { return d.checkpoints.Load() }

// Failed reports whether the engine has gone fail-stop after a WAL
// error.
func (d *DurableDB) Failed() bool { return d.failed.Load() }

// Close detaches the logger and closes the WAL. It does not
// checkpoint; the WAL replays on the next open.
func (d *DurableDB) Close() error {
	d.db.setCommitLogger(nil)
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	return err
}

// WriteFileAtomic writes data to name so that a crash at any point
// leaves either the old file or the new one, never a torn mix: temp
// file in the same directory, fsync, rename, fsync the directory.
func WriteFileAtomic(fs VFS, name string, data []byte) error {
	tmp := name + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		return err
	}
	return fs.SyncDir()
}
