package sqldb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Snapshot persistence: Save writes the whole database (schemas, live
// rows, index definitions) as a sealed gob stream; LoadFrom rebuilds
// it, re-deriving the B-trees. Snapshots are the checkpoint half of the
// durability subsystem — the write-ahead log (wal.go) covers the
// commits since the last checkpoint, and DurableDB (durable.go) ties
// the two together with crash recovery. A snapshot also stands alone as
// the portable dump format behind Store.SaveDB/OpenSaved.
//
// Format v2 wraps the gob payload in a sealed envelope:
//
//	"xmlrdb-snapshot-v2\n" | u32 payload length | gob payload | u32 CRC32
//
// so a truncated or bit-flipped snapshot is detected with a clear
// error instead of being half-loaded. Legacy v1 streams (bare gob,
// magic field inside) are still accepted by LoadFrom.

const (
	snapshotMagic     = "xmlrdb-snapshot-v1"
	snapshotMagicV2   = "xmlrdb-snapshot-v2\n"
	snapshotVersionV2 = 2
	// v3 is the paged checkpoint format used by DurableDB when a buffer
	// pool is active: full heap pages stay in the pages file (pages.db)
	// and the snapshot references them by slot chain, so a checkpoint
	// flushes dirty pages instead of serializing every row, and recovery
	// faults pages in lazily. v2 remains the portable dump format.
	snapshotMagicV3   = "xmlrdb-snapshot-v3\n"
	snapshotVersionV3 = 3
)

type savedColumn struct {
	Name    string
	Type    Type
	NotNull bool
}

type savedTable struct {
	Name       string
	Columns    []savedColumn
	PrimaryKey []int
	Rows       [][]Value
	Indexes    []IndexDef
}

type snapshot struct {
	Magic   string
	Version int
	// Seq is the last WAL commit sequence the snapshot contains; WAL
	// replay skips records at or below it. Zero for standalone dumps.
	Seq    uint64
	Tables []savedTable
}

// savedPageRef names one full heap page by its slot chain in the pages
// file: Pid is the 1-based first slot, Slots the chain length.
type savedPageRef struct {
	Pid   int64
	Slots int32
}

type savedTableV3 struct {
	Name       string
	Columns    []savedColumn
	PrimaryKey []int
	// Count is the allocated rowid count (tombstones included), Live
	// the non-deleted rows, Bytes the tracked payload size.
	Count int64
	Live  int
	Bytes int64
	// Pages references the table's full pages, in rowid order, inside
	// the pages file. Tail holds the trailing partial page's slots
	// (rowids Count&^heapPageMask .. Count-1) in the page payload
	// encoding (uvarint arity bias + WAL value codec).
	Pages []savedPageRef
	Tail  []byte
	// Indexes lists secondary index definitions (the primary key index
	// is re-derived); trees are rebuilt by scanning on load.
	Indexes []IndexDef
}

type snapshotV3 struct {
	Magic   string
	Version int
	Seq     uint64
	Tables  []savedTableV3
}

// Save writes a snapshot of the current published state.
func (db *Database) Save(w io.Writer) error {
	_, err := db.SaveSnapshot(w)
	return err
}

// SaveSnapshot captures the latest published state — one atomic pointer
// read, no lock, so writers keep committing while it serializes — and
// writes it, returning the commit sequence the snapshot contains. The
// returned seq names the exact WAL position the snapshot covers: replay
// of records at or below it would be redundant.
func (db *Database) SaveSnapshot(w io.Writer) (uint64, error) {
	state := db.state.Load()
	return state.seq, writeState(w, state)
}

// writeState serializes one immutable state version.
func writeState(w io.Writer, state *dbState) error {
	snap := snapshot{Magic: snapshotMagic, Version: snapshotVersionV2, Seq: state.seq}
	names := make([]string, 0, len(state.tables))
	for n := range state.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := state.tables[n]
		st := savedTable{
			Name: t.def.Name,
			// append to a nil base keeps "no primary key" as nil, so a
			// restored def stays structurally identical to the original.
			PrimaryKey: append([]int(nil), t.def.PrimaryKey...),
		}
		for _, c := range t.def.Columns {
			st.Columns = append(st.Columns, savedColumn{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		var ref pageRef
		for rid := int64(0); rid < t.slotCount(); rid++ {
			if row := t.rowRef(rid, &ref); row != nil {
				st.Rows = append(st.Rows, row)
			}
		}
		ref.release()
		for _, idx := range t.indexes {
			if idx == t.pkIndex {
				continue // re-derived from the primary key
			}
			st.Indexes = append(st.Indexes, idx.def)
		}
		snap.Tables = append(snap.Tables, st)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return err
	}
	if _, err := io.WriteString(w, snapshotMagicV2); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	_, err := w.Write(trailer[:])
	return err
}

// writeSealed wraps payload in the sealed snapshot envelope:
// magic | u32 length | payload | u32 CRC32.
func writeSealed(w io.Writer, magic string, payload []byte) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(trailer[:])
	return err
}

// openSealed validates a sealed envelope and returns its payload.
func openSealed(data []byte, magic string) ([]byte, error) {
	body := data[len(magic):]
	if len(body) < 8 {
		return nil, errorf("snapshot truncated (no payload header)")
	}
	n := int64(binary.LittleEndian.Uint32(body))
	if n > int64(len(body))-8 {
		return nil, errorf("snapshot truncated (payload %d bytes, have %d)", n, int64(len(body))-8)
	}
	if n < int64(len(body))-8 {
		return nil, errorf("snapshot has %d trailing bytes", int64(len(body))-8-n)
	}
	payload := body[4 : 4+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[4+n:]) {
		return nil, errorf("snapshot corrupt (CRC mismatch)")
	}
	return payload, nil
}

// writeStateV3 serializes a paged checkpoint of state: every full page
// is guaranteed an on-disk copy in ps's pages file (spilling it now if
// still dirty) and referenced by slot chain; only the partial tail
// pages' rows are serialized inline. The caller must fsync the pages
// file before atomically installing the snapshot that references it.
func writeStateV3(w io.Writer, state *dbState, ps *pageStore) error {
	snap := snapshotV3{Magic: snapshotMagic, Version: snapshotVersionV3, Seq: state.seq}
	names := make([]string, 0, len(state.tables))
	for n := range state.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := state.tables[n]
		st := savedTableV3{
			Name:       t.def.Name,
			PrimaryKey: append([]int(nil), t.def.PrimaryKey...),
			Count:      t.count,
			Live:       t.live,
			Bytes:      t.bytes,
		}
		for _, c := range t.def.Columns {
			st.Columns = append(st.Columns, savedColumn{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		full := t.fullPages()
		for pi := 0; pi < full; pi++ {
			pid, slots, err := ps.ensureSpilled(t.pages[pi], state.seq)
			if err != nil {
				return fmt.Errorf("sqldb: checkpoint %s page %d: %w", t.def.Name, pi, err)
			}
			st.Pages = append(st.Pages, savedPageRef{Pid: pid, Slots: slots})
		}
		if tailLen := int(t.count - int64(full)<<heapPageShift); tailLen > 0 {
			// The tail page is never sealed, hence always resident.
			f := t.pages[full].frame()
			e := &walEncoder{}
			for i := 0; i < tailLen; i++ {
				row := f.rows[i]
				if row == nil {
					e.uvarint(0)
					continue
				}
				e.uvarint(uint64(len(row)) + 1)
				for _, v := range row {
					e.value(v)
				}
			}
			st.Tail = e.b
		}
		for _, idx := range t.indexes {
			if idx == t.pkIndex {
				continue
			}
			st.Indexes = append(st.Indexes, idx.def)
		}
		snap.Tables = append(snap.Tables, st)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return err
	}
	return writeSealed(w, snapshotMagicV3, payload.Bytes())
}

// loadStateV3 rebuilds a database from a paged checkpoint. Full pages
// are adopted into the buffer pool as non-resident references into the
// pages file — they fault in on first touch, so recovery cost is
// proportional to what is actually read, not to database size (index
// trees are rebuilt by one bounded scan). When pool is non-nil the
// pages are adopted into it (Recover reuses the live engine's pool —
// the single appender of the pages file); otherwise the fresh
// database's own pool is wired to openPages.
func loadStateV3(data []byte, pool *pageStore, openPages func() (File, error)) (*Database, uint64, error) {
	payload, err := openSealed(data, snapshotMagicV3)
	if err != nil {
		return nil, 0, err
	}
	var snap snapshotV3
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("sqldb: decoding snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic || snap.Version != snapshotVersionV3 {
		return nil, 0, errorf("unsupported snapshot version %d", snap.Version)
	}
	db := New()
	if pool != nil {
		db.pool = pool
	} else if openPages != nil {
		db.pool.openFile = openPages
	}
	if err := db.pool.ensureFile(); err != nil {
		return nil, 0, fmt.Errorf("sqldb: opening pages file: %w", err)
	}
	st := db.state.Load()
	gen := db.gen.Add(1)
	for _, sv := range snap.Tables {
		def := TableDef{Name: sv.Name, PrimaryKey: append([]int(nil), sv.PrimaryKey...)}
		for _, c := range sv.Columns {
			def.Columns = append(def.Columns, Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		t := newTable(&def, gen)
		full := int(sv.Count >> heapPageShift)
		if full != len(sv.Pages) {
			return nil, 0, errorf("snapshot table %s: %d pages for %d rows", sv.Name, len(sv.Pages), sv.Count)
		}
		for pi, ref := range sv.Pages {
			if ref.Pid <= 0 || ref.Slots <= 0 {
				return nil, 0, errorf("snapshot table %s: bad page ref %d", sv.Name, pi)
			}
			p := &heapPage{gen: gen}
			db.pool.adopt(p, ref.Pid, ref.Slots, snap.Seq)
			t.pages = append(t.pages, p)
		}
		if tailLen := int(sv.Count - int64(full)<<heapPageShift); tailLen > 0 {
			f, err := decodePagePayload(0, sv.Tail)
			if err != nil {
				return nil, 0, fmt.Errorf("sqldb: snapshot table %s tail: %w", sv.Name, err)
			}
			p := &heapPage{gen: gen}
			p.res.Store(f)
			t.pages = append(t.pages, p)
		}
		t.count = sv.Count
		t.live = sv.Live
		t.bytes = sv.Bytes
		for _, idef := range sv.Indexes {
			d := idef
			d.Columns = append([]int{}, idef.Columns...)
			t.indexes = append(t.indexes, &tableIndex{def: d, tree: newBtree(gen)})
			st.indexes[lowerName(d.Name)] = &d
		}
		// Rebuild every index (primary key included) with one scan; the
		// pool bounds how much of the heap is resident at once. The
		// barrier turns a failed page read into a load error instead of
		// a panic.
		if err := func() (err error) {
			defer recoverToError(&err)
			var ref pageRef
			defer ref.release()
			for rid := int64(0); rid < t.count; rid++ {
				row := t.rowRef(rid, &ref)
				if row == nil {
					continue
				}
				for _, idx := range t.indexes {
					idx.tree.Insert(indexKey(idx, row), rid)
				}
			}
			return nil
		}(); err != nil {
			return nil, 0, fmt.Errorf("sqldb: snapshot table %s: rebuilding indexes: %w", sv.Name, err)
		}
		st.tables[t.key] = t
	}
	db.setSeq(snap.Seq)
	return db, snap.Seq, nil
}

// LoadFrom rebuilds a database from a snapshot written by Save.
func LoadFrom(r io.Reader) (*Database, error) {
	db, _, err := LoadSnapshot(r)
	return db, err
}

// LoadSnapshot rebuilds a database from a snapshot and reports the WAL
// commit sequence it contains. Truncated or corrupted v2 snapshots are
// rejected with a clear error; legacy v1 streams load with sequence 0.
func LoadSnapshot(r io.Reader) (*Database, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("sqldb: reading snapshot: %w", err)
	}
	var snap snapshot
	if bytes.HasPrefix(data, []byte(snapshotMagicV2)) {
		body := data[len(snapshotMagicV2):]
		if len(body) < 8 {
			return nil, 0, errorf("snapshot truncated (no payload header)")
		}
		n := int64(binary.LittleEndian.Uint32(body))
		if n > int64(len(body))-8 {
			return nil, 0, errorf("snapshot truncated (payload %d bytes, have %d)", n, int64(len(body))-8)
		}
		if n < int64(len(body))-8 {
			return nil, 0, errorf("snapshot has %d trailing bytes", int64(len(body))-8-n)
		}
		payload := body[4 : 4+n]
		crc := binary.LittleEndian.Uint32(body[4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, 0, errorf("snapshot corrupt (CRC mismatch)")
		}
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
			return nil, 0, fmt.Errorf("sqldb: decoding snapshot: %w", err)
		}
		if snap.Version != snapshotVersionV2 {
			return nil, 0, errorf("unsupported snapshot version %d", snap.Version)
		}
	} else {
		// Legacy v1: a bare gob stream with the magic inside.
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return nil, 0, fmt.Errorf("sqldb: reading snapshot: %w", err)
		}
		snap.Seq = 0
	}
	if snap.Magic != snapshotMagic {
		return nil, 0, errorf("not a database snapshot (magic %q)", snap.Magic)
	}
	db := New()
	for _, st := range snap.Tables {
		def := TableDef{Name: st.Name, PrimaryKey: append([]int(nil), st.PrimaryKey...)}
		for _, c := range st.Columns {
			def.Columns = append(def.Columns, Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		if err := db.CreateTableDef(def); err != nil {
			return nil, 0, err
		}
		if _, err := db.BulkInsert(st.Name, st.Rows); err != nil {
			return nil, 0, fmt.Errorf("sqldb: restoring %s: %w", st.Name, err)
		}
		for _, idef := range st.Indexes {
			if err := db.createIndexDef(idef); err != nil {
				return nil, 0, fmt.Errorf("sqldb: rebuilding index %s: %w", idef.Name, err)
			}
		}
	}
	// Align the in-memory commit sequence with the snapshot's WAL
	// horizon: the restore's own bulk inserts consumed sequence numbers
	// that have no WAL meaning.
	db.setSeq(snap.Seq)
	return db, snap.Seq, nil
}
