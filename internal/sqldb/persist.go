package sqldb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Snapshot persistence: Save writes the whole database (schemas, live
// rows, index definitions) as a sealed gob stream; LoadFrom rebuilds
// it, re-deriving the B-trees. Snapshots are the checkpoint half of the
// durability subsystem — the write-ahead log (wal.go) covers the
// commits since the last checkpoint, and DurableDB (durable.go) ties
// the two together with crash recovery. A snapshot also stands alone as
// the portable dump format behind Store.SaveDB/OpenSaved.
//
// Format v2 wraps the gob payload in a sealed envelope:
//
//	"xmlrdb-snapshot-v2\n" | u32 payload length | gob payload | u32 CRC32
//
// so a truncated or bit-flipped snapshot is detected with a clear
// error instead of being half-loaded. Legacy v1 streams (bare gob,
// magic field inside) are still accepted by LoadFrom.

const (
	snapshotMagic     = "xmlrdb-snapshot-v1"
	snapshotMagicV2   = "xmlrdb-snapshot-v2\n"
	snapshotVersionV2 = 2
)

type savedColumn struct {
	Name    string
	Type    Type
	NotNull bool
}

type savedTable struct {
	Name       string
	Columns    []savedColumn
	PrimaryKey []int
	Rows       [][]Value
	Indexes    []IndexDef
}

type snapshot struct {
	Magic   string
	Version int
	// Seq is the last WAL commit sequence the snapshot contains; WAL
	// replay skips records at or below it. Zero for standalone dumps.
	Seq    uint64
	Tables []savedTable
}

// Save writes a snapshot of the current published state.
func (db *Database) Save(w io.Writer) error {
	_, err := db.SaveSnapshot(w)
	return err
}

// SaveSnapshot captures the latest published state — one atomic pointer
// read, no lock, so writers keep committing while it serializes — and
// writes it, returning the commit sequence the snapshot contains. The
// returned seq names the exact WAL position the snapshot covers: replay
// of records at or below it would be redundant.
func (db *Database) SaveSnapshot(w io.Writer) (uint64, error) {
	state := db.state.Load()
	return state.seq, writeState(w, state)
}

// writeState serializes one immutable state version.
func writeState(w io.Writer, state *dbState) error {
	snap := snapshot{Magic: snapshotMagic, Version: snapshotVersionV2, Seq: state.seq}
	names := make([]string, 0, len(state.tables))
	for n := range state.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := state.tables[n]
		st := savedTable{
			Name: t.def.Name,
			// append to a nil base keeps "no primary key" as nil, so a
			// restored def stays structurally identical to the original.
			PrimaryKey: append([]int(nil), t.def.PrimaryKey...),
		}
		for _, c := range t.def.Columns {
			st.Columns = append(st.Columns, savedColumn{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		for rid := int64(0); rid < t.slotCount(); rid++ {
			if row := t.row(rid); row != nil {
				st.Rows = append(st.Rows, row)
			}
		}
		for _, idx := range t.indexes {
			if idx == t.pkIndex {
				continue // re-derived from the primary key
			}
			st.Indexes = append(st.Indexes, idx.def)
		}
		snap.Tables = append(snap.Tables, st)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return err
	}
	if _, err := io.WriteString(w, snapshotMagicV2); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	_, err := w.Write(trailer[:])
	return err
}

// LoadFrom rebuilds a database from a snapshot written by Save.
func LoadFrom(r io.Reader) (*Database, error) {
	db, _, err := LoadSnapshot(r)
	return db, err
}

// LoadSnapshot rebuilds a database from a snapshot and reports the WAL
// commit sequence it contains. Truncated or corrupted v2 snapshots are
// rejected with a clear error; legacy v1 streams load with sequence 0.
func LoadSnapshot(r io.Reader) (*Database, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("sqldb: reading snapshot: %w", err)
	}
	var snap snapshot
	if bytes.HasPrefix(data, []byte(snapshotMagicV2)) {
		body := data[len(snapshotMagicV2):]
		if len(body) < 8 {
			return nil, 0, errorf("snapshot truncated (no payload header)")
		}
		n := int64(binary.LittleEndian.Uint32(body))
		if n > int64(len(body))-8 {
			return nil, 0, errorf("snapshot truncated (payload %d bytes, have %d)", n, int64(len(body))-8)
		}
		if n < int64(len(body))-8 {
			return nil, 0, errorf("snapshot has %d trailing bytes", int64(len(body))-8-n)
		}
		payload := body[4 : 4+n]
		crc := binary.LittleEndian.Uint32(body[4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, 0, errorf("snapshot corrupt (CRC mismatch)")
		}
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
			return nil, 0, fmt.Errorf("sqldb: decoding snapshot: %w", err)
		}
		if snap.Version != snapshotVersionV2 {
			return nil, 0, errorf("unsupported snapshot version %d", snap.Version)
		}
	} else {
		// Legacy v1: a bare gob stream with the magic inside.
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
			return nil, 0, fmt.Errorf("sqldb: reading snapshot: %w", err)
		}
		snap.Seq = 0
	}
	if snap.Magic != snapshotMagic {
		return nil, 0, errorf("not a database snapshot (magic %q)", snap.Magic)
	}
	db := New()
	for _, st := range snap.Tables {
		def := TableDef{Name: st.Name, PrimaryKey: append([]int(nil), st.PrimaryKey...)}
		for _, c := range st.Columns {
			def.Columns = append(def.Columns, Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		if err := db.CreateTableDef(def); err != nil {
			return nil, 0, err
		}
		if _, err := db.BulkInsert(st.Name, st.Rows); err != nil {
			return nil, 0, fmt.Errorf("sqldb: restoring %s: %w", st.Name, err)
		}
		for _, idef := range st.Indexes {
			if err := db.createIndexDef(idef); err != nil {
				return nil, 0, fmt.Errorf("sqldb: rebuilding index %s: %w", idef.Name, err)
			}
		}
	}
	// Align the in-memory commit sequence with the snapshot's WAL
	// horizon: the restore's own bulk inserts consumed sequence numbers
	// that have no WAL meaning.
	db.setSeq(snap.Seq)
	return db, snap.Seq, nil
}
