package sqldb

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot persistence: Save writes the whole database (schemas, live
// rows, index definitions) as a gob stream; LoadFrom rebuilds it,
// re-deriving the B-trees. This is checkpoint-style durability — the
// WAL/recovery machinery of a production engine is out of the
// reproduction's scope (DESIGN.md), but a shredded store can be written
// to disk and reopened, which is the property the paper's "persist"
// use case needs.

const snapshotMagic = "xmlrdb-snapshot-v1"

type savedColumn struct {
	Name    string
	Type    Type
	NotNull bool
}

type savedTable struct {
	Name       string
	Columns    []savedColumn
	PrimaryKey []int
	Rows       [][]Value
	Indexes    []IndexDef
}

type snapshot struct {
	Magic  string
	Tables []savedTable
}

// Save writes a snapshot of the database.
func (db *Database) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{Magic: snapshotMagic}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		st := savedTable{
			Name:       t.def.Name,
			PrimaryKey: append([]int{}, t.def.PrimaryKey...),
		}
		for _, c := range t.def.Columns {
			st.Columns = append(st.Columns, savedColumn{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		for _, row := range t.rows {
			if row != nil {
				st.Rows = append(st.Rows, row)
			}
		}
		for _, idx := range t.indexes {
			if idx == t.pkIndex {
				continue // re-derived from the primary key
			}
			st.Indexes = append(st.Indexes, idx.def)
		}
		snap.Tables = append(snap.Tables, st)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadFrom rebuilds a database from a snapshot written by Save.
func LoadFrom(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sqldb: reading snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, errorf("not a database snapshot (magic %q)", snap.Magic)
	}
	db := New()
	for _, st := range snap.Tables {
		def := TableDef{Name: st.Name, PrimaryKey: append([]int{}, st.PrimaryKey...)}
		for _, c := range st.Columns {
			def.Columns = append(def.Columns, Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		if err := db.CreateTableDef(def); err != nil {
			return nil, err
		}
		if _, err := db.BulkInsert(st.Name, st.Rows); err != nil {
			return nil, fmt.Errorf("sqldb: restoring %s: %w", st.Name, err)
		}
		tbl := db.table(st.Name)
		for _, idef := range st.Indexes {
			d := idef
			d.Columns = append([]int{}, idef.Columns...)
			if _, err := tbl.addIndex(d); err != nil {
				return nil, fmt.Errorf("sqldb: rebuilding index %s: %w", d.Name, err)
			}
			db.indexes[strings.ToLower(d.Name)] = &d
		}
	}
	return db, nil
}
