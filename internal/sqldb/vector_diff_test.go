package sqldb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Differential battery for vectorized execution: the row-at-a-time
// engine is the correctness oracle, so every query must return
// byte-identical results (values AND order) from the batch pipeline at
// every degree of parallelism. On top of the row contract the battery
// asserts the accounting contract: at the same dop the two engines must
// agree per operator on produced rows, open counts and join build
// sizes, and the batch-level counters must satisfy their invariants
// (Nexts >= Batches, InRows >= Rows for row-narrowing operators,
// Opens >= 1 — the open/next accounting that catches double-counting
// when an operator is re-opened under a nested-loop or per-morsel
// driver).

// vecPairs builds row/vectorized database twins with identical data for
// each requested dop. pairs[i] = {row engine, vectorized engine}.
func vecPairs(t *testing.T, rows int, dops ...int) [][2]*Database {
	t.Helper()
	both := make([]int, 0, 2*len(dops))
	for _, d := range dops {
		both = append(both, d, d)
	}
	dbs := parallelFixture(t, rows, both...)
	pairs := make([][2]*Database, len(dops))
	for i := range dops {
		pairs[i] = [2]*Database{dbs[2*i], dbs[2*i+1]}
		// Force both sides explicitly — under XRDB_VECTORIZED=1 (the
		// vmatrix gate) the engine default is vectorized, and the row
		// side must stay the row-at-a-time oracle regardless.
		pairs[i][0].SetVectorized(false)
		pairs[i][1].SetVectorized(true)
	}
	return pairs
}

// hasLimitOp reports whether an analyzed plan contains a Limit
// operator. Limit plans are exempt from per-operator equality: the
// vectorized limit pulls its child in whole batches, so child row
// counters legitimately round up to batch granularity.
func hasLimitOp(ap *AnalyzedPlan) bool {
	for _, op := range ap.Ops {
		if op.Kind == "Limit" {
			return true
		}
	}
	return false
}

// assertOpAccounting checks the per-operator open/next/row invariants
// on one analyzed plan, for either engine.
func assertOpAccounting(t *testing.T, label string, ap *AnalyzedPlan, vectorized bool) {
	t.Helper()
	for _, op := range ap.Ops {
		if op.Opens < 1 {
			t.Errorf("%s: %s opens=%d, want >= 1", label, op.Kind, op.Opens)
		}
		if !vectorized && op.Batches != 0 {
			t.Errorf("%s: %s batches=%d in a row-at-a-time run", label, op.Kind, op.Batches)
		}
		if op.Batches > 0 {
			if op.Nexts < op.Batches {
				t.Errorf("%s: %s nexts=%d < batches=%d", label, op.Kind, op.Nexts, op.Batches)
			}
			switch op.Kind {
			case "SeqScan", "IndexScan", "Filter", "Project", "Cut":
				// Row-narrowing operators can only drop rows, so the
				// candidate count bounds the output count.
				if op.InRows < op.Rows {
					t.Errorf("%s: %s in_rows=%d < rows=%d", label, op.Kind, op.InRows, op.Rows)
				}
			}
		} else if op.Nexts < op.Rows {
			t.Errorf("%s: %s nexts=%d < rows=%d", label, op.Kind, op.Nexts, op.Rows)
		}
	}
}

// diffOne runs one query through a row/vec pair at one dop and asserts
// the full oracle contract: identical rows against the serial oracle's
// result, identical per-operator actuals at the same dop, and sane
// batch accounting.
func diffOne(t *testing.T, oracle *Rows, pair [2]*Database, dop int, sql string, args []Value) {
	t.Helper()
	for side, db := range pair {
		engine := [...]string{"row", "vec"}[side]
		label := fmt.Sprintf("dop=%d/%s", dop, engine)
		got, err := db.Query(sql, args...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(oracle.Columns, got.Columns) {
			t.Fatalf("%s: columns %v != %v", label, got.Columns, oracle.Columns)
		}
		if !reflect.DeepEqual(oracle.Data, got.Data) {
			t.Fatalf("%s: %d rows vs oracle %d rows, or order/value drift\noracle: %.6v\ngot: %.6v",
				label, got.Len(), oracle.Len(), oracle.Data, got.Data)
		}
	}

	// The analyzed runs: same rows again, and per-operator actuals must
	// agree between the engines at this dop.
	rap, err := pair[0].ExplainAnalyzePlan(sql, args...)
	if err != nil {
		t.Fatalf("dop=%d/row analyze: %v", dop, err)
	}
	vap, err := pair[1].ExplainAnalyzePlan(sql, args...)
	if err != nil {
		t.Fatalf("dop=%d/vec analyze: %v", dop, err)
	}
	if rap.Rows != oracle.Len() || vap.Rows != oracle.Len() {
		t.Fatalf("dop=%d: analyzed cardinality row=%d vec=%d, oracle %d", dop, rap.Rows, vap.Rows, oracle.Len())
	}
	assertOpAccounting(t, fmt.Sprintf("dop=%d/row", dop), rap, false)
	assertOpAccounting(t, fmt.Sprintf("dop=%d/vec", dop), vap, true)
	if hasLimitOp(rap) || hasLimitOp(vap) {
		return
	}
	if len(rap.Ops) != len(vap.Ops) {
		t.Fatalf("dop=%d: plan shapes differ: %d ops vs %d ops", dop, len(rap.Ops), len(vap.Ops))
	}
	batches := int64(0)
	for i := range rap.Ops {
		r, v := rap.Ops[i], vap.Ops[i]
		if r.Kind != v.Kind {
			t.Fatalf("dop=%d op %d: kind %s vs %s", dop, i, r.Kind, v.Kind)
		}
		if r.Rows != v.Rows {
			t.Errorf("dop=%d %s: rows row=%d vec=%d", dop, r.Kind, r.Rows, v.Rows)
		}
		if r.Opens != v.Opens {
			t.Errorf("dop=%d %s: opens row=%d vec=%d", dop, r.Kind, r.Opens, v.Opens)
		}
		if r.BuildRows != v.BuildRows {
			t.Errorf("dop=%d %s: build rows row=%d vec=%d", dop, r.Kind, r.BuildRows, v.BuildRows)
		}
		batches += v.Batches
	}
	if batches == 0 {
		t.Errorf("dop=%d: no operator produced a batch under vectorized execution", dop)
	}
}

// TestVectorizedMatchesRowEngine drives the full parallel battery
// through both engines at dop 1, 4 and 16.
func TestVectorizedMatchesRowEngine(t *testing.T) {
	pairs := vecPairs(t, 10000, 1, 4, 16)
	dops := []int{1, 4, 16}
	for _, tc := range parallelBattery {
		t.Run(tc.name, func(t *testing.T) {
			want, err := pairs[0][0].Query(tc.sql, tc.args...)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for i, pair := range pairs {
				diffOne(t, want, pair, dops[i], tc.sql, tc.args)
			}
		})
	}
}

// f1MixBattery mirrors the query shapes of the paper's F1 benchmark mix
// over an interval-encoded accelerator relation: scan-heavy exact
// aggregation (H1), self hash-join on parent/pre (H2), interval
// containment via range predicates, an indexed child step, plus
// fuzz-corpus edge shapes (NULL predicates, empty results,
// batch-boundary-aligned modulus filters).
var f1MixBattery = []struct {
	name string
	sql  string
}{
	{"h1-scan-agg", `SELECT kind, COUNT(*), MIN(pre), MAX(level) FROM accel WHERE size % 5 <> 1 GROUP BY kind`},
	{"h2-hash-join", `SELECT COUNT(*) FROM accel c, accel p WHERE c.parent = p.pre AND p.size > 3 AND c.level > 2`},
	{"containment", `SELECT d.pre FROM accel a, accel d WHERE a.kind = 2 AND a.size > 8 AND a.pre % 50 = 0 AND d.pre > a.pre AND d.pre <= a.post`},
	{"child-step", `SELECT c.pre, c.tag FROM accel p, accel c WHERE p.kind = 3 AND p.level = 1 AND c.parent = p.pre ORDER BY c.pre`},
	{"tag-null", `SELECT pre FROM accel WHERE tag IS NULL AND level > 4`},
	{"empty-result", `SELECT pre, kind FROM accel WHERE size > 1000`},
	{"mod-boundary", `SELECT pre FROM accel WHERE pre % 1024 = 0`},
	{"distinct-range", `SELECT DISTINCT kind FROM accel WHERE level BETWEEN 2 AND 4`},
}

// accelPairs builds row/vec twins holding a synthetic interval-encoded
// element relation shaped like the shredder's accelerator table.
func accelPairs(t *testing.T, rows int, dops ...int) ([][2]*Database, []int) {
	t.Helper()
	pairs := make([][2]*Database, len(dops))
	for i, dop := range dops {
		var twin [2]*Database
		for side := 0; side < 2; side++ {
			db := New()
			db.SetParallelism(dop)
			db.MustExec(`CREATE TABLE accel (pre INTEGER PRIMARY KEY, post INTEGER, parent INTEGER, kind INTEGER, tag TEXT, size INTEGER, level INTEGER)`)
			db.MustExec(`CREATE INDEX accel_parent ON accel (parent)`)
			batch := make([][]Value, 0, rows)
			for k := 0; k < rows; k++ {
				tag := NewText(fmt.Sprintf("e%d", k%6))
				if k%5 == 0 {
					tag = Null
				}
				batch = append(batch, []Value{
					NewInt(int64(k)),
					NewInt(int64(k + k*13%50)),
					NewInt(int64(k / 3)),
					NewInt(int64(k % 6)),
					tag,
					NewInt(int64(k % 11)),
					NewInt(int64(k % 9)),
				})
			}
			if _, err := db.BulkInsert("accel", batch); err != nil {
				t.Fatal(err)
			}
			twin[side] = db
		}
		twin[0].SetVectorized(false) // explicit: XRDB_VECTORIZED=1 flips the default
		twin[1].SetVectorized(true)
		pairs[i] = twin
	}
	return pairs, dops
}

// TestVectorizedF1MixShapes runs the F1-mix query shapes through both
// engines at dop 1 and 4.
func TestVectorizedF1MixShapes(t *testing.T) {
	pairs, dops := accelPairs(t, 6000, 1, 4)
	for _, tc := range f1MixBattery {
		t.Run(tc.name, func(t *testing.T) {
			want, err := pairs[0][0].Query(tc.sql)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for i, pair := range pairs {
				diffOne(t, want, pair, dops[i], tc.sql, nil)
			}
		})
	}
}

// TestVectorizedRegistryTotals runs the (limit-free) battery once
// through a fresh row/vec pair and checks the metrics registry folded
// identical per-kind totals — and that only the vectorized registry
// accumulated batch counters.
func TestVectorizedRegistryTotals(t *testing.T) {
	pairs := vecPairs(t, 5000, 4)
	row, vec := pairs[0][0], pairs[0][1]
	for _, tc := range parallelBattery {
		if tc.name == "limit-offset" {
			continue // Limit plans are exempt from per-operator equality
		}
		if _, err := row.Query(tc.sql, tc.args...); err != nil {
			t.Fatalf("row %s: %v", tc.name, err)
		}
		if _, err := vec.Query(tc.sql, tc.args...); err != nil {
			t.Fatalf("vec %s: %v", tc.name, err)
		}
	}
	rm, vm := row.Metrics(), vec.Metrics()
	if rm.Queries != vm.Queries {
		t.Fatalf("query counts diverged: row=%d vec=%d", rm.Queries, vm.Queries)
	}
	if rm.Rows != vm.Rows {
		t.Errorf("result row totals diverged: row=%d vec=%d", rm.Rows, vm.Rows)
	}
	rops := map[string]OpTotalStats{}
	for _, op := range rm.Operators {
		rops[op.Kind] = op
	}
	batches := uint64(0)
	for _, v := range vm.Operators {
		r, ok := rops[v.Kind]
		if !ok {
			t.Errorf("operator kind %s only in vectorized registry", v.Kind)
			continue
		}
		if r.Rows != v.Rows {
			t.Errorf("%s: registry rows row=%d vec=%d", v.Kind, r.Rows, v.Rows)
		}
		if r.Opens != v.Opens {
			t.Errorf("%s: registry opens row=%d vec=%d", v.Kind, r.Opens, v.Opens)
		}
		if r.BuildRows != v.BuildRows {
			t.Errorf("%s: registry build rows row=%d vec=%d", v.Kind, r.BuildRows, v.BuildRows)
		}
		if r.Batches != 0 {
			t.Errorf("%s: row registry has batches=%d", v.Kind, r.Batches)
		}
		batches += v.Batches
	}
	if batches == 0 {
		t.Error("vectorized registry accumulated no batches")
	}
}

// TestVectorizedExplainSurfaces checks the EXPLAIN / EXPLAIN ANALYZE
// annotations and that the knob flips cached plans between engines
// without invalidating them (plans are shared; only execution differs).
func TestVectorizedExplainSurfaces(t *testing.T) {
	pairs := vecPairs(t, 4000, 4)
	vec := pairs[0][1]
	if !vec.Vectorized() {
		t.Fatal("Vectorized() = false after SetVectorized(true)")
	}

	p, err := vec.Explain(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "vectorized") {
		t.Errorf("EXPLAIN output lacks the vectorized marker:\n%s", p)
	}
	ap, err := vec.ExplainAnalyze(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ap, "batches=") || !strings.Contains(ap, "selectivity=") {
		t.Errorf("EXPLAIN ANALYZE output lacks batch annotations:\n%s", ap)
	}

	// Toggling the knob must not invalidate cached plans: the same SQL
	// keeps executing (now row-at-a-time) and the marker disappears.
	vec.SetVectorized(false)
	if vec.Vectorized() {
		t.Fatal("Vectorized() = true after SetVectorized(false)")
	}
	p2, err := vec.Explain(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2, "(cached)") {
		t.Errorf("plan was invalidated by SetVectorized:\n%s", p2)
	}
	if strings.Contains(p2, "vectorized") {
		t.Errorf("row-at-a-time EXPLAIN still carries the vectorized marker:\n%s", p2)
	}
	ap2, err := vec.ExplainAnalyzePlan(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ap2.Ops {
		if op.Batches > 0 {
			t.Errorf("%s: batches=%d after switching back to row-at-a-time", op.Kind, op.Batches)
		}
	}
}
