package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokInt
	tokFloat
	tokParam  // ?
	tokSymbol // punctuation/operators
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; idents as written
	pos  int
}

// keywords recognized by the lexer. Anything else is an identifier.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "UNIQUE": true, "DROP": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true,
	"ESCAPE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "DISTINCT": true, "ALL": true, "UNION": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"ASC": true, "DESC": true, "PRIMARY": true, "KEY": true,
	"INTEGER": true, "INT": true, "REAL": true, "FLOAT": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BLOB": true,
	"TRUE": true, "FALSE": true, "CAST": true, "IF": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes the input; it returns an error with position context
// on any malformed literal.
func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case isIdentStart(c):
			l.lexWord()
		case c == '?':
			l.emit(tokParam, "?")
			l.pos++
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comment
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return errorf("unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokIdent, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return errorf("unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos > start {
			// exponent
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				isFloat = true
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
			}
			break
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if sqlKeywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
	}
}

var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';', '.':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return errorf("unexpected character %q at offset %d", c, start)
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}
