package sqldb

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE INDEX nums_grp ON nums (grp)`)
	db.MustExec(`CREATE UNIQUE INDEX nums_label ON nums (label)`)
	db.MustExec(`DELETE FROM nums WHERE n > 90`) // tombstones must not persist

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same data through the same queries.
	queries := []string{
		`SELECT COUNT(*) FROM nums`,
		`SELECT SUM(n) FROM nums WHERE grp = 'even'`,
		`SELECT COUNT(*) FROM nums, tags WHERE nums.n = tags.n`,
		`SELECT MAX(n) FROM nums`,
	}
	for _, q := range queries {
		a, err := db.QueryScalar(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.QueryScalar(q)
		if err != nil {
			t.Fatal(err)
		}
		if Compare(a, b) != 0 {
			t.Errorf("%s: %v vs %v", q, a, b)
		}
	}

	// Indexes were rebuilt: plans use them and constraints hold.
	plan, err := re.Explain(`SELECT COUNT(*) FROM nums WHERE grp = 'even'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "nums_grp") {
		t.Errorf("restored plan does not use the secondary index:\n%s", plan)
	}
	if _, err := re.Exec(`INSERT INTO nums VALUES (200, 0, 'n001', 'even')`); err == nil {
		t.Error("unique index not enforced after restore")
	}
	if _, err := re.Exec(`INSERT INTO nums VALUES (1, 0, 'nX', 'even')`); err == nil {
		t.Error("primary key not enforced after restore")
	}

	// Restored database is independently writable.
	if _, err := re.Exec(`INSERT INTO nums VALUES (200, 0, 'n200', 'even')`); err != nil {
		t.Fatal(err)
	}
	a, _ := db.QueryScalar(`SELECT COUNT(*) FROM nums`)
	b, _ := re.QueryScalar(`SELECT COUNT(*) FROM nums`)
	if b.Int() != a.Int()+1 {
		t.Errorf("restore not independent: %v vs %v", a, b)
	}
}

func TestLoadFromRejectsGarbage(t *testing.T) {
	if _, err := LoadFrom(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	db := New()
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.TableNames()) != 0 {
		t.Errorf("empty snapshot restored tables: %v", re.TableNames())
	}
}

func TestSaveLoadValueTypes(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE v (i INTEGER, f REAL, s TEXT, b BOOLEAN)`)
	db.MustExec(`INSERT INTO v VALUES (1, 2.5, 'x', TRUE), (NULL, NULL, NULL, NULL)`)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := re.Query(`SELECT * FROM v ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if !rows.Data[0][0].IsNull() {
		t.Errorf("NULLs lost: %v", rows.Data[0])
	}
	r := rows.Data[1]
	if r[0].Int() != 1 || r[1].Float() != 2.5 || r[2].Text() != "x" || !r[3].Bool() {
		t.Errorf("typed row = %v", r)
	}
}
