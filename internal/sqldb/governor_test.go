package sqldb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// Resource-governor batteries: memory budgets abort cleanly and release
// their reservations, admission control sheds load with typed errors,
// and panics anywhere in query or writer execution fail only the one
// statement without wedging shared state.

// governorFixture builds a database with enough rows that sorts and
// joins have a working set worth metering.
func governorFixture(t *testing.T, rows int) *Database {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE big (k INTEGER PRIMARY KEY, v TEXT, grp INTEGER)`)
	batch := make([][]Value, 0, 1024)
	for i := 0; i < rows; i++ {
		batch = append(batch, []Value{
			NewInt(int64(i)),
			NewText(fmt.Sprintf("value-%06d-padding-padding", i)),
			NewInt(int64(i % 17)),
		})
		if len(batch) == cap(batch) {
			if _, err := db.BulkInsert("big", batch); err != nil {
				t.Fatalf("seeding: %v", err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := db.BulkInsert("big", batch); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
	return db
}

func TestQueryMemoryLimitAborts(t *testing.T) {
	db := governorFixture(t, 4000)
	db.SetQueryMemoryLimit(16 << 10)

	_, err := db.Query(`SELECT k, v FROM big ORDER BY v`)
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("big sort under a 16KiB limit: %v, want ErrMemoryBudgetExceeded", err)
	}

	// A small query stays under the limit.
	if _, err := db.Query(`SELECT k FROM big WHERE k = 7`); err != nil {
		t.Fatalf("small query under limit: %v", err)
	}

	// Lifting the limit restores the big query.
	db.SetQueryMemoryLimit(0)
	rows, err := db.Query(`SELECT k, v FROM big ORDER BY v`)
	if err != nil {
		t.Fatalf("big sort after lifting the limit: %v", err)
	}
	if rows.Len() != 4000 {
		t.Fatalf("got %d rows, want 4000", rows.Len())
	}
}

func TestEngineMemoryBudgetReleasedOnAbort(t *testing.T) {
	db := governorFixture(t, 4000)
	db.SetMemoryBudget(32 << 10)

	for i := 0; i < 5; i++ {
		if _, err := db.Query(`SELECT k, v FROM big ORDER BY v`); !errors.Is(err, ErrMemoryBudgetExceeded) {
			t.Fatalf("round %d: %v, want ErrMemoryBudgetExceeded", i, err)
		}
		if used := db.Stats().Governor.MemoryUsed; used != 0 {
			t.Fatalf("round %d: %d bytes still reserved after abort, want 0", i, used)
		}
	}

	// The pool is drained, so small queries run and their reservations
	// return too.
	if _, err := db.Query(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("small aggregate after aborts: %v", err)
	}
	if used := db.Stats().Governor.MemoryUsed; used != 0 {
		t.Fatalf("%d bytes reserved after successful query, want 0", used)
	}
}

// TestBudgetAbortLeavesConcurrentTrafficUnaffected runs over-budget
// queries alongside in-budget queries and writers: only the former may
// fail, and only with the typed budget error.
func TestBudgetAbortLeavesConcurrentTrafficUnaffected(t *testing.T) {
	db := governorFixture(t, 4000)
	db.SetQueryMemoryLimit(16 << 10)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	wg.Add(1)
	go func() { // over-budget queries
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query(`SELECT k, v FROM big ORDER BY v`); !errors.Is(err, ErrMemoryBudgetExceeded) {
				errs <- fmt.Errorf("heavy query: %v, want budget error", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // in-budget queries
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query(`SELECT v FROM big WHERE k = ?`, NewInt(int64(i%4000))); err != nil {
				errs <- fmt.Errorf("light query: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // writers
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(`INSERT INTO big VALUES (?, 'w', 0)`, NewInt(int64(100000+i))); err != nil {
				errs <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if used := db.Stats().Governor.MemoryUsed; used != 0 {
		t.Fatalf("%d bytes reserved after traffic drained, want 0", used)
	}
}

func TestAdmissionGate(t *testing.T) {
	g := newAdmissionGate(1, 1)

	release1, err := g.admit(context.Background())
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}

	// Second arrival queues.
	queuedErr := make(chan error, 1)
	go func() {
		rel, err := g.admit(context.Background())
		if err == nil {
			rel()
		}
		queuedErr <- err
	}()
	waitFor(t, func() bool { return g.waiting.Load() == 1 })

	// Third arrival finds the queue full.
	if _, err := g.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full admit: %v, want ErrOverloaded", err)
	}

	// Releasing the slot admits the queued waiter.
	release1()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}

	// A canceled context unblocks a queued waiter with its error.
	release2, err := g.admit(context.Background())
	if err != nil {
		t.Fatalf("refill slot: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() {
		_, err := g.admit(ctx)
		canceledErr <- err
	}()
	waitFor(t, func() bool { return g.waiting.Load() == 1 })
	cancel()
	if err := <-canceledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued admit: %v, want context.Canceled", err)
	}
	release2()

	maxc, maxq, admitted, queued, rejected := g.stats()
	if maxc != 1 || maxq != 1 {
		t.Fatalf("stats shape: %d slots %d queue", maxc, maxq)
	}
	if admitted != 3 || queued != 2 || rejected != 2 {
		t.Fatalf("counters admitted=%d queued=%d rejected=%d, want 3/2/2", admitted, queued, rejected)
	}
}

func TestAdmissionControlEndToEnd(t *testing.T) {
	db := governorFixture(t, 500)
	db.SetAdmissionControl(2, 8)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query(`SELECT COUNT(*) FROM big`)
			if err != nil && !errors.Is(err, ErrOverloaded) {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()

	g := db.Stats().Governor
	if g.MaxConcurrent != 2 || g.MaxQueue != 8 {
		t.Fatalf("governor stats shape: %+v", g)
	}
	if g.Admitted+g.Rejected < 16 {
		t.Fatalf("admitted %d + rejected %d does not cover 16 queries", g.Admitted, g.Rejected)
	}
	// The gate must be fully released: 2 more queries run without queuing.
	for i := 0; i < 2; i++ {
		if _, err := db.Query(`SELECT 1 FROM big WHERE k = 0`); err != nil {
			t.Fatalf("post-storm query: %v", err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMorselWorkerPanicFailsOnlyThatQuery injects a panic into one
// gather worker: the query fails with a typed ErrInternal, the other
// workers drain, no snapshot pin leaks, and both the parallel plan and
// concurrent writes keep working afterwards.
func TestMorselWorkerPanicFailsOnlyThatQuery(t *testing.T) {
	db := governorFixture(t, 4000)
	db.SetParallelism(4)

	const q = `SELECT k FROM big WHERE v <> ''`
	want, err := db.Query(q)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}

	hook := func(idx int) {
		if idx == 1 {
			panic("injected morsel panic")
		}
	}
	testWorkerPanic.Store(&hook)
	_, err = db.Query(q)
	testWorkerPanic.Store(nil)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panicking worker: %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.PanicValue != "injected morsel panic" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError payload: %#v", ie)
	}

	// No leaked snapshot pins, no wedged locks: the same query and a
	// write both succeed.
	if p := db.Stats().Snapshots.Pinned; p != 0 {
		t.Fatalf("%d snapshot pins leaked by the failed query", p)
	}
	got, err := db.Query(q)
	if err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("row count drifted after panic: %d vs %d", got.Len(), want.Len())
	}
	if _, err := db.Exec(`INSERT INTO big VALUES (999999, 'after', 0)`); err != nil {
		t.Fatalf("write after panic: %v", err)
	}
}

// TestWriterPanicReleasesLocks panics inside the commit path (via the
// commit logger) for several statements in a row: each fails with
// ErrInternal, the write lock and publish tickets are not wedged, and
// the next clean write commits and is visible.
func TestWriterPanicReleasesLocks(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)
	db.MustExec(`INSERT INTO kv VALUES (1)`)

	db.setCommitLogger(func(*walRecord) error { panic("injected commit panic") })
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?)`, NewInt(int64(10+i))); !errors.Is(err, ErrInternal) {
			t.Fatalf("panicking commit %d: %v, want ErrInternal", i, err)
		}
		// The panicked statement must be rolled back.
		if v, err := db.QueryScalar(`SELECT COUNT(*) FROM kv`); err != nil || v.Int() != 1 {
			t.Fatalf("state after panicking commit %d: count=(%v,%v), want 1", i, v, err)
		}
	}
	db.setCommitLogger(nil)

	if _, err := db.Exec(`INSERT INTO kv VALUES (2)`); err != nil {
		t.Fatalf("write after panics: %v", err)
	}
	if v, err := db.QueryScalar(`SELECT COUNT(*) FROM kv`); err != nil || v.Int() != 2 {
		t.Fatalf("final count: (%v, %v), want 2", v, err)
	}
}

// TestErrorSentinels locks in the error taxonomy: each load-bearing
// failure mode matches its exported sentinel via errors.Is while the
// message text stays byte-compatible with the historical strings.
func TestErrorSentinels(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)

	p, err := db.Prepare(`SELECT k FROM kv`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	db.MustExec(`CREATE TABLE other (a INTEGER)`) // bump the schema epoch
	_, err = p.Query()
	if !errors.Is(err, ErrPreparedStale) {
		t.Fatalf("stale prepared: %v, want ErrPreparedStale", err)
	}
	if !strings.Contains(err.Error(), "prepared statement is stale") {
		t.Fatalf("stale message drifted: %q", err)
	}

	d := mustOpenDurable(t, NewMemVFS(), DurableOptions{})
	defer d.Close()
	err = d.Group(func() error { return d.Group(func() error { return nil }) })
	if !errors.Is(err, ErrNestedGroup) {
		t.Fatalf("nested group: %v, want ErrNestedGroup", err)
	}
	if err.Error() != "sqldb: nested durability group" {
		t.Fatalf("nested-group message drifted: %q", err)
	}
	err = d.Group(func() error { return d.Checkpoint() })
	if !errors.Is(err, ErrCheckpointInsideGroup) {
		t.Fatalf("checkpoint inside group: %v, want ErrCheckpointInsideGroup", err)
	}
	if err.Error() != "sqldb: checkpoint inside durability group" {
		t.Fatalf("checkpoint-in-group message drifted: %q", err)
	}

	// Degraded mode wraps the historical WAL sentinel.
	if !errors.Is(ErrReadOnlyDegraded, ErrWALFailed) {
		t.Fatal("ErrReadOnlyDegraded must wrap ErrWALFailed")
	}
}
