package sqldb

import (
	"strings"
	"testing"
)

func expectQueryError(t *testing.T, db *Database, sql, frag string) {
	t.Helper()
	_, err := db.Query(sql)
	if err == nil {
		t.Errorf("%s: expected error", sql)
		return
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("%s: error %q does not mention %q", sql, err, frag)
	}
}

func TestSemanticErrors(t *testing.T) {
	db := testDB(t)
	expectQueryError(t, db, `SELECT nope FROM nums`, "unknown column")
	expectQueryError(t, db, `SELECT n FROM nosuch`, "no such table")
	expectQueryError(t, db, `SELECT bogus.n FROM nums`, "unknown column")
	expectQueryError(t, db, `SELECT grp FROM nums WHERE grp = n2`, "unknown column")
	// Ambiguity: both tables have a column n.
	expectQueryError(t, db, `SELECT n FROM nums, tags`, "ambiguous")
	// Duplicate alias.
	expectQueryError(t, db, `SELECT 1 FROM nums x, tags x`, "duplicate table alias")
	// Aggregation misuse.
	expectQueryError(t, db, `SELECT label, COUNT(*) FROM nums GROUP BY grp`, "GROUP BY")
	expectQueryError(t, db, `SELECT SUM(n, sq) FROM nums`, "exactly one argument")
	expectQueryError(t, db, `SELECT SUM(*) FROM nums`, "not valid")
	// ORDER BY ordinal range.
	expectQueryError(t, db, `SELECT n FROM nums ORDER BY 2`, "out of range")
	// DISTINCT + hidden order key.
	expectQueryError(t, db, `SELECT DISTINCT grp FROM nums ORDER BY sq`, "DISTINCT")
	// Scalar subquery cardinality is a runtime error.
	expectQueryError(t, db, `SELECT (SELECT n FROM nums) FROM nums`, "returned")
	// IN subquery column count.
	expectQueryError(t, db, `SELECT n FROM nums WHERE n IN (SELECT n, sq FROM nums)`, "one column")
	// UNION ALL column count mismatch.
	expectQueryError(t, db, `SELECT n FROM nums UNION ALL SELECT n, sq FROM nums`, "column counts")
	// Unknown function.
	expectQueryError(t, db, `SELECT WIBBLE(n) FROM nums`, "unknown function")
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT 1`); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Query(`DELETE FROM nums`); err == nil {
		t.Error("Query of DELETE accepted")
	}
	if _, err := db.Exec(`INSERT INTO nums (n) VALUES (1, 2)`); err == nil {
		t.Error("value arity mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO nums (nosuch) VALUES (1)`); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec(`UPDATE nums SET nosuch = 1`); err == nil {
		t.Error("update of unknown column accepted")
	}
	if _, err := db.Exec(`CREATE TABLE nums (n INTEGER)`); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Exec(`CREATE INDEX dup ON nums (n)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX dup ON nums (sq)`); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := db.Exec(`CREATE INDEX i2 ON nums (nosuch)`); err == nil {
		t.Error("index on unknown column accepted")
	}
	// Missing parameter value.
	if _, err := db.Query(`SELECT n FROM nums WHERE n = ?`); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestAggregationShapes(t *testing.T) {
	db := testDB(t)
	// Expression group keys match structurally.
	rows, err := db.Query(`SELECT n % 10, COUNT(*) FROM nums GROUP BY n % 10 ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 || rows.Data[0][1].Int() != 10 {
		t.Fatalf("mod groups: %v", rows.Data[:2])
	}
	// Aggregates inside arithmetic.
	v, err := db.QueryScalar(`SELECT MAX(n) - MIN(n) + 1 FROM nums`)
	if err != nil || v.Int() != 100 {
		t.Fatalf("agg arithmetic: %v %v", v, err)
	}
	// HAVING referencing a group key and an aggregate.
	rows, err = db.Query(`
		SELECT grp, COUNT(*) FROM nums
		GROUP BY grp HAVING grp = 'odd' AND COUNT(*) > 10`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "odd" {
		t.Fatalf("having: %v %v", rows, err)
	}
	// The same aggregate used twice is computed once (no error, right
	// value).
	rows, err = db.Query(`SELECT COUNT(*), COUNT(*) * 2 FROM nums`)
	if err != nil || rows.Data[0][1].Int() != 200 {
		t.Fatalf("repeated aggregate: %v %v", rows, err)
	}
	// CASE over an aggregate.
	v, err = db.QueryScalar(`SELECT CASE WHEN COUNT(*) > 50 THEN 'big' ELSE 'small' END FROM nums`)
	if err != nil || v.Text() != "big" {
		t.Fatalf("case over aggregate: %v %v", v, err)
	}
	// AVG returns a float even for integer inputs.
	v, err = db.QueryScalar(`SELECT AVG(n) FROM nums WHERE n <= 2`)
	if err != nil || v.T != TypeFloat || v.Float() != 1.5 {
		t.Fatalf("avg: %v %v", v, err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := New()
	db.MustExec(`create table MixedCase (Col INTEGER)`)
	db.MustExec(`insert into mixedcase values (1)`)
	v, err := db.QueryScalar(`SELECT COL FROM MIXEDCASE WHERE col = 1`)
	if err != nil || v.Int() != 1 {
		t.Fatalf("case insensitivity: %v %v", v, err)
	}
	// Quoted identifiers preserve spelling but resolve case-insensitively
	// (one namespace).
	v, err = db.QueryScalar(`SELECT "Col" FROM "MixedCase"`)
	if err != nil || v.Int() != 1 {
		t.Fatalf("quoted: %v %v", v, err)
	}
}

func TestPreparedStaleAfterDropTable(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	prep, err := db.Prepare(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := prep.Query(); err != nil || rows.Data[0][0].Int() != 3 {
		t.Fatalf("fresh prepared: %v %v", rows, err)
	}
	db.MustExec(`DROP TABLE t`)
	if _, err := prep.Query(); err == nil {
		t.Fatal("prepared statement executed against a dropped table")
	} else if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error %q does not mention staleness", err)
	}
}

func TestPreparedStaleAfterDropAndRecreate(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	prep, err := db.Prepare(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`DROP TABLE t`)
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (7)`)
	// The seed bug: the old plan still pointed at the orphaned table and
	// silently returned its 3 rows. It must error instead.
	rows, err := prep.Query()
	if err == nil {
		t.Fatalf("prepared statement survived drop+recreate (returned %v — reading the orphaned table)", rows.Data)
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error %q does not mention staleness", err)
	}
	// A fresh Prepare against the new incarnation works.
	prep2, err := db.Prepare(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := prep2.Query(); err != nil || rows.Data[0][0].Int() != 1 {
		t.Fatalf("re-prepared: %v %v", rows, err)
	}
}

func TestPreparedStaleAfterIndexDDL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER)`)
	prep, err := db.Prepare(`SELECT n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE INDEX t_n ON t (n)`)
	if _, err := prep.Query(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("prepared plan survived CREATE INDEX: %v", err)
	}
}

func TestBulkInsertAtomicOnValidationFailure(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER NOT NULL, s TEXT)`)
	db.MustExec(`CREATE INDEX t_n ON t (n)`)
	rows := [][]Value{
		{NewInt(1), NewText("a")},
		{NewInt(2), NewText("b")},
		{Null, NewText("violates NOT NULL")},
		{NewInt(4), NewText("d")},
	}
	n, err := db.BulkInsert("t", rows)
	if err == nil {
		t.Fatal("NOT NULL violation accepted")
	}
	if n != 0 {
		t.Errorf("reported %d inserted rows on failure", n)
	}
	if v, _ := db.QueryScalar(`SELECT COUNT(*) FROM t`); v.Int() != 0 {
		t.Errorf("table half-populated: %d rows survived a failed batch", v.Int())
	}
	// Index must be empty too: probe through the indexed column.
	if v, _ := db.QueryScalar(`SELECT COUNT(*) FROM t WHERE n = 1`); v.Int() != 0 {
		t.Errorf("index entries survived a failed batch")
	}
}

func TestBulkInsertRollsBackOnConstraintFailure(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER PRIMARY KEY, s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (3, 'existing')`)
	rows := [][]Value{
		{NewInt(1), NewText("a")},
		{NewInt(2), NewText("b")},
		{NewInt(3), NewText("duplicate pk")},
		{NewInt(4), NewText("d")},
	}
	n, err := db.BulkInsert("t", rows)
	if err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if n != 0 {
		t.Errorf("reported %d inserted rows on failure", n)
	}
	// Only the pre-existing row survives, and the rolled-back rows are
	// invisible both to scans and to the primary-key index.
	if v, _ := db.QueryScalar(`SELECT COUNT(*) FROM t`); v.Int() != 1 {
		t.Errorf("rows after rollback = %d, want 1", v.Int())
	}
	if v, _ := db.QueryScalar(`SELECT COUNT(*) FROM t WHERE n = 1`); v.Int() != 0 {
		t.Errorf("rolled-back row reachable via primary key")
	}
	// The batch can be retried after fixing the conflict.
	if n, err := db.BulkInsert("t", [][]Value{{NewInt(1), NewText("a")}, {NewInt(2), NewText("b")}}); err != nil || n != 2 {
		t.Fatalf("retry: n=%d err=%v", n, err)
	}
}

func TestDropRecreateTableIndexConsistency(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (n INTEGER, s TEXT)`)
	db.MustExec(`CREATE INDEX t_idx ON t (n)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'old')`)
	db.MustExec(`DROP TABLE t`)

	// Recreating the table must not resurrect the old index...
	db.MustExec(`CREATE TABLE t (n INTEGER, s TEXT)`)
	ts := db.Stats().Tables
	if len(ts) != 1 || ts[0].Indexes != 0 {
		t.Fatalf("recreated table stats = %+v (stale index resurrected?)", ts)
	}
	// ...and creating an index of the same name must not collide with
	// the dropped incarnation's definition.
	if _, err := db.Exec(`CREATE INDEX t_idx ON t (s)`); err != nil {
		t.Fatalf("index name from dropped table still taken: %v", err)
	}
	db.MustExec(`INSERT INTO t VALUES (2, 'new')`)
	rows, err := db.Query(`SELECT n FROM t WHERE s = 'new'`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Int() != 2 {
		t.Fatalf("query via recreated index: %v %v", rows, err)
	}
	// Dropping an index whose table is already gone stays tolerated.
	db.MustExec(`CREATE INDEX t_extra ON t (n)`)
	db.MustExec(`DROP TABLE t`)
	if _, err := db.Exec(`DROP INDEX t_extra`); err == nil {
		t.Log("drop of index removed with its table accepted") // either behavior is fine, must not panic
	}
}

func TestStatsAndCatalog(t *testing.T) {
	db := testDB(t)
	stats := db.Stats().Tables
	if len(stats) != 2 {
		t.Fatalf("stats tables = %d", len(stats))
	}
	if stats[0].Name != "nums" || stats[0].Rows != 100 || stats[0].Bytes == 0 {
		t.Errorf("nums stats = %+v", stats[0])
	}
	if db.TotalRows() != 100+20+15 {
		t.Errorf("total rows = %d", db.TotalRows())
	}
	def := db.TableDef("nums")
	if def == nil || len(def.Columns) != 4 || def.Columns[0].Name != "n" {
		t.Errorf("table def = %+v", def)
	}
	if db.TableDef("nosuch") != nil {
		t.Error("def for missing table")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "nums" {
		t.Errorf("names = %v", names)
	}
}
