package sqldb

import (
	"strings"
	"testing"
)

func expectQueryError(t *testing.T, db *Database, sql, frag string) {
	t.Helper()
	_, err := db.Query(sql)
	if err == nil {
		t.Errorf("%s: expected error", sql)
		return
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("%s: error %q does not mention %q", sql, err, frag)
	}
}

func TestSemanticErrors(t *testing.T) {
	db := testDB(t)
	expectQueryError(t, db, `SELECT nope FROM nums`, "unknown column")
	expectQueryError(t, db, `SELECT n FROM nosuch`, "no such table")
	expectQueryError(t, db, `SELECT bogus.n FROM nums`, "unknown column")
	expectQueryError(t, db, `SELECT grp FROM nums WHERE grp = n2`, "unknown column")
	// Ambiguity: both tables have a column n.
	expectQueryError(t, db, `SELECT n FROM nums, tags`, "ambiguous")
	// Duplicate alias.
	expectQueryError(t, db, `SELECT 1 FROM nums x, tags x`, "duplicate table alias")
	// Aggregation misuse.
	expectQueryError(t, db, `SELECT label, COUNT(*) FROM nums GROUP BY grp`, "GROUP BY")
	expectQueryError(t, db, `SELECT SUM(n, sq) FROM nums`, "exactly one argument")
	expectQueryError(t, db, `SELECT SUM(*) FROM nums`, "not valid")
	// ORDER BY ordinal range.
	expectQueryError(t, db, `SELECT n FROM nums ORDER BY 2`, "out of range")
	// DISTINCT + hidden order key.
	expectQueryError(t, db, `SELECT DISTINCT grp FROM nums ORDER BY sq`, "DISTINCT")
	// Scalar subquery cardinality is a runtime error.
	expectQueryError(t, db, `SELECT (SELECT n FROM nums) FROM nums`, "returned")
	// IN subquery column count.
	expectQueryError(t, db, `SELECT n FROM nums WHERE n IN (SELECT n, sq FROM nums)`, "one column")
	// UNION ALL column count mismatch.
	expectQueryError(t, db, `SELECT n FROM nums UNION ALL SELECT n, sq FROM nums`, "column counts")
	// Unknown function.
	expectQueryError(t, db, `SELECT WIBBLE(n) FROM nums`, "unknown function")
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT 1`); err == nil {
		t.Error("Exec of SELECT accepted")
	}
	if _, err := db.Query(`DELETE FROM nums`); err == nil {
		t.Error("Query of DELETE accepted")
	}
	if _, err := db.Exec(`INSERT INTO nums (n) VALUES (1, 2)`); err == nil {
		t.Error("value arity mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO nums (nosuch) VALUES (1)`); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec(`UPDATE nums SET nosuch = 1`); err == nil {
		t.Error("update of unknown column accepted")
	}
	if _, err := db.Exec(`CREATE TABLE nums (n INTEGER)`); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Exec(`CREATE INDEX dup ON nums (n)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX dup ON nums (sq)`); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := db.Exec(`CREATE INDEX i2 ON nums (nosuch)`); err == nil {
		t.Error("index on unknown column accepted")
	}
	// Missing parameter value.
	if _, err := db.Query(`SELECT n FROM nums WHERE n = ?`); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestAggregationShapes(t *testing.T) {
	db := testDB(t)
	// Expression group keys match structurally.
	rows, err := db.Query(`SELECT n % 10, COUNT(*) FROM nums GROUP BY n % 10 ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 10 || rows.Data[0][1].Int() != 10 {
		t.Fatalf("mod groups: %v", rows.Data[:2])
	}
	// Aggregates inside arithmetic.
	v, err := db.QueryScalar(`SELECT MAX(n) - MIN(n) + 1 FROM nums`)
	if err != nil || v.Int() != 100 {
		t.Fatalf("agg arithmetic: %v %v", v, err)
	}
	// HAVING referencing a group key and an aggregate.
	rows, err = db.Query(`
		SELECT grp, COUNT(*) FROM nums
		GROUP BY grp HAVING grp = 'odd' AND COUNT(*) > 10`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "odd" {
		t.Fatalf("having: %v %v", rows, err)
	}
	// The same aggregate used twice is computed once (no error, right
	// value).
	rows, err = db.Query(`SELECT COUNT(*), COUNT(*) * 2 FROM nums`)
	if err != nil || rows.Data[0][1].Int() != 200 {
		t.Fatalf("repeated aggregate: %v %v", rows, err)
	}
	// CASE over an aggregate.
	v, err = db.QueryScalar(`SELECT CASE WHEN COUNT(*) > 50 THEN 'big' ELSE 'small' END FROM nums`)
	if err != nil || v.Text() != "big" {
		t.Fatalf("case over aggregate: %v %v", v, err)
	}
	// AVG returns a float even for integer inputs.
	v, err = db.QueryScalar(`SELECT AVG(n) FROM nums WHERE n <= 2`)
	if err != nil || v.T != TypeFloat || v.Float() != 1.5 {
		t.Fatalf("avg: %v %v", v, err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := New()
	db.MustExec(`create table MixedCase (Col INTEGER)`)
	db.MustExec(`insert into mixedcase values (1)`)
	v, err := db.QueryScalar(`SELECT COL FROM MIXEDCASE WHERE col = 1`)
	if err != nil || v.Int() != 1 {
		t.Fatalf("case insensitivity: %v %v", v, err)
	}
	// Quoted identifiers preserve spelling but resolve case-insensitively
	// (one namespace).
	v, err = db.QueryScalar(`SELECT "Col" FROM "MixedCase"`)
	if err != nil || v.Int() != 1 {
		t.Fatalf("quoted: %v %v", v, err)
	}
}

func TestStatsAndCatalog(t *testing.T) {
	db := testDB(t)
	stats := db.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats tables = %d", len(stats))
	}
	if stats[0].Name != "nums" || stats[0].Rows != 100 || stats[0].Bytes == 0 {
		t.Errorf("nums stats = %+v", stats[0])
	}
	if db.TotalRows() != 100+20+15 {
		t.Errorf("total rows = %d", db.TotalRows())
	}
	def := db.TableDef("nums")
	if def == nil || len(def.Columns) != 4 || def.Columns[0].Name != "n" {
		t.Errorf("table def = %+v", def)
	}
	if db.TableDef("nosuch") != nil {
		t.Error("def for missing table")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "nums" {
		t.Errorf("names = %v", names)
	}
}
