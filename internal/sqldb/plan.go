package sqldb

import (
	"strings"
	"sync"
)

// plan is a compiled, executable query.
type plan struct {
	root planNode
	cols schema // output column names exposed to the API
	// template is the normalized SQL this plan was compiled from
	// (metrics key); set by the entry points that know the source text.
	template string
	// ops is the lazily built operator-id metadata for instrumentation.
	opsOnce sync.Once
	ops     *planOps
}

// planSelect compiles a SELECT (possibly a UNION ALL chain) into a plan.
// outer is the enclosing query's schema when compiling a subquery (nil at
// the top level).
func planSelect(st *dbState, stmt *SelectStmt, outer schema) (*plan, schema, error) {
	if stmt.UnionAll == nil {
		return planSingleSelect(st, stmt, outer)
	}
	// UNION ALL chain: ORDER BY/LIMIT parsed on the last member apply to
	// the whole union.
	var parts []*SelectStmt
	for s := stmt; s != nil; s = s.UnionAll {
		parts = append(parts, s)
	}
	last := parts[len(parts)-1]
	orderBy, limit, offset := last.OrderBy, last.Limit, last.Offset
	last.OrderBy, last.Limit, last.Offset = nil, nil, nil
	defer func() { last.OrderBy, last.Limit, last.Offset = orderBy, limit, offset }()

	var nodes []planNode
	var outSch schema
	for i, part := range parts {
		p, sch, err := planSingleSelect(st, part, outer)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			outSch = sch
		} else if len(sch) != len(outSch) {
			return nil, nil, errorf("UNION ALL members have different column counts (%d vs %d)", len(outSch), len(sch))
		}
		nodes = append(nodes, p.root)
	}
	var root planNode = &unionAllNode{parts: nodes, schema: outSch}
	var err error
	root, err = applyOrderLimit(st, root, outSch, orderBy, limit, offset, false)
	if err != nil {
		return nil, nil, err
	}
	if outer == nil {
		root = parallelize(st, root)
	}
	return &plan{root: root, cols: outSch}, outSch, nil
}

// relation is one FROM source during planning.
type relation struct {
	alias string
	node  planNode
	tbl   *table // non-nil for base tables
	// own holds this relation's single-alias conjuncts; they are
	// consumed either by its access path or by an index-join probe.
	own []*conjunct
}

// conjunct is one AND-term of the WHERE/ON predicates.
type conjunct struct {
	expr    Expr
	aliases map[string]bool
	complex bool // contains a subquery: evaluate at the top only
	used    bool
}

func planSingleSelect(st *dbState, stmt *SelectStmt, outer schema) (*plan, schema, error) {
	// 1. Build the FROM relations.
	var rels []relation
	hasLeft := false
	for i := range stmt.From {
		fi := &stmt.From[i]
		rel, err := buildRelation(st, fi, outer)
		if err != nil {
			return nil, nil, err
		}
		if fi.JoinKind == "LEFT" {
			hasLeft = true
		}
		rels = append(rels, rel)
	}
	// Duplicate alias check.
	seen := map[string]bool{}
	for _, r := range rels {
		key := strings.ToLower(r.alias)
		if seen[key] {
			return nil, nil, errorf("duplicate table alias %s", r.alias)
		}
		seen[key] = true
	}

	var joined planNode
	var err error
	var topConjs []conjunct
	switch {
	case len(rels) == 0:
		joined = &valuesNode{rows: [][]Value{{}}, schema: schema{}}
		if stmt.Where != nil {
			topConjs = append(topConjs, conjunct{expr: stmt.Where, complex: true})
		}
	case hasLeft:
		joined, topConjs, err = planOrderedJoins(st, stmt, rels, outer)
	default:
		joined, topConjs, err = planReorderedJoins(st, stmt, rels, outer)
	}
	if err != nil {
		return nil, nil, err
	}

	// Top-level residual filter (complex conjuncts, leftovers).
	if len(topConjs) > 0 {
		pred := andAll(topConjs)
		c := &compiler{st: st, sch: joined.sch(), outer: outer}
		f, err := c.compile(pred)
		if err != nil {
			return nil, nil, err
		}
		joined = &filterNode{in: joined, pred: f, kernel: compileRowPred(pred, joined.sch()), sel: 0.5}
	}

	inSch := joined.sch()

	// 2. Expand stars in the select list.
	items, err := expandStars(stmt.Items, inSch)
	if err != nil {
		return nil, nil, err
	}

	// 3. Aggregation.
	needAgg := len(stmt.GroupBy) > 0
	for _, it := range items {
		if hasAggregate(it.Expr) {
			needAgg = true
		}
	}
	if stmt.Having != nil {
		needAgg = true
	}
	for _, o := range stmt.OrderBy {
		if hasAggregate(o.Expr) {
			needAgg = true
		}
	}

	var projExprs []Expr // final projection expressions (over inSch or agg output)
	var projInput planNode
	var projInSch schema
	var orderExprs []Expr // order-by expressions in the projection input space
	if needAgg {
		projInput, projInSch, projExprs, orderExprs, err = planAggregation(st, stmt, items, joined, inSch, outer)
		if err != nil {
			return nil, nil, err
		}
	} else {
		projInput, projInSch = joined, inSch
		for _, it := range items {
			projExprs = append(projExprs, it.Expr)
		}
		for _, o := range stmt.OrderBy {
			orderExprs = append(orderExprs, o.Expr)
		}
	}

	// 4. Output schema naming.
	outSch := make(schema, len(items))
	for i, it := range items {
		outSch[i] = colInfo{name: outputName(it, i)}
	}

	// 5. Compile projection; ORDER BY keys that are not output columns
	// become hidden extra columns.
	comp := &compiler{st: st, sch: projInSch, outer: outer}
	var compiled []compiledExpr
	// Track whether every projected expression is a plain column
	// reference; if so the batch path can gather columns directly
	// instead of calling the compiled closures (see projectVec).
	simpleCols := make([]int, 0, len(projExprs))
	allSimple := true
	for _, e := range projExprs {
		ce, err := comp.compile(e)
		if err != nil {
			return nil, nil, err
		}
		compiled = append(compiled, ce)
		if c := simpleColIdx(e, projInSch); c >= 0 {
			simpleCols = append(simpleCols, c)
		} else {
			allSimple = false
		}
	}

	type orderKey struct {
		col  int
		desc bool
	}
	var orderKeys []orderKey
	hidden := 0
	fullSch := append(schema{}, outSch...)
	for i, o := range stmt.OrderBy {
		desc := o.Desc
		// ORDER BY <ordinal>
		if lit, ok := o.Expr.(*Literal); ok && lit.Val.T == TypeInt {
			n := int(lit.Val.I)
			if n < 1 || n > len(outSch) {
				return nil, nil, errorf("ORDER BY position %d is out of range", n)
			}
			orderKeys = append(orderKeys, orderKey{col: n - 1, desc: desc})
			continue
		}
		// ORDER BY <output alias or matching expression>
		if col := matchOutput(o.Expr, items, outSch); col >= 0 {
			orderKeys = append(orderKeys, orderKey{col: col, desc: desc})
			continue
		}
		// Hidden key computed from the projection input.
		ce, err := comp.compile(orderExprs[i])
		if err != nil {
			return nil, nil, err
		}
		if stmt.Distinct {
			return nil, nil, errorf("ORDER BY expression must appear in the select list of a DISTINCT query")
		}
		compiled = append(compiled, ce)
		fullSch = append(fullSch, colInfo{name: "__order"})
		orderKeys = append(orderKeys, orderKey{col: len(fullSch) - 1, desc: desc})
		hidden++
		if c := simpleColIdx(orderExprs[i], projInSch); c >= 0 {
			simpleCols = append(simpleCols, c)
		} else {
			allSimple = false
		}
	}

	proj := &projectNode{in: projInput, exprs: compiled, schema: fullSch}
	if allSimple && len(simpleCols) == len(compiled) {
		proj.colIdx = simpleCols
	}
	var root planNode = proj

	if stmt.Distinct {
		root = &distinctNode{in: root}
	}

	if len(orderKeys) > 0 {
		keys := make([]compiledExpr, len(orderKeys))
		desc := make([]bool, len(orderKeys))
		for i, k := range orderKeys {
			col := k.col
			keys[i] = func(_ *evalCtx, row []Value) (Value, error) { return row[col], nil }
			desc[i] = k.desc
		}
		root = &sortNode{in: root, keys: keys, desc: desc}
	}
	if hidden > 0 {
		root = &cutNode{in: root, width: len(outSch), schema: outSch}
	}
	if stmt.Limit != nil || stmt.Offset != nil {
		lc := &compiler{st: st, sch: schema{}, outer: outer}
		var limitFn, offsetFn compiledExpr
		if stmt.Limit != nil {
			limitFn, err = lc.compile(stmt.Limit)
			if err != nil {
				return nil, nil, err
			}
		}
		if stmt.Offset != nil {
			offsetFn, err = lc.compile(stmt.Offset)
			if err != nil {
				return nil, nil, err
			}
		}
		root = &limitNode{in: root, limit: limitFn, offset: offsetFn}
	}
	// Top-level plans get the parallel decoration; subqueries always run
	// serially inside whichever worker evaluates them (outer != nil).
	// The pass is idempotent over already-decorated subtrees, so UNION
	// ALL members wrapped here are left alone by planSelect's own pass.
	if outer == nil {
		root = parallelize(st, root)
	}
	return &plan{root: root, cols: outSch}, outSch, nil
}

// applyOrderLimit adds sort/limit over a union.
func applyOrderLimit(st *dbState, root planNode, sch schema, orderBy []OrderItem, limit, offset Expr, _ bool) (planNode, error) {
	if len(orderBy) > 0 {
		comp := &compiler{st: st, sch: sch}
		keys := make([]compiledExpr, len(orderBy))
		desc := make([]bool, len(orderBy))
		for i, o := range orderBy {
			if lit, ok := o.Expr.(*Literal); ok && lit.Val.T == TypeInt {
				n := int(lit.Val.I)
				if n < 1 || n > len(sch) {
					return nil, errorf("ORDER BY position %d is out of range", n)
				}
				col := n - 1
				keys[i] = func(_ *evalCtx, row []Value) (Value, error) { return row[col], nil }
			} else {
				ce, err := comp.compile(o.Expr)
				if err != nil {
					return nil, err
				}
				keys[i] = ce
			}
			desc[i] = o.Desc
		}
		root = &sortNode{in: root, keys: keys, desc: desc}
	}
	if limit != nil || offset != nil {
		comp := &compiler{st: st, sch: schema{}}
		var limitFn, offsetFn compiledExpr
		var err error
		if limit != nil {
			limitFn, err = comp.compile(limit)
			if err != nil {
				return nil, err
			}
		}
		if offset != nil {
			offsetFn, err = comp.compile(offset)
			if err != nil {
				return nil, err
			}
		}
		root = &limitNode{in: root, limit: limitFn, offset: offsetFn}
	}
	return root, nil
}

// valuesNode produces fixed rows (used for FROM-less selects).
type valuesNode struct {
	rows   [][]Value
	schema schema
}

func (n *valuesNode) sch() schema      { return n.schema }
func (n *valuesNode) estRows() float64 { return float64(len(n.rows)) }
func (n *valuesNode) open(*evalCtx) (rowIter, error) {
	return &sliceIter{rows: n.rows}, nil
}

// simpleColIdx returns the input column a projection expression reads,
// or -1 when it is anything but a plain column reference. It mirrors
// the compiler: an inputRef reads its position, a ColumnRef that
// resolves in sch compiles to row[idx] of that same index (outer
// references only apply when local resolution fails).
func simpleColIdx(e Expr, sch schema) int {
	switch e := e.(type) {
	case *inputRef:
		return e.idx
	case *ColumnRef:
		if idx, err := sch.resolve(e.Table, e.Name); err == nil {
			return idx
		}
	}
	return -1
}

// cutNode truncates rows to the first width columns (drops hidden
// order-by keys).
type cutNode struct {
	in     planNode
	width  int
	schema schema
}

func (n *cutNode) sch() schema      { return n.schema }
func (n *cutNode) estRows() float64 { return n.in.estRows() }
func (n *cutNode) open(ctx *evalCtx) (rowIter, error) {
	in, err := openNode(ctx, n.in)
	if err != nil {
		return nil, err
	}
	return &cutIter{in: in, width: n.width}, nil
}

type cutIter struct {
	in    rowIter
	width int
}

func (it *cutIter) next() ([]Value, error) {
	row, err := it.in.next()
	if err != nil || row == nil {
		return nil, err
	}
	return row[:it.width], nil
}

func (it *cutIter) close() { it.in.close() }

// derivedNode wraps a subquery plan as a FROM source with renamed schema.
type derivedNode struct {
	p      *plan
	schema schema
	est    float64
}

func (n *derivedNode) sch() schema      { return n.schema }
func (n *derivedNode) estRows() float64 { return n.est }
func (n *derivedNode) open(ctx *evalCtx) (rowIter, error) {
	return openNode(ctx, n.p.root)
}

func buildRelation(st *dbState, fi *FromItem, outer schema) (relation, error) {
	if fi.Sub != nil {
		p, sch, err := planSelect(st, fi.Sub, outer)
		if err != nil {
			return relation{}, err
		}
		renamed := make(schema, len(sch))
		for i, c := range sch {
			renamed[i] = colInfo{alias: fi.Alias, name: c.name}
		}
		return relation{
			alias: fi.Alias,
			node:  &derivedNode{p: &plan{root: p.root, cols: renamed}, schema: renamed, est: p.root.estRows()},
		}, nil
	}
	tbl := st.table(fi.Table)
	if tbl == nil {
		return relation{}, errorf("no such table: %s", fi.Table)
	}
	alias := fi.Alias
	if alias == "" {
		alias = fi.Table
	}
	return relation{alias: alias, node: newSeqScanNode(tbl, alias), tbl: tbl}, nil
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

func andAll(conjs []conjunct) Expr {
	var e Expr
	for _, c := range conjs {
		if e == nil {
			e = c.expr
		} else {
			e = &BinaryExpr{Op: "AND", L: e, R: c.expr}
		}
	}
	return e
}

// analyzeConjunct determines which relation aliases a conjunct touches.
// Unqualified columns are resolved against the relation schemas; columns
// that resolve only in the outer schema contribute no alias.
func analyzeConjunct(e Expr, rels []relation, outer schema) (conjunct, error) {
	c := conjunct{expr: e, aliases: map[string]bool{}}
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch e := e.(type) {
		case nil:
			return nil
		case *ColumnRef:
			if e.Table != "" {
				for _, r := range rels {
					if strings.EqualFold(r.alias, e.Table) {
						c.aliases[strings.ToLower(r.alias)] = true
						return nil
					}
				}
				// Not a local alias: outer reference (or error at compile).
				return nil
			}
			matches := 0
			var owner string
			for _, r := range rels {
				for _, col := range r.node.sch() {
					if strings.EqualFold(col.name, e.Name) {
						matches++
						owner = r.alias
						break
					}
				}
			}
			if matches > 1 {
				return errorf("ambiguous column reference %s", e.Name)
			}
			if matches == 1 {
				c.aliases[strings.ToLower(owner)] = true
			}
			return nil
		case *Literal, *Param:
			return nil
		case *UnaryExpr:
			return walk(e.X)
		case *BinaryExpr:
			if err := walk(e.L); err != nil {
				return err
			}
			return walk(e.R)
		case *LikeExpr:
			if err := walk(e.X); err != nil {
				return err
			}
			if err := walk(e.Pattern); err != nil {
				return err
			}
			return walk(e.Escape)
		case *InExpr:
			if e.Sub != nil {
				c.complex = true
			}
			if err := walk(e.X); err != nil {
				return err
			}
			for _, x := range e.List {
				if err := walk(x); err != nil {
					return err
				}
			}
			return nil
		case *ExistsExpr:
			c.complex = true
			return nil
		case *BetweenExpr:
			if err := walk(e.X); err != nil {
				return err
			}
			if err := walk(e.Lo); err != nil {
				return err
			}
			return walk(e.Hi)
		case *IsNullExpr:
			return walk(e.X)
		case *CaseExpr:
			if err := walk(e.Operand); err != nil {
				return err
			}
			for _, w := range e.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Result); err != nil {
					return err
				}
			}
			return walk(e.Else)
		case *FuncExpr:
			for _, a := range e.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		case *CastExpr:
			return walk(e.X)
		case *SubqueryExpr:
			c.complex = true
			return nil
		}
		return nil
	}
	if err := walk(e); err != nil {
		return c, err
	}
	return c, nil
}

// planReorderedJoins plans inner/cross joins with greedy reordering and
// index selection. Returns the join tree and conjuncts that must be
// applied on top (complex ones).
func planReorderedJoins(st *dbState, stmt *SelectStmt, rels []relation, outer schema) (planNode, []conjunct, error) {
	// Gather conjuncts from WHERE and inner-join ON clauses.
	var raw []Expr
	if stmt.Where != nil {
		raw = splitConjuncts(stmt.Where, nil)
	}
	for i := range stmt.From {
		if stmt.From[i].On != nil {
			raw = splitConjuncts(stmt.From[i].On, raw)
		}
	}
	var conjs []conjunct
	var topConjs []conjunct
	for _, e := range raw {
		c, err := analyzeConjunct(e, rels, outer)
		if err != nil {
			return nil, nil, err
		}
		if c.complex {
			topConjs = append(topConjs, c)
		} else {
			conjs = append(conjs, c)
		}
	}

	// Assign single-relation conjuncts to their relation; they are
	// consumed later, either by the relation's access path or by an
	// index-join probe.
	for i := range rels {
		for j := range conjs {
			c := &conjs[j]
			if len(c.aliases) == 1 && c.aliases[strings.ToLower(rels[i].alias)] {
				rels[i].own = append(rels[i].own, c)
			}
		}
	}

	// Zero-alias conjuncts (constants) go to the top filter.
	for j := range conjs {
		if !conjs[j].used && len(conjs[j].aliases) == 0 {
			topConjs = append(topConjs, conjs[j])
			conjs[j].used = true
		}
	}

	// Cost-based join ordering: prefer plan-time sampling (executing
	// capped candidate chains, which sees real skew and correlation);
	// fall back to the distinct-count estimate model when the query is
	// not sampleable (outer references, parameters, many relations).
	order, sampled := sampledJoinOrder(st, rels, conjs, outer)
	if !sampled {
		order = chooseJoinOrder(rels, conjs)
	}
	placed := map[string]bool{strings.ToLower(rels[order[0]].alias): true}
	cur, err := buildAccessPath(st, &rels[order[0]], rels[order[0]].own, outer)
	if err != nil {
		return nil, nil, err
	}
	for _, next := range order[1:] {
		cross := !hasJoinLink(conjs, rels, placed, next)
		cur, err = joinRelation(st, cur, &rels[next], conjs, rels, placed, cross, outer)
		if err != nil {
			return nil, nil, err
		}
		placed[strings.ToLower(rels[next].alias)] = true
	}

	// Any conjunct still unused (references now all placed) -> top filter.
	for j := range conjs {
		if !conjs[j].used {
			topConjs = append(topConjs, conjs[j])
		}
	}
	return cur, topConjs, nil
}

// conjSelectivity estimates the selectivity of one predicate. An
// equality on an indexed column of rel is estimated from the index's
// distinct-prefix statistic — the same figure estWithEq feeds the
// join-order model — so single-table filter estimates and join-order
// estimates agree. Range, LIKE and BETWEEN predicates keep class
// heuristics (distinct counts say nothing about value ranges), as does
// any predicate without a usable column or index (rel may be nil).
func conjSelectivity(e Expr, rel *relation) float64 {
	switch e := e.(type) {
	case *BinaryExpr:
		switch e.Op {
		case "=":
			return eqSelectivity(e, rel)
		case "<", "<=", ">", ">=":
			return 0.25
		}
	case *LikeExpr:
		return 0.15
	case *BetweenExpr:
		return 0.2
	}
	return 0.5
}

// eqSelectivity estimates an equality predicate as 1/distinct(col)
// when one side names a column of rel led by an index, else 0.05.
func eqSelectivity(e *BinaryExpr, rel *relation) float64 {
	const fallback = 0.05
	if rel == nil || rel.tbl == nil {
		return fallback
	}
	relSch := rel.node.sch()
	col := candColumn(e.L, rel, relSch)
	if col < 0 {
		col = candColumn(e.R, rel, relSch)
	}
	if col < 0 {
		return fallback
	}
	d := 0
	for _, idx := range rel.tbl.indexes {
		if idx.def.Columns[0] == col {
			if dp := idx.tree.DistinctPrefix(1); dp > d {
				d = dp
			}
		}
	}
	if d <= 0 {
		return fallback
	}
	return 1 / float64(d)
}

// eqPrefixSelectivity is the joint selectivity of l leading equality
// bounds on idx: matched rows / live rows via the distinct-prefix
// statistic.
func eqPrefixSelectivity(idx *tableIndex, l int) float64 {
	if l <= 0 {
		return 1
	}
	d := idx.tree.DistinctPrefix(l)
	if d < 1 {
		d = 1
	}
	return 1 / float64(d)
}

// hasJoinLink reports whether candidate cand connects to the placed set
// via any comparison predicate.
func hasJoinLink(conjs []conjunct, rels []relation, placed map[string]bool, cand int) bool {
	ca := strings.ToLower(rels[cand].alias)
	for i := range conjs {
		c := &conjs[i]
		if c.used || !c.aliases[ca] || len(c.aliases) < 2 {
			continue
		}
		otherPlaced := true
		for a := range c.aliases {
			if a == ca {
				continue
			}
			if !placed[a] {
				otherPlaced = false
				break
			}
		}
		if otherPlaced {
			return true
		}
	}
	return false
}

// joinBound is one candidate index-probe bound harvested from a join
// conjunct or a constant (single-relation) conjunct. For join bounds,
// expr references only placed relations; for constant bounds it is
// row-independent.
type joinBound struct {
	candCol int
	op      string // "=", "<", "<=", ">", ">="
	expr    Expr
	conj    *conjunct
	isConst bool
}

// joinRelation joins rel into cur using the best available method:
// index nested-loop (combining constant and join-key bounds, including
// a trailing range column), hash join on equi pairs, or nested loop.
func joinRelation(st *dbState, cur planNode, rel *relation, conjs []conjunct, rels []relation, placed map[string]bool, cross bool, outer schema) (planNode, error) {
	ca := strings.ToLower(rel.alias)
	relSch := rel.node.sch()
	joinedSch := append(append(schema{}, cur.sch()...), relSch...)

	// Collect applicable join conjuncts: reference rel + only placed.
	var applicable []*conjunct
	for i := range conjs {
		c := &conjs[i]
		if c.used || len(c.aliases) < 2 {
			continue
		}
		ok := true
		touchesCand := false
		for a := range c.aliases {
			if a == ca {
				touchesCand = true
				continue
			}
			if !placed[a] {
				ok = false
				break
			}
		}
		if ok && touchesCand {
			applicable = append(applicable, c)
		}
	}

	// compileResidual compiles leftover conjuncts over the joined row.
	compileResidual := func(conjs []*conjunct, consumed map[*conjunct]bool) (compiledExpr, error) {
		var exprs []conjunct
		for _, c := range conjs {
			c.used = true
			if consumed[c] {
				continue
			}
			exprs = append(exprs, *c)
		}
		if len(exprs) == 0 {
			return nil, nil
		}
		comp := &compiler{st: st, sch: joinedSch, outer: outer}
		return comp.compile(andAll(exprs))
	}

	// Harvest index-probe bounds.
	var bounds []joinBound
	for _, c := range applicable {
		b, ok := c.expr.(*BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case "=", "<", "<=", ">", ">=":
		default:
			continue
		}
		if col := candColumn(b.L, rel, relSch); col >= 0 && exprAvoidsAlias(b.R, ca, rels) {
			if bt, ok := staticExprType(b.R, cur.sch()); boundTypeOK(relSch[col].typ, bt, ok) {
				bounds = append(bounds, joinBound{candCol: col, op: b.Op, expr: b.R, conj: c})
			}
		} else if col := candColumn(b.R, rel, relSch); col >= 0 && exprAvoidsAlias(b.L, ca, rels) {
			if bt, ok := staticExprType(b.L, cur.sch()); boundTypeOK(relSch[col].typ, bt, ok) {
				bounds = append(bounds, joinBound{candCol: col, op: flipOp(b.Op), expr: b.L, conj: c})
			}
		}
	}
	for _, c := range rel.own {
		if c.used {
			continue
		}
		b, ok := c.expr.(*BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case "=", "<", "<=", ">", ">=":
		default:
			continue
		}
		if col := candColumn(b.L, rel, relSch); col >= 0 && isConstExprFor(b.R, rel) {
			if bt, ok := staticExprType(b.R, nil); boundTypeOK(relSch[col].typ, bt, ok) {
				bounds = append(bounds, joinBound{candCol: col, op: b.Op, expr: b.R, conj: c, isConst: true})
			}
		} else if col := candColumn(b.R, rel, relSch); col >= 0 && isConstExprFor(b.L, rel) {
			if bt, ok := staticExprType(b.L, nil); boundTypeOK(relSch[col].typ, bt, ok) {
				bounds = append(bounds, joinBound{candCol: col, op: flipOp(b.Op), expr: b.L, conj: c, isConst: true})
			}
		}
	}

	hasJoinBound := false
	for _, b := range bounds {
		if !b.isConst {
			hasJoinBound = true
			break
		}
	}

	// Index nested-loop join: pick the index with the longest bound
	// prefix (equality columns, then one range column). Only worthwhile
	// when at least one join-derived bound participates; pure-constant
	// bounds are better served by the access path below.
	if rel.tbl != nil && hasJoinBound && !cross {
		type idxChoice struct {
			idx    *tableIndex
			eq     []*joinBound
			lo, hi *joinBound
			est    float64
		}
		var best *idxChoice
		live := float64(rel.tbl.live)
		if live < 1 {
			live = 1
		}
		for _, idx := range rel.tbl.indexes {
			ch := &idxChoice{idx: idx}
			for _, ic := range idx.def.Columns {
				var eq *joinBound
				for bi := range bounds {
					if bounds[bi].candCol == ic && bounds[bi].op == "=" {
						eq = &bounds[bi]
						break
					}
				}
				if eq != nil {
					ch.eq = append(ch.eq, eq)
					continue
				}
				for bi := range bounds {
					b := &bounds[bi]
					if b.candCol != ic {
						continue
					}
					switch b.op {
					case ">", ">=":
						if ch.lo == nil {
							ch.lo = b
						}
					case "<", "<=":
						if ch.hi == nil {
							ch.hi = b
						}
					}
				}
				break
			}
			if len(ch.eq) == 0 && ch.lo == nil && ch.hi == nil {
				continue
			}
			joinBacked := false
			for _, e := range ch.eq {
				if !e.isConst {
					joinBacked = true
				}
			}
			if (ch.lo != nil && !ch.lo.isConst) || (ch.hi != nil && !ch.hi.isConst) {
				joinBacked = true
			}
			if !joinBacked {
				continue
			}
			// Estimate the per-probe match count with the index's
			// distinct-prefix statistics: a join-backed equality on a
			// near-unique column beats a constant name filter plus a
			// wide range (the dewey sibling-join case).
			d := 1
			if len(ch.eq) > 0 {
				d = ch.idx.tree.DistinctPrefix(len(ch.eq))
			}
			ch.est = live / float64(d)
			if ch.lo != nil || ch.hi != nil {
				ch.est *= 0.3
			}
			if best == nil || ch.est < best.est {
				best = ch
			}
		}
		if best != nil {
			leftComp := &compiler{st: st, sch: cur.sch(), outer: outer}
			compileBound := func(b *joinBound) (compiledExpr, error) {
				if b.isConst {
					constComp := &compiler{st: st, sch: schema{}, outer: outer}
					return constComp.compile(b.expr)
				}
				return leftComp.compile(b.expr)
			}
			node := &indexJoinNode{left: cur, tbl: rel.tbl, idx: best.idx, schema: joinedSch, sel: 1}
			consumed := map[*conjunct]bool{}
			for _, b := range best.eq {
				ke, err := compileBound(b)
				if err != nil {
					return nil, err
				}
				node.keyExprs = append(node.keyExprs, ke)
				consumed[b.conj] = true
			}
			node.sel *= eqPrefixSelectivity(best.idx, len(best.eq))
			if best.lo != nil {
				ke, err := compileBound(best.lo)
				if err != nil {
					return nil, err
				}
				node.rngLo = ke
				node.rngLoIncl = best.lo.op == ">="
				node.sel *= 0.5
				consumed[best.lo.conj] = true
			}
			if best.hi != nil {
				ke, err := compileBound(best.hi)
				if err != nil {
					return nil, err
				}
				node.rngHi = ke
				node.rngHiIncl = best.hi.op == "<="
				node.sel *= 0.5
				consumed[best.hi.conj] = true
			}
			all := append(append([]*conjunct{}, applicable...), rel.own...)
			extra, err := compileResidual(all, consumed)
			if err != nil {
				return nil, err
			}
			node.extraCond = extra
			return node, nil
		}
	}

	// No index probe: build rel's access path from its own conjuncts.
	right, err := buildAccessPath(st, rel, rel.own, outer)
	if err != nil {
		return nil, err
	}

	// Hash join on all join-derived equality pairs. A known type-class
	// mismatch between the key sides would make hash equality diverge
	// from SQL's coercing comparison; such pairs stay in the residual.
	var eqPairs []*joinBound
	for bi := range bounds {
		b := &bounds[bi]
		if b.op != "=" || b.isConst {
			continue
		}
		if bt, ok := staticExprType(b.expr, cur.sch()); !boundTypeOK(relSch[b.candCol].typ, bt, ok) {
			continue
		}
		eqPairs = append(eqPairs, b)
	}
	if len(eqPairs) > 0 && !cross {
		leftComp := &compiler{st: st, sch: cur.sch(), outer: outer}
		var lkeys, rkeys []compiledExpr
		consumed := map[*conjunct]bool{}
		for _, p := range eqPairs {
			lk, err := leftComp.compile(p.expr)
			if err != nil {
				return nil, err
			}
			col := p.candCol
			lkeys = append(lkeys, lk)
			rkeys = append(rkeys, func(_ *evalCtx, row []Value) (Value, error) { return row[col], nil })
			consumed[p.conj] = true
		}
		extra, err := compileResidual(applicable, consumed)
		if err != nil {
			return nil, err
		}
		return &hashJoinNode{
			left: cur, right: right,
			leftKeys: lkeys, rightKeys: rkeys,
			extraCond: extra, schema: joinedSch,
		}, nil
	}

	// Nested loop with whatever conditions apply (cross join when none).
	cond, err := compileResidual(applicable, nil)
	if err != nil {
		return nil, err
	}
	return &nlJoinNode{left: cur, right: right, cond: cond, schema: joinedSch}, nil
}

// candColumn returns the column ordinal in rel's schema if e is a
// ColumnRef naming a column of rel, else -1.
func candColumn(e Expr, rel *relation, relSch schema) int {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return -1
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, rel.alias) {
		return -1
	}
	for i, c := range relSch {
		if strings.EqualFold(c.name, cr.Name) {
			return i
		}
	}
	return -1
}

// exprAvoidsAlias reports whether e references no columns of alias ca.
func exprAvoidsAlias(e Expr, ca string, rels []relation) bool {
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case nil:
		case *ColumnRef:
			if strings.EqualFold(e.Table, ca) {
				ok = false
				return
			}
			if e.Table == "" {
				// Unqualified: does it belong to ca's relation?
				for _, r := range rels {
					if strings.ToLower(r.alias) != ca {
						continue
					}
					for _, c := range r.node.sch() {
						if strings.EqualFold(c.name, e.Name) {
							ok = false
							return
						}
					}
				}
			}
		case *UnaryExpr:
			walk(e.X)
		case *BinaryExpr:
			walk(e.L)
			walk(e.R)
		case *CastExpr:
			walk(e.X)
		case *FuncExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *CaseExpr:
			walk(e.Operand)
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(e.Else)
		case *LikeExpr:
			walk(e.X)
			walk(e.Pattern)
		case *BetweenExpr:
			walk(e.X)
			walk(e.Lo)
			walk(e.Hi)
		case *IsNullExpr:
			walk(e.X)
		case *InExpr:
			walk(e.X)
			for _, x := range e.List {
				walk(x)
			}
		}
	}
	walk(e)
	return ok
}

// planOrderedJoins plans FROM items strictly in written order; used when
// LEFT JOIN is present so outer-join semantics are preserved.
func planOrderedJoins(st *dbState, stmt *SelectStmt, rels []relation, outer schema) (planNode, []conjunct, error) {
	cur := rels[0].node
	for i := 1; i < len(rels); i++ {
		fi := &stmt.From[i]
		leftOuter := fi.JoinKind == "LEFT"
		joinedSch := append(append(schema{}, cur.sch()...), rels[i].node.sch()...)
		var cond compiledExpr
		if fi.On != nil {
			comp := &compiler{st: st, sch: joinedSch, outer: outer}
			var err error
			cond, err = comp.compile(fi.On)
			if err != nil {
				return nil, nil, err
			}
		}
		cur = &nlJoinNode{left: cur, right: rels[i].node, cond: cond, leftOuter: leftOuter, schema: joinedSch}
	}
	var topConjs []conjunct
	if stmt.Where != nil {
		topConjs = append(topConjs, conjunct{expr: stmt.Where, complex: true})
	}
	return cur, topConjs, nil
}

// rangeBound captures one sargable condition on a column.
type rangeBound struct {
	col   int
	op    string // "=", "<", "<=", ">", ">=", "like"
	bound Expr
	conj  *conjunct
	// forLike carries the precomputed prefix for LIKE conditions.
	likePrefix     string
	likePrefixOnly bool
}

// buildAccessPath chooses a seq scan or index scan for a base relation
// given its single-relation conjuncts, marking consumed conjuncts used.
func buildAccessPath(st *dbState, rel *relation, conjs []*conjunct, outer schema) (planNode, error) {
	relSch := rel.node.sch()
	// Keep only conjuncts not already consumed elsewhere.
	unused := conjs[:0:0]
	for _, c := range conjs {
		if !c.used {
			unused = append(unused, c)
		}
	}
	conjs = unused
	if len(conjs) == 0 {
		return rel.node, nil
	}

	if rel.tbl == nil {
		// Derived table: just wrap a filter.
		var exprs []conjunct
		sel := 1.0
		for _, c := range conjs {
			exprs = append(exprs, *c)
			sel *= conjSelectivity(c.expr, rel)
			c.used = true
		}
		comp := &compiler{st: st, sch: relSch, outer: outer}
		pred, err := comp.compile(andAll(exprs))
		if err != nil {
			return nil, err
		}
		return &filterNode{in: rel.node, pred: pred, kernel: compileRowPred(andAll(exprs), relSch), sel: sel}, nil
	}

	// Find sargable bounds.
	var bounds []rangeBound
	for _, c := range conjs {
		switch e := c.expr.(type) {
		case *BinaryExpr:
			if e.Op != "=" && e.Op != "<" && e.Op != "<=" && e.Op != ">" && e.Op != ">=" {
				continue
			}
			if col := candColumn(e.L, rel, relSch); col >= 0 && isConstExprFor(e.R, rel) {
				if bt, ok := staticExprType(e.R, nil); boundTypeOK(relSch[col].typ, bt, ok) {
					bounds = append(bounds, rangeBound{col: col, op: e.Op, bound: e.R, conj: c})
				}
			} else if col := candColumn(e.R, rel, relSch); col >= 0 && isConstExprFor(e.L, rel) {
				if bt, ok := staticExprType(e.L, nil); boundTypeOK(relSch[col].typ, bt, ok) {
					bounds = append(bounds, rangeBound{col: col, op: flipOp(e.Op), bound: e.L, conj: c})
				}
			}
		case *LikeExpr:
			if e.Not || e.Escape != nil {
				continue
			}
			lit, ok := e.Pattern.(*Literal)
			if !ok || lit.Val.T != TypeText {
				continue
			}
			col := candColumn(e.X, rel, relSch)
			if col < 0 || !boundTypeOK(relSch[col].typ, TypeText, true) {
				continue
			}
			prefix, prefixOnly := likePrefix(lit.Val.S, 0)
			if prefix == "" {
				continue
			}
			bounds = append(bounds, rangeBound{col: col, op: "like", bound: e.Pattern, conj: c, likePrefix: prefix, likePrefixOnly: prefixOnly})
		case *BetweenExpr:
			if e.Not {
				continue
			}
			if col := candColumn(e.X, rel, relSch); col >= 0 && isConstExprFor(e.Lo, rel) && isConstExprFor(e.Hi, rel) {
				loT, loOK := staticExprType(e.Lo, nil)
				hiT, hiOK := staticExprType(e.Hi, nil)
				if boundTypeOK(relSch[col].typ, loT, loOK) && boundTypeOK(relSch[col].typ, hiT, hiOK) {
					bounds = append(bounds, rangeBound{col: col, op: ">=", bound: e.Lo, conj: c})
					bounds = append(bounds, rangeBound{col: col, op: "<=", bound: e.Hi, conj: c})
				}
			}
		}
	}

	// Choose the index with the longest usable prefix.
	var best *choice
	for _, idx := range rel.tbl.indexes {
		ch := &choice{idx: idx}
		for _, ic := range idx.def.Columns {
			var eq *rangeBound
			for bi := range bounds {
				b := &bounds[bi]
				if b.col == ic && b.op == "=" {
					eq = b
					break
				}
			}
			if eq != nil {
				ch.eq = append(ch.eq, eq)
				ch.score += 4
				continue
			}
			// Range bounds on this column terminate the prefix.
			for bi := range bounds {
				b := &bounds[bi]
				if b.col != ic {
					continue
				}
				switch b.op {
				case ">", ">=":
					if ch.lo == nil {
						ch.lo = b
						ch.score++
					}
				case "<", "<=":
					if ch.hi == nil {
						ch.hi = b
						ch.score++
					}
				case "like":
					if ch.lo == nil && ch.hi == nil {
						ch.lo = b
						ch.hi = b
						ch.score += 2
					}
				}
			}
			break
		}
		if ch.score > 0 && (best == nil || ch.score > best.score) {
			best = ch
		}
	}

	comp := &compiler{st: st, sch: relSch, outer: outer}
	constComp := &compiler{st: st, sch: schema{}, outer: outer}

	if best == nil {
		var exprs []conjunct
		sel := 1.0
		for _, c := range conjs {
			exprs = append(exprs, *c)
			sel *= conjSelectivity(c.expr, rel)
			c.used = true
		}
		pred, err := comp.compile(andAll(exprs))
		if err != nil {
			return nil, err
		}
		scan := newSeqScanNode(rel.tbl, rel.alias)
		scan.filter = pred
		scan.kernel = compileRowPred(andAll(exprs), relSch)
		scan.sel = sel
		return scan, nil
	}

	node := &indexScanNode{
		tbl:    rel.tbl,
		idx:    best.idx,
		alias:  rel.alias,
		schema: relSch,
		sel:    1.0,
	}
	consumed := map[*conjunct]bool{}
	for _, b := range best.eq {
		ce, err := constComp.compile(b.bound)
		if err != nil {
			return nil, err
		}
		node.eq = append(node.eq, ce)
		consumed[b.conj] = true
	}
	node.sel *= eqPrefixSelectivity(best.idx, len(best.eq))
	if best.lo != nil && best.lo.op == "like" {
		// LIKE prefix range: [prefix, succ(prefix)).
		prefix := best.lo.likePrefix
		loLit := NewText(prefix)
		node.lo = func(*evalCtx, []Value) (Value, error) { return loLit, nil }
		node.loIncl = true
		if succ, ok := succString(prefix); ok {
			hiLit := NewText(succ)
			node.hi = func(*evalCtx, []Value) (Value, error) { return hiLit, nil }
			node.hiIncl = false
		}
		node.sel *= 0.1
		if best.lo.likePrefixOnly {
			consumed[best.lo.conj] = true
		}
	} else {
		if best.lo != nil {
			ce, err := constComp.compile(best.lo.bound)
			if err != nil {
				return nil, err
			}
			node.lo = ce
			node.loIncl = best.lo.op == ">="
			node.sel *= 0.5
			consumed[best.lo.conj] = true
		}
		if best.hi != nil {
			ce, err := constComp.compile(best.hi.bound)
			if err != nil {
				return nil, err
			}
			node.hi = ce
			node.hiIncl = best.hi.op == "<="
			node.sel *= 0.5
			consumed[best.hi.conj] = true
		}
	}
	// BETWEEN produces two bounds sharing one conjunct; only mark it
	// consumed if both its bounds were used. Simpler and safe: recheck.
	var residual []conjunct
	for _, c := range conjs {
		c.used = true
		if consumed[c] && !betweenNeedsRecheck(c, best) {
			continue
		}
		residual = append(residual, *c)
		node.sel *= conjSelectivity(c.expr, rel)
	}
	if len(residual) > 0 {
		pred, err := comp.compile(andAll(residual))
		if err != nil {
			return nil, err
		}
		node.filter = pred
		node.kernel = compileRowPred(andAll(residual), relSch)
	}
	return node, nil
}

// betweenNeedsRecheck: a BETWEEN conjunct that only got one of its two
// bounds into the index scan must still be rechecked.
func betweenNeedsRecheck(c *conjunct, ch *choice) bool {
	if _, ok := c.expr.(*BetweenExpr); !ok {
		return false
	}
	lo := ch.lo != nil && ch.lo.conj == c
	hi := ch.hi != nil && ch.hi.conj == c
	return !(lo && hi)
}

// choice is one candidate index access path considered by
// buildAccessPath.
type choice struct {
	idx    *tableIndex
	eq     []*rangeBound
	lo, hi *rangeBound
	score  int
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// staticExprType infers an expression's type from declared column types.
// ok=false means unknown.
func staticExprType(e Expr, sch schema) (Type, bool) {
	switch e := e.(type) {
	case *Literal:
		if e.Val.T == TypeNull {
			return TypeNull, false
		}
		return e.Val.T, true
	case *ColumnRef:
		if sch == nil {
			return TypeNull, false
		}
		idx, err := sch.resolve(e.Table, e.Name)
		if err != nil || sch[idx].typ == TypeNull {
			return TypeNull, false
		}
		return sch[idx].typ, true
	case *UnaryExpr:
		if e.Op == "-" {
			return staticExprType(e.X, sch)
		}
		return TypeBool, true
	case *BinaryExpr:
		switch e.Op {
		case "+", "-", "*", "/", "%":
			return TypeFloat, true // numeric class
		case "||":
			return TypeText, true
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return TypeBool, true
		}
	case *CastExpr:
		return e.To, true
	case *FuncExpr:
		switch e.Name {
		case "LENGTH", "INSTR":
			return TypeInt, true
		case "UPPER", "LOWER", "TRIM", "SUBSTR", "SUBSTRING", "REPLACE":
			return TypeText, true
		case "ABS", "ROUND":
			return TypeFloat, true
		}
	}
	return TypeNull, false
}

// typeClass groups types whose B-tree order agrees with SQL comparison.
func typeClass(t Type) int {
	switch t {
	case TypeInt, TypeFloat, TypeBool:
		return 1
	case TypeText:
		return 2
	case TypeBlob:
		return 3
	default:
		return 0
	}
}

// boundTypeOK reports whether an index bound of inferred type bt can be
// used against a column of declared type ct: only a known-mismatched
// class is rejected (a TEXT column probed with a numeric bound would
// scan in the wrong order; SQL's coercing comparison still applies it
// correctly as a residual filter).
func boundTypeOK(ct Type, bt Type, btKnown bool) bool {
	if !btKnown || typeClass(ct) == 0 {
		return true
	}
	return typeClass(ct) == typeClass(bt)
}

// isConstExpr reports whether e is row-independent at the current level:
// it contains no ColumnRef at all.
func isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *Literal, *Param, *outerRef:
		return true
	case *UnaryExpr:
		return isConstExpr(e.X)
	case *BinaryExpr:
		return isConstExpr(e.L) && isConstExpr(e.R)
	case *CastExpr:
		return isConstExpr(e.X)
	case *FuncExpr:
		for _, a := range e.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isConstExprFor reports whether e is constant during one scan of rel:
// it references no column of rel (outer-correlated references resolve to
// ctx.outer, which is fixed per subquery execution, so they are
// legitimate index bounds — this is what makes correlated EXISTS and
// positional-count subqueries probe instead of scan).
func isConstExprFor(e Expr, rel *relation) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *Literal, *Param, *outerRef:
		return true
	case *ColumnRef:
		return !refBelongsTo(e, rel)
	case *UnaryExpr:
		return isConstExprFor(e.X, rel)
	case *BinaryExpr:
		return isConstExprFor(e.L, rel) && isConstExprFor(e.R, rel)
	case *CastExpr:
		return isConstExprFor(e.X, rel)
	case *FuncExpr:
		for _, a := range e.Args {
			if !isConstExprFor(a, rel) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// refBelongsTo reports whether a column reference names a column of rel.
func refBelongsTo(cr *ColumnRef, rel *relation) bool {
	if cr.Table != "" {
		return strings.EqualFold(cr.Table, rel.alias)
	}
	for _, c := range rel.node.sch() {
		if strings.EqualFold(c.name, cr.Name) {
			return true
		}
	}
	return false
}

// succString returns the smallest string greater than every string with
// the given prefix, for LIKE-prefix range scans.
func succString(s string) (string, bool) {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Star expansion, output naming, aggregation planning

func expandStars(items []SelectItem, inSch schema) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		n := 0
		for _, c := range inSch {
			if it.StarTable != "" && !strings.EqualFold(c.alias, it.StarTable) {
				continue
			}
			out = append(out, SelectItem{
				Expr:  &ColumnRef{Table: c.alias, Name: c.name},
				Alias: c.name,
			})
			n++
		}
		if n == 0 {
			if it.StarTable != "" {
				return nil, errorf("no such table alias %s in star expansion", it.StarTable)
			}
			return nil, errorf("SELECT * with empty FROM")
		}
	}
	return out, nil
}

func outputName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColumnRef:
		return e.Name
	case *FuncExpr:
		return strings.ToLower(e.Name)
	}
	return "col" + itoa(i+1)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// matchOutput finds an output column matching an ORDER BY expression,
// either by alias or structurally.
func matchOutput(e Expr, items []SelectItem, outSch schema) int {
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i := range outSch {
			if strings.EqualFold(outSch[i].name, cr.Name) {
				return i
			}
		}
	}
	es := exprString(e)
	for i := range items {
		if items[i].Expr != nil && exprString(items[i].Expr) == es {
			return i
		}
	}
	return -1
}

func hasAggregate(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		if found || e == nil {
			return
		}
		switch e := e.(type) {
		case *FuncExpr:
			if aggregateFuncs[e.Name] {
				found = true
				return
			}
			for _, a := range e.Args {
				walk(a)
			}
		case *UnaryExpr:
			walk(e.X)
		case *BinaryExpr:
			walk(e.L)
			walk(e.R)
		case *CastExpr:
			walk(e.X)
		case *CaseExpr:
			walk(e.Operand)
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(e.Else)
		case *LikeExpr:
			walk(e.X)
			walk(e.Pattern)
		case *BetweenExpr:
			walk(e.X)
			walk(e.Lo)
			walk(e.Hi)
		case *IsNullExpr:
			walk(e.X)
		case *InExpr:
			walk(e.X)
			for _, x := range e.List {
				walk(x)
			}
		}
	}
	walk(e)
	return found
}

// aggRewriter rewrites expressions over the aggregation output: GROUP BY
// keys become inputRef{0..}, aggregate calls become inputRef{nGroup+i}.
type aggRewriter struct {
	groupKeys map[string]int // exprString -> group ordinal
	nGroup    int
	aggs      []*FuncExpr
	aggIdx    map[string]int
	inSch     schema
}

func (rw *aggRewriter) rewrite(e Expr) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	if idx, ok := rw.groupKeys[strings.ToLower(exprString(e))]; ok {
		return &inputRef{idx: idx}, nil
	}
	switch e := e.(type) {
	case *Literal, *Param, *inputRef, *outerRef:
		return e, nil
	case *ColumnRef:
		// A bare column not in GROUP BY: error if it belongs to this
		// query's input; otherwise leave it for outer resolution.
		if _, err := rw.inSch.resolve(e.Table, e.Name); err == nil {
			return nil, errorf("column %s must appear in GROUP BY or inside an aggregate", refName(e.Table, e.Name))
		}
		return e, nil
	case *FuncExpr:
		if aggregateFuncs[e.Name] {
			key := exprString(e)
			idx, ok := rw.aggIdx[key]
			if !ok {
				idx = len(rw.aggs)
				rw.aggs = append(rw.aggs, e)
				rw.aggIdx[key] = idx
			}
			return &inputRef{idx: rw.nGroup + idx}, nil
		}
		out := &FuncExpr{Name: e.Name, Star: e.Star, Distinct: e.Distinct}
		for _, a := range e.Args {
			na, err := rw.rewrite(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, na)
		}
		return out, nil
	case *UnaryExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: e.Op, X: x}, nil
	case *BinaryExpr:
		l, err := rw.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: e.Op, L: l, R: r}, nil
	case *CastExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &CastExpr{X: x, To: e.To}, nil
	case *CaseExpr:
		out := &CaseExpr{}
		var err error
		out.Operand, err = rw.rewrite(e.Operand)
		if err != nil {
			return nil, err
		}
		for _, w := range e.Whens {
			c, err := rw.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			r, err := rw.rewrite(w.Result)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: c, Result: r})
		}
		out.Else, err = rw.rewrite(e.Else)
		if err != nil {
			return nil, err
		}
		return out, nil
	case *LikeExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		p, err := rw.rewrite(e.Pattern)
		if err != nil {
			return nil, err
		}
		esc, err := rw.rewrite(e.Escape)
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: x, Pattern: p, Escape: esc, Not: e.Not}, nil
	case *BetweenExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		lo, err := rw.rewrite(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rw.rewrite(e.Hi)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: x, Lo: lo, Hi: hi, Not: e.Not}, nil
	case *IsNullExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{X: x, Not: e.Not}, nil
	case *InExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		out := &InExpr{X: x, Sub: e.Sub, Not: e.Not}
		for _, item := range e.List {
			ni, err := rw.rewrite(item)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, ni)
		}
		return out, nil
	case *ExistsExpr, *SubqueryExpr:
		return e, nil
	}
	return nil, errorf("cannot use %T in an aggregation context", e)
}

// planAggregation builds the aggregation operator and rewrites the
// select/having/order-by expressions over its output. Returns the new
// input node, its schema, and the rewritten projection and order
// expressions.
func planAggregation(st *dbState, stmt *SelectStmt, items []SelectItem, in planNode, inSch schema, outer schema) (planNode, schema, []Expr, []Expr, error) {
	rw := &aggRewriter{
		groupKeys: map[string]int{},
		nGroup:    len(stmt.GroupBy),
		aggIdx:    map[string]int{},
		inSch:     inSch,
	}
	for i, g := range stmt.GroupBy {
		rw.groupKeys[strings.ToLower(exprString(g))] = i
	}

	var projExprs []Expr
	for _, it := range items {
		ne, err := rw.rewrite(it.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		projExprs = append(projExprs, ne)
	}
	var having Expr
	if stmt.Having != nil {
		var err error
		having, err = rw.rewrite(stmt.Having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	var orderExprs []Expr
	for _, o := range stmt.OrderBy {
		ne, err := rw.rewrite(o.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		orderExprs = append(orderExprs, ne)
	}

	// Compile group keys and aggregate arguments against the input.
	inComp := &compiler{st: st, sch: inSch, outer: outer}
	var groupBy []compiledExpr
	for _, g := range stmt.GroupBy {
		ce, err := inComp.compile(g)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		groupBy = append(groupBy, ce)
	}
	var specs []aggSpec
	for _, a := range rw.aggs {
		spec := aggSpec{name: a.Name, distinct: a.Distinct}
		if a.Star {
			if a.Name != "COUNT" {
				return nil, nil, nil, nil, errorf("%s(*) is not valid", a.Name)
			}
			spec.exact = true
		} else {
			if len(a.Args) != 1 {
				return nil, nil, nil, nil, errorf("%s expects exactly one argument", a.Name)
			}
			ce, err := inComp.compile(a.Args[0])
			if err != nil {
				return nil, nil, nil, nil, err
			}
			spec.arg = ce
			if !a.Distinct {
				switch a.Name {
				case "COUNT", "MIN", "MAX":
					spec.exact = true
				case "SUM", "AVG":
					// Integer sums merge exactly; float addition does
					// not associate, so float sums stay serial to keep
					// parallel results byte-identical.
					if t, ok := staticExprType(a.Args[0], inSch); ok && (t == TypeInt || t == TypeBool) {
						spec.exact = true
					}
				}
			}
		}
		specs = append(specs, spec)
	}

	aggSch := make(schema, 0, len(groupBy)+len(specs))
	for i := range groupBy {
		aggSch = append(aggSch, colInfo{name: "__g" + itoa(i)})
	}
	for i := range specs {
		aggSch = append(aggSch, colInfo{name: "__a" + itoa(i)})
	}
	var node planNode = &aggNode{in: in, groupBy: groupBy, aggs: specs, schema: aggSch}

	if having != nil {
		hComp := &compiler{st: st, sch: aggSch, outer: outer}
		pred, err := hComp.compile(having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		node = &filterNode{in: node, pred: pred, sel: 0.5}
	}
	return node, aggSch, projExprs, orderExprs, nil
}
