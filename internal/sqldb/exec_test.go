package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// testDB builds a small two-table fixture.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE nums (n INTEGER PRIMARY KEY, sq INTEGER, label TEXT, grp TEXT)`)
	for i := 1; i <= 100; i++ {
		grp := "even"
		if i%2 == 1 {
			grp = "odd"
		}
		db.MustExec(`INSERT INTO nums VALUES (?, ?, ?, ?)`,
			NewInt(int64(i)), NewInt(int64(i*i)), NewText(fmt.Sprintf("n%03d", i)), NewText(grp))
	}
	db.MustExec(`CREATE TABLE tags (n INTEGER, tag TEXT)`)
	for i := 1; i <= 100; i += 5 {
		db.MustExec(`INSERT INTO tags VALUES (?, 'five')`, NewInt(int64(i)))
	}
	for i := 1; i <= 100; i += 7 {
		db.MustExec(`INSERT INTO tags VALUES (?, 'seven')`, NewInt(int64(i)))
	}
	return db
}

func scalarInt(t *testing.T, db *Database, sql string, args ...Value) int64 {
	t.Helper()
	v, err := db.QueryScalar(sql, args...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return v.Int()
}

func TestWhereAndRanges(t *testing.T) {
	db := testDB(t)
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n BETWEEN 10 AND 19`); got != 10 {
		t.Errorf("BETWEEN: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n >= 90`); got != 11 {
		t.Errorf(">=: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE label LIKE 'n00%'`); got != 9 {
		t.Errorf("LIKE prefix: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n IN (1, 50, 100, 200)`); got != 3 {
		t.Errorf("IN: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE NOT (grp = 'even')`); got != 50 {
		t.Errorf("NOT: %d", got)
	}
}

func TestProjectionAndExpressions(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`SELECT n, sq - n * n, label || '!' FROM nums WHERE n <= 3 ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	for i, r := range rows.Data {
		if r[0].Int() != int64(i+1) || r[1].Int() != 0 || !strings.HasSuffix(r[2].Text(), "!") {
			t.Errorf("row %d = %v", i, r)
		}
	}
	v, err := db.QueryScalar(`SELECT CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END`)
	if err != nil || v.Text() != "b" {
		t.Errorf("CASE = %v (%v)", v, err)
	}
}

func TestJoinsAgree(t *testing.T) {
	db := testDB(t)
	// The same join in comma, JOIN-ON, and EXISTS form must agree.
	a := scalarInt(t, db, `SELECT COUNT(*) FROM nums, tags WHERE nums.n = tags.n`)
	b := scalarInt(t, db, `SELECT COUNT(*) FROM nums JOIN tags ON nums.n = tags.n`)
	c := scalarInt(t, db, `SELECT COUNT(*) FROM tags, nums WHERE tags.n = nums.n`)
	if a != b || b != c {
		t.Fatalf("join counts disagree: %d %d %d", a, b, c)
	}
	if a != 20+15 {
		t.Fatalf("join count = %d, want 35", a)
	}
	// Join with extra filters.
	got := scalarInt(t, db, `SELECT COUNT(*) FROM nums, tags WHERE nums.n = tags.n AND tags.tag = 'five' AND nums.grp = 'odd'`)
	if got != 10 {
		t.Fatalf("filtered join = %d, want 10", got)
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT nums.n, tags.tag FROM nums LEFT JOIN tags ON nums.n = tags.n
		WHERE nums.n <= 10 ORDER BY nums.n, tags.tag`)
	if err != nil {
		t.Fatal(err)
	}
	// n=1 matches five and seven, n=6 matches five, n=8 matches seven;
	// 2,3,4,5,7,9,10 have... five: 1,6; seven: 1,8; so 1 has 2 rows,
	// 6 and 8 one row each, the other 7 values NULL rows.
	if rows.Len() != 2+1+1+7 {
		t.Fatalf("left join rows = %d: %v", rows.Len(), rows.Data)
	}
	nullCount := 0
	for _, r := range rows.Data {
		if r[1].IsNull() {
			nullCount++
		}
	}
	if nullCount != 7 {
		t.Fatalf("null-padded rows = %d, want 7", nullCount)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT grp, COUNT(*) AS c, SUM(n) AS s, AVG(n) AS a, MIN(n), MAX(n)
		FROM nums GROUP BY grp ORDER BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("groups = %d", rows.Len())
	}
	even := rows.Data[0]
	if even[0].Text() != "even" || even[1].Int() != 50 || even[2].Int() != 2550 ||
		even[3].Float() != 51 || even[4].Int() != 2 || even[5].Int() != 100 {
		t.Errorf("even group = %v", even)
	}
	// HAVING.
	n := scalarInt(t, db, `SELECT COUNT(*) FROM (SELECT grp FROM nums GROUP BY grp HAVING SUM(n) > 2520) g`)
	if n != 1 {
		t.Errorf("HAVING groups = %d", n)
	}
	// Global aggregate over empty input yields one row.
	rows, err = db.Query(`SELECT COUNT(*), SUM(n), MIN(n) FROM nums WHERE n > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0].Int() != 0 || !rows.Data[0][1].IsNull() || !rows.Data[0][2].IsNull() {
		t.Errorf("empty aggregate = %v", rows.Data)
	}
	// COUNT(DISTINCT).
	if got := scalarInt(t, db, `SELECT COUNT(DISTINCT tag) FROM tags`); got != 2 {
		t.Errorf("COUNT(DISTINCT) = %d", got)
	}
	// Aggregate in ORDER BY.
	rows, err = db.Query(`SELECT tag FROM tags GROUP BY tag ORDER BY COUNT(*) DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Text() != "five" {
		t.Errorf("order by count: %v", rows.Data)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := testDB(t)
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM (SELECT DISTINCT grp FROM nums) d`); got != 2 {
		t.Errorf("DISTINCT = %d", got)
	}
	rows, err := db.Query(`SELECT n FROM nums ORDER BY n DESC LIMIT 3 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 || rows.Data[0][0].Int() != 98 {
		t.Errorf("limit/offset = %v", rows.Data)
	}
}

func TestSubqueries(t *testing.T) {
	db := testDB(t)
	// Correlated EXISTS.
	got := scalarInt(t, db, `
		SELECT COUNT(*) FROM nums WHERE EXISTS (
			SELECT 1 FROM tags WHERE tags.n = nums.n AND tags.tag = 'seven')`)
	if got != 15 {
		t.Errorf("correlated EXISTS = %d, want 15", got)
	}
	// Correlated scalar subquery.
	rows, err := db.Query(`
		SELECT n, (SELECT COUNT(*) FROM tags WHERE tags.n = nums.n) AS ntags
		FROM nums WHERE n <= 2 ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1].Int() != 2 || rows.Data[1][1].Int() != 0 {
		t.Errorf("scalar sub = %v", rows.Data)
	}
	// IN subquery with NOT.
	// Distinct tagged n: 20 fives + 15 sevens - 3 in both (1, 36, 71).
	got = scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n NOT IN (SELECT n FROM tags)`)
	if got != 100-32 {
		t.Errorf("NOT IN = %d, want 68", got)
	}
}

func TestUnionAll(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT n FROM nums WHERE n <= 2
		UNION ALL SELECT n FROM nums WHERE n >= 99
		ORDER BY 1 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 4 || rows.Data[0][0].Int() != 100 || rows.Data[3][0].Int() != 1 {
		t.Errorf("union = %v", rows.Data)
	}
}

func TestUpdateDeleteSemantics(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec(`UPDATE nums SET sq = 0 WHERE grp = 'odd'`)
	if err != nil || n != 50 {
		t.Fatalf("update: %d %v", n, err)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE sq = 0`); got != 50 {
		t.Errorf("after update: %d", got)
	}
	n, err = db.Exec(`DELETE FROM nums WHERE n <= 10`)
	if err != nil || n != 10 {
		t.Fatalf("delete: %d %v", n, err)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums`); got != 90 {
		t.Errorf("after delete: %d", got)
	}
	// Index still consistent: lookups by PK succeed/fail correctly.
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n = 5`); got != 0 {
		t.Errorf("deleted row still visible")
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM nums WHERE n = 55`); got != 1 {
		t.Errorf("surviving row missing")
	}
}

func TestConstraints(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x')`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'y')`); err == nil {
		t.Error("duplicate PK accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (2, NULL)`); err == nil {
		t.Error("NULL into NOT NULL accepted")
	}
	db.MustExec(`CREATE UNIQUE INDEX t_b ON t (b)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (3, 'x')`); err == nil {
		t.Error("unique index violation accepted")
	}
	// Update into a conflict must fail too.
	db.MustExec(`INSERT INTO t VALUES (4, 'z')`)
	if _, err := db.Exec(`UPDATE t SET b = 'x' WHERE a = 4`); err == nil {
		t.Error("update into unique violation accepted")
	}
}

func TestNullThreeValuedLogic(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (1, NULL), (2, 5), (NULL, NULL)`)
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE b = 5`); got != 1 {
		t.Errorf("= with NULLs: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE b <> 5`); got != 0 {
		t.Errorf("<> must exclude NULLs: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE b IS NULL`); got != 2 {
		t.Errorf("IS NULL: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(a) FROM t`); got != 2 {
		t.Errorf("COUNT(col) skips NULLs: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE a = 1 OR b = 5`); got != 2 {
		t.Errorf("OR with unknown: %d", got)
	}
	// NULL = NULL is unknown, never true.
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE a = a`); got != 2 {
		t.Errorf("a = a with NULL: %d", got)
	}
	if got := scalarInt(t, db, `SELECT COUNT(*) FROM t WHERE COALESCE(b, 0) = 0`); got != 2 {
		t.Errorf("COALESCE: %d", got)
	}
}

func TestOrderByVariants(t *testing.T) {
	db := testDB(t)
	// Output alias.
	rows, err := db.Query(`SELECT n * -1 AS neg FROM nums WHERE n <= 3 ORDER BY neg`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != -3 {
		t.Errorf("order by alias: %v", rows.Data)
	}
	// Hidden key not in select list.
	rows, err = db.Query(`SELECT label FROM nums WHERE n <= 3 ORDER BY sq DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Text() != "n003" {
		t.Errorf("order by hidden: %v", rows.Data)
	}
	if len(rows.Columns) != 1 {
		t.Errorf("hidden key leaked: %v", rows.Columns)
	}
	// NULLs sort first ascending.
	db.MustExec(`CREATE TABLE o (v INTEGER)`)
	db.MustExec(`INSERT INTO o VALUES (2), (NULL), (1)`)
	rows, err = db.Query(`SELECT v FROM o ORDER BY v`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Data[0][0].IsNull() || rows.Data[2][0].Int() != 2 {
		t.Errorf("null ordering: %v", rows.Data)
	}
}

func TestIndexVsScanConsistency(t *testing.T) {
	// The same queries with and without secondary indexes must agree.
	build := func(withIdx bool) *Database {
		db := New()
		db.MustExec(`CREATE TABLE t (a INTEGER, b TEXT, c INTEGER)`)
		if withIdx {
			db.MustExec(`CREATE INDEX t_a ON t (a)`)
			db.MustExec(`CREATE INDEX t_bc ON t (b, c)`)
		}
		for i := 0; i < 500; i++ {
			db.MustExec(`INSERT INTO t VALUES (?, ?, ?)`,
				NewInt(int64(i%37)), NewText(fmt.Sprintf("s%d", i%11)), NewInt(int64(i)))
		}
		return db
	}
	plain, indexed := build(false), build(true)
	queries := []string{
		`SELECT COUNT(*) FROM t WHERE a = 5`,
		`SELECT COUNT(*) FROM t WHERE a > 30`,
		`SELECT COUNT(*) FROM t WHERE b = 's3' AND c > 100`,
		`SELECT COUNT(*) FROM t WHERE b = 's3' AND c BETWEEN 100 AND 300`,
		`SELECT COUNT(*) FROM t WHERE b LIKE 's1%'`,
		`SELECT SUM(c) FROM t WHERE a = 7 AND b = 's7'`,
	}
	for _, q := range queries {
		a := scalarInt(t, plain, q)
		b := scalarInt(t, indexed, q)
		if a != b {
			t.Errorf("%s: plain=%d indexed=%d", q, a, b)
		}
	}
	// Index creation on existing data must also agree.
	plain.MustExec(`CREATE INDEX late_a ON t (a)`)
	for _, q := range queries {
		if a, b := scalarInt(t, plain, q), scalarInt(t, indexed, q); a != b {
			t.Errorf("after late index, %s: %d vs %d", q, a, b)
		}
	}
}

func TestDropTableAndIndex(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE INDEX nums_grp ON nums (grp)`)
	db.MustExec(`DROP INDEX nums_grp`)
	if _, err := db.Exec(`DROP INDEX nums_grp`); err == nil {
		t.Error("double drop index accepted")
	}
	db.MustExec(`DROP TABLE tags`)
	if _, err := db.Query(`SELECT * FROM tags`); err == nil {
		t.Error("query after drop table succeeded")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	cases := []struct {
		expr string
		want Value
	}{
		{`LENGTH('hello')`, NewInt(5)},
		{`UPPER('aBc')`, NewText("ABC")},
		{`LOWER('AbC')`, NewText("abc")},
		{`SUBSTR('hello', 2, 3)`, NewText("ell")},
		{`SUBSTR('hello', 3)`, NewText("llo")},
		{`REPLACE('aXbXc', 'X', '-')`, NewText("a-b-c")},
		{`INSTR('hello', 'll')`, NewInt(3)},
		{`INSTR('hello', 'zz')`, NewInt(0)},
		{`TRIM('  x  ')`, NewText("x")},
		{`ABS(-4)`, NewInt(4)},
		{`COALESCE(NULL, NULL, 3)`, NewInt(3)},
		{`IFNULL(NULL, 'd')`, NewText("d")},
		{`NULLIF(2, 2)`, Null},
		{`NULLIF(2, 3)`, NewInt(2)},
		{`ROUND(2.567, 1)`, NewFloat(2.6)},
	}
	for _, c := range cases {
		v, err := db.QueryScalar(`SELECT ` + c.expr)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if Compare(v, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.expr, v, c.want)
		}
	}
}

func TestExplainRendersPlans(t *testing.T) {
	db := testDB(t)
	plan, err := db.Explain(`SELECT grp, COUNT(*) FROM nums, tags WHERE nums.n = tags.n GROUP BY grp ORDER BY grp LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Aggregate", "Limit", "Sort"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %s:\n%s", frag, plan)
		}
	}
	if !strings.Contains(plan, "Join") && !strings.Contains(plan, "Scan") {
		t.Errorf("plan missing join/scan:\n%s", plan)
	}
}

func TestPreparedReuse(t *testing.T) {
	db := testDB(t)
	prep, err := db.Prepare(`SELECT COUNT(*) FROM nums WHERE grp = ? AND n > ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []struct {
		grp  string
		min  int64
		want int64
	}{{"even", 0, 50}, {"odd", 50, 25}, {"even", 98, 1}} {
		rows, err := prep.Query(NewText(c.grp), NewInt(c.min))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Data[0][0].Int() != c.want {
			t.Errorf("case %d: %d, want %d", i, rows.Data[0][0].Int(), c.want)
		}
	}
}
