package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// Write-ahead log. Every committed mutation — DML effect batches and
// DDL — is appended as one length-prefixed, CRC32-checksummed frame
// and fsynced before the commit is acknowledged. Recovery replays the
// log over the last good snapshot and truncates at the first torn or
// corrupt frame, so a crash at any byte boundary loses at most the
// unacknowledged tail.
//
// Records are logical *effects*, not statements: inserts log the rows
// that landed, deletes log the deleted row images, updates log
// (old, new) image pairs. Replay therefore never re-runs the planner
// and is deterministic regardless of how the rows were produced. Each
// record carries a monotonic sequence number; snapshots record the
// last sequence they contain, and replay skips records at or below it,
// which is what makes checkpoint rotation crash-safe (a crash between
// "snapshot renamed" and "log truncated" merely replays no-ops).
//
// A group frame packs several records into one frame with a single
// CRC: either the whole group survives recovery or none of it does.
// The durability layer uses groups to make multi-statement operations
// (document load, subtree insertion) crash-atomic.

// walOp enumerates the logical record kinds.
type walOp uint8

const (
	opCreateTable walOp = iota + 1
	opCreateIndex
	opDropTable
	opDropIndex
	opInsert
	opDelete
	opUpdate
	opGroup
)

// walRecord is one logical WAL entry.
type walRecord struct {
	Op  walOp
	Seq uint64
	// Table targets opInsert/opDelete/opUpdate/opDropTable; Name is the
	// index name for opDropIndex.
	Table string
	Name  string
	Def   *TableDef
	Index *IndexDef
	// Rows holds inserted rows (opInsert), deleted row images
	// (opDelete) or new row images (opUpdate).
	Rows [][]Value
	// OldRows holds the pre-update images for opUpdate, pairwise with
	// Rows.
	OldRows [][]Value
	// Group holds the member records of an opGroup frame.
	Group []*walRecord
}

// maxSeq returns the highest sequence number in the record (descending
// into groups).
func (r *walRecord) maxSeq() uint64 {
	s := r.Seq
	for _, g := range r.Group {
		if gs := g.maxSeq(); gs > s {
			s = gs
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Binary codec
//
// The encoding is deliberately compact and self-delimiting: varints
// for lengths and integers, a one-byte tag per value. gob would work
// but re-transmits type descriptors per frame; a byte-offset crash
// sweep over the log is ~5x cheaper with this codec.

type walEncoder struct{ b []byte }

func (e *walEncoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *walEncoder) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *walEncoder) byte(v byte)      { e.b = append(e.b, v) }
func (e *walEncoder) bytes(p []byte)   { e.uvarint(uint64(len(p))); e.b = append(e.b, p...) }
func (e *walEncoder) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }

func (e *walEncoder) value(v Value) {
	e.byte(byte(v.T))
	switch v.T {
	case TypeNull:
	case TypeInt, TypeBool:
		e.varint(v.I)
	case TypeFloat:
		e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v.F))
	case TypeText:
		e.str(v.S)
	case TypeBlob:
		e.bytes(v.B)
	}
}

func (e *walEncoder) rows(rows [][]Value) {
	e.uvarint(uint64(len(rows)))
	for _, row := range rows {
		e.uvarint(uint64(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
}

func (e *walEncoder) tableDef(d *TableDef) {
	e.str(d.Name)
	e.uvarint(uint64(len(d.Columns)))
	for _, c := range d.Columns {
		e.str(c.Name)
		e.byte(byte(c.Type))
		if c.NotNull {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}
	e.uvarint(uint64(len(d.PrimaryKey)))
	for _, pk := range d.PrimaryKey {
		e.uvarint(uint64(pk))
	}
}

func (e *walEncoder) indexDef(d *IndexDef) {
	e.str(d.Name)
	e.str(d.Table)
	if d.Unique {
		e.byte(1)
	} else {
		e.byte(0)
	}
	e.uvarint(uint64(len(d.Columns)))
	for _, c := range d.Columns {
		e.uvarint(uint64(c))
	}
}

// encodeRecordPayload appends the record's payload (no frame) to dst.
func encodeRecordPayload(dst []byte, rec *walRecord) []byte {
	e := &walEncoder{b: dst}
	e.byte(byte(rec.Op))
	e.uvarint(rec.Seq)
	switch rec.Op {
	case opCreateTable:
		e.tableDef(rec.Def)
	case opCreateIndex:
		e.indexDef(rec.Index)
	case opDropTable:
		e.str(rec.Table)
	case opDropIndex:
		e.str(rec.Name)
	case opInsert, opDelete:
		e.str(rec.Table)
		e.rows(rec.Rows)
	case opUpdate:
		e.str(rec.Table)
		e.rows(rec.OldRows)
		e.rows(rec.Rows)
	case opGroup:
		e.uvarint(uint64(len(rec.Group)))
		for _, g := range rec.Group {
			sub := encodeRecordPayload(nil, g)
			e.bytes(sub)
		}
	}
	return e.b
}

type walDecoder struct {
	b   []byte
	off int
}

func (d *walDecoder) fail() error { return errorf("wal: corrupt record at offset %d", d.off) }

func (d *walDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail()
	}
	d.off += n
	return v, nil
}

func (d *walDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail()
	}
	d.off += n
	return v, nil
}

func (d *walDecoder) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, d.fail()
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *walDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.off) {
		return nil, d.fail()
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}

func (d *walDecoder) str() (string, error) {
	p, err := d.bytes()
	return string(p), err
}

func (d *walDecoder) value() (Value, error) {
	tag, err := d.byte()
	if err != nil {
		return Null, err
	}
	switch Type(tag) {
	case TypeNull:
		return Null, nil
	case TypeInt:
		i, err := d.varint()
		return Value{T: TypeInt, I: i}, err
	case TypeBool:
		i, err := d.varint()
		return Value{T: TypeBool, I: i}, err
	case TypeFloat:
		if len(d.b)-d.off < 8 {
			return Null, d.fail()
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
		return NewFloat(f), nil
	case TypeText:
		s, err := d.str()
		return NewText(s), err
	case TypeBlob:
		p, err := d.bytes()
		return NewBlob(append([]byte(nil), p...)), err
	default:
		return Null, d.fail()
	}
}

func (d *walDecoder) rows() ([][]Value, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every row costs at least one byte, so the count cannot exceed the
	// remaining buffer; this bounds allocation on corrupt input.
	if n > uint64(len(d.b)-d.off) {
		return nil, d.fail()
	}
	rows := make([][]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		nc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nc > uint64(len(d.b)-d.off) {
			return nil, d.fail()
		}
		row := make([]Value, 0, nc)
		for j := uint64(0); j < nc; j++ {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (d *walDecoder) tableDef() (*TableDef, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	nc, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nc > uint64(len(d.b)-d.off) {
		return nil, d.fail()
	}
	def := &TableDef{Name: name}
	for i := uint64(0); i < nc; i++ {
		cn, err := d.str()
		if err != nil {
			return nil, err
		}
		ct, err := d.byte()
		if err != nil {
			return nil, err
		}
		nn, err := d.byte()
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, Column{Name: cn, Type: Type(ct), NotNull: nn != 0})
	}
	np, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if np > uint64(len(d.b)-d.off)+1 {
		return nil, d.fail()
	}
	for i := uint64(0); i < np; i++ {
		pk, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if pk >= uint64(len(def.Columns)) {
			return nil, d.fail()
		}
		def.PrimaryKey = append(def.PrimaryKey, int(pk))
	}
	return def, nil
}

func (d *walDecoder) indexDef() (*IndexDef, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	tbl, err := d.str()
	if err != nil {
		return nil, err
	}
	uq, err := d.byte()
	if err != nil {
		return nil, err
	}
	nc, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nc > uint64(len(d.b)-d.off)+1 {
		return nil, d.fail()
	}
	def := &IndexDef{Name: name, Table: tbl, Unique: uq != 0}
	for i := uint64(0); i < nc; i++ {
		c, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, int(c))
	}
	return def, nil
}

// decodeRecordPayload parses one record payload. depth guards group
// nesting on corrupt input.
func decodeRecordPayload(p []byte, depth int) (*walRecord, error) {
	d := &walDecoder{b: p}
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	seq, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	rec := &walRecord{Op: walOp(op), Seq: seq}
	switch rec.Op {
	case opCreateTable:
		rec.Def, err = d.tableDef()
	case opCreateIndex:
		rec.Index, err = d.indexDef()
	case opDropTable:
		rec.Table, err = d.str()
	case opDropIndex:
		rec.Name, err = d.str()
	case opInsert, opDelete:
		if rec.Table, err = d.str(); err == nil {
			rec.Rows, err = d.rows()
		}
	case opUpdate:
		if rec.Table, err = d.str(); err == nil {
			if rec.OldRows, err = d.rows(); err == nil {
				rec.Rows, err = d.rows()
			}
		}
	case opGroup:
		if depth >= 2 {
			return nil, errorf("wal: group nesting too deep")
		}
		var n uint64
		if n, err = d.uvarint(); err != nil {
			return nil, err
		}
		if n > uint64(len(d.b)-d.off)+1 {
			return nil, d.fail()
		}
		for i := uint64(0); i < n; i++ {
			sub, serr := d.bytes()
			if serr != nil {
				return nil, serr
			}
			g, serr := decodeRecordPayload(sub, depth+1)
			if serr != nil {
				return nil, serr
			}
			rec.Group = append(rec.Group, g)
		}
	default:
		return nil, errorf("wal: unknown record op %d", op)
	}
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, errorf("wal: %d trailing bytes in record", len(d.b)-d.off)
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// Framing

// walFrameOverhead is the per-frame header: u32 payload length, u32
// CRC32 (IEEE) of the payload.
const walFrameOverhead = 8

// maxWALFrame bounds a single frame; anything larger is treated as
// corruption rather than a multi-gigabyte allocation.
const maxWALFrame = 1 << 30

// appendFrame frames a payload: length, CRC, bytes.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// walFrame is one validated frame: its raw bytes (header included, so
// rotation can copy it verbatim) and its decoded record.
type walFrame struct {
	raw []byte
	rec *walRecord
}

// scanWALFrames parses the valid prefix of a WAL image into frames.
// The first torn frame (short header or payload), CRC mismatch,
// zero/oversized length or undecodable payload ends the scan.
// Corruption never yields an error — the log is simply truncated at
// the last good frame, which is exactly the recovery semantics a torn
// tail needs.
func scanWALFrames(data []byte) (frames []walFrame, goodLen int64) {
	off := 0
	for {
		if len(data)-off < walFrameOverhead {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALFrame || n > len(data)-off-walFrameOverhead {
			break
		}
		payload := data[off+walFrameOverhead : off+walFrameOverhead+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := decodeRecordPayload(payload, 0)
		if err != nil {
			break
		}
		frames = append(frames, walFrame{raw: data[off : off+walFrameOverhead+n], rec: rec})
		off += walFrameOverhead + n
	}
	return frames, int64(off)
}

// scanWAL parses the valid prefix of a WAL image and returns the
// decoded records with group frames flattened, ordered by sequence
// number. Group frames land in the file when the group closes, which
// may be after later independent commits; sequence numbers restore
// commit order for replay.
func scanWAL(data []byte) (records []*walRecord, goodLen int64) {
	frames, goodLen := scanWALFrames(data)
	var flat []*walRecord
	for _, f := range frames {
		if f.rec.Op == opGroup {
			flat = append(flat, f.rec.Group...)
		} else {
			flat = append(flat, f.rec)
		}
	}
	sort.SliceStable(flat, func(i, j int) bool { return flat[i].Seq < flat[j].Seq })
	return flat, goodLen
}

// ---------------------------------------------------------------------------
// Replay

// applyRecord replays one logical record against the database. The
// commit logger must not be attached while replaying (records would be
// re-logged); OpenDurable attaches it only after recovery completes.
func (db *Database) applyRecord(rec *walRecord) error {
	switch rec.Op {
	case opCreateTable:
		return db.CreateTableDef(*rec.Def)
	case opCreateIndex:
		return db.createIndexDef(*rec.Index)
	case opDropTable:
		return db.dropTable(rec.Table)
	case opDropIndex:
		return db.dropIndex(rec.Name)
	case opInsert:
		return db.applyInsert(rec.Table, rec.Rows)
	case opDelete:
		return db.applyDelete(rec.Table, rec.Rows)
	case opUpdate:
		return db.applyUpdate(rec.Table, rec.OldRows, rec.Rows)
	case opGroup:
		for _, g := range rec.Group {
			if err := db.applyRecord(g); err != nil {
				return err
			}
		}
		return nil
	}
	return errorf("wal: unknown record op %d", rec.Op)
}

// applyInsert replays an insert-effect batch: rows are already coerced
// and were valid when logged.
func (db *Database) applyInsert(tableName string, rows [][]Value) error {
	tx := db.beginWrite()
	tbl := tx.wtable(tableName)
	if tbl == nil {
		tx.abort()
		return errorf("wal: insert into missing table %s", tableName)
	}
	for _, row := range rows {
		if len(row) != len(tbl.def.Columns) {
			tx.abort()
			return errorf("wal: insert arity mismatch for %s", tableName)
		}
		if _, err := tbl.insert(row); err != nil {
			tx.abort()
			return fmt.Errorf("sqldb: wal replay: %w", err)
		}
	}
	return tx.commit(nil)
}

// rowImageKey renders a row as a comparable byte string for image
// matching during replay.
func rowImageKey(row []Value) string {
	e := &walEncoder{}
	e.uvarint(uint64(len(row)))
	for _, v := range row {
		e.value(v)
	}
	return string(e.b)
}

// imageIndex maps row images to the live rowids currently holding
// them, so replaying a large delete/update batch is linear, not
// quadratic.
func imageIndex(tbl *table) map[string][]int64 {
	m := map[string][]int64{}
	var ref pageRef
	defer ref.release()
	for rid := int64(0); rid < tbl.slotCount(); rid++ {
		row := tbl.rowRef(rid, &ref)
		if row == nil {
			continue
		}
		k := rowImageKey(row)
		m[k] = append(m[k], rid)
	}
	return m
}

func popImage(m map[string][]int64, key string) (int64, bool) {
	rids := m[key]
	if len(rids) == 0 {
		return 0, false
	}
	rid := rids[len(rids)-1]
	if len(rids) == 1 {
		delete(m, key)
	} else {
		m[key] = rids[:len(rids)-1]
	}
	return rid, true
}

// applyDelete replays a delete-effect batch by matching row images.
func (db *Database) applyDelete(tableName string, images [][]Value) error {
	tx := db.beginWrite()
	tbl := tx.wtable(tableName)
	if tbl == nil {
		tx.abort()
		return errorf("wal: delete from missing table %s", tableName)
	}
	idx := imageIndex(tbl)
	for _, img := range images {
		rid, ok := popImage(idx, rowImageKey(img))
		if !ok {
			tx.abort()
			return errorf("wal: delete image not found in %s", tableName)
		}
		tbl.delete(rid)
	}
	return tx.commit(nil)
}

// applyUpdate replays an update-effect batch of (old, new) image pairs.
func (db *Database) applyUpdate(tableName string, oldImages, newImages [][]Value) error {
	tx := db.beginWrite()
	tbl := tx.wtable(tableName)
	if tbl == nil {
		tx.abort()
		return errorf("wal: update of missing table %s", tableName)
	}
	if len(oldImages) != len(newImages) {
		tx.abort()
		return errorf("wal: update image pair mismatch for %s", tableName)
	}
	idx := imageIndex(tbl)
	for i, img := range oldImages {
		rid, ok := popImage(idx, rowImageKey(img))
		if !ok {
			tx.abort()
			return errorf("wal: update image not found in %s", tableName)
		}
		newRow := newImages[i]
		if len(newRow) != len(tbl.def.Columns) {
			tx.abort()
			return errorf("wal: update arity mismatch for %s", tableName)
		}
		if err := tbl.update(rid, newRow); err != nil {
			tx.abort()
			return fmt.Errorf("sqldb: wal replay: %w", err)
		}
		k := rowImageKey(newRow)
		idx[k] = append(idx[k], rid)
	}
	return tx.commit(nil)
}
