package sqldb

// Batch-at-a-time execution: the data layout and the row<->batch
// adapters. The vectorized operators themselves live in vector_exec.go.
//
// A batch is row-major and zero-copy: rows holds up to batchSize row
// slices that point directly at heap storage (or at rows produced by an
// upstream operator), and sel optionally narrows the batch to a subset
// without moving anything. The heap already stores tuples as []Value,
// so a columnar transpose would copy every Value twice (in and out) for
// no benefit on the wide universal-scheme tables; keeping rows intact
// and addressing columns as rows[i][c] preserves the row engine's
// zero-copy property while amortizing the per-row iterator and
// instrumentation costs across batchSize rows.

// batchSize is the target number of rows per batch. It matches
// morselSize so a gather worker's morsel is exactly one scan batch.
const batchSize = 1024

// batch is one unit of vectorized data flow.
type batch struct {
	// rows holds the batch's tuples. Row slices are shared with the
	// producer (heap pages, join outputs) and must not be mutated.
	rows [][]Value
	// sel, when non-nil, is the selection vector: ascending indices into
	// rows naming the surviving tuples. nil means every row survives.
	sel []int
	// in counts the candidate rows the producing operator examined to
	// emit this batch (the selectivity denominator): live heap rows for
	// a scan, input rows for a filter, probe rows for a join.
	in int64
}

// n returns the number of selected rows.
func (b *batch) n() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return len(b.rows)
}

// row returns the k-th selected row.
func (b *batch) row(k int) []Value {
	if b.sel != nil {
		return b.rows[b.sel[k]]
	}
	return b.rows[k]
}

// vecIter is the batch-at-a-time iterator. nextBatch returns (nil, nil)
// at end of stream; a non-nil batch may be empty (all rows filtered).
type vecIter interface {
	nextBatch() (*batch, error)
	close()
}

// vecNode is implemented by operators with a native batch execution
// path. Operators without one still work inside a vectorized plan: the
// openVec chokepoint wraps their row iterator in a rowSourceVec.
type vecNode interface {
	planNode
	openVec(ctx *evalCtx) (vecIter, error)
}

// vecCapable reports whether n has a native batch path.
func vecCapable(n planNode) bool {
	_, ok := n.(vecNode)
	return ok
}

// rowSourceVec adapts a row iterator into a batch source (the fallback
// for operators without a native batch path).
type rowSourceVec struct {
	in   rowIter
	done bool
}

func (it *rowSourceVec) nextBatch() (*batch, error) {
	if it.done {
		return nil, nil
	}
	row, err := it.in.next()
	if err != nil {
		return nil, err
	}
	if row == nil {
		it.done = true
		return nil, nil
	}
	b := &batch{rows: make([][]Value, 0, batchSize)}
	for {
		b.rows = append(b.rows, row)
		if len(b.rows) == batchSize {
			break
		}
		row, err = it.in.next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			it.done = true
			break
		}
	}
	b.in = int64(len(b.rows))
	return b, nil
}

func (it *rowSourceVec) close() { it.in.close() }

// vecRowIter adapts a batch pipeline into a row iterator, so row-only
// operators (sort, distinct, nested-loop drivers, union) can consume a
// vectorized child. Counting already happened at batch level inside the
// pipeline, so the adapter is never wrapped in a statIter.
type vecRowIter struct {
	in vecIter
	b  *batch
	k  int
}

func (it *vecRowIter) next() ([]Value, error) {
	for {
		if it.b != nil && it.k < it.b.n() {
			r := it.b.row(it.k)
			it.k++
			return r, nil
		}
		b, err := it.in.nextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		it.b, it.k = b, 0
	}
}

func (it *vecRowIter) close() { it.in.close() }
