package sqldb

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Selection-vector edge cases: batch boundaries, empty batches, NULL
// semantics and cancellation at batch granularity. Each case runs
// through both engines and compares against the row engine's answer, so
// the oracle contract is exercised exactly where batch bookkeeping is
// most likely to go wrong.

// edgePair builds a row/vec twin with one table t(id, n, tag) of the
// given size: n cycles 0..99, tag is NULL on every third row.
func edgePair(t *testing.T, rows int) [2]*Database {
	t.Helper()
	var pair [2]*Database
	for side := 0; side < 2; side++ {
		db := New()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, tag TEXT)`)
		if rows > 0 {
			batch := make([][]Value, 0, rows)
			for k := 0; k < rows; k++ {
				tag := NewText(fmt.Sprintf("v%d", k%7))
				if k%3 == 0 {
					tag = Null
				}
				batch = append(batch, []Value{NewInt(int64(k)), NewInt(int64(k % 100)), tag})
			}
			if _, err := db.BulkInsert("t", batch); err != nil {
				t.Fatal(err)
			}
		}
		pair[side] = db
	}
	pair[0].SetVectorized(false) // explicit: XRDB_VECTORIZED=1 flips the default
	pair[1].SetVectorized(true)
	return pair
}

// edgeDiff asserts both engines agree on one query.
func edgeDiff(t *testing.T, pair [2]*Database, sql string, args ...Value) *Rows {
	t.Helper()
	want, err := pair[0].Query(sql, args...)
	if err != nil {
		t.Fatalf("row: %v", err)
	}
	got, err := pair[1].Query(sql, args...)
	if err != nil {
		t.Fatalf("vec: %v", err)
	}
	if !reflect.DeepEqual(want.Data, got.Data) {
		t.Fatalf("engines diverged on %q:\nrow: %.8v\nvec: %.8v", sql, want.Data, got.Data)
	}
	return want
}

// TestVectorizedEmptyTable: a scan with no rows must terminate cleanly
// (nil batch, not an empty one looping forever) in every consumer.
func TestVectorizedEmptyTable(t *testing.T) {
	pair := edgePair(t, 0)
	for _, sql := range []string{
		`SELECT id FROM t`,
		`SELECT id FROM t WHERE n > 5`,
		`SELECT COUNT(*), SUM(n) FROM t`,
		`SELECT tag, COUNT(*) FROM t GROUP BY tag`,
		`SELECT id FROM t LIMIT 10`,
		`SELECT a.id FROM t a, t b WHERE a.n = b.n`,
	} {
		edgeDiff(t, pair, sql)
	}
}

// TestVectorizedAllRowsFiltered: predicates that reject every row force
// the pipeline to flow empty-but-non-nil batches end to end.
func TestVectorizedAllRowsFiltered(t *testing.T) {
	pair := edgePair(t, 3000)
	for _, sql := range []string{
		`SELECT id FROM t WHERE n < 0`,
		`SELECT id FROM t WHERE tag = 'nope'`,
		`SELECT COUNT(*) FROM t WHERE id > 100000`,
		`SELECT DISTINCT n FROM t WHERE n > 100`,
		`SELECT a.id FROM t a, t b WHERE a.n = b.n AND a.id < 0`,
	} {
		rows := edgeDiff(t, pair, sql)
		// The analyzed vec run must still have produced (empty) batches:
		// empty is a legal batch payload, only nil ends the stream.
		ap, err := pair[1].ExplainAnalyzePlan(sql)
		if err != nil {
			t.Fatal(err)
		}
		batches := int64(0)
		for _, op := range ap.Ops {
			batches += op.Batches
		}
		if batches == 0 {
			t.Errorf("%q: no batches flowed (%d result rows)", sql, rows.Len())
		}
	}
}

// TestVectorizedLimitOffsetBoundaries sweeps LIMIT/OFFSET combinations
// that straddle the 1024-row batch boundary: offsets that consume
// exactly one batch, one batch minus/plus a row, two batches, and
// limits that end mid-batch or exactly on a boundary.
func TestVectorizedLimitOffsetBoundaries(t *testing.T) {
	pair := edgePair(t, 2500)
	offsets := []int{0, 1, 1023, 1024, 1025, 2047, 2048, 2400, 2500, 3000}
	limits := []int{0, 1, 512, 1023, 1024, 1025, 2048, 5000}
	for _, off := range offsets {
		for _, lim := range limits {
			sql := fmt.Sprintf(`SELECT id FROM t LIMIT %d OFFSET %d`, lim, off)
			got := edgeDiff(t, pair, sql)
			want := 2500 - off
			if want < 0 {
				want = 0
			}
			if want > lim {
				want = lim
			}
			if got.Len() != want {
				t.Errorf("LIMIT %d OFFSET %d: %d rows, want %d", lim, off, got.Len(), want)
			}
		}
	}
	// The same boundaries under a filter, so the selection vector (not
	// the raw row count) is what the limit trims.
	for _, off := range []int{0, 511, 512, 513} {
		edgeDiff(t, pair, fmt.Sprintf(`SELECT id FROM t WHERE id %% 2 = 0 LIMIT 600 OFFSET %d`, off))
	}
}

// TestVectorizedExactBatchSize: tables of exactly one and exactly two
// batches probe the end-of-stream transition at the boundary.
func TestVectorizedExactBatchSize(t *testing.T) {
	for _, rows := range []int{batchSize - 1, batchSize, batchSize + 1, 2 * batchSize} {
		pair := edgePair(t, rows)
		got := edgeDiff(t, pair, `SELECT id FROM t`)
		if got.Len() != rows {
			t.Fatalf("rows=%d: scan returned %d", rows, got.Len())
		}
		edgeDiff(t, pair, `SELECT COUNT(*) FROM t`)
		edgeDiff(t, pair, fmt.Sprintf(`SELECT id FROM t LIMIT %d`, rows))
	}
}

// TestVectorizedNullComparisons: NULL comparison results must drop rows
// in vectorized predicates exactly as in the row engine (SQL
// three-valued logic: NULL is not TRUE).
func TestVectorizedNullComparisons(t *testing.T) {
	pair := edgePair(t, 3000)
	for _, sql := range []string{
		`SELECT id FROM t WHERE tag > 'v3'`,
		`SELECT id FROM t WHERE tag = 'v1' OR n < 5`,
		`SELECT id FROM t WHERE tag IS NULL`,
		`SELECT id FROM t WHERE tag IS NOT NULL AND n > 90`,
		`SELECT COUNT(tag), COUNT(*) FROM t`,
		`SELECT tag, COUNT(*) FROM t GROUP BY tag`,
		`SELECT a.id, b.id FROM t a, t b WHERE a.tag = b.tag AND a.id < 9 AND b.id < 9`,
	} {
		edgeDiff(t, pair, sql)
	}
}

// TestVectorizedContextCancel: a pre-canceled context must abort the
// batch pipeline through the statVecIter poll, and a mid-flight cancel
// must be noticed at batch granularity.
func TestVectorizedContextCancel(t *testing.T) {
	pair := edgePair(t, 5000)
	vec := pair[1]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vec.QueryContext(ctx, `SELECT COUNT(*) FROM t WHERE n > 1`); err == nil {
		t.Fatal("pre-canceled context: query succeeded")
	} else if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("pre-canceled context: unexpected error %v", err)
	}
	// The engine stays usable afterwards.
	if _, err := vec.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("engine wedged after canceled query: %v", err)
	}
}
