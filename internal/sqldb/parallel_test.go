package sqldb

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Differential battery for morsel-driven parallel execution: every
// query must return byte-identical results (values AND order) under
// serial and parallel execution, because the gather operator merges
// morsels strictly in rowid order. The battery covers scans, joins on
// all three join operators, exact and non-exact aggregations, DISTINCT,
// ORDER BY/LIMIT, UNION ALL and subqueries.

// parallelFixture loads identical data into n databases so plans can
// differ only by the parallel decoration.
func parallelFixture(t *testing.T, rows int, dops ...int) []*Database {
	t.Helper()
	dbs := make([]*Database, len(dops))
	for i, dop := range dops {
		db := New()
		db.SetParallelism(dop)
		db.MustExec(`CREATE TABLE big (id INTEGER PRIMARY KEY, grp TEXT, n INTEGER, f FLOAT, tag TEXT)`)
		db.MustExec(`CREATE TABLE small (id INTEGER PRIMARY KEY, label TEXT)`)
		db.MustExec(`CREATE INDEX big_n ON big (n)`)
		batch := make([][]Value, 0, rows)
		for k := 0; k < rows; k++ {
			tag := Null
			if k%3 == 0 {
				tag = NewText(fmt.Sprintf("t%d", k%11))
			}
			batch = append(batch, []Value{
				NewInt(int64(k)),
				NewText(fmt.Sprintf("g%d", k%23)),
				NewInt(int64(k % 101)),
				NewFloat(float64(k) / 7),
				tag,
			})
		}
		if _, err := db.BulkInsert("big", batch); err != nil {
			t.Fatal(err)
		}
		var sm [][]Value
		for k := 0; k < 101; k++ {
			sm = append(sm, []Value{NewInt(int64(k)), NewText(fmt.Sprintf("label-%d", k))})
		}
		if _, err := db.BulkInsert("small", sm); err != nil {
			t.Fatal(err)
		}
		// Deletes punch tombstones into the heap so morsel ranges cross
		// dead rows.
		db.MustExec(`DELETE FROM big WHERE id % 37 = 0`)
		dbs[i] = db
	}
	return dbs
}

var parallelBattery = []struct {
	name string
	sql  string
	args []Value
}{
	{"scan-filter", `SELECT id, grp FROM big WHERE n % 7 = 0`, nil},
	{"scan-expr", `SELECT id * 2 + n, f / 2 FROM big WHERE id > 100 AND id < 9000`, nil},
	{"scan-param", `SELECT id FROM big WHERE n < ?`, []Value{NewInt(13)}},
	{"null-filter", `SELECT id, tag FROM big WHERE tag IS NOT NULL AND n > 50`, nil},
	{"hash-join", `SELECT b.id, s.label FROM big b, small s WHERE b.n = s.id AND b.id % 5 = 0`, nil},
	{"self-join", `SELECT a.id, c.id FROM big a, big c WHERE a.id = c.n AND a.id < 40`, nil},
	{"left-join", `SELECT b.id, s.label FROM big b LEFT JOIN small s ON b.n = s.id AND s.id < 10 WHERE b.id < 300`, nil},
	{"nl-join", `SELECT b.id, s.id FROM big b, small s WHERE b.id < 30 AND s.id < b.n`, nil},
	{"count-star", `SELECT COUNT(*) FROM big`, nil},
	{"agg-exact", `SELECT grp, COUNT(*), SUM(n), MIN(id), MAX(n) FROM big GROUP BY grp`, nil},
	{"agg-avg-int", `SELECT grp, AVG(n) FROM big GROUP BY grp`, nil},
	{"agg-float", `SELECT grp, SUM(f) FROM big GROUP BY grp`, nil},
	{"agg-distinct", `SELECT grp, COUNT(DISTINCT n) FROM big GROUP BY grp`, nil},
	{"agg-having", `SELECT grp, COUNT(*) FROM big GROUP BY grp HAVING COUNT(*) > 400`, nil},
	{"agg-global", `SELECT SUM(n), MIN(grp), MAX(grp) FROM big WHERE id % 2 = 0`, nil},
	{"agg-empty", `SELECT COUNT(*), SUM(n) FROM big WHERE id < 0`, nil},
	{"distinct", `SELECT DISTINCT grp FROM big WHERE n < 40`, nil},
	{"order-by", `SELECT id, n FROM big WHERE n % 11 = 0 ORDER BY n DESC, id`, nil},
	{"limit-offset", `SELECT id FROM big WHERE n > 20 LIMIT 25 OFFSET 10`, nil},
	{"union-all", `SELECT id FROM big WHERE n = 3 UNION ALL SELECT id FROM big WHERE n = 5`, nil},
	{"in-subquery", `SELECT id FROM big WHERE n IN (SELECT id FROM small WHERE id < 5)`, nil},
	{"exists-subquery", `SELECT s.id FROM small s WHERE EXISTS (SELECT 1 FROM big b WHERE b.n = s.id AND b.id < 200)`, nil},
	{"scalar-subquery", `SELECT id, (SELECT MAX(id) FROM small) FROM big WHERE id < 50`, nil},
	{"index-range", `SELECT id, n FROM big WHERE n >= 90 AND n <= 95`, nil},
}

func TestParallelMatchesSerial(t *testing.T) {
	dbs := parallelFixture(t, 10000, 1, 4, 16)
	serial := dbs[0]
	for _, tc := range parallelBattery {
		t.Run(tc.name, func(t *testing.T) {
			want, err := serial.Query(tc.sql, tc.args...)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for i, db := range dbs[1:] {
				got, err := db.Query(tc.sql, tc.args...)
				if err != nil {
					t.Fatalf("parallel[%d]: %v", i, err)
				}
				if !reflect.DeepEqual(want.Columns, got.Columns) {
					t.Fatalf("parallel[%d]: columns %v != %v", i, got.Columns, want.Columns)
				}
				if !reflect.DeepEqual(want.Data, got.Data) {
					t.Fatalf("parallel[%d]: %d rows vs %d rows, or order/value drift\nserial: %.6v\nparallel: %.6v",
						i, want.Len(), got.Len(), want.Data, got.Data)
				}
			}
		})
	}
}

// TestParallelPreservesHeapOrder pins the order contract directly: with
// no ORDER BY, rows come back in heap (rowid) order — the document
// order every shredding scheme relies on.
func TestParallelPreservesHeapOrder(t *testing.T) {
	dbs := parallelFixture(t, 8000, 8)
	rows, err := dbs[0].Query(`SELECT id FROM big WHERE n % 3 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("no rows")
	}
	last := int64(-1)
	for _, r := range rows.Data {
		if r[0].I <= last {
			t.Fatalf("heap order violated: id %d after %d", r[0].I, last)
		}
		last = r[0].I
	}
}

// TestParallelPlanAnnotations checks the planner decision points and
// the EXPLAIN/EXPLAIN ANALYZE surfaces.
func TestParallelPlanAnnotations(t *testing.T) {
	dbs := parallelFixture(t, 9000, 1, 4)
	serial, par := dbs[0], dbs[1]

	sp, err := serial.Explain(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sp, "Gather") {
		t.Fatalf("serial plan has a Gather:\n%s", sp)
	}

	pp, err := par.Explain(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pp, "Gather over big (dop 4") {
		t.Fatalf("parallel plan lacks Gather:\n%s", pp)
	}

	ap, err := par.ExplainAnalyze(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ap, "workers=") || !strings.Contains(ap, "worker_rows=") {
		t.Fatalf("analyzed parallel plan lacks worker annotations:\n%s", ap)
	}

	// Exact aggregation becomes a ParallelAggregate...
	app, err := par.Explain(`SELECT grp, SUM(n) FROM big GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(app, "ParallelAggregate") {
		t.Fatalf("exact aggregation did not parallelize:\n%s", app)
	}
	// ...while a float SUM must not (non-associative), but still gets a
	// Gather feeding the serial aggregate.
	fpp, err := par.Explain(`SELECT grp, SUM(f) FROM big GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fpp, "ParallelAggregate") {
		t.Fatalf("float SUM was parallelized:\n%s", fpp)
	}
	if !strings.Contains(fpp, "Gather") {
		t.Fatalf("float SUM aggregation input not gathered:\n%s", fpp)
	}

	// Small tables stay serial even with the knob up.
	small, err := par.Explain(`SELECT label FROM small WHERE id > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(small, "Gather") {
		t.Fatalf("sub-threshold table was parallelized:\n%s", small)
	}

	// Changing the knob bumps the epoch and re-decides cached plans.
	par.SetParallelism(1)
	rp, err := par.Explain(`SELECT id FROM big WHERE n % 7 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rp, "Gather") {
		t.Fatalf("plan kept its Gather after SetParallelism(1):\n%s", rp)
	}
}

// TestParallelErrorPropagation makes a worker fail mid-scan and checks
// the error surfaces and the engine (and its worker pool) stays usable.
func TestParallelErrorPropagation(t *testing.T) {
	db := New()
	db.SetParallelism(4)
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`CREATE TABLE dup (k INTEGER, v INTEGER)`)
	// The scalar subquery yields two rows only for a = 5900, several
	// morsels deep in the heap.
	db.MustExec(`INSERT INTO dup VALUES (5900, 1), (5900, 2)`)
	batch := make([][]Value, 0, 6000)
	for i := 0; i < 6000; i++ {
		batch = append(batch, []Value{NewInt(int64(i))})
	}
	if _, err := db.BulkInsert("t", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT (SELECT v FROM dup WHERE k = t.a) FROM t`); err == nil {
		t.Fatal("worker error did not surface through the gather")
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM t WHERE a >= 5900`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].I != 100 {
		t.Fatalf("engine wedged after worker error: count = %v", rows.Data[0][0])
	}
}

// TestParallelQueriesUnderConcurrentMutations is the -race gate:
// parallel readers hammer a durable store while writers insert, update
// and delete, DDL creates and drops an index, and a checkpointer
// rotates the WAL. Queries may fail transiently only with legitimate
// engine errors; results that do arrive must be internally consistent.
func TestParallelQueriesUnderConcurrentMutations(t *testing.T) {
	inner := NewMemVFS()
	d, err := OpenDurable(inner, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	db := d.DB()
	db.SetParallelism(4)
	db.MustExec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)`)
	batch := make([][]Value, 0, 8000)
	for i := 0; i < 8000; i++ {
		batch = append(batch, []Value{NewInt(int64(i)), NewInt(int64(i % 64)), NewText(fmt.Sprintf("c%d", i%17))})
	}
	if _, err := db.BulkInsert("t", batch); err != nil {
		t.Fatal(err)
	}

	const loops = 30
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{
				`SELECT a, b FROM t WHERE b % 5 = 0`,
				`SELECT c, COUNT(*), SUM(b) FROM t GROUP BY c`,
				`SELECT x.a FROM t x, t y WHERE x.a = y.b AND x.a < 64`,
			}
			for i := 0; i < loops; i++ {
				q := queries[(i+r)%len(queries)]
				if _, err := db.Query(q); err != nil {
					fail("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // writer: inserts + deletes
		defer wg.Done()
		for i := 0; i < loops; i++ {
			k := int64(100000 + i)
			if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, 'w')`, NewInt(k), NewInt(k%64)); err != nil {
				fail("insert: %v", err)
				return
			}
			if i%3 == 0 {
				if _, err := db.Exec(`DELETE FROM t WHERE a = ?`, NewInt(k)); err != nil {
					fail("delete: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // updater
		defer wg.Done()
		for i := 0; i < loops; i++ {
			if _, err := db.Exec(`UPDATE t SET b = b + 1 WHERE a % 997 = ?`, NewInt(int64(i%7))); err != nil {
				fail("update: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // DDL: create/drop an index under the readers
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := db.Exec(`CREATE INDEX t_b ON t (b)`); err != nil {
				fail("create index: %v", err)
				return
			}
			if _, err := db.Exec(`DROP INDEX t_b`); err != nil {
				fail("drop index: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := d.Checkpoint(); err != nil {
				fail("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	checkIndexes(t, db)
}
