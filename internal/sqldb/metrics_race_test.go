package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestMetricsConcurrentReadersAndDDL hammers the registry from many
// goroutines running cached-plan queries while a writer churns the
// schema with CREATE/DROP INDEX (invalidating those plans). Run under
// -race; afterwards every increment must be accounted for.
func TestMetricsConcurrentReadersAndDDL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)`)
	for i := 0; i < 200; i++ {
		db.MustExec(`INSERT INTO t VALUES (?, ?, ?)`, NewInt(int64(i)), NewInt(int64(i%10)), NewText(fmt.Sprintf("v%d", i)))
	}

	const (
		readers          = 8
		queriesPerReader = 50
		rowsPerQuery     = 20 // b < 1 matches 20 rows
	)
	// Two statements so readers share cached plans; both have a fixed
	// result cardinality that survives the DDL churn.
	stmts := []string{
		`SELECT a FROM t WHERE b < 1`,
		`SELECT a, c FROM t WHERE b < 1`,
	}

	base := db.Metrics()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				sql := stmts[(r+i)%len(stmts)]
				rows, err := db.Query(sql)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if rows.Len() != rowsPerQuery {
					t.Errorf("reader %d: %d rows, want %d", r, rows.Len(), rowsPerQuery)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := db.Exec(`CREATE INDEX t_b ON t (b)`); err != nil {
				t.Errorf("create index: %v", err)
				return
			}
			if _, err := db.Exec(`DROP INDEX t_b`); err != nil {
				t.Errorf("drop index: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	m := db.Metrics()
	const total = readers * queriesPerReader
	if got := m.Queries - base.Queries; got != total {
		t.Errorf("queries = %d, want %d (lost increments)", got, total)
	}
	if got := m.Rows - base.Rows; got != total*rowsPerQuery {
		t.Errorf("rows = %d, want %d", got, total*rowsPerQuery)
	}
	if m.QueryErrors != base.QueryErrors {
		t.Errorf("unexpected query errors: %d", m.QueryErrors-base.QueryErrors)
	}
	var hist uint64
	for _, b := range m.Latency {
		hist += b.Count
	}
	if hist != m.Queries {
		t.Errorf("histogram mass %d != queries %d", hist, m.Queries)
	}
	var tplTotal uint64
	for _, ts := range m.Templates {
		tplTotal += ts.Count
	}
	if tplTotal != m.Queries {
		t.Errorf("template counts sum to %d, want %d", tplTotal, m.Queries)
	}
	// Operator rows across scan kinds must match the produced rows: the
	// DDL churn flips plans between SeqScan and IndexScan but every
	// execution scans the same 20-row result.
	var scanRows uint64
	for _, op := range m.Operators {
		if op.Kind == "SeqScan" || op.Kind == "IndexScan" {
			scanRows += op.Rows
		}
	}
	if scanRows < total*rowsPerQuery {
		t.Errorf("scan operator rows = %d, want >= %d", scanRows, total*rowsPerQuery)
	}
}

// TestMetricsSnapshotDuringLoad takes snapshots while queries run —
// under -race this guards the read path.
func TestMetricsSnapshotDuringLoad(t *testing.T) {
	db := testDB(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query(`SELECT n FROM nums WHERE grp = 'odd'`); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		m := db.Metrics()
		var hist uint64
		for _, b := range m.Latency {
			hist += b.Count
		}
		if hist != m.Queries {
			t.Errorf("snapshot %d: histogram mass %d != queries %d", i, hist, m.Queries)
		}
	}
	close(stop)
	wg.Wait()
}
