package sqldb

import (
	"context"
	"strings"
)

// Cost-based join ordering. For every possible starting relation, a
// greedy chain is simulated under a cardinality model fed by the B-tree
// distinct-prefix statistics; the order with the lowest total
// intermediate cardinality wins. With the handful of relations XPath
// translations produce (≤ ~8), trying every start is cheap and fixes
// the classic greedy failure of starting at the wrong end of a join
// chain (e.g. scanning the root instead of probing the value index).

// conjInfo is the planner's precomputed view of one conjunct.
type conjInfo struct {
	aliases map[string]bool
	// eqCol maps a relation index to the column the conjunct equates
	// (for "=" conjuncts with a plain column on that side).
	eqCol map[int]int
	sel   float64
	isEq  bool
}

func buildConjInfos(conjs []conjunct, rels []relation) []conjInfo {
	infos := make([]conjInfo, len(conjs))
	for i := range conjs {
		c := &conjs[i]
		info := conjInfo{aliases: c.aliases, eqCol: map[int]int{}, sel: conjSelectivity(c.expr, singleRel(c, rels))}
		if b, ok := c.expr.(*BinaryExpr); ok && b.Op == "=" {
			info.isEq = true
			for ri := range rels {
				relSch := rels[ri].node.sch()
				if col := candColumn(b.L, &rels[ri], relSch); col >= 0 {
					info.eqCol[ri] = col
				} else if col := candColumn(b.R, &rels[ri], relSch); col >= 0 {
					info.eqCol[ri] = col
				}
			}
		}
		infos[i] = info
	}
	return infos
}

// estRelRows estimates the cardinality of accessing rel alone with its
// single-alias conjuncts applied, using index distinct statistics for
// equality bounds.
func estRelRows(rel *relation, infos []conjInfo, conjs []conjunct, relIdx int) float64 {
	base := rel.node.estRows()
	var eqCols []int
	other := 1.0
	ca := strings.ToLower(rel.alias)
	for i := range conjs {
		c := &conjs[i]
		if c.used || c.complex || len(c.aliases) != 1 || !c.aliases[ca] {
			continue
		}
		if col, ok := infos[i].eqCol[relIdx]; ok && infos[i].isEq {
			eqCols = append(eqCols, col)
		} else {
			other *= infos[i].sel
		}
	}
	return estWithEq(rel, eqCols, other, base)
}

// estWithEq applies equality bounds on eqCols plus a residual
// selectivity to a base cardinality. Each equality contributes
// 1/distinct(col) using the distinct-prefix statistic of any index whose
// leading column matches; a multi-column index covering several bound
// columns refines the joint estimate.
func estWithEq(rel *relation, eqCols []int, residualSel, base float64) float64 {
	if len(eqCols) == 0 || rel.tbl == nil {
		v := base * residualSel
		for range eqCols {
			v *= 0.05
		}
		if v < 0.5 {
			v = 0.5
		}
		return v
	}
	live := float64(rel.tbl.live)
	if live < 1 {
		live = 1
	}
	// Per-column independence estimate.
	seen := map[int]bool{}
	sel := 1.0
	for _, ec := range eqCols {
		if seen[ec] {
			continue
		}
		seen[ec] = true
		d := 0
		for _, idx := range rel.tbl.indexes {
			if idx.def.Columns[0] == ec {
				if dp := idx.tree.DistinctPrefix(1); dp > d {
					d = dp
				}
			}
		}
		if d > 0 {
			sel *= 1 / float64(d)
		} else {
			sel *= 0.05
		}
	}
	est := live * sel
	// Joint refinement from the longest multi-column eq prefix.
	for _, idx := range rel.tbl.indexes {
		l := 0
		for _, ic := range idx.def.Columns {
			found := false
			for _, ec := range eqCols {
				if ec == ic {
					found = true
					break
				}
			}
			if !found {
				break
			}
			l++
		}
		if l >= 2 {
			joint := live / float64(idx.tree.DistinctPrefix(l))
			if joint < est {
				est = joint
			}
		}
	}
	est *= residualSel
	if est < 0.05 {
		est = 0.05
	}
	return est
}

// estJoinFanout estimates how many rows of cand match one row of the
// placed set.
func estJoinFanout(rels []relation, infos []conjInfo, conjs []conjunct, placed map[string]bool, cand int) float64 {
	rel := &rels[cand]
	ca := strings.ToLower(rel.alias)
	var eqCols []int
	other := 1.0
	connected := false
	for i := range conjs {
		c := &conjs[i]
		if c.used || c.complex {
			continue
		}
		if !c.aliases[ca] {
			continue
		}
		applicable := true
		isJoin := false
		for a := range c.aliases {
			if a == ca {
				continue
			}
			isJoin = true
			if !placed[a] {
				applicable = false
				break
			}
		}
		if !applicable {
			continue
		}
		if len(c.aliases) == 1 || isJoin {
			if isJoin {
				connected = true
			}
			if col, ok := infos[i].eqCol[cand]; ok && infos[i].isEq {
				eqCols = append(eqCols, col)
				continue
			}
			other *= infos[i].sel
		}
	}
	est := estWithEq(rel, eqCols, other, rel.node.estRows())
	if !connected && len(eqCols) == 0 && other == 1.0 {
		// Pure cross join.
		return rel.node.estRows()
	}
	return est
}

// sampleRowCap bounds plan-time sampling: simulated chains stop counting
// past this many intermediate rows and take a fixed overflow penalty.
const sampleRowCap = 512

// sampledJoinOrder picks a join order by executing candidate chains on
// capped samples: for every start relation a greedy chain is built with
// the real physical operators, each step capped at sampleRowCap rows,
// and the order with the smallest observed total intermediate
// cardinality wins. This sees through the correlation and skew that
// defeat independence-based estimates (e.g. that all 10^3 'row' edges
// are children of the single root). It declines (ok=false) when the
// query is not cheaply sampleable: correlated outer references, bound
// parameters, too many relations.
func sampledJoinOrder(st *dbState, rels []relation, conjs []conjunct, outer schema) ([]int, bool) {
	if len(rels) == 1 {
		return []int{0}, true
	}
	if len(rels) > 8 {
		return nil, false
	}
	saved := make([]bool, len(conjs))
	for i := range conjs {
		saved[i] = conjs[i].used
	}
	restore := func(flags []bool) {
		for i := range conjs {
			conjs[i].used = flags[i]
		}
	}
	snapshot := func() []bool {
		out := make([]bool, len(conjs))
		for i := range conjs {
			out[i] = conjs[i].used
		}
		return out
	}
	defer restore(saved)

	ctx := &evalCtx{snap: st, qctx: context.Background()}
	runCapped := func(n planNode) ([][]Value, bool, error) {
		it, err := n.open(ctx)
		if err != nil {
			return nil, false, err
		}
		defer it.close()
		var rows [][]Value
		for {
			r, err := it.next()
			if err != nil {
				return nil, false, err
			}
			if r == nil {
				return rows, true, nil
			}
			rows = append(rows, r)
			if len(rows) > sampleRowCap {
				return rows, false, nil
			}
		}
	}
	const overflowCost = float64(sampleRowCap) * 4

	var bestOrder []int
	bestCost := -1.0
	for start := range rels {
		restore(saved)
		order := []int{start}
		placed := map[string]bool{strings.ToLower(rels[start].alias): true}
		node, err := buildAccessPath(st, &rels[start], rels[start].own, outer)
		if err != nil {
			return nil, false
		}
		rows, complete, err := runCapped(node)
		if err != nil {
			return nil, false // not sampleable (outer refs, params)
		}
		cost := float64(len(rows))
		overflow := !complete
		cur := planNode(&valuesNode{rows: rows, schema: node.sch()})
		remaining := make([]int, 0, len(rels)-1)
		for i := range rels {
			if i != start {
				remaining = append(remaining, i)
			}
		}
		for len(remaining) > 0 && !overflow {
			trialBase := snapshot()
			bestCand := -1
			bestScore := 0.0
			var bestRows [][]Value
			var bestSch schema
			bestComplete := false
			for _, cand := range remaining {
				restore(trialBase)
				cross := !hasJoinLink(conjs, rels, placed, cand)
				jn, err := joinRelation(st, cur, &rels[cand], conjs, rels, placed, cross, outer)
				if err != nil {
					return nil, false
				}
				rws, comp, err := runCapped(jn)
				if err != nil {
					return nil, false
				}
				score := float64(len(rws))
				if !comp {
					score = overflowCost
				}
				if cross {
					score *= 4 // discourage cartesian steps when a link exists elsewhere
				}
				if bestCand < 0 || score < bestScore {
					bestCand = cand
					bestScore = score
					bestRows = rws
					bestSch = jn.sch()
					bestComplete = comp
				}
			}
			// Commit the winner (re-run to set used flags consistently).
			restore(trialBase)
			cross := !hasJoinLink(conjs, rels, placed, bestCand)
			if _, err := joinRelation(st, cur, &rels[bestCand], conjs, rels, placed, cross, outer); err != nil {
				return nil, false
			}
			placed[strings.ToLower(rels[bestCand].alias)] = true
			order = append(order, bestCand)
			for k, r := range remaining {
				if r == bestCand {
					remaining = append(remaining[:k], remaining[k+1:]...)
					break
				}
			}
			if !bestComplete {
				overflow = true
				cost += overflowCost
				break
			}
			cost += float64(len(bestRows))
			cur = &valuesNode{rows: bestRows, schema: bestSch}
		}
		// Unplaced tail after overflow: keep input order.
		order = append(order, remaining...)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			bestOrder = order
		}
	}
	restore(saved)
	// When even the best chain overflowed the cap, sampling observed
	// nothing that distinguishes the orders — defer to the estimate
	// model rather than committing to an arbitrary plugged order.
	if bestCost >= overflowCost {
		return nil, false
	}
	return bestOrder, true
}

// chooseJoinOrder returns the relation order minimizing the summed
// intermediate cardinalities across all greedy chains.
func chooseJoinOrder(rels []relation, conjs []conjunct) []int {
	n := len(rels)
	if n == 1 {
		return []int{0}
	}
	infos := buildConjInfos(conjs, rels)

	simulate := func(start int) ([]int, float64) {
		order := []int{start}
		placed := map[string]bool{strings.ToLower(rels[start].alias): true}
		cur := estRelRows(&rels[start], infos, conjs, start)
		total := cur
		remaining := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != start {
				remaining = append(remaining, i)
			}
		}
		for len(remaining) > 0 {
			best := -1
			bestCost := 0.0
			bestConnected := false
			for _, cand := range remaining {
				connected := hasJoinLink(conjs, rels, placed, cand)
				fan := estJoinFanout(rels, infos, conjs, placed, cand)
				cost := cur * fan
				// Prefer connected candidates categorically.
				if best < 0 ||
					(connected && !bestConnected) ||
					(connected == bestConnected && cost < bestCost) {
					best = cand
					bestCost = cost
					bestConnected = connected
				}
			}
			cur = bestCost
			if cur < 0.5 {
				cur = 0.5
			}
			total += cur
			placed[strings.ToLower(rels[best].alias)] = true
			order = append(order, best)
			for k, r := range remaining {
				if r == best {
					remaining = append(remaining[:k], remaining[k+1:]...)
					break
				}
			}
		}
		return order, total
	}

	var bestOrder []int
	bestTotal := 0.0
	for start := 0; start < n; start++ {
		order, total := simulate(start)
		if bestOrder == nil || total < bestTotal {
			bestOrder = order
			bestTotal = total
		}
	}
	return bestOrder
}

// singleRel returns the relation a single-alias conjunct constrains,
// or nil when it spans several relations (join predicates carry no
// per-table distinct statistic).
func singleRel(c *conjunct, rels []relation) *relation {
	if len(c.aliases) != 1 {
		return nil
	}
	for i := range rels {
		if c.aliases[strings.ToLower(rels[i].alias)] {
			return &rels[i]
		}
	}
	return nil
}
