package sqldb

// The buffer pool bounds how many sealed heap pages stay resident in
// memory. Pages enter the pool when a commit publishes them full (see
// table.sealq); once pooled they are immutable — inserts only touch
// the unsealed tail page and deletes/updates copy-on-write a fresh
// page for the writer's generation — so eviction is simply dropping
// the in-memory frame after an (at most once) writeback to the spill
// file, and a later access faults the frame back in by rowid.
//
// Eviction ordering invariant: a page sealed by commit seq S may only
// be written back and dropped once the WAL fsync covering S has
// completed (spillBarrier). Commits publish after their fsync in the
// normal pipeline, which makes the barrier structural — except for
// group-buffered commits, whose members publish before the group
// frame's fsync; the barrier keeps their pages resident until the
// group closes durably. When every candidate is pinned or too new the
// pool grows past its cap instead of blocking: memory pressure never
// deadlocks the engine.
//
// Fault-in failures panic with pageIOPanic, which the executor and
// writer panic barriers convert to ErrPageIO: the one operation fails,
// the pool and the published snapshot stay intact, and a later access
// retries the read.

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// tempSpillFile backs non-durable databases' spill: an unlinked temp
// file the OS reclaims when the handle closes (process exit). Durable
// databases override openFile with a VFS-backed pages file.
func tempSpillFile() (File, error) {
	f, err := os.CreateTemp("", "xrdb-spill-*")
	if err != nil {
		return nil, err
	}
	os.Remove(f.Name())
	return f, nil
}

// pageStore is the buffer pool plus its spill file.
type pageStore struct {
	mu sync.Mutex
	// cap is the resident-page target; 0 means unbounded (pages are
	// never sealed into the pool and behavior matches the pre-pool
	// engine byte for byte).
	cap int
	// file is the spill file, opened lazily on first writeback.
	file     File
	openFile func() (File, error)
	fileErr  error
	nextSlot int64 // next free 0-based slot index
	// clock is the ring of resident pooled pages the eviction hand
	// sweeps. Evicted pages leave the ring and re-enter on fault-in,
	// so dead pages (dropped tables, superseded versions) cannot
	// accumulate.
	clock  []*heapPage
	hand   int
	closed bool
	// spillBarrier gates writeback/eviction on WAL durability; nil
	// allows everything (non-durable databases).
	spillBarrier func(seq uint64) bool

	spilled    int64 // pages with an on-disk copy
	spillBytes int64
	spillErrs  uint64

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	writebacks atomic.Uint64
	readErrs   atomic.Uint64
	pinned     atomic.Int64
	pinnedHW   atomic.Int64
}

// BufferPoolStats is the pool's health block in Database.Stats().
type BufferPoolStats struct {
	// Cap is the resident-page target (0 = unbounded, pool disabled).
	Cap int
	// Resident counts pooled pages currently in memory; Spilled counts
	// pages with an on-disk copy; SpillBytes is the spill file size.
	Resident   int
	Spilled    int64
	SpillBytes int64
	// Hits/Misses count page lookups at scan page-crossing granularity
	// (a hit pins a resident page, a miss faults one in from disk).
	Hits   uint64
	Misses uint64
	// Evictions counts dropped frames; Writebacks counts page spills
	// (each page is written back at most once — sealed pages are
	// immutable).
	Evictions  uint64
	Writebacks uint64
	// PinnedHighWater is the most pages simultaneously pinned.
	Pinned          int64
	PinnedHighWater int64
	// ReadErrors counts failed fault-ins (each fails exactly one
	// operation); SpillErrors counts failed writebacks (the page just
	// stays resident).
	ReadErrors  uint64
	SpillErrors uint64
}

func newPageStore() *pageStore { return &pageStore{} }

func (ps *pageStore) setCap(pages int) {
	ps.mu.Lock()
	ps.cap = pages
	ps.evictLocked()
	ps.mu.Unlock()
}

func (ps *pageStore) capNow() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.cap
}

func (ps *pageStore) setSpillBarrier(fn func(seq uint64) bool) {
	ps.mu.Lock()
	ps.spillBarrier = fn
	ps.mu.Unlock()
}

// ensureFile opens the spill file eagerly (normally it opens lazily on
// first writeback), positioning the allocator past any existing slots
// so an adopted snapshot's pages are never overwritten.
func (ps *pageStore) ensureFile() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ensureFileLocked()
}

func (ps *pageStore) ensureFileLocked() error {
	if ps.file != nil {
		return nil
	}
	if ps.fileErr != nil {
		return ps.fileErr
	}
	if ps.openFile == nil {
		return errorf("sqldb: buffer pool has no spill file")
	}
	f, err := ps.openFile()
	if err != nil {
		ps.fileErr = err
		return err
	}
	if size, err := f.Seek(0, io.SeekEnd); err == nil && size > 0 {
		ps.nextSlot = (size + pageSlotSize - 1) / pageSlotSize
	}
	ps.file = f
	return nil
}

func (ps *pageStore) stats() BufferPoolStats {
	ps.mu.Lock()
	s := BufferPoolStats{
		Cap:         ps.cap,
		Resident:    len(ps.clock),
		Spilled:     ps.spilled,
		SpillBytes:  ps.spillBytes,
		SpillErrors: ps.spillErrs,
	}
	ps.mu.Unlock()
	s.Hits = ps.hits.Load()
	s.Misses = ps.misses.Load()
	s.Evictions = ps.evictions.Load()
	s.Writebacks = ps.writebacks.Load()
	s.Pinned = ps.pinned.Load()
	s.PinnedHighWater = ps.pinnedHW.Load()
	s.ReadErrors = ps.readErrs.Load()
	return s
}

// add seals a page into the pool at commit seq. Idempotent: the same
// shared page object may be noted by several writers (the tx that
// filled it, a checkpoint straggler walk, a copy-on-write of a full
// page).
func (ps *pageStore) add(p *heapPage, seq uint64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.cap <= 0 || p.pooled {
		return
	}
	p.pooled = true
	p.seal = seq
	p.store.Store(ps)
	p.ref.Store(true)
	ps.clock = append(ps.clock, p)
	ps.evictLocked()
}

// adopt registers a page a paged snapshot says is already on disk at
// slot pid. The page is not resident, so it joins the clock ring only
// when first faulted in; until then it costs no memory — this is how
// recovery pages lazily. Works at any cap, including 0: a snapshot's
// pages must be loadable even with the pool "disabled" (they simply
// stay resident once touched).
func (ps *pageStore) adopt(p *heapPage, pid int64, slots int32, seq uint64) {
	p.pooled = true
	p.seal = seq
	p.pid = pid
	p.slots = slots
	p.store.Store(ps)
	ps.mu.Lock()
	ps.spilled++
	ps.spillBytes += int64(slots) * pageSlotSize
	ps.mu.Unlock()
}

// ensureSpilled guarantees p has an on-disk copy and returns its slot
// chain, sealing it into the pool first if some other path (late
// SetBufferPool, a commit racing a checkpoint) hasn't yet. Used by the
// paged checkpoint: every full page a v3 snapshot references must be
// durable in the spill file before the snapshot rename.
func (ps *pageStore) ensureSpilled(p *heapPage, seq uint64) (int64, int32, error) {
	ps.add(p, seq)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if p.pid != 0 {
		return p.pid, p.slots, nil
	}
	if !ps.spillLocked(p) {
		if ps.fileErr != nil {
			return 0, 0, ps.fileErr
		}
		return 0, 0, errorf("sqldb: page writeback failed")
	}
	return p.pid, p.slots, nil
}

// evictLocked sweeps the clock hand until the resident count is within
// cap or no page is evictable (pinned, referenced this sweep, or not
// yet covered by a WAL fsync). Two full sweeps bound the walk: the
// first clears reference bits, the second takes victims.
func (ps *pageStore) evictLocked() {
	if ps.cap <= 0 || len(ps.clock) <= ps.cap {
		return
	}
	budget := 2 * len(ps.clock)
	for len(ps.clock) > ps.cap && budget > 0 {
		if ps.hand >= len(ps.clock) {
			ps.hand = 0
		}
		p := ps.clock[ps.hand]
		budget--
		if p.ref.CompareAndSwap(true, false) || p.pins.Load() > 0 ||
			(ps.spillBarrier != nil && !ps.spillBarrier(p.seal)) {
			ps.hand++
			continue
		}
		if p.pid == 0 {
			if !ps.spillLocked(p) {
				ps.hand++
				continue
			}
		}
		// Drop the frame and remove the page from the ring. In-flight
		// readers that already loaded the frame pointer keep it alive;
		// eviction only severs the pool's reference.
		p.res.Store(nil)
		ps.evictions.Add(1)
		last := len(ps.clock) - 1
		ps.clock[ps.hand] = ps.clock[last]
		ps.clock[last] = nil
		ps.clock = ps.clock[:last]
	}
}

// spillLocked writes p's frame back to the spill file, assigning its
// slot chain. Sealed pages are immutable so this happens at most once
// per page. Reports whether the page now has an on-disk copy.
func (ps *pageStore) spillLocked(p *heapPage) bool {
	if p.pid != 0 {
		return true
	}
	if ps.closed {
		return false
	}
	if ps.file == nil {
		if err := ps.ensureFileLocked(); err != nil {
			ps.spillErrs++
			return false
		}
	}
	f := p.res.Load()
	if f == nil {
		return false
	}
	payload := encodePageFrame(f, heapPageSize)
	pid := ps.nextSlot + 1
	img := framePageImage(pid, payload)
	if _, err := ps.file.WriteAt(img, ps.nextSlot*pageSlotSize); err != nil {
		ps.spillErrs++
		return false
	}
	slots := int64(len(img) / pageSlotSize)
	ps.nextSlot += slots
	p.pid = pid
	p.slots = int32(slots)
	ps.spilled++
	ps.spillBytes += int64(len(img))
	ps.writebacks.Add(1)
	return true
}

// writebackAll force-spills every resident page that has no on-disk
// copy yet (checkpoint: flush dirty pages without evicting them) and
// returns the first writeback error encountered, if any.
func (ps *pageStore) writebackAll() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, p := range ps.clock {
		if p.pid == 0 && !ps.spillLocked(p) {
			if ps.fileErr != nil {
				return ps.fileErr
			}
			return errorf("sqldb: page writeback failed")
		}
	}
	return nil
}

// sync makes the spill file durable (a no-op before the first spill).
func (ps *pageStore) sync() error {
	ps.mu.Lock()
	f := ps.file
	ps.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Sync()
}

// close flushes and fsyncs the spill file but keeps the handle open:
// reads must keep serving the published snapshot after Close, and an
// evicted page can only be served from disk. Further spills are
// refused (the pool grows instead).
func (ps *pageStore) close() error {
	ps.mu.Lock()
	ps.closed = true
	f := ps.file
	ps.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Sync()
}

// faultIn loads an evicted page's frame from the spill file. p.mu
// serializes concurrent faults of the same page; the read itself runs
// without the pool lock.
func (ps *pageStore) faultIn(p *heapPage) *pageFrame {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f := p.res.Load(); f != nil {
		return f
	}
	ps.misses.Add(1)
	ps.mu.Lock()
	pid, slots := p.pid, int64(p.slots)
	file := ps.file
	ps.mu.Unlock()
	if pid == 0 || file == nil {
		ps.readErrs.Add(1)
		panic(pageIOPanic{errorf("%w: page has no on-disk copy", ErrPageIO)})
	}
	img := make([]byte, slots*pageSlotSize)
	if _, err := file.ReadAt(img, (pid-1)*pageSlotSize); err != nil {
		ps.readErrs.Add(1)
		panic(pageIOPanic{errorf("%w: page %d: %v", ErrPageIO, pid, err)})
	}
	f, err := decodePageImage(pid, img)
	if err != nil {
		ps.readErrs.Add(1)
		panic(pageIOPanic{errorf("%w: %v", ErrPageIO, err)})
	}
	p.ref.Store(true)
	ps.mu.Lock()
	ps.clock = append(ps.clock, p)
	p.res.Store(f)
	ps.evictLocked()
	ps.mu.Unlock()
	return f
}

// pin marks one more user of the page for clock/eviction purposes and
// returns the resident frame, faulting it in if needed.
func (p *heapPage) pin() *pageFrame {
	p.pins.Add(1)
	ps := p.store.Load()
	if ps != nil {
		n := ps.pinned.Add(1)
		for {
			hw := ps.pinnedHW.Load()
			if n <= hw || ps.pinnedHW.CompareAndSwap(hw, n) {
				break
			}
		}
	}
	p.ref.Store(true)
	if f := p.res.Load(); f != nil {
		if ps != nil {
			ps.hits.Add(1)
		}
		return f
	}
	// Not resident: only pooled pages are ever evicted, so the store is
	// set. Release the pin if the fault-in panics (ErrPageIO) so a
	// failed read never leaves the page unevictable.
	ok := false
	defer func() {
		if !ok {
			p.unpin()
		}
	}()
	if ps == nil {
		panic(pageIOPanic{errorf("%w: evicted page has no store", ErrPageIO)})
	}
	f := ps.faultIn(p)
	ok = true
	return f
}

func (p *heapPage) unpin() {
	p.pins.Add(-1)
	if ps := p.store.Load(); ps != nil {
		ps.pinned.Add(-1)
	}
}

// pageRef holds one pinned page across a scan's row accesses; release
// must be called when the scan closes or crosses to another page.
type pageRef struct {
	p *heapPage
	f *pageFrame
}

func (r *pageRef) release() {
	if r.p != nil {
		r.p.unpin()
		r.p, r.f = nil, nil
	}
}
