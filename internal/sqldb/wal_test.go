package sqldb

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// ---------------------------------------------------------------------------
// State-comparison helpers shared with the crash-injection battery.

// dbStateDiff compares two databases structurally — table definitions,
// the multiset of live row images, and secondary index definitions —
// and returns a description of the first difference, or "".
func dbStateDiff(a, b *Database) string {
	an, bn := a.TableNames(), b.TableNames()
	if !reflect.DeepEqual(an, bn) {
		return fmt.Sprintf("tables %v vs %v", an, bn)
	}
	for _, name := range an {
		ta, tb := a.readState().table(name), b.readState().table(name)
		if !reflect.DeepEqual(*ta.def, *tb.def) {
			return fmt.Sprintf("table %s: def %+v vs %+v", name, *ta.def, *tb.def)
		}
		ra, rb := rowImages(ta), rowImages(tb)
		if !reflect.DeepEqual(ra, rb) {
			return fmt.Sprintf("table %s: rows\n  %v\nvs\n  %v", name, ra, rb)
		}
		ia, ib := indexDefs(ta), indexDefs(tb)
		if !reflect.DeepEqual(ia, ib) {
			return fmt.Sprintf("table %s: indexes %+v vs %+v", name, ia, ib)
		}
	}
	return ""
}

func rowImages(t *table) []string {
	var keys []string
	for rid := int64(0); rid < t.slotCount(); rid++ {
		if row := t.row(rid); row != nil {
			keys = append(keys, rowImageKey(row))
		}
	}
	sort.Strings(keys)
	return keys
}

func indexDefs(t *table) []IndexDef {
	var defs []IndexDef
	for _, idx := range t.indexes {
		if idx == t.pkIndex {
			continue
		}
		d := idx.def
		d.Columns = append([]int{}, d.Columns...)
		defs = append(defs, d)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}

// checkIndexes verifies every B-tree index against its heap: each entry
// points at a live row whose key columns match, and entry counts equal
// the live row count.
func checkIndexes(t *testing.T, db *Database) {
	t.Helper()
	for _, name := range db.TableNames() {
		tbl := db.readState().table(name)
		for _, idx := range tbl.indexes {
			seen := 0
			for c := idx.tree.seek(nil); c.valid(); c.advance() {
				e := c.entry()
				seen++
				if e.rid < 0 || e.rid >= tbl.slotCount() || tbl.row(e.rid) == nil {
					t.Fatalf("table %s index %s: entry %v points at dead rid %d", name, idx.def.Name, e.key, e.rid)
				}
				if got := indexKey(idx, tbl.row(e.rid)); compareKeys(got, e.key) != 0 {
					t.Fatalf("table %s index %s: entry key %v != row key %v (rid %d)", name, idx.def.Name, e.key, got, e.rid)
				}
			}
			if seen != tbl.live {
				t.Fatalf("table %s index %s: %d entries for %d live rows", name, idx.def.Name, seen, tbl.live)
			}
			if idx.tree.Len() != tbl.live {
				t.Fatalf("table %s index %s: Len()=%d, live=%d", name, idx.def.Name, idx.tree.Len(), tbl.live)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Record codec

func sampleRecords() []*walRecord {
	def := TableDef{
		Name: "kv",
		Columns: []Column{
			{Name: "k", Type: TypeInt, NotNull: true},
			{Name: "v", Type: TypeText},
		},
		PrimaryKey: []int{0},
	}
	rows := [][]Value{
		{NewInt(1), NewText("one")},
		{NewInt(2), Null},
		{NewFloat(1.5), NewBool(true)},
		{NewBlob([]byte{0, 1, 2}), NewText("")},
	}
	return []*walRecord{
		{Op: opCreateTable, Seq: 1, Def: &def},
		{Op: opCreateIndex, Seq: 2, Index: &IndexDef{Name: "kv_v", Table: "kv", Columns: []int{1}, Unique: true}},
		{Op: opInsert, Seq: 3, Table: "kv", Rows: rows},
		{Op: opDelete, Seq: 4, Table: "kv", Rows: rows[:1]},
		{Op: opUpdate, Seq: 5, Table: "kv", OldRows: rows[:2], Rows: rows[2:]},
		{Op: opDropIndex, Seq: 6, Name: "kv_v"},
		{Op: opDropTable, Seq: 7, Table: "kv"},
		{Op: opGroup, Seq: 8, Group: []*walRecord{
			{Op: opCreateTable, Seq: 8, Def: &def},
			{Op: opInsert, Seq: 9, Table: "kv", Rows: rows},
		}},
	}
}

func TestWALRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		payload := encodeRecordPayload(nil, rec)
		got, err := decodeRecordPayload(payload, 0)
		if err != nil {
			t.Fatalf("op %d: decode: %v", rec.Op, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Errorf("op %d: round trip mismatch:\n  in:  %+v\n  out: %+v", rec.Op, rec, got)
		}
	}
}

func TestWALScanStopsAtCorruption(t *testing.T) {
	recs := sampleRecords()
	var log []byte
	for _, rec := range recs {
		log = appendFrame(log, encodeRecordPayload(nil, rec))
	}
	got, goodLen := scanWAL(log)
	if goodLen != int64(len(log)) {
		t.Fatalf("clean log: goodLen %d != %d", goodLen, len(log))
	}
	// opGroup flattens into its two members.
	if want := len(recs) + 1; len(got) != want {
		t.Fatalf("clean log: %d records, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq > got[i].Seq {
			t.Fatalf("replay records out of seq order: %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}

	// Every truncation point: the scan keeps exactly the whole frames
	// before the cut and never errors.
	frames, _ := scanWALFrames(log)
	for cut := 0; cut <= len(log); cut++ {
		_, goodLen := scanWAL(log[:cut])
		wantLen := int64(0)
		for _, f := range frames {
			if wantLen+int64(len(f.raw)) > int64(cut) {
				break
			}
			wantLen += int64(len(f.raw))
		}
		if goodLen != wantLen {
			t.Fatalf("cut %d: goodLen %d, want %d", cut, goodLen, wantLen)
		}
	}

	// A flipped bit anywhere in a frame invalidates it and everything after.
	for _, bit := range []int{0, 5, 9, len(log) / 2, len(log) - 1} {
		bad := append([]byte(nil), log...)
		bad[bit] ^= 0x40
		_, goodLen := scanWAL(bad)
		if goodLen > int64(bit) {
			t.Fatalf("bit flip at %d: goodLen %d extends past corruption", bit, goodLen)
		}
	}

	// A zero length field stops the scan (all-zero preallocated tail).
	tail := append(append([]byte(nil), log...), make([]byte, 64)...)
	_, goodLen = scanWAL(tail)
	if goodLen != int64(len(log)) {
		t.Fatalf("zeroed tail: goodLen %d != %d", goodLen, len(log))
	}
}

func TestWALReplayRebuildsState(t *testing.T) {
	src := New()
	src.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	src.MustExec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	src.MustExec(`CREATE INDEX kv_v ON kv (v)`)
	src.MustExec(`UPDATE kv SET v = 'TWO' WHERE k = 2`)
	src.MustExec(`DELETE FROM kv WHERE k = 1`)

	var log []byte
	logged := New()
	logged.setCommitLogger(func(rec *walRecord) error {
		log = appendFrame(log, encodeRecordPayload(nil, rec))
		return nil
	})
	for _, sql := range []string{
		`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`,
		`INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')`,
		`CREATE INDEX kv_v ON kv (v)`,
		`UPDATE kv SET v = 'TWO' WHERE k = 2`,
		`DELETE FROM kv WHERE k = 1`,
	} {
		logged.MustExec(sql)
	}

	replayed := New()
	records, goodLen := scanWAL(log)
	if goodLen != int64(len(log)) {
		t.Fatalf("goodLen %d != %d", goodLen, len(log))
	}
	for _, rec := range records {
		if err := replayed.applyRecord(rec); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if diff := dbStateDiff(src, replayed); diff != "" {
		t.Fatalf("replayed state differs: %s", diff)
	}
	checkIndexes(t, replayed)
}

// ---------------------------------------------------------------------------
// DurableDB round trips

func mustOpenDurable(t *testing.T, fs VFS, opts DurableOptions) *DurableDB {
	t.Helper()
	d, err := OpenDurable(fs, opts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

func TestDurableCommitReopen(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)
	db.MustExec(`CREATE INDEX kv_v ON kv (v)`)
	db.MustExec(`UPDATE kv SET v = 'TWO' WHERE k = 2`)
	if d.WALSize() == 0 {
		t.Fatal("WAL is empty after commits")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if diff := dbStateDiff(db, d2.DB()); diff != "" {
		t.Fatalf("recovered state differs: %s", diff)
	}
	checkIndexes(t, d2.DB())

	// The recovered handle keeps logging: new commits survive another cycle.
	d2.DB().MustExec(`INSERT INTO kv VALUES (3, 'three')`)
	d2.Close()
	d3 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d3.DB().TotalRows(); n != 3 {
		t.Fatalf("after second cycle: %d rows, want 3", n)
	}
	d3.Close()
}

func TestDurableCheckpointRotation(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	for i := 0; i < 20; i++ {
		db.MustExec(`INSERT INTO kv VALUES (?, ?)`, NewInt(int64(i)), NewText(strings.Repeat("x", 20)))
	}
	before := d.WALSize()
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if d.WALSize() != 0 {
		t.Fatalf("WAL not rotated: %d bytes (was %d)", d.WALSize(), before)
	}
	if d.Checkpoints() != 1 {
		t.Fatalf("checkpoint count %d, want 1", d.Checkpoints())
	}
	// Post-checkpoint commits land in the fresh log; recovery layers
	// them over the snapshot.
	db.MustExec(`INSERT INTO kv VALUES (100, 'after')`)
	d.Close()

	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if diff := dbStateDiff(db, d2.DB()); diff != "" {
		t.Fatalf("recovered state differs: %s", diff)
	}
	// Records at or below the snapshot's sequence must not replay twice:
	// row count would explode if they did (21 rows is correct).
	if n := d2.DB().TotalRows(); n != 21 {
		t.Fatalf("%d rows after recovery, want 21", n)
	}
	d2.Close()
}

func TestDurableAutoCheckpoint(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{AutoCheckpointBytes: 256})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	for i := 0; i < 50; i++ {
		db.MustExec(`INSERT INTO kv VALUES (?, 'payload')`, NewInt(int64(i)))
		if _, err := d.MaybeCheckpoint(); err != nil {
			t.Fatalf("auto checkpoint: %v", err)
		}
	}
	if d.Checkpoints() == 0 {
		t.Fatal("auto-checkpoint never fired")
	}
	d.Close()
	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d2.DB().TotalRows(); n != 50 {
		t.Fatalf("%d rows after recovery, want 50", n)
	}
	d2.Close()
}

func TestDurableTornTailTruncated(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)
	db.MustExec(`INSERT INTO kv VALUES (1), (2)`)
	d.Close()

	// Tear the log: append half a frame's worth of garbage.
	w, err := fs.OpenRW(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	w.Write([]byte{9, 0, 0, 0, 0xde, 0xad})
	w.Close()
	torn, _ := fs.Size(walFile)

	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d2.DB().TotalRows(); n != 2 {
		t.Fatalf("%d rows after torn-tail recovery, want 2", n)
	}
	// The tail was truncated, and the next commit lands where it was.
	if got, _ := fs.Size(walFile); got >= torn {
		t.Fatalf("torn tail not truncated: %d >= %d", got, torn)
	}
	d2.DB().MustExec(`INSERT INTO kv VALUES (3)`)
	d2.Close()
	d3 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d3.DB().TotalRows(); n != 3 {
		t.Fatalf("%d rows after re-append, want 3", n)
	}
	d3.Close()
}

func TestDurableGroupAtomic(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)
	pre := d.WALSize()
	err := d.Group(func() error {
		db.MustExec(`INSERT INTO kv VALUES (1)`)
		db.MustExec(`INSERT INTO kv VALUES (2)`)
		if d.WALSize() != pre {
			t.Errorf("group commits hit the log before the group closed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("group: %v", err)
	}
	if d.WALSize() <= pre {
		t.Fatal("group frame never flushed")
	}

	// A group whose fn errors after committing still flushes the partial
	// batch — durable state must track the in-memory effects.
	wantErr := errors.New("downstream failure")
	if err := d.Group(func() error {
		db.MustExec(`INSERT INTO kv VALUES (3)`)
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("group error = %v, want %v", err, wantErr)
	}
	if err := d.Group(func() error { return nil }); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	d.Close()

	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d2.DB().TotalRows(); n != 3 {
		t.Fatalf("%d rows after group recovery, want 3", n)
	}
	d2.Close()
}

func TestDurableFailStop(t *testing.T) {
	inner := NewMemVFS()
	fvfs := NewFaultVFS(inner, -1)
	d, err := OpenDurable(fvfs, DurableOptions{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)
	db.MustExec(`INSERT INTO kv VALUES (1)`)

	// Exhaust the budget: the next commit's append fails.
	fvfs.mu.Lock()
	fvfs.failAfter = fvfs.written
	fvfs.mu.Unlock()
	if _, err := db.Exec(`INSERT INTO kv VALUES (2)`); err == nil {
		t.Fatal("commit after injected fault succeeded")
	}
	if !d.Failed() {
		t.Fatal("engine not fail-stop after WAL error")
	}
	// Everything downstream refuses with ErrWALFailed.
	if _, err := db.Exec(`INSERT INTO kv VALUES (3)`); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("post-failure insert: %v, want ErrWALFailed", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("post-failure checkpoint: %v, want ErrWALFailed", err)
	}
	if err := d.Group(func() error { return nil }); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("post-failure group: %v, want ErrWALFailed", err)
	}
	d.Close()

	// Reads still work on the wounded handle's database, and recovery
	// from the surviving prefix is clean.
	d2, err := OpenDurable(inner, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery after fail-stop: %v", err)
	}
	if n := d2.DB().TotalRows(); n != 1 {
		t.Fatalf("%d rows recovered, want 1 (only the acked insert)", n)
	}
	d2.Close()
}

func TestDurableShortReads(t *testing.T) {
	inner := NewMemVFS()
	d := mustOpenDurable(t, inner, DurableOptions{})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO kv VALUES (3, 'three')`)
	d.Close()

	// Recovery must not assume full reads: every Read returns one byte.
	fvfs := NewFaultVFS(inner, -1)
	fvfs.SetShortReads(true)
	d2, err := OpenDurable(fvfs, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery under short reads: %v", err)
	}
	if n := d2.DB().TotalRows(); n != 3 {
		t.Fatalf("%d rows under short reads, want 3", n)
	}
	d2.Close()
}

func TestDurableNoSync(t *testing.T) {
	fs := NewMemVFS()
	d := mustOpenDurable(t, fs, DurableOptions{NoSync: true})
	db := d.DB()
	db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY)`)
	db.MustExec(`INSERT INTO kv VALUES (1), (2), (3)`)
	d.Close()
	// A clean close keeps everything even without per-commit fsync.
	d2 := mustOpenDurable(t, fs, DurableOptions{})
	if n := d2.DB().TotalRows(); n != 3 {
		t.Fatalf("%d rows, want 3", n)
	}
	d2.Close()
}

func TestWriteFileAtomic(t *testing.T) {
	fs := NewMemVFS()
	if err := WriteFileAtomic(fs, "blob", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(fs, "blob", []byte("v2 longer")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("blob")
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	data.ReadFrom(f)
	f.Close()
	if data.String() != "v2 longer" {
		t.Fatalf("content %q", data.String())
	}
	if _, err := fs.Size("blob" + tmpSuffix); err == nil {
		t.Fatal("temp file left behind")
	}
	// The replacement survives a power-loss crash (it was synced through).
	fs.Crash(CrashLoseUnsynced)
	f, err = fs.Open("blob")
	if err != nil {
		t.Fatalf("after crash: %v", err)
	}
	data.Reset()
	data.ReadFrom(f)
	f.Close()
	if data.String() != "v2 longer" {
		t.Fatalf("content after crash %q", data.String())
	}
}
