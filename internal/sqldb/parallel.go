package sqldb

// Morsel-driven intra-query parallelism.
//
// The planner's parallelize pass (run once per compiled plan, so cached
// plans stay immutable) wraps maximal row-local pipeline segments in a
// gatherNode. A segment is a chain of streaming operators — scans,
// filters, projections, and the probe sides of joins — whose left spine
// ends in a sequential scan of a base table: the "driver". At execution
// time a bounded worker pool claims fixed-size rowid ranges (morsels)
// of the driver via an atomic counter; each worker re-opens the segment
// with its evalCtx restricted to the claimed morsel, and the gather
// iterator merges worker outputs strictly in morsel order. Because
// morsels partition the heap in rowid order and are emitted in rowid
// order, parallel execution returns byte-identical results to serial
// execution — document order (heap order) and every downstream
// operator's input order are preserved unconditionally.
//
// Join build sides are loop-invariant across a segment's per-morsel
// re-opens, so they are computed once per execution in a sharedBuilds
// cache (whichever worker arrives first builds; sync.Once makes the
// rest wait) and, for large hash-join builds, partitioned across
// goroutines with an order-preserving bucket merge.
//
// Aggregations over a parallelizable chain run as parallel partial
// aggregation (parallelAggNode) when every aggregate merges exactly:
// COUNT/MIN/MAX always, SUM/AVG only over statically integer-typed
// arguments — float summation is not associative, and reordering it
// would break the battery's byte-identical guarantee.
//
// All mutable state lives in per-execution, per-worker scratchpads:
// worker runStats are folded into the parent's runStats when the
// workers are joined, so the existing metrics registry and EXPLAIN
// ANALYZE see the combined counters (Time then sums across workers and
// reads as CPU time, not wall time). Workers are always joined before
// the gather iterator reports end-of-stream, an error, or close — no
// worker goroutine ever outlives the database lock its query holds.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// morselSize is the number of heap slots (rowids) per morsel.
	morselSize = 1024
	// parallelScanThreshold is the minimum live row count for a scan to
	// drive a parallel segment; smaller tables stay serial.
	parallelScanThreshold = 2048
	// parallelBuildThreshold is the minimum estimated build-side row
	// count for a partitioned hash-join build.
	parallelBuildThreshold = 2048
)

// SetParallelism sets the degree-of-parallelism knob: 0 = automatic
// (GOMAXPROCS), 1 = serial, n>1 = at most n workers per query. The
// change publishes a new state with a bumped schema epoch so cached and
// prepared plans — which bake the parallel/serial decision in — are
// recompiled under the new setting.
func (db *Database) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	tx := db.beginWrite()
	if n == tx.st.parallelism {
		tx.abort()
		return
	}
	tx.st.parallelism = n
	tx.st.epoch++
	tx.commit(nil)
}

// Parallelism reports the configured knob (0 = automatic).
func (db *Database) Parallelism() int {
	return db.state.Load().parallelism
}

// dop resolves the state's effective degree of parallelism.
func (st *dbState) dop() int {
	if st.parallelism > 0 {
		return st.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// morselRange restricts one seqScanNode (matched by pointer identity)
// to the rowid range [lo, hi).
type morselRange struct {
	node   *seqScanNode
	lo, hi int
}

// sharedBuilds caches join build sides for one gather execution, keyed
// by operator node. Entries are created under the mutex; the build
// itself runs under the entry's sync.Once so concurrent workers block
// until the first finishes.
type sharedBuilds struct {
	mu sync.Mutex
	m  map[planNode]*buildEntry
}

type buildEntry struct {
	once sync.Once
	rows [][]Value            // nlJoin inner
	ht   map[string][][]Value // hashJoin table
	n    int64                // build-side row count
	err  error
}

func newSharedBuilds() *sharedBuilds {
	return &sharedBuilds{m: map[planNode]*buildEntry{}}
}

func (s *sharedBuilds) entry(n planNode) *buildEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[n]
	if e == nil {
		e = &buildEntry{}
		s.m[n] = e
	}
	return e
}

// hashRows builds the hash-join table over rows. With par > 1 and a
// large enough input the build is partitioned: contiguous chunks are
// hashed by concurrent goroutines into private maps, then merged in
// chunk order — so every bucket lists its rows in the original build
// order and probe results match the serial build exactly.
func hashRows(ctx *evalCtx, rows [][]Value, keys []compiledExpr, par int) (map[string][][]Value, error) {
	if par > len(rows)/morselSize {
		par = len(rows) / morselSize
	}
	if par <= 1 || len(rows) < parallelBuildThreshold {
		return hashChunk(ctx, rows, keys)
	}
	chunk := (len(rows) + par - 1) / par
	maps := make([]map[string][][]Value, par)
	errs := make([]error, par)
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			// Panic barrier: a partition build panic becomes this
			// partition's error so the merge below fails the query
			// instead of killing the process.
			defer func() {
				if r := recover(); r != nil {
					errs[p] = internalError(r)
				}
			}()
			maps[p], errs[p] = hashChunk(ctx, rows[lo:hi], keys)
		}(p, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ht := maps[0]
	for _, m := range maps[1:] {
		if m == nil {
			continue
		}
		for k, vs := range m {
			ht[k] = append(ht[k], vs...)
		}
	}
	return ht, nil
}

func hashChunk(ctx *evalCtx, rows [][]Value, keys []compiledExpr) (map[string][][]Value, error) {
	ht := make(map[string][][]Value, len(rows))
	keyBuf := make([]Value, len(keys))
	var pending int64
	for n, r := range rows {
		for i, ke := range keys {
			v, err := ke(ctx, r)
			if err != nil {
				return nil, err
			}
			keyBuf[i] = v
		}
		k, ok := hashKey(keyBuf)
		if !ok {
			continue
		}
		// The rows were charged when the build input materialized; the
		// table itself costs roughly key bytes + bucket bookkeeping.
		pending += int64(len(k)) + 48
		if n&1023 == 1023 {
			if err := ctx.mem.charge(pending); err != nil {
				return nil, err
			}
			pending = 0
		}
		ht[k] = append(ht[k], r)
	}
	if err := ctx.mem.charge(pending); err != nil {
		return nil, err
	}
	return ht, nil
}

// ---------------------------------------------------------------------------
// Gather: order-preserving exchange over a morsel-parallel segment

type gatherNode struct {
	seg    planNode     // the parallel segment (gather's only child)
	driver *seqScanNode // the scan whose heap is split into morsels
	dop    int          // plan-time worker cap
}

func (n *gatherNode) sch() schema      { return n.seg.sch() }
func (n *gatherNode) estRows() float64 { return n.seg.estRows() }

func (n *gatherNode) open(ctx *evalCtx) (rowIter, error) {
	// Morsels must cover the heap of the version this snapshot sees, not
	// the plan-time version — the table may have grown since planning.
	total := int(ctx.resolveTable(n.driver.tbl).slotCount())
	nMorsels := (total + morselSize - 1) / morselSize
	workers := n.dop
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers <= 1 {
		// Run-time serial fallback (the table shrank, or dop is 1).
		return openNode(ctx, n.seg)
	}
	g := &gatherIter{
		node:       n,
		ctx:        ctx,
		nMorsels:   nMorsels,
		workers:    workers,
		results:    make(chan morselOut, nMorsels+workers),
		pending:    map[int][][]Value{},
		workerRows: make([]int64, workers),
	}
	g.start(total)
	return g, nil
}

type morselOut struct {
	idx  int
	rows [][]Value
	err  error
}

type gatherIter struct {
	node     *gatherNode
	ctx      *evalCtx
	nMorsels int
	workers  int

	results chan morselOut
	cancel  atomic.Bool
	wg      sync.WaitGroup

	// Reorder state: morsels are emitted strictly in index order.
	pending map[int][][]Value
	nextIdx int
	buf     [][]Value
	bufPos  int

	workerStats []*runStats
	workerRows  []int64
	joined      bool
}

func (g *gatherIter) start(total int) {
	shared := newSharedBuilds()
	var next atomic.Int64
	if st := g.ctx.stats; st != nil {
		g.workerStats = make([]*runStats, g.workers)
		for w := range g.workerStats {
			g.workerStats[w] = &runStats{meta: st.meta, ops: make([]OpStats, len(st.ops)), timed: st.timed}
		}
	}
	for w := 0; w < g.workers; w++ {
		g.wg.Add(1)
		go func(w int) {
			defer g.wg.Done()
			// Morsel-worker panic barrier: a panic in this worker
			// cancels its siblings and surfaces as a typed ErrInternal
			// through the ordinary error path, so only this query fails
			// — the channel is buffered for the worst case, the send
			// never blocks, and Gather's join still drains every worker.
			claimed := -1
			defer func() {
				if r := recover(); r != nil {
					g.cancel.Store(true)
					g.results <- morselOut{idx: claimed, err: internalError(r)}
				}
			}()
			wctx := &evalCtx{snap: g.ctx.snap, qctx: g.ctx.qctx, params: g.ctx.params, outer: g.ctx.outer, shared: shared, vec: g.ctx.vec, mem: g.ctx.mem}
			if g.workerStats != nil {
				wctx.stats = g.workerStats[w]
			}
			for !g.cancel.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= g.nMorsels {
					return
				}
				claimed = idx
				if f := testWorkerPanic.Load(); f != nil {
					(*f)(idx)
				}
				lo := idx * morselSize
				hi := lo + morselSize
				if hi > total {
					hi = total
				}
				wctx.morsel = &morselRange{node: g.node.driver, lo: lo, hi: hi}
				rows, err := materialize(wctx, g.node.seg)
				if err != nil {
					g.cancel.Store(true)
					g.results <- morselOut{idx: idx, err: err}
					return
				}
				g.workerRows[w] += int64(len(rows))
				g.results <- morselOut{idx: idx, rows: rows}
			}
		}(w)
	}
}

// testWorkerPanic, when non-nil, runs in every gather worker right
// after it claims a morsel; the fault-injection tests use it to panic
// inside a worker and assert the blast radius is one query.
var testWorkerPanic atomic.Pointer[func(morselIdx int)]

func (g *gatherIter) next() ([]Value, error) {
	for {
		if g.bufPos < len(g.buf) {
			r := g.buf[g.bufPos]
			g.bufPos++
			return r, nil
		}
		if g.nextIdx >= g.nMorsels {
			g.join()
			return nil, nil
		}
		if rows, ok := g.pending[g.nextIdx]; ok {
			delete(g.pending, g.nextIdx)
			g.buf, g.bufPos = rows, 0
			g.nextIdx++
			continue
		}
		out := <-g.results
		if out.err != nil {
			g.join()
			return nil, out.err
		}
		g.pending[out.idx] = out.rows
	}
}

func (g *gatherIter) close() { g.join() }

// join cancels outstanding work, waits for every worker to exit, and
// folds the per-worker scratchpads into the parent execution's stats.
// The result channel is buffered for the worst case, so workers never
// block on send and always observe the cancel flag.
func (g *gatherIter) join() {
	if g.joined {
		return
	}
	g.joined = true
	g.cancel.Store(true)
	g.wg.Wait()
	st := g.ctx.stats
	if st == nil {
		return
	}
	for _, wrs := range g.workerStats {
		for i := range wrs.ops {
			o, w := &st.ops[i], &wrs.ops[i]
			o.Opens += w.Opens
			o.Rows += w.Rows
			o.Nexts += w.Nexts
			o.BuildRows += w.BuildRows
			o.Batches += w.Batches
			o.InRows += w.InRows
			o.Time += w.Time
		}
	}
	if s := g.ctx.opStat(g.node); s != nil {
		s.Workers = g.workers
		s.WorkerRows = append([]int64(nil), g.workerRows...)
	}
}

// ---------------------------------------------------------------------------
// Parallel partial aggregation

type parallelAggNode struct {
	seg     planNode     // the aggregation input chain
	driver  *seqScanNode // its morsel source
	groupBy []compiledExpr
	aggs    []aggSpec
	schema  schema
	dop     int
}

func (n *parallelAggNode) sch() schema { return n.schema }

func (n *parallelAggNode) estRows() float64 {
	if len(n.groupBy) == 0 {
		return 1
	}
	return n.seg.estRows()/4 + 1
}

// aggPos is a row's global position: serial execution visits morsels in
// ascending index order, so (morsel, seq-within-morsel) lexicographic
// order is exactly the serial visit order.
type aggPos struct {
	morsel int
	seq    int64
}

func (a aggPos) before(b aggPos) bool {
	if a.morsel != b.morsel {
		return a.morsel < b.morsel
	}
	return a.seq < b.seq
}

// partialGroup is one group's per-worker partial state.
type partialGroup struct {
	keys   []Value
	states []*aggState
	first  aggPos // earliest input row that opened this group
}

type partialResult struct {
	groups map[string]*partialGroup
	err    error
}

func (n *parallelAggNode) newStates() []*aggState {
	st := make([]*aggState, len(n.aggs))
	for i := range st {
		st[i] = &aggState{}
	}
	return st
}

// foldRow folds one input row at position pos into groups.
func (n *parallelAggNode) foldRow(ctx *evalCtx, row []Value, pos aggPos, groups map[string]*partialGroup) error {
	keys := make([]Value, len(n.groupBy))
	var err error
	for i, g := range n.groupBy {
		keys[i], err = g(ctx, row)
		if err != nil {
			return err
		}
	}
	k := distinctKey(keys)
	grp := groups[k]
	if grp == nil {
		if err := ctx.mem.charge(valuesBytes(keys) + int64(len(k)) + int64(len(n.aggs))*64 + 48); err != nil {
			return err
		}
		grp = &partialGroup{keys: keys, states: n.newStates(), first: pos}
		groups[k] = grp
	}
	for i, spec := range n.aggs {
		if spec.arg == nil { // COUNT(*)
			grp.states[i].count++
			continue
		}
		v, err := spec.arg(ctx, row)
		if err != nil {
			return err
		}
		grp.states[i].add(v, spec.distinct)
	}
	return nil
}

// fold drains one opened segment iterator into groups, tagging rows
// with positions starting at (morselIdx, 0).
func (n *parallelAggNode) fold(ctx *evalCtx, it rowIter, morselIdx int, groups map[string]*partialGroup) error {
	var seq int64
	for {
		row, err := it.next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		if err := n.foldRow(ctx, row, aggPos{morsel: morselIdx, seq: seq}, groups); err != nil {
			return err
		}
		seq++
	}
}

// foldVec is fold over a batch pipeline: positions advance per selected
// row in batch order, which is exactly the row path's visit order.
func (n *parallelAggNode) foldVec(ctx *evalCtx, vi vecIter, morselIdx int, groups map[string]*partialGroup) error {
	var seq int64
	for {
		b, err := vi.nextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for k, cnt := 0, b.n(); k < cnt; k++ {
			if err := n.foldRow(ctx, b.row(k), aggPos{morsel: morselIdx, seq: seq}, groups); err != nil {
				return err
			}
			seq++
		}
	}
}

// foldSeg opens the segment (batch-at-a-time when possible) restricted
// to the ctx's morsel and folds it into groups.
func (n *parallelAggNode) foldSeg(ctx *evalCtx, morselIdx int, groups map[string]*partialGroup) error {
	if ctx.vec && vecCapable(n.seg) {
		vi, err := openVec(ctx, n.seg)
		if err != nil {
			return err
		}
		err = n.foldVec(ctx, vi, morselIdx, groups)
		vi.close()
		return err
	}
	it, err := openNode(ctx, n.seg)
	if err != nil {
		return err
	}
	err = n.fold(ctx, it, morselIdx, groups)
	it.close()
	return err
}

func (n *parallelAggNode) open(ctx *evalCtx) (rowIter, error) {
	total := int(ctx.resolveTable(n.driver.tbl).slotCount())
	nMorsels := (total + morselSize - 1) / morselSize
	workers := n.dop
	if workers > nMorsels {
		workers = nMorsels
	}

	var groups map[string]*partialGroup
	if workers <= 1 {
		// Serial fallback: one fold over the whole segment.
		groups = map[string]*partialGroup{}
		if err := n.foldSeg(ctx, 0, groups); err != nil {
			return nil, err
		}
	} else {
		var err error
		groups, err = n.parallelFold(ctx, total, nMorsels, workers)
		if err != nil {
			return nil, err
		}
	}

	// Global aggregation over an empty input produces one row.
	if len(n.groupBy) == 0 && len(groups) == 0 {
		groups[""] = &partialGroup{states: n.newStates()}
	}

	// Emit groups in serial first-occurrence order.
	ordered := make([]*partialGroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].first.before(ordered[j].first) })
	out := make([][]Value, 0, len(ordered))
	for _, grp := range ordered {
		row := make([]Value, 0, len(n.groupBy)+len(n.aggs))
		row = append(row, grp.keys...)
		for i, spec := range n.aggs {
			row = append(row, grp.states[i].result(spec.name))
		}
		out = append(out, row)
	}
	return &sliceIter{rows: out}, nil
}

// parallelFold runs the worker pool: each worker folds its claimed
// morsels into a private group map; the maps are merged here (exact by
// construction — see aggState.merge) keeping the earliest first-seen
// position per group.
func (n *parallelAggNode) parallelFold(ctx *evalCtx, total, nMorsels, workers int) (map[string]*partialGroup, error) {
	shared := newSharedBuilds()
	var next atomic.Int64
	var cancel atomic.Bool
	results := make(chan partialResult, workers)
	var workerStats []*runStats
	if st := ctx.stats; st != nil {
		workerStats = make([]*runStats, workers)
		for w := range workerStats {
			workerStats[w] = &runStats{meta: st.meta, ops: make([]OpStats, len(st.ops)), timed: st.timed}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Panic barrier (see gatherIter.start): the channel holds
			// one slot per worker, so the send never blocks.
			defer func() {
				if r := recover(); r != nil {
					cancel.Store(true)
					results <- partialResult{err: internalError(r)}
				}
			}()
			wctx := &evalCtx{snap: ctx.snap, qctx: ctx.qctx, params: ctx.params, outer: ctx.outer, shared: shared, vec: ctx.vec, mem: ctx.mem}
			if workerStats != nil {
				wctx.stats = workerStats[w]
			}
			groups := map[string]*partialGroup{}
			for !cancel.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= nMorsels {
					break
				}
				lo := idx * morselSize
				hi := lo + morselSize
				if hi > total {
					hi = total
				}
				wctx.morsel = &morselRange{node: n.driver, lo: lo, hi: hi}
				err := n.foldSeg(wctx, idx, groups)
				if err != nil {
					cancel.Store(true)
					results <- partialResult{err: err}
					return
				}
			}
			results <- partialResult{groups: groups}
		}(w)
	}
	wg.Wait()
	close(results)

	if st := ctx.stats; st != nil {
		for _, wrs := range workerStats {
			for i := range wrs.ops {
				o, ww := &st.ops[i], &wrs.ops[i]
				o.Opens += ww.Opens
				o.Rows += ww.Rows
				o.Nexts += ww.Nexts
				o.BuildRows += ww.BuildRows
				o.Batches += ww.Batches
				o.InRows += ww.InRows
				o.Time += ww.Time
			}
		}
		if s := ctx.opStat(n); s != nil {
			s.Workers = workers
		}
	}

	global := map[string]*partialGroup{}
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		for k, g := range res.groups {
			gg := global[k]
			if gg == nil {
				global[k] = g
				continue
			}
			if g.first.before(gg.first) {
				gg.first = g.first
			}
			for i := range gg.states {
				gg.states[i].merge(g.states[i])
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return global, nil
}

// ---------------------------------------------------------------------------
// The parallelize pass

// parallelize decorates a freshly compiled top-level plan with parallel
// operators. It runs exactly once per compiled plan, before the plan is
// cached — parallel decisions (like everything else in a plan) are
// immutable afterwards; changing the knob bumps the schema epoch and
// recompiles.
func parallelize(st *dbState, root planNode) planNode {
	dop := st.dop()
	if dop <= 1 {
		return root
	}
	return parallelizeNode(root, dop)
}

func parallelizeNode(n planNode, dop int) planNode {
	// Aggregation over a parallelizable chain: parallel partial
	// aggregation, but only when every aggregate merges exactly.
	if a, ok := n.(*aggNode); ok {
		if d := parallelChainDriver(a.in); d != nil && allExactAggs(a.aggs) {
			markParallelBuilds(a.in, dop)
			return &parallelAggNode{
				seg: a.in, driver: d,
				groupBy: a.groupBy, aggs: a.aggs, schema: a.schema, dop: dop,
			}
		}
	}
	if d := parallelChainDriver(n); d != nil {
		markParallelBuilds(n, dop)
		return &gatherNode{seg: n, driver: d, dop: dop}
	}
	switch n := n.(type) {
	case *filterNode:
		n.in = parallelizeNode(n.in, dop)
	case *projectNode:
		n.in = parallelizeNode(n.in, dop)
	case *cutNode:
		n.in = parallelizeNode(n.in, dop)
	case *sortNode:
		n.in = parallelizeNode(n.in, dop)
	case *limitNode:
		n.in = parallelizeNode(n.in, dop)
	case *distinctNode:
		n.in = parallelizeNode(n.in, dop)
	case *aggNode:
		n.in = parallelizeNode(n.in, dop)
	case *unionAllNode:
		for i := range n.parts {
			n.parts[i] = parallelizeNode(n.parts[i], dop)
		}
	case *nlJoinNode:
		n.left = parallelizeNode(n.left, dop)
	case *indexJoinNode:
		n.left = parallelizeNode(n.left, dop)
	case *hashJoinNode:
		n.left = parallelizeNode(n.left, dop)
		if n.right.estRows() >= parallelBuildThreshold {
			n.buildPar = dop
		}
	}
	return n
}

// parallelChainDriver walks a candidate segment's left spine and
// returns the driving sequential scan, or nil when the segment cannot
// be morsel-parallelized. Chain members are exactly the row-local
// streaming operators: scans, filters, projections, column cuts, and
// the probe (left) sides of joins. Order-sensitive or stateful
// operators — sort, limit, distinct, aggregation, union — and
// non-heap sources (index scans, derived tables, VALUES) break the
// chain.
func parallelChainDriver(n planNode) *seqScanNode {
	switch n := n.(type) {
	case *seqScanNode:
		if n.tbl.live >= parallelScanThreshold {
			return n
		}
		return nil
	case *filterNode:
		return parallelChainDriver(n.in)
	case *projectNode:
		return parallelChainDriver(n.in)
	case *cutNode:
		return parallelChainDriver(n.in)
	case *hashJoinNode:
		return parallelChainDriver(n.left)
	case *indexJoinNode:
		return parallelChainDriver(n.left)
	case *nlJoinNode:
		return parallelChainDriver(n.left)
	}
	return nil
}

// markParallelBuilds enables the partitioned hash-join build for large
// build sides anywhere inside a parallel segment.
func markParallelBuilds(n planNode, dop int) {
	if hj, ok := n.(*hashJoinNode); ok {
		if hj.right.estRows() >= parallelBuildThreshold {
			hj.buildPar = dop
		}
	}
	for _, c := range planChildren(n) {
		markParallelBuilds(c, dop)
	}
}

// allExactAggs reports whether every aggregate in the list merges
// exactly across partial states (see aggSpec.exact).
func allExactAggs(aggs []aggSpec) bool {
	for _, a := range aggs {
		if !a.exact {
			return false
		}
	}
	return true
}
