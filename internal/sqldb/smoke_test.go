package sqldb

import (
	"testing"
)

func mustQuery(t *testing.T, db *Database, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func TestSmokeEndToEnd(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, dept TEXT, salary REAL)`)
	db.MustExec(`CREATE TABLE dept (name TEXT PRIMARY KEY, city TEXT)`)
	db.MustExec(`INSERT INTO emp VALUES (1,'ann','eng',100.0),(2,'bob','eng',90.0),(3,'carol','sales',80.0),(4,'dan',NULL,70.0)`)
	db.MustExec(`INSERT INTO dept VALUES ('eng','berlin'),('sales','paris')`)

	rows := mustQuery(t, db, `SELECT name FROM emp WHERE salary > 75 ORDER BY name`)
	if rows.Len() != 3 {
		t.Fatalf("expected 3 rows, got %d: %v", rows.Len(), rows.Data)
	}
	if rows.Data[0][0].Text() != "ann" || rows.Data[2][0].Text() != "carol" {
		t.Fatalf("bad order: %v", rows.Data)
	}

	// Join with aggregation.
	rows = mustQuery(t, db, `
		SELECT d.city, COUNT(*) AS n, AVG(e.salary) AS avg_sal
		FROM emp e, dept d
		WHERE e.dept = d.name
		GROUP BY d.city
		ORDER BY n DESC`)
	if rows.Len() != 2 {
		t.Fatalf("expected 2 groups, got %d: %v", rows.Len(), rows.Data)
	}
	if rows.Data[0][0].Text() != "berlin" || rows.Data[0][1].Int() != 2 {
		t.Fatalf("bad group row: %v", rows.Data[0])
	}
	if rows.Data[0][2].Float() != 95.0 {
		t.Fatalf("bad avg: %v", rows.Data[0][2])
	}

	// Subqueries.
	rows = mustQuery(t, db, `SELECT name FROM emp WHERE dept IN (SELECT name FROM dept WHERE city = 'paris')`)
	if rows.Len() != 1 || rows.Data[0][0].Text() != "carol" {
		t.Fatalf("IN subquery: %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT name FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE d.name = e.dept AND d.city = 'berlin') ORDER BY 1`)
	if rows.Len() != 2 || rows.Data[0][0].Text() != "ann" {
		t.Fatalf("EXISTS: %v", rows.Data)
	}

	// NULL semantics.
	rows = mustQuery(t, db, `SELECT name FROM emp WHERE dept IS NULL`)
	if rows.Len() != 1 || rows.Data[0][0].Text() != "dan" {
		t.Fatalf("IS NULL: %v", rows.Data)
	}

	// Parameters, LIKE, LIMIT.
	rows = mustQuery(t, db, `SELECT name FROM emp WHERE name LIKE ? ORDER BY name LIMIT 1`, NewText("%a%"))
	if rows.Len() != 1 || rows.Data[0][0].Text() != "ann" {
		t.Fatalf("LIKE+LIMIT: %v", rows.Data)
	}

	// Update / delete.
	n, err := db.Exec(`UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'`)
	if err != nil || n != 2 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	v, err := db.QueryScalar(`SELECT SUM(salary) FROM emp WHERE dept = 'eng'`)
	if err != nil || v.Float() != 210 {
		t.Fatalf("sum after update: %v %v", v, err)
	}
	n, err = db.Exec(`DELETE FROM emp WHERE salary < 75`)
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}

	// UNION ALL.
	rows = mustQuery(t, db, `SELECT name FROM emp WHERE dept='eng' UNION ALL SELECT name FROM emp WHERE dept='sales' ORDER BY 1`)
	if rows.Len() != 3 {
		t.Fatalf("union: %v", rows.Data)
	}

	// Secondary index + prepared statement.
	db.MustExec(`CREATE INDEX emp_dept ON emp (dept)`)
	prep, err := db.Prepare(`SELECT COUNT(*) FROM emp WHERE dept = ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	r2, err := prep.Query(NewText("eng"))
	if err != nil || r2.Data[0][0].Int() != 2 {
		t.Fatalf("prepared: %v %v", r2, err)
	}

	// LEFT JOIN.
	rows = mustQuery(t, db, `
		SELECT e.name, d.city FROM emp e LEFT JOIN dept d ON e.dept = d.name ORDER BY e.name`)
	if rows.Len() != 3 {
		t.Fatalf("left join rows: %v", rows.Data)
	}
}
