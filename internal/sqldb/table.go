package sqldb

// table is the heap storage for one relation: a slice of rows addressed
// by rowid, with nil tombstones for deleted rows. Secondary structures
// (B-tree indexes) reference rows by rowid.
type table struct {
	def     *TableDef
	rows    [][]Value
	live    int
	indexes []*tableIndex
	pkIndex *tableIndex // non-nil when the table has a primary key
	bytes   int64       // rough payload size, maintained incrementally
}

type tableIndex struct {
	def  IndexDef
	tree *btree
}

func newTable(def *TableDef) *table {
	t := &table{def: def}
	if len(def.PrimaryKey) > 0 {
		pk := &tableIndex{
			def: IndexDef{
				Name:    def.Name + "_pk",
				Table:   def.Name,
				Columns: def.PrimaryKey,
				Unique:  true,
			},
			tree: newBtree(),
		}
		t.pkIndex = pk
		t.indexes = append(t.indexes, pk)
	}
	return t
}

// valueBytes estimates the storage footprint of a value, used for the
// database-size experiment (T1).
func valueBytes(v Value) int64 {
	switch v.T {
	case TypeNull:
		return 1
	case TypeInt, TypeFloat, TypeBool:
		return 8
	case TypeText:
		return int64(len(v.S)) + 4
	case TypeBlob:
		return int64(len(v.B)) + 4
	default:
		return 8
	}
}

func (t *table) rowBytes(row []Value) int64 {
	var n int64
	for _, v := range row {
		n += valueBytes(v)
	}
	return n
}

// indexKey extracts the key columns for idx from a row.
func indexKey(idx *tableIndex, row []Value) []Value {
	key := make([]Value, len(idx.def.Columns))
	for i, c := range idx.def.Columns {
		key[i] = row[c]
	}
	return key
}

// insert appends a row (already coerced and validated) and maintains all
// indexes. It returns the new rowid.
func (t *table) insert(row []Value) (int64, error) {
	if t.pkIndex != nil {
		key := indexKey(t.pkIndex, row)
		if rid, ok := t.lookupUnique(t.pkIndex, key); ok && t.rows[rid] != nil {
			return 0, errorf("table %s: duplicate primary key %v", t.def.Name, key)
		}
	}
	for _, idx := range t.indexes {
		if idx.def.Unique && idx != t.pkIndex {
			key := indexKey(idx, row)
			if rid, ok := t.lookupUnique(idx, key); ok && t.rows[rid] != nil {
				return 0, errorf("table %s: unique index %s violated", t.def.Name, idx.def.Name)
			}
		}
	}
	rid := int64(len(t.rows))
	t.rows = append(t.rows, row)
	t.live++
	t.bytes += t.rowBytes(row)
	for _, idx := range t.indexes {
		idx.tree.Insert(indexKey(idx, row), rid)
	}
	return rid, nil
}

// lookupUnique finds a rowid whose full index key equals key.
func (t *table) lookupUnique(idx *tableIndex, key []Value) (int64, bool) {
	c := idx.tree.seek(key)
	if !c.valid() {
		return 0, false
	}
	e := c.entry()
	if prefixCompare(e.key, key) != 0 || len(e.key) != len(key) {
		return 0, false
	}
	return e.rid, true
}

// delete tombstones the row at rid and removes index entries.
func (t *table) delete(rid int64) {
	row := t.rows[rid]
	if row == nil {
		return
	}
	for _, idx := range t.indexes {
		idx.tree.Delete(indexKey(idx, row), rid)
	}
	t.bytes -= t.rowBytes(row)
	t.rows[rid] = nil
	t.live--
}

// undelete restores a just-deleted row at its original rowid,
// re-adding index entries. It is the exact inverse of delete, used to
// roll a statement back when its commit cannot be logged; the caller
// guarantees row is the image delete removed from rid.
func (t *table) undelete(rid int64, row []Value) {
	if t.rows[rid] != nil {
		return
	}
	t.rows[rid] = row
	t.live++
	t.bytes += t.rowBytes(row)
	for _, idx := range t.indexes {
		idx.tree.Insert(indexKey(idx, row), rid)
	}
}

// update replaces the row at rid, maintaining indexes.
func (t *table) update(rid int64, row []Value) error {
	old := t.rows[rid]
	if old == nil {
		return errorf("table %s: update of deleted row %d", t.def.Name, rid)
	}
	for _, idx := range t.indexes {
		if !idx.def.Unique {
			continue
		}
		newKey := indexKey(idx, row)
		if compareKeys(newKey, indexKey(idx, old)) == 0 {
			continue
		}
		if other, ok := t.lookupUnique(idx, newKey); ok && other != rid && t.rows[other] != nil {
			return errorf("table %s: unique index %s violated by update", t.def.Name, idx.def.Name)
		}
	}
	for _, idx := range t.indexes {
		idx.tree.Delete(indexKey(idx, old), rid)
	}
	t.bytes += t.rowBytes(row) - t.rowBytes(old)
	t.rows[rid] = row
	for _, idx := range t.indexes {
		idx.tree.Insert(indexKey(idx, row), rid)
	}
	return nil
}

// addIndex builds a new secondary index over existing rows.
func (t *table) addIndex(def IndexDef) (*tableIndex, error) {
	idx := &tableIndex{def: def, tree: newBtree()}
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		key := indexKey(idx, row)
		if def.Unique {
			if other, ok := t.lookupUnique(idx, key); ok && t.rows[other] != nil {
				return nil, errorf("table %s: cannot build unique index %s: duplicate key %v", t.def.Name, def.Name, key)
			}
		}
		idx.tree.Insert(key, int64(rid))
	}
	t.indexes = append(t.indexes, idx)
	return idx, nil
}

// findIndex returns an index whose leading key columns cover cols in
// order, preferring the shortest such index.
func (t *table) findIndex(cols []int) *tableIndex {
	var best *tableIndex
	for _, idx := range t.indexes {
		if len(idx.def.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if idx.def.Columns[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(idx.def.Columns) < len(best.def.Columns)) {
			best = idx
		}
	}
	return best
}
