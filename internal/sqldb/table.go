package sqldb

import (
	"sync"
	"sync/atomic"
)

// table is one published version of a relation's heap storage: rows
// addressed by rowid, with nil tombstones for deleted rows, held in
// fixed-size pages. Secondary structures (B-tree indexes) reference
// rows by rowid.
//
// Versions are copy-on-write. A writer calls beginWrite for a private
// version at a fresh generation; deletes and updates copy the touched
// page on first write, while inserts fill slots at rowids beyond every
// published version's count — slots no published reader ever visits —
// so appends go straight into the shared tail page without copying.
// Published versions are immutable below their own count and are read
// without any lock.
type table struct {
	def     *TableDef
	key     string // lowercased name: the catalog key, used for snapshot resolution
	gen     uint64
	pages   []*heapPage
	count   int64 // allocated row slots; the next rowid
	live    int
	indexes []*tableIndex
	pkIndex *tableIndex // non-nil when the table has a primary key
	bytes   int64       // rough payload size, maintained incrementally
	// sealq collects pages that became full (immutable) during the
	// current writer transaction; commit hands them to the buffer pool
	// once the version publishes. Never copied by beginWrite.
	sealq []*heapPage
}

const (
	heapPageShift = 9
	heapPageSize  = 1 << heapPageShift
	heapPageMask  = heapPageSize - 1
)

// pageFrame is the in-memory image of a page's row slots. The row
// array is a true array (not a slice) so a frame copy duplicates every
// slot header and concurrent readers of the old frame never observe
// the copy.
type pageFrame struct {
	rows [heapPageSize][]Value
}

// heapPage holds a fixed run of row slots behind one level of
// indirection: res points at the resident frame, or is nil when the
// buffer pool evicted the page to the spill file. Identity matters —
// copy-on-write versions share page objects, and the pool tracks
// residency per object.
type heapPage struct {
	gen uint64
	res atomic.Pointer[pageFrame]
	// mu serializes fault-ins of this page (never held together with
	// another page's mu).
	mu   sync.Mutex
	pins atomic.Int32
	ref  atomic.Bool // clock reference bit
	// Pool bookkeeping, owned by the pageStore (see bufferpool.go).
	store  atomic.Pointer[pageStore]
	pooled bool
	seal   uint64 // commit seq whose WAL fsync must cover eviction
	pid    int64  // 1-based first spill slot; 0 = no on-disk copy yet
	slots  int32  // spill chain length in file slots
}

// newHeapPage allocates a resident page for generation gen.
func newHeapPage(gen uint64) *heapPage {
	p := &heapPage{gen: gen}
	p.res.Store(&pageFrame{})
	return p
}

// frame returns the page's resident frame, faulting it in from the
// spill file when evicted (panics pageIOPanic on IO failure, which the
// executor barriers convert to ErrPageIO).
func (p *heapPage) frame() *pageFrame {
	if f := p.res.Load(); f != nil {
		return f
	}
	ps := p.store.Load()
	if ps == nil {
		panic(pageIOPanic{errorf("%w: evicted page has no store", ErrPageIO)})
	}
	return ps.faultIn(p)
}

type tableIndex struct {
	def  IndexDef
	tree *btree
}

func newTable(def *TableDef, gen uint64) *table {
	t := &table{def: def, key: lowerName(def.Name), gen: gen}
	if len(def.PrimaryKey) > 0 {
		pk := &tableIndex{
			def: IndexDef{
				Name:    def.Name + "_pk",
				Table:   def.Name,
				Columns: def.PrimaryKey,
				Unique:  true,
			},
			tree: newBtree(gen),
		}
		t.pkIndex = pk
		t.indexes = append(t.indexes, pk)
	}
	return t
}

// beginWrite returns a private version of the table for a writer at
// generation gen. The version shares pages and index nodes with the
// receiver until individually written.
func (t *table) beginWrite(gen uint64) *table {
	nt := &table{
		def:   t.def,
		key:   t.key,
		gen:   gen,
		pages: append([]*heapPage(nil), t.pages...),
		count: t.count,
		live:  t.live,
		bytes: t.bytes,
	}
	nt.indexes = make([]*tableIndex, len(t.indexes))
	for i, idx := range t.indexes {
		nidx := &tableIndex{def: idx.def, tree: idx.tree.beginWrite(gen)}
		nt.indexes[i] = nidx
		if idx == t.pkIndex {
			nt.pkIndex = nidx
		}
	}
	return nt
}

// row returns the row at rid (nil when deleted). rid must be < count.
// Unpinned: the frame pointer keeps the page's rows alive even if the
// pool evicts the page immediately after.
func (t *table) row(rid int64) []Value {
	return t.pages[rid>>heapPageShift].frame().rows[rid&heapPageMask]
}

// rowRef is row for scans: it keeps the containing page pinned in *ref
// across consecutive calls, re-pinning only when the scan crosses into
// another page. Callers release the ref when the scan closes.
func (t *table) rowRef(rid int64, ref *pageRef) []Value {
	p := t.pages[rid>>heapPageShift]
	if ref.p != p {
		ref.release()
		f := p.pin()
		ref.p, ref.f = p, f
	}
	return ref.f.rows[rid&heapPageMask]
}

// slotCount returns the number of allocated rowids; rowids in [0,
// slotCount) are addressable and nil slots are tombstones.
func (t *table) slotCount() int64 { return t.count }

// fullPages returns how many of the table's pages are completely
// allocated (every slot's rowid is below count) and therefore sealed
// or seal-eligible.
func (t *table) fullPages() int {
	return int(t.count >> heapPageShift)
}

// noteSealable queues a full page for the buffer pool; commit
// registers it once the version publishes.
func (t *table) noteSealable(p *heapPage) {
	t.sealq = append(t.sealq, p)
}

// writableFrame returns the frame of the page holding rid, copying the
// page first when it belongs to an older generation. Only delete and
// update go through here: they overwrite slots below a published count
// that lock-free readers may be visiting. A copied full page is
// immediately seal-eligible (it can never fill further).
func (t *table) writableFrame(rid int64) *pageFrame {
	pi := rid >> heapPageShift
	p := t.pages[pi]
	if p.gen == t.gen {
		// Created by this writer: never sealed, so always resident.
		return p.res.Load()
	}
	src := p.frame()
	np := &heapPage{gen: t.gen}
	np.res.Store(&pageFrame{rows: src.rows})
	t.pages[pi] = np
	if int(pi) < t.fullPages() {
		t.noteSealable(np)
	}
	return np.res.Load()
}

// valueBytes estimates the storage footprint of a value, used for the
// database-size experiment (T1).
func valueBytes(v Value) int64 {
	switch v.T {
	case TypeNull:
		return 1
	case TypeInt, TypeFloat, TypeBool:
		return 8
	case TypeText:
		return int64(len(v.S)) + 4
	case TypeBlob:
		return int64(len(v.B)) + 4
	default:
		return 8
	}
}

func (t *table) rowBytes(row []Value) int64 {
	var n int64
	for _, v := range row {
		n += valueBytes(v)
	}
	return n
}

// indexKey extracts the key columns for idx from a row.
func indexKey(idx *tableIndex, row []Value) []Value {
	key := make([]Value, len(idx.def.Columns))
	for i, c := range idx.def.Columns {
		key[i] = row[c]
	}
	return key
}

// insert appends a row (already coerced and validated) and maintains all
// indexes. It returns the new rowid.
func (t *table) insert(row []Value) (int64, error) {
	if t.pkIndex != nil {
		key := indexKey(t.pkIndex, row)
		if rid, ok := t.lookupUnique(t.pkIndex, key); ok && t.row(rid) != nil {
			return 0, errorf("table %s: duplicate primary key %v", t.def.Name, key)
		}
	}
	for _, idx := range t.indexes {
		if idx.def.Unique && idx != t.pkIndex {
			key := indexKey(idx, row)
			if rid, ok := t.lookupUnique(idx, key); ok && t.row(rid) != nil {
				return 0, errorf("table %s: unique index %s violated", t.def.Name, idx.def.Name)
			}
		}
	}
	rid := t.count
	pi := int(rid >> heapPageShift)
	if pi == len(t.pages) {
		t.pages = append(t.pages, newHeapPage(t.gen))
		if pi > 0 {
			// The previous tail page just became (or was already)
			// full; queue it for the pool. Registration dedupes.
			t.noteSealable(t.pages[pi-1])
		}
	}
	// The slot is beyond every published count, so writing the shared
	// tail page directly is invisible to readers (see type comment).
	// The tail page is never full, hence never sealed, hence resident.
	t.pages[pi].res.Load().rows[rid&heapPageMask] = row
	t.count++
	t.live++
	t.bytes += t.rowBytes(row)
	for _, idx := range t.indexes {
		idx.tree.Insert(indexKey(idx, row), rid)
	}
	return rid, nil
}

// lookupUnique finds a rowid whose full index key equals key.
func (t *table) lookupUnique(idx *tableIndex, key []Value) (int64, bool) {
	c := idx.tree.seek(key)
	if !c.valid() {
		return 0, false
	}
	e := c.entry()
	if prefixCompare(e.key, key) != 0 || len(e.key) != len(key) {
		return 0, false
	}
	return e.rid, true
}

// delete tombstones the row at rid and removes index entries.
func (t *table) delete(rid int64) {
	row := t.row(rid)
	if row == nil {
		return
	}
	for _, idx := range t.indexes {
		idx.tree.Delete(indexKey(idx, row), rid)
	}
	t.bytes -= t.rowBytes(row)
	t.writableFrame(rid).rows[rid&heapPageMask] = nil
	t.live--
}

// update replaces the row at rid, maintaining indexes.
func (t *table) update(rid int64, row []Value) error {
	old := t.row(rid)
	if old == nil {
		return errorf("table %s: update of deleted row %d", t.def.Name, rid)
	}
	for _, idx := range t.indexes {
		if !idx.def.Unique {
			continue
		}
		newKey := indexKey(idx, row)
		if compareKeys(newKey, indexKey(idx, old)) == 0 {
			continue
		}
		if other, ok := t.lookupUnique(idx, newKey); ok && other != rid && t.row(other) != nil {
			return errorf("table %s: unique index %s violated by update", t.def.Name, idx.def.Name)
		}
	}
	for _, idx := range t.indexes {
		idx.tree.Delete(indexKey(idx, old), rid)
	}
	t.bytes += t.rowBytes(row) - t.rowBytes(old)
	t.writableFrame(rid).rows[rid&heapPageMask] = row
	for _, idx := range t.indexes {
		idx.tree.Insert(indexKey(idx, row), rid)
	}
	return nil
}

// addIndex builds a new secondary index over existing rows.
func (t *table) addIndex(def IndexDef) (*tableIndex, error) {
	idx := &tableIndex{def: def, tree: newBtree(t.gen)}
	var ref pageRef
	defer ref.release()
	for rid := int64(0); rid < t.count; rid++ {
		row := t.rowRef(rid, &ref)
		if row == nil {
			continue
		}
		key := indexKey(idx, row)
		if def.Unique {
			if other, ok := t.lookupUnique(idx, key); ok && t.row(other) != nil {
				return nil, errorf("table %s: cannot build unique index %s: duplicate key %v", t.def.Name, def.Name, key)
			}
		}
		idx.tree.Insert(key, rid)
	}
	t.indexes = append(t.indexes, idx)
	return idx, nil
}

// index returns the table's index named name (case-sensitive match on
// the definition name), used to re-resolve plan-time index choices
// against the version a query snapshot actually sees.
func (t *table) index(name string) *tableIndex {
	for _, idx := range t.indexes {
		if idx.def.Name == name {
			return idx
		}
	}
	return nil
}

// findIndex returns an index whose leading key columns cover cols in
// order, preferring the shortest such index.
func (t *table) findIndex(cols []int) *tableIndex {
	var best *tableIndex
	for _, idx := range t.indexes {
		if len(idx.def.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if idx.def.Columns[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(idx.def.Columns) < len(best.def.Columns)) {
			best = idx
		}
	}
	return best
}
