package sqldb

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary statements at the lexer/parser pipeline:
// it must return a statement or an error, never panic, and whatever it
// accepts must normalize and re-parse (the template the metrics
// registry keys on reuses the same lexer).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT 1`,
		`SELECT n, sq FROM nums WHERE n BETWEEN 10 AND 19 ORDER BY sq DESC LIMIT 5`,
		`SELECT grp, COUNT(*) FROM nums GROUP BY grp HAVING COUNT(*) > 10`,
		`SELECT DISTINCT t1.tag FROM tags t1 JOIN tags t2 ON t1.n = t2.n`,
		`SELECT n FROM nums WHERE n IN (SELECT n FROM tags WHERE tag = 'five')`,
		`SELECT n FROM nums WHERE n < 3 UNION ALL SELECT n FROM nums WHERE n > 98`,
		`SELECT CASE WHEN n % 2 = 0 THEN 'even' ELSE 'odd' END FROM nums`,
		`SELECT * FROM (SELECT grp, COUNT(*) c FROM nums GROUP BY grp) d WHERE d.c > 10`,
		`INSERT INTO nums VALUES (?, ?, ?, ?)`,
		`UPDATE nums SET sq = sq + 1 WHERE n = 3`,
		`DELETE FROM nums WHERE n > 90`,
		`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)`,
		`CREATE INDEX idx ON t (b)`,
		`DROP INDEX idx`,
		`EXPLAIN ANALYZE SELECT * FROM nums`,
		`SELECT 'unterminated`,
		`SELECT )( FROM`,
		`SELECT n FROM nums WHERE label LIKE 'n00%' ESCAPE '\'`,
		"SELECT\x00\xff",
		strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		// Accepted input must survive template normalization: the result
		// must lex (NormalizeSQL falls back to trimming only on lexer
		// errors, which cannot happen for parseable input).
		tpl := NormalizeSQL(src)
		if strings.TrimSpace(tpl) == "" {
			t.Fatalf("NormalizeSQL(%q) = %q, want non-empty", src, tpl)
		}
		if _, err := lexSQL(tpl); err != nil {
			t.Fatalf("template %q of accepted input %q does not lex: %v", tpl, src, err)
		}
	})
}
