package server

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Authenticator is the auth seam: it validates one request's bearer
// token. The static token file below is the whole story today; the
// interface exists so an mTLS or per-user ACL backend can slot in
// without the transports noticing.
type Authenticator interface {
	Authenticate(token string) error
}

// StaticTokenAuth accepts any token from a fixed allow-list, compared
// in constant time.
type StaticTokenAuth struct {
	tokens []string
}

// NewStaticTokenAuth builds an allow-list authenticator. An empty list
// rejects everything (use a nil Config.Auth to serve everyone).
func NewStaticTokenAuth(tokens []string) *StaticTokenAuth {
	return &StaticTokenAuth{tokens: append([]string(nil), tokens...)}
}

// LoadTokenFile reads an allow-list from a file: one token per line,
// blank lines and #-comments ignored.
func LoadTokenFile(path string) (*StaticTokenAuth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: auth token file: %w", err)
	}
	defer f.Close()
	var tokens []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tokens = append(tokens, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: auth token file: %w", err)
	}
	return NewStaticTokenAuth(tokens), nil
}

// Authenticate checks the token against the allow-list.
func (a *StaticTokenAuth) Authenticate(token string) error {
	if token == "" {
		return errors.New("missing token")
	}
	for _, t := range a.tokens {
		if subtle.ConstantTimeCompare([]byte(t), []byte(token)) == 1 {
			return nil
		}
	}
	return errors.New("unknown token")
}
