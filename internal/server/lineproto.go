package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// The line protocol is the low-overhead transport: length-prefixed JSON
// frames over one TCP connection, with an implicit session per
// connection (created at connect, pins and prepared statements released
// at disconnect — however the connection ends).
//
// Framing: 4-byte big-endian payload length, then that many bytes of
// JSON. Requests carry {"op": ..., ...}; responses echo {"id": ...} when
// the request named one and carry either the op's payload or
// {"error","code"}. Ops:
//
//	auth    {"token":"..."}          — required first when auth is on
//	query   QueryRequest fields      — read (xpath or sql)
//	exec    ExecRequest fields       — durable write
//	pin     {}                       — pin session → {"seq":N}
//	unpin   {}                       — release the pin
//	health  {}                       — HealthStatus
//	stats   {}                       — StatsSnapshot
//	quit    {}                       — close the connection
const maxFrame = 8 << 20 // bytes; a frame larger than this is a protocol error

// lineRequest is the decoded union of every op's fields.
type lineRequest struct {
	Op    string `json:"op"`
	ID    int64  `json:"id,omitempty"`
	Token string `json:"token,omitempty"`

	XPath     string `json:"xpath,omitempty"`
	SQL       string `json:"sql,omitempty"`
	Args      []any  `json:"args,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// lineResponse wraps an op result on the wire.
type lineResponse struct {
	ID     int64  `json:"id,omitempty"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"`
	Result any    `json:"result,omitempty"`
}

// ServeLine accepts line-protocol connections on ln until Shutdown
// closes it. The returned error is nil on graceful close.
func (s *Server) ServeLine(ln net.Listener) error {
	s.trackListener(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.Draining() {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one connection: implicit session, request loop, and
// unconditional cleanup. A reader goroutine feeds frames through a
// channel so a dropped connection cancels the in-flight request's
// context instead of leaving it running to completion.
func (s *Server) serveConn(conn net.Conn) {
	s.lnMu.Lock()
	if s.conns == nil {
		s.conns = map[net.Conn]struct{}{}
	}
	s.conns[conn] = struct{}{}
	s.lnMu.Unlock()

	var sessID string
	defer func() {
		conn.Close()
		if sessID != "" {
			s.ReleaseSession(sessID)
		}
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()

	if s.Draining() {
		writeFrame(conn, lineResponse{Error: ErrShuttingDown.Error(), Code: CodeShutdown})
		return
	}
	sess, err := s.CreateSession(false)
	if err != nil {
		code, _ := ErrorCode(err)
		writeFrame(conn, lineResponse{Error: err.Error(), Code: code})
		return
	}
	sessID = sess.ID()

	// connCtx dies with the connection: the reader goroutine cancels it
	// on any read error (EOF, reset, or Shutdown's conn.Close), which
	// aborts the in-flight query through its derived request context.
	connCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	frames := make(chan []byte)
	go func() {
		defer cancel()
		for {
			frame, err := readFrame(conn)
			if err != nil {
				return
			}
			select {
			case frames <- frame:
			case <-connCtx.Done():
				return
			}
		}
	}()

	authed := s.cfg.Auth == nil
	for {
		var frame []byte
		select {
		case frame = <-frames:
		case <-connCtx.Done():
			return
		}
		var req lineRequest
		dec := json.NewDecoder(bytes.NewReader(frame))
		dec.UseNumber()
		if err := dec.Decode(&req); err != nil {
			s.reply(conn, req.ID, nil, fmt.Errorf("%w: malformed frame: %v", errBadRequest, err))
			continue
		}
		if req.Op == "quit" {
			return
		}
		if !authed && req.Op != "auth" && req.Op != "health" {
			s.reply(conn, req.ID, nil, ErrUnauthorized)
			continue
		}
		result, err := s.dispatch(connCtx, sess, &req, &authed)
		if !s.reply(conn, req.ID, result, err) {
			return
		}
	}
}

// dispatch executes one line-protocol op through the handler core.
func (s *Server) dispatch(ctx context.Context, sess *Session, req *lineRequest, authed *bool) (any, error) {
	switch req.Op {
	case "auth":
		if err := s.authenticate(req.Token); err != nil {
			return nil, err
		}
		*authed = true
		return map[string]bool{"ok": true}, nil
	case "query":
		return s.Query(ctx, &QueryRequest{
			XPath: req.XPath, SQL: req.SQL, Args: req.Args,
			Session: sess.ID(), TimeoutMS: req.TimeoutMS,
		})
	case "exec":
		return s.Exec(ctx, &ExecRequest{
			SQL: req.SQL, Args: req.Args,
			Session: sess.ID(), TimeoutMS: req.TimeoutMS,
		})
	case "pin":
		seq, err := sess.Pin()
		if err != nil {
			return nil, err
		}
		return map[string]uint64{"seq": seq}, nil
	case "unpin":
		sess.Unpin()
		return map[string]bool{"ok": true}, nil
	case "health":
		return s.HealthCheck(), nil
	case "stats":
		return s.StatsCheck(), nil
	default:
		return nil, fmt.Errorf("%w: unknown op %q", errBadRequest, req.Op)
	}
}

// reply writes one response frame; false means the connection is gone.
func (s *Server) reply(conn net.Conn, id int64, result any, err error) bool {
	resp := lineResponse{ID: id, Result: result}
	if err != nil {
		resp.Error = err.Error()
		resp.Code, _ = ErrorCode(err)
		resp.Result = nil
	}
	return writeFrame(conn, resp) == nil
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds %d-byte cap", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(conn net.Conn, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return errors.New("server: response exceeds frame cap")
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	_, err = conn.Write(frame)
	return err
}
