package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
)

// storeSnap is the snapshot pair a pinned session holds: the XML-level
// view plus (through StoreSnapshot.DB) the raw relational snapshot, so
// XPath and direct SQL reads observe the same commit boundary.
type storeSnap struct {
	xml *core.StoreSnapshot
}

func (s *Server) pinStore() *storeSnap { return &storeSnap{xml: s.store.Snapshot()} }

func (sn *storeSnap) release() { sn.xml.Release() }

// QueryRequest is one read request, transport-independent: either an
// XPath query (translated through the store) or direct SQL (the escape
// hatch). TimeoutMS is the client's deadline, clamped server-side.
type QueryRequest struct {
	XPath     string `json:"xpath,omitempty"`
	SQL       string `json:"sql,omitempty"`
	Args      []any  `json:"args,omitempty"`
	Session   string `json:"session,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// MatchJSON is one XPath match on the wire.
type MatchJSON struct {
	ID    int64  `json:"id"`
	Value string `json:"value,omitempty"`
	HasValue bool `json:"has_value"`
}

// QueryResponse is a read result on the wire.
type QueryResponse struct {
	// Matches is set for XPath queries; Columns/Rows for direct SQL.
	Matches []MatchJSON `json:"matches,omitempty"`
	Columns []string    `json:"columns,omitempty"`
	Rows    [][]any     `json:"rows,omitempty"`
	// SQL echoes the translation an XPath query compiled to.
	SQL       string `json:"sql,omitempty"`
	Count     int    `json:"count"`
	ElapsedUS int64  `json:"elapsed_us"`
	// Seq is the pinned commit boundary when the request ran through a
	// pinned session (0 otherwise).
	Seq uint64 `json:"seq,omitempty"`
}

// ExecRequest is one write request (DML/DDL), durably acknowledged.
type ExecRequest struct {
	SQL       string `json:"sql"`
	Args      []any  `json:"args,omitempty"`
	Session   string `json:"session,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExecResponse reports a write's effect. The ack implies durability:
// the engine returns only after the commit's WAL fsync.
type ExecResponse struct {
	Affected  int   `json:"affected"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// Error codes on the wire; each maps to one engine (or server)
// condition so clients dispatch without string matching.
const (
	CodeBadRequest   = "bad_request"
	CodeQueryError   = "query_error"
	CodeUnauthorized = "unauthorized"
	CodeUnknownSess  = "unknown_session"
	CodeSessionLimit = "session_limit"
	CodeOverloaded   = "overloaded"
	CodeMemoryBudget = "memory_budget_exceeded"
	CodeTimeout      = "timeout"
	CodeCanceled     = "canceled"
	CodeDegraded     = "degraded_read_only"
	CodeClosed       = "closed"
	CodeShutdown     = "shutting_down"
	CodeInternal     = "internal"
)

// ErrorCode maps an error to its wire code and HTTP status. The order
// matters: ErrReadOnlyDegraded wraps ErrWALFailed, and a closed store
// beats a degraded one.
func ErrorCode(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrShuttingDown):
		return CodeShutdown, 503
	case errors.Is(err, sqldb.ErrClosed):
		return CodeClosed, 503
	case errors.Is(err, sqldb.ErrOverloaded):
		return CodeOverloaded, 429
	case errors.Is(err, sqldb.ErrMemoryBudgetExceeded):
		return CodeMemoryBudget, 429
	case errors.Is(err, sqldb.ErrWALFailed):
		return CodeDegraded, 503
	case errors.Is(err, ErrUnauthorized):
		return CodeUnauthorized, 401
	case errors.Is(err, ErrUnknownSession):
		return CodeUnknownSess, 404
	case errors.Is(err, ErrTooManySessions):
		return CodeSessionLimit, 429
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout, 504
	case errors.Is(err, context.Canceled):
		return CodeCanceled, 499
	case errors.Is(err, sqldb.ErrInternal):
		return CodeInternal, 500
	case errors.Is(err, errBadRequest):
		return CodeBadRequest, 400
	default:
		return CodeQueryError, 400
	}
}

// Query executes one read request: admission, session resolution,
// deadline, then XPath-or-SQL against the session's pinned snapshot or
// the live published state.
func (s *Server) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	end, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer end()
	resp, err := s.doQuery(ctx, req)
	if err != nil {
		s.recordFailure(err)
	}
	return resp, err
}

func (s *Server) doQuery(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	if (req.XPath == "") == (req.SQL == "") {
		return nil, fmt.Errorf("%w: exactly one of xpath or sql required", errBadRequest)
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.reqContext(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	defer cancel()

	var snap *storeSnap
	if sess != nil {
		snap = sess.pinned()
	}
	start := time.Now()
	resp := &QueryResponse{}
	if snap != nil {
		resp.Seq = snap.xml.Seq()
	}

	if req.XPath != "" {
		var res *core.Result
		if snap != nil {
			res, err = snap.xml.QueryContext(ctx, req.XPath)
		} else {
			res, err = s.store.QueryContext(ctx, req.XPath)
		}
		if err != nil {
			return nil, err
		}
		resp.SQL = res.SQL
		resp.Count = len(res.Matches)
		resp.Matches = make([]MatchJSON, len(res.Matches))
		for i, m := range res.Matches {
			resp.Matches[i] = MatchJSON{ID: m.ID, Value: m.Value, HasValue: m.HasValue}
		}
	} else {
		args, err := toValues(req.Args)
		if err != nil {
			return nil, err
		}
		var rows *sqldb.Rows
		switch {
		case snap != nil:
			rows, err = snap.xml.DB().QueryContext(ctx, req.SQL, args...)
		case sess != nil:
			// Unpinned session: route through its bounded prepared-
			// statement cache (epoch-keyed; re-prepares after DDL).
			rows, err = sess.preparedQuery(ctx, req.SQL, args)
		default:
			rows, err = s.store.DB().QueryContext(ctx, req.SQL, args...)
		}
		if err != nil {
			return nil, err
		}
		resp.Columns = rows.Columns
		resp.Count = rows.Len()
		resp.Rows = make([][]any, rows.Len())
		for i, r := range rows.Data {
			out := make([]any, len(r))
			for j, v := range r {
				out[j] = fromValue(v)
			}
			resp.Rows[i] = out
		}
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	return resp, nil
}

// Exec executes one write request against the live store with
// per-statement durability (the ack follows the WAL fsync) and the
// auto-checkpoint policy.
func (s *Server) Exec(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	end, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer end()
	resp, err := s.doExec(ctx, req)
	if err != nil {
		s.recordFailure(err)
	}
	return resp, err
}

func (s *Server) doExec(ctx context.Context, req *ExecRequest) (*ExecResponse, error) {
	if req.SQL == "" {
		return nil, fmt.Errorf("%w: sql required", errBadRequest)
	}
	if _, err := s.session(req.Session); err != nil {
		return nil, err
	}
	ctx, cancel := s.reqContext(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	defer cancel()
	// The engine's write path is synchronous; honor the deadline at the
	// request boundary (a commit in flight is never abandoned half-acked).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	args, err := toValues(req.Args)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	n, err := s.store.Exec(req.SQL, args...)
	if err != nil {
		return nil, err
	}
	return &ExecResponse{Affected: n, ElapsedUS: time.Since(start).Microseconds()}, nil
}

// HealthStatus is the /health payload: the durability layer's state
// plus the front door's own lifecycle.
type HealthStatus struct {
	State        string    `json:"state"` // ok | degraded | closed
	Cause        string    `json:"cause,omitempty"`
	Since        time.Time `json:"since,omitempty"`
	Degradations uint64    `json:"degradations"`
	Recoveries   uint64    `json:"recoveries"`
	Draining     bool      `json:"draining"`
	Loaded       bool      `json:"loaded"`
	// PoolPressure reports buffer-pool strain when a page cap is set:
	// resident pages : cap. A ratio above 1.0 means pinned pages forced
	// the pool past its cap (queries touching more pages at once than
	// the cap allows).
	PoolPressure float64 `json:"pool_pressure,omitempty"`
}

// HealthCheck reports liveness without counting against admission (a
// load balancer probing /health must see a draining server, not be
// refused by it).
func (s *Server) HealthCheck() HealthStatus {
	h := s.store.Health()
	hs := HealthStatus{
		State:        h.State,
		Cause:        h.Cause,
		Since:        h.Since,
		Degradations: h.Degradations,
		Recoveries:   h.Recoveries,
		Draining:     s.Draining(),
		Loaded:       s.store.Loaded(),
	}
	if bp := s.store.DB().Stats().BufferPool; bp.Cap > 0 {
		hs.PoolPressure = float64(bp.Resident) / float64(bp.Cap)
	}
	return hs
}

// StatsSnapshot is the /stats payload: server counters plus the
// engine's storage, snapshot, governor and durability statistics.
type StatsSnapshot struct {
	Server   Stats              `json:"server"`
	Health   HealthStatus       `json:"health"`
	Scheme   string             `json:"scheme"`
	Tables   int                `json:"tables"`
	Rows     int                `json:"rows"`
	Bytes    int64              `json:"bytes"`
	CommitSeq   uint64          `json:"commit_seq"`
	SchemaEpoch uint64          `json:"schema_epoch"`
	Snapshots  sqldb.SnapshotStats   `json:"snapshots"`
	Governor   sqldb.GovernorStats   `json:"governor"`
	BufferPool sqldb.BufferPoolStats `json:"buffer_pool"`
	Durable    DurableJSON           `json:"durable"`
}

// DurableJSON is the WAL pipeline's counter block on the wire.
type DurableJSON struct {
	Commits     uint64 `json:"commits"`
	Fsyncs      uint64 `json:"fsyncs"`
	Batches     uint64 `json:"batches"`
	MaxBatch    int    `json:"max_batch"`
	WALBytes    int64  `json:"wal_bytes"`
	Checkpoints uint64 `json:"checkpoints"`
}

// StatsCheck gathers the /stats payload (like /health, outside
// admission: stats are how you diagnose an overloaded server).
func (s *Server) StatsCheck() StatsSnapshot {
	dbStats := s.store.DB().Stats()
	dur := s.store.Durable().Stats()
	storage := s.store.Stats()
	return StatsSnapshot{
		Server:      s.ServerStats(),
		Health:      s.HealthCheck(),
		Scheme:      string(storage.Scheme),
		Tables:      storage.Tables,
		Rows:        storage.Rows,
		Bytes:       storage.Bytes,
		CommitSeq:   dbStats.CommitSeq,
		SchemaEpoch: dbStats.SchemaEpoch,
		Snapshots:   dbStats.Snapshots,
		Governor:    dbStats.Governor,
		BufferPool:  dbStats.BufferPool,
		Durable: DurableJSON{
			Commits:     dur.Commits,
			Fsyncs:      dur.Fsyncs,
			Batches:     dur.Batches,
			MaxBatch:    dur.MaxBatch,
			WALBytes:    s.store.Durable().WALSize(),
			Checkpoints: s.store.Durable().Checkpoints(),
		},
	}
}

// errBadRequest roots malformed-request errors so ErrorCode can map
// them to 400/bad_request distinctly from engine query errors.
var errBadRequest = errors.New("server: bad request")

// recordFailure classifies a request failure for the counters.
func (s *Server) recordFailure(err error) {
	if errors.Is(err, sqldb.ErrOverloaded) {
		s.overloaded.Add(1)
	}
	s.failed.Add(1)
}

// toValues converts JSON-decoded arguments to engine values. Numbers
// arrive as json.Number (transports decode with UseNumber) or float64;
// integral values stay integers so index lookups hit typed columns.
func toValues(args []any) ([]sqldb.Value, error) {
	out := make([]sqldb.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("%w: arg %d: %v", errBadRequest, i, err)
		}
		out[i] = v
	}
	return out, nil
}

func toValue(a any) (sqldb.Value, error) {
	switch x := a.(type) {
	case nil:
		return sqldb.Null, nil
	case bool:
		return sqldb.NewBool(x), nil
	case string:
		return sqldb.NewText(x), nil
	case float64:
		if x == float64(int64(x)) {
			return sqldb.NewInt(int64(x)), nil
		}
		return sqldb.NewFloat(x), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return sqldb.NewInt(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.NewFloat(f), nil
	case int:
		return sqldb.NewInt(int64(x)), nil
	case int64:
		return sqldb.NewInt(x), nil
	default:
		return sqldb.Null, fmt.Errorf("unsupported argument type %T", a)
	}
}

// fromValue renders an engine value as a JSON-encodable Go value.
func fromValue(v sqldb.Value) any {
	switch v.T {
	case sqldb.TypeNull:
		return nil
	case sqldb.TypeInt:
		return v.I
	case sqldb.TypeBool:
		return v.I != 0
	case sqldb.TypeFloat:
		return v.F
	case sqldb.TypeText:
		return v.S
	case sqldb.TypeBlob:
		return v.B
	default:
		return v.String()
	}
}
