// Package server is the engine's network front door: a concurrent
// query service over one durable XML store, decomposed the way the
// ROADMAP's exemplar suggests — a transport-agnostic handler core
// (handler.go), a session layer with optional pinned snapshots and a
// per-session prepared-statement cache (session.go), an HTTP/JSON API
// and a length-prefixed line protocol as two thin transports over the
// same core (httpapi.go, lineproto.go), and an auth seam (auth.go).
//
// The server owns the engine-vs-session state split: the engine holds
// published database state, the WAL and the governor; the server holds
// per-connection state only — pinned snapshots, prepared plans, auth.
// Overload surfaces as typed 429/ErrOverloaded responses (the PR 8
// admission gate does the queueing), degraded read-only mode and the
// closed lifecycle state surface in /health, and graceful shutdown
// stops accepting, drains in-flight requests, releases every session's
// snapshot pins and closes the store exactly once.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Server-level sentinel errors (the engine's taxonomy lives in sqldb).
var (
	// ErrShuttingDown refuses new requests once Shutdown has begun;
	// in-flight requests drain normally.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrUnknownSession rejects a request naming a session id that was
	// never created or has been released.
	ErrUnknownSession = errors.New("server: unknown session")
	// ErrTooManySessions rejects session creation past Config.MaxSessions.
	ErrTooManySessions = errors.New("server: session limit reached")
	// ErrUnauthorized rejects a request that fails authentication.
	ErrUnauthorized = errors.New("server: unauthorized")
)

// Config tunes a Server.
type Config struct {
	// DefaultTimeout bounds a request that names no deadline of its own
	// (0 = unbounded). MaxTimeout clamps client-supplied deadlines so a
	// client cannot opt out of the server's patience (0 = no clamp).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSessions bounds concurrently open sessions (0 = 1024).
	MaxSessions int
	// StmtCacheSize bounds each session's prepared-statement cache
	// (0 = 32 entries).
	StmtCacheSize int
	// Auth authenticates request tokens; nil serves everyone.
	Auth Authenticator
}

const (
	defaultMaxSessions   = 1024
	defaultStmtCacheSize = 32
)

// Server is the front door over one durable store.
type Server struct {
	store *core.DurableStore
	cfg   Config

	// reqMu guards the draining flag and the in-flight request count;
	// idleCond signals Shutdown when the last in-flight request ends.
	// A plain WaitGroup would race Add against Wait, so admission and
	// drain share one mutex.
	reqMu     sync.Mutex
	idleCond  *sync.Cond
	draining  bool
	inflightN int

	sessMu   sync.Mutex
	sessions map[string]*Session
	sessSeq  atomic.Uint64

	// closeOnce makes "close the store exactly once" structural no
	// matter how many transports or Shutdown calls race.
	closeOnce sync.Once
	closeErr  error

	// lnMu tracks line-protocol listeners and live connections so
	// Shutdown can stop accepting and, after the drain, unblock idle
	// readers.
	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}

	// Served/refused counters for /stats.
	requests   atomic.Uint64
	refused    atomic.Uint64
	overloaded atomic.Uint64
	failed     atomic.Uint64
}

// New builds a Server over an open durable store. The caller hands
// ownership of the store to the server: Shutdown (or Close) closes it.
func New(store *core.DurableStore, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = defaultMaxSessions
	}
	if cfg.StmtCacheSize <= 0 {
		cfg.StmtCacheSize = defaultStmtCacheSize
	}
	s := &Server{
		store:    store,
		cfg:      cfg,
		sessions: map[string]*Session{},
		conns:    map[net.Conn]struct{}{},
	}
	s.idleCond = sync.NewCond(&s.reqMu)
	return s
}

// Store exposes the underlying durable store (tests, stats).
func (s *Server) Store() *core.DurableStore { return s.store }

// begin admits one request: it is counted in-flight unless the server
// is draining. Callers must call the returned end func when done.
func (s *Server) begin() (end func(), err error) {
	s.reqMu.Lock()
	if s.draining {
		s.reqMu.Unlock()
		s.refused.Add(1)
		return nil, ErrShuttingDown
	}
	s.inflightN++
	s.reqMu.Unlock()
	s.requests.Add(1)
	return func() {
		s.reqMu.Lock()
		s.inflightN--
		if s.inflightN == 0 && s.draining {
			s.idleCond.Broadcast()
		}
		s.reqMu.Unlock()
	}, nil
}

// reqContext derives one request's context: the client deadline clamped
// to MaxTimeout, or DefaultTimeout when the client names none.
func (s *Server) reqContext(parent context.Context, clientTimeout time.Duration) (context.Context, context.CancelFunc) {
	d := clientTimeout
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// authenticate checks a bearer token against the configured seam.
func (s *Server) authenticate(token string) error {
	if s.cfg.Auth == nil {
		return nil
	}
	if err := s.cfg.Auth.Authenticate(token); err != nil {
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.draining
}

// Shutdown is the graceful lifecycle edge: stop accepting (listeners
// close, new requests are refused with ErrShuttingDown), drain
// in-flight requests, release every session's snapshot pins, and close
// the store exactly once — after which any late commit attempt fails
// with the engine's typed sqldb.ErrClosed. ctx bounds the drain; on
// expiry the store is still closed (safe: reads keep serving the
// published snapshot, writes fail typed) and the context error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.reqMu.Lock()
	s.draining = true
	s.reqMu.Unlock()
	s.closeListeners()

	drained := make(chan struct{})
	go func() {
		s.reqMu.Lock()
		for s.inflightN > 0 {
			s.idleCond.Wait()
		}
		s.reqMu.Unlock()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: shutdown drain: %w", ctx.Err())
	}

	s.releaseAllSessions()
	s.closeConns()
	if err := s.closeStore(); err != nil {
		return err
	}
	return drainErr
}

// Close force-closes without waiting for in-flight requests: they keep
// their snapshots (reads finish against immutable versions) while
// writes fail with sqldb.ErrClosed. Idempotent, and safe to call after
// Shutdown.
func (s *Server) Close() error {
	s.reqMu.Lock()
	s.draining = true
	s.reqMu.Unlock()
	s.closeListeners()
	s.releaseAllSessions()
	s.closeConns()
	return s.closeStore()
}

func (s *Server) closeStore() error {
	s.closeOnce.Do(func() { s.closeErr = s.store.Close() })
	return s.closeErr
}

// Stats is the server-level counter block surfaced by /stats.
type Stats struct {
	Sessions   int    `json:"sessions"`
	Requests   uint64 `json:"requests"`
	Refused    uint64 `json:"refused"`
	Overloaded uint64 `json:"overloaded"`
	Failed     uint64 `json:"failed"`
	Draining   bool   `json:"draining"`
}

// ServerStats snapshots the front-door counters.
func (s *Server) ServerStats() Stats {
	s.sessMu.Lock()
	n := len(s.sessions)
	s.sessMu.Unlock()
	return Stats{
		Sessions:   n,
		Requests:   s.requests.Load(),
		Refused:    s.refused.Load(),
		Overloaded: s.overloaded.Load(),
		Failed:     s.failed.Load(),
		Draining:   s.Draining(),
	}
}
