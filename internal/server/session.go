package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/lru"
	"repro/internal/sqldb"
)

// Session is one client's server-side state: an optional pinned
// snapshot for multi-statement consistency (the engine's
// sqldb.AcquireSnapshot / core.StoreSnapshot pin API) and a bounded
// prepared-statement cache. Engine state never lives here — a session
// holds only pins and compiled plans, so releasing it can never lose
// data.
//
// A line-protocol connection owns exactly one session (created at
// connect, released at disconnect); HTTP clients create sessions
// explicitly and name them per request.
type Session struct {
	id      string
	srv     *Server
	created time.Time

	mu       sync.Mutex
	snap     *storeSnap // nil when unpinned
	stmts    *lru.Cache[*sqldb.Prepared]
	released bool
}

// ID returns the session's identifier.
func (sess *Session) ID() string { return sess.id }

// Pinned reports whether the session holds a pinned snapshot.
func (sess *Session) Pinned() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.snap != nil
}

// CreateSession registers a new session; with pin it immediately pins
// the latest published snapshot so every later read through the session
// observes one consistent commit boundary.
func (s *Server) CreateSession(pin bool) (*Session, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, ErrTooManySessions
	}
	id := fmt.Sprintf("s%d-%d", s.sessSeq.Add(1), time.Now().UnixNano()&0xffffff)
	sess := &Session{
		id:      id,
		srv:     s,
		created: time.Now(),
		stmts:   lru.New[*sqldb.Prepared](s.cfg.StmtCacheSize),
	}
	if pin {
		sess.snap = s.pinStore()
	}
	s.sessions[id] = sess
	return sess, nil
}

// session resolves a request's session id ("" means no session).
func (s *Server) session(id string) (*Session, error) {
	if id == "" {
		return nil, nil
	}
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return sess, nil
}

// ReleaseSession unpins and forgets a session. Idempotent: a connection
// drop and an explicit close may both release the same session, and the
// engine's snapshot release is itself idempotent, so the double call is
// harmless.
func (s *Server) ReleaseSession(id string) {
	s.sessMu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.sessMu.Unlock()
	if sess != nil {
		sess.release()
	}
}

// releaseAllSessions drops every session's pins (shutdown path).
func (s *Server) releaseAllSessions() {
	s.sessMu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = map[string]*Session{}
	s.sessMu.Unlock()
	for _, sess := range sessions {
		sess.release()
	}
}

func (sess *Session) release() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.released {
		return
	}
	sess.released = true
	if sess.snap != nil {
		sess.snap.release()
		sess.snap = nil
	}
	sess.stmts.Purge()
}

// Pin (re-)pins the session to the latest published snapshot and
// returns the commit sequence it observes. Re-pinning releases the
// previous pin first, so a session's pin count never grows past one.
func (sess *Session) Pin() (uint64, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.released {
		return 0, ErrUnknownSession
	}
	if sess.snap != nil {
		sess.snap.release()
	}
	sess.snap = sess.srv.pinStore()
	return sess.snap.xml.Seq(), nil
}

// Unpin releases the session's snapshot; later reads see the live
// (latest published) state again. Idempotent.
func (sess *Session) Unpin() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.snap != nil {
		sess.snap.release()
		sess.snap = nil
	}
}

// pinned returns the session's snapshot pair, or nil when unpinned or
// released. The returned snapshots stay valid even if the session is
// released concurrently (engine snapshots are immutable; release only
// ends metrics tracking), so reads never race a drop.
func (sess *Session) pinned() *storeSnap {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.released {
		return nil
	}
	return sess.snap
}

// preparedQuery runs a SQL SELECT through the session's bounded
// prepared-statement cache. Entries are implicitly keyed by schema
// epoch: a Prepared carries the epoch it was compiled at and fails
// typed (sqldb.ErrPreparedStale) after any DDL, at which point the
// session transparently re-prepares and replaces the entry.
func (sess *Session) preparedQuery(ctx context.Context, sql string, args []sqldb.Value) (*sqldb.Rows, error) {
	sess.mu.Lock()
	if sess.released {
		sess.mu.Unlock()
		return nil, ErrUnknownSession
	}
	p, ok := sess.stmts.Get(sql)
	sess.mu.Unlock()
	if ok {
		rows, err := p.QueryContext(ctx, args...)
		if err == nil || !errors.Is(err, sqldb.ErrPreparedStale) {
			return rows, err
		}
		// DDL advanced the schema epoch since this plan was compiled:
		// fall through and re-prepare against the new epoch.
	}
	p, err := sess.srv.store.DB().Prepare(sql)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	if !sess.released {
		sess.stmts.Put(sql, p)
	}
	sess.mu.Unlock()
	return p.QueryContext(ctx, args...)
}
