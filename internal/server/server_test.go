package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/xmlgen"
)

// f1Queries is the F1 benchmark mix: one query per XPath class.
var f1Queries = []string{
	"/site/categories/category/name",
	"//item/name",
	"/site/people/person[address/city='Berlin']/name",
	"//open_auction[initial > 200]/bidder/increase",
	"/site/open_auctions/open_auction/bidder[1]/increase",
	"//person[profile/@income > 60000]",
}

// newTestStore opens a durable interval store on an in-memory VFS and
// loads a small auction document.
func newTestStore(t *testing.T, opts core.Options) (*core.DurableStore, *sqldb.MemVFS) {
	t.Helper()
	vfs := sqldb.NewMemVFS()
	store, err := core.OpenDurableVFS(core.Interval, vfs, opts, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 7})
	if err := store.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	return store, vfs
}

func newTestServer(t *testing.T, opts core.Options, cfg Config) (*Server, *sqldb.MemVFS) {
	t.Helper()
	store, vfs := newTestStore(t, opts)
	s := New(store, cfg)
	t.Cleanup(func() { s.Close() })
	return s, vfs
}

// postJSON posts a JSON body and decodes the JSON response, returning
// the HTTP status and the wire error code (empty on success).
func postJSON(t *testing.T, client *http.Client, url, token string, body, out any) (int, string) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&raw); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	var code string
	if c, ok := raw["code"]; ok {
		json.Unmarshal(c, &code)
	}
	if out != nil && resp.StatusCode == 200 {
		buf, _ := json.Marshal(raw)
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("decoding payload: %v", err)
		}
	}
	return resp.StatusCode, code
}

func pinnedCount(s *Server) int {
	return s.Store().DB().Stats().Snapshots.Pinned
}

// TestHTTPRoundTrip exercises the HTTP surface end to end: health,
// XPath query, direct SQL with args, a durable write, and stats.
func TestHTTPRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthStatus
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.State != "ok" || !h.Loaded || h.Draining {
		t.Fatalf("health = %+v, want ok/loaded/not draining", h)
	}

	var qr QueryResponse
	status, code := postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{XPath: "//item/name"}, &qr)
	if status != 200 {
		t.Fatalf("xpath query: status %d code %s", status, code)
	}
	if qr.Count == 0 || qr.SQL == "" {
		t.Fatalf("xpath query returned %d matches, sql %q", qr.Count, qr.SQL)
	}

	var sr QueryResponse
	status, _ = postJSON(t, ts.Client(), ts.URL+"/query", "",
		QueryRequest{SQL: "SELECT pre, name FROM accel WHERE kind = ? LIMIT 5", Args: []any{"elem"}}, &sr)
	if status != 200 || sr.Count != 5 || len(sr.Columns) != 2 {
		t.Fatalf("sql query: status %d count %d cols %v", status, sr.Count, sr.Columns)
	}

	var er ExecResponse
	status, _ = postJSON(t, ts.Client(), ts.URL+"/exec", "",
		ExecRequest{SQL: "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
			Args: []any{1000000, nil, 0, 99, 1, "marker", "m", "v"}}, &er)
	if status != 200 || er.Affected != 1 {
		t.Fatalf("exec: status %d affected %d", status, er.Affected)
	}

	var st StatsSnapshot
	status, _ = postJSON(t, ts.Client(), ts.URL+"/query", "",
		QueryRequest{SQL: "SELECT pre FROM accel WHERE kind = 'marker'"}, &sr)
	if status != 200 || sr.Count != 1 {
		t.Fatalf("marker readback: status %d count %d", status, sr.Count)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Server.Requests < 4 || st.Durable.Commits == 0 || st.Rows == 0 {
		t.Fatalf("stats = %+v", st)
	}

	status, code = postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{}, nil)
	if status != 400 || code != CodeBadRequest {
		t.Fatalf("empty query: status %d code %s, want 400 %s", status, code, CodeBadRequest)
	}
}

// TestConcurrentSessionsF1 is the acceptance load: 64 concurrent
// pinned sessions each running the F1 mix over HTTP, half of them
// leaking their session (never releasing), then a graceful shutdown —
// after which every snapshot pin must be gone and the store closed.
func TestConcurrentSessionsF1(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sessions = 64
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sr sessionResponse
			status, code := postJSON(t, ts.Client(), ts.URL+"/session", "", sessionRequest{Pin: true}, &sr)
			if status != 200 {
				errs <- fmt.Errorf("session %d: create status %d code %s", i, status, code)
				return
			}
			if !sr.Pinned || sr.Seq == 0 {
				errs <- fmt.Errorf("session %d: not pinned (%+v)", i, sr)
				return
			}
			for _, q := range f1Queries {
				var qr QueryResponse
				status, code := postJSON(t, ts.Client(), ts.URL+"/query", "",
					QueryRequest{XPath: q, Session: sr.Session}, &qr)
				if status != 200 {
					errs <- fmt.Errorf("session %d: %q status %d code %s", i, q, status, code)
					return
				}
				if qr.Seq != sr.Seq {
					errs <- fmt.Errorf("session %d: query seq %d, pinned seq %d", i, qr.Seq, sr.Seq)
					return
				}
			}
			if i%2 == 0 { // half release cleanly, half leak to shutdown
				postJSON(t, ts.Client(), ts.URL+"/session", "", sessionRequest{Release: sr.Session}, nil)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if n := pinnedCount(s); n != sessions/2 {
		t.Fatalf("pinned before shutdown = %d, want %d leaked", n, sessions/2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := pinnedCount(s); n != 0 {
		t.Fatalf("pinned after shutdown = %d, want 0", n)
	}
	if got := s.Store().Durable().Health().State; got != "closed" {
		t.Fatalf("health after shutdown = %q, want closed", got)
	}
}

// TestPinnedSessionConsistency: a pinned session keeps observing its
// commit boundary while live writes land; re-pinning advances it.
func TestPinnedSessionConsistency(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	sess, err := s.CreateSession(true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	countMarkers := func(session string) int {
		r, err := s.Query(ctx, &QueryRequest{SQL: "SELECT pre FROM accel WHERE kind = 'marker'", Session: session})
		if err != nil {
			t.Fatal(err)
		}
		return r.Count
	}
	if n := countMarkers(sess.ID()); n != 0 {
		t.Fatalf("pinned pre-write count = %d", n)
	}
	if _, err := s.Exec(ctx, &ExecRequest{
		SQL:  "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
		Args: []any{2000000, nil, 0, 99, 1, "marker", "m", "v"},
	}); err != nil {
		t.Fatal(err)
	}
	if n := countMarkers(sess.ID()); n != 0 {
		t.Fatalf("pinned session saw live write: count = %d", n)
	}
	if n := countMarkers(""); n != 1 {
		t.Fatalf("live count = %d, want 1", n)
	}
	if _, err := sess.Pin(); err != nil { // re-pin to latest
		t.Fatal(err)
	}
	if n := countMarkers(sess.ID()); n != 1 {
		t.Fatalf("re-pinned count = %d, want 1", n)
	}
	if n := pinnedCount(s); n != 1 {
		t.Fatalf("pinned = %d, want 1 (re-pin must not leak)", n)
	}
	s.ReleaseSession(sess.ID())
	if n := pinnedCount(s); n != 0 {
		t.Fatalf("pinned after release = %d", n)
	}
}

// TestGracefulShutdownDrain: Shutdown waits for in-flight requests,
// refuses new ones, and closes the store exactly once.
func TestGracefulShutdownDrain(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	end, err := s.begin() // hold one in-flight request open
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// New requests must be refused while the drain waits on us.
	deadline := time.After(5 * time.Second)
	for !s.Draining() {
		select {
		case <-deadline:
			t.Fatal("shutdown never started draining")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := s.Query(context.Background(), &QueryRequest{XPath: "//item"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("query during drain: %v, want ErrShuttingDown", err)
	}
	select {
	case err := <-done:
		t.Fatalf("shutdown returned %v before in-flight request ended", err)
	case <-time.After(50 * time.Millisecond):
	}

	end()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not finish after drain")
	}
	if got := s.Store().Durable().Health().State; got != "closed" {
		t.Fatalf("health = %q, want closed", got)
	}
	// Close after Shutdown is idempotent and must not double-close.
	if err := s.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
}

// TestShutdownDrainTimeout: a drain that outlives its context still
// closes the store (writes fail typed afterwards) and reports the
// context error.
func TestShutdownDrainTimeout(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	end, err := s.begin()
	if err != nil {
		t.Fatal(err)
	}
	defer end()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with stuck request: %v, want deadline error", err)
	}
	if got := s.Store().Durable().Health().State; got != "closed" {
		t.Fatalf("health = %q, want closed even on drain timeout", got)
	}
}

// TestOverload429: with one admission slot and no queue, a request
// arriving while the slot is held gets the governor's typed rejection,
// mapped to 429/"overloaded" on the wire.
func TestOverload429(t *testing.T) {
	s, _ := newTestServer(t, core.Options{MaxConcurrentQueries: 1, MaxQueuedQueries: 0}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A self-join on a purpose-built table, sized so the cross product
	// holds the admission slot for a few hundred ms while the probe
	// below arrives.
	if _, err := s.Store().Exec("CREATE TABLE ovl (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]sqldb.Value, 1200)
	for i := range rows {
		rows[i] = []sqldb.Value{sqldb.NewInt(int64(i))}
	}
	if _, err := s.Store().DB().BulkInsert("ovl", rows); err != nil {
		t.Fatal(err)
	}
	const slow = "SELECT COUNT(*) FROM ovl a, ovl b WHERE a.x < b.x"
	admitted := func() int64 { return s.Store().DB().Stats().Governor.Admitted }

	var got429 bool
	for round := 0; round < 20 && !got429; round++ {
		before := admitted()
		done := make(chan error, 1)
		go func() {
			_, err := s.Query(context.Background(), &QueryRequest{SQL: slow})
			done <- err
		}()
		// Wait until the slow query actually occupies the slot; if it
		// finishes (or was itself rejected) first, retry the round.
		occupied := false
		for !occupied && len(done) == 0 {
			if admitted() > before {
				occupied = true
			} else {
				time.Sleep(time.Millisecond)
			}
		}
		if occupied {
			status, code := postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{XPath: "//item/name"}, nil)
			if status == 429 && code == CodeOverloaded {
				got429 = true
			}
		}
		if err := <-done; err != nil && !errors.Is(err, sqldb.ErrOverloaded) {
			t.Fatalf("slow query: %v", err)
		}
	}
	if !got429 {
		t.Fatal("no 429/overloaded response while the admission slot was held")
	}
	if st := s.ServerStats(); st.Overloaded == 0 {
		t.Fatalf("server stats did not count overloads: %+v", st)
	}
	// The slot frees afterwards: a normal query succeeds again.
	if status, code := postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{XPath: "//item/name"}, nil); status != 200 {
		t.Fatalf("query after overload cleared: status %d code %s", status, code)
	}
}

// TestPostCloseExecErrClosed: once the durability layer is closed
// underneath the server, writes fail with the engine's typed
// sqldb.ErrClosed and the wire maps it to 503/"closed".
func TestPostCloseExecErrClosed(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.Store().Durable().Close(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec(context.Background(), &ExecRequest{SQL: "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (1, NULL, 0, 1, 1, 'k', 'n', 'v')"})
	if !errors.Is(err, sqldb.ErrClosed) {
		t.Fatalf("exec after close: %v, want ErrClosed", err)
	}
	status, code := postJSON(t, ts.Client(), ts.URL+"/exec", "",
		ExecRequest{SQL: "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (1, NULL, 0, 1, 1, 'k', 'n', 'v')"}, nil)
	if status != 503 || code != CodeClosed {
		t.Fatalf("exec after close over HTTP: status %d code %s, want 503 %s", status, code, CodeClosed)
	}
	// Reads keep serving the published snapshot.
	var qr QueryResponse
	status, _ = postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{XPath: "//item/name"}, &qr)
	if status != 200 || qr.Count == 0 {
		t.Fatalf("read after close: status %d count %d", status, qr.Count)
	}
	var h HealthStatus
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != 503 || h.State != "closed" {
		t.Fatalf("health after close: status %d state %q", resp.StatusCode, h.State)
	}
}

// TestCanceledRequest: a dead client context surfaces as a canceled
// request, not a hung or half-acked one.
func TestCanceledRequest(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Query(ctx, &QueryRequest{XPath: "//item/name"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: %v", err)
	}
	if code, status := ErrorCode(err); code != CodeCanceled || status != 499 {
		t.Fatalf("canceled maps to %s/%d", code, status)
	}
	_, err = s.Exec(ctx, &ExecRequest{SQL: "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (1, NULL, 0, 1, 1, 'k', 'n', 'v')"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exec: %v", err)
	}
}

// TestCrashAckPreservation: every write acknowledged through the
// server survives a simulated power loss and reopen — the server adds
// no buffering in front of the WAL's ack-implies-durable contract.
func TestCrashAckPreservation(t *testing.T) {
	s, vfs := newTestServer(t, core.Options{}, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const writes = 20
	for i := 0; i < writes; i++ {
		status, code := postJSON(t, ts.Client(), ts.URL+"/exec", "",
			ExecRequest{SQL: "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
				Args: []any{3000000 + i, nil, 0, 99, i, "marker", "m", fmt.Sprintf("v%d", i)}}, nil)
		if status != 200 {
			t.Fatalf("write %d: status %d code %s", i, status, code)
		}
	}

	// Power-loss the acked state and reopen it.
	crashed := vfs.Clone()
	crashed.Crash(sqldb.CrashLoseUnsynced)
	re, err := core.OpenDurableVFS(core.Interval, crashed, core.Options{}, core.DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	rows, err := re.DB().Query("SELECT value FROM accel WHERE kind = 'marker'")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != writes {
		t.Fatalf("recovered %d acked writes, want %d", rows.Len(), writes)
	}
}

// TestAuth: the bearer-token seam rejects missing/bad tokens with 401,
// /health stays reachable for probes, and a valid token serves.
func TestAuth(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{Auth: NewStaticTokenAuth([]string{"sesame"})})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, code := postJSON(t, ts.Client(), ts.URL+"/query", "", QueryRequest{XPath: "//item"}, nil)
	if status != 401 || code != CodeUnauthorized {
		t.Fatalf("no token: status %d code %s", status, code)
	}
	status, code = postJSON(t, ts.Client(), ts.URL+"/query", "wrong", QueryRequest{XPath: "//item"}, nil)
	if status != 401 || code != CodeUnauthorized {
		t.Fatalf("bad token: status %d code %s", status, code)
	}
	status, _ = postJSON(t, ts.Client(), ts.URL+"/query", "sesame", QueryRequest{XPath: "//item"}, nil)
	if status != 200 {
		t.Fatalf("good token: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("health with auth on: status %d, want exempt 200", resp.StatusCode)
	}
}

// TestSessionLimitAndUnknown: session cap and unknown-id taxonomy.
func TestSessionLimitAndUnknown(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{MaxSessions: 2})
	if _, err := s.CreateSession(false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSession(true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSession(false); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over cap: %v", err)
	}
	_, err := s.Query(context.Background(), &QueryRequest{XPath: "//item", Session: "nope"})
	if !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown session: %v", err)
	}
	if code, status := ErrorCode(err); code != CodeUnknownSess || status != 404 {
		t.Fatalf("unknown session maps to %s/%d", code, status)
	}
}

// TestPreparedCacheAcrossDDL: an unpinned session's cached plan
// survives DDL via transparent re-prepare (ErrPreparedStale handling).
func TestPreparedCacheAcrossDDL(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	sess, err := s.CreateSession(false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := &QueryRequest{SQL: "SELECT pre FROM accel WHERE kind = 'elem' LIMIT 3", Session: sess.ID()}
	if _, err := s.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	// DDL bumps the schema epoch, staling the cached plan.
	if _, err := s.Store().Exec("CREATE INDEX accel_tmp ON accel (ordinal)"); err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(ctx, q)
	if err != nil {
		t.Fatalf("query after DDL: %v (stale plan not re-prepared?)", err)
	}
	if r.Count != 3 {
		t.Fatalf("count after DDL = %d", r.Count)
	}
}
