package server

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
)

// errorJSON is the wire shape of every failed request.
type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// sessionRequest creates or releases a session over HTTP.
type sessionRequest struct {
	Pin     bool   `json:"pin,omitempty"`
	Release string `json:"release,omitempty"`
}

type sessionResponse struct {
	Session string `json:"session,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Pinned  bool   `json:"pinned"`
	Released string `json:"released,omitempty"`
}

// Handler returns the HTTP/JSON API over the handler core:
//
//	POST /query    {"xpath":"/site//item"} or {"sql":"SELECT ...","args":[...]}
//	POST /exec     {"sql":"INSERT ...","args":[...]}
//	POST /session  {"pin":true} → {"session":"...","seq":N} | {"release":"id"}
//	GET  /health   durability + lifecycle state (auth-exempt)
//	GET  /stats    server + engine counters
//
// Every endpoint except /health passes the auth seam (Bearer token).
// Request handling, admission, deadlines and error taxonomy all live in
// the transport-agnostic core; this file only decodes and encodes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.withAuth(s.handleQuery))
	mux.HandleFunc("POST /exec", s.withAuth(s.handleExec))
	mux.HandleFunc("POST /session", s.withAuth(s.handleSession))
	mux.HandleFunc("GET /health", s.handleHealth)
	mux.HandleFunc("GET /stats", s.withAuth(s.handleStats))
	return mux
}

// withAuth wraps a handler with bearer-token authentication.
func (s *Server) withAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if err := s.authenticate(token); err != nil {
			writeError(w, err)
			return
		}
		h(w, r)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.Query(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req ExecRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.Exec(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Release != "" {
		s.ReleaseSession(req.Release)
		writeJSON(w, http.StatusOK, sessionResponse{Released: req.Release})
		return
	}
	if s.Draining() {
		writeError(w, ErrShuttingDown)
		return
	}
	sess, err := s.CreateSession(req.Pin)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := sessionResponse{Session: sess.ID(), Pinned: sess.Pinned()}
	if snap := sess.pinned(); snap != nil {
		resp.Seq = snap.xml.Seq()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.HealthCheck()
	status := http.StatusOK
	// Load balancers read the status code alone: a degraded (read-only)
	// or draining server must stop attracting writes.
	if h.State != "ok" || h.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsCheck())
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "malformed JSON: " + err.Error(), Code: CodeBadRequest})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code, status := ErrorCode(err)
	writeJSON(w, status, errorJSON{Error: err.Error(), Code: code})
}

// Serve runs the HTTP API on ln until Shutdown closes the listener.
// The returned error is nil on graceful close.
func (s *Server) Serve(ln net.Listener) error {
	s.trackListener(ln)
	hs := &http.Server{Handler: s.Handler()}
	err := hs.Serve(ln)
	if err == http.ErrServerClosed || s.Draining() {
		return nil
	}
	return err
}

// trackListener registers a listener so Shutdown can close it.
func (s *Server) trackListener(ln net.Listener) {
	s.lnMu.Lock()
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
}

func (s *Server) closeListeners() {
	s.lnMu.Lock()
	lns := s.listeners
	s.listeners = nil
	s.lnMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
}

func (s *Server) closeConns() {
	s.lnMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lnMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
