package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// lineClient is a minimal test client for the framed protocol.
type lineClient struct {
	t    *testing.T
	conn net.Conn
}

func dialLine(t *testing.T, s *Server) *lineClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeLine(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &lineClient{t: t, conn: conn}
}

func (c *lineClient) send(req lineRequest) lineResponse {
	c.t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatal(err)
	}
	return c.read()
}

func (c *lineClient) read() lineResponse {
	c.t.Helper()
	var hdr [4]byte
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		c.t.Fatal(err)
	}
	buf := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		c.t.Fatal(err)
	}
	var resp lineResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// result re-decodes the op payload into out.
func (r lineResponse) result(t *testing.T, out any) {
	t.Helper()
	buf, err := json.Marshal(r.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, out); err != nil {
		t.Fatal(err)
	}
}

// TestLineProtocolRoundTrip: query, exec, pin/unpin, health and stats
// over the framed transport, all through one implicit session.
func TestLineProtocolRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	c := dialLine(t, s)

	resp := c.send(lineRequest{Op: "query", ID: 1, XPath: "//item/name"})
	if resp.Error != "" || resp.ID != 1 {
		t.Fatalf("query: %+v", resp)
	}
	var qr QueryResponse
	resp.result(t, &qr)
	if qr.Count == 0 {
		t.Fatal("query returned no matches")
	}

	resp = c.send(lineRequest{Op: "pin", ID: 2})
	if resp.Error != "" {
		t.Fatalf("pin: %+v", resp)
	}
	var pin struct {
		Seq uint64 `json:"seq"`
	}
	resp.result(t, &pin)
	if pin.Seq == 0 {
		t.Fatal("pin returned seq 0")
	}
	if n := pinnedCount(s); n != 1 {
		t.Fatalf("pinned = %d after pin", n)
	}

	resp = c.send(lineRequest{Op: "exec", ID: 3,
		SQL:  "INSERT INTO accel (pre, parent, size, level, ordinal, kind, name, value) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
		Args: []any{4000000, nil, 0, 99, 1, "marker", "m", "line"}})
	if resp.Error != "" {
		t.Fatalf("exec: %+v", resp)
	}

	// The pinned session must not see its own post-pin write.
	resp = c.send(lineRequest{Op: "query", ID: 4, SQL: "SELECT pre FROM accel WHERE kind = 'marker'"})
	resp.result(t, &qr)
	if qr.Count != 0 {
		t.Fatalf("pinned session saw post-pin write: %d rows", qr.Count)
	}
	c.send(lineRequest{Op: "unpin", ID: 5})
	resp = c.send(lineRequest{Op: "query", ID: 6, SQL: "SELECT pre FROM accel WHERE kind = 'marker'"})
	resp.result(t, &qr)
	if qr.Count != 1 {
		t.Fatalf("unpinned session: %d rows, want 1", qr.Count)
	}

	resp = c.send(lineRequest{Op: "health", ID: 7})
	var h HealthStatus
	resp.result(t, &h)
	if h.State != "ok" {
		t.Fatalf("health: %+v", h)
	}
	resp = c.send(lineRequest{Op: "bogus", ID: 8})
	if resp.Code != CodeBadRequest {
		t.Fatalf("unknown op: %+v", resp)
	}
}

// TestLineDropReleasesPin: killing the connection releases the
// implicit session and its snapshot pin — the client-died path.
func TestLineDropReleasesPin(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	c := dialLine(t, s)
	if resp := c.send(lineRequest{Op: "pin", ID: 1}); resp.Error != "" {
		t.Fatalf("pin: %+v", resp)
	}
	if n := pinnedCount(s); n != 1 {
		t.Fatalf("pinned = %d", n)
	}
	c.conn.Close() // client dies mid-session
	deadline := time.After(5 * time.Second)
	for pinnedCount(s) != 0 {
		select {
		case <-deadline:
			t.Fatalf("pin leaked after connection drop: %d", pinnedCount(s))
		case <-time.After(time.Millisecond):
		}
	}
	if st := s.ServerStats(); st.Sessions != 0 {
		t.Fatalf("session leaked after drop: %+v", st)
	}
}

// TestLineAuth: with auth on, only auth and health work before a valid
// token is presented.
func TestLineAuth(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{Auth: NewStaticTokenAuth([]string{"sesame"})})
	c := dialLine(t, s)

	if resp := c.send(lineRequest{Op: "query", ID: 1, XPath: "//item"}); resp.Code != CodeUnauthorized {
		t.Fatalf("pre-auth query: %+v", resp)
	}
	if resp := c.send(lineRequest{Op: "health", ID: 2}); resp.Error != "" {
		t.Fatalf("pre-auth health: %+v", resp)
	}
	if resp := c.send(lineRequest{Op: "auth", ID: 3, Token: "wrong"}); resp.Code != CodeUnauthorized {
		t.Fatalf("bad token: %+v", resp)
	}
	if resp := c.send(lineRequest{Op: "auth", ID: 4, Token: "sesame"}); resp.Error != "" {
		t.Fatalf("auth: %+v", resp)
	}
	if resp := c.send(lineRequest{Op: "query", ID: 5, XPath: "//item"}); resp.Error != "" {
		t.Fatalf("post-auth query: %+v", resp)
	}
}

// TestLineShutdownClosesConns: Shutdown unblocks idle connections and
// new connects are refused while draining.
func TestLineShutdownClosesConns(t *testing.T) {
	s, _ := newTestServer(t, core.Options{}, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.ServeLine(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Make sure the server has registered the connection (a frame
	// round-trip forces it).
	c := &lineClient{t: t, conn: conn}
	if resp := c.send(lineRequest{Op: "health", ID: 1}); resp.Error != "" {
		t.Fatalf("health: %+v", resp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeLine: %v", err)
	}
	// The idle connection was force-closed after the drain.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [4]byte
	if _, err := io.ReadFull(conn, b[:]); err == nil {
		t.Fatal("connection still open after shutdown")
	}
	if n := pinnedCount(s); n != 0 {
		t.Fatalf("pins after shutdown = %d", n)
	}
}
