package shred

// Streaming shredding: LoadStream drives a scheme's relational load
// directly from an xmldom.Tokenizer, so a document is shredded in one
// pass with memory proportional to its depth (plus one insert batch),
// never materializing a DOM. Edge and Interval implement it; both
// produce exactly the rows their DOM-based Load produces (pinned by
// differential tests), though physical insertion order differs:
// element rows are emitted when the element CLOSES, because subtree
// size and denormalized simple content are only known then. Queries
// order by stored ranks, so the two loads are indistinguishable.

import (
	"context"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/xmldom"
)

// StreamLoader is implemented by schemes that can shred a document
// from a token stream without materializing it. Cancellation is
// honored at bulk-insert batch granularity, like ContextLoader.
type StreamLoader interface {
	LoadStream(ctx context.Context, db *sqldb.Database, tz *xmldom.Tokenizer) error
}

// streamSink receives one shredded node at a time from streamWalk.
// Rows arrive in emission order (attributes and leaves at their
// pre-order position, elements at close), each carrying the exact
// column inputs the DOM load would compute for the same node.
type streamSink interface {
	// node reports one non-document node: pre rank, parent's pre rank,
	// global ordinal (attributes-then-children, 1-based), level, subtree
	// size, kind string, name/value columns, and the catalog label path.
	node(pre, parentPre, ordinal int64, level int, size int64, kind string, name, value sqldb.Value, path string) error
	// finish reports the total node count (document node included) and
	// the maximum level observed, then flushes.
	finish(total int64, maxLevel int) error
}

// streamFrame is one open element during the walk.
type streamFrame struct {
	pre       int64
	parentPre int64
	ordinal   int64
	level     int
	nAttrs    int
	children  int
	name      string
	path      string
	text      strings.Builder
	sawElem   bool
}

func joinPath(parent, seg string) string {
	if parent == "" {
		return seg
	}
	return parent + "/" + seg
}

// streamWalk replays Document.Number over the token stream: the
// document node takes pre 0, every other node is ranked in pre-order
// with attributes directly after their owner, Size counts descendants
// (attributes included), Level is depth from the document node, and
// the global ordinal numbers a node within its parent's
// attributes-then-children sequence.
func streamWalk(tz *xmldom.Tokenizer, sink streamSink) error {
	frames := []*streamFrame{{pre: 0, level: 0}} // document frame
	nextPre := int64(1)
	maxLevel := 0
	note := func(level int) {
		if level > maxLevel {
			maxLevel = level
		}
	}
	for {
		tok, err := tz.Next()
		if err != nil {
			return err
		}
		top := frames[len(frames)-1]
		switch tok.Kind {
		case xmldom.TokStart:
			top.children++
			top.sawElem = true
			f := &streamFrame{
				pre:       nextPre,
				parentPre: top.pre,
				ordinal:   int64(top.nAttrs + top.children),
				level:     top.level + 1,
				nAttrs:    len(tok.Attrs),
				name:      tok.Name,
				path:      joinPath(top.path, tok.Name),
			}
			nextPre++
			note(f.level)
			for i, a := range tok.Attrs {
				apre := nextPre
				nextPre++
				note(f.level + 1)
				if err := sink.node(apre, f.pre, int64(i+1), f.level+1, 0, "attr",
					sqldb.NewText(a.Name), sqldb.NewText(a.Value), joinPath(f.path, "@"+a.Name)); err != nil {
					return err
				}
			}
			frames = append(frames, f)
		case xmldom.TokEnd:
			frames = frames[:len(frames)-1]
			f := top
			size := nextPre - f.pre - 1
			// Denormalized simple content: concatenated text children when
			// the element has no element children and real text (the same
			// rule as simpleContent over the DOM).
			val := sqldb.Null
			if !f.sawElem && f.text.Len() > 0 {
				val = sqldb.NewText(f.text.String())
			}
			if err := sink.node(f.pre, f.parentPre, f.ordinal, f.level, size, "elem",
				sqldb.NewText(f.name), val, f.path); err != nil {
				return err
			}
		case xmldom.TokText:
			top.children++
			pre := nextPre
			nextPre++
			note(top.level + 1)
			top.text.WriteString(tok.Text)
			if err := sink.node(pre, top.pre, int64(top.nAttrs+top.children), top.level+1, 0, "text",
				sqldb.Null, sqldb.NewText(tok.Text), joinPath(top.path, "#text")); err != nil {
				return err
			}
		case xmldom.TokComment:
			top.children++
			pre := nextPre
			nextPre++
			note(top.level + 1)
			if err := sink.node(pre, top.pre, int64(top.nAttrs+top.children), top.level+1, 0, "comment",
				sqldb.Null, sqldb.NewText(tok.Text), joinPath(top.path, "#comment")); err != nil {
				return err
			}
		case xmldom.TokProcInst:
			top.children++
			pre := nextPre
			nextPre++
			note(top.level + 1)
			if err := sink.node(pre, top.pre, int64(top.nAttrs+top.children), top.level+1, 0, "pi",
				sqldb.NewText(tok.Name), sqldb.NewText(tok.Text), joinPath(top.path, "#pi")); err != nil {
				return err
			}
		case xmldom.TokEOF:
			return sink.finish(nextPre, maxLevel)
		}
	}
}

// edgeStreamSink shreds into the edge relation.
type edgeStreamSink struct {
	e *Edge
	b *batcher
}

func (s *edgeStreamSink) node(pre, parentPre, ordinal int64, level int, size int64, kind string, name, value sqldb.Value, path string) error {
	s.e.catalog.Add(path)
	return s.b.add([]sqldb.Value{
		sqldb.NewInt(parentPre),
		sqldb.NewInt(ordinal),
		name,
		sqldb.NewText(kind),
		sqldb.NewInt(pre),
		value,
	})
}

func (s *edgeStreamSink) finish(total int64, maxLevel int) error {
	if maxLevel > 0 {
		s.e.maxDepth = maxLevel
	}
	return s.b.flush()
}

// LoadStream implements StreamLoader for the edge mapping.
func (e *Edge) LoadStream(ctx context.Context, db *sqldb.Database, tz *xmldom.Tokenizer) error {
	return streamWalk(tz, &edgeStreamSink{e: e, b: newBatcherCtx(ctx, db, "edge")})
}

// intervalStreamSink shreds into the accel relation.
type intervalStreamSink struct {
	b *batcher
}

func (s *intervalStreamSink) node(pre, parentPre, ordinal int64, level int, size int64, kind string, name, value sqldb.Value, path string) error {
	return s.b.add([]sqldb.Value{
		sqldb.NewInt(pre),
		sqldb.NewInt(parentPre),
		sqldb.NewInt(size),
		sqldb.NewInt(int64(level)),
		sqldb.NewInt(ordinal),
		sqldb.NewText(kind),
		name,
		value,
	})
}

func (s *intervalStreamSink) finish(total int64, maxLevel int) error {
	// The document node's own row: pre 0, no parent, the whole document
	// as its subtree.
	row := []sqldb.Value{
		sqldb.NewInt(0),
		sqldb.Null,
		sqldb.NewInt(total - 1),
		sqldb.NewInt(0),
		sqldb.NewInt(1),
		sqldb.NewText("doc"),
		sqldb.Null,
		sqldb.Null,
	}
	if err := s.b.add(row); err != nil {
		return err
	}
	return s.b.flush()
}

// LoadStream implements StreamLoader for the interval mapping.
func (iv *Interval) LoadStream(ctx context.Context, db *sqldb.Database, tz *xmldom.Tokenizer) error {
	return streamWalk(tz, &intervalStreamSink{b: newBatcherCtx(ctx, db, "accel")})
}
