package shred

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// conformanceQueries is the differential battery: every scheme's
// translated SQL must return exactly the node ids the native DOM
// evaluator returns.
var conformanceQueries = []struct {
	name  string
	query string
	// skip lists schemes whose mapping cannot express the query
	// (documented limitations, not bugs).
	skip map[string]bool
}{
	{name: "simple_path", query: "/site/regions/africa/item"},
	{name: "leaf_path", query: "/site/people/person/name"},
	{name: "attr_step", query: "/site/people/person/@id"},
	{name: "attr_filter", query: "/site/people/person[@id='person5']"},
	{name: "descendant_name", query: "//name"},
	{name: "descendant_mid", query: "//item/name"},
	{name: "descendant_deep", query: "/site//city"},
	{name: "value_filter", query: "/site/people/person[address/city='Berlin']/name"},
	{name: "numeric_filter", query: "/site/open_auctions/open_auction[initial > 250]"},
	{name: "attr_numeric", query: "//person[profile/@income > 80000]"},
	{name: "text_step", query: "/site/categories/category/name/text()"},
	{name: "wildcard_child", query: "/site/regions/*/item/@id"},
	{name: "position_first", query: "/site/open_auctions/open_auction/bidder[1]/increase",
		skip: map[string]bool{"universal": true}},
	{name: "position_fn", query: "/site/people/person[position() = 3]",
		skip: map[string]bool{"universal": true}},
	{name: "count_filter", query: "/site/open_auctions/open_auction[count(bidder) > 5]",
		skip: map[string]bool{"universal": true}},
	{name: "contains", query: "/site/regions/asia/item[contains(name, 'brass')]"},
	{name: "exists_pred", query: "/site/people/person[homepage]/name"},
	{name: "and_pred", query: "/site/people/person[address/city='Berlin' and homepage]"},
	{name: "or_pred", query: "/site/people/person[address/city='Berlin' or address/city='Paris']",
		skip: map[string]bool{"universal": true}},
	{name: "not_pred", query: "/site/people/person[not(homepage)]",
		skip: map[string]bool{"universal": true}},
	{name: "double_descendant", query: "//open_auction//increase"},
	// Sibling axes need a scheme-level order encoding (Dewey paths or
	// interval ordinals); edge, binary and universal do not carry one.
	{name: "following_sibling", query: "/site/open_auctions/open_auction/bidder[1]/following-sibling::bidder",
		skip: map[string]bool{"edge": true, "binary": true, "universal": true}},
	{name: "preceding_sibling", query: "/site/open_auctions/open_auction/bidder[2]/preceding-sibling::bidder",
		skip: map[string]bool{"edge": true, "binary": true, "universal": true}},
	{name: "sibling_then_value", query: "/site/people/person/name/following-sibling::emailaddress",
		skip: map[string]bool{"edge": true, "binary": true, "universal": true}},
	{name: "starts_with", query: "/site/people/person[starts-with(name, 'A')]/name"},
}

func domIDs(doc *xmldom.Document, query string) []int64 {
	nodes := xpath.Eval(doc, xpath.MustParse(query))
	out := make([]int64, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, int64(n.Pre))
	}
	return out
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSchemeConformance(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	if doc.NodeCount() < 500 {
		t.Fatalf("generated document too small: %d nodes", doc.NodeCount())
	}
	for _, s := range All(false) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, cq := range conformanceQueries {
				if cq.skip[s.Name()] {
					continue
				}
				want := domIDs(doc, cq.query)
				got, err := QueryIDs(db, s, cq.query)
				if err != nil {
					t.Errorf("%s (%s): %v", cq.name, cq.query, err)
					continue
				}
				if !int64sEqual(want, got) {
					t.Errorf("%s (%s): dom returned %d ids, %s returned %d ids\nwant prefix: %v\ngot prefix:  %v",
						cq.name, cq.query, len(want), s.Name(), len(got), prefix(want, 10), prefix(got, 10))
				}
			}
		})
	}
}

// TestSchemeConformanceWithValueIndex re-runs the value-sensitive subset
// with the F5 value indexes enabled: results must be identical.
func TestSchemeConformanceWithValueIndex(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	queries := []string{
		"/site/people/person[address/city='Berlin']/name",
		"/site/open_auctions/open_auction[initial > 250]",
		"/site/people/person[@id='person5']",
	}
	for _, s := range All(true) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, q := range queries {
				want := domIDs(doc, q)
				got, err := QueryIDs(db, s, q)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					continue
				}
				if !int64sEqual(want, got) {
					t.Errorf("%s: want %d ids, got %d", q, len(want), len(got))
				}
			}
		})
	}
}

// TestInlineConformance compares the Inline scheme by value multiset
// (its ids are host-row ids, not node ids).
func TestInlineConformance(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	inline, err := NewInline(xmlgen.AuctionDTD, "site")
	if err != nil {
		t.Fatalf("mapping: %v", err)
	}
	db, err := LoadDocument(inline, doc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	queries := []string{
		"/site/people/person/name",
		"/site/people/person[@id='person5']/name",
		"/site/people/person[address/city='Berlin']/name",
		"//person[profile/@income > 80000]/name",
		"/site/open_auctions/open_auction[initial > 250]/initial",
		"//city",
		"/site/regions/africa/item/name",
	}
	for _, q := range queries {
		nodes := xpath.Eval(doc, xpath.MustParse(q))
		var want []string
		for _, n := range nodes {
			want = append(want, n.Text())
		}
		rows, err := Query(db, inline, q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		var got []string
		for _, r := range rows.Data {
			got = append(got, r[1].Text())
		}
		sort.Strings(want)
		sort.Strings(got)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("%s: want %d values, got %d\nwant prefix: %v\ngot prefix:  %v",
				q, len(want), len(got), prefixStr(want, 5), prefixStr(got, 5))
		}
	}
}

func prefix(v []int64, n int) []int64 {
	if len(v) > n {
		return v[:n]
	}
	return v
}

func prefixStr(v []string, n int) []string {
	if len(v) > n {
		return v[:n]
	}
	return v
}

// TestReconstruct round-trips the document through every scheme that
// preserves full fidelity.
func TestReconstruct(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 3})
	want := xmldom.SerializeString(doc.Root)
	for _, s := range All(false) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			got, err := s.Reconstruct(db)
			if err != nil {
				t.Fatalf("reconstruct: %v", err)
			}
			if xmldom.SerializeString(got.Root) != want {
				t.Errorf("%s: reconstruction differs from original", s.Name())
			}
		})
	}
}

// TestInsertSubtree checks ordered insertion across the updatable
// schemes: after inserting, reconstruction must match a DOM-level
// insertion into the same document.
func TestInsertSubtree(t *testing.T) {
	for _, mk := range []func() Scheme{
		func() Scheme { return NewEdge(false) },
		func() Scheme { return NewBinary(false) },
		func() Scheme { return NewInterval(false) },
		func() Scheme { return NewDewey(false) },
	} {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 3})
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			// Insert a new category as the 2nd child of <categories>.
			cats := xpath.Eval(doc, xpath.MustParse("/site/categories"))
			if len(cats) != 1 {
				t.Fatalf("expected one categories element")
			}
			sub, err := xmldom.ParseString(`<category id="categoryNEW"><name>Fresh Category</name><description>inserted</description></category>`)
			if err != nil {
				t.Fatalf("parse subtree: %v", err)
			}
			subtree := sub.RootElement().Copy()
			if err := s.InsertSubtree(db, int64(cats[0].Pre), 1, subtree); err != nil {
				t.Fatalf("insert: %v", err)
			}
			// Mirror the insertion on the DOM.
			cats[0].InsertChild(sub.RootElement().Copy(), 1)
			doc.Number()
			want := xmldom.SerializeString(doc.Root)
			got, err := s.Reconstruct(db)
			if err != nil {
				t.Fatalf("reconstruct: %v", err)
			}
			if xmldom.SerializeString(got.Root) != want {
				t.Errorf("%s: post-insert reconstruction differs", s.Name())
			}
			// Queries still work and see the new node.
			ids, err := QueryIDs(db, s, "/site/categories/category[@id='categoryNEW']")
			if err != nil {
				t.Fatalf("query after insert: %v", err)
			}
			if len(ids) != 1 {
				t.Errorf("%s: expected to find inserted category, got %d rows", s.Name(), len(ids))
			}
		})
	}
}

// TestAncestorAndParentAxes exercises the upward axes on the schemes
// that translate them (edge: parent only; interval and dewey: both).
func TestAncestorAndParentAxes(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	queries := []string{
		"/site/people/person/address/../name",
		"//city/ancestor::person/@id",
		"//increase/ancestor::open_auction",
	}
	for _, s := range All(false) {
		db, err := LoadDocument(s, doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := domIDs(doc, q)
			got, err := QueryIDs(db, s, q)
			if err != nil {
				if isUnsupported(err) {
					continue
				}
				t.Errorf("%s %s: %v", s.Name(), q, err)
				continue
			}
			if !int64sEqual(want, got) {
				t.Errorf("%s %s: want %d ids, got %d", s.Name(), q, len(want), len(got))
			}
		}
	}
}

// TestDescendantAttributeAxis checks the //@name expansion across
// schemes (schemes without a node()-test translation report n/a).
func TestDescendantAttributeAxis(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 7})
	for _, s := range All(false) {
		db, err := LoadDocument(s, doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{"//@id", "//@category"} {
			want := domIDs(doc, q)
			got, err := QueryIDs(db, s, q)
			if err != nil {
				if isUnsupported(err) {
					continue
				}
				t.Errorf("%s %s: %v", s.Name(), q, err)
				continue
			}
			if !int64sEqual(want, got) {
				t.Errorf("%s %s: want %d, got %d", s.Name(), q, len(want), len(got))
			}
		}
	}
}

// TestConformanceAcrossSeeds re-runs a core query subset on differently
// seeded documents, guarding against fixture-specific passes.
func TestConformanceAcrossSeeds(t *testing.T) {
	queries := []string{
		"/site/people/person/name",
		"//item/name",
		"/site/open_auctions/open_auction[initial > 100]/@id",
		"//bidder[1]/increase",
	}
	for _, seed := range []uint64{11, 23, 99} {
		doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: seed})
		for _, s := range All(false) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			for _, q := range queries {
				want := domIDs(doc, q)
				got, err := QueryIDs(db, s, q)
				if err != nil {
					if isUnsupported(err) {
						continue
					}
					t.Errorf("seed %d %s %s: %v", seed, s.Name(), q, err)
					continue
				}
				if !int64sEqual(want, got) {
					t.Errorf("seed %d %s %s: want %d, got %d", seed, s.Name(), q, len(want), len(got))
				}
			}
		}
	}
}
