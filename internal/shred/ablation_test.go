package shred

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// TestEdgeCatalogConformance: catalog-driven descendant expansion
// (ablation A1) must agree with the DOM on the full battery.
func TestEdgeCatalogConformance(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	s := NewEdge(false)
	s.UseCatalog(true)
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, cq := range conformanceQueries {
		if cq.skip[s.Name()] {
			continue
		}
		want := domIDs(doc, cq.query)
		got, err := QueryIDs(db, s, cq.query)
		if err != nil {
			t.Errorf("%s: %v", cq.query, err)
			continue
		}
		if !int64sEqual(want, got) {
			t.Errorf("%s: want %d ids, got %d", cq.query, len(want), len(got))
		}
	}
	// The catalog-driven SQL must not contain blind wildcard hops.
	sql, err := s.Translate(xpath.MustParse("//item/name"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "kind = 'elem' AND e2.source") && !strings.Contains(sql, "name =") {
		t.Errorf("unexpected blind expansion:\n%s", sql)
	}
	blind := NewEdge(false)
	dbBlind, err := LoadDocument(blind, doc)
	if err != nil {
		t.Fatal(err)
	}
	_ = dbBlind
	sqlBlind, err := blind.Translate(xpath.MustParse("//item/name"))
	if err != nil {
		t.Fatal(err)
	}
	// Catalog expansion names every hop; blind expansion leaves
	// wildcard hops with only a kind test.
	if strings.Count(sql, "name = ") <= strings.Count(sqlBlind, "name = ") {
		t.Errorf("catalog SQL should name more hops: %d vs %d",
			strings.Count(sql, "name = "), strings.Count(sqlBlind, "name = "))
	}
}

// TestEdgeCatalogAfterInsert: the catalog must cover paths introduced by
// ordered insertion, or catalog-driven queries silently miss new data.
func TestEdgeCatalogAfterInsert(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 3})
	s := NewEdge(false)
	s.UseCatalog(true)
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	cats := xpath.Eval(doc, xpath.MustParse("/site/categories"))
	fragDoc, err := xmldom.ParseString(`<category id="cX"><name>New</name><description><parlist><listitem>fresh path</listitem></parlist></description></category>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertSubtree(db, int64(cats[0].Pre), 0, fragDoc.RootElement().Copy()); err != nil {
		t.Fatal(err)
	}
	// The listitem under a category description is a brand-new path.
	ids, err := QueryIDs(db, s, "//category//listitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Errorf("inserted path not found via catalog expansion: %d ids", len(ids))
	}
}

// TestIntervalChildViaRegion: the region formulation of child steps
// (ablation A2) must agree with the parent-probe formulation.
func TestIntervalChildViaRegion(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	region := NewInterval(false)
	region.ChildViaRegion(true)
	db, err := LoadDocument(region, doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, cq := range conformanceQueries {
		if cq.skip[region.Name()] {
			continue
		}
		want := domIDs(doc, cq.query)
		got, err := QueryIDs(db, region, cq.query)
		if err != nil {
			t.Errorf("%s: %v", cq.query, err)
			continue
		}
		if !int64sEqual(want, got) {
			t.Errorf("%s: want %d ids, got %d", cq.query, len(want), len(got))
		}
	}
	sql, err := region.Translate(xpath.MustParse("/site/people/person"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "level = ") && !strings.Contains(sql, "level =") {
		t.Errorf("region child step missing level predicate:\n%s", sql)
	}
}
