package shred

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Binary is the attribute-partitioned variant of the edge mapping
// (Florescu & Kossmann): the edge table split horizontally by label, so
// a step with a name test scans only that label's (much smaller)
// partition. Partitions carry (source, ordinal, target, value); the
// label is implicit in the table.
//
// Element partitions are named be_<label>, attribute partitions
// ba_<label>, and text/comment/pi nodes share bt_text / bt_comment /
// bt_pi. A path catalog collected at load time drives descendant-step
// expansion.
type Binary struct {
	elemTables map[string]string
	attrTables map[string]string
	catalog    *translate.PathCatalog
	valueIndex bool
	nameSeq    int
}

// NewBinary returns a Binary scheme; withValueIndex adds (value) indexes
// on every partition for the F5 ablation.
func NewBinary(withValueIndex bool) *Binary {
	return &Binary{
		elemTables: map[string]string{},
		attrTables: map[string]string{},
		catalog:    translate.NewPathCatalog(),
		valueIndex: withValueIndex,
	}
}

// Name implements Scheme.
func (bn *Binary) Name() string { return "binary" }

// Setup implements Scheme: partitions are created lazily per label
// during Load; only the fixed kind partitions exist up front.
func (bn *Binary) Setup(db *sqldb.Database) error {
	for _, t := range []string{"bt_text", "bt_comment", "bt_pi"} {
		if err := bn.createPartition(db, t); err != nil {
			return err
		}
	}
	return nil
}

func (bn *Binary) createPartition(db *sqldb.Database, table string) error {
	stmts := []string{
		fmt.Sprintf(`CREATE TABLE %s (
			source INTEGER NOT NULL,
			ordinal INTEGER NOT NULL,
			target INTEGER NOT NULL PRIMARY KEY,
			value TEXT
		)`, table),
		fmt.Sprintf(`CREATE INDEX %s_source ON %s (source, ordinal)`, table, table),
	}
	if bn.valueIndex {
		stmts = append(stmts, fmt.Sprintf(`CREATE INDEX %s_value ON %s (value)`, table, table))
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// partitionFor resolves (creating on demand) the partition table for a
// named node. Sanitized labels can collide; a sequence suffix keeps the
// table names unique.
func (bn *Binary) partitionFor(db *sqldb.Database, m map[string]string, prefix, label string) (string, error) {
	if t, ok := m[label]; ok {
		return t, nil
	}
	base := prefix + translate.SanitizeName(label)
	table := base
	for taken := true; taken; {
		taken = false
		for _, existing := range bn.elemTables {
			if existing == table {
				taken = true
			}
		}
		for _, existing := range bn.attrTables {
			if existing == table {
				taken = true
			}
		}
		if taken {
			bn.nameSeq++
			table = fmt.Sprintf("%s_%d", base, bn.nameSeq)
		}
	}
	if err := bn.createPartition(db, table); err != nil {
		return "", err
	}
	m[label] = table
	return table, nil
}

// Load implements Scheme.
func (bn *Binary) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return bn.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (bn *Binary) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()
	batchers := map[string]*batcher{}
	getBatcher := func(table string) *batcher {
		b := batchers[table]
		if b == nil {
			b = newBatcherCtx(ctx, db, table)
			batchers[table] = b
		}
		return b
	}

	var walk func(n *xmldom.Node, labelPath string) error
	emit := func(n *xmldom.Node, labelPath string) (string, error) {
		var table string
		var err error
		var seg string
		switch n.Kind {
		case xmldom.ElementNode:
			seg = n.Name
			table, err = bn.partitionFor(db, bn.elemTables, "be_", n.Name)
		case xmldom.AttributeNode:
			seg = "@" + n.Name
			table, err = bn.partitionFor(db, bn.attrTables, "ba_", n.Name)
		case xmldom.TextNode:
			seg = "#text"
			table = "bt_text"
		case xmldom.CommentNode:
			seg = "#comment"
			table = "bt_comment"
		case xmldom.ProcInstNode:
			seg = "#pi"
			table = "bt_pi"
		default:
			return "", errScheme("binary", "unexpected node kind %v", n.Kind)
		}
		if err != nil {
			return "", err
		}
		childPath := seg
		if labelPath != "" {
			childPath = labelPath + "/" + seg
		}
		bn.catalog.Add(childPath)
		row := []sqldb.Value{
			sqldb.NewInt(int64(n.Parent.Pre)),
			sqldb.NewInt(int64(globalOrdinal(n))),
			sqldb.NewInt(int64(n.Pre)),
			nodeValue(n),
		}
		if err := getBatcher(table).add(row); err != nil {
			return "", err
		}
		return childPath, nil
	}
	walk = func(n *xmldom.Node, labelPath string) error {
		for _, a := range n.Attrs {
			if _, err := emit(a, labelPath); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			childPath, err := emit(c, labelPath)
			if err != nil {
				return err
			}
			if c.Kind == xmldom.ElementNode {
				if err := walk(c, childPath); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(doc.Root, ""); err != nil {
		return err
	}
	tables := make([]string, 0, len(batchers))
	for t := range batchers {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		if err := batchers[t].flush(); err != nil {
			return err
		}
	}
	return nil
}

// Translate implements Scheme.
func (bn *Binary) Translate(q *xpath.Path) (string, error) {
	return translate.Binary(q, translate.BinaryOptions{
		Catalog: bn.catalog,
		ElemTable: func(label string) (string, bool) {
			t, ok := bn.elemTables[label]
			return t, ok
		},
		AttrTable: func(label string) (string, bool) {
			t, ok := bn.attrTables[label]
			return t, ok
		},
		TextTable: "bt_text",
	})
}

// Reconstruct implements Scheme: the partitions are unioned back into
// edge form and assembled.
func (bn *Binary) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	type edgeRow struct {
		source, ordinal, target int64
		name, kind, value       string
	}
	bySource := map[int64][]edgeRow{}
	collect := func(table, kind, name string) error {
		rows, err := db.Query("SELECT source, ordinal, target, value FROM " + table)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			er := edgeRow{
				source:  r[0].Int(),
				ordinal: r[1].Int(),
				target:  r[2].Int(),
				name:    name,
				kind:    kind,
				value:   r[3].Text(),
			}
			bySource[er.source] = append(bySource[er.source], er)
		}
		return nil
	}
	elemLabels := make([]string, 0, len(bn.elemTables))
	for l := range bn.elemTables {
		elemLabels = append(elemLabels, l)
	}
	sort.Strings(elemLabels)
	for _, l := range elemLabels {
		if err := collect(bn.elemTables[l], "elem", l); err != nil {
			return nil, err
		}
	}
	attrLabels := make([]string, 0, len(bn.attrTables))
	for l := range bn.attrTables {
		attrLabels = append(attrLabels, l)
	}
	sort.Strings(attrLabels)
	for _, l := range attrLabels {
		if err := collect(bn.attrTables[l], "attr", l); err != nil {
			return nil, err
		}
	}
	if err := collect("bt_text", "text", ""); err != nil {
		return nil, err
	}
	if err := collect("bt_comment", "comment", ""); err != nil {
		return nil, err
	}
	if err := collect("bt_pi", "pi", ""); err != nil {
		return nil, err
	}

	for k := range bySource {
		rs := bySource[k]
		sort.Slice(rs, func(i, j int) bool { return rs[i].ordinal < rs[j].ordinal })
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	var build func(parent *xmldom.Node, id int64) error
	build = func(parent *xmldom.Node, id int64) error {
		for _, er := range bySource[id] {
			switch er.kind {
			case "attr":
				parent.Attrs = append(parent.Attrs, &xmldom.Node{Kind: xmldom.AttributeNode, Name: er.name, Value: er.value, Parent: parent})
			case "elem":
				el := &xmldom.Node{Kind: xmldom.ElementNode, Name: er.name, Parent: parent}
				parent.Children = append(parent.Children, el)
				if err := build(el, er.target); err != nil {
					return err
				}
			case "text":
				parent.Children = append(parent.Children, &xmldom.Node{Kind: xmldom.TextNode, Value: er.value, Parent: parent})
			case "comment":
				parent.Children = append(parent.Children, &xmldom.Node{Kind: xmldom.CommentNode, Value: er.value, Parent: parent})
			case "pi":
				parent.Children = append(parent.Children, &xmldom.Node{Kind: xmldom.ProcInstNode, Value: er.value, Parent: parent})
			}
		}
		return nil
	}
	if err := build(doc.Root, 0); err != nil {
		return nil, err
	}
	if doc.RootElement() == nil {
		return nil, errScheme("binary", "no root element stored")
	}
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme: like Edge, a local ordinal shift on
// the parent's partitions plus appends — but the shift must touch every
// partition holding a child of the parent.
func (bn *Binary) InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error {
	// Count attributes of the parent across attribute partitions.
	var nAttrs int64
	for _, t := range bn.attrTables {
		v, err := db.QueryScalar("SELECT COUNT(*) FROM "+t+" WHERE source = ?", sqldb.NewInt(parentID))
		if err != nil {
			return err
		}
		nAttrs += v.Int()
	}
	ordinal := nAttrs + int64(position) + 1

	allTables := bn.allPartitions()
	var maxID int64
	for _, t := range allTables {
		if _, err := db.Exec("UPDATE "+t+" SET ordinal = ordinal + 1 WHERE source = ? AND ordinal >= ?",
			sqldb.NewInt(parentID), sqldb.NewInt(ordinal)); err != nil {
			return err
		}
		v, err := db.QueryScalar("SELECT MAX(target) FROM " + t)
		if err != nil {
			return err
		}
		if !v.IsNull() && v.Int() > maxID {
			maxID = v.Int()
		}
	}
	nextID := maxID + 1

	batchers := map[string]*batcher{}
	getBatcher := func(table string) *batcher {
		b := batchers[table]
		if b == nil {
			b = newBatcher(db, table)
			batchers[table] = b
		}
		return b
	}
	var insert func(n *xmldom.Node, source, ordinal int64, labelPath string) error
	insert = func(n *xmldom.Node, source, ordinal int64, labelPath string) error {
		var table, seg string
		var err error
		switch n.Kind {
		case xmldom.ElementNode:
			seg = n.Name
			table, err = bn.partitionFor(db, bn.elemTables, "be_", n.Name)
		case xmldom.AttributeNode:
			seg = "@" + n.Name
			table, err = bn.partitionFor(db, bn.attrTables, "ba_", n.Name)
		case xmldom.TextNode:
			seg, table = "#text", "bt_text"
		case xmldom.CommentNode:
			seg, table = "#comment", "bt_comment"
		case xmldom.ProcInstNode:
			seg, table = "#pi", "bt_pi"
		}
		if err != nil {
			return err
		}
		childPath := seg
		if labelPath != "" {
			childPath = labelPath + "/" + seg
		}
		bn.catalog.Add(childPath)
		id := nextID
		nextID++
		row := []sqldb.Value{
			sqldb.NewInt(source),
			sqldb.NewInt(ordinal),
			sqldb.NewInt(id),
			nodeValue(n),
		}
		if err := getBatcher(table).add(row); err != nil {
			return err
		}
		ord := int64(1)
		for _, a := range n.Attrs {
			if err := insert(a, id, ord, childPath); err != nil {
				return err
			}
			ord++
		}
		for _, c := range n.Children {
			if err := insert(c, id, ord, childPath); err != nil {
				return err
			}
			ord++
		}
		return nil
	}
	parentPath, err := bn.labelPathOf(db, parentID)
	if err != nil {
		return err
	}
	if err := insert(subtree, parentID, ordinal, parentPath); err != nil {
		return err
	}
	for _, b := range batchers {
		if err := b.flush(); err != nil {
			return err
		}
	}
	return nil
}

// labelPathOf reconstructs the label path of a stored element by walking
// parent links across partitions (update-path bookkeeping only).
func (bn *Binary) labelPathOf(db *sqldb.Database, id int64) (string, error) {
	if id == 0 {
		return "", nil
	}
	var segs []string
	cur := id
	for cur != 0 {
		found := false
		for label, t := range bn.elemTables {
			rows, err := db.Query("SELECT source FROM "+t+" WHERE target = ?", sqldb.NewInt(cur))
			if err != nil {
				return "", err
			}
			if rows.Len() > 0 {
				segs = append([]string{label}, segs...)
				cur = rows.Data[0][0].Int()
				found = true
				break
			}
		}
		if !found {
			return "", errScheme("binary", "node %d not found in any element partition", cur)
		}
	}
	return joinSegs(segs), nil
}

func joinSegs(segs []string) string {
	out := ""
	for i, s := range segs {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	return out
}

func (bn *Binary) allPartitions() []string {
	var out []string
	for _, t := range bn.elemTables {
		out = append(out, t)
	}
	for _, t := range bn.attrTables {
		out = append(out, t)
	}
	out = append(out, "bt_text", "bt_comment", "bt_pi")
	sort.Strings(out)
	return out
}
