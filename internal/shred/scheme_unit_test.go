package shred

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xmlgen"
)

const unitDoc = `<r a="1"><x><y>hello</y><y>world</y></x><z/>text<w b="2">mixed<v/>tail</w></r>`

func loadUnit(t *testing.T, s Scheme) *sqldb.Database {
	t.Helper()
	doc, err := xmldom.ParseString(unitDoc)
	if err != nil {
		t.Fatal(err)
	}
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEdgeTableLayout(t *testing.T) {
	db := loadUnit(t, NewEdge(false))
	// One edge per non-document node.
	doc, _ := xmldom.ParseString(unitDoc)
	n, _ := db.QueryScalar(`SELECT COUNT(*) FROM edge`)
	if int(n.Int()) != doc.NodeCount()-1 {
		t.Fatalf("edges = %d, nodes-1 = %d", n.Int(), doc.NodeCount()-1)
	}
	// Root element hangs off source 0.
	rows, err := db.Query(`SELECT name, kind FROM edge WHERE source = 0`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0].Text() != "r" {
		t.Fatalf("root edge: %v %v", rows, err)
	}
	// Simple-content elements carry their text in the value column.
	v, _ := db.QueryScalar(`SELECT value FROM edge WHERE name = 'y' AND kind = 'elem' AND value = 'hello'`)
	if v.Text() != "hello" {
		t.Errorf("denormalized value missing: %v", v)
	}
	// Mixed-content elements do not (w has element children).
	rows, _ = db.Query(`SELECT value FROM edge WHERE name = 'w' AND kind = 'elem'`)
	if rows.Len() != 1 || !rows.Data[0][0].IsNull() {
		t.Errorf("mixed content should have NULL value: %v", rows.Data)
	}
	// Attribute edges keep kind = 'attr' and their value.
	v, _ = db.QueryScalar(`SELECT value FROM edge WHERE kind = 'attr' AND name = 'a'`)
	if v.Text() != "1" {
		t.Errorf("attr value: %v", v)
	}
	// Ordinals: attributes precede children.
	rows, _ = db.Query(`SELECT kind, ordinal FROM edge WHERE source = (SELECT target FROM edge WHERE name = 'r') ORDER BY ordinal`)
	if rows.Data[0][0].Text() != "attr" || rows.Data[0][1].Int() != 1 {
		t.Errorf("attr must be ordinal 1: %v", rows.Data)
	}
}

func TestIntervalRegionInvariants(t *testing.T) {
	db := loadUnit(t, NewInterval(false))
	// Every non-root node's pre lies inside its parent's region and one
	// level below — checked in SQL itself.
	bad, err := db.QueryScalar(`
		SELECT COUNT(*) FROM accel c, accel p
		WHERE c.parent = p.pre
		  AND (c.pre <= p.pre OR c.pre > p.pre + p.size OR c.level <> p.level + 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Int() != 0 {
		t.Fatalf("%d region violations", bad.Int())
	}
	// Sizes are consistent: parent size = sum of (child size + 1).
	bad, err = db.QueryScalar(`
		SELECT COUNT(*) FROM accel p
		WHERE p.kind = 'elem'
		  AND p.size <> (SELECT COALESCE(SUM(c.size + 1), 0) FROM accel c WHERE c.parent = p.pre)`)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Int() != 0 {
		t.Fatalf("%d size violations", bad.Int())
	}
}

func TestDeweyPathOrderIsDocumentOrder(t *testing.T) {
	db := loadUnit(t, NewDewey(false))
	// Lexicographic path order must equal pre order for the loaded doc.
	rows, err := db.Query(`SELECT pre FROM dewey ORDER BY path`)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(0)
	for _, r := range rows.Data {
		if r[0].Int() <= last && last != 0 {
			t.Fatalf("path order diverges from document order at pre %d", r[0].Int())
		}
		last = r[0].Int()
	}
	// Parent paths are proper prefixes.
	bad, err := db.QueryScalar(`
		SELECT COUNT(*) FROM dewey c
		WHERE c.parent IS NOT NULL AND NOT (c.path LIKE c.parent || '.%')`)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Int() != 0 {
		t.Fatalf("%d prefix violations", bad.Int())
	}
}

func TestBinaryPartitionNaming(t *testing.T) {
	// Labels that sanitize to the same identifier must get distinct
	// partitions, and element vs attribute namespaces must not collide.
	doc, err := xmldom.ParseString(`<r><a-b>1</a-b><a.b>2</a.b><c x="y"/><x>3</x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBinary(false)
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	names := db.TableNames()
	set := map[string]bool{}
	for _, n := range names {
		if set[n] {
			t.Fatalf("duplicate table %s", n)
		}
		set[n] = true
	}
	// a-b and a.b both sanitize to a_b: one must have a suffix.
	ids, err := QueryIDs(db, s, `/r/a-b`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("a-b: %v %v", ids, err)
	}
	// Element <x> and attribute @x live in different partitions.
	ids, err = QueryIDs(db, s, `/r/x`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("element x: %v %v", ids, err)
	}
	ids, err = QueryIDs(db, s, `/r/c/@x`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("attr x: %v %v", ids, err)
	}
	// Round trip through partitions.
	rec, err := s.Reconstruct(db)
	if err != nil {
		t.Fatal(err)
	}
	if xmldom.SerializeString(rec.Root) != xmldom.SerializeString(doc.Root) {
		t.Error("binary round trip with colliding labels failed")
	}
}

func TestUniversalRejectsRecursion(t *testing.T) {
	doc := xmlgen.Recursive(4, 2, 1)
	_, err := LoadDocument(NewUniversal(), doc)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("expected recursion rejection, got %v", err)
	}
}

func TestUniversalColumnCollisions(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><a-b>1</a-b><a_b>2</a_b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniversal()
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := QueryIDs(db, s, `/r/a-b`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("a-b: %v %v", ids, err)
	}
	ids, err = QueryIDs(db, s, `/r/a_b`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("a_b: %v %v", ids, err)
	}
}

func TestInlineRejectsNonConforming(t *testing.T) {
	inline, err := NewInline(`
<!ELEMENT root (item*)>
<!ELEMENT item (name)>
<!ELEMENT name (#PCDATA)>
`, "root")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		doc  string
		frag string
	}{
		{`<other/>`, "does not match DTD root"},
		{`<root><item><name>x</name><bogus/></item></root>`, "not declared"},
		{`<root><item><name>x</name><name>y</name></item></root>`, "more than once"},
		{`<root><item badattr="1"><name>x</name></item></root>`, "not declared"},
	}
	for _, c := range cases {
		fresh, _ := NewInline(`
<!ELEMENT root (item*)>
<!ELEMENT item (name)>
<!ELEMENT name (#PCDATA)>
`, "root")
		doc, err := xmldom.ParseString(c.doc)
		if err != nil {
			t.Fatal(err)
		}
		_, err = LoadDocument(fresh, doc)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: expected error mentioning %q, got %v", c.doc, c.frag, err)
		}
	}
	_ = inline
}

func TestInlineRecursiveDocuments(t *testing.T) {
	// Recursive DTDs work: each part row self-references via parentid.
	s, err := NewInline(xmlgen.RecursiveDTD, "assembly")
	if err != nil {
		t.Fatal(err)
	}
	doc := xmlgen.Recursive(4, 2, 1)
	db, err := LoadDocument(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Document-rooted descendant over the recursive element is exact.
	wantParts := 0
	for _, n := range doc.Nodes() {
		if n.Kind == xmldom.ElementNode && n.Name == "part" {
			wantParts++
		}
	}
	rows, err := Query(db, s, `//part`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != wantParts {
		t.Errorf("//part = %d, want %d", rows.Len(), wantParts)
	}
	rows, err = Query(db, s, `//partname`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != wantParts {
		t.Errorf("//partname = %d, want %d", rows.Len(), wantParts)
	}
}

func TestSchemeErrorOnBadParent(t *testing.T) {
	doc, _ := xmldom.ParseString(`<r><a/></r>`)
	frag, _ := xmldom.ParseString(`<new/>`)
	for _, s := range []Scheme{NewInterval(false), NewDewey(false)} {
		db, err := LoadDocument(s, doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InsertSubtree(db, 99999, 0, frag.RootElement().Copy()); err == nil {
			t.Errorf("%s: bogus parent id accepted", s.Name())
		}
	}
}
