package shred

import (
	"context"
	"sort"

	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Edge is the Florescu-Kossmann edge mapping: one relation holding
// every parent-child edge of the document graph.
//
//	edge(source, ordinal, name, kind, target, value)
//
// Child steps are self-joins; descendant steps expand into bounded
// unions of join chains (the scheme has no structural index), which is
// the cost experiment F2 measures against the interval encoding.
type Edge struct {
	// maxDepth is remembered from the loaded document and bounds the
	// descendant expansion.
	maxDepth int
	// valueIndex requests an additional (name, value) index at Setup,
	// the F5 ablation toggle.
	valueIndex bool
	// catalog records observed label paths; UseCatalog switches the
	// descendant translation to catalog-driven expansion (ablation A1).
	catalog    *translate.PathCatalog
	useCatalog bool
}

// NewEdge returns an Edge scheme. withValueIndex adds the (name, value)
// index used by the F5 ablation.
func NewEdge(withValueIndex bool) *Edge {
	return &Edge{maxDepth: 16, valueIndex: withValueIndex, catalog: translate.NewPathCatalog()}
}

// UseCatalog toggles catalog-driven descendant expansion (ablation A1):
// `//x` unions only the label chains observed in the data instead of
// blind wildcard chains of every depth.
func (e *Edge) UseCatalog(on bool) { e.useCatalog = on }

// Name implements Scheme.
func (e *Edge) Name() string { return "edge" }

// Setup implements Scheme.
func (e *Edge) Setup(db *sqldb.Database) error {
	stmts := []string{
		`CREATE TABLE edge (
			source INTEGER NOT NULL,
			ordinal INTEGER NOT NULL,
			name TEXT,
			kind TEXT NOT NULL,
			target INTEGER NOT NULL PRIMARY KEY,
			value TEXT
		)`,
		`CREATE INDEX edge_source ON edge (source, ordinal)`,
		`CREATE INDEX edge_name ON edge (name)`,
	}
	if e.valueIndex {
		stmts = append(stmts, `CREATE INDEX edge_name_value ON edge (name, value)`)
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Scheme.
func (e *Edge) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return e.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (e *Edge) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()
	if d := doc.MaxDepth(); d > 0 {
		e.maxDepth = d
	}
	b := newBatcherCtx(ctx, db, "edge")
	for _, n := range doc.Nodes() {
		if n.Kind == xmldom.DocumentNode {
			continue
		}
		e.catalog.Add(catalogPath(n))
		row := []sqldb.Value{
			sqldb.NewInt(int64(n.Parent.Pre)),
			sqldb.NewInt(int64(globalOrdinal(n))),
			nodeName(n),
			sqldb.NewText(n.Kind.String()),
			sqldb.NewInt(int64(n.Pre)),
			nodeValue(n),
		}
		if err := b.add(row); err != nil {
			return err
		}
	}
	return b.flush()
}

// Translate implements Scheme.
func (e *Edge) Translate(q *xpath.Path) (string, error) {
	opt := translate.EdgeOptions{Table: "edge", MaxDepth: e.maxDepth}
	if e.useCatalog {
		opt.Catalog = e.catalog
	}
	return translate.Edge(q, opt)
}

// catalogPath renders a node's label path in catalog form
// ("site/people/person/@id").
func catalogPath(n *xmldom.Node) string {
	var segs []string
	for m := n; m != nil && m.Kind != xmldom.DocumentNode; m = m.Parent {
		switch m.Kind {
		case xmldom.ElementNode:
			segs = append(segs, m.Name)
		case xmldom.AttributeNode:
			segs = append(segs, "@"+m.Name)
		case xmldom.TextNode:
			segs = append(segs, "#text")
		case xmldom.CommentNode:
			segs = append(segs, "#comment")
		case xmldom.ProcInstNode:
			segs = append(segs, "#pi")
		}
	}
	var b []byte
	for i := len(segs) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, '/')
		}
		b = append(b, segs[i]...)
	}
	return string(b)
}

// Reconstruct implements Scheme.
func (e *Edge) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	rows, err := db.Query(`SELECT source, ordinal, name, kind, target, value FROM edge`)
	if err != nil {
		return nil, err
	}
	type edgeRow struct {
		source, ordinal, target int64
		name, kind, value       string
		hasValue                bool
	}
	bySource := map[int64][]edgeRow{}
	for _, r := range rows.Data {
		er := edgeRow{
			source:   r[0].Int(),
			ordinal:  r[1].Int(),
			name:     r[2].Text(),
			kind:     r[3].Text(),
			target:   r[4].Int(),
			value:    r[5].Text(),
			hasValue: !r[5].IsNull(),
		}
		bySource[er.source] = append(bySource[er.source], er)
	}
	for k := range bySource {
		rs := bySource[k]
		sort.Slice(rs, func(i, j int) bool { return rs[i].ordinal < rs[j].ordinal })
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	var build func(parent *xmldom.Node, id int64) error
	build = func(parent *xmldom.Node, id int64) error {
		for _, er := range bySource[id] {
			switch er.kind {
			case "attr":
				a := &xmldom.Node{Kind: xmldom.AttributeNode, Name: er.name, Value: er.value, Parent: parent}
				parent.Attrs = append(parent.Attrs, a)
			case "elem":
				el := &xmldom.Node{Kind: xmldom.ElementNode, Name: er.name, Parent: parent}
				parent.Children = append(parent.Children, el)
				if err := build(el, er.target); err != nil {
					return err
				}
			case "text":
				t := &xmldom.Node{Kind: xmldom.TextNode, Value: er.value, Parent: parent}
				parent.Children = append(parent.Children, t)
			case "comment":
				c := &xmldom.Node{Kind: xmldom.CommentNode, Value: er.value, Parent: parent}
				parent.Children = append(parent.Children, c)
			case "pi":
				p := &xmldom.Node{Kind: xmldom.ProcInstNode, Name: er.name, Value: er.value, Parent: parent}
				parent.Children = append(parent.Children, p)
			default:
				return errScheme("edge", "unknown edge kind %q", er.kind)
			}
		}
		return nil
	}
	if err := build(doc.Root, 0); err != nil {
		return nil, err
	}
	if doc.RootElement() == nil {
		return nil, errScheme("edge", "no root element stored")
	}
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme: following siblings' ordinals shift by
// one (a local update), then the subtree's edges are appended with fresh
// node ids.
func (e *Edge) InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error {
	nAttrs, err := db.QueryScalar(`SELECT COUNT(*) FROM edge WHERE source = ? AND kind = 'attr'`, sqldb.NewInt(parentID))
	if err != nil {
		return err
	}
	ordinal := nAttrs.Int() + int64(position) + 1
	if _, err := db.Exec(`UPDATE edge SET ordinal = ordinal + 1 WHERE source = ? AND ordinal >= ?`,
		sqldb.NewInt(parentID), sqldb.NewInt(ordinal)); err != nil {
		return err
	}
	maxID, err := db.QueryScalar(`SELECT MAX(target) FROM edge`)
	if err != nil {
		return err
	}
	nextID := maxID.Int() + 1

	// Keep the path catalog complete so catalog-driven descendant
	// expansion (ablation A1) stays exact after updates.
	parentPath, err := e.storedLabelPath(db, parentID)
	if err != nil {
		return err
	}

	b := newBatcher(db, "edge")
	var insert func(n *xmldom.Node, source, ordinal int64, path string) error
	insert = func(n *xmldom.Node, source, ordinal int64, path string) error {
		id := nextID
		nextID++
		seg := nodeSegment(n)
		childPath := seg
		if path != "" {
			childPath = path + "/" + seg
		}
		e.catalog.Add(childPath)
		row := []sqldb.Value{
			sqldb.NewInt(source),
			sqldb.NewInt(ordinal),
			nodeName(n),
			sqldb.NewText(n.Kind.String()),
			sqldb.NewInt(id),
			nodeValue(n),
		}
		if err := b.add(row); err != nil {
			return err
		}
		ord := int64(1)
		for _, a := range n.Attrs {
			if err := insert(a, id, ord, childPath); err != nil {
				return err
			}
			ord++
		}
		for _, c := range n.Children {
			if err := insert(c, id, ord, childPath); err != nil {
				return err
			}
			ord++
		}
		return nil
	}
	if err := insert(subtree, parentID, ordinal, parentPath); err != nil {
		return err
	}
	return b.flush()
}

// nodeSegment is the catalog segment for one node.
func nodeSegment(n *xmldom.Node) string {
	switch n.Kind {
	case xmldom.ElementNode:
		return n.Name
	case xmldom.AttributeNode:
		return "@" + n.Name
	case xmldom.TextNode:
		return "#text"
	case xmldom.CommentNode:
		return "#comment"
	case xmldom.ProcInstNode:
		return "#pi"
	}
	return "#node"
}

// storedLabelPath walks parent links in the edge table to recover the
// label path of a stored element.
func (e *Edge) storedLabelPath(db *sqldb.Database, id int64) (string, error) {
	var segs []string
	cur := id
	for cur != 0 {
		rows, err := db.Query(`SELECT source, name FROM edge WHERE target = ?`, sqldb.NewInt(cur))
		if err != nil {
			return "", err
		}
		if rows.Len() == 0 {
			return "", errScheme("edge", "no node with id %d", cur)
		}
		segs = append([]string{rows.Data[0][1].Text()}, segs...)
		cur = rows.Data[0][0].Int()
	}
	out := ""
	for i, s := range segs {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	return out, nil
}
