package shred

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Inline is the DTD-driven shared-inlining mapping (Shanmugasundaram et
// al. 1999): the DTD's element graph determines a real relational
// schema. Elements that are set-valued, multi-parented, recursive, or
// the root get their own relation; every other element collapses into
// its ancestor relation as columns. Conforming queries then need far
// fewer joins than the generic mappings — the T4 experiment.
//
// Documented information loss (inherent to the mapping): comments, PIs
// and mixed-content ordering are not preserved, and inlined elements
// share their host row's id.
type Inline struct {
	dtd     *dtd.DTD
	mapping *translate.InlineMapping
}

// NewInline builds the scheme from DTD text. root names the document
// element ("" = first declared).
func NewInline(dtdText, root string) (*Inline, error) {
	d, err := dtd.Parse(dtdText, root)
	if err != nil {
		return nil, err
	}
	g := dtd.BuildGraph(d)
	m, err := translate.BuildInlineMapping(g)
	if err != nil {
		return nil, err
	}
	return &Inline{dtd: d, mapping: m}, nil
}

// Mapping exposes the derived relational mapping (for the T4 report:
// relation and column counts).
func (in *Inline) Mapping() *translate.InlineMapping { return in.mapping }

// Name implements Scheme.
func (in *Inline) Name() string { return "inline" }

// Setup implements Scheme.
func (in *Inline) Setup(db *sqldb.Database) error {
	for _, elem := range in.mapping.Order {
		rel := in.mapping.Relations[elem]
		cols := []string{
			"id INTEGER NOT NULL PRIMARY KEY",
			"parentid INTEGER",
			"parentcode TEXT",
			"ordinal INTEGER NOT NULL",
		}
		for _, c := range rel.Columns {
			typ := "TEXT"
			if c.Kind == translate.ColPresence {
				typ = "BOOLEAN"
			}
			cols = append(cols, translate.QuoteIdent(c.Key)+" "+typ)
		}
		ddl := fmt.Sprintf("CREATE TABLE %s (%s)", rel.Table, strings.Join(cols, ", "))
		if _, err := db.Exec(ddl); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s_parent ON %s (parentid)", rel.Table, rel.Table)); err != nil {
			return err
		}
	}
	return nil
}

// openRow accumulates one relation row during loading.
type openRow struct {
	rel    *translate.InlineRelation
	id     int64
	parent sqldb.Value
	code   sqldb.Value // parentCODE: inner path of the parent element
	ord    int64
	vals   map[string]sqldb.Value
}

// Load implements Scheme. The document must conform to the DTD.
func (in *Inline) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return in.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (in *Inline) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()
	root := doc.RootElement()
	if root == nil {
		return errScheme("inline", "document has no root element")
	}
	if root.Name != in.dtd.Root {
		return errScheme("inline", "root element <%s> does not match DTD root <%s>", root.Name, in.dtd.Root)
	}

	batchers := map[string]*batcher{}
	flushRow := func(r *openRow) error {
		b := batchers[r.rel.Table]
		if b == nil {
			b = newBatcherCtx(ctx, db, r.rel.Table)
			batchers[r.rel.Table] = b
		}
		row := make([]sqldb.Value, 4+len(r.rel.Columns))
		row[0] = sqldb.NewInt(r.id)
		row[1] = r.parent
		row[2] = r.code
		row[3] = sqldb.NewInt(r.ord)
		for i, c := range r.rel.Columns {
			if v, ok := r.vals[c.Key]; ok {
				row[4+i] = v
			} else {
				row[4+i] = sqldb.Null
			}
		}
		return b.add(row)
	}

	// sibCount tracks per-(host row, element) occurrence ordinals.
	var walk func(el *xmldom.Node, host *openRow, innerPath []string, sibCount map[string]int64) error
	walk = func(el *xmldom.Node, host *openRow, innerPath []string, sibCount map[string]int64) error {
		decl := in.dtd.Elements[el.Name]
		if decl == nil {
			return errScheme("inline", "element <%s> is not declared in the DTD", el.Name)
		}
		model := in.mapping.Graph.Models[el.Name]

		if in.mapping.Shared[el.Name] {
			rel := in.mapping.Relations[el.Name]
			parent := sqldb.Null
			code := sqldb.Null
			if host != nil {
				parent = sqldb.NewInt(host.id)
				code = sqldb.NewText(strings.Join(innerPath, "."))
			}
			countKey := code.Text() + "|" + el.Name
			sibCount[countKey]++
			row := &openRow{
				rel:    rel,
				id:     int64(el.Pre),
				parent: parent,
				code:   code,
				ord:    sibCount[countKey],
				vals:   map[string]sqldb.Value{},
			}
			if err := in.fillNode(row, el, nil, model); err != nil {
				return err
			}
			childCounts := map[string]int64{}
			for _, c := range el.Children {
				if c.Kind != xmldom.ElementNode {
					continue
				}
				if err := walk(c, row, nil, childCounts); err != nil {
					return err
				}
			}
			return flushRow(row)
		}

		// Inlined element: fill columns on the host row.
		if host == nil {
			return errScheme("inline", "internal: inlined element <%s> without a host", el.Name)
		}
		path := append(append([]string{}, innerPath...), el.Name)
		key := translate.ColumnKey(path, "")
		if _, ok := host.rel.ByKey[key]; !ok {
			return errScheme("inline", "element <%s> at %s is not part of relation %s (non-conforming document)", el.Name, key, host.rel.Table)
		}
		if _, dup := host.vals[key]; dup {
			return errScheme("inline", "element <%s> occurs more than once at %s (non-conforming document: DTD says at most one)", el.Name, key)
		}
		if err := in.fillNode(host, el, path, model); err != nil {
			return err
		}
		for _, c := range el.Children {
			if c.Kind != xmldom.ElementNode {
				continue
			}
			if err := walk(c, host, path, sibCount); err != nil {
				return err
			}
		}
		return nil
	}

	rootCounts := map[string]int64{}
	if err := walk(root, nil, nil, rootCounts); err != nil {
		return err
	}
	tables := make([]string, 0, len(batchers))
	for t := range batchers {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		if err := batchers[t].flush(); err != nil {
			return err
		}
	}
	return nil
}

// fillNode stores an element's own value and attributes into row.
func (in *Inline) fillNode(row *openRow, el *xmldom.Node, path []string, model *dtd.SimpleModel) error {
	key := translate.ColumnKey(path, "")
	if model != nil && model.HasText {
		text := directText(el)
		row.vals[key] = sqldb.NewText(text)
	} else if len(path) > 0 {
		row.vals[key] = sqldb.NewBool(true)
	}
	for _, a := range el.Attrs {
		akey := translate.ColumnKey(path, a.Name)
		if _, ok := row.rel.ByKey[akey]; !ok {
			return errScheme("inline", "attribute %s on <%s> is not declared in the DTD", a.Name, el.Name)
		}
		row.vals[akey] = sqldb.NewText(a.Value)
	}
	return nil
}

// directText concatenates the element's immediate text children (mixed
// content order is not preserved — a documented inlining loss).
func directText(el *xmldom.Node) string {
	var b strings.Builder
	for _, c := range el.Children {
		if c.Kind == xmldom.TextNode {
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

// Translate implements Scheme.
func (in *Inline) Translate(q *xpath.Path) (string, error) {
	return translate.Inline(q, in.mapping)
}

// Reconstruct implements Scheme: rebuilds the canonical document
// (element structure, attributes, text — without comments/PIs or mixed
// interleaving, per the mapping's documented loss).
func (in *Inline) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	type relRow struct {
		rel    *translate.InlineRelation
		id     int64
		parent sqldb.Value
		code   string
		ord    int64
		vals   map[string]sqldb.Value
	}
	// children indexes child rows by (parent row id, parentcode).
	type childKey struct {
		parent int64
		code   string
	}
	children := map[childKey][]*relRow{}
	var roots []*relRow
	for _, elem := range in.mapping.Order {
		rel := in.mapping.Relations[elem]
		rows, err := db.Query("SELECT * FROM " + rel.Table)
		if err != nil {
			return nil, err
		}
		colIdx := map[string]int{}
		for i, c := range rows.Columns {
			colIdx[c] = i
		}
		for _, r := range rows.Data {
			rr := &relRow{
				rel:    rel,
				id:     r[colIdx["id"]].Int(),
				parent: r[colIdx["parentid"]],
				code:   r[colIdx["parentcode"]].Text(),
				ord:    r[colIdx["ordinal"]].Int(),
				vals:   map[string]sqldb.Value{},
			}
			for _, c := range rel.Columns {
				rr.vals[c.Key] = r[colIdx[c.Key]]
			}
			if rr.parent.IsNull() {
				roots = append(roots, rr)
			} else {
				k := childKey{parent: rr.parent.Int(), code: rr.code}
				children[k] = append(children[k], rr)
			}
		}
	}
	for k := range children {
		cs := children[k]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].ord != cs[j].ord {
				return cs[i].ord < cs[j].ord
			}
			return cs[i].id < cs[j].id
		})
	}
	if len(roots) != 1 {
		return nil, errScheme("inline", "expected exactly one root row, found %d", len(roots))
	}

	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	// build renders a relation row; buildAt recurses through its inlined
	// region and pulls child-relation rows at each position.
	var build func(rr *relRow) (*xmldom.Node, error)
	build = func(rr *relRow) (*xmldom.Node, error) {
		var buildAt func(elem string, path []string, vals map[string]sqldb.Value) (*xmldom.Node, error)
		buildAt = func(elem string, path []string, vals map[string]sqldb.Value) (*xmldom.Node, error) {
			el := &xmldom.Node{Kind: xmldom.ElementNode, Name: elem}
			decl := in.dtd.Elements[elem]
			model := in.mapping.Graph.Models[elem]
			key := translate.ColumnKey(path, "")
			if model != nil && model.HasText {
				if v, ok := vals[key]; ok && !v.IsNull() && v.Text() != "" {
					el.Children = append(el.Children, &xmldom.Node{Kind: xmldom.TextNode, Value: v.Text(), Parent: el})
				}
			}
			if decl != nil {
				for _, a := range decl.Attrs {
					akey := translate.ColumnKey(path, a.Name)
					if v, ok := vals[akey]; ok && !v.IsNull() {
						el.Attrs = append(el.Attrs, &xmldom.Node{Kind: xmldom.AttributeNode, Name: a.Name, Value: v.Text(), Parent: el})
					}
				}
			}
			if model != nil {
				code := strings.Join(path, ".")
				for _, ch := range model.Children {
					if _, declared := in.dtd.Elements[ch.Name]; !declared {
						continue
					}
					if in.mapping.Shared[ch.Name] {
						for _, cr := range children[childKey{parent: rr.id, code: code}] {
							if cr.rel.Elem != ch.Name {
								continue
							}
							cn, err := build(cr)
							if err != nil {
								return nil, err
							}
							cn.Parent = el
							el.Children = append(el.Children, cn)
						}
						continue
					}
					childPath := append(append([]string{}, path...), ch.Name)
					ckey := translate.ColumnKey(childPath, "")
					v, ok := vals[ckey]
					if !ok || v.IsNull() {
						continue
					}
					cn, err := buildAt(ch.Name, childPath, vals)
					if err != nil {
						return nil, err
					}
					cn.Parent = el
					el.Children = append(el.Children, cn)
				}
			}
			return el, nil
		}
		return buildAt(rr.rel.Elem, nil, rr.vals)
	}
	rootEl, err := build(roots[0])
	if err != nil {
		return nil, err
	}
	rootEl.Parent = doc.Root
	doc.Root.Children = []*xmldom.Node{rootEl}
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme for subtrees rooted at a shared
// element (a new relation row); inserting inlined fragments in order is
// not expressible.
func (in *Inline) InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error {
	if subtree.Kind != xmldom.ElementNode || !in.mapping.Shared[subtree.Name] {
		return errScheme("inline", "only subtrees rooted at a shared element can be inserted")
	}
	maxID := int64(0)
	for _, elem := range in.mapping.Order {
		rel := in.mapping.Relations[elem]
		v, err := db.QueryScalar("SELECT MAX(id) FROM " + rel.Table)
		if err != nil {
			return err
		}
		if !v.IsNull() && v.Int() > maxID {
			maxID = v.Int()
		}
	}
	nextID := maxID + 1

	rel := in.mapping.Relations[subtree.Name]
	// Ordinal: among same-name children of the parent row.
	if _, err := db.Exec("UPDATE "+rel.Table+" SET ordinal = ordinal + 1 WHERE parentid = ? AND parentcode = '' AND ordinal > ?",
		sqldb.NewInt(parentID), sqldb.NewInt(int64(position))); err != nil {
		return err
	}

	batchers := map[string]*batcher{}
	var store func(el *xmldom.Node, parent sqldb.Value, code string, ord int64) error
	store = func(el *xmldom.Node, parent sqldb.Value, code string, ord int64) error {
		r := in.mapping.Relations[el.Name]
		row := &openRow{rel: r, id: nextID, parent: parent, code: sqldb.NewText(code), ord: ord, vals: map[string]sqldb.Value{}}
		nextID++
		model := in.mapping.Graph.Models[el.Name]
		if err := in.fillNode(row, el, nil, model); err != nil {
			return err
		}
		var fill func(e *xmldom.Node, path []string) error
		childCounts := map[string]int64{}
		fill = func(e *xmldom.Node, path []string) error {
			for _, c := range e.Children {
				if c.Kind != xmldom.ElementNode {
					continue
				}
				if in.mapping.Shared[c.Name] {
					ck := strings.Join(path, ".") + "|" + c.Name
					childCounts[ck]++
					if err := store(c, sqldb.NewInt(row.id), strings.Join(path, "."), childCounts[ck]); err != nil {
						return err
					}
					continue
				}
				cpath := append(append([]string{}, path...), c.Name)
				cmodel := in.mapping.Graph.Models[c.Name]
				if err := in.fillNode(row, c, cpath, cmodel); err != nil {
					return err
				}
				if err := fill(c, cpath); err != nil {
					return err
				}
			}
			return nil
		}
		if err := fill(el, nil); err != nil {
			return err
		}
		b := batchers[r.Table]
		if b == nil {
			b = newBatcher(db, r.Table)
			batchers[r.Table] = b
		}
		vals := make([]sqldb.Value, 4+len(r.Columns))
		vals[0] = sqldb.NewInt(row.id)
		vals[1] = row.parent
		vals[2] = row.code
		vals[3] = sqldb.NewInt(row.ord)
		for i, c := range r.Columns {
			if v, ok := row.vals[c.Key]; ok {
				vals[4+i] = v
			} else {
				vals[4+i] = sqldb.Null
			}
		}
		return b.add(vals)
	}
	if err := store(subtree, sqldb.NewInt(parentID), "", int64(position)+1); err != nil {
		return err
	}
	tables := make([]string, 0, len(batchers))
	for t := range batchers {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		if err := batchers[t].flush(); err != nil {
			return err
		}
	}
	return nil
}

var _ Scheme = (*Inline)(nil)
var _ Scheme = (*Edge)(nil)
var _ Scheme = (*Binary)(nil)
var _ Scheme = (*Universal)(nil)
var _ Scheme = (*Interval)(nil)
var _ Scheme = (*Dewey)(nil)

// All returns one instance of every scheme that needs no DTD, keyed for
// the experiment harness. withValueIndex toggles the F5 ablation.
func All(withValueIndex bool) []Scheme {
	return []Scheme{
		NewEdge(withValueIndex),
		NewBinary(withValueIndex),
		NewUniversal(),
		NewInterval(withValueIndex),
		NewDewey(withValueIndex),
	}
}

// LoadDocument is a convenience: set up a fresh database and load doc
// under scheme s.
func LoadDocument(s Scheme, doc *xmldom.Document) (*sqldb.Database, error) {
	db := sqldb.New()
	if err := s.Setup(db); err != nil {
		return nil, err
	}
	if err := s.Load(db, doc); err != nil {
		return nil, err
	}
	return db, nil
}
