package shred

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// dumpTable renders a table ordered by the given column in a canonical
// text form for byte comparison.
func dumpTable(t *testing.T, db *sqldb.Database, query string) string {
	t.Helper()
	rows, err := db.Query(query)
	if err != nil {
		t.Fatalf("dump query: %v", err)
	}
	var sb strings.Builder
	for _, r := range rows.Data {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			if v.IsNull() {
				sb.WriteString("<null>")
			} else {
				fmt.Fprintf(&sb, "%q", v.Text())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// streamVsDOM loads the same document text through the DOM path and the
// streaming path and asserts identical table contents.
func streamVsDOM(t *testing.T, src string, mk func() Scheme, dump string) (Scheme, Scheme) {
	t.Helper()
	domScheme, streamScheme := mk(), mk()

	domDB := sqldb.New()
	if err := domScheme.Setup(domDB); err != nil {
		t.Fatalf("setup: %v", err)
	}
	doc, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := domScheme.Load(domDB, doc); err != nil {
		t.Fatalf("dom load: %v", err)
	}

	streamDB := sqldb.New()
	if err := streamScheme.Setup(streamDB); err != nil {
		t.Fatalf("setup: %v", err)
	}
	sl, ok := streamScheme.(StreamLoader)
	if !ok {
		t.Fatalf("%s does not implement StreamLoader", streamScheme.Name())
	}
	tz := xmldom.NewTokenizer(strings.NewReader(src))
	if err := sl.LoadStream(context.Background(), streamDB, tz); err != nil {
		t.Fatalf("stream load: %v", err)
	}

	want := dumpTable(t, domDB, dump)
	got := dumpTable(t, streamDB, dump)
	if want == "" {
		t.Fatalf("empty table dump")
	}
	if got != want {
		t.Fatalf("table mismatch\n-- dom --\n%s\n-- stream --\n%s", clip(want), clip(got))
	}
	return domScheme, streamScheme
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "...\n"
	}
	return s
}

var streamShredDocs = []struct {
	name string
	src  string
}{
	{"auction", xmlgen.AuctionXML(xmlgen.Config{Factor: 0.02, Seed: 11})},
	{"minimal", `<a/>`},
	{"mixed", `<a i="1"> t1 <b>x</b><!--c--> t2 <?pi d?><c y="2" z="3">only text</c></a>`},
	{"prolog", `<!-- lead --><?style x?><root><k>v</k></root><!-- tail -->`},
	{"cdata", `<a><b>pre<![CDATA[ <raw> ]]>post</b></a>`},
	{"simple-content", `<a><b>x<!--c-->y</b><c><d/>t</c><e></e></a>`},
}

func TestEdgeStreamDifferential(t *testing.T) {
	const dump = `SELECT source, ordinal, name, kind, target, value FROM edge ORDER BY target`
	for _, tc := range streamShredDocs {
		t.Run(tc.name, func(t *testing.T) {
			d, s := streamVsDOM(t, tc.src, func() Scheme { return NewEdge(false) }, dump)
			de, se := d.(*Edge), s.(*Edge)
			if de.maxDepth != se.maxDepth {
				t.Fatalf("maxDepth %d vs %d", de.maxDepth, se.maxDepth)
			}
			// Catalog-driven descendant expansion must see the same label
			// paths: compare the translated SQL for a descendant query.
			de.UseCatalog(true)
			se.UseCatalog(true)
			q := xpath.MustParse("//name")
			wsql, werr := de.Translate(q)
			gsql, gerr := se.Translate(q)
			if (werr == nil) != (gerr == nil) || wsql != gsql {
				t.Fatalf("catalog translate diverges:\n%v %q\nvs\n%v %q", werr, wsql, gerr, gsql)
			}
		})
	}
}

func TestIntervalStreamDifferential(t *testing.T) {
	const dump = `SELECT pre, parent, size, level, ordinal, kind, name, value FROM accel ORDER BY pre`
	for _, tc := range streamShredDocs {
		t.Run(tc.name, func(t *testing.T) {
			streamVsDOM(t, tc.src, func() Scheme { return NewInterval(false) }, dump)
		})
	}
}

// TestStreamLoadQueries runs the conformance query battery over
// stream-loaded databases, pinning translated results to the DOM
// evaluator exactly as the DOM-load conformance test does.
func TestStreamLoadQueries(t *testing.T) {
	src := xmlgen.AuctionXML(xmlgen.Config{Factor: 0.02, Seed: 7})
	doc, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	schemes := []Scheme{NewEdge(false), NewInterval(false)}
	for _, s := range schemes {
		db := sqldb.New()
		if err := s.Setup(db); err != nil {
			t.Fatalf("%s setup: %v", s.Name(), err)
		}
		tz := xmldom.NewTokenizer(strings.NewReader(src))
		if err := s.(StreamLoader).LoadStream(context.Background(), db, tz); err != nil {
			t.Fatalf("%s stream load: %v", s.Name(), err)
		}
		for _, q := range conformanceQueries {
			if q.skip[s.Name()] {
				continue
			}
			got, err := QueryIDs(db, s, q.query)
			if err != nil {
				t.Fatalf("%s %s: %v", s.Name(), q.name, err)
			}
			want := domIDs(doc, q.query)
			if !int64sEqual(got, want) {
				t.Fatalf("%s %s: ids %v, want %v", s.Name(), q.name, got, want)
			}
		}
	}
}

// TestStreamLoadCancel verifies cancellation bounds a streaming load at
// batch granularity.
func TestStreamLoadCancel(t *testing.T) {
	src := xmlgen.AuctionXML(xmlgen.Config{Factor: 0.05, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db := sqldb.New()
	s := NewInterval(false)
	if err := s.Setup(db); err != nil {
		t.Fatalf("setup: %v", err)
	}
	tz := xmldom.NewTokenizer(strings.NewReader(src))
	if err := s.LoadStream(ctx, db, tz); err == nil {
		t.Fatalf("expected cancellation error")
	}
}
