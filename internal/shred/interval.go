package shred

import (
	"context"
	"sort"

	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Interval is the XPath-accelerator mapping (Grust): every node carries
// its pre-order rank, subtree size, level, parent and sibling ordinal,
// so each XPath axis is a region predicate and descendant steps are
// single range joins.
//
//	accel(pre, parent, size, level, ordinal, kind, name, value)
//
// The post rank is derivable from (pre, size, level) and is not stored.
type Interval struct {
	valueIndex     bool
	childViaRegion bool
}

// NewInterval returns an Interval scheme; withValueIndex adds the
// (name, value) index for the F5 ablation.
func NewInterval(withValueIndex bool) *Interval {
	return &Interval{valueIndex: withValueIndex}
}

// ChildViaRegion toggles ablation A2: child steps as region predicates
// (pre-range + level) instead of parent-id probes.
func (iv *Interval) ChildViaRegion(on bool) { iv.childViaRegion = on }

// Name implements Scheme.
func (iv *Interval) Name() string { return "interval" }

// Setup implements Scheme.
func (iv *Interval) Setup(db *sqldb.Database) error {
	stmts := []string{
		// pre is logically unique but not declared PRIMARY KEY: the
		// renumbering sweep in InsertSubtree shifts many rows in one
		// UPDATE, which would transiently collide under a unique index.
		`CREATE TABLE accel (
			pre INTEGER NOT NULL,
			parent INTEGER,
			size INTEGER NOT NULL,
			level INTEGER NOT NULL,
			ordinal INTEGER NOT NULL,
			kind TEXT NOT NULL,
			name TEXT,
			value TEXT
		)`,
		`CREATE INDEX accel_pre ON accel (pre)`,
		`CREATE INDEX accel_parent ON accel (parent, ordinal)`,
		`CREATE INDEX accel_name_pre ON accel (name, pre)`,
		`CREATE INDEX accel_kind_pre ON accel (kind, pre)`,
	}
	if iv.valueIndex {
		stmts = append(stmts, `CREATE INDEX accel_name_value ON accel (name, value)`)
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Scheme.
func (iv *Interval) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return iv.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (iv *Interval) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()
	b := newBatcherCtx(ctx, db, "accel")
	for _, n := range doc.Nodes() {
		parent := sqldb.Null
		if n.Parent != nil {
			parent = sqldb.NewInt(int64(n.Parent.Pre))
		}
		row := []sqldb.Value{
			sqldb.NewInt(int64(n.Pre)),
			parent,
			sqldb.NewInt(int64(n.Size)),
			sqldb.NewInt(int64(n.Level)),
			sqldb.NewInt(int64(globalOrdinal(n))),
			sqldb.NewText(n.Kind.String()),
			nodeName(n),
			nodeValue(n),
		}
		if err := b.add(row); err != nil {
			return err
		}
	}
	return b.flush()
}

// Translate implements Scheme.
func (iv *Interval) Translate(q *xpath.Path) (string, error) {
	return translate.Interval(q, translate.IntervalOptions{Table: "accel", ChildViaRegion: iv.childViaRegion})
}

// Reconstruct implements Scheme.
func (iv *Interval) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	rows, err := db.Query(`SELECT pre, parent, kind, name, value, ordinal FROM accel ORDER BY pre`)
	if err != nil {
		return nil, err
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	nodes := map[int64]*xmldom.Node{}
	type pending struct {
		node    *xmldom.Node
		parent  int64
		ordinal int64
		pre     int64
	}
	var pend []pending
	for _, r := range rows.Data {
		pre := r[0].Int()
		kind := r[2].Text()
		var n *xmldom.Node
		switch kind {
		case "doc":
			n = doc.Root
		case "elem":
			n = &xmldom.Node{Kind: xmldom.ElementNode, Name: r[3].Text()}
		case "attr":
			n = &xmldom.Node{Kind: xmldom.AttributeNode, Name: r[3].Text(), Value: r[4].Text()}
		case "text":
			n = &xmldom.Node{Kind: xmldom.TextNode, Value: r[4].Text()}
		case "comment":
			n = &xmldom.Node{Kind: xmldom.CommentNode, Value: r[4].Text()}
		case "pi":
			n = &xmldom.Node{Kind: xmldom.ProcInstNode, Name: r[3].Text(), Value: r[4].Text()}
		default:
			return nil, errScheme("interval", "unknown node kind %q", kind)
		}
		nodes[pre] = n
		if kind != "doc" {
			pend = append(pend, pending{node: n, parent: r[1].Int(), ordinal: r[5].Int(), pre: pre})
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].parent != pend[j].parent {
			return pend[i].parent < pend[j].parent
		}
		if pend[i].ordinal != pend[j].ordinal {
			return pend[i].ordinal < pend[j].ordinal
		}
		return pend[i].pre < pend[j].pre
	})
	for _, p := range pend {
		parent := nodes[p.parent]
		if parent == nil {
			return nil, errScheme("interval", "dangling parent reference %d", p.parent)
		}
		p.node.Parent = parent
		if p.node.Kind == xmldom.AttributeNode {
			parent.Attrs = append(parent.Attrs, p.node)
		} else {
			parent.Children = append(parent.Children, p.node)
		}
	}
	if doc.RootElement() == nil {
		return nil, errScheme("interval", "no root element stored")
	}
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme. The interval encoding pays the
// paper's documented price here: every node at or after the insertion
// point must be renumbered (two document-wide UPDATE sweeps), in
// contrast to Dewey's local relabeling — the F3 contrast.
func (iv *Interval) InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error {
	prow, err := db.Query(`SELECT level, size FROM accel WHERE pre = ?`, sqldb.NewInt(parentID))
	if err != nil {
		return err
	}
	if prow.Len() == 0 {
		return errScheme("interval", "no node with id %d", parentID)
	}
	pLevel := prow.Data[0][0].Int()
	pSize := prow.Data[0][1].Int()

	// Children (non-attribute) of the parent in order.
	kids, err := db.Query(
		`SELECT pre, ordinal FROM accel WHERE parent = ? AND kind <> 'attr' ORDER BY ordinal`,
		sqldb.NewInt(parentID))
	if err != nil {
		return err
	}
	nAttrs, err := db.QueryScalar(`SELECT COUNT(*) FROM accel WHERE parent = ? AND kind = 'attr'`, sqldb.NewInt(parentID))
	if err != nil {
		return err
	}

	// Insertion boundary: the pre of the child currently at `position`,
	// or the end of the parent's region for an append.
	var boundary int64
	if position < kids.Len() {
		boundary = kids.Data[position][0].Int()
	} else {
		position = kids.Len()
		boundary = parentID + pSize + 1
	}
	newOrdinal := nAttrs.Int() + int64(position) + 1

	// Count the subtree.
	k := int64(0)
	var count func(n *xmldom.Node)
	count = func(n *xmldom.Node) {
		k++
		k += int64(len(n.Attrs))
		for _, c := range n.Children {
			count(c)
		}
	}
	count(subtree)

	// Ancestors (including the parent) gain k descendants. Collect the
	// ancestor chain before shifting.
	var ancestors []sqldb.Value
	cur := parentID
	for {
		ancestors = append(ancestors, sqldb.NewInt(cur))
		r, err := db.Query(`SELECT parent FROM accel WHERE pre = ?`, sqldb.NewInt(cur))
		if err != nil {
			return err
		}
		if r.Len() == 0 || r.Data[0][0].IsNull() {
			break
		}
		cur = r.Data[0][0].Int()
	}
	for _, a := range ancestors {
		if _, err := db.Exec(`UPDATE accel SET size = size + ? WHERE pre = ?`, sqldb.NewInt(k), a); err != nil {
			return err
		}
	}

	// Document-wide renumbering.
	if _, err := db.Exec(`UPDATE accel SET pre = pre + ? WHERE pre >= ?`, sqldb.NewInt(k), sqldb.NewInt(boundary)); err != nil {
		return err
	}
	if _, err := db.Exec(`UPDATE accel SET parent = parent + ? WHERE parent >= ?`, sqldb.NewInt(k), sqldb.NewInt(boundary)); err != nil {
		return err
	}
	// Following siblings shift ordinal.
	if _, err := db.Exec(`UPDATE accel SET ordinal = ordinal + 1 WHERE parent = ? AND ordinal >= ?`,
		sqldb.NewInt(parentID), sqldb.NewInt(newOrdinal)); err != nil {
		return err
	}

	// Insert the subtree rows with contiguous pre numbers at boundary.
	b := newBatcher(db, "accel")
	pre := boundary
	var insert func(n *xmldom.Node, parent int64, level, ordinal int64) error
	insert = func(n *xmldom.Node, parent int64, level, ordinal int64) error {
		myPre := pre
		pre++
		size := int64(0)
		var sz func(m *xmldom.Node) int64
		sz = func(m *xmldom.Node) int64 {
			t := int64(len(m.Attrs))
			for _, c := range m.Children {
				t += 1 + sz(c)
			}
			return t
		}
		size = sz(n)
		row := []sqldb.Value{
			sqldb.NewInt(myPre),
			sqldb.NewInt(parent),
			sqldb.NewInt(size),
			sqldb.NewInt(level),
			sqldb.NewInt(ordinal),
			sqldb.NewText(n.Kind.String()),
			nodeName(n),
			nodeValue(n),
		}
		if err := b.add(row); err != nil {
			return err
		}
		ord := int64(1)
		for _, a := range n.Attrs {
			arow := []sqldb.Value{
				sqldb.NewInt(pre),
				sqldb.NewInt(myPre),
				sqldb.NewInt(0),
				sqldb.NewInt(level + 1),
				sqldb.NewInt(ord),
				sqldb.NewText("attr"),
				sqldb.NewText(a.Name),
				sqldb.NewText(a.Value),
			}
			pre++
			ord++
			if err := b.add(arow); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := insert(c, myPre, level+1, ord); err != nil {
				return err
			}
			ord++
		}
		return nil
	}
	if err := insert(subtree, parentID, pLevel+1, newOrdinal); err != nil {
		return err
	}
	return b.flush()
}
