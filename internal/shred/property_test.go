package shred

import (
	"fmt"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmlgen"
)

// genDoc builds a random document over a small element vocabulary so
// random queries actually hit. It draws from the shared deterministic
// generator so documents are reproducible across platforms.
func genDoc(seed uint64) *xmldom.Document {
	rng := xmlgen.NewRNG(seed)
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z", "10", "25"}
	var mk func(depth int) *xmldom.Node
	mk = func(depth int) *xmldom.Node {
		el := &xmldom.Node{Kind: xmldom.ElementNode, Name: rng.Pick(names)}
		if rng.Intn(3) == 0 {
			el.Attrs = append(el.Attrs, &xmldom.Node{
				Kind: xmldom.AttributeNode, Name: "k", Value: rng.Pick(values), Parent: el,
			})
		}
		kids := 0
		if depth < 4 {
			kids = rng.Intn(4)
		}
		if kids == 0 && rng.Intn(2) == 0 {
			el.Children = append(el.Children, &xmldom.Node{Kind: xmldom.TextNode, Value: rng.Pick(values), Parent: el})
		}
		for i := 0; i < kids; i++ {
			c := mk(depth + 1)
			c.Parent = el
			el.Children = append(el.Children, c)
		}
		return el
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	root := &xmldom.Node{Kind: xmldom.ElementNode, Name: "r", Parent: doc.Root}
	for i := 0; i < 6; i++ {
		c := mk(0)
		c.Parent = root
		root.Children = append(root.Children, c)
	}
	doc.Root.Children = []*xmldom.Node{root}
	doc.Number()
	return doc
}

// The random query pool: every supported construct family.
// Value comparisons go through text() paths: the schemes store an
// element's own (simple) content as its value, whereas XPath's "." is
// the whole-subtree string value — a documented approximation of the
// shredding literature (see DESIGN.md). text() semantics agree exactly.
var fuzzQueries = []string{
	"/r/a", "/r/b/c", "//a", "//b//c", "//a/@k", "//c/text()",
	"/r/*/a", "//a[@k='x']", "//b[c]", "//a[text() = 'y']",
	"//b[c/text() = 10]", "//a[not(b)]", "//c[1]", "//a[count(b) > 1]",
	"//b[contains(text(), 'z')]", "//a[@k='x' or @k='y']",
	"/r/a/b", "//d", "//a[b and c]", "//*[@k]",
}

// TestRandomDocConformance cross-checks every scheme against the DOM
// evaluator over random documents — the repo's main property test.
func TestRandomDocConformance(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		doc := genDoc(seed)
		for _, s := range All(false) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				// Universal rejects recursive documents by design.
				if s.Name() == "universal" {
					continue
				}
				t.Fatalf("seed %d %s: load: %v", seed, s.Name(), err)
			}
			for _, q := range fuzzQueries {
				want := domIDs(doc, q)
				got, err := QueryIDs(db, s, q)
				if err != nil {
					// Documented per-scheme limitations surface as
					// translation errors, never as wrong answers.
					if isUnsupported(err) {
						continue
					}
					t.Errorf("seed %d %s %s: %v", seed, s.Name(), q, err)
					continue
				}
				if !int64sEqual(want, got) {
					t.Errorf("seed %d scheme %s query %s:\n dom: %v\n got: %v\n doc: %s",
						seed, s.Name(), q, want, got, xmldom.SerializeString(doc.Root))
				}
			}
		}
	}
}

func isUnsupported(err error) bool {
	return err != nil && (stringsContains(err.Error(), "does not support") ||
		stringsContains(err.Error(), "unsupported"))
}

func stringsContains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestRandomDocRoundTrip: shred -> reconstruct -> serialize must be the
// identity for the faithful schemes on random documents.
func TestRandomDocRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		doc := genDoc(seed)
		want := xmldom.SerializeString(doc.Root)
		for _, s := range All(false) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				if s.Name() == "universal" {
					continue
				}
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			rec, err := s.Reconstruct(db)
			if err != nil {
				t.Fatalf("seed %d %s reconstruct: %v", seed, s.Name(), err)
			}
			if got := xmldom.SerializeString(rec.Root); got != want {
				t.Errorf("seed %d %s:\nwant %s\ngot  %s", seed, s.Name(), want, got)
			}
		}
	}
}

// TestRepeatedInsertsKeepOrder drives many ordered insertions through
// each updatable scheme and checks the final sibling order matches a
// DOM-maintained reference.
func TestRepeatedInsertsKeepOrder(t *testing.T) {
	for _, mk := range []func() Scheme{
		func() Scheme { return NewEdge(false) },
		func() Scheme { return NewBinary(false) },
		func() Scheme { return NewInterval(false) },
		func() Scheme { return NewDewey(false) },
	} {
		s := mk()
		doc, err := xmldom.ParseString(`<list><i>0</i><i>1</i><i>2</i></list>`)
		if err != nil {
			t.Fatal(err)
		}
		db, err := LoadDocument(s, doc)
		if err != nil {
			t.Fatal(err)
		}
		list := doc.RootElement()
		listID := int64(list.Pre)
		rng := xmlgen.NewRNG(99)
		for k := 0; k < 15; k++ {
			pos := rng.Intn(len(list.Children) + 1)
			frag, err := xmldom.ParseString(fmt.Sprintf("<i>new%d</i>", k))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.InsertSubtree(db, listID, pos, frag.RootElement().Copy()); err != nil {
				t.Fatalf("%s insert %d at %d: %v", s.Name(), k, pos, err)
			}
			list.InsertChild(frag.RootElement().Copy(), pos)
		}
		doc.Number()
		want := xmldom.SerializeString(doc.Root)
		rec, err := s.Reconstruct(db)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := xmldom.SerializeString(rec.Root); got != want {
			t.Errorf("%s after 15 inserts:\nwant %s\ngot  %s", s.Name(), want, got)
		}
	}
}
