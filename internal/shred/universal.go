package shred

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Universal is the denormalized strawman mapping: one wide relation with
// an (id, val) column pair per label and one row per leaf node carrying
// its whole root-to-leaf chain. Simple paths become single-table column
// conjunctions; the redundancy cost dominates experiment T1 and ordered
// updates are not expressible (every ancestor is copied into every leaf
// row).
//
// Restrictions (inherent to the mapping, documented in DESIGN.md):
// recursive documents (a label repeating on one root-to-leaf path) are
// rejected, and positional predicates are untranslatable.
type Universal struct {
	// suffix maps a label segment ("person", "@id", "#text") to its
	// sanitized column suffix; labels maps back.
	suffix  map[string]string
	labels  map[string]string
	order   []string
	catalog *translate.PathCatalog
}

// NewUniversal returns a Universal scheme.
func NewUniversal() *Universal {
	return &Universal{
		suffix:  map[string]string{},
		labels:  map[string]string{},
		catalog: translate.NewPathCatalog(),
	}
}

// Name implements Scheme.
func (u *Universal) Name() string { return "universal" }

// Setup implements Scheme. The universal table's columns depend on the
// document's labels, so the table is created by Load.
func (u *Universal) Setup(*sqldb.Database) error { return nil }

func segmentOf(n *xmldom.Node) string {
	switch n.Kind {
	case xmldom.ElementNode:
		return n.Name
	case xmldom.AttributeNode:
		return "@" + n.Name
	case xmldom.TextNode:
		return "#text"
	case xmldom.CommentNode:
		return "#comment"
	case xmldom.ProcInstNode:
		return "#pi"
	}
	return ""
}

func (u *Universal) suffixFor(seg string) string {
	if s, ok := u.suffix[seg]; ok {
		return s
	}
	base := translate.SanitizeName(seg)
	s := base
	for i := 2; ; i++ {
		if _, taken := u.labels[s]; !taken {
			break
		}
		s = fmt.Sprintf("%s_%d", base, i)
	}
	u.suffix[seg] = s
	u.labels[s] = seg
	u.order = append(u.order, seg)
	return s
}

// Load implements Scheme.
func (u *Universal) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return u.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (u *Universal) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()

	// Pass 1: labels, catalog, recursion check.
	var label func(n *xmldom.Node, chain []string, labelPath string) error
	label = func(n *xmldom.Node, chain []string, labelPath string) error {
		seg := segmentOf(n)
		for _, c := range chain {
			if c == seg {
				return errScheme("universal", "recursive document: label %q repeats on one path (the universal mapping cannot represent it)", seg)
			}
		}
		u.suffixFor(seg)
		path := seg
		if labelPath != "" {
			path = labelPath + "/" + seg
		}
		u.catalog.Add(path)
		chain = append(chain, seg)
		for _, a := range n.Attrs {
			if err := label(a, chain, path); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := label(c, chain, path); err != nil {
				return err
			}
		}
		return nil
	}
	root := doc.RootElement()
	if root == nil {
		return errScheme("universal", "document has no root element")
	}
	if err := label(root, nil, ""); err != nil {
		return err
	}

	// Create the wide table.
	var cols []string
	cols = append(cols, "leaf INTEGER NOT NULL PRIMARY KEY", "leafseg TEXT NOT NULL")
	for _, seg := range u.order {
		s := u.suffix[seg]
		cols = append(cols, fmt.Sprintf("%s INTEGER, %s TEXT",
			translate.QuoteIdent("id_"+s), translate.QuoteIdent("val_"+s)))
	}
	// No per-label indexes: the translation's presence tests (IS NOT
	// NULL) are not sargable and the predicate self-joins hash-join on
	// the anchor id. Indexing all ~2L columns would only multiply the
	// already-pathological load cost.
	if _, err := db.Exec("CREATE TABLE universal (" + strings.Join(cols, ", ") + ")"); err != nil {
		return err
	}

	// Pass 2: one row per leaf.
	width := 2 + 2*len(u.order)
	colPos := map[string]int{} // seg -> index of its id column in the row
	for i, seg := range u.order {
		colPos[seg] = 2 + 2*i
	}
	b := newBatcherCtx(ctx, db, "universal")
	var emit func(n *xmldom.Node, chain []*xmldom.Node) error
	emit = func(n *xmldom.Node, chain []*xmldom.Node) error {
		chain = append(chain, n)
		isLeaf := len(n.Children) == 0 && len(n.Attrs) == 0
		if isLeaf {
			row := make([]sqldb.Value, width)
			for i := range row {
				row[i] = sqldb.Null
			}
			row[0] = sqldb.NewInt(int64(n.Pre))
			row[1] = sqldb.NewText(segmentOf(n))
			for _, m := range chain {
				pos := colPos[segmentOf(m)]
				row[pos] = sqldb.NewInt(int64(m.Pre))
				row[pos+1] = nodeValue(m)
			}
			return b.add(row)
		}
		for _, a := range n.Attrs {
			if err := emit(a, chain); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := emit(c, chain); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(root, nil); err != nil {
		return err
	}
	return b.flush()
}

// Translate implements Scheme.
func (u *Universal) Translate(q *xpath.Path) (string, error) {
	return translate.Universal(q, translate.UniversalOptions{
		Table:   "universal",
		Catalog: u.catalog,
		Column: func(seg string) (string, bool) {
			s, ok := u.suffix[seg]
			return s, ok
		},
	})
}

// Reconstruct implements Scheme: merge the leaf rows' ancestor chains.
func (u *Universal) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	rows, err := db.Query(`SELECT * FROM universal ORDER BY leaf`)
	if err != nil {
		return nil, err
	}
	colSeg := map[int]string{} // id-column position -> segment label
	for i, name := range rows.Columns {
		if strings.HasPrefix(name, "id_") {
			if seg, ok := u.labels[name[3:]]; ok {
				colSeg[i] = seg
			}
		}
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	nodes := map[int64]*xmldom.Node{}
	for _, r := range rows.Data {
		type entry struct {
			pre int64
			seg string
			val string
			has bool
		}
		var chain []entry
		for i, seg := range colSeg {
			if r[i].IsNull() {
				continue
			}
			chain = append(chain, entry{pre: r[i].Int(), seg: seg, val: r[i+1].Text(), has: !r[i+1].IsNull()})
		}
		sort.Slice(chain, func(a, b int) bool { return chain[a].pre < chain[b].pre })
		var parent *xmldom.Node = doc.Root
		for _, e := range chain {
			n, ok := nodes[e.pre]
			if !ok {
				switch {
				case strings.HasPrefix(e.seg, "@"):
					n = &xmldom.Node{Kind: xmldom.AttributeNode, Name: e.seg[1:], Value: e.val, Parent: parent}
					parent.Attrs = append(parent.Attrs, n)
				case e.seg == "#text":
					n = &xmldom.Node{Kind: xmldom.TextNode, Value: e.val, Parent: parent}
					parent.Children = append(parent.Children, n)
				case e.seg == "#comment":
					n = &xmldom.Node{Kind: xmldom.CommentNode, Value: e.val, Parent: parent}
					parent.Children = append(parent.Children, n)
				case e.seg == "#pi":
					n = &xmldom.Node{Kind: xmldom.ProcInstNode, Value: e.val, Parent: parent}
					parent.Children = append(parent.Children, n)
				default:
					n = &xmldom.Node{Kind: xmldom.ElementNode, Name: e.seg, Parent: parent}
					parent.Children = append(parent.Children, n)
				}
				nodes[e.pre] = n
			}
			parent = n
		}
	}
	if doc.RootElement() == nil {
		return nil, errScheme("universal", "no rows stored")
	}
	// Children were appended in leaf order, which is document order;
	// but attribute/child interleaving can misorder empty elements that
	// share a prefix — sort children by pre to be safe.
	var fix func(n *xmldom.Node)
	preOf := map[*xmldom.Node]int64{}
	for pre, n := range nodes {
		preOf[n] = pre
	}
	fix = func(n *xmldom.Node) {
		sort.SliceStable(n.Children, func(i, j int) bool { return preOf[n.Children[i]] < preOf[n.Children[j]] })
		sort.SliceStable(n.Attrs, func(i, j int) bool { return preOf[n.Attrs[i]] < preOf[n.Attrs[j]] })
		for _, c := range n.Children {
			fix(c)
		}
	}
	fix(doc.Root)
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme. Ordered insertion is not expressible
// on the universal layout (every ancestor id is denormalized into every
// leaf row); the F3 experiment documents this as "not supported".
func (u *Universal) InsertSubtree(*sqldb.Database, int64, int, *xmldom.Node) error {
	return errScheme("universal", "ordered insertion is not supported by the universal mapping")
}
