package shred

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/translate"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// deweyWidth is the zero-padded digits per path component; deweyGap is
// the spacing between sibling labels, leaving room for midpoint
// insertion without relabeling (Tatarinov et al.'s insert-friendly
// ordering).
const (
	deweyWidth = 8
	deweyGap   = 1000
)

// Dewey is the Dewey-order mapping: each node's key is the dotted,
// zero-padded chain of sibling labels, so lexicographic key order is
// document order, ancestry is a prefix test, and ordered insertion only
// relabels the inserted subtree.
//
//	dewey(pre, path, parent, level, ordinal, kind, name, value)
type Dewey struct {
	valueIndex bool
}

// NewDewey returns a Dewey scheme; withValueIndex adds the (name, value)
// index for the F5 ablation.
func NewDewey(withValueIndex bool) *Dewey {
	return &Dewey{valueIndex: withValueIndex}
}

// Name implements Scheme.
func (d *Dewey) Name() string { return "dewey" }

// Setup implements Scheme.
func (d *Dewey) Setup(db *sqldb.Database) error {
	stmts := []string{
		`CREATE TABLE dewey (
			pre INTEGER NOT NULL,
			path TEXT NOT NULL,
			parent TEXT,
			level INTEGER NOT NULL,
			ordinal INTEGER NOT NULL,
			kind TEXT NOT NULL,
			name TEXT,
			value TEXT
		)`,
		`CREATE INDEX dewey_path ON dewey (path)`,
		`CREATE INDEX dewey_parent ON dewey (parent)`,
		`CREATE INDEX dewey_name_path ON dewey (name, path)`,
	}
	if d.valueIndex {
		stmts = append(stmts, `CREATE INDEX dewey_name_value ON dewey (name, value)`)
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

func deweyComp(i int64) string {
	return fmt.Sprintf("%0*d", deweyWidth, i)
}

// Load implements Scheme.
func (d *Dewey) Load(db *sqldb.Database, doc *xmldom.Document) error {
	return d.LoadContext(context.Background(), db, doc)
}

// LoadContext implements ContextLoader: cancellation is honored at
// bulk-insert batch granularity.
func (d *Dewey) LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error {
	doc.Number()
	b := newBatcherCtx(ctx, db, "dewey")
	var walk func(n *xmldom.Node, prefix string, level int) error
	walk = func(n *xmldom.Node, prefix string, level int) error {
		ord := int64(1)
		emit := func(c *xmldom.Node) error {
			label := prefix + deweyComp(ord*deweyGap)
			parent := sqldb.Null
			if prefix != "" {
				parent = sqldb.NewText(strings.TrimSuffix(prefix, "."))
			}
			row := []sqldb.Value{
				sqldb.NewInt(int64(c.Pre)),
				sqldb.NewText(label),
				parent,
				sqldb.NewInt(int64(level)),
				sqldb.NewInt(ord),
				sqldb.NewText(c.Kind.String()),
				nodeName(c),
				nodeValue(c),
			}
			if err := b.add(row); err != nil {
				return err
			}
			ord++
			if c.Kind == xmldom.ElementNode {
				return walk(c, label+".", level+1)
			}
			return nil
		}
		for _, a := range n.Attrs {
			if err := emit(a); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := emit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(doc.Root, "", 1); err != nil {
		return err
	}
	return b.flush()
}

// Translate implements Scheme.
func (d *Dewey) Translate(q *xpath.Path) (string, error) {
	return translate.Dewey(q, translate.DeweyOptions{Table: "dewey"})
}

// Reconstruct implements Scheme.
func (d *Dewey) Reconstruct(db sqldb.Queryer) (*xmldom.Document, error) {
	rows, err := db.Query(`SELECT path, kind, name, value FROM dewey ORDER BY path`)
	if err != nil {
		return nil, err
	}
	doc := &xmldom.Document{Root: &xmldom.Node{Kind: xmldom.DocumentNode}}
	byPath := map[string]*xmldom.Node{"": doc.Root}
	for _, r := range rows.Data {
		path := r[0].Text()
		kind := r[1].Text()
		parentPath := ""
		if i := strings.LastIndexByte(path, '.'); i >= 0 {
			parentPath = path[:i]
		}
		parent := byPath[parentPath]
		if parent == nil {
			return nil, errScheme("dewey", "dangling parent path %q", parentPath)
		}
		var n *xmldom.Node
		switch kind {
		case "elem":
			n = &xmldom.Node{Kind: xmldom.ElementNode, Name: r[2].Text()}
		case "attr":
			n = &xmldom.Node{Kind: xmldom.AttributeNode, Name: r[2].Text(), Value: r[3].Text()}
		case "text":
			n = &xmldom.Node{Kind: xmldom.TextNode, Value: r[3].Text()}
		case "comment":
			n = &xmldom.Node{Kind: xmldom.CommentNode, Value: r[3].Text()}
		case "pi":
			n = &xmldom.Node{Kind: xmldom.ProcInstNode, Name: r[2].Text(), Value: r[3].Text()}
		default:
			return nil, errScheme("dewey", "unknown node kind %q", kind)
		}
		n.Parent = parent
		if n.Kind == xmldom.AttributeNode {
			parent.Attrs = append(parent.Attrs, n)
		} else {
			parent.Children = append(parent.Children, n)
		}
		byPath[path] = n
	}
	if doc.RootElement() == nil {
		return nil, errScheme("dewey", "no root element stored")
	}
	doc.Number()
	return doc, nil
}

// InsertSubtree implements Scheme. A new sibling label is the midpoint
// of its neighbors, so only the inserted subtree gets new rows; the
// ordinal bookkeeping of following siblings is the only in-place update
// (Tatarinov's headline result, experiment F3).
func (d *Dewey) InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error {
	prow, err := db.Query(`SELECT path, level FROM dewey WHERE pre = ? AND kind = 'elem'`, sqldb.NewInt(parentID))
	if err != nil {
		return err
	}
	if prow.Len() == 0 {
		return errScheme("dewey", "no element with id %d", parentID)
	}
	parentPath := prow.Data[0][0].Text()
	parentLevel := prow.Data[0][1].Int()

	sibs, err := db.Query(
		`SELECT path, ordinal, kind FROM dewey WHERE parent = ? ORDER BY path`,
		sqldb.NewText(parentPath))
	if err != nil {
		return err
	}
	// Locate the insertion point among non-attribute children.
	var lo, hi int64 // component bounds, hi==0 means open-ended
	var newOrdinal int64 = 1
	childIdx := 0
	placedHi := false
	for _, r := range sibs.Data {
		comp := lastComp(r[0].Text())
		kind := r[2].Text()
		if kind == "attr" {
			lo = comp
			newOrdinal = r[1].Int() + 1
			continue
		}
		if childIdx == position {
			hi = comp
			newOrdinal = r[1].Int()
			placedHi = true
			break
		}
		lo = comp
		newOrdinal = r[1].Int() + 1
		childIdx++
	}

	var newComp int64
	switch {
	case !placedHi:
		newComp = lo + deweyGap
	case hi-lo >= 2:
		newComp = lo + (hi-lo)/2
	default:
		return errScheme("dewey", "no label gap left at this position (relabel required); spread your insertion points")
	}

	// Shift following siblings' ordinals (local bookkeeping only).
	if placedHi {
		if _, err := db.Exec(`UPDATE dewey SET ordinal = ordinal + 1 WHERE parent = ? AND ordinal >= ?`,
			sqldb.NewText(parentPath), sqldb.NewInt(newOrdinal)); err != nil {
			return err
		}
	}

	maxID, err := db.QueryScalar(`SELECT MAX(pre) FROM dewey`)
	if err != nil {
		return err
	}
	nextID := maxID.Int() + 1

	b := newBatcher(db, "dewey")
	var insert func(n *xmldom.Node, path, parent string, level, ordinal int64) error
	insert = func(n *xmldom.Node, path, parent string, level, ordinal int64) error {
		id := nextID
		nextID++
		parentVal := sqldb.Null
		if parent != "" {
			parentVal = sqldb.NewText(parent)
		}
		row := []sqldb.Value{
			sqldb.NewInt(id),
			sqldb.NewText(path),
			parentVal,
			sqldb.NewInt(level),
			sqldb.NewInt(ordinal),
			sqldb.NewText(n.Kind.String()),
			nodeName(n),
			nodeValue(n),
		}
		if err := b.add(row); err != nil {
			return err
		}
		ord := int64(1)
		for _, a := range n.Attrs {
			if err := insert(a, path+"."+deweyComp(ord*deweyGap), path, level+1, ord); err != nil {
				return err
			}
			ord++
		}
		for _, c := range n.Children {
			if err := insert(c, path+"."+deweyComp(ord*deweyGap), path, level+1, ord); err != nil {
				return err
			}
			ord++
		}
		return nil
	}
	newPath := parentPath + "." + deweyComp(newComp)
	if err := insert(subtree, newPath, parentPath, parentLevel+1, newOrdinal); err != nil {
		return err
	}
	return b.flush()
}

// lastComp parses the final numeric component of a Dewey path.
func lastComp(path string) int64 {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		path = path[i+1:]
	}
	var n int64
	for i := 0; i < len(path); i++ {
		n = n*10 + int64(path[i]-'0')
	}
	return n
}
