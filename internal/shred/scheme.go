// Package shred implements the paper's XML-to-relational mapping
// schemes. Each Scheme owns a relational layout inside a sqldb.Database:
// it creates the tables (Setup), decomposes a parsed document into
// tuples (Load), compiles XPath to SQL over its layout (Translate, via
// internal/translate), rebuilds the document from tuples (Reconstruct),
// and supports ordered subtree insertion where the encoding allows it
// (InsertSubtree).
//
// Node identity convention: a node's id is its pre-order rank in the
// originally loaded document (attributes ranked directly after their
// owner). Nodes added later receive fresh ids past the loaded range.
// The Inline scheme approximates identity by hosting-row id.
package shred

import (
	"context"
	"fmt"

	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Scheme is one XML-to-relational mapping.
type Scheme interface {
	// Name is the scheme's short identifier ("edge", "interval", ...).
	Name() string
	// Setup creates the scheme's tables and indexes.
	Setup(db *sqldb.Database) error
	// Load shreds one document. Schemes in this reproduction store a
	// single document per database.
	Load(db *sqldb.Database, doc *xmldom.Document) error
	// Translate compiles an XPath query to SQL with result columns
	// (id, val) in document order.
	Translate(q *xpath.Path) (string, error)
	// Reconstruct rebuilds the stored document from tuples. It takes
	// the read-only Queryer surface so it can run either against the
	// live database or against one pinned snapshot version
	// (reconstruct-while-updating).
	Reconstruct(db sqldb.Queryer) (*xmldom.Document, error)
	// InsertSubtree inserts subtree as the position-th element child
	// (0-based, counted among non-attribute children) of the element
	// with the given node id. Schemes that cannot express ordered
	// updates return an error.
	InsertSubtree(db *sqldb.Database, parentID int64, position int, subtree *xmldom.Node) error
}

// ContextLoader is implemented by schemes whose Load honors
// cancellation: the context is checked at bulk-insert batch
// granularity, so a canceled or expired context bounds a long document
// load at its next flush instead of running it to completion. All
// schemes in this package implement it.
type ContextLoader interface {
	LoadContext(ctx context.Context, db *sqldb.Database, doc *xmldom.Document) error
}

// Query parses an XPath string, translates it under the scheme, and
// executes it.
func Query(db *sqldb.Database, s Scheme, query string) (*sqldb.Rows, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	sql, err := s.Translate(p)
	if err != nil {
		return nil, err
	}
	return db.Query(sql)
}

// QueryIDs runs Query and returns just the id column.
func QueryIDs(db *sqldb.Database, s Scheme, query string) ([]int64, error) {
	rows, err := Query(db, s, query)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].Int())
	}
	return out, nil
}

// batcher accumulates rows and bulk-inserts them in chunks. With a
// context attached (newBatcherCtx) each flush first checks it, so
// cancellation bounds a load at batch granularity.
type batcher struct {
	ctx   context.Context // nil: never canceled
	db    *sqldb.Database
	table string
	rows  [][]sqldb.Value
	limit int
}

func newBatcher(db *sqldb.Database, table string) *batcher {
	return &batcher{db: db, table: table, limit: 4096}
}

func newBatcherCtx(ctx context.Context, db *sqldb.Database, table string) *batcher {
	b := newBatcher(db, table)
	b.ctx = ctx
	return b
}

func (b *batcher) add(row []sqldb.Value) error {
	b.rows = append(b.rows, row)
	if len(b.rows) >= b.limit {
		return b.flush()
	}
	return nil
}

func (b *batcher) flush() error {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	if len(b.rows) == 0 {
		return nil
	}
	_, err := b.db.BulkInsert(b.table, b.rows)
	b.rows = b.rows[:0]
	return err
}

// simpleContent returns an element's denormalized value: the
// concatenation of its text children when it has no element children
// and at least one text child, else ok=false. Every scheme stores this
// on the element row so single-join value predicates work (the Vinline
// variant of Florescu & Kossmann).
func simpleContent(n *xmldom.Node) (string, bool) {
	if n.Kind != xmldom.ElementNode || len(n.Children) == 0 {
		return "", false
	}
	out := ""
	for _, c := range n.Children {
		switch c.Kind {
		case xmldom.TextNode:
			out += c.Value
		case xmldom.ElementNode:
			return "", false
		}
	}
	if out == "" {
		return "", false
	}
	return out, true
}

// nodeValue returns the value column for any node kind.
func nodeValue(n *xmldom.Node) sqldb.Value {
	switch n.Kind {
	case xmldom.AttributeNode, xmldom.TextNode, xmldom.CommentNode, xmldom.ProcInstNode:
		return sqldb.NewText(n.Value)
	case xmldom.ElementNode:
		if s, ok := simpleContent(n); ok {
			return sqldb.NewText(s)
		}
	}
	return sqldb.Null
}

// nodeName returns the name column (NULL for unnamed kinds).
func nodeName(n *xmldom.Node) sqldb.Value {
	switch n.Kind {
	case xmldom.ElementNode, xmldom.AttributeNode, xmldom.ProcInstNode:
		return sqldb.NewText(n.Name)
	}
	return sqldb.Null
}

// globalOrdinal numbers a node among its parent's attributes-then-
// children sequence (1-based), matching pre-order within the parent.
func globalOrdinal(n *xmldom.Node) int {
	if n.Parent == nil {
		return 1
	}
	if n.Kind == xmldom.AttributeNode {
		return n.Ordinal
	}
	return len(n.Parent.Attrs) + n.Ordinal
}

// errScheme builds scheme-level errors.
func errScheme(scheme, format string, args ...any) error {
	return fmt.Errorf("shred/%s: %s", scheme, fmt.Sprintf(format, args...))
}
