package shred

import (
	"fmt"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// orderQueries depend on document order — sibling axes and positional
// predicates — so they are only answerable by schemes with an order
// encoding (Dewey paths, interval ordinals).
var orderQueries = []string{
	"/list/item[2]/following-sibling::item",
	"/list/item[4]/preceding-sibling::item",
	"/list/item[position() = 2]",
	"/list/item[1]",
	"/list/item[3]/following-sibling::item/text()",
}

const orderDoc = `<list><item>a</item><item>b</item><item>c</item><item>d</item><item>e</item></list>`

// orderedDomValues evaluates the query natively and returns the node
// values in document order.
func orderedDomValues(doc *xmldom.Document, query string) []string {
	var out []string
	for _, n := range xpath.Eval(doc, xpath.MustParse(query)) {
		out = append(out, n.Text())
	}
	return out
}

// TestSiblingOrderStatic compares sibling-axis and positional results
// against the DOM by node id on a freshly loaded document.
func TestSiblingOrderStatic(t *testing.T) {
	doc, err := xmldom.ParseString(orderDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All(false) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, q := range orderQueries {
				want := domIDs(doc, q)
				got, err := QueryIDs(db, s, q)
				if err != nil {
					if isUnsupported(err) {
						continue
					}
					t.Errorf("%s: %v", q, err)
					continue
				}
				if !int64sEqual(want, got) {
					t.Errorf("%s: dom ids %v, %s ids %v", q, want, s.Name(), got)
				}
			}
		})
	}
}

// TestOrderAfterInserts re-checks the order-sensitive battery after
// ordered insertions. Inserted nodes get fresh ids past the loaded
// range while the mirrored DOM renumbers, so results are compared as
// ordered value sequences, not ids.
func TestOrderAfterInserts(t *testing.T) {
	for _, mk := range []func() Scheme{
		func() Scheme { return NewInterval(false) },
		func() Scheme { return NewDewey(false) },
	} {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			doc, err := xmldom.ParseString(orderDoc)
			if err != nil {
				t.Fatal(err)
			}
			db, err := LoadDocument(s, doc)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			list := doc.RootElement()
			// Three inserts: front, middle (twice at the same slot, so
			// the second lands between earlier siblings), exercising the
			// scheme's renumber/relabel path each time.
			for i, pos := range []int{0, 2, 2} {
				frag, err := xmldom.ParseString(fmt.Sprintf("<item>new%d</item>", i))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.InsertSubtree(db, int64(list.Pre), pos, frag.RootElement().Copy()); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				list.InsertChild(frag.RootElement().Copy(), pos)
				doc.Number()
			}
			for _, q := range orderQueries {
				want := orderedDomValues(doc, q)
				rows, err := Query(db, s, q)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					continue
				}
				var got []string
				for _, r := range rows.Data {
					got = append(got, r[1].Text())
				}
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Errorf("%s: dom values %v, %s values %v", q, want, s.Name(), got)
				}
			}
			// The full document still reconstructs in the new order.
			got, err := s.Reconstruct(db)
			if err != nil {
				t.Fatalf("reconstruct: %v", err)
			}
			if xmldom.SerializeString(got.Root) != xmldom.SerializeString(doc.Root) {
				t.Errorf("post-insert reconstruction differs:\nwant %s\ngot  %s",
					xmldom.SerializeString(doc.Root), xmldom.SerializeString(got.Root))
			}
		})
	}
}
