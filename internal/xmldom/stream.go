package xmldom

// Streaming parse API: a Tokenizer reads an XML document from an
// io.Reader and emits a flat event stream — start/end element, text,
// comment, processing instruction — without ever materializing the
// document tree. It implements exactly the same dialect as Parse
// (non-validating, five predefined entities, character references,
// DOCTYPE internal subset captured verbatim) and the same text model:
// consecutive character data and CDATA sections coalesce into one Text
// event, and whitespace-only runs between elements are dropped unless
// adjacent to real text. ParseReader builds a DOM from the stream and
// is differentially tested against Parse; SAX-style consumers (the
// streaming shredders in internal/shred) keep memory proportional to
// document depth, not size.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// TokenKind identifies a streaming event.
type TokenKind int

const (
	// TokStart opens an element (Name, Attrs valid).
	TokStart TokenKind = iota
	// TokEnd closes the innermost open element (Name valid).
	TokEnd
	// TokText is one coalesced run of character data (Text valid).
	TokText
	// TokComment is a comment (Text valid).
	TokComment
	// TokProcInst is a processing instruction (Name, Text valid).
	TokProcInst
	// TokEOF reports a well-formed end of document.
	TokEOF
)

// Attr is one attribute on a TokStart token, in document order.
type Attr struct {
	Name  string
	Value string
}

// Token is one streaming event.
type Token struct {
	Kind  TokenKind
	Name  string
	Attrs []Attr
	Text  string
}

// Tokenizer streams tokens from an XML document. Create with
// NewTokenizer, then call Next until TokEOF or an error; errors are
// sticky.
type Tokenizer struct {
	r   *bufio.Reader
	off int // byte offset for errors

	// DoctypeName and InternalSubset mirror Document's fields once the
	// DOCTYPE declaration (if any) has been scanned.
	DoctypeName    string
	InternalSubset string

	started bool // saw the optional XML declaration / first prolog scan
	// stack holds open element names; empty + rootSeen means epilog.
	stack    []string
	rootSeen bool
	textBuf  strings.Builder
	queue    []Token
	err      error
}

// NewTokenizer returns a Tokenizer reading from r.
func NewTokenizer(r io.Reader) *Tokenizer {
	return &Tokenizer{r: bufio.NewReaderSize(r, 64<<10)}
}

func (t *Tokenizer) errf(format string, args ...any) error {
	return &ParseError{Offset: t.off, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token. After TokEOF or an error, further calls
// repeat the outcome.
func (t *Tokenizer) Next() (Token, error) {
	for {
		if len(t.queue) > 0 {
			tok := t.queue[0]
			t.queue = t.queue[1:]
			return tok, nil
		}
		if t.err != nil {
			return Token{}, t.err
		}
		if err := t.step(); err != nil {
			t.err = err
			return Token{}, err
		}
	}
}

// step parses one markup item, queueing zero or more tokens.
func (t *Tokenizer) step() error {
	if len(t.stack) == 0 {
		return t.stepProlog()
	}
	return t.stepContent()
}

// stepProlog handles everything outside the root element: the XML
// declaration, DOCTYPE, comments, PIs, the root start tag, and EOF.
func (t *Tokenizer) stepProlog() error {
	if !t.started {
		t.started = true
		t.skipSpace()
		if t.hasPrefix("<?xml") {
			if _, err := t.readUntil("?>"); err != nil {
				return err
			}
		}
	}
	t.skipSpace()
	if _, err := t.r.Peek(1); err != nil {
		if err != io.EOF {
			return err
		}
		if !t.rootSeen {
			return &ParseError{Offset: t.off, Msg: "missing root element"}
		}
		t.queue = append(t.queue, Token{Kind: TokEOF})
		return nil
	}
	if !t.hasByte('<') {
		return t.errf("content outside of root element")
	}
	switch {
	case t.hasPrefix("<!--"):
		text, err := t.parseComment()
		if err != nil {
			return err
		}
		t.queue = append(t.queue, Token{Kind: TokComment, Text: text})
	case t.hasPrefix("<?"):
		name, data, err := t.parsePI()
		if err != nil {
			return err
		}
		t.queue = append(t.queue, Token{Kind: TokProcInst, Name: name, Text: data})
	case t.hasPrefix("<!DOCTYPE"):
		if err := t.parseDoctype(); err != nil {
			return err
		}
	default:
		if t.rootSeen {
			return t.errf("multiple root elements")
		}
		t.rootSeen = true
		return t.parseStartTag()
	}
	return nil
}

// stepContent handles one item inside an open element, mirroring the
// in-memory parser's content loop (including its text coalescing).
func (t *Tokenizer) stepContent() error {
	name := t.stack[len(t.stack)-1]
	if _, err := t.r.Peek(1); err != nil {
		if err == io.EOF {
			return t.errf("missing </%s>", name)
		}
		return err
	}
	if !t.hasByte('<') {
		raw, err := t.readCharData()
		if err != nil {
			return err
		}
		text, err := decodeEntities(raw, t.errf)
		if err != nil {
			return err
		}
		// Whitespace-only runs between elements are dropped; whitespace
		// adjacent to real text is preserved (same rule as Parse).
		if strings.TrimSpace(text) != "" || t.textBuf.Len() > 0 {
			t.textBuf.WriteString(text)
		}
		return nil
	}
	switch {
	case t.hasPrefix("</"):
		t.flushText()
		t.discard(2)
		end, err := t.parseName()
		if err != nil {
			return err
		}
		if end != name {
			return t.errf("mismatched end tag </%s>, expected </%s>", end, name)
		}
		t.skipSpace()
		if !t.hasByte('>') {
			return t.errf("malformed end tag </%s", end)
		}
		t.discard(1)
		t.stack = t.stack[:len(t.stack)-1]
		t.queue = append(t.queue, Token{Kind: TokEnd, Name: end})
	case t.hasPrefix("<!--"):
		t.flushText()
		text, err := t.parseComment()
		if err != nil {
			return err
		}
		t.queue = append(t.queue, Token{Kind: TokComment, Text: text})
	case t.hasPrefix("<![CDATA["):
		t.discard(len("<![CDATA["))
		data, err := t.readUntil("]]>")
		if err != nil {
			return err
		}
		t.textBuf.WriteString(data)
	case t.hasPrefix("<?"):
		t.flushText()
		name, data, err := t.parsePI()
		if err != nil {
			return err
		}
		t.queue = append(t.queue, Token{Kind: TokProcInst, Name: name, Text: data})
	default:
		t.flushText()
		return t.parseStartTag()
	}
	return nil
}

// flushText queues the coalesced text run, if any.
func (t *Tokenizer) flushText() {
	if t.textBuf.Len() > 0 {
		t.queue = append(t.queue, Token{Kind: TokText, Text: t.textBuf.String()})
		t.textBuf.Reset()
	}
}

// parseStartTag consumes "<name attr=... >" or "<name/>", queueing the
// start token (and the matching end token for an empty element).
func (t *Tokenizer) parseStartTag() error {
	t.discard(1) // '<'
	name, err := t.parseName()
	if err != nil {
		return err
	}
	var attrs []Attr
	for {
		t.skipSpace()
		if _, err := t.r.Peek(1); err != nil {
			return t.errf("unterminated start tag <%s", name)
		}
		if t.hasByte('>') {
			t.discard(1)
			t.stack = append(t.stack, name)
			t.queue = append(t.queue, Token{Kind: TokStart, Name: name, Attrs: attrs})
			return nil
		}
		if t.hasByte('/') {
			if !t.hasPrefix("/>") {
				return t.errf("malformed empty-element tag")
			}
			t.discard(2)
			t.queue = append(t.queue,
				Token{Kind: TokStart, Name: name, Attrs: attrs},
				Token{Kind: TokEnd, Name: name})
			return nil
		}
		aname, err := t.parseName()
		if err != nil {
			return err
		}
		t.skipSpace()
		if !t.hasByte('=') {
			return t.errf("expected '=' after attribute %s", aname)
		}
		t.discard(1)
		t.skipSpace()
		aval, err := t.parseAttValue()
		if err != nil {
			return err
		}
		for _, a := range attrs {
			if a.Name == aname {
				return t.errf("duplicate attribute %s on <%s>", aname, name)
			}
		}
		attrs = append(attrs, Attr{Name: aname, Value: aval})
	}
}

func (t *Tokenizer) parseAttValue() (string, error) {
	b, err := t.r.Peek(1)
	if err != nil {
		return "", t.errf("expected attribute value")
	}
	q := b[0]
	if q != '"' && q != '\'' {
		return "", t.errf("attribute value must be quoted")
	}
	t.discard(1)
	var sb strings.Builder
	for {
		c, err := t.r.ReadByte()
		if err == io.EOF {
			return "", t.errf("unterminated attribute value")
		}
		if err != nil {
			return "", err
		}
		t.off++
		if c == q {
			break
		}
		if c == '<' {
			return "", t.errf("'<' in attribute value")
		}
		sb.WriteByte(c)
	}
	return decodeEntities(sb.String(), t.errf)
}

func (t *Tokenizer) parseComment() (string, error) {
	t.discard(len("<!--"))
	return t.readUntil("-->")
}

func (t *Tokenizer) parsePI() (string, string, error) {
	t.discard(len("<?"))
	name, err := t.parseName()
	if err != nil {
		return "", "", err
	}
	data, err := t.readUntil("?>")
	if err != nil {
		return "", "", err
	}
	return name, strings.TrimSpace(data), nil
}

// parseDoctype scans the DOCTYPE declaration, capturing an optional
// [internal subset] verbatim (same grammar as the in-memory parser).
func (t *Tokenizer) parseDoctype() error {
	t.discard(len("<!DOCTYPE"))
	t.skipSpace()
	name, err := t.parseName()
	if err != nil {
		return err
	}
	t.DoctypeName = name
	depth := 0
	var subset strings.Builder
	capturing := false
	for {
		c, err := t.r.ReadByte()
		if err == io.EOF {
			return t.errf("unterminated DOCTYPE")
		}
		if err != nil {
			return err
		}
		t.off++
		switch c {
		case '[':
			depth++
			if depth == 1 {
				capturing = true
				continue
			}
		case ']':
			depth--
			if depth == 0 && capturing {
				t.InternalSubset = subset.String()
				capturing = false
				continue
			}
		case '>':
			if depth == 0 {
				return nil
			}
		case '"', '\'':
			if capturing {
				subset.WriteByte(c)
			}
			q := c
			for {
				c2, err := t.r.ReadByte()
				if err == io.EOF {
					return t.errf("unterminated literal in DOCTYPE")
				}
				if err != nil {
					return err
				}
				t.off++
				if capturing {
					subset.WriteByte(c2)
				}
				if c2 == q {
					break
				}
			}
			continue
		}
		if capturing {
			subset.WriteByte(c)
		}
	}
}

// readCharData consumes character data up to the next '<' (or EOF).
func (t *Tokenizer) readCharData() (string, error) {
	var sb strings.Builder
	for {
		c, err := t.r.ReadByte()
		if err == io.EOF {
			return sb.String(), nil
		}
		if err != nil {
			return "", err
		}
		if c == '<' {
			t.r.UnreadByte()
			return sb.String(), nil
		}
		t.off++
		sb.WriteByte(c)
	}
}

// readUntil consumes up to and including delim, returning the text
// before it.
func (t *Tokenizer) readUntil(delim string) (string, error) {
	var sb strings.Builder
	last := delim[len(delim)-1]
	for {
		c, err := t.r.ReadByte()
		if err == io.EOF {
			return "", t.errf("missing %q", delim)
		}
		if err != nil {
			return "", err
		}
		t.off++
		sb.WriteByte(c)
		if c == last && sb.Len() >= len(delim) &&
			strings.HasSuffix(sb.String(), delim) {
			s := sb.String()
			return s[:len(s)-len(delim)], nil
		}
	}
}

func (t *Tokenizer) parseName() (string, error) {
	r, size, ok := t.peekRune()
	if !ok || !isNameStart(r) {
		return "", t.errf("expected name")
	}
	var sb strings.Builder
	sb.WriteRune(r)
	t.discard(size)
	for {
		r, size, ok = t.peekRune()
		if !ok || !isNameChar(r) {
			break
		}
		sb.WriteRune(r)
		t.discard(size)
	}
	return sb.String(), nil
}

func (t *Tokenizer) peekRune() (rune, int, bool) {
	b, _ := t.r.Peek(utf8.UTFMax)
	if len(b) == 0 {
		return 0, 0, false
	}
	r, size := utf8.DecodeRune(b)
	return r, size, true
}

func (t *Tokenizer) skipSpace() {
	for {
		b, err := t.r.Peek(1)
		if err != nil {
			return
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			t.discard(1)
		default:
			return
		}
	}
}

func (t *Tokenizer) hasPrefix(s string) bool {
	b, _ := t.r.Peek(len(s))
	return string(b) == s
}

func (t *Tokenizer) hasByte(c byte) bool {
	b, _ := t.r.Peek(1)
	return len(b) == 1 && b[0] == c
}

func (t *Tokenizer) discard(n int) {
	d, _ := t.r.Discard(n)
	t.off += d
}

// ParseReader parses an XML document from a stream, building the same
// DOM as Parse. It exists for API completeness and as the differential
// anchor for the Tokenizer; bounded-memory consumers should drive the
// Tokenizer directly.
func ParseReader(r io.Reader) (*Document, error) {
	tz := NewTokenizer(r)
	doc := &Document{Root: &Node{Kind: DocumentNode}}
	var stack []*Node
	for {
		tok, err := tz.Next()
		if err != nil {
			return nil, err
		}
		var parent *Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		switch tok.Kind {
		case TokEOF:
			doc.DoctypeName = tz.DoctypeName
			doc.InternalSubset = tz.InternalSubset
			doc.Number()
			return doc, nil
		case TokStart:
			el := &Node{Kind: ElementNode, Name: tok.Name}
			for _, a := range tok.Attrs {
				el.Attrs = append(el.Attrs, &Node{Kind: AttributeNode, Name: a.Name, Value: a.Value, Parent: el})
			}
			if parent == nil {
				doc.Root.Children = append(doc.Root.Children, el)
			} else {
				el.Parent = parent
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case TokEnd:
			stack = stack[:len(stack)-1]
		case TokText:
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Value: tok.Text, Parent: parent})
		case TokComment:
			n := &Node{Kind: CommentNode, Value: tok.Text, Parent: parent}
			if parent == nil {
				doc.Root.Children = append(doc.Root.Children, n)
			} else {
				parent.Children = append(parent.Children, n)
			}
		case TokProcInst:
			n := &Node{Kind: ProcInstNode, Name: tok.Name, Value: tok.Text, Parent: parent}
			if parent == nil {
				doc.Root.Children = append(doc.Root.Children, n)
			} else {
				parent.Children = append(parent.Children, n)
			}
		}
	}
}
