package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	doc, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestParseBasicStructure(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?>
<book year="1967" lang='en'>
  <title>The politics of experience</title>
  <author><first>Ronald</first><last>Laing</last></author>
  <empty/>
</book>`)
	root := doc.RootElement()
	if root.Name != "book" {
		t.Fatalf("root = %s", root.Name)
	}
	if v, ok := root.Attr("year"); !ok || v != "1967" {
		t.Errorf("year = %q %v", v, ok)
	}
	if v, ok := root.Attr("lang"); !ok || v != "en" {
		t.Errorf("lang = %q", v)
	}
	if _, ok := root.Attr("missing"); ok {
		t.Error("missing attr found")
	}
	if len(root.ChildElements("")) != 3 {
		t.Fatalf("children = %d", len(root.ChildElements("")))
	}
	title := root.FirstChildElement("title")
	if title.Text() != "The politics of experience" {
		t.Errorf("title = %q", title.Text())
	}
	author := root.FirstChildElement("author")
	if author.Text() != "RonaldLaing" {
		t.Errorf("author text = %q", author.Text())
	}
	if root.FirstChildElement("empty") == nil {
		t.Error("empty element missing")
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc := mustParse(t, `<a x="&lt;&amp;&gt;&quot;&apos;&#65;&#x42;">1 &lt; 2 <![CDATA[<raw> & stuff]]> end</a>`)
	root := doc.RootElement()
	if v, _ := root.Attr("x"); v != `<&>"'AB` {
		t.Errorf("attr entities = %q", v)
	}
	want := "1 < 2 <raw> & stuff end"
	if root.Text() != want {
		t.Errorf("text = %q, want %q", root.Text(), want)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- top --><?style sheet?><r><!-- inner --><?p data?>x</r>`)
	var kinds []NodeKind
	for _, c := range doc.Root.Children {
		kinds = append(kinds, c.Kind)
	}
	if len(kinds) != 3 || kinds[0] != CommentNode || kinds[1] != ProcInstNode || kinds[2] != ElementNode {
		t.Fatalf("top-level kinds = %v", kinds)
	}
	r := doc.RootElement()
	if len(r.Children) != 3 {
		t.Fatalf("inner children = %d", len(r.Children))
	}
	if r.Children[0].Kind != CommentNode || r.Children[0].Value != " inner " {
		t.Errorf("comment = %+v", r.Children[0])
	}
	if r.Children[1].Kind != ProcInstNode || r.Children[1].Name != "p" {
		t.Errorf("pi = %+v", r.Children[1])
	}
}

func TestParseDoctypeCapture(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE site SYSTEM "x.dtd" [
<!ELEMENT site (a*)>
<!ELEMENT a (#PCDATA)>
]><site><a>1</a></site>`)
	if doc.DoctypeName != "site" {
		t.Errorf("doctype name = %q", doc.DoctypeName)
	}
	if !strings.Contains(doc.InternalSubset, "<!ELEMENT site (a*)>") {
		t.Errorf("internal subset = %q", doc.InternalSubset)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a><b></a></b>`,
		`<a attr=unquoted/>`,
		`<a x="1" x="2"/>`,
		`<a>&unknown;</a>`,
		`<a/><b/>`,
		`text only`,
		`<a x="<"/>`,
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestNumberingInvariants(t *testing.T) {
	doc := mustParse(t, `<r a="1"><x b="2"><y/>text</x><z/><!--c--></r>`)
	nodes := doc.Nodes()
	// Pre values are 0..n-1 in slice order.
	for i, n := range nodes {
		if n.Pre != i {
			t.Fatalf("node %d has Pre %d", i, n.Pre)
		}
	}
	root := doc.Root
	if root.Size != len(nodes)-1 {
		t.Errorf("root size = %d, want %d", root.Size, len(nodes)-1)
	}
	for _, n := range nodes {
		// Region invariant: every descendant's pre lies in (pre, pre+size].
		if n.Parent != nil {
			if !(n.Pre > n.Parent.Pre && n.Pre <= n.Parent.Pre+n.Parent.Size) {
				t.Errorf("node %d outside parent region", n.Pre)
			}
			if n.Level != n.Parent.Level+1 {
				t.Errorf("node %d level %d, parent level %d", n.Pre, n.Level, n.Parent.Level)
			}
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a x="1"><b>text</b><c/></a>`,
		`<a>one<b/>two</a>`,
		`<a><!--c--><?pi d?></a>`,
		`<a x="&lt;&amp;&quot;">&lt;&amp;&gt;</a>`,
	}
	for _, src := range srcs {
		doc := mustParse(t, src)
		out := SerializeString(doc.Root)
		doc2 := mustParse(t, out)
		out2 := SerializeString(doc2.Root)
		if out != out2 {
			t.Errorf("%q: serialize not stable: %q vs %q", src, out, out2)
		}
	}
}

// Property: random trees survive serialize -> parse -> serialize.
func TestRoundTripProperty(t *testing.T) {
	type g struct{ seed uint32 }
	build := func(seed uint32) *Document {
		state := uint64(seed) + 1
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		var mk func(depth int) *Node
		names := []string{"a", "b", "cd", "e-f", "g.h"}
		mk = func(depth int) *Node {
			el := &Node{Kind: ElementNode, Name: names[next(len(names))]}
			for i := 0; i < next(3); i++ {
				el.Attrs = append(el.Attrs, &Node{
					Kind: AttributeNode, Name: "at" + string(rune('a'+i)),
					Value: `v"<&`, Parent: el,
				})
			}
			kids := 0
			if depth < 3 {
				kids = next(4)
			}
			for i := 0; i < kids; i++ {
				switch next(3) {
				case 0:
					el.Children = append(el.Children, &Node{Kind: TextNode, Value: "t<&x" + string(rune('0'+i)), Parent: el})
				case 1:
					el.Children = append(el.Children, &Node{Kind: CommentNode, Value: "comment", Parent: el})
				default:
					c := mk(depth + 1)
					c.Parent = el
					el.Children = append(el.Children, c)
				}
			}
			return el
		}
		doc := &Document{Root: &Node{Kind: DocumentNode}}
		root := mk(0)
		root.Parent = doc.Root
		doc.Root.Children = []*Node{root}
		doc.Number()
		return doc
	}
	_ = g{}
	prop := func(seed uint32) bool {
		doc := build(seed)
		out := SerializeString(doc.Root)
		doc2, err := ParseString(out)
		if err != nil {
			return false
		}
		return SerializeString(doc2.Root) == out
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyAndInsertChild(t *testing.T) {
	doc := mustParse(t, `<r><a/><b/><c/></r>`)
	root := doc.RootElement()
	cp := root.Copy()
	if len(cp.Children) != 3 || cp.Children[0].Parent != cp {
		t.Fatal("copy structure broken")
	}
	// Mutating the copy leaves the original untouched.
	cp.Children[0].Name = "changed"
	if root.Children[0].Name != "a" {
		t.Error("copy aliases original")
	}
	n := &Node{Kind: ElementNode, Name: "new"}
	root.InsertChild(n, 1)
	doc.Number()
	if root.Children[1].Name != "new" || root.Children[1].Ordinal != 2 {
		t.Errorf("insert at 1: %v ord %d", root.Children[1].Name, root.Children[1].Ordinal)
	}
	removed := root.RemoveChild(0)
	if removed == nil || removed.Name != "a" || len(root.Children) != 3 {
		t.Errorf("remove: %v, %d children", removed, len(root.Children))
	}
	if root.RemoveChild(99) != nil {
		t.Error("remove out of range must return nil")
	}
}

func TestPathAndHelpers(t *testing.T) {
	doc := mustParse(t, `<site><people><person id="p0"><name>Ann</name></person></people></site>`)
	person := doc.RootElement().FirstChildElement("people").FirstChildElement("person")
	if person.Path() != "/site/people/person" {
		t.Errorf("path = %q", person.Path())
	}
	attr := person.Attrs[0]
	if attr.Path() != "/site/people/person/@id" {
		t.Errorf("attr path = %q", attr.Path())
	}
	// site=1 people=2 person=3 name=4 (attrs and text one deeper).
	if doc.MaxDepth() != 5 {
		t.Errorf("max depth = %d", doc.MaxDepth())
	}
	desc := doc.RootElement().Descendants()
	if len(desc) != 4 { // people, person, name, text
		t.Errorf("descendants = %d", len(desc))
	}
}

func TestWhitespaceHandling(t *testing.T) {
	doc := mustParse(t, "<r>\n  <a>keep me</a>\n  <b> x </b>\n</r>")
	r := doc.RootElement()
	// Whitespace-only runs between elements are dropped.
	if len(r.Children) != 2 {
		t.Fatalf("children = %d (whitespace not dropped)", len(r.Children))
	}
	if got := r.FirstChildElement("b").Text(); got != " x " {
		t.Errorf("significant whitespace lost: %q", got)
	}
}
